# Convenience targets for the Ignem reproduction.

GO ?= go

.PHONY: all test race vet bench bench-read bench-write experiments examples tidy

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate every paper table and figure as benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run XXX .

# Read-path throughput benchmarks (striped ReadFile, Reader read-ahead)
# on both transports; machine-readable records land in BENCH_read.json.
bench-read:
	$(GO) run ./cmd/ignem-bench -readbench BENCH_read.json

# Write-path throughput benchmarks (pipelined Writer vs serial ingest)
# on both transports; machine-readable records land in BENCH_write.json.
bench-write:
	$(GO) run ./cmd/ignem-bench -writebench BENCH_write.json

# Regenerate every paper table and figure as rendered text (plus CSVs in
# ./data for plotting).
experiments:
	$(GO) run ./cmd/ignem-bench -out data

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/swim
	$(GO) run ./examples/wordcount
	$(GO) run ./examples/hive
	$(GO) run ./examples/failover
	$(GO) run ./examples/logscan

tidy:
	$(GO) mod tidy
	gofmt -w .
