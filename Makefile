# Convenience targets for the Ignem reproduction.

GO ?= go

.PHONY: all ci test race vet build fmt-check tidy-check determinism golden \
	chaos chaos-wal \
	bench-smoke bench bench-read bench-write bench-meta bench-meta-smoke \
	bench-scale bench-scale-smoke bench-alloc profile fuzz-smoke \
	bench-tier bench-tier-smoke \
	experiments examples tidy

all: vet test

# ci mirrors the GitHub Actions pipeline locally (the workflow calls
# these same targets, so the two cannot drift). The bench smoke job is
# excluded here because it takes minutes; run `make bench-smoke` to
# reproduce it. bench-meta-smoke stays in: the reduced metadata-plane
# suite finishes in seconds and guards the sharded plane end to end.
ci: vet build test race fmt-check tidy-check determinism chaos bench-alloc \
	bench-meta-smoke bench-scale-smoke

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Fails when go.mod/go.sum are not tidy.
tidy-check:
	$(GO) mod tidy -diff

# Guards the paper figures: the seeded-determinism test must pass, and
# two regenerations of the swim and table3 experiments must render
# byte-for-byte identical output (wall-time footer lines filtered).
# The sharded metadata plane extends the guard: shard count 1 must
# reproduce the unsharded figures bit for bit (same seeded rng stream),
# and shard count 4 must be deterministic across runs. The committed
# golden (internal/experiments/testdata/swim_table3.golden) pins the
# figures across PRs: at the default config — paper migration policy,
# no tier budgets, no SSD tier — the output must stay bit-identical to
# the pre-ladder pin-in-RAM master. Regenerate it deliberately with
# `make golden` when a change is *supposed* to move the figures.
determinism:
	$(GO) test ./internal/experiments -run TestSwimSeededRunsAreBitIdentical -count=1
	$(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > /tmp/ignem-determinism-a.txt
	$(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > /tmp/ignem-determinism-b.txt
	diff /tmp/ignem-determinism-a.txt /tmp/ignem-determinism-b.txt
	diff /tmp/ignem-determinism-a.txt internal/experiments/testdata/swim_table3.golden
	IGNEM_META_SHARDS=1 $(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > /tmp/ignem-determinism-s1.txt
	diff /tmp/ignem-determinism-a.txt /tmp/ignem-determinism-s1.txt
	IGNEM_META_SHARDS=4 $(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > /tmp/ignem-determinism-s4a.txt
	IGNEM_META_SHARDS=4 $(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > /tmp/ignem-determinism-s4b.txt
	diff /tmp/ignem-determinism-s4a.txt /tmp/ignem-determinism-s4b.txt

# Re-bless the committed figure golden after an intentional change.
golden:
	$(GO) run ./cmd/ignem-bench swim table3 | grep -v 'wall time' > internal/experiments/testdata/swim_table3.golden

# The failure-recovery suite: the deterministic fault fabric's unit
# tests and the end-to-end chaos scenarios (datanode crash mid-write,
# namenode partition, master restart mid-migration, seeded replay),
# twice each and under the race detector — chaos that only passes once
# is not deterministic.
chaos:
	$(GO) test -count=2 ./internal/faultnet ./internal/chaos
	$(GO) test -race -count=1 ./internal/faultnet ./internal/chaos

# The durability suite on its own (it also runs as part of `make
# chaos`): the WAL crash-at-every-record sweep, checksum corruption
# recovery with and without readers, and retry-pump convergence
# through a one-way partition — plain and race-checked.
chaos-wal:
	$(GO) test -count=1 ./internal/wal
	$(GO) test -run 'TestWAL' -count=1 ./internal/chaos
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -run 'TestWAL' -count=1 ./internal/chaos

# Smoke-runs both benchmark suites and checks the JSON shape only — no
# throughput-ratio assertions, so it is safe on loaded shared runners.
bench-smoke:
	$(GO) run ./cmd/ignem-bench -readbench /tmp/ignem-smoke-read.json
	$(GO) run ./cmd/ignem-bench -writebench /tmp/ignem-smoke-write.json
	grep -q '"ns_per_op"' /tmp/ignem-smoke-read.json
	grep -q '"name": "BenchmarkRepeatedScanCached/tcp"' /tmp/ignem-smoke-read.json
	grep -q '"ns_per_op"' /tmp/ignem-smoke-write.json

# Allocation and codec regression gate: pins the cached-read allocs/op
# ceiling, the fast-path-vs-gob speedup floors (read and pipelined
# write), the ≥50% allocs/op drop on the uncached TCP block read, the
# ≥4x heap-per-block reduction of the compact block map over the
# historical two-maps-per-block representation, and the ≤1 alloc/op
# ceiling on WAL appends.
bench-alloc:
	$(GO) test ./internal/readbench -run 'TestCachedReadAllocCeiling|TestLargeBlock' -count=1 -v
	$(GO) test ./internal/writebench -run 'TestLargeWrite' -count=1 -v
	$(GO) test ./internal/dfs/namenode -run 'TestBlockMapHeapPerBlock' -count=1 -v
	$(GO) test ./internal/wal -run 'TestWALAppendAllocCeiling' -count=1 -v

# Short deterministic-budget fuzz of every frame-codec fuzzer (the
# committed corpus always runs in plain `make test`; this explores).
fuzz-smoke:
	$(GO) test ./internal/transport -run XXX -fuzz '^FuzzFastUnitPayload$$' -fuzztime 10s
	$(GO) test ./internal/transport -run XXX -fuzz '^FuzzTCPRecvStream$$' -fuzztime 10s
	$(GO) test ./internal/dfs -run XXX -fuzz '^FuzzWriteBlockReqFrame$$' -fuzztime 10s
	$(GO) test ./internal/dfs -run XXX -fuzz '^FuzzReadBlockReqFrame$$' -fuzztime 10s
	$(GO) test ./internal/dfs -run XXX -fuzz '^FuzzReadBlockRespFrame$$' -fuzztime 10s

# Profile the data plane: CPU + mutex profiles of the swim experiment
# (the Ignem master's coarse lock under heartbeat/migration traffic) and
# CPU + heap + mutex profiles of the read benchmark suite (the TCP block
# path). Outputs land in ./profiles; inspect with
#   go tool pprof -top profiles/read.cpu.pprof
#   go tool pprof -sample_index=contentions -top profiles/swim.mutex.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/ignem-bench -cpuprofile profiles/swim.cpu.pprof \
		-mutexprofile profiles/swim.mutex.pprof swim
	$(GO) run ./cmd/ignem-bench -readbench /tmp/ignem-profile-read.json \
		-cpuprofile profiles/read.cpu.pprof -memprofile profiles/read.mem.pprof \
		-mutexprofile profiles/read.mutex.pprof

# Regenerate every paper table and figure as benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run XXX .

# Read-path throughput benchmarks (striped ReadFile, Reader read-ahead)
# on both transports; machine-readable records land in BENCH_read.json.
bench-read:
	$(GO) run ./cmd/ignem-bench -readbench BENCH_read.json

# Write-path throughput benchmarks (pipelined Writer vs serial ingest)
# on both transports; machine-readable records land in BENCH_write.json.
bench-write:
	$(GO) run ./cmd/ignem-bench -writebench BENCH_write.json

# Metadata-plane throughput benchmarks (creates/opens/allocs per second
# vs namespace shard count {1,2,4,8} plus the unsharded baseline) on
# both transports; machine-readable records land in BENCH_meta.json.
bench-meta:
	$(GO) run ./cmd/ignem-bench -metabench BENCH_meta.json

# Reduced metadata-plane suite for CI: shard counts 1 and 4 with a small
# op budget, checked for completion and JSON shape only.
bench-meta-smoke:
	$(GO) run ./cmd/ignem-bench -metabench /tmp/ignem-smoke-meta.json -metabench-smoke
	grep -q '"name": "BenchmarkMetaAlloc/inmem/shards=4"' /tmp/ignem-smoke-meta.json
	grep -q '"name": "BenchmarkMetaCreate/tcp/unsharded"' /tmp/ignem-smoke-meta.json
	grep -q '"ops_per_sec"' /tmp/ignem-smoke-meta.json

# Control-plane scale harness: 1000 synthetic datanodes and a million
# blocks driving report intake on the modeled transport (TCP at reduced
# geometry) — full block reports vs incremental deltas, plus the cold
# reconnect storm with and without intake admission control, measured
# against an open-loop Zipf client fleet. Records land in
# BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/ignem-bench -scalebench BENCH_scale.json

# Reduced scale harness for CI: every phase exercised at a small
# geometry, checked for completion and JSON shape only.
bench-scale-smoke:
	$(GO) run ./cmd/ignem-bench -scalebench /tmp/ignem-smoke-scale.json -scalebench-smoke
	grep -q '"name": "BenchmarkScaleIncremental/inmem"' /tmp/ignem-smoke-scale.json
	grep -q '"name": "BenchmarkScaleStorm/tcp/gated"' /tmp/ignem-smoke-scale.json
	grep -q '"bytes_ratio"' /tmp/ignem-smoke-scale.json

# The migration-ladder comparison: the same tight-RAM SWIM workload
# under pin-in-RAM-only, the HDD→SSD→RAM ladder, and the popularity
# policy. Machine-readable records (task-time CDFs, tier occupancy
# timelines, master tier counters) land in BENCH_tier.json. The
# acceptance bar — ladder p99 task time ≥1.2x better than pin-RAM when
# the RAM budget is 25% of the working set — is enforced by
# internal/tierbench's tests; the smoke target additionally checks the
# record shape.
bench-tier:
	$(GO) run ./cmd/ignem-bench -tierbench BENCH_tier.json

bench-tier-smoke:
	$(GO) run ./cmd/ignem-bench -tierbench /tmp/ignem-smoke-tier.json -tierbench-smoke
	$(GO) test ./internal/tierbench -run TestLadderBeatsPinRAMAtTightRAMBudget -count=1
	grep -q '"name": "pin-ram"' /tmp/ignem-smoke-tier.json
	grep -q '"name": "ladder"' /tmp/ignem-smoke-tier.json
	grep -q '"p99_speedup_vs_pin_ram"' /tmp/ignem-smoke-tier.json
	grep -q '"occupancy"' /tmp/ignem-smoke-tier.json

# Regenerate every paper table and figure as rendered text (plus CSVs in
# ./data for plotting).
experiments:
	$(GO) run ./cmd/ignem-bench -out data

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/swim
	$(GO) run ./examples/wordcount
	$(GO) run ./examples/hive
	$(GO) run ./examples/failover
	$(GO) run ./examples/logscan

tidy:
	$(GO) mod tidy
	gofmt -w .
