// Benchmarks that regenerate every table and figure in the paper's
// evaluation. Each benchmark runs the corresponding experiment and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. Experiments run at paper scale under
// virtual time, so a full pass takes seconds of wall time, not hours.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/gtrace"
)

const benchSeed = 1

// BenchmarkFig1BlockReadMedia reproduces Fig 1: HDFS block reads from
// HDD, SSD and RAM under SWIM-like concurrency (paper: RAM 160x faster
// than HDD, 7x faster than SSD).
func BenchmarkFig1BlockReadMedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMedia(experiments.MediaConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		ram := r.BlockReads["ram"].Mean()
		b.ReportMetric(r.BlockReads["hdd"].Mean()/ram, "hdd/ram(paper=160)")
		b.ReportMetric(r.BlockReads["ssd"].Mean()/ram, "ssd/ram(paper=7)")
	}
}

// BenchmarkFig2MapperRuntimeCDF reproduces Fig 2: mapper task runtimes by
// storage medium (paper: RAM mean 23x below HDD).
func BenchmarkFig2MapperRuntimeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMedia(experiments.MediaConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TaskDurations["hdd"].Mean()/r.TaskDurations["ram"].Mean(), "hdd/ram(paper=23)")
	}
}

// BenchmarkFig3LeadTimeSufficiency reproduces Fig 3: the fraction of
// Google-trace jobs whose lead-time covers their read-time (paper: 81%).
func BenchmarkFig3LeadTimeSufficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTraceAnalysis(gtrace.Config{Seed: benchSeed})
		b.ReportMetric(r.FracSufficient*100, "%sufficient(paper=81)")
		b.ReportMetric(r.LeadMean.Seconds(), "lead-mean-s(paper=8.8)")
	}
}

// BenchmarkFig4DiskUtilization reproduces Fig 4: residual disk bandwidth
// in the Google trace (paper: day mean 3.1%, month mean 1.3%).
func BenchmarkFig4DiskUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTraceAnalysis(gtrace.Config{Seed: benchSeed})
		b.ReportMetric(r.DayMeanUtil*100, "%day-util(paper=3.1)")
		b.ReportMetric(r.MonthMeanUtil*100, "%month-util(paper=1.3)")
	}
}

// swimResult caches the SWIM run: Tables I-II and Figs 5-7 all come from
// the same workload execution, exactly as in the paper.
var swimCache *experiments.SwimResult

func swimRun(b *testing.B) *experiments.SwimResult {
	b.Helper()
	if swimCache == nil {
		r, err := experiments.RunSwim(experiments.SwimConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		swimCache = r
	}
	return swimCache
}

// BenchmarkTable1SwimJobDuration reproduces Table I: mean SWIM job
// duration (paper: Ignem 12% faster than HDFS; inputs-in-RAM 21%).
func BenchmarkTable1SwimJobDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		base := r.Modes[cluster.ModeHDFS].JobDurations.Mean()
		b.ReportMetric(base, "hdfs-s(paper=14.4)")
		b.ReportMetric((1-r.Modes[cluster.ModeIgnem].JobDurations.Mean()/base)*100, "%ignem(paper=12)")
		b.ReportMetric((1-r.Modes[cluster.ModeInputsInRAM].JobDurations.Mean()/base)*100, "%ram(paper=21)")
	}
}

// BenchmarkFig5SwimSizeBins reproduces Fig 5: Ignem's job-duration
// reduction by input-size bin (paper: small 8.8%, medium 7.7%, large 25%).
func BenchmarkFig5SwimSizeBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		for _, bin := range []string{"small", "medium", "large"} {
			base := r.Modes[cluster.ModeHDFS].BinDurations[bin].Mean()
			ign := r.Modes[cluster.ModeIgnem].BinDurations[bin].Mean()
			b.ReportMetric((1-ign/base)*100, "%"+bin)
		}
	}
}

// BenchmarkTable2SwimTaskDuration reproduces Table II: mean mapper task
// duration (paper: 6.44s HDFS, 4.03s Ignem, 0.28s RAM).
func BenchmarkTable2SwimTaskDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		b.ReportMetric(r.Modes[cluster.ModeHDFS].TaskDurations.Mean(), "hdfs-s(paper=6.44)")
		b.ReportMetric(r.Modes[cluster.ModeIgnem].TaskDurations.Mean(), "ignem-s(paper=4.03)")
		b.ReportMetric(r.Modes[cluster.ModeInputsInRAM].TaskDurations.Mean(), "ram-s(paper=0.28)")
	}
}

// BenchmarkFig6BlockReadCDF reproduces Fig 6: block-read durations under
// Ignem (paper: ~40% mean reduction; ~60% of blocks read from memory).
func BenchmarkFig6BlockReadCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		base := r.Modes[cluster.ModeHDFS].BlockReads.Mean()
		ign := r.Modes[cluster.ModeIgnem].BlockReads.Mean()
		b.ReportMetric((1-ign/base)*100, "%read-reduction(paper=40)")
		b.ReportMetric(r.Modes[cluster.ModeIgnem].MemoryFromReads*100, "%from-memory(paper=60)")
	}
}

// BenchmarkFig7MemoryFootprint reproduces Fig 7: Ignem's per-server
// memory footprint vs the hypothetical instantaneous scheme (paper:
// 2.6x lower).
func BenchmarkFig7MemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		ign := r.Modes[cluster.ModeIgnem].MemoryPerServer.Mean()
		hypo := r.HypotheticalMemory.Mean()
		b.ReportMetric(hypo/ign, "x-lower(paper=2.6)")
	}
}

// BenchmarkAblationPriority reproduces §IV-C5: disabling smallest-job-
// first prioritization costs ~2 points of speedup (~15% of the benefit).
func BenchmarkAblationPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := swimRun(b)
		base := r.Modes[cluster.ModeHDFS].JobDurations.Mean()
		prio := (1 - r.Modes[cluster.ModeIgnem].JobDurations.Mean()/base) * 100
		fifo := (1 - r.FIFOJobDurations.Mean()/base) * 100
		b.ReportMetric(prio-fifo, "points-lost(paper=2)")
	}
}

// BenchmarkTable3Sort reproduces Table III: the 40 GB standalone sort
// (paper: Ignem 22% faster, inputs-in-RAM 49%).
func BenchmarkTable3Sort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSort(experiments.SortConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		base := r.Durations[cluster.ModeHDFS].Seconds()
		b.ReportMetric((1-r.Durations[cluster.ModeIgnem].Seconds()/base)*100, "%ignem(paper=22)")
		b.ReportMetric((1-r.Durations[cluster.ModeInputsInRAM].Seconds()/base)*100, "%ram(paper=49)")
	}
}

// BenchmarkFig8WordcountSweep reproduces Fig 8: the wordcount input-size
// sweep with inserted lead-time (paper: Ignem tracks the RAM bound for
// small inputs; Ignem+10s eventually overtakes plain Ignem).
func BenchmarkFig8WordcountSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunWordcount(experiments.WordcountConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		sizes := r.Config.SizesGB
		small, large := sizes[0], sizes[len(sizes)-1]
		base := r.Durations["HDFS"]
		b.ReportMetric(float64(r.Durations["Ignem"][small])/float64(base[small]), "ignem-rel@small")
		b.ReportMetric(float64(r.Durations["Ignem"][large])/float64(base[large]), "ignem-rel@large")
		b.ReportMetric(float64(r.Durations["Ignem+10s"][large])/float64(r.Durations["Ignem"][large]), "plus10s/ignem@large(paper<1)")
	}
}

// BenchmarkFig9HiveQueries reproduces Fig 9: the TPC-DS query catalog
// (paper: 20% mean speedup, up to 34%; the large queries gain least).
func BenchmarkFig9HiveQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunHive(experiments.HiveConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		var sum, max, n float64
		for _, q := range r.Config.Queries {
			hd := r.Durations[cluster.ModeHDFS][q.Name].Seconds()
			ig := r.Durations[cluster.ModeIgnem][q.Name].Seconds()
			if hd <= 0 {
				continue
			}
			sp := (1 - ig/hd) * 100
			sum += sp
			if sp > max {
				max = sp
			}
			n++
		}
		b.ReportMetric(sum/n, "%mean(paper=20)")
		b.ReportMetric(max, "%max(paper=34)")
	}
}

// BenchmarkMicroDeviceRead measures the simulated-device hot path.
func BenchmarkMicroDeviceRead(b *testing.B) {
	r, err := experiments.RunMedia(experiments.MediaConfig{Nodes: 2, BlocksPerNode: 4, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	_ = r
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMedia(experiments.MediaConfig{Nodes: 2, BlocksPerNode: 4, Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
	_ = time.Second
}

// BenchmarkBaselineHotCache runs the §I/§V baseline comparison: a
// PACMan-style reactive hot cache gains ~0% on singly-read inputs while
// Ignem gains; only Ignem also fixes an iterative job's cold first pass.
func BenchmarkBaselineHotCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBaseline(experiments.BaselineConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		base := r.SinglyRead[cluster.ModeHDFS].Seconds()
		b.ReportMetric((1-r.SinglyRead[cluster.ModeHotCache].Seconds()/base)*100, "%hotcache-singly(paper=0)")
		b.ReportMetric((1-r.SinglyRead[cluster.ModeIgnem].Seconds()/base)*100, "%ignem-singly(>0)")
		b.ReportMetric(r.IterFirst[cluster.ModeHotCache].Seconds()/r.IterFirst[cluster.ModeIgnem].Seconds(),
			"hotcache/ignem-1st-pass(>1)")
	}
}
