// Command ignem-cluster runs a live Ignem cluster over real TCP sockets
// on localhost: a namenode (with the Ignem master), several datanodes
// (with Ignem slaves), and a client that writes a file, migrates it,
// reads it hot and cold, and evicts it. It demonstrates that the same
// components that power the virtual-time experiments also run as a real
// networked system.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	nodes := flag.Int("nodes", 3, "datanode count")
	blocks := flag.Int("blocks", 4, "blocks in the demo file")
	blockMB := flag.Int64("block-mb", 8, "block size in MB")
	scale := flag.Float64("time-scale", 4, "speed-up factor for simulated device time")
	serve := flag.Bool("serve", false, "after the demo, keep the cluster up for ignem-dfs until interrupted")
	flag.Parse()

	dfs.RegisterWire()
	clock := simclock.NewScaledReal(*scale)
	net := transport.NewTCPNetwork()

	// Bring up the namenode on an ephemeral port.
	nnListener, err := net.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	nnAddr := nnListener.Addr()
	nnListener.Close() // re-bound by the namenode itself
	nn := namenode.New(clock, net, namenode.Config{Addr: nnAddr, Seed: 1})
	if err := nn.Start(); err != nil {
		log.Fatalf("namenode: %v", err)
	}
	defer nn.Close()
	fmt.Printf("namenode up at %s\n", nnAddr)

	var dns []*datanode.DataNode
	for i := 0; i < *nodes; i++ {
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		addr := l.Addr()
		l.Close()
		dn, err := datanode.New(clock, net, datanode.Config{
			Addr:         addr,
			NameNodeAddr: nnAddr,
			Media:        storage.HDDSpec(),
		})
		if err != nil {
			log.Fatalf("datanode: %v", err)
		}
		if err := dn.Start(); err != nil {
			log.Fatalf("datanode start: %v", err)
		}
		defer dn.Close()
		dns = append(dns, dn)
		fmt.Printf("datanode %d up at %s\n", i, addr)
	}

	cl, err := client.New(clock, net, nnAddr)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer cl.Close()

	// Write a demo file.
	size := int64(*blocks) * (*blockMB << 20)
	fmt.Printf("\nwriting /demo/input (%d MB, %d replicas)...\n", size>>20, min(2, *nodes))
	start := time.Now()
	if err := cl.WriteSyntheticFile("/demo/input", size, *blockMB<<20, min(2, *nodes)); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote in %v\n", time.Since(start))

	// Cold read: straight off the simulated HDDs.
	start = time.Now()
	if _, err := cl.ReadFile("/demo/input", "job-cold"); err != nil {
		log.Fatalf("cold read: %v", err)
	}
	cold := time.Since(start)
	fmt.Printf("cold read:     %v\n", cold)

	// Migrate, wait for the slaves, then read hot.
	resp, err := cl.Migrate("job-hot", []string{"/demo/input"}, false)
	if err != nil {
		log.Fatalf("migrate: %v", err)
	}
	fmt.Printf("migrating %d blocks (%d MB)...\n", resp.Blocks, resp.Bytes>>20)
	waitForPins(dns, resp.Blocks, 30*time.Second)

	start = time.Now()
	if _, err := cl.ReadFile("/demo/input", "job-hot"); err != nil {
		log.Fatalf("hot read: %v", err)
	}
	hot := time.Since(start)
	fmt.Printf("migrated read: %v (%.1fx faster)\n", hot, float64(cold)/float64(hot))

	if _, err := cl.Evict("job-hot", []string{"/demo/input"}); err != nil {
		log.Fatalf("evict: %v", err)
	}
	waitForPins(dns, 0, 10*time.Second)
	fmt.Println("evicted; pinned memory back to zero")

	if *serve {
		fmt.Printf("\ncluster serving; try:\n  go run ./cmd/ignem-dfs -nn %s ls /\nCtrl-C to stop\n", nnAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		fmt.Println("shutting down")
	}
}

func waitForPins(dns []*datanode.DataNode, want int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		total := 0
		for _, dn := range dns {
			total += dn.Slave().Stats().PinnedBlocks
		}
		if total == want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %d pinned blocks", want)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
