// Command ignem-trace runs the paper's §II motivation analysis on a
// synthesized Google-style cluster trace: lead-time sufficiency (Fig 3)
// and residual disk bandwidth (Fig 4).
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/gtrace"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	servers := flag.Int("servers", 40, "servers in the simulated cluster slice")
	hours := flag.Int("hours", 24, "length of the analyzed window")
	util := flag.Float64("util", 0.031, "target mean disk utilization of the analyzed day")
	flag.Parse()

	r := experiments.RunTraceAnalysis(gtrace.Config{
		Seed:              *seed,
		Servers:           *servers,
		Duration:          time.Duration(*hours) * time.Hour,
		TargetUtilization: *util,
	})
	fmt.Println(r.Render())
}
