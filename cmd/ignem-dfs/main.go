// Command ignem-dfs is a client CLI for a live Ignem cluster (start one
// with "ignem-cluster -serve"). It exposes the DFS namespace and the
// Ignem migrate/evict extension.
//
// Usage:
//
//	ignem-dfs -nn host:port ls [prefix]
//	ignem-dfs -nn host:port put <local-file> <dfs-path>
//	ignem-dfs -nn host:port get <dfs-path> [local-file]
//	ignem-dfs -nn host:port rm <dfs-path>
//	ignem-dfs -nn host:port stat <dfs-path>
//	ignem-dfs -nn host:port locations <dfs-path> [job]
//	ignem-dfs -nn host:port migrate <job> <dfs-path> ...
//	ignem-dfs -nn host:port evict <job> <dfs-path> ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/simclock"
	"repro/internal/transport"
)

func main() {
	nn := flag.String("nn", "", "namenode address (host:port)")
	blockKB := flag.Int64("block-kb", 1024, "block size for put, in KB")
	replication := flag.Int("replication", 2, "replication for put")
	flag.Parse()
	if *nn == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	dfs.RegisterWire()
	cl, err := client.New(simclock.NewReal(), transport.NewTCPNetwork(), *nn)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer cl.Close()

	args := flag.Args()
	switch cmd, rest := args[0], args[1:]; cmd {
	case "ls":
		prefix := ""
		if len(rest) > 0 {
			prefix = rest[0]
		}
		files, err := cl.List(prefix)
		if err != nil {
			log.Fatalf("ls: %v", err)
		}
		for _, f := range files {
			state := "open"
			if f.Complete {
				state = "sealed"
			}
			fmt.Printf("%12d  %-6s rep=%d  %s\n", f.Size, state, f.Replication, f.Path)
		}
	case "put":
		need(rest, 2)
		data, err := os.ReadFile(rest[0])
		if err != nil {
			log.Fatalf("put: %v", err)
		}
		if err := cl.WriteFile(rest[1], data, *blockKB<<10, *replication); err != nil {
			log.Fatalf("put: %v", err)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), rest[1])
	case "get":
		need(rest, 1)
		data, err := cl.ReadFile(rest[0], "ignem-dfs")
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		if len(rest) > 1 {
			if err := os.WriteFile(rest[1], data, 0o644); err != nil {
				log.Fatalf("get: %v", err)
			}
			fmt.Printf("fetched %d bytes to %s\n", len(data), rest[1])
		} else {
			os.Stdout.Write(data)
		}
	case "rm":
		need(rest, 1)
		if err := cl.Delete(rest[0]); err != nil {
			log.Fatalf("rm: %v", err)
		}
		fmt.Printf("deleted %s\n", rest[0])
	case "stat":
		need(rest, 1)
		info, err := cl.Info(rest[0])
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("path=%s size=%d blockSize=%d replication=%d complete=%v\n",
			info.Path, info.Size, info.BlockSize, info.Replication, info.Complete)
	case "locations":
		need(rest, 1)
		job := dfs.JobID("")
		if len(rest) > 1 {
			job = dfs.JobID(rest[1])
		}
		lbs, err := cl.LocationsForJob(rest[0], job)
		if err != nil {
			log.Fatalf("locations: %v", err)
		}
		for _, lb := range lbs {
			fmt.Printf("block %-4d size=%-10d nodes=%v migrated=%v assigned=%q\n",
				lb.Block.ID, lb.Block.Size, lb.Nodes, lb.Migrated, lb.Assigned)
		}
	case "migrate":
		need(rest, 2)
		resp, err := cl.Migrate(dfs.JobID(rest[0]), rest[1:], false)
		if err != nil {
			log.Fatalf("migrate: %v", err)
		}
		fmt.Printf("enqueued %d blocks (%d bytes) for job %s\n", resp.Blocks, resp.Bytes, rest[0])
	case "evict":
		need(rest, 2)
		if _, err := cl.Evict(dfs.JobID(rest[0]), rest[1:]); err != nil {
			log.Fatalf("evict: %v", err)
		}
		fmt.Printf("evicted inputs of job %s\n", rest[0])
	default:
		fmt.Fprintf(os.Stderr, "ignem-dfs: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "ignem-dfs: missing arguments\n")
		os.Exit(2)
	}
}
