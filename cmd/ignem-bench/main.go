// Command ignem-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignem-bench [-seed N] [experiment ...]
//	ignem-bench -list
//
// With no experiment arguments, every experiment runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for workload generation and placement")
	list := flag.Bool("list", false, "list available experiments and exit")
	out := flag.String("out", "", "directory to write raw CSV data for plotting")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-seed N] [experiment ...]\n\nExperiments:\n", os.Args[0])
		for _, s := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", s.ID, s.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	}
	exit := 0
	for _, id := range ids {
		spec, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ignem-bench: unknown experiment %q (try -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		rendered, data, err := spec.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(rendered)
		if *out != "" && data != nil {
			paths, err := data.WriteData(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ignem-bench: %s: write data: %v\n", id, err)
				exit = 1
			} else {
				fmt.Printf("[raw data: %v]\n", paths)
			}
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
