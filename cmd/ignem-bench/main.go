// Command ignem-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignem-bench [-seed N] [experiment ...]
//	ignem-bench -list
//	ignem-bench -readbench BENCH_read.json
//	ignem-bench -writebench BENCH_write.json
//
// With no experiment arguments, every experiment runs in order.
// -readbench instead runs the read-path throughput benchmarks (striped
// ReadFile and Reader read-ahead on both transports) and writes the
// machine-readable records to the given file; -writebench does the same
// for the write path (pipelined Writer vs serial ingest).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/readbench"
	"repro/internal/writebench"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for workload generation and placement")
	list := flag.Bool("list", false, "list available experiments and exit")
	out := flag.String("out", "", "directory to write raw CSV data for plotting")
	readJSON := flag.String("readbench", "", "run the read benchmarks and write JSON records to this file")
	writeJSON := flag.String("writebench", "", "run the write benchmarks and write JSON records to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-seed N] [experiment ...]\n\nExperiments:\n", os.Args[0])
		for _, s := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", s.ID, s.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return
	}

	if *readJSON != "" {
		start := time.Now()
		results, err := readbench.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: readbench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-42s %12d ns/op %10.1f blocks/s\n", r.Name, r.NsPerOp, r.BlocksPerSec)
		}
		if err := readbench.WriteJSON(*readJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: readbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[read benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *readJSON)
		return
	}

	if *writeJSON != "" {
		start := time.Now()
		results, err := writebench.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: writebench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-42s %12d ns/op %10.1f blocks/s\n", r.Name, r.NsPerOp, r.BlocksPerSec)
		}
		if err := writebench.WriteJSON(*writeJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: writebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[write benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *writeJSON)
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	}
	exit := 0
	for _, id := range ids {
		spec, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ignem-bench: unknown experiment %q (try -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		rendered, data, err := spec.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(rendered)
		if *out != "" && data != nil {
			paths, err := data.WriteData(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ignem-bench: %s: write data: %v\n", id, err)
				exit = 1
			} else {
				fmt.Printf("[raw data: %v]\n", paths)
			}
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
