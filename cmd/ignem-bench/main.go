// Command ignem-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignem-bench [-seed N] [experiment ...]
//	ignem-bench -list
//	ignem-bench -readbench BENCH_read.json
//	ignem-bench -writebench BENCH_write.json
//	ignem-bench -metabench BENCH_meta.json [-metabench-smoke]
//	ignem-bench -scalebench BENCH_scale.json [-scalebench-smoke]
//	ignem-bench -tierbench BENCH_tier.json [-tierbench-smoke]
//
// With no experiment arguments, every experiment runs in order.
// -readbench instead runs the read-path throughput benchmarks (striped
// ReadFile and Reader read-ahead on both transports) and writes the
// machine-readable records to the given file; -writebench does the same
// for the write path (pipelined Writer vs serial ingest); -metabench
// does the same for the metadata plane (creates/opens/allocs per second
// vs namespace shard count, with -metabench-smoke selecting the reduced
// CI configuration); -scalebench runs the control-plane load harness
// (1000-datanode/1M-block report intake: full vs incremental reports
// and the reconnect storm, with -scalebench-smoke selecting the reduced
// CI configuration); -tierbench runs the migration-ladder comparison
// (pin-in-RAM-only vs the HDD→SSD→RAM ladder vs the popularity policy
// under a tight RAM budget, with -tierbench-smoke selecting the reduced
// CI configuration).
//
// Profiling: -cpuprofile, -memprofile, and -mutexprofile write pprof
// profiles covering whatever workload the invocation runs (experiments
// or benchmark suites). Inspect them with `go tool pprof`; `make
// profile` captures the standard read/write/repeated-scan set.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/metabench"
	"repro/internal/readbench"
	"repro/internal/scalebench"
	"repro/internal/tierbench"
	"repro/internal/writebench"
)

// startProfiles begins the requested pprof captures and returns a
// finalizer that writes out the end-of-run profiles (heap, mutex).
func startProfiles(cpu, mem, mutex string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if mutex != "" {
		// Sample every contended lock acquisition: the workloads here
		// are short, and an unsampled profile is what settles questions
		// like "does the Ignem master's coarse lock contend".
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			if f, err := os.Create(mem); err == nil {
				runtime.GC()
				_ = pprof.WriteHeapProfile(f)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "ignem-bench: memprofile: %v\n", err)
			}
		}
		if mutex != "" {
			if f, err := os.Create(mutex); err == nil {
				_ = pprof.Lookup("mutex").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "ignem-bench: mutexprofile: %v\n", err)
			}
		}
	}, nil
}

// main defers to run so the deferred profile writers execute before the
// process exit code is set (os.Exit skips defers).
func main() { os.Exit(run()) }

func run() int {
	seed := flag.Int64("seed", 1, "random seed for workload generation and placement")
	list := flag.Bool("list", false, "list available experiments and exit")
	out := flag.String("out", "", "directory to write raw CSV data for plotting")
	readJSON := flag.String("readbench", "", "run the read benchmarks and write JSON records to this file")
	writeJSON := flag.String("writebench", "", "run the write benchmarks and write JSON records to this file")
	metaJSON := flag.String("metabench", "", "run the metadata-plane benchmarks and write JSON records to this file")
	metaSmoke := flag.Bool("metabench-smoke", false, "with -metabench, run the reduced CI smoke configuration")
	scaleJSON := flag.String("scalebench", "", "run the control-plane scale harness and write JSON records to this file")
	scaleSmoke := flag.Bool("scalebench-smoke", false, "with -scalebench, run the reduced CI smoke configuration")
	tierJSON := flag.String("tierbench", "", "run the migration-ladder benchmarks and write JSON records to this file")
	tierSmoke := flag.Bool("tierbench-smoke", false, "with -tierbench, run the reduced CI smoke configuration")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	mutexProf := flag.String("mutexprofile", "", "write an end-of-run mutex-contention profile to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-seed N] [experiment ...]\n\nExperiments:\n", os.Args[0])
		for _, s := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", s.ID, s.Title)
		}
	}
	flag.Parse()

	if *cpuProf != "" || *memProf != "" || *mutexProf != "" {
		stop, err := startProfiles(*cpuProf, *memProf, *mutexProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: profile: %v\n", err)
			return 1
		}
		defer stop()
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return 0
	}

	if *readJSON != "" {
		start := time.Now()
		results, err := readbench.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: readbench: %v\n", err)
			return 1
		}
		for _, r := range results {
			fmt.Printf("%-42s %12d ns/op %10.1f blocks/s\n", r.Name, r.NsPerOp, r.BlocksPerSec)
		}
		if err := readbench.WriteJSON(*readJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: readbench: %v\n", err)
			return 1
		}
		fmt.Printf("[read benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *readJSON)
		return 0
	}

	if *metaJSON != "" {
		start := time.Now()
		cfg := metabench.Default()
		if *metaSmoke {
			cfg = metabench.Smoke()
		}
		results, err := metabench.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: metabench: %v\n", err)
			return 1
		}
		for _, r := range results {
			fmt.Printf("%-45s %12d ns/op %12.0f ops/s\n", r.Name, r.NsPerOp, r.OpsPerSec)
		}
		if err := metabench.WriteJSON(*metaJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: metabench: %v\n", err)
			return 1
		}
		fmt.Printf("[metadata benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *metaJSON)
		return 0
	}

	if *tierJSON != "" {
		start := time.Now()
		cfg := tierbench.Default()
		if *tierSmoke {
			cfg = tierbench.Smoke()
		}
		results, err := tierbench.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: tierbench: %v\n", err)
			return 1
		}
		for _, r := range results {
			line := fmt.Sprintf("%-12s task p50 %7.3fs  p99 %7.3fs  mem %4.0f%%  ssd %4.0f%%",
				r.Name, r.TaskP50Sec, r.TaskP99Sec, r.MemoryHitFrac*100, r.SSDHitFrac*100)
			if r.P99SpeedupVsPinRAM > 0 {
				line += fmt.Sprintf("  p99 speedup %.2fx", r.P99SpeedupVsPinRAM)
			}
			fmt.Println(line)
		}
		if err := tierbench.WriteJSON(*tierJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: tierbench: %v\n", err)
			return 1
		}
		fmt.Printf("[tier benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *tierJSON)
		return 0
	}

	if *scaleJSON != "" {
		start := time.Now()
		cfg := scalebench.Default()
		if *scaleSmoke {
			cfg = scalebench.Smoke()
		}
		results, err := scalebench.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: scalebench: %v\n", err)
			return 1
		}
		for _, r := range results {
			switch {
			case r.FleetOps > 0 || r.Gated:
				fmt.Printf("%-45s %10.1f rpcs/s  p99 %12d ns  busy %6d\n", r.Name, r.RPCsPerSec, r.P99Ns, r.BusyRejects)
			case r.BytesRatio > 0:
				fmt.Printf("%-45s %10.1f rpcs/s  %12.0f B/s  (%.1fx fewer bytes than full)\n", r.Name, r.RPCsPerSec, r.BytesPerSec, r.BytesRatio)
			default:
				fmt.Printf("%-45s %10.1f rpcs/s  %12.0f B/s\n", r.Name, r.RPCsPerSec, r.BytesPerSec)
			}
		}
		if err := scalebench.WriteJSON(*scaleJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: scalebench: %v\n", err)
			return 1
		}
		fmt.Printf("[scale benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *scaleJSON)
		return 0
	}

	if *writeJSON != "" {
		start := time.Now()
		results, err := writebench.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: writebench: %v\n", err)
			return 1
		}
		for _, r := range results {
			fmt.Printf("%-42s %12d ns/op %10.1f blocks/s\n", r.Name, r.NsPerOp, r.BlocksPerSec)
		}
		if err := writebench.WriteJSON(*writeJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: writebench: %v\n", err)
			return 1
		}
		fmt.Printf("[write benchmarks completed in %v wall time; records in %s]\n", time.Since(start).Round(time.Millisecond), *writeJSON)
		return 0
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	}
	exit := 0
	for _, id := range ids {
		spec, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ignem-bench: unknown experiment %q (try -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		rendered, data, err := spec.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ignem-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(rendered)
		if *out != "" && data != nil {
			paths, err := data.WriteData(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ignem-bench: %s: write data: %v\n", id, err)
				exit = 1
			} else {
				fmt.Printf("[raw data: %v]\n", paths)
			}
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return exit
}
