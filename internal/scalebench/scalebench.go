// Package scalebench hosts the control-plane-at-scale load harness: a
// synthetic registry of up to 1000 datanodes and a million blocks
// driving the namenode's report intake — full block reports, the
// incremental (delta) reports that replace them in steady state, and a
// cold reconnect storm — while an open-loop Zipf client fleet measures
// namespace-op latency through the same RPC surface. The records land
// in BENCH_scale.json via cmd/ignem-bench -scalebench (or `make
// bench-scale`).
//
// Unlike the figure experiments, every phase here runs on the REAL
// clock, on both transports. The phenomenon under measurement is
// handler CPU and lock-hold time — a full-inventory reconcile walks the
// whole block table — and on the virtual clock that work takes zero
// simulated time, which would make a reconnect storm look free. The
// in-memory transport carries the full 1000-node/1M-block geometry (its
// modeled links are cheap enough to host a thousand reporters); TCP
// runs a reduced geometry and pins the absolute cost of the real socket
// stack. Report wire bytes are accounted analytically from the
// namenode's intake counters (dfs report frames are 64 bytes plus 8 per
// block entry), normalized to a one-second freshness interval, so the
// full-vs-incremental byte ratio is exact rather than
// transport-dependent.
package scalebench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/namenode"
	"repro/internal/shardmap"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Transport selects the wire under load.
type Transport string

const (
	Inmem Transport = "inmem"
	TCP   Transport = "tcp"
)

const (
	benchSeed   = 11
	replication = 1 // one replica per block: the registry's block count IS the namespace's
)

// Config sizes a scalebench run. The zero value is not runnable; use
// Default or Smoke.
type Config struct {
	// Nodes is the synthetic datanode count (the inmem geometry; TCP
	// runs Nodes/8, floor 16).
	Nodes int
	// BlocksPerNode sizes each reporter's inventory; Nodes ×
	// BlocksPerNode is the total block count.
	BlocksPerNode int
	// FileBlocks is the namespace shape: blocks per file.
	FileBlocks int
	// Churn is how many block adds plus removes each incremental report
	// carries — the steady-state delta per node per interval.
	Churn int
	// IncRounds is how many incremental rounds are averaged.
	IncRounds int
	// ArrivalInterval is the open-loop client fleet's request spacing.
	ArrivalInterval time.Duration
	// MetaShards is the namespace shard count under load.
	MetaShards int
	Transports []Transport
}

// Default is the full harness behind `make bench-scale`: a thousand
// datanodes, a million blocks.
func Default() Config {
	return Config{
		Nodes:           1000,
		BlocksPerNode:   1000,
		FileBlocks:      250,
		Churn:           8,
		IncRounds:       4,
		ArrivalInterval: 2 * time.Millisecond,
		MetaShards:      4,
		Transports:      []Transport{Inmem, TCP},
	}
}

// Smoke is the CI shape check: every phase exercised, seconds of wall
// time. 128 blocks per node against churn 1 keeps the
// full-vs-incremental byte ratio above the 10x acceptance floor even at
// this tiny geometry (a report frame is 64 bytes plus 8 per entry, and
// one churned block costs two entries: a remove and an add).
func Smoke() Config {
	return Config{
		Nodes:           48,
		BlocksPerNode:   128,
		FileBlocks:      32,
		Churn:           1,
		IncRounds:       2,
		ArrivalInterval: time.Millisecond,
		MetaShards:      4,
		Transports:      []Transport{Inmem, TCP},
	}
}

// scaledForTCP shrinks the geometry for the real socket stack: the
// report phases are CPU-bound in the namenode either way, and a
// thousand loopback connections measure the kernel more than the
// control plane.
func (c Config) scaledForTCP() Config {
	c.Nodes = max(16, c.Nodes/8)
	c.BlocksPerNode = max(32, c.BlocksPerNode/2)
	return c
}

// Result is one record of BENCH_scale.json. RPCsPerSec counts report
// intake; BytesPerSec is the analytic steady-state report byte rate at
// a one-second freshness interval. For the storm rows, P50/P99 are the
// client fleet's nn.getLocations latencies while the storm runs, and
// BusyRejects counts intake-gate pushbacks.
type Result struct {
	Name        string  `json:"name"`
	Transport   string  `json:"transport"`
	Nodes       int     `json:"nodes"`
	Blocks      int     `json:"blocks"`
	Ops         int     `json:"ops,omitempty"`
	WallNs      int64   `json:"wall_ns,omitempty"`
	RPCsPerSec  float64 `json:"rpcs_per_sec,omitempty"`
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`
	P50Ns       int64   `json:"p50_ns,omitempty"`
	P99Ns       int64   `json:"p99_ns,omitempty"`
	FleetOps    int     `json:"fleet_ops,omitempty"`
	BusyRejects int64   `json:"busy_rejects,omitempty"`
	Gated       bool    `json:"gated,omitempty"`
}

// bench is one synthetic cluster: a namenode and Nodes reporter
// connections, each standing in for a datanode's control-plane side
// (register, heartbeat, block report) without the storage machinery.
type bench struct {
	cfg        Config
	clock      simclock.Clock
	nnAddr     string
	shardAddrs []string
	nn         *namenode.NameNode

	reporters []*reporter
	conns     map[string]*transport.Client // client-fleet conns, one per endpoint
	files     []string
}

// reporter is one synthetic datanode's control-plane state.
type reporter struct {
	addr   string
	conn   *transport.Client
	blocks []dfs.BlockID
	seq    uint64
	epoch  uint64
	rng    *rand.Rand
}

func (r *reporter) nextSeq() uint64 { r.seq++; return r.seq }

func startBench(cfg Config, clock simclock.Clock, net transport.Network, gated bool, addr func(i int) (string, error)) (*bench, error) {
	b := &bench{cfg: cfg, clock: clock}
	var err error
	if b.nnAddr, err = addr(-1); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.MetaShards; i++ {
		a, err := addr(i)
		if err != nil {
			return nil, err
		}
		b.shardAddrs = append(b.shardAddrs, a)
	}
	intake := 0 // default: bounded at 2 x shards
	if !gated {
		intake = -1 // unbounded: the storm hits the namespace directly
	}
	b.nn = namenode.New(clock, net, namenode.Config{
		Addr:       b.nnAddr,
		Seed:       benchSeed,
		MetaShards: cfg.MetaShards,
		ShardAddrs: b.shardAddrs,
		// The reporters heartbeat only when driven (populating a million
		// blocks takes real minutes of placement work), so liveness
		// expiry and repair sweeps stay out of the measurement entirely.
		HeartbeatExpiry:          1000 * time.Hour,
		ReplicationSweepInterval: -1,
		ReportIntake:             intake,
	})
	if err := b.nn.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		a, err := addr(cfg.MetaShards + i)
		if err != nil {
			b.close()
			return nil, err
		}
		// A reporter's full-inventory report behind an ungated reconnect
		// storm can legitimately wait out the whole serialized backlog —
		// that queueing IS the measurement — so reports must not give up
		// on the default 30s deadline.
		c, err := transport.Dial(clock, net, b.nnAddr, transport.WithCallTimeout(time.Hour))
		if err != nil {
			b.close()
			return nil, err
		}
		b.reporters = append(b.reporters, &reporter{
			addr: a, conn: c,
			rng: rand.New(rand.NewSource(benchSeed + int64(i)*7919)),
		})
	}
	b.conns = make(map[string]*transport.Client)
	for _, a := range append([]string{b.nnAddr}, b.shardAddrs...) {
		// The fleet, too: a namespace op starved through a storm must be
		// *measured* at its true latency, not censored by a timeout.
		c, err := transport.Dial(clock, net, a, transport.WithCallTimeout(time.Hour))
		if err != nil {
			b.close()
			return nil, err
		}
		b.conns[a] = c
	}
	return b, nil
}

func (b *bench) close() {
	for _, r := range b.reporters {
		if r.conn != nil {
			r.conn.Close()
		}
	}
	for _, c := range b.conns {
		c.Close()
	}
	if b.nn != nil {
		b.nn.Close()
	}
}

// nsConn returns the client-fleet connection to the endpoint owning
// path.
func (b *bench) nsConn(path string) *transport.Client {
	if b.cfg.MetaShards <= 1 {
		return b.conns[b.nnAddr]
	}
	return b.conns[b.shardAddrs[shardmap.FileShard(path, b.cfg.MetaShards)]]
}

// populate registers the reporters (empty — the cheap path) and builds
// the namespace: totalBlocks blocks across files of FileBlocks each,
// with placement assigning every block to a reporter. Each reporter's
// inventory is read back from the allocation responses, so reports
// describe exactly what the namenode assigned.
func (b *bench) populate() error {
	for _, r := range b.reporters {
		if _, err := transport.Call[dfs.RegisterResp](r.conn, "nn.register", dfs.RegisterReq{
			Addr: r.addr, Seq: r.nextSeq(), Epoch: 1,
		}); err != nil {
			return fmt.Errorf("register %s: %w", r.addr, err)
		}
		r.epoch = 1
	}
	byAddr := make(map[string]*reporter, len(b.reporters))
	for _, r := range b.reporters {
		byAddr[r.addr] = r
	}
	total := b.cfg.Nodes * b.cfg.BlocksPerNode
	nfiles := (total + b.cfg.FileBlocks - 1) / b.cfg.FileBlocks
	for i := 0; i < nfiles; i++ {
		b.files = append(b.files, fmt.Sprintf("/scale/f%06d", i))
	}
	sizes := make([]int64, b.cfg.FileBlocks)
	for i := range sizes {
		sizes[i] = 1 << 20
	}
	// Allocation is the expensive part of populate — each block's
	// placement shuffles the whole live list — so fan the files out
	// across workers. Shard locks bound the effective parallelism; the
	// workers just keep every shard busy.
	const workers = 16
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= nfiles {
					return
				}
				path := b.files[i]
				conn := b.nsConn(path)
				if _, err := transport.Call[dfs.CreateResp](conn, "nn.create", dfs.CreateReq{
					Path: path, BlockSize: 1 << 20, Replication: replication,
				}); err != nil {
					errs[w] = fmt.Errorf("create %s: %w", path, err)
					return
				}
				batch := sizes
				if rem := total - i*b.cfg.FileBlocks; rem < len(batch) {
					batch = sizes[:rem]
				}
				resp, err := transport.Call[dfs.AddBlocksResp](conn, "nn.addBlocks", dfs.AddBlocksReq{
					Path: path, Sizes: batch, ReqID: uint64(i + 1),
				})
				if err != nil {
					errs[w] = fmt.Errorf("addBlocks %s: %w", path, err)
					return
				}
				if _, err := transport.Call[dfs.CompleteResp](conn, "nn.complete", dfs.CompleteReq{Path: path}); err != nil {
					errs[w] = fmt.Errorf("complete %s: %w", path, err)
					return
				}
				mu.Lock()
				for _, lb := range resp.Located {
					for _, addr := range lb.Nodes {
						if r := byAddr[addr]; r != nil {
							r.blocks = append(r.blocks, lb.Block.ID)
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// At these geometries uniform placement leaves no node empty; an
	// empty inventory means reporter identities collided somewhere.
	for _, r := range b.reporters {
		if len(r.blocks) == 0 {
			return fmt.Errorf("populate: reporter %s was assigned no blocks", r.addr)
		}
	}
	return nil
}

// fullReportRound has every reporter push its complete inventory — the
// pre-incremental steady state, and the resync path after gaps.
func (b *bench) fullReportRound() (time.Duration, error) {
	start := time.Now()
	errs := make([]error, len(b.reporters))
	var wg sync.WaitGroup
	for i, r := range b.reporters {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = r.sendFull(b)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// sendFull pushes the reporter's inventory, retrying with its seeded
// jittered backoff while the intake gate pushes back.
func (r *reporter) sendFull(b *bench) error {
	req := dfs.BlockReportReq{Addr: r.addr, Blocks: r.blocks, Seq: r.nextSeq(), Epoch: r.epoch + 1}
	delay := 2 * time.Millisecond
	for {
		_, err := transport.Call[dfs.BlockReportResp](r.conn, "nn.blockReport", req)
		if err == nil {
			r.epoch = req.Epoch
			return nil
		}
		if !dfs.IsBusy(err) {
			return err
		}
		time.Sleep(time.Duration(float64(delay) * (0.5 + r.rng.Float64())))
		if delay < 256*time.Millisecond {
			delay *= 2
		}
		req.Seq = r.nextSeq()
	}
}

// incrementalRound has every reporter send one delta heartbeat: Churn
// removes (this round's window of its inventory) and Churn adds (the
// window the previous round removed — an idempotent re-add on round
// 0), the shape of steady-state replica churn. At most one window per
// node is ever absent. The two lists stay disjoint because a real
// datanode nets out a block appearing in both (the pending-map
// collapse), and the namenode applies adds before removes.
func (b *bench) incrementalRound(round int) (time.Duration, error) {
	start := time.Now()
	errs := make([]error, len(b.reporters))
	var wg sync.WaitGroup
	window := func(blocks []dfs.BlockID, r int) []dfs.BlockID {
		churn := min(b.cfg.Churn, len(blocks))
		if churn == 0 {
			return nil
		}
		windows := max(1, len(blocks)/churn)
		at := (((r % windows) + windows) % windows) * churn
		return blocks[at:min(at+churn, len(blocks))]
	}
	for i, r := range b.reporters {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := transport.Call[dfs.HeartbeatResp](r.conn, "nn.heartbeat", dfs.HeartbeatReq{
				Addr: r.addr, Seq: r.nextSeq(), Epoch: r.epoch,
				Added:   window(r.blocks, round-1),
				Removed: window(r.blocks, round),
			})
			errs[i] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// storm reconnects every reporter at once — the cold-restart reconnect
// storm, each register carrying a full inventory reconcile — while an
// open-loop client fleet issues Zipf-distributed nn.getLocations calls
// against the namespace endpoints and records their latency.
func (b *bench) storm() (stormWall time.Duration, lat []time.Duration, fleetOps int, err error) {
	done := make(chan struct{})
	errs := make([]error, len(b.reporters))
	var wg sync.WaitGroup
	start := time.Now()
	for i, r := range b.reporters {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := dfs.RegisterReq{Addr: r.addr, Blocks: r.blocks, Seq: r.nextSeq(), Epoch: r.epoch + 1}
			delay := 2 * time.Millisecond
			for {
				_, cerr := transport.Call[dfs.RegisterResp](r.conn, "nn.register", req)
				if cerr == nil {
					r.epoch = req.Epoch
					return
				}
				if !dfs.IsBusy(cerr) {
					errs[i] = cerr
					return
				}
				time.Sleep(time.Duration(float64(delay) * (0.5 + r.rng.Float64())))
				if delay < 256*time.Millisecond {
					delay *= 2
				}
				req.Seq = r.nextSeq()
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	// The open-loop fleet: arrivals on a fixed clock, each its own
	// goroutine, so namenode slowdown queues requests instead of
	// thinning the arrival rate (the closed-loop trap).
	zipfRng := rand.New(rand.NewSource(benchSeed))
	zipf := rand.NewZipf(zipfRng, 1.2, 1, uint64(len(b.files)-1))
	var latMu sync.Mutex
	var fleetWG sync.WaitGroup
	ticker := time.NewTicker(b.cfg.ArrivalInterval)
	defer ticker.Stop()
	// Sample at least this many arrivals even if the storm drains first,
	// so small geometries still yield a percentile; the storm wall is
	// captured the moment the storm itself completes.
	const minArrivals = 64
	for arrivals, stormRunning := 0, true; stormRunning || arrivals < minArrivals; {
		select {
		case <-done:
			stormWall = time.Since(start)
			stormRunning, done = false, nil
		case <-ticker.C:
			arrivals++
			path := b.files[zipf.Uint64()]
			fleetWG.Add(1)
			go func() {
				defer fleetWG.Done()
				t0 := time.Now()
				_, cerr := transport.Call[dfs.GetLocationsResp](b.nsConn(path), "nn.getLocations", dfs.GetLocationsReq{Path: path})
				d := time.Since(t0)
				latMu.Lock()
				if cerr == nil {
					lat = append(lat, d)
				}
				latMu.Unlock()
			}()
		}
	}
	fleetWG.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, nil, 0, e
		}
	}
	return stormWall, lat, len(lat), nil
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// reportBytes reads the namenode's analytic report-byte counter.
func (b *bench) reportBytes() int64 { return b.nn.Stats().ReportBytes }

// runTransport measures one transport: the gated instance carries the
// report rounds and the gated storm; a second, ungated instance
// re-runs the storm with the intake bound disabled for contrast.
func runTransport(cfg Config, kind Transport, newNet func() (transport.Network, func(i int) (string, error), error)) ([]Result, error) {
	totalBlocks := cfg.Nodes * cfg.BlocksPerNode
	base := Result{Transport: string(kind), Nodes: cfg.Nodes, Blocks: totalBlocks}
	var out []Result

	net, addr, err := newNet()
	if err != nil {
		return nil, err
	}
	b, err := startBench(cfg, simclock.NewReal(), net, true, addr)
	if err != nil {
		return nil, err
	}
	if err := b.populate(); err != nil {
		b.close()
		return nil, err
	}

	// Full-report round: bytes normalized to one report per node per
	// one-second freshness interval.
	before := b.reportBytes()
	wall, err := b.fullReportRound()
	if err != nil {
		b.close()
		return nil, err
	}
	fullBytes := b.reportBytes() - before
	full := base
	full.Name = fmt.Sprintf("BenchmarkScaleFullReport/%s", kind)
	full.Ops = cfg.Nodes
	full.WallNs = wall.Nanoseconds()
	full.RPCsPerSec = float64(cfg.Nodes) / wall.Seconds()
	full.BytesPerSec = float64(fullBytes)
	out = append(out, full)

	// Incremental rounds: the steady state the deltas buy.
	before = b.reportBytes()
	var incWall time.Duration
	for round := 0; round < cfg.IncRounds; round++ {
		w, err := b.incrementalRound(round)
		if err != nil {
			b.close()
			return nil, err
		}
		incWall += w
	}
	incBytes := (b.reportBytes() - before) / int64(cfg.IncRounds)
	inc := base
	inc.Name = fmt.Sprintf("BenchmarkScaleIncremental/%s", kind)
	inc.Ops = cfg.Nodes * cfg.IncRounds
	inc.WallNs = incWall.Nanoseconds()
	inc.RPCsPerSec = float64(inc.Ops) / incWall.Seconds()
	inc.BytesPerSec = float64(incBytes)
	if incBytes > 0 {
		inc.BytesRatio = float64(fullBytes) / float64(incBytes)
	}
	out = append(out, inc)

	// Gated storm.
	rejectsBefore := b.nn.Stats().BusyRejects
	wall, lat, fleetOps, err := b.storm()
	if err != nil {
		b.close()
		return nil, err
	}
	gated := base
	gated.Name = fmt.Sprintf("BenchmarkScaleStorm/%s/gated", kind)
	gated.Gated = true
	gated.Ops = cfg.Nodes
	gated.WallNs = wall.Nanoseconds()
	gated.RPCsPerSec = float64(cfg.Nodes) / wall.Seconds()
	gated.P50Ns = percentile(lat, 0.50).Nanoseconds()
	gated.P99Ns = percentile(lat, 0.99).Nanoseconds()
	gated.FleetOps = fleetOps
	gated.BusyRejects = b.nn.Stats().BusyRejects - rejectsBefore
	out = append(out, gated)
	b.close()

	// Ungated storm on a fresh instance: same registry, no intake bound.
	net, addr, err = newNet()
	if err != nil {
		return nil, err
	}
	b, err = startBench(cfg, simclock.NewReal(), net, false, addr)
	if err != nil {
		return nil, err
	}
	defer b.close()
	if err := b.populate(); err != nil {
		return nil, err
	}
	wall, lat, fleetOps, err = b.storm()
	if err != nil {
		return nil, err
	}
	ungated := base
	ungated.Name = fmt.Sprintf("BenchmarkScaleStorm/%s/ungated", kind)
	ungated.Ops = cfg.Nodes
	ungated.WallNs = wall.Nanoseconds()
	ungated.RPCsPerSec = float64(cfg.Nodes) / wall.Seconds()
	ungated.P50Ns = percentile(lat, 0.50).Nanoseconds()
	ungated.P99Ns = percentile(lat, 0.99).Nanoseconds()
	ungated.FleetOps = fleetOps
	out = append(out, ungated)
	return out, nil
}

func runInmem(cfg Config) ([]Result, error) {
	return runTransport(cfg, Inmem, func() (transport.Network, func(i int) (string, error), error) {
		net := transport.NewInmemNetwork(simclock.NewReal())
		addr := func(i int) (string, error) {
			if i < 0 {
				return "nn", nil
			}
			if i < cfg.MetaShards {
				return fmt.Sprintf("nn-s%d", i), nil
			}
			return fmt.Sprintf("dn%04d", i-cfg.MetaShards), nil
		}
		return net, addr, nil
	})
}

func runTCP(cfg Config) ([]Result, error) {
	cfg = cfg.scaledForTCP()
	dfs.RegisterWire()
	return runTransport(cfg, TCP, func() (transport.Network, func(i int) (string, error), error) {
		net := transport.NewTCPNetwork(transport.WithTCPFastPath(true))
		addr := func(i int) (string, error) {
			// Only the namenode and shard endpoints need real listening
			// sockets. Reporters are never dialed — their address is just
			// a registry identity — and reserving real ports for hundreds
			// of them risks the listen-then-close port being reissued,
			// which would silently collapse two reporters into one.
			if i >= cfg.MetaShards {
				return fmt.Sprintf("10.77.%d.%d:9866", (i-cfg.MetaShards)/256, (i-cfg.MetaShards)%256), nil
			}
			l, err := net.Listen("127.0.0.1:0")
			if err != nil {
				return "", err
			}
			defer l.Close()
			return l.Addr(), nil
		}
		return net, addr, nil
	})
}

// Run executes the configured suite.
func Run(cfg Config) ([]Result, error) {
	var out []Result
	for _, kind := range cfg.Transports {
		var (
			results []Result
			err     error
		)
		switch kind {
		case Inmem:
			results, err = runInmem(cfg)
		case TCP:
			results, err = runTCP(cfg)
		default:
			err = fmt.Errorf("unknown transport %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("scalebench: %s: %w", kind, err)
		}
		out = append(out, results...)
	}
	return out, nil
}

// WriteJSON writes the records to path, one indented JSON array.
func WriteJSON(path string, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
