// Package mapreduce implements the execution engine that drives the
// paper's workloads: map tasks that read HDFS blocks (the stage Ignem
// accelerates), a modeled shuffle, reduce tasks, and output writes.
//
// Jobs run in one of two modes:
//
//   - Modeled: inputs are synthetic (sized) blocks; map/reduce compute is
//     charged through rate parameters. This is how the experiment-scale
//     workloads (SWIM, sort, wordcount sweeps, Hive) run.
//   - Real: map and reduce functions process actual bytes end to end
//     (RunReal), used by the runnable examples.
//
// The job submitter integration matches the paper: before a job is
// handed to the scheduler, a single Migrate call tells Ignem what the job
// will read; on completion an Evict call releases it.
package mapreduce

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/scheduler"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Config describes one modeled MapReduce job.
type Config struct {
	// ID identifies the job cluster-wide (reference lists, liveness).
	ID dfs.JobID
	// InputPaths are the DFS files the map stage reads.
	InputPaths []string

	// MapRateMBps is the map compute throughput over input bytes;
	// 0 means reading dominates and compute is negligible.
	MapRateMBps float64
	// TaskOverhead is the fixed per-task cost (container launch, JVM
	// warm-up). Default 250ms.
	TaskOverhead time.Duration

	// ShuffleBytes is the total map→reduce traffic. The engine charges
	// it against the network model across the reducers.
	ShuffleBytes int64
	// OutputBytes is the total job output written back to the DFS.
	OutputBytes int64
	// Reducers is the reduce-task count; default ceil(ShuffleBytes/256MB)
	// (minimum 1) when there is any shuffle or output.
	Reducers int
	// ReduceRateMBps is the reduce compute throughput over shuffle bytes;
	// 0 means negligible.
	ReduceRateMBps float64
	// OutputPath defaults to "/out/<job id>".
	OutputPath string

	// UseIgnem makes the submitter issue the Migrate call.
	UseIgnem bool
	// ImplicitEvict opts into eviction-on-read.
	ImplicitEvict bool
	// KeepPinned leaves the job's migrated inputs pinned at completion
	// instead of evicting. Iterative applications use it so later passes
	// reuse the in-memory copy, then evict once at the very end (via
	// client.Evict). The slave's liveness sweep still reclaims the pins
	// if the caller forgets.
	KeepPinned bool
	// ExtraLeadTime delays submission after the Migrate call (the
	// paper's Ignem+10s experiment); it is counted in the job duration.
	ExtraLeadTime time.Duration
	// SubmitOverhead is the platform cost between the submitter running
	// (where the Migrate call sits) and the job's tasks becoming
	// runnable: application-master startup, shipping binaries, JVM
	// warm-up (paper §II-C's lead-time sources). Negative disables it;
	// zero takes the engine default (8s, which together with scheduler
	// heartbeats yields the ~10s natural lead-time §IV-F reports).
	SubmitOverhead time.Duration
}

func (c *Config) setDefaults() {
	if c.TaskOverhead == 0 {
		c.TaskOverhead = 250 * time.Millisecond
	}
	if c.Reducers <= 0 && (c.ShuffleBytes > 0 || c.OutputBytes > 0) {
		c.Reducers = int((c.ShuffleBytes + (256 << 20) - 1) / (256 << 20))
		if c.Reducers < 1 {
			c.Reducers = 1
		}
	}
	if c.OutputPath == "" {
		c.OutputPath = "/out/" + string(c.ID)
	}
}

// Result reports a finished job.
type Result struct {
	Job        dfs.JobID
	InputBytes int64
	Submitted  time.Time
	Finished   time.Time
	// Duration is wall time from the submitter starting (including the
	// migrate call and any inserted lead-time) to job completion.
	Duration time.Duration
	// MapResults are the scheduler-level map task results.
	MapResults []scheduler.TaskResult
	// BlockReads are the instrumented block reads of the map stage.
	BlockReads []client.BlockReadEvent
	// MigratedBlocks counts map-stage reads served from pinned memory.
	MigratedBlocks int
}

// MeanMapDuration returns the mean map-task runtime.
func (r Result) MeanMapDuration() time.Duration {
	if len(r.MapResults) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range r.MapResults {
		sum += t.RunTime
	}
	return sum / time.Duration(len(r.MapResults))
}

// Option configures an Engine.
type Option func(*Engine)

// WithNetworkMBps sets the shuffle bandwidth model (default 1250 MB/s).
func WithNetworkMBps(mbps float64) Option {
	return func(e *Engine) { e.netMBps = mbps }
}

// WithSubmitOverhead sets the default platform overhead between the job
// submitter and tasks becoming runnable (default 8s).
func WithSubmitOverhead(d time.Duration) Option {
	return func(e *Engine) { e.submitOverhead = d }
}

// Engine runs MapReduce jobs on a scheduler and a DFS.
type Engine struct {
	clock          simclock.Clock
	sched          *scheduler.Scheduler
	net            transport.Network
	nnAddr         string
	netMBps        float64
	submitOverhead time.Duration

	mu      sync.Mutex
	submit  *client.Client
	clients map[string]*client.Client
	readers map[dfs.JobID]*readCollector
}

type readCollector struct {
	mu     sync.Mutex
	events []client.BlockReadEvent
}

// NewEngine creates an engine. It dials the namenode lazily per node.
func NewEngine(clock simclock.Clock, sched *scheduler.Scheduler, net transport.Network, nnAddr string, opts ...Option) *Engine {
	e := &Engine{
		clock:          clock,
		sched:          sched,
		net:            net,
		nnAddr:         nnAddr,
		netMBps:        1250,
		submitOverhead: 8 * time.Second,
		clients:        make(map[string]*client.Client),
		readers:        make(map[dfs.JobID]*readCollector),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the engine's current (possibly virtual) time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Close releases all DFS connections held by the engine.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.submit != nil {
		e.submit.Close()
		e.submit = nil
	}
	for _, c := range e.clients {
		c.Close()
	}
	e.clients = make(map[string]*client.Client)
}

// SubmitClient returns the engine's off-node DFS client (the job
// submitter's client), dialing on first use.
func (e *Engine) SubmitClient() (*client.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked()
}

func (e *Engine) submitLocked() (*client.Client, error) {
	if e.submit == nil {
		// Serial writes: task-output timing feeds the seeded experiment
		// figures, which must stay bit-identical.
		c, err := client.New(e.clock, e.net, e.nnAddr,
			client.WithReadObserver(e.dispatch), client.WithWriteParallelism(1))
		if err != nil {
			return nil, err
		}
		e.submit = c
	}
	return e.submit, nil
}

// nodeClient returns the cached task client co-located with node.
func (e *Engine) nodeClient(node string) (*client.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.clients[node]; ok {
		return c, nil
	}
	c, err := client.New(e.clock, e.net, e.nnAddr,
		client.WithLocalAddr(node), client.WithReadObserver(e.dispatch),
		client.WithWriteParallelism(1))
	if err != nil {
		return nil, err
	}
	e.clients[node] = c
	return c, nil
}

// dispatch routes block-read events to the running job that issued them.
func (e *Engine) dispatch(ev client.BlockReadEvent) {
	e.mu.Lock()
	rc := e.readers[ev.Job]
	e.mu.Unlock()
	if rc == nil {
		return
	}
	rc.mu.Lock()
	rc.events = append(rc.events, ev)
	rc.mu.Unlock()
}

// Run executes one modeled job and blocks until it finishes.
func (e *Engine) Run(cfg Config) (Result, error) {
	cfg.setDefaults()
	if cfg.ID == "" {
		return Result{}, fmt.Errorf("mapreduce: empty job ID")
	}
	if len(cfg.InputPaths) == 0 {
		return Result{}, fmt.Errorf("mapreduce: job %s has no inputs", cfg.ID)
	}
	start := e.clock.Now()

	sc, err := e.SubmitClient()
	if err != nil {
		return Result{}, err
	}

	rc := &readCollector{}
	e.mu.Lock()
	e.readers[cfg.ID] = rc
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.readers, cfg.ID)
		e.mu.Unlock()
	}()

	// The job submitter's Ignem hook: one call, before submission.
	if cfg.UseIgnem {
		if _, err := sc.Migrate(cfg.ID, cfg.InputPaths, cfg.ImplicitEvict); err != nil {
			return Result{}, fmt.Errorf("mapreduce: migrate: %w", err)
		}
	}
	if cfg.ExtraLeadTime > 0 {
		e.clock.Sleep(cfg.ExtraLeadTime)
	}
	switch {
	case cfg.SubmitOverhead > 0:
		e.clock.Sleep(cfg.SubmitOverhead)
	case cfg.SubmitOverhead == 0:
		e.clock.Sleep(e.submitOverhead)
	}

	// Resolve inputs to blocks; one map task per block.
	type split struct {
		path string
		lb   dfs.LocatedBlock
	}
	var splits []split
	var inputBytes int64
	for _, path := range cfg.InputPaths {
		lbs, err := sc.LocationsForJob(path, cfg.ID)
		if err != nil {
			return Result{}, fmt.Errorf("mapreduce: %w", err)
		}
		for _, lb := range lbs {
			splits = append(splits, split{path: path, lb: lb})
			inputBytes += lb.Block.Size
		}
	}

	job, err := e.sched.SubmitJob(cfg.ID)
	if err != nil {
		return Result{}, err
	}

	mapTasks := make([]scheduler.TaskSpec, len(splits))
	for i, sp := range splits {
		sp := sp
		strong, weak := placementPreferences(sp.lb)
		mapTasks[i] = scheduler.TaskSpec{
			Name:           fmt.Sprintf("%s-map-%d", cfg.ID, i),
			PreferredNodes: strong,
			SecondaryNodes: weak,
			Run: func(node string) {
				e.runMapTask(node, cfg, sp.path, sp.lb)
			},
		}
	}
	mapResults := job.RunTasks(mapTasks)

	// Shuffle + reduce stage.
	if cfg.Reducers > 0 {
		reduceTasks := make([]scheduler.TaskSpec, cfg.Reducers)
		shufflePer := cfg.ShuffleBytes / int64(cfg.Reducers)
		outPer := cfg.OutputBytes / int64(cfg.Reducers)
		for i := range reduceTasks {
			i := i
			reduceTasks[i] = scheduler.TaskSpec{
				Name: fmt.Sprintf("%s-reduce-%d", cfg.ID, i),
				Run: func(node string) {
					e.runReduceTask(node, cfg, i, shufflePer, outPer)
				},
			}
		}
		job.RunTasks(reduceTasks)
	}

	// Completion: release the inputs and the scheduler entry.
	if cfg.UseIgnem && !cfg.KeepPinned {
		if _, err := sc.Evict(cfg.ID, cfg.InputPaths); err != nil {
			return Result{}, fmt.Errorf("mapreduce: evict: %w", err)
		}
	}
	job.Complete()

	end := e.clock.Now()
	rc.mu.Lock()
	events := make([]client.BlockReadEvent, len(rc.events))
	copy(events, rc.events)
	rc.mu.Unlock()
	migrated := 0
	for _, ev := range events {
		if ev.FromMemory {
			migrated++
		}
	}
	return Result{
		Job:            cfg.ID,
		InputBytes:     inputBytes,
		Submitted:      start,
		Finished:       end,
		Duration:       end.Sub(start),
		MapResults:     mapResults,
		BlockReads:     events,
		MigratedBlocks: migrated,
	}, nil
}

func (e *Engine) runMapTask(node string, cfg Config, path string, lb dfs.LocatedBlock) {
	e.clock.Sleep(cfg.TaskOverhead)
	c, err := e.nodeClient(node)
	if err != nil {
		return
	}
	// Re-resolve the block so the read sees migration state that arrived
	// after job submission — this is how a task learns a migrated copy
	// exists and expresses the paper's locality preference.
	if fresh, err := c.LocationsForJob(path, cfg.ID); err == nil {
		for _, flb := range fresh {
			if flb.Block.ID == lb.Block.ID {
				lb = flb
				break
			}
		}
	}
	if _, err := c.ReadBlock(lb, cfg.ID); err != nil {
		return
	}
	if cfg.MapRateMBps > 0 {
		e.clock.Sleep(rateTime(lb.Block.Size, cfg.MapRateMBps))
	}
}

func (e *Engine) runReduceTask(node string, cfg Config, idx int, shuffleBytes, outBytes int64) {
	e.clock.Sleep(cfg.TaskOverhead)
	// Fetch the shuffle partition over the network.
	if shuffleBytes > 0 {
		e.clock.Sleep(rateTime(shuffleBytes, e.netMBps))
	}
	if cfg.ReduceRateMBps > 0 && shuffleBytes > 0 {
		e.clock.Sleep(rateTime(shuffleBytes, cfg.ReduceRateMBps))
	}
	if outBytes > 0 {
		c, err := e.nodeClient(node)
		if err != nil {
			return
		}
		part := fmt.Sprintf("%s/part-%05d", cfg.OutputPath, idx)
		// Best effort: output write failures surface via missing files.
		_ = c.WriteSyntheticFile(part, outBytes, 0, 1)
	}
}

// placementPreferences derives the task's locality preference: every
// replica holder, with the Ignem-assigned one listed first. All holders
// stay first-tier so an idle cluster can start the task anywhere at its
// next heartbeat; the read path still finds the migrated copy remotely
// (the paper: a task that cannot run on the migrated server "can still
// efficiently read the block over the network").
func placementPreferences(lb dfs.LocatedBlock) (strong, weak []string) {
	return preferredNodes(lb), nil
}

func preferredNodes(lb dfs.LocatedBlock) []string {
	out := make([]string, 0, len(lb.Migrated)+len(lb.OnSSD)+len(lb.Nodes)+1)
	if lb.Assigned != "" {
		out = append(out, lb.Assigned)
	}
	out = append(out, lb.Migrated...)
	appendNew := func(nodes []string) {
		for _, n := range nodes {
			dup := false
			for _, seen := range out {
				if seen == n {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, n)
			}
		}
	}
	// SSD-resident copies rank between pinned-in-RAM and plain disk
	// replicas, mirroring the client's read-path preference.
	appendNew(lb.OnSSD)
	appendNew(lb.Nodes)
	return out
}

func rateTime(bytes int64, mbps float64) time.Duration {
	return time.Duration(float64(bytes) / (mbps * 1e6) * float64(time.Second))
}
