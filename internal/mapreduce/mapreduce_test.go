package mapreduce_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/simclock"
)

func runSim(t *testing.T, fn func(v *simclock.Virtual)) {
	t.Helper()
	if err := cluster.RunVirtual(120*time.Second, fn); err != nil {
		t.Fatal(err)
	}
}

func startCluster(t *testing.T, v *simclock.Virtual, mode cluster.Mode) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(v, cluster.Config{
		Nodes:              4,
		Mode:               mode,
		SchedulerHeartbeat: time.Second,
		Seed:               11,
	})
	if err != nil {
		t.Fatalf("cluster start: %v", err)
	}
	return c
}

func writeInput(t *testing.T, c *cluster.Cluster, path string, size int64) {
	t.Helper()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WriteSyntheticFile(path, size, 0, 3); err != nil {
		t.Fatalf("write input: %v", err)
	}
}

func TestModeledJobCompletes(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		writeInput(t, c, "/in", 4*dfs.DefaultBlockSize)

		res, err := c.Engine.Run(mapreduce.Config{
			ID:           "job1",
			InputPaths:   []string{"/in"},
			ShuffleBytes: 32 << 20,
			OutputBytes:  16 << 20,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.InputBytes != 4*dfs.DefaultBlockSize {
			t.Errorf("InputBytes = %d", res.InputBytes)
		}
		if len(res.MapResults) != 4 {
			t.Errorf("map tasks = %d, want 4", len(res.MapResults))
		}
		if len(res.BlockReads) != 4 {
			t.Errorf("instrumented block reads = %d, want 4", len(res.BlockReads))
		}
		if res.Duration <= 0 {
			t.Error("non-positive duration")
		}
		// Output parts exist.
		cl, _ := c.Client()
		defer cl.Close()
		files, err := cl.List("/out/job1/")
		if err != nil || len(files) == 0 {
			t.Errorf("no output files: %v", err)
		}
	})
}

func TestIgnemJobFasterThanHDFS(t *testing.T) {
	var hdfsDur, ignemDur time.Duration
	var migrated int
	run := func(mode cluster.Mode) (time.Duration, int) {
		var dur time.Duration
		var mig int
		runSim(t, func(v *simclock.Virtual) {
			c := startCluster(t, v, mode)
			defer c.Close()
			writeInput(t, c, "/in", 6*dfs.DefaultBlockSize)
			// Background load: other tasks keep the disks busy so reads
			// contend (the regime where migration pays off).
			res, err := c.Engine.Run(mapreduce.Config{
				ID:         "job",
				InputPaths: []string{"/in"},
				UseIgnem:   c.UseIgnem(),
				// Lead-time for migration before the job's tasks start.
				ExtraLeadTime: 10 * time.Second,
			})
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			dur = res.Duration
			mig = res.MigratedBlocks
		})
		return dur, mig
	}
	hdfsDur, _ = run(cluster.ModeHDFS)
	ignemDur, migrated = run(cluster.ModeIgnem)
	if migrated == 0 {
		t.Error("Ignem migrated no blocks despite lead-time")
	}
	if ignemDur >= hdfsDur {
		t.Errorf("Ignem job (%v) not faster than HDFS job (%v)", ignemDur, hdfsDur)
	}
}

func TestInputsInRAMIsUpperBound(t *testing.T) {
	durations := map[cluster.Mode]time.Duration{}
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeInputsInRAM} {
		mode := mode
		runSim(t, func(v *simclock.Virtual) {
			c := startCluster(t, v, mode)
			defer c.Close()
			writeInput(t, c, "/in", 8*dfs.DefaultBlockSize)
			res, err := c.Engine.Run(mapreduce.Config{ID: "job", InputPaths: []string{"/in"}})
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			durations[mode] = res.Duration
		})
	}
	if durations[cluster.ModeInputsInRAM] >= durations[cluster.ModeHDFS] {
		t.Errorf("RAM config (%v) not faster than HDFS (%v)",
			durations[cluster.ModeInputsInRAM], durations[cluster.ModeHDFS])
	}
}

func TestEvictionAfterJobCompletes(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeIgnem)
		defer c.Close()
		writeInput(t, c, "/in", 2*dfs.DefaultBlockSize)
		if _, err := c.Engine.Run(mapreduce.Config{
			ID: "job", InputPaths: []string{"/in"}, UseIgnem: true, ExtraLeadTime: 15 * time.Second,
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		// After completion + evict, no memory is pinned.
		if got := c.TotalPinnedBytes(); got != 0 {
			t.Errorf("pinned %d bytes after job completed", got)
		}
	})
}

func TestJobErrors(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		if _, err := c.Engine.Run(mapreduce.Config{ID: "", InputPaths: []string{"/x"}}); err == nil {
			t.Error("empty job ID accepted")
		}
		if _, err := c.Engine.Run(mapreduce.Config{ID: "j"}); err == nil {
			t.Error("job with no inputs accepted")
		}
		if _, err := c.Engine.Run(mapreduce.Config{ID: "j", InputPaths: []string{"/missing"}}); err == nil {
			t.Error("missing input accepted")
		}
	})
}

func TestMapTasksPreferLocalNodes(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		writeInput(t, c, "/in", 6*dfs.DefaultBlockSize)
		res, err := c.Engine.Run(mapreduce.Config{ID: "job", InputPaths: []string{"/in"}})
		if err != nil {
			t.Fatal(err)
		}
		local := 0
		for _, tr := range res.MapResults {
			if tr.NodeLocal {
				local++
			}
		}
		// With replication 3 on 4 nodes, most tasks should be node-local.
		if local < len(res.MapResults)/2 {
			t.Errorf("only %d/%d map tasks node-local", local, len(res.MapResults))
		}
	})
}

func wordcountMap(data []byte) []mapreduce.Pair {
	var out []mapreduce.Pair
	for _, w := range strings.Fields(string(data)) {
		out = append(out, mapreduce.Pair{Key: strings.ToLower(w), Value: "1"})
	}
	return out
}

func wordcountReduce(key string, values []string) mapreduce.Pair {
	return mapreduce.Pair{Key: key, Value: fmt.Sprint(len(values))}
}

func TestRealWordcount(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeIgnem)
		defer c.Close()
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WriteFile("/corpus/a", []byte("the quick brown fox jumps over the lazy dog"), 0, 2); err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile("/corpus/b", []byte("the dog barks and the fox runs"), 0, 2); err != nil {
			t.Fatal(err)
		}
		res, err := c.Engine.RunReal(mapreduce.RealConfig{
			ID:         "wc",
			InputPaths: []string{"/corpus/a", "/corpus/b"},
			Map:        wordcountMap,
			Reduce:     wordcountReduce,
			Reducers:   2,
			UseIgnem:   true,
		})
		if err != nil {
			t.Fatalf("RunReal: %v", err)
		}
		counts := map[string]string{}
		for _, p := range res.OutputPaths {
			data, err := cl.ReadFile(p, "check")
			if err != nil {
				t.Fatalf("read output %s: %v", p, err)
			}
			for _, line := range strings.Split(string(data), "\n") {
				if line == "" {
					continue
				}
				kv := strings.SplitN(line, "\t", 2)
				if len(kv) == 2 {
					counts[kv[0]] = kv[1]
				}
			}
		}
		want := map[string]string{"the": "4", "fox": "2", "dog": "2", "quick": "1"}
		for k, wv := range want {
			if counts[k] != wv {
				t.Errorf("count[%s] = %s, want %s", k, counts[k], wv)
			}
		}
		if c.TotalPinnedBytes() != 0 {
			t.Error("real job leaked pinned memory")
		}
	})
}

func TestRealSortProducesSortedOutput(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		cl, _ := c.Client()
		defer cl.Close()
		if err := cl.WriteFile("/in/f", []byte("delta\nalpha\ncharlie\nbravo"), 0, 1); err != nil {
			t.Fatal(err)
		}
		res, err := c.Engine.RunReal(mapreduce.RealConfig{
			ID:         "sort",
			InputPaths: []string{"/in/f"},
			Map: func(data []byte) []mapreduce.Pair {
				var out []mapreduce.Pair
				for _, line := range strings.Split(string(data), "\n") {
					if line != "" {
						out = append(out, mapreduce.Pair{Key: line, Value: line})
					}
				}
				return out
			},
			Reducers: 1,
		})
		if err != nil {
			t.Fatalf("RunReal: %v", err)
		}
		data, err := cl.ReadFile(res.OutputPaths[0], "check")
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			keys = append(keys, strings.SplitN(line, "\t", 2)[0])
		}
		want := []string{"alpha", "bravo", "charlie", "delta"}
		if len(keys) != len(want) {
			t.Fatalf("keys = %v", keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Errorf("output not sorted: %v", keys)
				break
			}
		}
	})
}

func TestConcurrentJobs(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeIgnem)
		defer c.Close()
		for i := 0; i < 4; i++ {
			writeInput(t, c, fmt.Sprintf("/in/%d", i), 2*dfs.DefaultBlockSize)
		}
		wg := simclock.NewWaitGroup(v)
		for i := 0; i < 4; i++ {
			i := i
			wg.Go(func() {
				_, err := c.Engine.Run(mapreduce.Config{
					ID:         dfs.JobID(fmt.Sprintf("job-%d", i)),
					InputPaths: []string{fmt.Sprintf("/in/%d", i)},
					UseIgnem:   true,
				})
				if err != nil {
					t.Errorf("job %d: %v", i, err)
				}
			})
		}
		wg.Wait()
		if got := c.TotalPinnedBytes(); got != 0 {
			t.Errorf("pinned %d bytes after all jobs done", got)
		}
	})
}

func TestRealJobValidation(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		if _, err := c.Engine.RunReal(mapreduce.RealConfig{}); err == nil {
			t.Error("empty real config accepted")
		}
		if _, err := c.Engine.RunReal(mapreduce.RealConfig{
			ID:         "j",
			InputPaths: []string{"/missing"},
			Map:        func([]byte) []mapreduce.Pair { return nil },
		}); err == nil {
			t.Error("missing input accepted")
		}
	})
}

func TestRealJobIdentityReduce(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c := startCluster(t, v, cluster.ModeHDFS)
		defer c.Close()
		cl, _ := c.Client()
		defer cl.Close()
		if err := cl.WriteFile("/in", []byte("k1 k2 k1"), 0, 1); err != nil {
			t.Fatal(err)
		}
		// Nil Reduce passes the first value through per key.
		res, err := c.Engine.RunReal(mapreduce.RealConfig{
			ID:         "identity",
			InputPaths: []string{"/in"},
			Map: func(data []byte) []mapreduce.Pair {
				var out []mapreduce.Pair
				for _, w := range strings.Fields(string(data)) {
					out = append(out, mapreduce.Pair{Key: w, Value: "v-" + w})
				}
				return out
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := cl.ReadFile(res.OutputPaths[0], "check")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "k1\tv-k1") || !strings.Contains(string(data), "k2\tv-k2") {
			t.Errorf("identity output:\n%s", data)
		}
		if res.InputBytes == 0 || len(res.BlockReads) == 0 {
			t.Errorf("result lacks instrumentation: %+v", res)
		}
	})
}

func TestMeanMapDuration(t *testing.T) {
	var r mapreduce.Result
	if r.MeanMapDuration() != 0 {
		t.Error("empty result mean not zero")
	}
}
