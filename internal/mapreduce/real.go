package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/scheduler"
)

// Pair is one key/value record flowing between real map and reduce
// functions.
type Pair struct {
	Key   string
	Value string
}

// RealConfig describes a job whose map and reduce functions process
// actual bytes (the runnable examples: wordcount, sort, grep).
type RealConfig struct {
	// ID identifies the job cluster-wide.
	ID dfs.JobID
	// InputPaths are the input files; each file is one map task, so
	// records never straddle task boundaries.
	InputPaths []string
	// Map turns one input file's bytes into key/value pairs.
	Map func(data []byte) []Pair
	// Reduce folds all values of one key into a single output pair.
	// Nil means identity (each pair passes through).
	Reduce func(key string, values []string) Pair
	// Reducers is the reduce-task count (default 1). Keys are hash
	// partitioned; each reducer emits one sorted output part.
	Reducers int
	// OutputPath defaults to "/out/<job id>"; part files are written
	// under it as "key\tvalue" lines.
	OutputPath string
	// TaskOverhead is the fixed per-task cost. Default 250ms.
	TaskOverhead time.Duration

	// UseIgnem and ImplicitEvict control the submitter's migration hook.
	UseIgnem      bool
	ImplicitEvict bool
}

// RealResult reports a finished real-data job.
type RealResult struct {
	Job         dfs.JobID
	Duration    time.Duration
	InputBytes  int64
	OutputPaths []string
	MapResults  []scheduler.TaskResult
	// BlockReads are the instrumented input block reads.
	BlockReads []client.BlockReadEvent
}

// RunReal executes a real-data MapReduce job and blocks until it
// finishes, including writing its output files to the DFS.
func (e *Engine) RunReal(cfg RealConfig) (RealResult, error) {
	if cfg.ID == "" || len(cfg.InputPaths) == 0 || cfg.Map == nil {
		return RealResult{}, fmt.Errorf("mapreduce: real job needs ID, inputs and a map function")
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = 1
	}
	if cfg.OutputPath == "" {
		cfg.OutputPath = "/out/" + string(cfg.ID)
	}
	if cfg.TaskOverhead == 0 {
		cfg.TaskOverhead = 250 * time.Millisecond
	}
	start := e.clock.Now()

	sc, err := e.SubmitClient()
	if err != nil {
		return RealResult{}, err
	}
	rc := &readCollector{}
	e.mu.Lock()
	e.readers[cfg.ID] = rc
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.readers, cfg.ID)
		e.mu.Unlock()
	}()
	if cfg.UseIgnem {
		if _, err := sc.Migrate(cfg.ID, cfg.InputPaths, cfg.ImplicitEvict); err != nil {
			return RealResult{}, fmt.Errorf("mapreduce: migrate: %w", err)
		}
	}
	e.clock.Sleep(e.submitOverhead)

	var inputBytes int64
	taskPrefs := make([][]string, len(cfg.InputPaths))
	for i, path := range cfg.InputPaths {
		lbs, err := sc.LocationsForJob(path, cfg.ID)
		if err != nil {
			return RealResult{}, err
		}
		prefSet := map[string]struct{}{}
		for _, lb := range lbs {
			inputBytes += lb.Block.Size
			for _, n := range preferredNodes(lb) {
				prefSet[n] = struct{}{}
			}
		}
		for n := range prefSet {
			taskPrefs[i] = append(taskPrefs[i], n)
		}
		sort.Strings(taskPrefs[i])
	}

	job, err := e.sched.SubmitJob(cfg.ID)
	if err != nil {
		return RealResult{}, err
	}

	// Map stage: each task reads its whole file and emits partitioned
	// pairs into the shuffle.
	partitions := make([]map[string][]string, cfg.Reducers)
	for i := range partitions {
		partitions[i] = make(map[string][]string)
	}
	var shuffleMu sync.Mutex
	var shuffleBytes int64
	var firstErr error

	mapTasks := make([]scheduler.TaskSpec, len(cfg.InputPaths))
	for i, path := range cfg.InputPaths {
		i, path := i, path
		mapTasks[i] = scheduler.TaskSpec{
			Name:           fmt.Sprintf("%s-map-%d", cfg.ID, i),
			PreferredNodes: taskPrefs[i],
			Run: func(node string) {
				e.clock.Sleep(cfg.TaskOverhead)
				c, err := e.nodeClient(node)
				if err != nil {
					recordErr(&shuffleMu, &firstErr, err)
					return
				}
				data, err := c.ReadFile(path, cfg.ID)
				if err != nil {
					recordErr(&shuffleMu, &firstErr, err)
					return
				}
				pairs := cfg.Map(data)
				shuffleMu.Lock()
				for _, p := range pairs {
					idx := partition(p.Key, cfg.Reducers)
					partitions[idx][p.Key] = append(partitions[idx][p.Key], p.Value)
					shuffleBytes += int64(len(p.Key) + len(p.Value))
				}
				shuffleMu.Unlock()
			},
		}
	}
	mapResults := job.RunTasks(mapTasks)
	if firstErr != nil {
		job.Complete()
		return RealResult{}, fmt.Errorf("mapreduce: map stage: %w", firstErr)
	}

	// Reduce stage: each task folds its partition and writes one sorted
	// output part to the DFS.
	outPaths := make([]string, cfg.Reducers)
	reduceTasks := make([]scheduler.TaskSpec, cfg.Reducers)
	for i := range reduceTasks {
		i := i
		reduceTasks[i] = scheduler.TaskSpec{
			Name: fmt.Sprintf("%s-reduce-%d", cfg.ID, i),
			Run: func(node string) {
				e.clock.Sleep(cfg.TaskOverhead)
				// Charge the shuffle fetch against the network model.
				e.clock.Sleep(rateTime(shuffleBytes/int64(cfg.Reducers), e.netMBps))
				part := partitions[i]
				keys := make([]string, 0, len(part))
				for k := range part {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var out []byte
				for _, k := range keys {
					p := Pair{Key: k}
					if cfg.Reduce != nil {
						p = cfg.Reduce(k, part[k])
					} else if len(part[k]) > 0 {
						p.Value = part[k][0]
					}
					out = append(out, p.Key...)
					out = append(out, '\t')
					out = append(out, p.Value...)
					out = append(out, '\n')
				}
				c, err := e.nodeClient(node)
				if err != nil {
					recordErr(&shuffleMu, &firstErr, err)
					return
				}
				path := fmt.Sprintf("%s/part-%05d", cfg.OutputPath, i)
				if len(out) == 0 {
					out = []byte{'\n'}
				}
				if err := c.WriteFile(path, out, 0, 1); err != nil {
					recordErr(&shuffleMu, &firstErr, err)
					return
				}
				shuffleMu.Lock()
				outPaths[i] = path
				shuffleMu.Unlock()
			},
		}
	}
	job.RunTasks(reduceTasks)
	if firstErr != nil {
		job.Complete()
		return RealResult{}, fmt.Errorf("mapreduce: reduce stage: %w", firstErr)
	}

	if cfg.UseIgnem {
		if _, err := sc.Evict(cfg.ID, cfg.InputPaths); err != nil {
			return RealResult{}, fmt.Errorf("mapreduce: evict: %w", err)
		}
	}
	job.Complete()
	rc.mu.Lock()
	events := make([]client.BlockReadEvent, len(rc.events))
	copy(events, rc.events)
	rc.mu.Unlock()
	return RealResult{
		Job:         cfg.ID,
		Duration:    e.clock.Now().Sub(start),
		InputBytes:  inputBytes,
		OutputPaths: outPaths,
		MapResults:  mapResults,
		BlockReads:  events,
	}, nil
}

func recordErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
