// Package metabench hosts the metadata-plane throughput benchmarks:
// file creates, opens (getInfo), and block allocations per second
// against the namenode at shard counts {1, 2, 4, 8}, plus the unsharded
// plane as the regression baseline, on both transports. The records land
// in BENCH_meta.json via cmd/ignem-bench -metabench (or `make
// bench-meta`).
//
// The two transports measure different things on purpose. The in-memory
// transport runs on the virtual clock, where every connection is a
// modeled link that serializes messages at the wire latency — the
// single-endpoint funnel the sharded plane exists to remove — so its
// records are deterministic simulated-time throughput: a shared client
// multiplexing W workers over one namenode connection caps at
// 1/latency ops/sec, and shard routing lifts the cap by opening one
// connection per shard endpoint. The TCP transport runs on the real
// clock and reports wall-clock throughput of the full stack (sockets,
// codec, namespace locks); its scaling is bounded by the machine's core
// count, so on a small runner the inmem records carry the scaling
// claim and the TCP records pin the absolute single-node cost.
package metabench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/shardmap"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Benchmark geometry. Sixteen workers keep every shard endpoint's link
// saturated up to eight shards (two workers per connection); the alloc
// benchmark batches AllocBatch blocks per nn.addBlocks call, the shape
// the parallel write path produces.
const (
	Nodes        = 12
	Workers      = 16
	OpsPerWorker = 128
	OpenFiles    = 8 // pre-created files per worker for the open benchmark
	AllocBatch   = 16
	BlockSize    = 1 << 20
	Replication  = 2

	wallTimeout = 5 * time.Minute
	benchSeed   = 7
)

// ShardCounts are the sharded configurations measured; 0 (the unsharded
// plane) is always measured first as the regression baseline.
var ShardCounts = []int{1, 2, 4, 8}

// Transport selects the wire under benchmark.
type Transport string

const (
	Inmem Transport = "inmem"
	TCP   Transport = "tcp"
)

// Config sizes a metabench run. The zero value is not runnable; use
// Default or Smoke.
type Config struct {
	OpsPerWorker int
	ShardCounts  []int // sharded configs; the unsharded baseline is implicit
	Transports   []Transport
}

// Default is the full suite behind `make bench-meta`.
func Default() Config {
	return Config{
		OpsPerWorker: OpsPerWorker,
		ShardCounts:  ShardCounts,
		Transports:   []Transport{Inmem, TCP},
	}
}

// Smoke is the CI shape check: enough ops to exercise every path at
// shard counts 1 and 4 on both transports, small enough for `make ci`.
func Smoke() Config {
	return Config{
		OpsPerWorker: 8,
		ShardCounts:  []int{1, 4},
		Transports:   []Transport{Inmem, TCP},
	}
}

// Result is one benchmark record of BENCH_meta.json. Shards 0 is the
// unsharded baseline. For inmem records NsPerOp is simulated time (and
// deterministic); for TCP records it is wall time.
type Result struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"`
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	NsPerOp   int64   `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// bench is one running cluster configuration under measurement.
type bench struct {
	cfg        Config
	clock      simclock.Clock
	net        transport.Network
	nnAddr     string
	shards     int // 0 = unsharded
	shardAddrs []string

	nn    *namenode.NameNode
	dns   []*datanode.DataNode
	cl    *client.Client
	conns map[string]*transport.Client // alloc-path conns, one per endpoint
	reqID atomic.Uint64
}

// startBench brings up a namenode (MetaShards=shards, one extra listener
// per shard), Nodes datanodes, and one shared shard-routed client. addr
// yields listen addresses: addr(-1) is the namenode, addr(0..shards-1)
// the shard endpoints, addr(shards..) the datanodes.
func startBench(cfg Config, clock simclock.Clock, net transport.Network, shards int, addr func(i int) (string, error)) (*bench, error) {
	b := &bench{cfg: cfg, clock: clock, net: net, shards: shards}
	var err error
	if b.nnAddr, err = addr(-1); err != nil {
		return nil, err
	}
	for i := 0; i < shards; i++ {
		a, err := addr(i)
		if err != nil {
			return nil, err
		}
		b.shardAddrs = append(b.shardAddrs, a)
	}
	b.nn = namenode.New(clock, net, namenode.Config{
		Addr:       b.nnAddr,
		Seed:       benchSeed,
		MetaShards: shards,
		ShardAddrs: b.shardAddrs,
		// Pure metadata ops: nothing is ever under-replicated, so the
		// repair sweep would only add scan noise.
		ReplicationSweepInterval: -1,
	})
	if err := b.nn.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < Nodes; i++ {
		a, err := addr(shards + i)
		if err != nil {
			b.close()
			return nil, err
		}
		dn, err := datanode.New(clock, net, datanode.Config{
			Addr: a, NameNodeAddr: b.nnAddr, Media: storage.HDDSpec(),
		})
		if err != nil {
			b.close()
			return nil, err
		}
		if err := dn.Start(); err != nil {
			b.close()
			return nil, err
		}
		b.dns = append(b.dns, dn)
	}
	var opts []client.Option
	if shards > 0 {
		opts = append(opts, client.WithShardEndpoints(b.shardAddrs))
	}
	if b.cl, err = client.New(clock, net, b.nnAddr, opts...); err != nil {
		b.close()
		return nil, err
	}
	// The alloc benchmark calls nn.addBlocks at the RPC surface, one
	// shared connection per endpoint — the same funnel model the client
	// uses for its routed namespace calls.
	b.conns = make(map[string]*transport.Client)
	for _, a := range append([]string{b.nnAddr}, b.shardAddrs...) {
		c, err := transport.Dial(clock, net, a)
		if err != nil {
			b.close()
			return nil, err
		}
		b.conns[a] = c
	}
	return b, nil
}

func (b *bench) close() {
	if b.cl != nil {
		b.cl.Close()
	}
	for _, c := range b.conns {
		c.Close()
	}
	for _, dn := range b.dns {
		dn.Close()
	}
	if b.nn != nil {
		b.nn.Close()
	}
}

// allocConn returns the shared connection to the endpoint owning path.
func (b *bench) allocConn(path string) *transport.Client {
	if b.shards <= 1 {
		return b.conns[b.nnAddr]
	}
	return b.conns[b.shardAddrs[shardmap.FileShard(path, b.shards)]]
}

// workerDirs assigns each worker a directory, round-robin across shards
// (worker w's directory hashes to shard w mod shards) so every shard
// endpoint carries an equal share regardless of hash luck. family keeps
// the benchmark families in disjoint namespaces.
func (b *bench) workerDirs(family string) []string {
	dirs := make([]string, Workers)
	shards := b.shards
	if shards < 1 {
		shards = 1
	}
	next := 0
	for w := range dirs {
		want := w % shards
		for {
			d := fmt.Sprintf("/%s/w%03d", family, next)
			next++
			if shardmap.FileShard(d+"/f", shards) == want {
				dirs[w] = d
				break
			}
		}
	}
	return dirs
}

// measure runs Workers concurrent workers, each performing
// cfg.OpsPerWorker ops, and reports throughput over the clock's elapsed
// time (virtual time on the virtual clock, wall time on the real one).
func (b *bench) measure(op func(w, i int) error) (time.Duration, error) {
	errs := make([]error, Workers)
	wg := simclock.NewWaitGroup(b.clock)
	start := b.clock.Now()
	for w := 0; w < Workers; w++ {
		w := w
		wg.Go(func() {
			for i := 0; i < b.cfg.OpsPerWorker; i++ {
				if err := op(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		})
	}
	wg.Wait()
	elapsed := b.clock.Now().Sub(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// benchCreate measures file creates: every op creates a fresh file in
// the worker's directory through the shared (shard-routed) client.
func (b *bench) benchCreate() (time.Duration, error) {
	dirs := b.workerDirs("metaC")
	return b.measure(func(w, i int) error {
		_, err := b.cl.Create(fmt.Sprintf("%s/c%04d", dirs[w], i), BlockSize, Replication)
		return err
	})
}

// benchOpen measures opens: getInfo over a small per-worker working set
// created untimed beforehand.
func (b *bench) benchOpen() (time.Duration, error) {
	dirs := b.workerDirs("metaO")
	files := make([][]string, Workers)
	for w, d := range dirs {
		for i := 0; i < OpenFiles; i++ {
			p := fmt.Sprintf("%s/o%02d", d, i)
			if _, err := b.cl.Create(p, BlockSize, Replication); err != nil {
				return 0, err
			}
			files[w] = append(files[w], p)
		}
	}
	return b.measure(func(w, i int) error {
		_, err := b.cl.Info(files[w][i%OpenFiles])
		return err
	})
}

// benchAlloc measures block allocations: every op is one nn.addBlocks
// batch of AllocBatch blocks against the worker's open file, issued at
// the RPC surface on the owning endpoint's shared connection.
func (b *bench) benchAlloc() (time.Duration, error) {
	dirs := b.workerDirs("metaA")
	paths := make([]string, Workers)
	for w, d := range dirs {
		paths[w] = d + "/blocks"
		if _, err := b.cl.Create(paths[w], BlockSize, Replication); err != nil {
			return 0, err
		}
	}
	sizes := make([]int64, AllocBatch)
	for i := range sizes {
		sizes[i] = BlockSize
	}
	return b.measure(func(w, i int) error {
		_, err := transport.Call[dfs.AddBlocksResp](b.allocConn(paths[w]), "nn.addBlocks", dfs.AddBlocksReq{
			Path: paths[w], Sizes: sizes, ReqID: b.reqID.Add(1),
		})
		return err
	})
}

// runConfig measures the three op families on a started bench cluster.
func (b *bench) runConfig(kind Transport) ([]Result, error) {
	families := []struct {
		name string
		run  func() (time.Duration, error)
	}{
		{"BenchmarkMetaCreate", b.benchCreate},
		{"BenchmarkMetaOpen", b.benchOpen},
		{"BenchmarkMetaAlloc", b.benchAlloc},
	}
	variant := "unsharded"
	if b.shards > 0 {
		variant = fmt.Sprintf("shards=%d", b.shards)
	}
	var out []Result
	for _, f := range families {
		elapsed, err := f.run()
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s: %w", f.name, kind, variant, err)
		}
		ops := Workers * b.cfg.OpsPerWorker
		res := Result{
			Name:      fmt.Sprintf("%s/%s/%s", f.name, kind, variant),
			Transport: string(kind),
			Shards:    b.shards,
			Ops:       ops,
			NsPerOp:   elapsed.Nanoseconds() / int64(ops),
		}
		if elapsed > 0 {
			res.OpsPerSec = float64(ops) / elapsed.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// runInmem measures one shard configuration on the virtual clock.
func runInmem(cfg Config, shards int) ([]Result, error) {
	var results []Result
	var benchErr error
	err := cluster.RunVirtual(wallTimeout, func(v *simclock.Virtual) {
		net := transport.NewInmemNetwork(v)
		addr := func(i int) (string, error) {
			if i < 0 {
				return "nn", nil
			}
			if i < shards {
				return fmt.Sprintf("nn-s%d", i), nil
			}
			return fmt.Sprintf("dn%d", i-shards), nil
		}
		b, err := startBench(cfg, v, net, shards, addr)
		if err != nil {
			benchErr = err
			return
		}
		defer b.close()
		results, benchErr = b.runConfig(Inmem)
	})
	if err != nil {
		return nil, err
	}
	return results, benchErr
}

// runTCP measures one shard configuration on the real clock over
// loopback TCP with the binary fast path.
func runTCP(cfg Config, shards int) ([]Result, error) {
	dfs.RegisterWire()
	net := transport.NewTCPNetwork(transport.WithTCPFastPath(true))
	addr := func(int) (string, error) {
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			return "", err
		}
		defer l.Close()
		return l.Addr(), nil
	}
	b, err := startBench(cfg, simclock.NewReal(), net, shards, addr)
	if err != nil {
		return nil, err
	}
	defer b.close()
	return b.runConfig(TCP)
}

// Run executes the configured suite: the unsharded baseline first, then
// every shard count, per transport.
func Run(cfg Config) ([]Result, error) {
	var out []Result
	for _, kind := range cfg.Transports {
		for _, shards := range append([]int{0}, cfg.ShardCounts...) {
			var (
				results []Result
				err     error
			)
			switch kind {
			case Inmem:
				results, err = runInmem(cfg, shards)
			case TCP:
				results, err = runTCP(cfg, shards)
			default:
				err = fmt.Errorf("unknown transport %q", kind)
			}
			if err != nil {
				return nil, fmt.Errorf("metabench: %s shards=%d: %w", kind, shards, err)
			}
			out = append(out, results...)
		}
	}
	return out, nil
}

// RunAll executes the full suite (the records behind BENCH_meta.json).
func RunAll() ([]Result, error) { return Run(Default()) }

// WriteJSON writes the records to path, one indented JSON array.
func WriteJSON(path string, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
