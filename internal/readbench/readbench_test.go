package readbench

import (
	"testing"
	"time"

	"repro/internal/dfs/client"
)

func withCluster(b *testing.B, fn func(b *testing.B, c *Cluster)) {
	for _, kind := range []Transport{Inmem, TCP} {
		b.Run(string(kind), func(b *testing.B) {
			c, err := Start(kind)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fn(b, c)
		})
	}
}

func BenchmarkReadFileSerial(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReadFile(b, c, 1) })
}

func BenchmarkReadFileParallel(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReadFile(b, c, 4) })
}

func BenchmarkReaderStream(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReaderStream(b, c, 0) })
}

func BenchmarkReaderStreamReadAhead(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReaderStream(b, c, client.DefaultReadAhead) })
}

func BenchmarkRepeatedScanUncached(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchRepeatedScan(b, c, 0) })
}

func BenchmarkRepeatedScanCached(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchRepeatedScan(b, c, RepeatedScanCacheBytes) })
}

// TestRepeatedScanCacheSpeedup pins the block-cache acceptance bar: the
// second-and-later scans of a hot 8-block file through a cache-enabled
// client are at least 2x faster than re-fetching every scan. Cache hits
// are pure in-process memory reads while the uncached side pays the
// modeled device plus wire charge, so the ratio holds on loaded runners.
func TestRepeatedScanCacheSpeedup(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	elapsed := func(cacheBytes int64) time.Duration {
		var opts []client.Option
		if cacheBytes > 0 {
			opts = append(opts, client.WithBlockCache(cacheBytes))
		}
		cl, err := c.Client(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// Warm scan: dials every datanode and populates the cache.
		if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
			t.Fatal(err)
		}
		const iters = 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}

	uncached := elapsed(0)
	cached := elapsed(RepeatedScanCacheBytes)
	if float64(cached)*2 > float64(uncached) {
		t.Errorf("cached repeated scan %v is not ≥2x faster than uncached %v", cached, uncached)
	}
	t.Logf("uncached %v, cached %v, speedup %.1fx", uncached, cached, float64(uncached)/float64(cached))
}

// TestParallelSpeedupRealClock pins the acceptance bar without needing
// -bench: on the in-memory transport under the real clock, a striped
// read with parallelism 4 is at least 2x faster than the serial read of
// the same 8-block file. The modeled HDD seek dominates both sides, so
// the ratio is stable even on a loaded machine.
func TestParallelSpeedupRealClock(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	elapsed := func(par int) time.Duration {
		cl, err := c.Client(client.WithReadParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// One warmup read so connection dials don't skew either side.
		if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
			t.Fatal(err)
		}
		const iters = 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}

	serial := elapsed(1)
	striped := elapsed(4)
	// Under -race the detector's instrumentation taxes the four-worker
	// side much harder than the serial side, so only the direction is
	// asserted there; the 2x bar is enforced on the normal build.
	bar := 2.0
	if raceEnabled {
		bar = 1.2
	}
	if float64(striped)*bar > float64(serial) {
		t.Errorf("striped read %v is not ≥%.1fx faster than serial %v", striped, bar, serial)
	}
	t.Logf("serial %v, striped(par=4) %v, speedup %.2fx", serial, striped, float64(serial)/float64(striped))
}
