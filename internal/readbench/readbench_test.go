package readbench

import (
	"testing"
	"time"

	"repro/internal/dfs/client"
)

func withCluster(b *testing.B, fn func(b *testing.B, c *Cluster)) {
	for _, kind := range []Transport{Inmem, TCP} {
		b.Run(string(kind), func(b *testing.B) {
			c, err := Start(kind)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fn(b, c)
		})
	}
}

func BenchmarkReadFileSerial(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReadFile(b, c, 1) })
}

func BenchmarkReadFileParallel(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReadFile(b, c, 4) })
}

func BenchmarkReaderStream(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReaderStream(b, c, 0) })
}

func BenchmarkReaderStreamReadAhead(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchReaderStream(b, c, client.DefaultReadAhead) })
}

func BenchmarkRepeatedScanUncached(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchRepeatedScan(b, c, 0) })
}

func BenchmarkRepeatedScanCached(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchRepeatedScan(b, c, RepeatedScanCacheBytes) })
}

func BenchmarkLargeBlockReadFast(b *testing.B) {
	c, err := StartLargeTCP(true)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	BenchLargeBlockRead(b, c)
}

func BenchmarkLargeBlockReadGob(b *testing.B) {
	c, err := StartLargeTCP(false)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	BenchLargeBlockRead(b, c)
}

// measureLargeRead runs the large-block read body against a fresh
// cluster with the fast path on or off and returns the benchmark result.
func measureLargeRead(t *testing.T, fast bool) testing.BenchmarkResult {
	t.Helper()
	c, err := StartLargeTCP(fast)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return testing.Benchmark(func(b *testing.B) { BenchLargeBlockRead(b, c) })
}

// TestLargeBlockFastPathSpeedup pins the codec acceptance bar: at the
// 4MiB block size where the wire cost dominates, a single uncached
// ReadBlock through the binary fast path is at least 1.5x faster than
// through the gob baseline (WithTCPFastPath(false)) on the same HEAD.
// Both sides run the identical RAM-served TCP cluster, so the ratio
// isolates the codec.
func TestLargeBlockFastPathSpeedup(t *testing.T) {
	gob := measureLargeRead(t, false)
	fast := measureLargeRead(t, true)
	// The race detector taxes the two codecs unevenly (gob's reflection
	// walk is instrumented far more densely than one memmove), so only
	// the direction is asserted there; 1.5x is enforced on the normal
	// build.
	bar := 1.5
	if raceEnabled {
		bar = 1.0
	}
	if float64(fast.NsPerOp())*bar > float64(gob.NsPerOp()) {
		t.Errorf("fast path %d ns/op is not ≥%.1fx faster than gob %d ns/op",
			fast.NsPerOp(), bar, gob.NsPerOp())
	}
	t.Logf("gob %d ns/op, fast %d ns/op, speedup %.2fx",
		gob.NsPerOp(), fast.NsPerOp(), float64(gob.NsPerOp())/float64(fast.NsPerOp()))
}

// TestLargeBlockReadAllocDrop pins the pooling acceptance bar: on the
// uncached ReadBlock TCP path the fast-path codec with pooled buffers
// allocates at most half the allocations — and at most half the bytes —
// per op of the gob baseline. Gob must allocate (and the GC must
// collect) a fresh 4MiB payload every op, while the fast path recycles
// one pooled buffer per op.
func TestLargeBlockReadAllocDrop(t *testing.T) {
	gob := measureLargeRead(t, false)
	fast := measureLargeRead(t, true)
	if fast.AllocsPerOp()*2 > gob.AllocsPerOp() {
		t.Errorf("fast path %d allocs/op is not ≤50%% of gob %d allocs/op",
			fast.AllocsPerOp(), gob.AllocsPerOp())
	}
	if fast.AllocedBytesPerOp()*2 > gob.AllocedBytesPerOp() {
		t.Errorf("fast path %d bytes/op is not ≤50%% of gob %d bytes/op",
			fast.AllocedBytesPerOp(), gob.AllocedBytesPerOp())
	}
	t.Logf("gob %d allocs/op %d B/op; fast %d allocs/op %d B/op",
		gob.AllocsPerOp(), gob.AllocedBytesPerOp(),
		fast.AllocsPerOp(), fast.AllocedBytesPerOp())
}

// cachedReadAllocCeiling is the committed allocs/op budget for one
// whole-file scan served entirely from the client block cache (the
// cached-read hot path). The measured figure is ~70 allocs/op on the
// in-memory transport (metadata RPCs plus the per-scan concat buffer;
// see BENCH_read.json's RepeatedScanCached records); the ceiling
// carries ~3x headroom so it only trips on a real regression — e.g.
// something reintroducing per-block allocations — not on runner noise.
const cachedReadAllocCeiling = 256

// TestCachedReadAllocCeiling fails if allocs/op on the cached-read hot
// path regresses above the committed ceiling.
func TestCachedReadAllocCeiling(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := testing.Benchmark(func(b *testing.B) { BenchRepeatedScan(b, c, RepeatedScanCacheBytes) })
	if r.AllocsPerOp() > cachedReadAllocCeiling {
		t.Errorf("cached scan %d allocs/op exceeds committed ceiling %d",
			r.AllocsPerOp(), cachedReadAllocCeiling)
	}
	t.Logf("cached scan: %d allocs/op, %d B/op (ceiling %d allocs/op)",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), cachedReadAllocCeiling)
}

// TestRepeatedScanCacheSpeedup pins the block-cache acceptance bar: the
// second-and-later scans of a hot 8-block file through a cache-enabled
// client are at least 2x faster than re-fetching every scan. Cache hits
// are pure in-process memory reads while the uncached side pays the
// modeled device plus wire charge, so the ratio holds on loaded runners.
func TestRepeatedScanCacheSpeedup(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	elapsed := func(cacheBytes int64) time.Duration {
		var opts []client.Option
		if cacheBytes > 0 {
			opts = append(opts, client.WithBlockCache(cacheBytes))
		}
		cl, err := c.Client(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// Warm scan: dials every datanode and populates the cache.
		if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
			t.Fatal(err)
		}
		const iters = 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}

	uncached := elapsed(0)
	cached := elapsed(RepeatedScanCacheBytes)
	// Under -race the cache-hit path (pure instrumented memory reads)
	// is taxed far harder than the uncached side's modeled device
	// charge, so only the direction is asserted there; the 2x bar is
	// enforced on the normal build.
	bar := 2.0
	if raceEnabled {
		bar = 1.2
	}
	if float64(cached)*bar > float64(uncached) {
		t.Errorf("cached repeated scan %v is not ≥%.1fx faster than uncached %v", cached, bar, uncached)
	}
	t.Logf("uncached %v, cached %v, speedup %.1fx", uncached, cached, float64(uncached)/float64(cached))
}

// TestParallelSpeedupRealClock pins the acceptance bar without needing
// -bench: on the in-memory transport under the real clock, a striped
// read with parallelism 4 is at least 2x faster than the serial read of
// the same 8-block file. The modeled HDD seek dominates both sides, so
// the ratio is stable even on a loaded machine.
func TestParallelSpeedupRealClock(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	elapsed := func(par int) time.Duration {
		cl, err := c.Client(client.WithReadParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// One warmup read so connection dials don't skew either side.
		if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
			t.Fatal(err)
		}
		const iters = 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}

	serial := elapsed(1)
	striped := elapsed(4)
	// Under -race the detector's instrumentation taxes the four-worker
	// side much harder than the serial side, so only the direction is
	// asserted there; the 2x bar is enforced on the normal build.
	bar := 2.0
	if raceEnabled {
		bar = 1.2
	}
	if float64(striped)*bar > float64(serial) {
		t.Errorf("striped read %v is not ≥%.1fx faster than serial %v", striped, bar, serial)
	}
	t.Logf("serial %v, striped(par=4) %v, speedup %.2fx", serial, striped, float64(serial)/float64(striped))
}
