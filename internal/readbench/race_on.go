//go:build race

package readbench

const raceEnabled = true
