// Package readbench hosts the read-path throughput benchmarks: striped
// ReadFile versus the serial path, and Reader streaming with and without
// read-ahead, on both the in-memory and the TCP transport. The benchmark
// bodies are exported so the same code runs under `go test -bench` and
// from cmd/ignem-bench, which emits machine-readable BENCH_read.json.
//
// The clusters run on the real clock (scaled 4x so the modeled HDD seeks
// charge 2ms instead of 8ms): wall-clock speedups here are the product
// claim, not simulated figures.
package readbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Benchmark geometry: an 8-block file striped over 12 HDD datanodes with
// replication 2. Eight blocks at parallelism 4 is the acceptance
// scenario for the parallel read path; the extra nodes keep random
// replica choice from queueing two streams on one disk too often.
const (
	Blocks    = 8
	BlockSize = 1 << 20
	Nodes     = 12
	timeScale = 4
)

// Large-block scenario geometry: one 4MiB block served from RAM over
// TCP, read uncached one block per op. At this payload size the codec —
// not the modeled device — is the cost, which is exactly what the
// scenario isolates: the same cluster runs once with the binary
// fast-path codec and once with the gob baseline (WithTCPFastPath(false),
// the pre-fast-path wire cost), so the two records bracket the codec
// overhaul in BENCH_read.json.
const (
	LargeBlocks    = 1
	LargeBlockSize = 4 << 20
	LargeNodes     = 4
)

// Transport selects the wire under benchmark.
type Transport string

const (
	Inmem Transport = "inmem"
	TCP   Transport = "tcp"
)

// Result is one benchmark record of BENCH_read.json. AllocsPerOp and
// BytesPerOp are recorded only by the allocation-aware configs (the
// large-block codec scenarios and the repeated-scan pair); zero means
// not measured.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`
}

// Cluster is a running benchmark cluster with the input file in place.
type Cluster struct {
	Clock  simclock.Clock
	Net    transport.Network
	NNAddr string

	nn  *namenode.NameNode
	dns []*datanode.DataNode
	in  []byte
}

// clusterSpec parameterizes a benchmark cluster build.
type clusterSpec struct {
	kind      Transport
	blocks    int
	blockSize int64
	nodes     int
	ramServe  bool // serve every read at RAM speed (blocks stay resident)
	fastPath  bool // TCP binary fast path (false = gob baseline)
}

// Start brings up a namenode, Nodes HDD datanodes, and the 8-block input
// file on the chosen transport, all on the scaled real clock.
func Start(kind Transport) (*Cluster, error) {
	return start(clusterSpec{
		kind: kind, blocks: Blocks, blockSize: BlockSize, nodes: Nodes,
		fastPath: true,
	})
}

// StartLargeTCP brings up the large-block codec cluster: LargeNodes
// RAM-served datanodes over TCP holding one LargeBlockSize-block file,
// with the binary fast path on or off (off is the gob baseline).
func StartLargeTCP(fast bool) (*Cluster, error) {
	return start(clusterSpec{
		kind: TCP, blocks: LargeBlocks, blockSize: LargeBlockSize,
		nodes: LargeNodes, ramServe: true, fastPath: fast,
	})
}

func start(spec clusterSpec) (*Cluster, error) {
	clock := simclock.NewScaledReal(timeScale)
	c := &Cluster{Clock: clock}
	addr := func(i int) string { return fmt.Sprintf("dn%d", i) }
	switch spec.kind {
	case Inmem:
		c.Net = transport.NewInmemNetwork(clock)
		c.NNAddr = "nn"
	case TCP:
		dfs.RegisterWire()
		net := transport.NewTCPNetwork(transport.WithTCPFastPath(spec.fastPath))
		c.Net = net
		ephemeral := func() (string, error) {
			l, err := net.Listen("127.0.0.1:0")
			if err != nil {
				return "", err
			}
			defer l.Close()
			return l.Addr(), nil
		}
		a, err := ephemeral()
		if err != nil {
			return nil, err
		}
		c.NNAddr = a
		addr = func(int) string {
			a, err := ephemeral()
			if err != nil {
				a = ""
			}
			return a
		}
	default:
		return nil, fmt.Errorf("readbench: unknown transport %q", spec.kind)
	}

	nn := namenode.New(c.Clock, c.Net, namenode.Config{Addr: c.NNAddr, Seed: 7})
	if err := nn.Start(); err != nil {
		return nil, err
	}
	c.nn = nn
	for i := 0; i < spec.nodes; i++ {
		a := addr(i)
		if a == "" {
			c.Close()
			return nil, fmt.Errorf("readbench: no ephemeral port for datanode %d", i)
		}
		dn, err := datanode.New(c.Clock, c.Net, datanode.Config{
			Addr: a, NameNodeAddr: c.NNAddr, Media: storage.HDDSpec(),
			ServeAllFromRAM: spec.ramServe,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := dn.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.dns = append(c.dns, dn)
	}

	c.in = bytes.Repeat([]byte("ignem-read-bench"), spec.blocks*int(spec.blockSize)/16)
	cl, err := c.Client()
	if err != nil {
		c.Close()
		return nil, err
	}
	defer cl.Close()
	if err := cl.WriteFile("/bench/input", c.in, spec.blockSize, 2); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Client dials a fresh client into the cluster.
func (c *Cluster) Client(opts ...client.Option) (*client.Client, error) {
	return client.New(c.Clock, c.Net, c.NNAddr, opts...)
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	for _, dn := range c.dns {
		dn.Close()
	}
	if c.nn != nil {
		c.nn.Close()
	}
}

// BenchReadFile is the ReadFile benchmark body: whole-file reads with the
// given parallelism. par 1 is the serial baseline.
func BenchReadFile(b *testing.B, c *Cluster, par int) {
	cl, err := c.Client(client.WithReadParallelism(par))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.ReadFile("/bench/input", "bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(c.in) {
			b.Fatalf("read %d bytes, want %d", len(got), len(c.in))
		}
	}
	b.SetBytes(int64(len(c.in)))
}

// BenchReaderStream is the Reader benchmark body: sequential streaming
// with the given read-ahead window (0 disables prefetch).
func BenchReaderStream(b *testing.B, c *Cluster, ahead int) {
	cl, err := c.Client(client.WithReadAhead(ahead))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	buf := make([]byte, BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cl.Open("/bench/input", "bench")
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for {
			m, err := r.Read(buf)
			n += int64(m)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if n != int64(len(c.in)) {
			b.Fatalf("streamed %d bytes, want %d", n, len(c.in))
		}
	}
	b.SetBytes(int64(len(c.in)))
}

// BenchRepeatedScan is the hot-input benchmark body: the same client
// scans the whole file b.N times after one untimed warm scan, so every
// timed iteration models the second-and-later scans of a hot input.
// cacheBytes > 0 enables the shared client block cache (sized to hold
// the whole file), making the timed scans pure client-memory reads;
// cacheBytes = 0 is the re-fetch-every-scan baseline.
func BenchRepeatedScan(b *testing.B, c *Cluster, cacheBytes int64) {
	var opts []client.Option
	if cacheBytes > 0 {
		opts = append(opts, client.WithBlockCache(cacheBytes))
	}
	cl, err := c.Client(opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.ReadFile("/bench/input", "bench"); err != nil {
		b.Fatal(err) // warm scan: dials connections and fills the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.ReadFile("/bench/input", "bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(c.in) {
			b.Fatalf("read %d bytes, want %d", len(got), len(c.in))
		}
	}
	b.SetBytes(int64(len(c.in)))
}

// RepeatedScanCacheBytes sizes the benchmark's block cache: double the
// input file, so the whole file stays resident with LRU headroom.
const RepeatedScanCacheBytes = 2 * Blocks * BlockSize

// BenchLargeBlockRead is the large-block codec benchmark body: one
// uncached single-block read per op against a StartLargeTCP cluster,
// released back to the buffer pool after a length check. It deliberately
// uses ReadBlock rather than ReadFile so the measured allocations are
// the wire path's, not the whole-file concat buffer's (which would cost
// both codecs equally and dilute the comparison).
func BenchLargeBlockRead(b *testing.B, c *Cluster) {
	cl, err := c.Client()
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	lbs, err := cl.Locations("/bench/input")
	if err != nil {
		b.Fatal(err)
	}
	if len(lbs) == 0 {
		b.Fatal("no located blocks for /bench/input")
	}
	lb := lbs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.ReadBlock(lb, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(resp.Data)) != lb.Block.Size {
			b.Fatalf("read %d bytes, want %d", len(resp.Data), lb.Block.Size)
		}
		resp.Release()
	}
	b.SetBytes(lb.Block.Size)
}

// RunAll executes every benchmark config via testing.Benchmark and
// returns the records for BENCH_read.json. Each transport shares one
// cluster across its configs so TCP port churn stays bounded.
func RunAll() ([]Result, error) {
	var out []Result
	for _, kind := range []Transport{Inmem, TCP} {
		c, err := Start(kind)
		if err != nil {
			return nil, fmt.Errorf("readbench: start %s: %w", kind, err)
		}
		configs := []struct {
			name string
			body func(*testing.B)
		}{
			{"BenchmarkReadFileSerial", func(b *testing.B) { BenchReadFile(b, c, 1) }},
			{"BenchmarkReadFileParallel", func(b *testing.B) { BenchReadFile(b, c, 4) }},
			{"BenchmarkReaderStream", func(b *testing.B) { BenchReaderStream(b, c, 0) }},
			{"BenchmarkReaderStreamReadAhead", func(b *testing.B) { BenchReaderStream(b, c, client.DefaultReadAhead) }},
			{"BenchmarkRepeatedScanUncached", func(b *testing.B) { BenchRepeatedScan(b, c, 0) }},
			{"BenchmarkRepeatedScanCached", func(b *testing.B) { BenchRepeatedScan(b, c, RepeatedScanCacheBytes) }},
		}
		for _, cfg := range configs {
			r := testing.Benchmark(cfg.body)
			ns := r.NsPerOp()
			res := Result{
				Name: cfg.name + "/" + string(kind), NsPerOp: ns,
				AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
			}
			if ns > 0 {
				res.BlocksPerSec = Blocks * 1e9 / float64(ns)
			}
			out = append(out, res)
		}
		c.Close()
	}

	// Large-block codec scenarios: same TCP cluster geometry, fast path
	// on vs off, so the pair brackets the binary codec's effect at the
	// block size where the wire cost dominates.
	for _, lc := range []struct {
		name string
		fast bool
	}{
		{"BenchmarkLargeBlockReadFast", true},
		{"BenchmarkLargeBlockReadGob", false},
	} {
		c, err := StartLargeTCP(lc.fast)
		if err != nil {
			return nil, fmt.Errorf("readbench: start large (fast=%v): %w", lc.fast, err)
		}
		r := testing.Benchmark(func(b *testing.B) { BenchLargeBlockRead(b, c) })
		ns := r.NsPerOp()
		res := Result{
			Name: lc.name + "/" + string(TCP), NsPerOp: ns,
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
		if ns > 0 {
			res.BlocksPerSec = LargeBlocks * 1e9 / float64(ns)
		}
		out = append(out, res)
		c.Close()
	}
	return out, nil
}

// WriteJSON writes the records to path, one indented JSON array.
func WriteJSON(path string, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
