// Package shardmap provides the deterministic routing maps the sharded
// metadata plane is built on: a consistent-hash ring assigning uint64
// keys (block IDs) to shards, and a directory-prefix path hash assigning
// files to shards so a directory's entries colocate.
//
// Both maps are pure functions of their inputs — no process state, no
// randomness — so every party (namenode shards, the Ignem coordinator,
// shard-routing clients) derives the identical map from the shard count
// alone. Determinism is a hard requirement: the seeded experiment
// figures replay bit-for-bit only if routing never depends on map
// iteration order or address-space layout.
package shardmap

import (
	"hash/fnv"
	"sort"
	"strings"
)

// VNodes is the number of virtual nodes each shard contributes to the
// ring. 64 keeps the per-shard key share within a few percent of uniform
// at the shard counts the metadata plane runs (1–64) while the ring
// stays small enough to rebuild on every NameNode start.
const VNodes = 64

// Ring is a consistent-hash map from uint64 keys to shard indices.
//
// Stability guarantee: growing a ring from n to n+1 shards moves only
// the keys that now land on the new shard's virtual nodes — keys that
// stay map to the same shard index as before, because every existing
// virtual node keeps its position and owner. Shrinking is symmetric.
// (The table-driven tests pin both directions.)
type Ring struct {
	shards int
	points []ringPoint // sorted by position
}

type ringPoint struct {
	pos   uint64
	shard int
}

// NewRing builds the ring for the given shard count. Counts below 1 are
// treated as 1.
func NewRing(shards int) *Ring {
	if shards < 1 {
		shards = 1
	}
	r := &Ring{shards: shards}
	r.points = make([]ringPoint, 0, shards*VNodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < VNodes; v++ {
			r.points = append(r.points, ringPoint{
				pos:   mix64(uint64(s)<<32 | uint64(v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// A position collision (astronomically unlikely but possible)
		// breaks the tie by shard index so the order — and therefore the
		// key ownership — is still a pure function of the shard count.
		return a.shard < b.shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a key to its owning shard: the first virtual node at or
// clockwise after the key's position.
func (r *Ring) Shard(key uint64) int {
	if r.shards == 1 {
		return 0
	}
	pos := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// BlockShard maps a block ID to its shard. Block IDs are small dense
// integers, so they pass through the same avalanche mix the ring points
// use; without it consecutive IDs would cluster on one arc.
func (r *Ring) BlockShard(id uint64) int { return r.Shard(id) }

// FileShard maps a file path to the shard that owns its namespace entry.
// Routing hashes the directory prefix, not the full path, so all entries
// of one directory colocate on one shard — a directory listing or a
// job's per-directory input scan stays a single-shard operation.
func FileShard(path string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(DirKey(path) % uint64(shards))
}

// DirKey hashes the directory prefix of a path: everything up to and
// including the final '/'. A path with no '/' hashes as its own key.
func DirKey(path string) uint64 {
	dir := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir = path[:i+1]
	}
	h := fnv.New64a()
	h.Write([]byte(dir))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on
// uint64, so dense inputs (block IDs, shard×vnode indices) spread
// uniformly over the ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
