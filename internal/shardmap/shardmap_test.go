package shardmap

import (
	"fmt"
	"testing"
)

// Keys that stay owned when a shard joins must keep their old owner:
// growing n→n+1 may move a key only onto the NEW shard, never between
// surviving shards. Shrinking is the mirror image. This is the ring's
// whole reason to exist over a modulo map, so it is pinned across the
// shard counts the metadata plane deploys.
func TestRingStabilityOnGrowAndShrink(t *testing.T) {
	const keys = 20000
	cases := []struct{ from, to int }{
		{1, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 8}, {8, 9}, {8, 16},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("grow_%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			small, big := NewRing(tc.from), NewRing(tc.to)
			moved := 0
			for k := uint64(0); k < keys; k++ {
				before, after := small.BlockShard(k), big.BlockShard(k)
				if after == before {
					continue
				}
				if after < tc.from {
					t.Fatalf("key %d moved between surviving shards: %d -> %d", k, before, after)
				}
				moved++
			}
			// Expected churn is (to-from)/to of the keyspace; allow 2x
			// slack for vnode placement variance.
			maxMoved := keys * 2 * (tc.to - tc.from) / tc.to
			if moved > maxMoved {
				t.Fatalf("grow %d->%d moved %d/%d keys, want <= %d", tc.from, tc.to, moved, keys, maxMoved)
			}
			if moved == 0 && tc.to > tc.from {
				t.Fatalf("grow %d->%d moved no keys — new shard owns nothing", tc.from, tc.to)
			}
		})
	}
}

// Every shard's share of a dense key range stays within a uniformity
// band: no shard may own more than twice or less than a third of the
// fair share. Dense integer keys are exactly what block IDs look like.
func TestRingUniformityBounds(t *testing.T) {
	const keys = 40000
	for _, shards := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("shards_%d", shards), func(t *testing.T) {
			r := NewRing(shards)
			counts := make([]int, shards)
			for k := uint64(1); k <= keys; k++ {
				counts[r.BlockShard(k)]++
			}
			fair := keys / shards
			for s, n := range counts {
				if n > 2*fair || n < fair/3 {
					t.Errorf("shard %d owns %d keys, fair share %d (counts %v)", s, n, fair, counts)
				}
			}
		})
	}
}

// A single-shard ring is the unsharded path: every key — and every
// file — maps to shard 0, with no hashing observable from outside.
func TestShardCountOneEquivalence(t *testing.T) {
	r := NewRing(1)
	for k := uint64(0); k < 4096; k++ {
		if got := r.BlockShard(k); got != 0 {
			t.Fatalf("BlockShard(%d) = %d at shard count 1", k, got)
		}
	}
	for _, path := range []string{"", "/", "/a", "/a/b/c", "noslash", "/swim/j3"} {
		if got := FileShard(path, 1); got != 0 {
			t.Fatalf("FileShard(%q, 1) = %d", path, got)
		}
		if got := FileShard(path, 0); got != 0 {
			t.Fatalf("FileShard(%q, 0) = %d", path, got)
		}
	}
}

// Files in one directory colocate; distinct directories spread.
func TestFileShardDirectoryAffinity(t *testing.T) {
	const shards = 8
	for dir := 0; dir < 32; dir++ {
		want := FileShard(fmt.Sprintf("/job%d/part-0", dir), shards)
		for f := 1; f < 16; f++ {
			path := fmt.Sprintf("/job%d/part-%d", dir, f)
			if got := FileShard(path, shards); got != want {
				t.Fatalf("%s on shard %d, sibling on %d", path, got, want)
			}
		}
	}
	seen := make(map[int]bool)
	for dir := 0; dir < 64; dir++ {
		seen[FileShard(fmt.Sprintf("/job%d/f", dir), shards)] = true
	}
	if len(seen) < shards/2 {
		t.Fatalf("64 directories landed on only %d/%d shards", len(seen), shards)
	}
}

// The ring is a pure function of the shard count: two independently
// built rings agree on every key (this is what lets clients route
// without asking the namenode per key).
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		a, b := NewRing(shards), NewRing(shards)
		for k := uint64(0); k < 8192; k++ {
			if a.Shard(k) != b.Shard(k) {
				t.Fatalf("shards=%d key=%d: independent rings disagree", shards, k)
			}
		}
	}
}
