package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// InmemNetwork is an in-process Network whose links charge simulated
// latency and bandwidth through a Clock. It models the paper's testbed
// fabric: a 10 Gbps LAN where the network is not a bottleneck.
type InmemNetwork struct {
	clock   simclock.Clock
	latency time.Duration
	mbps    float64

	mu        sync.Mutex
	listeners map[string]*inmemListener
}

// InmemOption configures an InmemNetwork.
type InmemOption func(*InmemNetwork)

// WithLatency sets the one-way message latency (default 200µs).
func WithLatency(d time.Duration) InmemOption {
	return func(n *InmemNetwork) { n.latency = d }
}

// WithBandwidthMBps sets the per-link streaming bandwidth used for Sized
// bodies (default 1250 MB/s, i.e. 10 Gbps).
func WithBandwidthMBps(mbps float64) InmemOption {
	return func(n *InmemNetwork) { n.mbps = mbps }
}

// NewInmemNetwork creates an in-process network on the given clock.
func NewInmemNetwork(clock simclock.Clock, opts ...InmemOption) *InmemNetwork {
	n := &InmemNetwork{
		clock:     clock,
		latency:   200 * time.Microsecond,
		mbps:      1250,
		listeners: make(map[string]*inmemListener),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Listen registers addr and returns its listener.
func (n *InmemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &inmemListener{
		net:    n,
		addr:   addr,
		accept: simclock.NewChan[*inmemConn](n.clock),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening addr.
func (n *InmemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := n.newConnPair()
	if !l.accept.Send(server) {
		client.Close()
		return nil, ErrClosed
	}
	return client, nil
}

// newConnPair builds two half-duplex links joined into a full-duplex pair.
func (n *InmemNetwork) newConnPair() (client, server *inmemConn) {
	ab := newLink(n)
	ba := newLink(n)
	client = &inmemConn{send: ab, recv: ba}
	server = &inmemConn{send: ba, recv: ab}
	return client, server
}

// link is one direction of a connection: an input queue drained by a pump
// goroutine that charges transmission and propagation time per message,
// preserving FIFO order.
type link struct {
	net *InmemNetwork
	in  *simclock.Chan[Message]
	out *simclock.Chan[Message]
}

func newLink(n *InmemNetwork) *link {
	l := &link{
		net: n,
		in:  simclock.NewChan[Message](n.clock),
		out: simclock.NewChan[Message](n.clock),
	}
	n.clock.Go(l.pump)
	return l
}

func (l *link) pump() {
	for {
		m, ok := l.in.Recv()
		if !ok {
			l.out.Close()
			return
		}
		transmit := time.Duration(float64(wireSize(m.Body)) / (l.net.mbps * 1e6) * float64(time.Second))
		l.net.clock.Sleep(l.net.latency + transmit)
		l.out.Send(m)
	}
}

type inmemConn struct {
	send *link
	recv *link

	closeOnce sync.Once
}

var _ Conn = (*inmemConn)(nil)

func (c *inmemConn) Send(m Message) error {
	if !c.send.in.Send(m) {
		return ErrClosed
	}
	return nil
}

func (c *inmemConn) Recv() (Message, error) {
	m, ok := c.recv.out.Recv()
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

func (c *inmemConn) Close() error {
	c.closeOnce.Do(func() {
		c.send.in.Close()
		c.recv.in.Close()
	})
	return nil
}

type inmemListener struct {
	net    *InmemNetwork
	addr   string
	accept *simclock.Chan[*inmemConn]
}

var _ Listener = (*inmemListener)(nil)

func (l *inmemListener) Accept() (Conn, error) {
	c, ok := l.accept.Recv()
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *inmemListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	l.accept.Close()
	return nil
}

func (l *inmemListener) Addr() string { return l.addr }
