package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

type echoReq struct{ Text string }
type echoResp struct{ Text string }

type bulkResp struct {
	N int64
}

func (b bulkResp) WireSize() int64 { return b.N }

func startEchoServer(t *testing.T, clock simclock.Clock, net Network, addr string) *Server {
	t.Helper()
	srv := NewServer(clock)
	srv.Handle("echo", func(arg any) (any, error) {
		req, ok := arg.(echoReq)
		if !ok {
			return nil, fmt.Errorf("bad arg %T", arg)
		}
		return echoResp{Text: req.Text}, nil
	})
	srv.Handle("fail", func(any) (any, error) {
		return nil, errors.New("boom")
	})
	srv.Handle("slow", func(any) (any, error) {
		clock.Sleep(time.Hour)
		return echoResp{}, nil
	})
	srv.Handle("bulk", func(arg any) (any, error) {
		n := arg.(echoReq)
		var size int64
		fmt.Sscan(n.Text, &size)
		return bulkResp{N: size}, nil
	})
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv.ServeBackground(l)
	return srv
}

func TestInmemEcho(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	var got echoResp
	v.Run(func() {
		c, err := Dial(v, net, "nn")
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		got, err = Call[echoResp](c, "echo", echoReq{Text: "hello"})
		if err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	if got.Text != "hello" {
		t.Errorf("echo = %q", got.Text)
	}
}

func TestInmemLatencyCharged(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v, WithLatency(5*time.Millisecond))
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		start := v.Now()
		if _, err := Call[echoResp](c, "echo", echoReq{Text: "x"}); err != nil {
			t.Errorf("Call: %v", err)
		}
		rtt := v.Now().Sub(start)
		if rtt < 10*time.Millisecond {
			t.Errorf("RTT %v below 2x one-way latency", rtt)
		}
		if rtt > 15*time.Millisecond {
			t.Errorf("RTT %v unexpectedly high", rtt)
		}
	})
}

func TestInmemBandwidthChargedForSizedBodies(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v, WithBandwidthMBps(100), WithLatency(0))
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		start := v.Now()
		// 100 MB at 100 MB/s should take ~1s on the reply direction.
		if _, err := Call[bulkResp](c, "bulk", echoReq{Text: "100000000"}); err != nil {
			t.Errorf("Call: %v", err)
		}
		d := v.Now().Sub(start)
		if d < 900*time.Millisecond || d > 1500*time.Millisecond {
			t.Errorf("bulk transfer took %v, want ~1s", d)
		}
	})
}

func TestRemoteErrorPropagates(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		_, err := c.Call("fail", echoReq{})
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Errorf("err = %v, want RemoteError(boom)", err)
		}
	})
}

func TestUnknownMethod(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		_, err := c.Call("nope", echoReq{})
		if err == nil || !strings.Contains(err.Error(), "unknown method") {
			t.Errorf("err = %v", err)
		}
	})
}

// Transport-level failures must surface as *CallError carrying the
// method and dialed address, while errors.Is still classifies the
// underlying cause. Remote handler failures must NOT be CallErrors.
func TestCallErrorCarriesMethodAndAddr(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn", WithCallTimeout(time.Second))
		defer c.Close()

		_, err := c.Call("slow", echoReq{})
		var ce *CallError
		if !errors.As(err, &ce) {
			t.Fatalf("timeout err = %v (%T), want *CallError", err, err)
		}
		if ce.Method != "slow" || ce.Addr != "nn" {
			t.Errorf("CallError = {%q %q}, want {slow nn}", ce.Method, ce.Addr)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("errors.Is(err, ErrTimeout) = false for %v", err)
		}

		_, err = c.Call("fail", echoReq{})
		if errors.As(err, &ce) {
			t.Errorf("remote handler error %v should not be a *CallError", err)
		}

		c.Close()
		_, err = c.Call("echo", echoReq{})
		if !errors.As(err, &ce) || !errors.Is(err, ErrClosed) {
			t.Errorf("closed-client err = %v, want *CallError wrapping ErrClosed", err)
		}
	})
}

func TestCallTimeout(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn", WithCallTimeout(2*time.Second))
		defer c.Close()
		start := v.Now()
		_, err := c.Call("slow", echoReq{})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if d := v.Now().Sub(start); d < 2*time.Second || d > 3*time.Second {
			t.Errorf("timeout after %v, want ~2s", d)
		}
	})
}

// Regression test for the late-reply leak: a reply that arrives after
// Call has timed out and dropped its ID must be discarded (the dropped
// call's mailbox is closed), not buffered forever, and must never be
// delivered to a later call. The simulation must still quiesce.
func TestLateReplyAfterTimeoutDiscarded(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	srv := NewServer(v)
	srv.Handle("lag", func(arg any) (any, error) {
		v.Sleep(10 * time.Second) // replies well after the caller gave up
		return echoResp{Text: "stale"}, nil
	})
	srv.Handle("echo", func(arg any) (any, error) {
		return echoResp{Text: arg.(echoReq).Text}, nil
	})
	l, err := net.Listen("nn")
	if err != nil {
		t.Fatal(err)
	}
	srv.ServeBackground(l)
	defer srv.Close()

	v.Run(func() {
		c, _ := Dial(v, net, "nn", WithCallTimeout(2*time.Second))
		defer c.Close()
		if _, err := c.Call("lag", echoReq{}); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		// A fresh call issued while the stale reply is still in flight
		// must get its own reply, not the stale one.
		got, err := Call[echoResp](c, "echo", echoReq{Text: "fresh"})
		if err != nil || got.Text != "fresh" {
			t.Errorf("post-timeout call = %q, %v", got.Text, err)
		}
		// Let the stale reply arrive and be discarded; the connection
		// keeps working afterwards.
		v.Sleep(15 * time.Second)
		got, err = Call[echoResp](c, "echo", echoReq{Text: "after"})
		if err != nil || got.Text != "after" {
			t.Errorf("post-stale-reply call = %q, %v", got.Text, err)
		}
	})
	// v.Run returning proves the simulation quiesced: nothing is left
	// runnable and no timer leaked with the dropped call's mailbox.
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	var mu sync.Mutex
	results := map[string]bool{}
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		wg := simclock.NewWaitGroup(v)
		for i := 0; i < 20; i++ {
			i := i
			wg.Go(func() {
				want := fmt.Sprintf("msg-%d", i)
				got, err := Call[echoResp](c, "echo", echoReq{Text: want})
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				mu.Lock()
				results[got.Text] = true
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if len(results) != 20 {
		t.Errorf("got %d distinct replies, want 20", len(results))
	}
}

func TestDialUnknownAddr(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	if _, err := net.Dial("missing"); err == nil {
		t.Error("Dial to unknown addr succeeded")
	}
}

func TestDuplicateListen(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	if _, err := net.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a"); err == nil {
		t.Error("duplicate Listen succeeded")
	}
}

func TestServerCloseFailsInFlightCalls(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	srv := startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		done := simclock.NewChan[error](v)
		v.Go(func() {
			_, err := c.Call("slow", echoReq{})
			done.Send(err)
		})
		v.Sleep(time.Second)
		srv.Close()
		err, _ := done.Recv()
		if err == nil {
			t.Error("in-flight call survived server close")
		}
	})
}

func TestClientCloseFailsPending(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		done := simclock.NewChan[error](v)
		v.Go(func() {
			_, err := c.Call("slow", echoReq{})
			done.Send(err)
		})
		v.Sleep(time.Second)
		c.Close()
		err, _ := done.Recv()
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
		if _, err := c.Call("echo", echoReq{}); !errors.Is(err, ErrClosed) {
			t.Errorf("post-close call err = %v", err)
		}
	})
}

func TestTypedCallWrongType(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	startEchoServer(t, v, net, "nn")
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		_, err := Call[int](c, "echo", echoReq{Text: "x"})
		if err == nil || !strings.Contains(err.Error(), "reply type") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestTCPEcho(t *testing.T) {
	RegisterType(echoReq{})
	RegisterType(echoResp{})
	clock := simclock.NewReal()
	tnet := NewTCPNetwork()
	srv := NewServer(clock)
	srv.Handle("echo", func(arg any) (any, error) {
		return echoResp{Text: arg.(echoReq).Text}, nil
	})
	l, err := tnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	srv.ServeBackground(l)
	defer srv.Close()

	c, err := Dial(clock, tnet, l.Addr(), WithCallTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got, err := Call[echoResp](c, "echo", echoReq{Text: "over tcp"})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Text != "over tcp" {
		t.Errorf("echo = %q", got.Text)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	RegisterType(echoReq{})
	RegisterType(echoResp{})
	clock := simclock.NewReal()
	tnet := NewTCPNetwork()
	srv := NewServer(clock)
	srv.Handle("echo", func(arg any) (any, error) {
		return echoResp{Text: arg.(echoReq).Text}, nil
	})
	l, err := tnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv.ServeBackground(l)
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(clock, tnet, l.Addr(), WithCallTimeout(5*time.Second))
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				want := fmt.Sprintf("c%d-m%d", i, j)
				got, err := Call[echoResp](c, "echo", echoReq{Text: want})
				if err != nil || got.Text != want {
					t.Errorf("call %s: got %q err %v", want, got.Text, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestHandlerPanicBecomesError(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	net := NewInmemNetwork(v)
	srv := NewServer(v)
	srv.Handle("boom", func(any) (any, error) { panic("kaboom") })
	srv.Handle("ok", func(arg any) (any, error) { return arg, nil })
	l, err := net.Listen("nn")
	if err != nil {
		t.Fatal(err)
	}
	srv.ServeBackground(l)
	defer srv.Close()
	v.Run(func() {
		c, _ := Dial(v, net, "nn")
		defer c.Close()
		_, err := c.Call("boom", 1)
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("err = %v", err)
		}
		// The server survives and keeps handling other calls.
		if got, err := c.Call("ok", 7); err != nil || got != 7 {
			t.Errorf("post-panic call: %v %v", got, err)
		}
	})
}

// Property: per-connection message order is preserved regardless of
// payload sizes (the pump serializes transmission).
func TestInmemOrderingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 30 {
			return true
		}
		v := simclock.NewVirtual(epoch)
		net := NewInmemNetwork(v, WithBandwidthMBps(10))
		l, err := net.Listen("srv")
		if err != nil {
			return false
		}
		var got []uint64
		vDone := make(chan struct{})
		v.Go(func() {
			defer close(vDone)
			recvDone := simclock.NewChan[struct{}](v)
			v.Go(func() {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				for i := 0; i < len(sizes); i++ {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					got = append(got, m.ID)
				}
				recvDone.Send(struct{}{})
			})
			conn, err := net.Dial("srv")
			if err != nil {
				return
			}
			for i, sz := range sizes {
				_ = conn.Send(Message{ID: uint64(i), Body: bulkResp{N: int64(sz) * 1000}})
			}
			recvDone.Recv()
			conn.Close()
		})
		<-vDone
		if len(got) != len(sizes) {
			return false
		}
		for i, id := range got {
			if id != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
