package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// Framer is the binary fast path for bulk wire structs. A type that
// implements it (on its pointer receiver) is sent over TCP as a binary
// frame — a hand-written header plus raw payload bytes — instead of
// going through reflection-based gob encoding. Small control messages
// never bother: gob is fine for them, and the fallback is automatic for
// any body type that is not registered with RegisterFramer.
//
// AppendFrame appends the frame bytes to buf and returns the extended
// slice, exactly like append: it must not retain buf.
//
// DecodeFrame parses a frame produced by AppendFrame. The payload slice
// is transport-owned receive scratch, valid only for the duration of
// the call — an implementation that retains bulk data must copy it out
// (the dfs types copy into bufpool buffers and mark the result pooled;
// see DESIGN.md "Wire format & buffer ownership").
type Framer interface {
	AppendFrame(buf []byte) []byte
	DecodeFrame(payload []byte) error
}

// framerInfo is one registered fast-path body type.
type framerInfo struct {
	name   string
	encode func(body any, buf []byte) []byte
	decode func(payload []byte) (any, error)
}

var (
	framerMu     sync.RWMutex
	framerByType = map[reflect.Type]*framerInfo{}
	framerByName = map[string]*framerInfo{}
)

// RegisterFramer registers T as a fast-path body type for the TCP
// transport. *T must implement Framer; message bodies carry T by
// value, matching how gob bodies are registered. Like gob.Register,
// call it once per type from the package that defines the wire struct.
// Registering the same type twice is safe; two types with the same
// name is not.
func RegisterFramer[T any, PT interface {
	*T
	Framer
}]() {
	t := reflect.TypeOf((*T)(nil)).Elem()
	// Encode stages the body through a pooled *T: asserting to a local
	// (`v := body.(T)`) and calling AppendFrame on &v sends the copy to
	// the heap every message, because the pointer escapes through the
	// Framer interface. Copying into pooled scratch keeps the steady
	// state allocation-free; the scratch is zeroed before going back so
	// it never pins a message's bulk payload.
	scratch := &sync.Pool{New: func() any { return new(T) }}
	info := &framerInfo{
		name: t.String(),
		encode: func(body any, buf []byte) []byte {
			p := scratch.Get().(*T)
			*p = body.(T)
			buf = PT(p).AppendFrame(buf)
			var zero T
			*p = zero
			scratch.Put(p)
			return buf
		},
		decode: func(payload []byte) (any, error) {
			var v T
			if err := PT(&v).DecodeFrame(payload); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	framerMu.Lock()
	defer framerMu.Unlock()
	if old, ok := framerByType[t]; ok {
		// Same type re-registered (RegisterWire is callable twice):
		// keep the existing entry so name lookups stay stable.
		_ = old
		return
	}
	if _, ok := framerByName[info.name]; ok {
		panic(fmt.Sprintf("transport: duplicate framer name %q", info.name))
	}
	framerByType[t] = info
	framerByName[info.name] = info
}

// lookupFramer returns the fast-path codec for a message body, if one
// is registered.
func lookupFramer(body any) (*framerInfo, bool) {
	if body == nil {
		return nil, false
	}
	framerMu.RLock()
	fi, ok := framerByType[reflect.TypeOf(body)]
	framerMu.RUnlock()
	return fi, ok
}

// lookupFramerByName looks a codec up by wire type name. It takes the
// raw frame bytes so the map index's string conversion stays on the
// stack (a string(name) argument would heap-allocate per message).
func lookupFramerByName(name []byte) (*framerInfo, bool) {
	framerMu.RLock()
	fi, ok := framerByName[string(name)]
	framerMu.RUnlock()
	return fi, ok
}

// String interning: fast units carry the method name on every request,
// and materializing it with string(b) was a per-message allocation in
// read-path profiles. The vocabulary is tiny (registered RPC method
// names, plus low-cardinality wire strings like job IDs that Framer
// implementations intern via InternBytes), so a bounded intern table
// makes the common case allocation-free; the bound keeps a malicious
// peer from growing the table without limit — past it, lookups still
// hit for known strings and unknown ones just fall back to a copy.
var (
	internMu  sync.RWMutex
	internTab = map[string]string{}
)

const internTabMax = 1024

// InternBytes returns string(b), served from the bounded intern table
// when possible. Framer implementations use it for low-cardinality
// strings decoded on every message (e.g. job IDs) so repeat values do
// not allocate.
func InternBytes(b []byte) string { return internString(b) }

func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < internTabMax {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// errFrame reports a malformed fast-path frame; the conn treats it as a
// protocol error and tears down.
var errFrame = errors.New("transport: malformed frame")

// Fast-unit payload layout (everything little-endian uvarint unless
// noted):
//
//	uvarint  message ID
//	1 byte   flags (bit 0: Reply)
//	uvarint  len(Method) || Method bytes
//	uvarint  len(Err)    || Err bytes
//	uvarint  len(body type name) || name bytes
//	...      body frame (AppendFrame output), to end of unit
const fastFlagReply = 0x01

// appendFastUnitPayload serializes a message whose body has a
// registered framer. buf is the conn's reusable staging buffer.
func appendFastUnitPayload(buf []byte, m *Message, fi *framerInfo) []byte {
	buf = binary.AppendUvarint(buf, m.ID)
	var flags byte
	if m.Reply {
		flags |= fastFlagReply
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(m.Method)))
	buf = append(buf, m.Method...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Err)))
	buf = append(buf, m.Err...)
	buf = binary.AppendUvarint(buf, uint64(len(fi.name)))
	buf = append(buf, fi.name...)
	return fi.encode(m.Body, buf)
}

// uvarint reads one uvarint off b, returning the value and the rest.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errFrame
	}
	return v, b[n:], nil
}

// uvarintBytes reads a uvarint-length-prefixed byte string off b.
func uvarintBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, errFrame
	}
	return rest[:n], rest[n:], nil
}

// decodeFastUnitPayload parses a fast unit. payload is receive scratch
// owned by the conn; the decoded body must not retain it (the Framer
// contract) and neither does the returned Message — Method/Err are
// string copies.
func decodeFastUnitPayload(payload []byte) (Message, error) {
	var m Message
	id, rest, err := uvarint(payload)
	if err != nil {
		return m, err
	}
	if len(rest) == 0 {
		return m, errFrame
	}
	flags := rest[0]
	rest = rest[1:]
	method, rest, err := uvarintBytes(rest)
	if err != nil {
		return m, err
	}
	errStr, rest, err := uvarintBytes(rest)
	if err != nil {
		return m, err
	}
	name, rest, err := uvarintBytes(rest)
	if err != nil {
		return m, err
	}
	fi, ok := lookupFramerByName(name)
	if !ok {
		return m, fmt.Errorf("transport: frame for unregistered type %q", name)
	}
	body, err := fi.decode(rest)
	if err != nil {
		return m, err
	}
	m.ID = id
	m.Reply = flags&fastFlagReply != 0
	m.Method = internString(method)
	m.Err = string(errStr)
	m.Body = body
	return m, nil
}
