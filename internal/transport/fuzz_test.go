package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// fuzzBlob is a test-only fast-path body: a tag plus bulk bytes, enough
// structure to exercise every field of the fast-unit format.
type fuzzBlob struct {
	Tag  string
	Data []byte
}

func (b *fuzzBlob) AppendFrame(buf []byte) []byte {
	buf = appendUvarintLen(buf, len(b.Tag))
	buf = append(buf, b.Tag...)
	buf = appendUvarintLen(buf, len(b.Data))
	return append(buf, b.Data...)
}

func (b *fuzzBlob) DecodeFrame(payload []byte) error {
	tag, rest, err := uvarintBytes(payload)
	if err != nil {
		return err
	}
	data, rest, err := uvarintBytes(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errFrame
	}
	b.Tag = string(tag)
	// Copy: payload is transport receive scratch (the Framer contract).
	b.Data = append([]byte(nil), data...)
	return nil
}

func appendUvarintLen(buf []byte, n int) []byte {
	// Tiny local helper so the test framer reads like the dfs ones.
	for x := uint64(n); ; {
		if x < 0x80 {
			return append(buf, byte(x))
		}
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
}

var registerFuzzBlob = sync.OnceFunc(func() {
	RegisterFramer[fuzzBlob, *fuzzBlob]()
	RegisterType(fuzzBlob{})
})

// FuzzFastUnitPayload hammers the fast-unit decoder with arbitrary
// bytes: it must never panic, and whatever it accepts must survive a
// re-encode/decode round trip unchanged.
func FuzzFastUnitPayload(f *testing.F) {
	registerFuzzBlob()
	// Structured seed: a real request payload produced by the encoder.
	seed := appendFastUnitPayload(nil, &Message{
		ID:     7,
		Method: "dn.readBlock",
		Body:   fuzzBlob{Tag: "job-1", Data: []byte("block bytes")},
	}, mustLookupFramer(f, fuzzBlob{}))
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-payload
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeFastUnitPayload(data)
		if err != nil {
			return
		}
		body, ok := m.Body.(fuzzBlob)
		if !ok {
			// Some other registered framer type decoded; nothing further
			// to assert without knowing its shape.
			return
		}
		fi, _ := lookupFramer(body)
		re := appendFastUnitPayload(nil, &m, fi)
		m2, err := decodeFastUnitPayload(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded unit failed: %v", err)
		}
		b2 := m2.Body.(fuzzBlob)
		if m2.ID != m.ID || m2.Reply != m.Reply || m2.Method != m.Method ||
			m2.Err != m.Err || b2.Tag != body.Tag || !bytes.Equal(b2.Data, body.Data) {
			t.Fatalf("round trip changed message: %+v -> %+v", m, m2)
		}
	})
}

func mustLookupFramer(f *testing.F, body any) *framerInfo {
	fi, ok := lookupFramer(body)
	if !ok {
		f.Fatalf("no framer registered for %T", body)
	}
	return fi
}

// FuzzTCPRecvStream feeds arbitrary bytes into a tcpConn's receive side:
// unit headers with unknown kinds, corrupted or oversized length
// prefixes, and truncated payloads must all surface as errors, never
// panics or giant allocations.
func FuzzTCPRecvStream(f *testing.F) {
	registerFuzzBlob()
	// A well-formed fast unit, so mutations explore the near-valid space.
	payload := appendFastUnitPayload(nil, &Message{
		ID:     1,
		Method: "echo",
		Body:   fuzzBlob{Tag: "t", Data: []byte("d")},
	}, mustLookupFramer(f, fuzzBlob{}))
	unit := []byte{unitFast}
	unit = appendUvarintLen(unit, len(payload))
	unit = append(unit, payload...)
	f.Add(unit)
	f.Add([]byte{0xFF, 0x00})     // unknown unit kind
	f.Add([]byte{unitFast, 0x05}) // promised 5 payload bytes, stream ends
	f.Add([]byte{unitGob, 0x00})  // zero-length gob unit
	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			client.SetWriteDeadline(time.Now().Add(2 * time.Second))
			client.Write(data)
			client.Close()
		}()
		conn := newTCPConn(server, tcpConfig{fastPath: true})
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		for i := 0; i < 64; i++ { // bound: each Recv consumes ≥1 byte or errors
			if _, err := conn.Recv(); err != nil {
				break
			}
		}
		conn.Close()
		<-done
	})
}

// TestTCPFastGobInterop proves the cross-compat claim behind
// WithTCPFastPath: a fast-path sender and a gob-only sender interoperate
// on the same stream, because every conn decodes both unit kinds.
func TestTCPFastGobInterop(t *testing.T) {
	registerFuzzBlob()
	clock := simclock.NewReal()
	payload := bytes.Repeat([]byte{0xA5}, 1<<16)

	for _, tc := range []struct {
		name       string
		serverFast bool
		clientFast bool
	}{
		{"fastClient_gobServer", false, true},
		{"gobClient_fastServer", true, false},
		{"gobBoth", false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snet := NewTCPNetwork(WithTCPFastPath(tc.serverFast))
			cnet := NewTCPNetwork(WithTCPFastPath(tc.clientFast))
			srv := NewServer(clock)
			srv.Handle("swap", func(arg any) (any, error) {
				b := arg.(fuzzBlob)
				return fuzzBlob{Tag: b.Tag + "/reply", Data: b.Data}, nil
			})
			l, err := snet.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			defer l.Close()
			srv.ServeBackground(l)
			defer srv.Close()

			c, err := Dial(clock, cnet, l.Addr(), WithCallTimeout(5*time.Second))
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			got, err := Call[fuzzBlob](c, "swap", fuzzBlob{Tag: "req", Data: payload})
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			if got.Tag != "req/reply" || !bytes.Equal(got.Data, payload) {
				t.Errorf("swap reply corrupted: tag %q, %d bytes", got.Tag, len(got.Data))
			}
		})
	}
}
