package transport

import (
	"encoding/gob"
	"net"
	"sync"
)

// RegisterType registers a concrete message-body type for gob encoding on
// the TCP transport. Call it once per type, typically from an init in the
// package that defines the wire structs.
func RegisterType(v any) { gob.Register(v) }

// TCPNetwork is the real-socket Network. It must be used with the real
// clock: socket reads block natively, which would stall a virtual clock.
type TCPNetwork struct{}

var _ Network = TCPNetwork{}

// NewTCPNetwork returns the TCP transport.
func NewTCPNetwork() TCPNetwork { return TCPNetwork{} }

// Listen binds a TCP listener on addr (host:port; use 127.0.0.1:0 for an
// ephemeral port and read it back with Addr).
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a TCP RPC endpoint.
func (TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

var _ Listener = (*tcpListener)(nil)

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	wmu sync.Mutex // serializes writers into the gob stream
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (t *tcpConn) Send(m Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.enc.Encode(&m)
}

func (t *tcpConn) Recv() (Message, error) {
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		return Message{}, err
	}
	return m, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }
