package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// RegisterType registers a concrete message-body type for gob encoding on
// the TCP transport. Call it once per type, typically from an init in the
// package that defines the wire structs.
func RegisterType(v any) { gob.Register(v) }

// Wire protocol: the TCP stream is a sequence of self-delimiting units,
// each
//
//	1 byte   unit kind (unitGob | unitFast)
//	uvarint  payload length
//	...      payload bytes
//
// unitGob payloads are the output of one persistent gob Encode of the
// Message (type definitions included the first time each type appears,
// exactly as on a raw gob stream). unitFast payloads are the binary
// fast-path format for bodies registered with RegisterFramer — see
// frame.go. Every conn decodes both kinds regardless of what it sends,
// so a fast-path sender interoperates with a gob-only sender on the
// same stream.
const (
	unitGob  = 0x00
	unitFast = 0x01

	// maxUnitSize bounds a unit payload (a corrupted length prefix must
	// not drive a giant allocation). Comfortably above the largest block
	// payload the benchmarks or experiments move in one message.
	maxUnitSize = 64 << 20
)

// TCPOption configures the TCP transport.
type TCPOption func(*tcpConfig)

type tcpConfig struct {
	fastPath bool
}

// WithTCPFastPath toggles sending binary fast-path units for bodies
// registered with RegisterFramer (default on). A fast-path-off conn
// still decodes inbound fast units — the option controls only what this
// side emits — so it doubles as the gob baseline for benchmarks and the
// compatibility fallback.
func WithTCPFastPath(on bool) TCPOption {
	return func(c *tcpConfig) { c.fastPath = on }
}

// TCPNetwork is the real-socket Network. It must be used with the real
// clock: socket reads block natively, which would stall a virtual clock.
type TCPNetwork struct{ cfg tcpConfig }

var _ Network = TCPNetwork{}

// NewTCPNetwork returns the TCP transport.
func NewTCPNetwork(opts ...TCPOption) TCPNetwork {
	cfg := tcpConfig{fastPath: true}
	for _, o := range opts {
		o(&cfg)
	}
	return TCPNetwork{cfg: cfg}
}

// Listen binds a TCP listener on addr (host:port; use 127.0.0.1:0 for an
// ephemeral port and read it back with Addr).
func (n TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l, cfg: n.cfg}, nil
}

// Dial connects to a TCP RPC endpoint.
func (n TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, n.cfg), nil
}

type tcpListener struct {
	l   net.Listener
	cfg tcpConfig
}

var _ Listener = (*tcpListener)(nil)

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t.cfg), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c   net.Conn
	cfg tcpConfig

	// Send state, guarded by wmu. The gob encoder is persistent but
	// stages each Encode into stage so its output can be framed as one
	// unit; wbuf is grow-once scratch for fast-unit payloads and unit
	// headers, so steady-state sends allocate nothing.
	wmu   sync.Mutex
	bw    *bufio.Writer
	enc   *gob.Encoder
	stage bytes.Buffer
	wbuf  []byte
	hdr   [1 + binary.MaxVarintLen64]byte

	// Recv state, used only by the conn's single reader goroutine. The
	// gob decoder is persistent and reads each unit's payload through
	// feed (a byte-counted view of br); rbuf is grow-once scratch for
	// fast-unit payloads, valid only until the next Recv — DecodeFrame
	// implementations copy what they keep.
	br   *bufio.Reader
	dec  *gob.Decoder
	feed *payloadFeed
	rbuf []byte
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(c net.Conn, cfg tcpConfig) *tcpConn {
	t := &tcpConn{c: c, cfg: cfg}
	t.bw = bufio.NewWriterSize(c, 64<<10)
	t.enc = gob.NewEncoder(&t.stage)
	t.br = bufio.NewReaderSize(c, 64<<10)
	t.feed = &payloadFeed{br: t.br}
	// The decoder reads through feed, which implements io.ByteReader,
	// so gob uses it directly (no internal buffering) and consumes
	// exactly one unit payload per Decode.
	t.dec = gob.NewDecoder(t.feed)
	return t
}

func (t *tcpConn) Send(m Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()

	if t.cfg.fastPath {
		if fi, ok := lookupFramer(m.Body); ok {
			t.wbuf = appendFastUnitPayload(t.wbuf[:0], &m, fi)
			if err := t.writeUnitHeader(unitFast, len(t.wbuf)); err != nil {
				return err
			}
			if _, err := t.bw.Write(t.wbuf); err != nil {
				return err
			}
			return t.bw.Flush()
		}
	}

	// Gob fallback: stage one persistent-stream Encode, then frame it.
	t.stage.Reset()
	if err := t.enc.Encode(&m); err != nil {
		return err
	}
	if err := t.writeUnitHeader(unitGob, t.stage.Len()); err != nil {
		return err
	}
	if _, err := t.stage.WriteTo(t.bw); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *tcpConn) writeUnitHeader(kind byte, n int) error {
	// t.hdr (guarded by wmu) rather than a local: a stack array passed to
	// bw.Write escapes through the underlying io.Writer interface and
	// costs one heap allocation per unit sent.
	t.hdr[0] = kind
	hn := 1 + binary.PutUvarint(t.hdr[1:], uint64(n))
	_, err := t.bw.Write(t.hdr[:hn])
	return err
}

func (t *tcpConn) Recv() (Message, error) {
	kind, err := t.br.ReadByte()
	if err != nil {
		return Message{}, err
	}
	n, err := binary.ReadUvarint(t.br)
	if err != nil {
		return Message{}, err
	}
	if n > maxUnitSize {
		return Message{}, fmt.Errorf("transport: unit of %d bytes exceeds limit", n)
	}
	switch kind {
	case unitGob:
		t.feed.remaining = n
		var m Message
		if err := t.dec.Decode(&m); err != nil {
			return Message{}, err
		}
		if t.feed.remaining != 0 {
			return Message{}, fmt.Errorf("transport: gob unit not fully consumed (%d bytes left)", t.feed.remaining)
		}
		return m, nil
	case unitFast:
		if cap(t.rbuf) < int(n) {
			t.rbuf = make([]byte, n)
		}
		buf := t.rbuf[:n]
		if _, err := io.ReadFull(t.br, buf); err != nil {
			return Message{}, err
		}
		return decodeFastUnitPayload(buf)
	default:
		return Message{}, fmt.Errorf("transport: unknown unit kind 0x%02x", kind)
	}
}

func (t *tcpConn) Close() error { return t.c.Close() }

// payloadFeed is the persistent gob decoder's view of the stream: it
// serves bytes from the shared bufio.Reader but refuses to read past
// the current unit's payload, so a decoding bug cannot desynchronize
// the unit framing. Implementing io.ByteReader keeps gob from wrapping
// it in another buffer (which would read ahead across unit boundaries).
type payloadFeed struct {
	br        *bufio.Reader
	remaining uint64
}

func (f *payloadFeed) Read(p []byte) (int, error) {
	if f.remaining == 0 {
		return 0, io.EOF
	}
	if uint64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.br.Read(p)
	f.remaining -= uint64(n)
	return n, err
}

func (f *payloadFeed) ReadByte() (byte, error) {
	if f.remaining == 0 {
		return 0, io.EOF
	}
	b, err := f.br.ReadByte()
	if err == nil {
		f.remaining--
	}
	return b, err
}
