// Package transport provides the RPC fabric for the Ignem cluster: a
// message-oriented client/server layer over two interchangeable
// transports.
//
//   - The in-memory transport connects components inside one process and
//     charges simulated network latency and bandwidth through a Clock, so
//     whole-cluster experiments run under virtual time.
//   - The TCP transport runs the same RPC protocol over real sockets with
//     gob encoding, for live multi-process deployments.
//
// Messages are plain structs. Anything sent over TCP must be registered
// with RegisterType (a thin wrapper over gob.Register).
package transport

import (
	"errors"
	"fmt"
)

// Errors returned by the RPC layer.
var (
	// ErrClosed indicates the connection or endpoint has shut down.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout indicates a call deadline elapsed before the reply.
	ErrTimeout = errors.New("transport: call timed out")
)

// RemoteError is a failure reported by the remote handler rather than by
// the transport itself.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// CallError is a transport-level call failure: the call never completed
// (timeout, closed connection, send failure) as opposed to a RemoteError,
// where the handler ran and reported an error. Retry policies match it
// with errors.As to learn which method and endpoint failed, and errors.Is
// still sees the underlying ErrTimeout/ErrClosed through Unwrap.
type CallError struct {
	// Method is the RPC method that failed.
	Method string
	// Addr is the remote endpoint, when the client knows it (clients made
	// by Dial do; bare NewClient leaves it empty).
	Addr string
	// Err is the underlying transport failure (ErrTimeout, ErrClosed, or
	// a conn send error).
	Err error
}

func (e *CallError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("transport: call %s: %v", e.Method, e.Err)
	}
	return fmt.Sprintf("transport: call %s on %s: %v", e.Method, e.Addr, e.Err)
}

func (e *CallError) Unwrap() error { return e.Err }

// Conn is a bidirectional, ordered message pipe.
type Conn interface {
	// Send transmits one message. It never blocks for simulated network
	// time (delivery latency is charged on the receiving side's queue).
	Send(m Message) error
	// Recv blocks until the next message arrives or the conn closes.
	Recv() (Message, error)
	// Close tears down both directions.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Network abstracts connection establishment so the cluster wiring is
// identical for in-memory and TCP deployments.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Message is the RPC wire unit.
type Message struct {
	// ID correlates a reply with its call.
	ID uint64
	// Method names the remote handler; empty on replies.
	Method string
	// Reply distinguishes replies from calls.
	Reply bool
	// Body carries the call argument or reply value.
	Body any
	// Err carries a handler failure on replies.
	Err string
}

// Sized lets a message body declare its simulated wire size, so the
// in-memory transport can charge bandwidth for bulk transfers (block
// data) rather than just per-message latency.
type Sized interface {
	WireSize() int64
}

func wireSize(body any) int64 {
	if s, ok := body.(Sized); ok {
		return s.WireSize()
	}
	return 256 // nominal size of a small control message
}
