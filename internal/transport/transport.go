// Package transport provides the RPC fabric for the Ignem cluster: a
// message-oriented client/server layer over two interchangeable
// transports.
//
//   - The in-memory transport connects components inside one process and
//     charges simulated network latency and bandwidth through a Clock, so
//     whole-cluster experiments run under virtual time.
//   - The TCP transport runs the same RPC protocol over real sockets with
//     gob encoding, for live multi-process deployments.
//
// Messages are plain structs. Anything sent over TCP must be registered
// with RegisterType (a thin wrapper over gob.Register).
package transport

import (
	"errors"
	"fmt"
)

// Errors returned by the RPC layer.
var (
	// ErrClosed indicates the connection or endpoint has shut down.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout indicates a call deadline elapsed before the reply.
	ErrTimeout = errors.New("transport: call timed out")
)

// RemoteError is a failure reported by the remote handler rather than by
// the transport itself.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Conn is a bidirectional, ordered message pipe.
type Conn interface {
	// Send transmits one message. It never blocks for simulated network
	// time (delivery latency is charged on the receiving side's queue).
	Send(m Message) error
	// Recv blocks until the next message arrives or the conn closes.
	Recv() (Message, error)
	// Close tears down both directions.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Network abstracts connection establishment so the cluster wiring is
// identical for in-memory and TCP deployments.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Message is the RPC wire unit.
type Message struct {
	// ID correlates a reply with its call.
	ID uint64
	// Method names the remote handler; empty on replies.
	Method string
	// Reply distinguishes replies from calls.
	Reply bool
	// Body carries the call argument or reply value.
	Body any
	// Err carries a handler failure on replies.
	Err string
}

// Sized lets a message body declare its simulated wire size, so the
// in-memory transport can charge bandwidth for bulk transfers (block
// data) rather than just per-message latency.
type Sized interface {
	WireSize() int64
}

func wireSize(body any) int64 {
	if s, ok := body.(Sized); ok {
		return s.WireSize()
	}
	return 256 // nominal size of a small control message
}
