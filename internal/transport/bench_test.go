package transport

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

// BenchmarkInmemRPC measures round-trip cost on the in-memory transport,
// the dominant per-event overhead of whole-cluster experiments.
func BenchmarkInmemRPC(b *testing.B) {
	v := simclock.NewVirtual(time.Unix(0, 0))
	net := NewInmemNetwork(v)
	srv := NewServer(v)
	srv.Handle("echo", func(arg any) (any, error) { return arg, nil })
	l, err := net.Listen("nn")
	if err != nil {
		b.Fatal(err)
	}
	srv.ServeBackground(l)
	defer srv.Close()

	done := make(chan struct{})
	b.ResetTimer()
	v.Go(func() {
		defer close(done)
		c, err := Dial(v, net, "nn")
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call("echo", 42); err != nil {
				b.Error(err)
				return
			}
		}
	})
	<-done
}
