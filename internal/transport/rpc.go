package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// HandlerFunc serves one RPC method. It receives the call body and
// returns the reply body. Handlers run on their own goroutine and may
// block on clock-aware waits.
type HandlerFunc func(arg any) (any, error)

// Server dispatches inbound calls to registered handlers.
type Server struct {
	clock simclock.Clock

	mu       sync.Mutex
	handlers map[string]HandlerFunc
	conns    map[Conn]struct{}
	closed   bool
}

// NewServer creates a server; register handlers with Handle, then call
// Serve with a listener.
func NewServer(clock simclock.Clock) *Server {
	return &Server{
		clock:    clock,
		handlers: make(map[string]HandlerFunc),
		conns:    make(map[Conn]struct{}),
	}
}

// Handle registers fn for method. Registering after Serve has started is
// allowed; re-registering a method replaces it.
func (s *Server) Handle(method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = fn
}

// Serve accepts connections from l until l closes. It returns once the
// accept loop exits; per-connection service continues on goroutines.
func (s *Server) Serve(l Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.clock.Go(func() { s.serveConn(conn) })
	}
}

// ServeBackground runs Serve on its own goroutine.
func (s *Server) ServeBackground(l Listener) {
	s.clock.Go(func() { s.Serve(l) })
}

func (s *Server) serveConn(conn Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		if m.Reply {
			continue // stray reply; ignore
		}
		s.mu.Lock()
		fn, ok := s.handlers[m.Method]
		s.mu.Unlock()
		s.clock.Go(func() {
			reply := Message{ID: m.ID, Reply: true}
			if !ok {
				reply.Err = fmt.Sprintf("unknown method %q", m.Method)
			} else if body, err := safeCall(fn, m.Method, m.Body); err != nil {
				reply.Err = err.Error()
			} else {
				reply.Body = body
			}
			// Best effort: the conn may have closed while handling.
			_ = conn.Send(reply)
		})
	}
}

// safeCall runs a handler, converting a panic into an error reply so one
// bad request cannot take the server down.
func safeCall(fn HandlerFunc, method string, body any) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler %s panicked: %v", method, r)
		}
	}()
	return fn(body)
}

// Close stops accepting work and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Client issues calls over a single connection, multiplexing concurrent
// requests by ID.
type Client struct {
	clock   simclock.Clock
	conn    Conn
	addr    string // remote endpoint, when known (set by Dial)
	timeout time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*simclock.Chan[Message]
	closed  bool

	// mailboxes recycles per-call reply mailboxes. A mailbox is recycled
	// only after its reply was received on the clean path — the one case
	// where no other goroutine (recvLoop included) can still hold a
	// reference — and carries its parked-receiver state (waiter, timeout
	// timer) with it, which profiling showed dominated per-call
	// allocations on the TCP data plane.
	mailboxes sync.Pool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCallTimeout sets the default per-call deadline (default 30s of
// simulated time).
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient wraps conn and starts the reply-dispatch loop.
func NewClient(clock simclock.Clock, conn Conn, opts ...ClientOption) *Client {
	c := &Client{
		clock:   clock,
		conn:    conn,
		timeout: 30 * time.Second,
		pending: make(map[uint64]*simclock.Chan[Message]),
	}
	for _, o := range opts {
		o(c)
	}
	clock.Go(c.recvLoop)
	return c
}

// Dial connects to addr on net and returns a ready client. Call failures
// from a dialed client carry addr in their *CallError.
func Dial(clock simclock.Clock, net Network, addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(clock, conn, opts...)
	c.addr = addr
	return c, nil
}

func (c *Client) recvLoop() {
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.failAll()
			return
		}
		if !m.Reply {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		delete(c.pending, m.ID)
		c.mu.Unlock()
		if ok {
			ch.Send(m)
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]*simclock.Chan[Message])
	c.closed = true
	c.mu.Unlock()
	for _, ch := range pending {
		ch.Close()
	}
}

// Call invokes method with arg and returns the reply body. It blocks up
// to the client's timeout of simulated time. Transport-level failures
// (timeout, closed connection, send errors) come back as a *CallError
// wrapping ErrTimeout/ErrClosed, so callers can both identify the failed
// endpoint with errors.As and classify the failure with errors.Is.
func (c *Client) Call(method string, arg any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, &CallError{Method: method, Addr: c.addr, Err: ErrClosed}
	}
	c.nextID++
	id := c.nextID
	ch, _ := c.mailboxes.Get().(*simclock.Chan[Message])
	if ch == nil {
		ch = simclock.NewChan[Message](c.clock)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.conn.Send(Message{ID: id, Method: method, Body: arg}); err != nil {
		c.drop(id)
		return nil, &CallError{Method: method, Addr: c.addr, Err: err}
	}
	m, ok, timedOut := ch.RecvTimeout(c.timeout)
	if timedOut {
		c.drop(id)
		return nil, &CallError{Method: method, Addr: c.addr,
			Err: fmt.Errorf("%w after %v", ErrTimeout, c.timeout)}
	}
	if !ok {
		return nil, &CallError{Method: method, Addr: c.addr, Err: ErrClosed}
	}
	// Clean reply: recvLoop removed the mailbox from pending before
	// delivering, so nothing else references it and it can be recycled.
	// On the timeout/closed paths above the mailbox is never recycled —
	// recvLoop may still hold it to deliver a late reply.
	c.mailboxes.Put(ch)
	if m.Err != "" {
		return nil, &RemoteError{Method: method, Msg: m.Err}
	}
	return m.Body, nil
}

// Addr returns the remote endpoint this client talks to, or "" when
// unknown (clients constructed directly over a Conn).
func (c *Client) Addr() string { return c.addr }

// drop abandons a pending call after a timeout or send failure. The
// call's mailbox is closed so a reply that arrives later (recvLoop may
// already hold a reference to it) is dropped by Chan.Send instead of
// being buffered in a mailbox nobody will ever receive from.
func (c *Client) drop(id uint64) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ok {
		ch.Close()
	}
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error { return c.conn.Close() }

// Call is the typed convenience wrapper around Client.Call.
func Call[Resp any](c *Client, method string, arg any) (Resp, error) {
	var zero Resp
	body, err := c.Call(method, arg)
	if err != nil {
		return zero, err
	}
	resp, ok := body.(Resp)
	if !ok {
		return zero, fmt.Errorf("transport: %s: reply type %T, want %T", method, body, zero)
	}
	return resp, nil
}
