package storage

import (
	"testing"

	"repro/internal/dfs"
)

func TestReplicaStoreRoundTrip(t *testing.T) {
	s := NewReplicaStore()
	data := []byte("hello, replica")
	s.Put(7, int64(len(data)), data, dfs.Checksum(data))
	s.Put(3, 1024, nil, 0) // synthetic, size-only

	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if ids := s.IDs(); len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("IDs = %v, want [3 7]", ids)
	}
	r, ok := s.Get(7)
	if !ok || string(r.Data) != string(data) || r.Size != int64(len(data)) {
		t.Fatalf("Get(7) = %+v, %v", r, ok)
	}
	if err := s.Verify(7); err != nil {
		t.Fatalf("Verify(7): %v", err)
	}
	if err := s.Verify(3); err != nil {
		t.Fatalf("Verify(3) on synthetic replica: %v", err)
	}
	if err := s.Verify(99); err != nil {
		t.Fatalf("Verify(99) on missing replica: %v", err)
	}
	if !s.Delete(3) || s.Delete(3) {
		t.Fatalf("Delete(3) should succeed once then report absent")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len after delete = %d, want 1", got)
	}
}

func TestReplicaStoreCorruptDetected(t *testing.T) {
	s := NewReplicaStore()
	data := []byte("precious bytes that must not rot")
	s.Put(1, int64(len(data)), data, dfs.Checksum(data))

	before, _ := s.Get(1)
	if !s.Corrupt(1) {
		t.Fatalf("Corrupt(1) failed on a replica with a payload")
	}
	err := s.Verify(1)
	if err == nil || !dfs.IsChecksum(err) {
		t.Fatalf("Verify after corruption = %v, want checksum error", err)
	}
	// The alias handed out before the flip keeps the original bytes.
	if string(before.Data) != string(data) {
		t.Fatalf("pre-corruption alias mutated: %q", before.Data)
	}
	if s.Corrupt(2) {
		t.Fatalf("Corrupt(2) succeeded on a missing replica")
	}
	s.Put(2, 64, nil, 0)
	if s.Corrupt(2) {
		t.Fatalf("Corrupt(2) succeeded on a payload-less replica")
	}
}
