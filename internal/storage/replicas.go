package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dfs"
)

// Replica is one stored block copy: its payload (nil for synthetic
// size-only blocks) and the CRC32C recorded when it was stored. The
// Device models a replica's timing; the ReplicaStore holds its bytes
// and integrity metadata.
type Replica struct {
	Size     int64
	Data     []byte // nil for synthetic blocks
	Checksum uint32 // 0 = unchecksummed
}

// ReplicaStore is a datanode's checksum-aware block map. It pairs each
// replica's payload with the checksum it arrived with, so the read
// path, the migrate copy, and the background scrubber can all verify
// the same stored bytes against the same write-time CRC. Safe for
// concurrent use; it never calls out while holding its lock, so it may
// be used under a caller's own mutex.
type ReplicaStore struct {
	mu sync.Mutex
	m  map[dfs.BlockID]Replica
}

// NewReplicaStore returns an empty store.
func NewReplicaStore() *ReplicaStore {
	return &ReplicaStore{m: make(map[dfs.BlockID]Replica)}
}

// Put stores (or replaces) a replica. The store takes ownership of
// data and never mutates it, so callers may keep read-only aliases.
func (s *ReplicaStore) Put(id dfs.BlockID, size int64, data []byte, checksum uint32) {
	s.mu.Lock()
	s.m[id] = Replica{Size: size, Data: data, Checksum: checksum}
	s.mu.Unlock()
}

// Get returns the replica for id. The Data slice is shared with the
// store; callers must not mutate it.
func (s *ReplicaStore) Get(id dfs.BlockID) (Replica, bool) {
	s.mu.Lock()
	r, ok := s.m[id]
	s.mu.Unlock()
	return r, ok
}

// Delete removes the replica for id, reporting whether it was present.
func (s *ReplicaStore) Delete(id dfs.BlockID) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ok
}

// Len reports how many replicas are stored.
func (s *ReplicaStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// IDs returns every stored block ID, sorted ascending (reports and
// scrub sweeps need a deterministic iteration order).
func (s *ReplicaStore) IDs() []dfs.BlockID {
	s.mu.Lock()
	out := make([]dfs.BlockID, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verify recomputes the CRC32C of id's stored payload against the
// checksum recorded at store time. Replicas without a payload or
// without a checksum verify trivially (there is nothing to check); a
// mismatch returns an error satisfying dfs.IsChecksum. A missing
// replica verifies trivially too — Delete racing a scrub is not
// corruption.
func (s *ReplicaStore) Verify(id dfs.BlockID) error {
	s.mu.Lock()
	r, ok := s.m[id]
	s.mu.Unlock()
	if !ok || r.Checksum == 0 || len(r.Data) == 0 {
		return nil
	}
	if dfs.Checksum(r.Data) != r.Checksum {
		return fmt.Errorf("storage: replica %d: %w", id, dfs.ErrChecksum)
	}
	return nil
}

// Corrupt flips one payload byte of id's replica while keeping its
// recorded checksum — a fault-injection hook for corruption-recovery
// tests. Returns false when the replica is absent or has no payload to
// corrupt. The flip copies the payload first, so aliases handed out by
// Get before the corruption keep the original bytes.
func (s *ReplicaStore) Corrupt(id dfs.BlockID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[id]
	if !ok || len(r.Data) == 0 {
		return false
	}
	bad := make([]byte, len(r.Data))
	copy(bad, r.Data)
	bad[len(bad)/2] ^= 0xFF
	r.Data = bad
	s.m[id] = r
	return true
}
