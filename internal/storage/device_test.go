package storage

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

const blockSize = 64 << 20 // the paper's 64 MB HDFS block

// readConcurrently issues n concurrent block reads and returns the mean
// per-read duration.
func readConcurrently(t *testing.T, spec Spec, streams int, bytes int64) time.Duration {
	t.Helper()
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, spec)
	var mu sync.Mutex
	var total time.Duration
	for i := 0; i < streams; i++ {
		v.Go(func() {
			start := v.Now()
			if err := dev.Read(bytes); err != nil {
				t.Errorf("Read: %v", err)
			}
			mu.Lock()
			total += v.Now().Sub(start)
			mu.Unlock()
		})
	}
	v.Wait()
	dev.Close()
	v.Wait()
	return total / time.Duration(streams)
}

func TestSingleStreamMatchesSequentialBandwidth(t *testing.T) {
	got := readConcurrently(t, HDDSpec(), 1, blockSize)
	// 64 MB at 120 MB/s is ~533 ms plus one seek.
	want := 560 * time.Millisecond
	if got < 500*time.Millisecond || got > 650*time.Millisecond {
		t.Errorf("single-stream HDD 64MB read = %v, want ~%v", got, want)
	}
}

func TestHDDCollapsesUnderConcurrency(t *testing.T) {
	single := readConcurrently(t, HDDSpec(), 1, blockSize)
	ten := readConcurrently(t, HDDSpec(), 10, blockSize)
	// Ten streams must take far more than 10x a single stream (seek
	// thrashing), i.e. per-stream throughput collapses superlinearly.
	if ten < 12*single {
		t.Errorf("10-stream read %v vs single %v: expected >12x degradation", ten, single)
	}
}

func TestRAMImmuneToConcurrency(t *testing.T) {
	single := readConcurrently(t, RAMSpec(), 1, blockSize)
	ten := readConcurrently(t, RAMSpec(), 10, blockSize)
	// Fair sharing: 10 streams take ~10x each, no worse.
	if ten > time.Duration(float64(single)*10.5) {
		t.Errorf("RAM degraded superlinearly: single=%v ten=%v", single, ten)
	}
}

// TestFig1Ratios checks the paper's headline device ratios under the
// SWIM-like concurrency of ~10 readers per device: RAM ~160x faster than
// HDD and ~7x faster than SSD for 64 MB block reads.
func TestFig1Ratios(t *testing.T) {
	const streams = 10
	hdd := readConcurrently(t, HDDSpec(), streams, blockSize)
	ssd := readConcurrently(t, SSDSpec(), streams, blockSize)
	ram := readConcurrently(t, RAMSpec(), streams, blockSize)

	hddRatio := float64(hdd) / float64(ram)
	ssdRatio := float64(ssd) / float64(ram)
	t.Logf("64MB@%d streams: hdd=%v ssd=%v ram=%v (hdd/ram=%.0fx ssd/ram=%.1fx)",
		streams, hdd, ssd, ram, hddRatio, ssdRatio)
	if hddRatio < 80 || hddRatio > 320 {
		t.Errorf("hdd/ram ratio %.0fx outside the paper's ~160x shape", hddRatio)
	}
	if ssdRatio < 3.5 || ssdRatio > 14 {
		t.Errorf("ssd/ram ratio %.1fx outside the paper's ~7x shape", ssdRatio)
	}
}

// TestSerializedBeatsConcurrent reproduces the §IV-F physics: reading N
// blocks one at a time completes sooner than reading them concurrently.
func TestSerializedBeatsConcurrent(t *testing.T) {
	const blocks = 8
	// Concurrent: 8 readers at once.
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, HDDSpec())
	wg := simclock.NewWaitGroup(v)
	var concurrent time.Duration
	v.Run(func() {
		start := v.Now()
		for i := 0; i < blocks; i++ {
			wg.Go(func() { _ = dev.Read(blockSize) })
		}
		wg.Wait()
		concurrent = v.Now().Sub(start)
	})

	// Serialized: same blocks, one at a time (what the Ignem slave does).
	v2 := simclock.NewVirtual(epoch)
	dev2 := MustNewDevice(v2, HDDSpec())
	var serialized time.Duration
	v2.Run(func() {
		start := v2.Now()
		for i := 0; i < blocks; i++ {
			_ = dev2.Read(blockSize)
		}
		serialized = v2.Now().Sub(start)
	})

	if serialized >= concurrent {
		t.Errorf("serialized %v not faster than concurrent %v", serialized, concurrent)
	}
	t.Logf("serialized=%v concurrent=%v (%.2fx)", serialized, concurrent,
		float64(concurrent)/float64(serialized))
}

func TestWriteUsesWriteBandwidth(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	spec := Spec{Name: "asym", SeqReadMBps: 1000, SeqWriteMBps: 10, Seek: 0, Granule: 1 << 20}
	dev := MustNewDevice(v, spec)
	var read, write time.Duration
	v.Run(func() {
		s := v.Now()
		_ = dev.Read(10 << 20)
		read = v.Now().Sub(s)
		s = v.Now()
		_ = dev.Write(10 << 20)
		write = v.Now().Sub(s)
	})
	if write < 50*read {
		t.Errorf("write %v vs read %v: write bandwidth not honoured", write, read)
	}
}

func TestZeroByteRequestsReturnImmediately(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, HDDSpec())
	v.Run(func() {
		if err := dev.Read(0); err != nil {
			t.Errorf("Read(0): %v", err)
		}
		if err := dev.Write(-5); err != nil {
			t.Errorf("Write(-5): %v", err)
		}
		if !v.Now().Equal(epoch) {
			t.Errorf("zero-byte request consumed time")
		}
	})
}

func TestCloseFailsPendingRequests(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, HDDSpec())
	var errs []error
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		v.Go(func() {
			err := dev.Read(1 << 30)
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		})
	}
	v.Go(func() {
		v.Sleep(time.Second)
		dev.Close()
	})
	v.Wait()
	if len(errs) != 4 {
		t.Fatalf("%d of 4 requests completed", len(errs))
	}
	for _, err := range errs {
		if err != ErrClosed {
			t.Errorf("pending read returned %v, want ErrClosed", err)
		}
	}
	// Requests after close fail immediately.
	v.Run(func() {
		if err := dev.Read(1); err != ErrClosed {
			t.Errorf("post-close read returned %v", err)
		}
	})
}

func TestStatsAndUtilization(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, HDDSpec())
	v.Run(func() {
		_ = dev.Read(blockSize)
		st := dev.Stats()
		if st.BytesServed != blockSize {
			t.Errorf("BytesServed = %d, want %d", st.BytesServed, blockSize)
		}
		if st.Busy <= 0 {
			t.Error("Busy not accumulated")
		}
		// The device was the only activity, so it was ~100% busy.
		if u := dev.Utilization(); u < 0.95 || u > 1 {
			t.Errorf("Utilization = %.2f, want ~1", u)
		}
		// Idle for a while: utilization halves.
		v.Sleep(v.Now().Sub(epoch))
		if u := dev.Utilization(); u < 0.4 || u > 0.6 {
			t.Errorf("Utilization after idle = %.2f, want ~0.5", u)
		}
	})
}

func TestSpecValidation(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	bad := []Spec{
		{Name: "a", SeqReadMBps: 0, SeqWriteMBps: 1, Granule: 1},
		{Name: "b", SeqReadMBps: 1, SeqWriteMBps: 0, Granule: 1},
		{Name: "c", SeqReadMBps: 1, SeqWriteMBps: 1, Granule: 0},
		{Name: "d", SeqReadMBps: 1, SeqWriteMBps: 1, Granule: 1, Seek: -time.Second},
	}
	for _, s := range bad {
		if _, err := NewDevice(v, s); err == nil {
			t.Errorf("spec %q accepted, want error", s.Name)
		}
	}
}

// Property: total bytes served equals total bytes requested, for any mix
// of read sizes.
func TestConservationOfBytes(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		v := simclock.NewVirtual(epoch)
		dev := MustNewDevice(v, SSDSpec())
		var want int64
		for _, s := range sizes {
			n := int64(s) * 1024
			want += n
			v.Go(func() { _ = dev.Read(n) })
		}
		v.Wait()
		return dev.Stats().BytesServed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: with equal-sized concurrent requests, completion times are
// fair — max/min completion below a small bound (round-robin fairness).
func TestRoundRobinFairness(t *testing.T) {
	const streams = 6
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, HDDSpec())
	var mu sync.Mutex
	var times []time.Duration
	for i := 0; i < streams; i++ {
		v.Go(func() {
			start := v.Now()
			_ = dev.Read(32 << 20)
			mu.Lock()
			times = append(times, v.Now().Sub(start))
			mu.Unlock()
		})
	}
	v.Wait()
	min, max := times[0], times[0]
	for _, d := range times {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if float64(max)/float64(min) > 1.25 {
		t.Errorf("unfair service: min=%v max=%v", min, max)
	}
}
