// Package storage models storage devices (HDD, SSD, RAM) with the timing
// behaviour that drives the Ignem paper's results.
//
// A Device serves its outstanding requests in round-robin granules. Every
// time it switches from one request stream to another it pays the device's
// seek cost. This single mechanism yields the three facts the paper
// depends on:
//
//   - an HDD delivers near its sequential bandwidth to one streaming
//     reader but collapses under concurrent readers (seek thrashing);
//   - an SSD degrades only mildly under concurrency;
//   - RAM is unaffected by concurrency and orders of magnitude faster.
//
// It also produces the paper's §IV-F observation: reading blocks one at a
// time (as the Ignem slave does) extracts more bandwidth from the same
// disk than a job's concurrent task reads, which is why inserting delay
// before a job can make it finish sooner.
package storage

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// ErrClosed is returned for requests issued to (or in flight on) a device
// that has been closed, for example when a DataNode's server dies.
var ErrClosed = errors.New("storage: device closed")

// Tier ranks device classes in the migration ladder, coldest first.
// The canonical definition lives in package dfs (the wire carries tier
// identity on migrate commands); storage aliases it so device specs
// and the migration plane share one vocabulary.
type Tier = dfs.Tier

// Tier ranks, re-exported for spec literals.
const (
	TierHDD = dfs.TierHDD
	TierSSD = dfs.TierSSD
	TierRAM = dfs.TierRAM
)

// ReadVar models long-tail read-latency variability: most reads proceed
// at the spec's sequential bandwidth, but with probability TailProb a
// request draws a slowdown multiplier log-uniformly from
// [TailMinX, TailMaxX]. This reproduces the SSD read-variability case
// study's shape — internal housekeeping (GC, wear leveling, read
// disturb) makes a small fraction of flash reads an order of magnitude
// slower — so tier-choice policies have a real tail to react to. All
// draws come from a dedicated seeded stream, so a given seed yields a
// bit-identical cost sequence.
type ReadVar struct {
	// TailProb is the per-request probability of a slow read, in [0,1].
	TailProb float64
	// TailMinX and TailMaxX bound the slowdown multiplier (>1) drawn
	// log-uniformly for a tail read.
	TailMinX float64
	TailMaxX float64
	// Seed initializes the device's variability stream.
	Seed int64
}

func (v *ReadVar) validate(name string) error {
	if v == nil {
		return nil
	}
	if v.TailProb < 0 || v.TailProb > 1 {
		return fmt.Errorf("storage: %s: tail probability outside [0,1]", name)
	}
	if v.TailMinX < 1 || v.TailMaxX < v.TailMinX {
		return fmt.Errorf("storage: %s: tail multipliers must satisfy 1 <= min <= max", name)
	}
	return nil
}

// Spec holds the performance parameters of a device.
type Spec struct {
	// Name labels the device in metrics output ("hdd", "ssd", "ram").
	Name string
	// Tier ranks the device in the migration ladder. The zero value is
	// TierHDD, which matches every historical cold-media spec.
	Tier Tier
	// ReadVar, when non-nil, adds seeded long-tail read-cost
	// variability (see ReadVar). Nil — the default on every historical
	// spec — keeps reads exactly at sequential bandwidth, so seeded
	// figures are untouched.
	ReadVar *ReadVar
	// SeqReadMBps is the sequential streaming read throughput in MB/s.
	SeqReadMBps float64
	// SeqWriteMBps is the sequential streaming write throughput in MB/s.
	SeqWriteMBps float64
	// Seek is the cost of switching between request streams (or the
	// initial positioning cost of a new stream).
	Seek time.Duration
	// Granule is how many bytes the device serves a stream before it is
	// willing to switch to another stream.
	Granule int64
	// Parallel marks a device whose streams do not queue behind each
	// other: each request proceeds at the full per-stream bandwidth
	// regardless of concurrency. This models RAM, where concurrent
	// memcpys on a multi-core server do not serialize the way disk
	// head positioning does.
	Parallel bool
}

func (s Spec) validate() error {
	if s.SeqReadMBps <= 0 || s.SeqWriteMBps <= 0 {
		return fmt.Errorf("storage: %s: non-positive throughput", s.Name)
	}
	if s.Granule <= 0 {
		return fmt.Errorf("storage: %s: non-positive granule", s.Name)
	}
	if s.Seek < 0 {
		return fmt.Errorf("storage: %s: negative seek", s.Name)
	}
	return s.ReadVar.validate(s.Name)
}

// HDDSpec models a 7200rpm SATA drive like the 1 TB disks in the paper's
// testbed: ~120 MB/s streaming, ~8 ms to reposition the head. Under ~10
// concurrent readers the per-stream throughput collapses to ~8 MB/s,
// which reproduces the paper's Fig 1 HDD histogram.
func HDDSpec() Spec {
	return Spec{
		Name:         "hdd",
		SeqReadMBps:  120,
		SeqWriteMBps: 110,
		Seek:         8 * time.Millisecond,
		Granule:      2 << 20, // 2 MiB between head switches
	}
}

// SSDSpec models the flash tier of the paper's Fig 1b: ~2.2 GB/s
// aggregate with a tiny switch cost, so concurrency degrades it mildly
// and 64 MB block reads land ~7x slower than RAM.
func SSDSpec() Spec {
	return Spec{
		Name:         "ssd",
		Tier:         TierSSD,
		SeqReadMBps:  2200,
		SeqWriteMBps: 1800,
		Seek:         20 * time.Microsecond,
		Granule:      1 << 20,
	}
}

// SSDVarSpec is SSDSpec with the case study's long-tail read
// variability: ~5% of reads draw a 2–20x slowdown (log-uniform), which
// puts the p99/p50 read-cost ratio in the reported band of roughly one
// order of magnitude while the median read stays at full flash speed.
func SSDVarSpec(seed int64) Spec {
	s := SSDSpec()
	s.ReadVar = &ReadVar{TailProb: 0.05, TailMinX: 2, TailMaxX: 20, Seed: seed}
	return s
}

// RAMSpec models reads of mlocked buffer-cache pages through the
// file-system read path: ~1.5 GB/s per stream (memcpy plus protocol
// overhead), with no cross-stream queuing.
func RAMSpec() Spec {
	return Spec{
		Name:         "ram",
		Tier:         TierRAM,
		SeqReadMBps:  1500,
		SeqWriteMBps: 1500,
		Seek:         0,
		Granule:      8 << 20,
		Parallel:     true,
	}
}

type opKind int

const (
	opRead opKind = iota
	opWrite
)

type request struct {
	id        uint64
	kind      opKind
	remaining int64
	slow      float64 // read-cost multiplier drawn at submit (0 or 1 = none)
	done      *simclock.Chan[error]
}

// Device is a simulated storage device. All timing flows through the
// clock, so a Device works under both real and virtual time.
type Device struct {
	clock simclock.Clock
	spec  Spec

	mu      sync.Mutex
	cond    *simclock.Cond
	queue   []*request
	nextID  uint64
	lastID  uint64
	closed  bool
	busy    time.Duration // cumulative time spent serving granules
	served  int64         // cumulative bytes served
	started time.Time
	rvRng   *rand.Rand // read-variability stream, nil without ReadVar
	slowAcc int64      // cumulative tail reads drawn
}

// NewDevice creates a device and starts its serving loop on the clock.
func NewDevice(clock simclock.Clock, spec Spec) (*Device, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	d := &Device{clock: clock, spec: spec, started: clock.Now()}
	d.cond = simclock.NewCond(clock, &d.mu)
	if spec.ReadVar != nil {
		d.rvRng = rand.New(rand.NewSource(spec.ReadVar.Seed))
	}
	clock.Go(d.run)
	return d, nil
}

// MustNewDevice is NewDevice for known-good specs.
func MustNewDevice(clock simclock.Clock, spec Spec) *Device {
	d, err := NewDevice(clock, spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the device's performance parameters.
func (d *Device) Spec() Spec { return d.spec }

// Tier reports the device's rank in the migration ladder.
func (d *Device) Tier() Tier { return d.spec.Tier }

// drawSlowLocked draws a read-cost multiplier from the variability
// stream: 1 for a fast read, log-uniform in [TailMinX, TailMaxX] for a
// tail read. Caller holds d.mu, so concurrent submitters consume the
// stream in queue order.
func (d *Device) drawSlowLocked() float64 {
	rv := d.spec.ReadVar
	if d.rvRng.Float64() >= rv.TailProb {
		return 1
	}
	d.slowAcc++
	lo, hi := math.Log(rv.TailMinX), math.Log(rv.TailMaxX)
	return math.Exp(lo + d.rvRng.Float64()*(hi-lo))
}

// Read blocks for as long as reading n bytes takes given the device's
// current load. It must be called from a simulation goroutine.
func (d *Device) Read(n int64) error { return d.submit(opRead, n) }

// Write blocks for as long as writing n bytes takes.
func (d *Device) Write(n int64) error { return d.submit(opWrite, n) }

func (d *Device) submit(kind opKind, n int64) error {
	if n <= 0 {
		return nil
	}
	if d.spec.Parallel {
		return d.submitParallel(kind, n)
	}
	req := &request{kind: kind, remaining: n, done: simclock.NewChan[error](d.clock)}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.nextID++
	req.id = d.nextID
	if kind == opRead && d.rvRng != nil {
		req.slow = d.drawSlowLocked()
	}
	d.queue = append(d.queue, req)
	d.cond.Signal()
	d.mu.Unlock()
	err, _ := req.done.Recv()
	return err
}

// submitParallel serves a request on a non-queuing device: the full
// transfer proceeds at per-stream bandwidth regardless of other streams.
func (d *Device) submitParallel(kind opKind, n int64) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	mbps := d.spec.SeqReadMBps
	slow := 1.0
	if kind == opWrite {
		mbps = d.spec.SeqWriteMBps
	} else if d.rvRng != nil {
		slow = d.drawSlowLocked()
	}
	cost := d.spec.Seek + time.Duration(float64(n)/(mbps*1e6)*slow*float64(time.Second))
	d.mu.Unlock()

	d.clock.Sleep(cost)

	d.mu.Lock()
	d.busy += cost
	d.served += n
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return nil
}

// run is the device's serving loop: one granule per iteration, round-robin
// across outstanding requests, with a seek charged on stream switches.
func (d *Device) run() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		for !d.closed && len(d.queue) == 0 {
			d.cond.Wait()
		}
		if d.closed {
			for _, r := range d.queue {
				r.done.Send(ErrClosed)
			}
			d.queue = nil
			return
		}

		req := d.queue[0]
		d.queue = d.queue[1:]
		slice := req.remaining
		if slice > d.spec.Granule {
			slice = d.spec.Granule
		}
		cost := d.serviceTime(req, slice)
		d.lastID = req.id
		d.mu.Unlock()

		d.clock.Sleep(cost)

		d.mu.Lock()
		d.busy += cost
		d.served += slice
		req.remaining -= slice
		if req.remaining <= 0 {
			req.done.Send(nil)
		} else {
			d.queue = append(d.queue, req) // back of the round-robin ring
		}
	}
}

func (d *Device) serviceTime(req *request, slice int64) time.Duration {
	mbps := d.spec.SeqReadMBps
	if req.kind == opWrite {
		mbps = d.spec.SeqWriteMBps
	}
	xfer := float64(slice) / (mbps * 1e6)
	if req.slow > 1 {
		xfer *= req.slow
	}
	cost := time.Duration(xfer * float64(time.Second))
	if req.id != d.lastID {
		cost += d.spec.Seek
	}
	return cost
}

// Stats is a snapshot of cumulative device activity.
type Stats struct {
	// Busy is the cumulative time the device spent serving granules.
	Busy time.Duration
	// BytesServed is the cumulative payload served.
	BytesServed int64
	// QueueLen is the number of requests currently outstanding.
	QueueLen int
	// SlowReads counts reads that drew a tail slowdown (ReadVar only).
	SlowReads int64
	// Since is when the device started serving.
	Since time.Time
}

// Stats returns a snapshot of device activity, for utilization metrics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Busy: d.busy, BytesServed: d.served, QueueLen: len(d.queue), SlowReads: d.slowAcc, Since: d.started}
}

// Utilization reports the fraction of time the device has been busy since
// it started, in [0, 1].
func (d *Device) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := d.clock.Now().Sub(d.started)
	if elapsed <= 0 {
		return 0
	}
	u := float64(d.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Close fails all pending and future requests with ErrClosed and stops the
// serving loop.
func (d *Device) Close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}
