package storage

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/simclock"
)

// readCosts issues n sequential 1 MiB reads against a fresh device and
// returns each read's elapsed virtual time. Sequential submission from
// one simulation goroutine makes the variability stream's draw order
// fixed, so the cost sequence is a pure function of the spec and seed.
func readCosts(t *testing.T, spec Spec, n int) []time.Duration {
	t.Helper()
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, spec)
	out := make([]time.Duration, 0, n)
	v.Go(func() {
		for i := 0; i < n; i++ {
			start := v.Now()
			if err := dev.Read(1 << 20); err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			out = append(out, v.Now().Sub(start))
		}
	})
	v.Wait()
	dev.Close()
	v.Wait()
	return out
}

// Same seed, same request sequence → bit-identical cost draws, run
// after run (and under -race, where this test also executes).
func TestReadVarSeededDeterminism(t *testing.T) {
	a := readCosts(t, SSDVarSpec(42), 512)
	b := readCosts(t, SSDVarSpec(42), 512)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := readCosts(t, SSDVarSpec(43), 512)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical cost sequence")
	}
}

// Without ReadVar the spec change is inert: every read costs exactly
// the sequential-bandwidth time, bit-identical to the historical model.
func TestReadVarNilLeavesCostsUnchanged(t *testing.T) {
	costs := readCosts(t, SSDSpec(), 64)
	want := costs[0]
	for i, c := range costs {
		if c != want {
			t.Fatalf("read %d cost %v, want uniform %v", i, c, want)
		}
	}
}

// Distribution shape: the median read stays at full flash speed while
// the p99/p50 ratio lands in the case study's reported band of roughly
// an order of magnitude (we accept [4, 40]: 5% tail x 2–20x log-uniform
// puts the expected ratio near 12x).
func TestReadVarTailShape(t *testing.T) {
	costs := readCosts(t, SSDVarSpec(7), 4096)
	sorted := append([]time.Duration(nil), costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 := sorted[len(sorted)/2]
	p99 := sorted[len(sorted)*99/100]
	ratio := float64(p99) / float64(p50)
	if ratio < 4 || ratio > 40 {
		t.Fatalf("p99/p50 read-cost ratio %.1f outside the case-study band [4, 40]", ratio)
	}
	// The fast path must dominate: the median read is the unslowed cost.
	base := readCosts(t, SSDSpec(), 1)[0]
	if p50 != base {
		t.Fatalf("median varied read %v, want unslowed %v", p50, base)
	}
	// Tail frequency tracks TailProb (5% of 4096 ≈ 205, allow 2x band).
	slow := 0
	for _, c := range costs {
		if c > base*3/2 {
			slow++
		}
	}
	if slow < 100 || slow > 400 {
		t.Fatalf("tail reads = %d of 4096, want ~205", slow)
	}
}

// The multiplier distribution itself is log-uniform in [min,max]: no
// draw may escape the configured bounds.
func TestReadVarDrawBounds(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	dev := MustNewDevice(v, SSDVarSpec(99))
	defer dev.Close()
	rv := dev.spec.ReadVar
	for i := 0; i < 10000; i++ {
		dev.mu.Lock()
		x := dev.drawSlowLocked()
		dev.mu.Unlock()
		if x != 1 && (x < rv.TailMinX || x > rv.TailMaxX) {
			t.Fatalf("draw %d: multiplier %v outside [%v, %v]", i, x, rv.TailMinX, rv.TailMaxX)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("draw %d: non-finite multiplier %v", i, x)
		}
	}
}
