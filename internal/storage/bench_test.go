package storage

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

// BenchmarkDeviceConcurrentReads measures the simulation cost of the
// granule round-robin under contention (the experiment hot path).
func BenchmarkDeviceConcurrentReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := simclock.NewVirtual(time.Unix(0, 0))
		dev := MustNewDevice(v, HDDSpec())
		wg := simclock.NewWaitGroup(v)
		for r := 0; r < 10; r++ {
			wg.Go(func() { _ = dev.Read(64 << 20) })
		}
		done := make(chan struct{})
		v.Go(func() { wg.Wait(); close(done) })
		<-done
	}
}
