package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := g.Load(); got != 8000 {
		t.Errorf("gauge = %d, want 8000", got)
	}
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge after Set = %d, want 7", got)
	}
	c.Add(5)
	if got := c.Load(); got != 8005 {
		t.Errorf("counter after Add = %d, want 8005", got)
	}
}
