package metrics

import (
	"sync"
	"time"
)

// Timeline records (timestamp, value) samples, used for the paper's Fig 4
// disk-utilization plots and Fig 7 memory-occupancy histograms.
// The zero value is ready to use.
type Timeline struct {
	mu      sync.Mutex
	samples []TimelineSample
}

// TimelineSample is one timestamped observation.
type TimelineSample struct {
	At    time.Time
	Value float64
}

// Add appends a sample. Timestamps should be non-decreasing.
func (tl *Timeline) Add(at time.Time, v float64) {
	tl.mu.Lock()
	tl.samples = append(tl.samples, TimelineSample{At: at, Value: v})
	tl.mu.Unlock()
}

// Len reports the number of samples.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.samples)
}

// Samples returns a copy of all samples in insertion order.
func (tl *Timeline) Samples() []TimelineSample {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]TimelineSample, len(tl.samples))
	copy(out, tl.samples)
	return out
}

// Mean returns the unweighted mean of sample values.
func (tl *Timeline) Mean() float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range tl.samples {
		sum += s.Value
	}
	return sum / float64(len(tl.samples))
}

// WindowMeans aggregates samples into fixed windows starting at start and
// returns the per-window means, as the paper does when averaging server
// disk utilization over 5-minute windows.
func (tl *Timeline) WindowMeans(start time.Time, window time.Duration) []float64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.samples) == 0 || window <= 0 {
		return nil
	}
	var out []float64
	var sum float64
	var n int
	idx := 0
	for _, s := range tl.samples {
		w := int(s.At.Sub(start) / window)
		if w < 0 {
			continue
		}
		for w > idx {
			out = append(out, mean(sum, n))
			sum, n = 0, 0
			idx++
		}
		sum += s.Value
		n++
	}
	out = append(out, mean(sum, n))
	return out
}

// NonZero returns a Series of only the non-zero sample values (the paper's
// Fig 7 excludes idle periods).
func (tl *Timeline) NonZero() *Series {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var s Series
	for _, sample := range tl.samples {
		if sample.Value != 0 {
			s.Add(sample.Value)
		}
	}
	return &s
}

func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
