package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func seriesOf(vals ...float64) *Series {
	var s Series
	for _, v := range vals {
		s.Add(v)
	}
	return &s
}

func TestSeriesBasics(t *testing.T) {
	s := seriesOf(4, 1, 3, 2, 5)
	if got := s.Len(); got != 5 {
		t.Errorf("Len = %d", got)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Sum(); got != 15 {
		t.Errorf("Sum = %v", got)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Error("empty series should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := seriesOf(0, 10)
	cases := []struct{ p, want float64 }{
		{0, 0}, {25, 2.5}, {50, 5}, {75, 7.5}, {100, 10}, {-5, 0}, {200, 10},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAddDuration(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); got != 1.5 {
		t.Errorf("AddDuration mean = %v", got)
	}
}

func TestFractionBelow(t *testing.T) {
	s := seriesOf(1, 2, 3, 4, 5)
	if got := s.FractionBelow(3); got != 0.4 {
		t.Errorf("FractionBelow(3) = %v, want 0.4", got)
	}
	if got := s.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %v", got)
	}
	if got := s.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
}

// Property: the CDF is monotonically non-decreasing in both value and
// fraction, and spans min..max.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.Len() < 2 {
			return true
		}
		cdf := s.CDF(20)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
				return false
			}
		}
		return cdf[0].Value == s.Min() && cdf[len(cdf)-1].Value == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, ps []float64) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.Len() == 0 {
			return true
		}
		clean := make([]float64, 0, len(ps))
		for _, p := range ps {
			if !math.IsNaN(p) {
				clean = append(clean, math.Mod(math.Abs(p), 100))
			}
		}
		sort.Float64s(clean)
		prev := math.Inf(-1)
		for _, p := range clean {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Caption: "TABLE I", Header: []string{"config", "duration (s)", "speedup"}}
	tbl.AddRow("HDFS", "14.4", "")
	tbl.AddRow("Ignem", "12.7", "12%")
	out := tbl.String()
	for _, want := range []string{"TABLE I", "config", "Ignem", "12%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // caption, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestHistogramRendering(t *testing.T) {
	s := seriesOf(0.001, 0.01, 0.01, 0.1, 1, 10)
	out := Histogram("Fig 1a", s, 5)
	if !strings.Contains(out, "Fig 1a (n=6)") {
		t.Errorf("missing caption: %s", out)
	}
	if strings.Count(out, "\n") != 6 { // caption + 5 buckets
		t.Errorf("wrong bucket count:\n%s", out)
	}
	// All samples accounted for.
	total := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		fields := strings.Fields(strings.NewReplacer("[", " ", ",", " ", ")", " ").Replace(line))
		if len(fields) >= 3 {
			var n int
			if _, err := fmt.Sscan(fields[2], &n); err == nil {
				total += n
			}
		}
	}
	if total != 6 {
		t.Errorf("histogram lost samples: %d of 6\n%s", total, out)
	}
}

func TestRenderCDF(t *testing.T) {
	out := RenderCDF("Fig 2", 5, map[string]*Series{
		"hdd": seriesOf(1, 2, 3),
		"ram": seriesOf(0.1, 0.2, 0.3),
	})
	if !strings.Contains(out, "hdd") || !strings.Contains(out, "ram") {
		t.Errorf("missing labels:\n%s", out)
	}
	if strings.Count(out, "\n") != 7 { // caption + header + 5 points
		t.Errorf("wrong line count:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Fig 5", "%", []BarEntry{{"small", 8.8}, {"large", 25}})
	if !strings.Contains(out, "small") || !strings.Contains(out, "25") {
		t.Errorf("bar chart missing entries:\n%s", out)
	}
}

func TestTimelineWindowMeans(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tl Timeline
	tl.Add(start.Add(10*time.Second), 1)
	tl.Add(start.Add(20*time.Second), 3)
	tl.Add(start.Add(70*time.Second), 10)
	means := tl.WindowMeans(start, time.Minute)
	if len(means) != 2 {
		t.Fatalf("got %d windows, want 2: %v", len(means), means)
	}
	if means[0] != 2 || means[1] != 10 {
		t.Errorf("window means = %v, want [2 10]", means)
	}
}

func TestTimelineGapsYieldZeroWindows(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tl Timeline
	tl.Add(start, 5)
	tl.Add(start.Add(3*time.Minute), 7)
	means := tl.WindowMeans(start, time.Minute)
	if len(means) != 4 {
		t.Fatalf("got %d windows: %v", len(means), means)
	}
	if means[1] != 0 || means[2] != 0 {
		t.Errorf("gap windows not zero: %v", means)
	}
}

func TestTimelineNonZero(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tl Timeline
	tl.Add(start, 0)
	tl.Add(start.Add(time.Second), 4)
	tl.Add(start.Add(2*time.Second), 0)
	tl.Add(start.Add(3*time.Second), 6)
	nz := tl.NonZero()
	if nz.Len() != 2 || nz.Mean() != 5 {
		t.Errorf("NonZero: len=%d mean=%v", nz.Len(), nz.Mean())
	}
	if tl.Mean() != 2.5 {
		t.Errorf("Mean = %v", tl.Mean())
	}
	if tl.Len() != 4 {
		t.Errorf("Len = %v", tl.Len())
	}
	if got := len(tl.Samples()); got != 4 {
		t.Errorf("Samples len = %d", got)
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	var empty Series
	out := Histogram("empty", &empty, 5)
	if !strings.Contains(out, "(n=0)") {
		t.Errorf("empty histogram: %q", out)
	}
	// All-equal samples must not divide by zero.
	same := seriesOf(2, 2, 2)
	out = Histogram("same", same, 4)
	if !strings.Contains(out, "(n=3)") {
		t.Errorf("degenerate histogram:\n%s", out)
	}
	if Histogram("none", same, 0) == "" {
		t.Error("zero buckets should still render the caption")
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := BarChart("none", "s", nil); !strings.Contains(out, "none") {
		t.Errorf("empty chart: %q", out)
	}
	out := BarChart("zeros", "s", []BarEntry{{"a", 0}})
	if !strings.Contains(out, "a") {
		t.Errorf("zero chart: %q", out)
	}
}

func TestSeriesValuesIsCopy(t *testing.T) {
	s := seriesOf(3, 1, 2)
	vals := s.Values()
	vals[0] = 99
	if s.Min() == 99 {
		t.Error("Values returned internal storage")
	}
}

func TestTimelineWindowMeansEdge(t *testing.T) {
	var tl Timeline
	if got := tl.WindowMeans(time.Now(), time.Minute); got != nil {
		t.Errorf("empty timeline windows = %v", got)
	}
	tl.Add(time.Now(), 1)
	if got := tl.WindowMeans(time.Now(), 0); got != nil {
		t.Errorf("zero window = %v", got)
	}
}
