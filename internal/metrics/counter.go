package metrics

import "sync/atomic"

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value (bytes resident,
// entries held, queue depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
