package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders experiment results as the paper's tables: a caption, a
// header row, and aligned columns.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	writeRow(dashes(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Histogram renders a fixed-width ASCII histogram of the series using
// logarithmic buckets, in the style of the paper's Fig 1.
func Histogram(caption string, s *Series, buckets int) string {
	vals := s.Values()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", caption, len(vals))
	if len(vals) == 0 || buckets < 1 {
		return b.String()
	}
	min, max := vals[0], vals[len(vals)-1]
	if min <= 0 {
		min = 1e-9
	}
	if max <= min {
		max = min * 1.0001
	}
	logMin, logMax := math.Log10(min), math.Log10(max)
	counts := make([]int, buckets)
	for _, v := range vals {
		if v < min {
			v = min
		}
		idx := int((math.Log10(v) - logMin) / (logMax - logMin) * float64(buckets))
		if idx >= buckets {
			idx = buckets - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range counts {
		lo := math.Pow(10, logMin+float64(i)/float64(buckets)*(logMax-logMin))
		hi := math.Pow(10, logMin+float64(i+1)/float64(buckets)*(logMax-logMin))
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*40/peak)
		}
		fmt.Fprintf(&b, "[%9.3g, %9.3g) %6d %s\n", lo, hi, c, bar)
	}
	return b.String()
}

// RenderCDF renders one or more labelled CDFs side by side as text, in
// the style of the paper's Fig 2 and Fig 6.
func RenderCDF(caption string, points int, labelled map[string]*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", caption)
	labels := make([]string, 0, len(labelled))
	for l := range labelled {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Fprintf(&b, "%8s", "frac")
	for _, l := range labels {
		fmt.Fprintf(&b, "  %12s", l)
	}
	b.WriteByte('\n')
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		fmt.Fprintf(&b, "%8.2f", frac)
		for _, l := range labels {
			fmt.Fprintf(&b, "  %12.4g", labelled[l].Percentile(frac*100))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BarChart renders labelled values as horizontal bars, in the style of
// the paper's Fig 5, Fig 8 and Fig 9.
func BarChart(caption, unit string, entries []BarEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", caption)
	maxVal, maxLabel := 0.0, 0
	for _, e := range entries {
		if e.Value > maxVal {
			maxVal = e.Value
		}
		if len(e.Label) > maxLabel {
			maxLabel = len(e.Label)
		}
	}
	for _, e := range entries {
		bar := ""
		if maxVal > 0 {
			bar = strings.Repeat("#", int(e.Value/maxVal*40+0.5))
		}
		fmt.Fprintf(&b, "%-*s %10.3g %s %s\n", maxLabel, e.Label, e.Value, unit, bar)
	}
	return b.String()
}

// BarEntry is one bar of a BarChart.
type BarEntry struct {
	Label string
	Value float64
}
