// Package metrics collects and summarizes experiment measurements: sample
// series with percentile queries, histograms, CDFs, time-series
// utilization tracks, and plain-text table/figure rendering for the
// benchmark harness.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Series is a concurrency-safe collection of float64 samples.
// The zero value is ready to use.
type Series struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.sorted = false
	s.mu.Unlock()
}

// AddDuration appends a duration sample in seconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Len reports the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Sum returns the total of all samples.
func (s *Series) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	s.sortLocked()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	s.sortLocked()
	return s.vals[0]
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	s.sortLocked()
	return s.vals[len(s.vals)-1]
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 {
	mean := s.Mean()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}

// Values returns a copy of the samples in insertion-independent (sorted)
// order.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

func (s *Series) sortLocked() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// CDF computes the empirical cumulative distribution of the series at the
// given number of evenly spaced quantiles (plus min and max).
func (s *Series) CDF(points int) []CDFPoint {
	vals := s.Values()
	if len(vals) == 0 || points < 2 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		idx := int(frac * float64(len(vals)-1))
		out = append(out, CDFPoint{Value: vals[idx], Fraction: frac})
	}
	return out
}

// CDFPoint is one point of an empirical CDF: Fraction of samples are
// less than or equal to Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// FractionBelow reports the fraction of samples strictly below limit.
func (s *Series) FractionBelow(limit float64) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(vals, limit)
	return float64(n) / float64(len(vals))
}
