package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func testRoundTrip(t *testing.T, be Backend) {
	l := New(be)
	want := [][]byte{[]byte("one"), []byte(""), []byte("three records, one empty")}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if l.Records() != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(want))
	}
	if err := l.Truncate(); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("after truncate: %d records, want 0", len(got))
	}
}

func TestMemRoundTrip(t *testing.T) { testRoundTrip(t, NewMem()) }

func TestFileRoundTrip(t *testing.T) {
	be, err := OpenFile(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	testRoundTrip(t, be)
}

func TestFileSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenFile(dir, "wal")
	if err != nil {
		t.Fatal(err)
	}
	l := New(be)
	if err := l.Append([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	be2, err := OpenFile(dir, "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	got := collect(t, New(be2))
	if len(got) != 1 || string(got[0]) != "persisted" {
		t.Fatalf("reopened log: %q", got)
	}
}

// A torn or bit-flipped tail record is dropped silently; every intact
// record before it replays.
func TestReplayStopsAtCorruptTail(t *testing.T) {
	be := NewMem()
	l := New(be)
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte inside the last record's payload.
	be.mu.Lock()
	be.buf[len(be.buf)-1] ^= 0xFF
	be.mu.Unlock()
	if got := collect(t, l); len(got) != 2 {
		t.Fatalf("corrupt tail: replayed %d records, want 2", len(got))
	}
	// Tear the tail mid-record.
	be.mu.Lock()
	be.buf = be.buf[:len(be.buf)-5]
	be.mu.Unlock()
	if got := collect(t, l); len(got) != 2 {
		t.Fatalf("torn tail: replayed %d records, want 2", len(got))
	}
}

func TestReplayPropagatesFnError(t *testing.T) {
	l := New(NewMem())
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	n, err := l.Replay(func(p []byte) error {
		if p[0] == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("replay = (%d, %v), want (1, boom)", n, err)
	}
}

// CrashAfter(k) lets exactly k more appends become durable; the rest
// fail with ErrCrashed and write nothing, and Revive resumes with the
// surviving contents intact.
func TestMemCrashAfter(t *testing.T) {
	be := NewMem()
	l := New(be)
	be.CrashAfter(2)
	var failedAt int
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("append %d: %v, want ErrCrashed", i, err)
			}
			if failedAt == 0 {
				failedAt = i + 1
			}
		}
	}
	if failedAt != 3 {
		t.Fatalf("first failed append was #%d, want #3", failedAt)
	}
	if got := collect(t, l); len(got) != 2 {
		t.Fatalf("after crash: %d records survive, want 2", len(got))
	}
	be.Revive()
	if err := l.Append([]byte("resumed")); err != nil {
		t.Fatalf("append after revive: %v", err)
	}
	got := collect(t, l)
	if len(got) != 3 || string(got[2]) != "resumed" {
		t.Fatalf("after revive: %q", got)
	}
}

// Journaling must stay off the migration hot path: framing one record
// into a warm in-memory log is at most one (amortized) allocation.
// Gated in `make bench-alloc`.
func TestWALAppendAllocCeiling(t *testing.T) {
	be := NewMem()
	l := New(be)
	payload := bytes.Repeat([]byte("x"), 128)
	// Warm up the scratch buffer and the backend's append buffer.
	for i := 0; i < 64; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("wal append allocs/op: %.3f", avg)
	if avg > 1.0 {
		t.Fatalf("wal append allocates %.3f/op, ceiling 1.0", avg)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	l := New(NewMem())
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	l := New(NewMem())
	for i := 0; i < 1024; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, err := l.Replay(func([]byte) error { return nil })
		if err != nil || n != 1024 {
			b.Fatalf("replay = (%d, %v)", n, err)
		}
	}
}
