// Package wal implements a minimal append-only write-ahead log with
// CRC-framed records, used by the Ignem master to journal migration
// state so a restart resumes in-flight work instead of re-deriving it.
//
// A Log frames each payload as
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// and appends the frame to a Backend in one call. Replay decodes the
// backend's contents front to back and stops silently at the first
// torn or corrupt record: after a crash mid-append the tail is garbage
// by design, and everything before it is intact (each record's CRC
// covers its own payload).
//
// Two backends ship: FileBackend persists to a file under a directory
// the caller owns, and MemBackend keeps the log in memory with a
// crash-injection hook (CrashAfter) that the chaos suite uses to kill
// the master at every record boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// ErrCrashed is returned by a MemBackend append once its injected
// crash point is reached; the writer must treat it as a process death.
var ErrCrashed = errors.New("wal: crashed")

// castagnoli is the CRC32C table shared by record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8 // 4B length + 4B crc

// Backend is the byte store under a Log. Append must be atomic with
// respect to Replay reading the same backend (a Log serializes its own
// calls; a Backend shared across Logs needs its own locking, which
// both shipped backends provide).
type Backend interface {
	// Append adds b at the end of the log.
	Append(b []byte) error
	// ReadAll returns the log's current contents. The returned slice
	// must remain valid until the next Append or Truncate.
	ReadAll() ([]byte, error)
	// Truncate discards everything.
	Truncate() error
	// Close releases resources. The backend is unusable afterwards.
	Close() error
}

// Log frames payloads into CRC-checked records over a Backend. Safe
// for concurrent use.
type Log struct {
	mu      sync.Mutex
	be      Backend
	scratch []byte
	records int64 // appended through this Log since open
}

// New wraps a backend in a record-framing log.
func New(be Backend) *Log { return &Log{be: be} }

// Append frames payload and appends it durably. On error nothing is
// guaranteed about the tail: Replay on the surviving contents returns
// every record appended before the failure.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	need := headerSize + len(payload)
	if cap(l.scratch) < need {
		l.scratch = make([]byte, 0, need*2)
	}
	buf := l.scratch[:headerSize]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	if err := l.be.Append(buf); err != nil {
		return err
	}
	l.records++
	return nil
}

// Replay decodes the backend's records front to back, calling fn with
// each payload in append order, and returns how many records were
// delivered. The payload slice aliases the backend's buffer and must
// not be retained past fn's return. Decoding stops silently at the
// first torn or CRC-corrupt record (the normal shape of a crashed
// tail); an error from fn aborts the replay and is returned.
func (l *Log) Replay(fn func(payload []byte) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := l.be.ReadAll()
	if err != nil {
		return 0, err
	}
	n := 0
	for len(data) >= headerSize {
		size := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if uint64(headerSize)+uint64(size) > uint64(len(data)) {
			break // torn tail
		}
		payload := data[headerSize : headerSize+int(size)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt tail
		}
		if err := fn(payload); err != nil {
			return n, err
		}
		n++
		data = data[headerSize+int(size):]
	}
	l.records = int64(n)
	return n, nil
}

// Truncate discards every record (the journal's live set is empty, so
// nothing needs replaying).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.be.Truncate(); err != nil {
		return err
	}
	l.records = 0
	return nil
}

// Records reports how many records this Log has appended or replayed
// since it was opened.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Close closes the underlying backend.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.be.Close()
}

// ---- file backend ----

// FileBackend persists the log to a single file. Appends go through an
// O_APPEND descriptor, so a crashed process leaves at most one torn
// record at the tail.
type FileBackend struct {
	mu   sync.Mutex
	path string
	f    *os.File
	buf  []byte // ReadAll cache, invalidated by Append/Truncate
}

// OpenFile opens (creating if needed) the log file at dir/name.
func OpenFile(dir, name string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &FileBackend{path: path, f: f}, nil
}

// Append writes b at the end of the file.
func (b *FileBackend) Append(p []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return fmt.Errorf("wal: backend closed")
	}
	b.buf = nil
	_, err := b.f.Write(p)
	return err
}

// ReadAll returns the file's contents.
func (b *FileBackend) ReadAll() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.buf != nil {
		return b.buf, nil
	}
	data, err := os.ReadFile(b.path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	b.buf = data
	return data, nil
}

// Truncate empties the file.
func (b *FileBackend) Truncate() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return fmt.Errorf("wal: backend closed")
	}
	b.buf = nil
	return b.f.Truncate(0)
}

// Close closes the file.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// ---- memory backend ----

// MemBackend keeps the log in memory, with an injectable crash point
// for chaos tests: CrashAfter(k) lets exactly k more appends become
// durable and fails every later one with ErrCrashed, modelling a
// process that dies at that record boundary. Revive clears the crash
// while keeping the surviving contents, so a recovery path can replay
// exactly what a restarted master would find on disk.
type MemBackend struct {
	mu      sync.Mutex
	buf     []byte
	crash   bool  // appends fail now
	fuse    int64 // appends remaining before crash; -1 = no fuse
	appends int64
}

// NewMem returns an empty in-memory backend with no crash scheduled.
func NewMem() *MemBackend { return &MemBackend{fuse: -1} }

// CrashAfter arranges for exactly k more appends to succeed; the next
// one (and all after it, until Revive) fails with ErrCrashed and
// writes nothing. k=0 crashes on the very next append.
func (b *MemBackend) CrashAfter(k int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fuse = k
	b.crash = false
}

// Revive clears the crash state, keeping the surviving contents.
func (b *MemBackend) Revive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.crash = false
	b.fuse = -1
}

// Crashed reports whether the crash point has been reached (appends
// are currently failing). Chaos sweeps use it to decide whether a run
// actually needs recovery.
func (b *MemBackend) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crash
}

// Appends reports how many appends have succeeded over the backend's
// lifetime.
func (b *MemBackend) Appends() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.appends
}

// Append adds p, unless the crash point has been reached.
func (b *MemBackend) Append(p []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crash {
		return ErrCrashed
	}
	if b.fuse == 0 {
		b.crash = true
		return ErrCrashed
	}
	if b.fuse > 0 {
		b.fuse--
	}
	b.buf = append(b.buf, p...)
	b.appends++
	return nil
}

// ReadAll returns the surviving contents. Reading is always allowed,
// even mid-crash: recovery reads what a restarted process would find.
func (b *MemBackend) ReadAll() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf, nil
}

// Truncate empties the backend.
func (b *MemBackend) Truncate() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crash {
		return ErrCrashed
	}
	b.buf = b.buf[:0]
	return nil
}

// Close is a no-op for the memory backend.
func (b *MemBackend) Close() error { return nil }
