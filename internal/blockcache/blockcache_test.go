package blockcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simclock"
)

func fetchBytes(data []byte, addr string, fetches *atomic.Int64) FetchFunc {
	return func() ([]byte, string, error) {
		if fetches != nil {
			fetches.Add(1)
		}
		return data, addr, nil
	}
}

func TestHitMissAndCounters(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	var fetches atomic.Int64
	payload := []byte("block-zero")

	got, hit, err := c.GetOrFetch("/f", 0, fetchBytes(payload, "dn0", &fetches))
	if err != nil || hit || !bytes.Equal(got, payload) {
		t.Fatalf("first get: %q hit=%v err=%v", got, hit, err)
	}
	got, hit, err = c.GetOrFetch("/f", 0, fetchBytes(nil, "", &fetches))
	if err != nil || !hit || !bytes.Equal(got, payload) {
		t.Fatalf("second get: %q hit=%v err=%v", got, hit, err)
	}
	if n := fetches.Load(); n != 1 {
		t.Errorf("fetches = %d, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestFetchErrorNotCached(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	boom := errors.New("boom")
	if _, _, err := c.GetOrFetch("/f", 1, func() ([]byte, string, error) {
		return nil, "", boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var fetches atomic.Int64
	if _, hit, err := c.GetOrFetch("/f", 1, fetchBytes([]byte("x"), "dn0", &fetches)); err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
	if fetches.Load() != 1 {
		t.Error("failed fetch left the block cached or inflight")
	}
}

func TestNilPayloadPassesThroughUncached(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	var fetches atomic.Int64
	for i := 0; i < 2; i++ {
		data, hit, err := c.GetOrFetch("/synth", 2, fetchBytes(nil, "dn0", &fetches))
		if err != nil || hit || data != nil {
			t.Fatalf("synthetic get %d: data=%v hit=%v err=%v", i, data, hit, err)
		}
	}
	if fetches.Load() != 2 {
		t.Errorf("fetches = %d, want 2 (nil payloads are never installed)", fetches.Load())
	}
}

// TestByteBoundEvictsLRU fills one logical file far past the budget and
// checks the cache stays within bounds, evicting the least recently used
// entries first.
func TestByteBoundEvictsLRU(t *testing.T) {
	const blockLen = 1024
	c := New(simclock.NewReal(), nShards*4*blockLen) // 4 blocks per shard
	data := bytes.Repeat([]byte("x"), blockLen)
	for id := uint64(0); id < 64; id++ {
		if _, _, err := c.GetOrFetch("/f", id, fetchBytes(data, "dn0", nil)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > c.MaxBytes() {
		t.Errorf("resident %d bytes exceeds budget %d", st.Bytes, c.MaxBytes())
	}
	if st.Evictions == 0 {
		t.Error("no evictions after overfilling the cache")
	}
	if st.Bytes != st.Entries*blockLen {
		t.Errorf("bytes gauge %d inconsistent with %d entries", st.Bytes, st.Entries)
	}
	// id 63 was touched last; it must still be resident.
	var fetches atomic.Int64
	if _, hit, _ := c.GetOrFetch("/f", 63, fetchBytes(data, "dn0", &fetches)); !hit {
		t.Error("most recently used block was evicted")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	c := New(simclock.NewReal(), nShards*8) // 8-byte shard budget
	big := bytes.Repeat([]byte("y"), 64)
	got, hit, err := c.GetOrFetch("/f", 3, fetchBytes(big, "dn0", nil))
	if err != nil || hit || !bytes.Equal(got, big) {
		t.Fatalf("oversized get: hit=%v err=%v", hit, err)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Rejects != 1 {
		t.Errorf("stats after oversized fetch = %+v", st)
	}
}

func TestInvalidateFileDropsEntries(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	for id := uint64(0); id < 4; id++ {
		file := "/a"
		if id >= 2 {
			file = "/b"
		}
		if _, _, err := c.GetOrFetch(file, id, fetchBytes([]byte("data"), "dn0", nil)); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateFile("/a")
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries after invalidating /a = %d, want 2", st.Entries)
	}
	var fetches atomic.Int64
	if _, hit, _ := c.GetOrFetch("/a", 0, fetchBytes([]byte("data"), "dn0", &fetches)); hit {
		t.Error("invalidated block served from cache")
	}
	if _, hit, _ := c.GetOrFetch("/b", 2, fetchBytes(nil, "", nil)); !hit {
		t.Error("unrelated file was invalidated")
	}
}

func TestInvalidateAddrDropsEntries(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	for id := uint64(0); id < 4; id++ {
		addr := fmt.Sprintf("dn%d", id%2)
		if _, _, err := c.GetOrFetch("/f", id, fetchBytes([]byte("data"), addr, nil)); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateAddr("dn0")
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries after dropping dn0 = %d, want 2", st.Entries)
	}
}

// TestInvalidateDuringFetchRejectsStaleInstall is the generation race:
// a file mutates while one of its blocks is being fetched; the fetched
// payload must not be installed.
func TestInvalidateDuringFetchRejectsStaleInstall(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	fetching := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.GetOrFetch("/f", 9, func() ([]byte, string, error) {
			close(fetching)
			<-release
			return []byte("stale"), "dn0", nil
		})
	}()
	<-fetching
	c.InvalidateFile("/f")
	close(release)
	<-done
	st := c.Stats()
	if st.Entries != 0 || st.Rejects != 1 {
		t.Errorf("stale payload installed: stats = %+v", st)
	}
}

// TestSingleflightCoalesces launches many goroutines at one cold block
// and requires exactly one underlying fetch.
func TestSingleflightCoalesces(t *testing.T) {
	c := New(simclock.NewReal(), 1<<20)
	var fetches atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 16
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, _, err := c.GetOrFetch("/f", 7, func() ([]byte, string, error) {
				fetches.Add(1)
				time.Sleep(10 * time.Millisecond) // hold the flight open
				return []byte("hot"), "dn0", nil
			})
			if err != nil || string(got) != "hot" {
				t.Errorf("coalesced get: %q err=%v", got, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Errorf("fetches = %d, want 1 (singleflight)", n)
	}
	if st := c.Stats(); st.Hits != readers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, readers-1)
	}
}
