// Package blockcache implements the shared client-level block cache: a
// size-bounded (bytes, not entries), sharded-LRU cache of immutable
// block payloads, shared by every Reader and ReadFile call created from
// one DFS client. Concurrent fetches of the same block are coalesced
// singleflight-style, so N readers racing over one hot block issue one
// datanode fetch.
//
// Keys are block IDs (cluster-unique and never reused), with each entry
// also recording the owning file and the datanode address that served
// it. Invalidation runs along both axes: InvalidateFile drops a file's
// entries and bumps its generation so an in-flight fetch that started
// before the mutation can never install a stale payload; InvalidateAddr
// drops everything served by a failed datanode.
//
// All waiting goes through a clock-aware condition variable, so the
// cache is usable under both the real and the virtual clock (though
// experiment clients leave it off to keep seeded figures bit-identical).
package blockcache

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// nShards is the shard count; block IDs hash across shards so hot files
// spread their lock traffic.
const nShards = 8

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits      int64 // lookups served from the cache (including coalesced waiters)
	Misses    int64 // lookups that had to fetch
	Evictions int64 // entries dropped to respect the byte budget
	Rejects   int64 // fetched payloads not installed (stale generation or oversized)
	Bytes     int64 // payload bytes currently resident
	Entries   int64 // entries currently resident
}

// FetchFunc materializes a block: it returns the payload bytes and the
// datanode address that served them. A nil payload with a nil error
// marks the block uncacheable (synthetic, size-only blocks); the result
// is passed through without being installed.
type FetchFunc func() (data []byte, addr string, err error)

type entry struct {
	id   uint64
	file string
	addr string
	data []byte
	elem *listElem
}

// listElem is an intrusive doubly-linked LRU node (MRU at head).
type listElem struct {
	e          *entry
	prev, next *listElem
}

type shard struct {
	mu       sync.Mutex
	cond     *simclock.Cond
	entries  map[uint64]*entry
	inflight map[uint64]bool
	bytes    int64
	// head/tail of the LRU list; head is most recently used.
	head, tail *listElem
}

// Cache is a shared block cache. The zero value is not usable; call New.
type Cache struct {
	maxBytes    int64
	shardbudget int64
	shards      [nShards]shard

	// gens guards per-file generations. A file's generation is bumped by
	// InvalidateFile; a fetch records the generation it started under and
	// its result is only installed if the generation is unchanged.
	genMu sync.RWMutex
	gens  map[string]uint64

	hits, misses, evictions, rejects metrics.Counter
	bytes, entries                   metrics.Gauge
}

// New returns a cache bounded to maxBytes of payload across all shards.
// The budget is split evenly per shard (an entry larger than one shard's
// budget is served but never installed). clock drives singleflight
// waiting, so the cache composes with virtual-clock simulations.
func New(clock simclock.Clock, maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &Cache{
		maxBytes:    maxBytes,
		shardbudget: maxBytes / nShards,
		gens:        make(map[string]uint64),
	}
	if c.shardbudget < 1 {
		c.shardbudget = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.entries = make(map[uint64]*entry)
		sh.inflight = make(map[uint64]bool)
		sh.cond = simclock.NewCond(clock, &sh.mu)
	}
	return c
}

// MaxBytes returns the configured byte budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

func (c *Cache) shard(id uint64) *shard {
	// Fibonacci hashing spreads the namenode's sequential block IDs.
	return &c.shards[(id*0x9E3779B97F4A7C15)>>61%nShards]
}

func (c *Cache) fileGen(file string) uint64 {
	c.genMu.RLock()
	defer c.genMu.RUnlock()
	return c.gens[file]
}

// GetOrFetch returns the payload of block id, serving from the cache
// when resident and otherwise fetching via fetch. Concurrent calls for
// the same block coalesce: one caller fetches, the rest wait on the
// clock and are served the installed result. hit reports whether the
// payload came from the cache. The returned slice is shared — callers
// must treat it as read-only.
func (c *Cache) GetOrFetch(file string, id uint64, fetch FetchFunc) (data []byte, hit bool, err error) {
	sh := c.shard(id)
	sh.mu.Lock()
	for {
		if e, ok := sh.entries[id]; ok {
			sh.moveFrontLocked(e.elem)
			sh.mu.Unlock()
			c.hits.Inc()
			return e.data, true, nil
		}
		if !sh.inflight[id] {
			break
		}
		sh.cond.Wait()
		// Re-check: the leader either installed the entry (hit above) or
		// failed/declined to cache, in which case this waiter leads.
	}
	sh.inflight[id] = true
	sh.mu.Unlock()

	c.misses.Inc()
	gen := c.fileGen(file)
	data, addr, err := fetch()

	sh.mu.Lock()
	delete(sh.inflight, id)
	if err == nil && data != nil {
		c.installLocked(sh, &entry{id: id, file: file, addr: addr, data: data}, gen)
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// installLocked adds e to the shard unless the file mutated underneath
// the fetch or the payload exceeds the shard budget, then evicts from
// the LRU tail until the shard fits its budget.
func (c *Cache) installLocked(sh *shard, e *entry, gen uint64) {
	if c.fileGen(e.file) != gen || int64(len(e.data)) > c.shardbudget {
		c.rejects.Inc()
		return
	}
	// The cache owns a private copy of the payload: fetched slices may
	// be pooled transport buffers (recycled by the fetcher once its
	// caller copies out) or, on the in-memory transport, aliases of a
	// datanode's store. Hits hand out this copy; it is never returned
	// to any pool.
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	e.data = cp
	if old, ok := sh.entries[e.id]; ok {
		c.removeLocked(sh, old)
	}
	e.elem = &listElem{e: e}
	sh.entries[e.id] = e
	sh.pushFrontLocked(e.elem)
	sh.bytes += int64(len(e.data))
	c.bytes.Add(int64(len(e.data)))
	c.entries.Add(1)
	for sh.bytes > c.shardbudget && sh.tail != nil {
		victim := sh.tail.e
		if victim == e {
			break // never evict the entry just installed
		}
		c.removeLocked(sh, victim)
		c.evictions.Inc()
	}
}

// InvalidateFile drops every cached block of file and bumps its
// generation, so in-flight fetches started before the mutation are
// discarded rather than installed.
func (c *Cache) InvalidateFile(file string) {
	c.genMu.Lock()
	c.gens[file]++
	c.genMu.Unlock()
	c.sweep(func(e *entry) bool { return e.file == file })
}

// InvalidateAddr drops every cached block served by the datanode at
// addr (called when a replica holder fails).
func (c *Cache) InvalidateAddr(addr string) {
	c.sweep(func(e *entry) bool { return e.addr == addr })
}

// sweep removes every entry matching drop. Invalidation is rare (file
// mutations and node failures), so a full scan beats the locking a
// reverse index would need on the hot lookup path.
func (c *Cache) sweep(drop func(*entry) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if drop(e) {
				c.removeLocked(sh, e)
			}
		}
		sh.mu.Unlock()
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rejects:   c.rejects.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
	}
}

// ---- intrusive LRU list plumbing (shard.mu held) ----

func (sh *shard) pushFrontLocked(el *listElem) {
	el.prev = nil
	el.next = sh.head
	if sh.head != nil {
		sh.head.prev = el
	}
	sh.head = el
	if sh.tail == nil {
		sh.tail = el
	}
}

func (sh *shard) unlinkLocked(el *listElem) {
	if el.prev != nil {
		el.prev.next = el.next
	} else {
		sh.head = el.next
	}
	if el.next != nil {
		el.next.prev = el.prev
	} else {
		sh.tail = el.prev
	}
	el.prev, el.next = nil, nil
}

func (sh *shard) moveFrontLocked(el *listElem) {
	if sh.head == el {
		return
	}
	sh.unlinkLocked(el)
	sh.pushFrontLocked(el)
}

func (c *Cache) removeLocked(sh *shard, e *entry) {
	sh.unlinkLocked(e.elem)
	delete(sh.entries, e.id)
	sh.bytes -= int64(len(e.data))
	c.bytes.Add(-int64(len(e.data)))
	c.entries.Add(-1)
}
