package cluster

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// SimStart is the epoch all virtual-time experiments begin at.
var SimStart = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// RunVirtual runs fn as the root goroutine of a fresh virtual-time
// simulation and waits for it to return. It fails with an error if the
// simulation makes no progress for wallTimeout of real time (a deadlock
// or a runaway loop), so tests and benchmarks never hang silently.
func RunVirtual(wallTimeout time.Duration, fn func(v *simclock.Virtual)) error {
	v := simclock.NewVirtual(SimStart)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		fn(v)
	})
	select {
	case <-done:
		return nil
	case <-time.After(wallTimeout):
		return fmt.Errorf("cluster: simulation stalled after %v: %v", wallTimeout, v)
	}
}
