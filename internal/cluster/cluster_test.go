package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/mapreduce"
	"repro/internal/simclock"
)

func TestStartAndCloseAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeHDFS, ModeIgnem, ModeInputsInRAM} {
		mode := mode
		err := RunVirtual(time.Minute, func(v *simclock.Virtual) {
			c, err := Start(v, Config{Nodes: 3, Mode: mode, Seed: 1})
			if err != nil {
				t.Errorf("%s: start: %v", mode, err)
				return
			}
			defer c.Close()
			if got := len(c.NodeAddrs()); got != 3 {
				t.Errorf("%s: %d nodes", mode, got)
			}
			if c.UseIgnem() != (mode == ModeIgnem) {
				t.Errorf("%s: UseIgnem = %v", mode, c.UseIgnem())
			}
			if mode.String() == "" {
				t.Error("empty mode name")
			}
			// All datanodes register and become live.
			for len(c.NameNode.LiveDataNodes()) < 3 {
				v.Sleep(time.Second)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterAggregates(t *testing.T) {
	err := RunVirtual(time.Minute, func(v *simclock.Virtual) {
		c, err := Start(v, Config{Nodes: 2, Mode: ModeIgnem, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WriteSyntheticFile("/f", 2*dfs.DefaultBlockSize, 0, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Migrate("j", []string{"/f"}, false); err != nil {
			t.Fatal(err)
		}
		for c.TotalPinnedBytes() < 2*dfs.DefaultBlockSize {
			v.Sleep(100 * time.Millisecond)
		}
		per := c.PinnedBytesPerNode()
		var sum int64
		for _, p := range per {
			sum += p
		}
		if sum != c.TotalPinnedBytes() {
			t.Errorf("per-node sum %d != total %d", sum, c.TotalPinnedBytes())
		}
		st := c.SlaveStats()
		if st.MigratedBlocks != 2 {
			t.Errorf("MigratedBlocks = %d", st.MigratedBlocks)
		}
		if c.MeanDiskBusy() <= 0 {
			t.Error("no disk busy time recorded after migration reads")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModeStringUnknown(t *testing.T) {
	if got := Mode(99).String(); got != "Mode(99)" {
		t.Errorf("String = %q", got)
	}
}

func TestRunVirtualStallDetection(t *testing.T) {
	// A goroutine blocking in native (non-clock) sleep stalls the sim;
	// RunVirtual must report it rather than hang.
	err := RunVirtual(100*time.Millisecond, func(v *simclock.Virtual) {
		ch := make(chan struct{})
		<-ch // never delivered: a bug RunVirtual should catch
	})
	if err == nil {
		t.Fatal("stall not detected")
	}
}

// TestDeadJobCleanupSweep exercises the paper's §III-A4 failure path end
// to end: a job migrates its input, dies without evicting, and the
// slave's occupancy-triggered liveness sweep (querying the real
// scheduler) reclaims the memory so a later job can migrate.
func TestDeadJobCleanupSweep(t *testing.T) {
	err := RunVirtual(2*time.Minute, func(v *simclock.Virtual) {
		// One node so all migration lands on a single slave and the
		// occupancy threshold is guaranteed to trip.
		c, err := Start(v, Config{
			Nodes: 1,
			Mode:  ModeIgnem,
			Seed:  4,
			Slave: ignem.SlaveConfig{
				Capacity:           192 << 20, // exactly three 64MB blocks
				CleanupThreshold:   0.3,
				CleanupMinInterval: time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		// Job A fills the migration buffers, then dies without evicting.
		jobA, err := c.Scheduler.SubmitJob("job-a")
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteSyntheticFile("/a", 3*dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Migrate("job-a", []string{"/a"}, false); err != nil {
			t.Fatal(err)
		}
		for c.TotalPinnedBytes() < 3*dfs.DefaultBlockSize {
			v.Sleep(100 * time.Millisecond)
		}
		jobA.Kill() // dies; no evict instruction will ever come

		// Job B needs more space than remains; its deferred commands
		// trigger the sweep, which finds job A dead and purges it.
		jobB, err := c.Scheduler.SubmitJob("job-b")
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteSyntheticFile("/b", 3*dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		v.Sleep(2 * time.Second) // past the sweep rate limit
		if _, err := cl.Migrate("job-b", []string{"/b"}, false); err != nil {
			t.Fatal(err)
		}
		deadline := v.Now().Add(time.Minute)
		for c.TotalPinnedBytes() != 3*dfs.DefaultBlockSize || c.SlaveStats().PurgedJobs == 0 {
			if v.Now().After(deadline) {
				t.Fatalf("sweep never reclaimed job A: pinned=%d stats=%+v",
					c.TotalPinnedBytes(), c.SlaveStats())
			}
			v.Sleep(200 * time.Millisecond)
		}
		jobB.Complete()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosFailuresDuringWorkload restarts Ignem masters and slave
// processes randomly while a stream of Ignem jobs runs. Every job must
// complete, and once the dust settles no migrated memory may leak.
func TestChaosFailuresDuringWorkload(t *testing.T) {
	err := RunVirtual(5*time.Minute, func(v *simclock.Virtual) {
		c, err := Start(v, Config{Nodes: 4, Mode: ModeIgnem, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		const jobs = 10
		for i := 0; i < jobs; i++ {
			if err := cl.WriteSyntheticFile(fmt.Sprintf("/chaos/%d", i), 2*dfs.DefaultBlockSize, 0, 2); err != nil {
				t.Fatal(err)
			}
		}

		// The chaos monkey: every few seconds, restart the Ignem master
		// or a random slave process.
		rng := rand.New(rand.NewSource(99))
		stop := simclock.NewChan[struct{}](v)
		chaosDone := simclock.NewChan[struct{}](v)
		v.Go(func() {
			defer chaosDone.Send(struct{}{})
			for {
				if _, _, timedOut := stop.RecvTimeout(4 * time.Second); !timedOut {
					return
				}
				if rng.Intn(2) == 0 {
					c.NameNode.RestartMaster()
				} else {
					c.DataNodes[rng.Intn(len(c.DataNodes))].RestartSlaveProcess()
				}
			}
		})

		completed := 0
		var mu sync.Mutex
		wg := simclock.NewWaitGroup(v)
		for i := 0; i < jobs; i++ {
			i := i
			wg.Go(func() {
				v.Sleep(time.Duration(i) * 3 * time.Second)
				_, err := c.Engine.Run(mapreduce.Config{
					ID:            dfs.JobID(fmt.Sprintf("chaos-%d", i)),
					InputPaths:    []string{fmt.Sprintf("/chaos/%d", i)},
					UseIgnem:      true,
					ImplicitEvict: true,
				})
				if err != nil {
					t.Errorf("job %d: %v", i, err)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			})
		}
		wg.Wait()
		stop.Send(struct{}{})
		chaosDone.Recv()

		if completed != jobs {
			t.Errorf("completed %d/%d jobs under chaos", completed, jobs)
		}
		// Stale pins from pre-restart epochs are purged when any
		// new-epoch batch arrives; the remaining ones disappear with a
		// final master restart broadcast.
		c.NameNode.RestartMaster()
		v.Sleep(2 * time.Second)
		if got := c.TotalPinnedBytes(); got != 0 {
			t.Errorf("chaos leaked %d pinned bytes", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRackAwareClusterEndToEnd brings up a racked cluster and checks
// that placement honours the HDFS rack policy while Ignem still works.
func TestRackAwareClusterEndToEnd(t *testing.T) {
	err := RunVirtual(2*time.Minute, func(v *simclock.Virtual) {
		c, err := Start(v, Config{Nodes: 6, Racks: 2, Mode: ModeIgnem, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WriteSyntheticFile("/f", 4*dfs.DefaultBlockSize, 0, 3); err != nil {
			t.Fatal(err)
		}
		rackOf := func(addr string) string {
			var i int
			fmt.Sscanf(addr, "dn%d", &i)
			return fmt.Sprint(i % 2)
		}
		lbs, _ := cl.Locations("/f")
		for _, lb := range lbs {
			if len(lb.Nodes) != 3 {
				t.Fatalf("replicas = %v", lb.Nodes)
			}
			racks := map[string]int{}
			for _, n := range lb.Nodes {
				racks[rackOf(n)]++
			}
			if len(racks) != 2 {
				t.Errorf("block %d not spread across racks: %v", lb.Block.ID, lb.Nodes)
			}
		}
		// Migration still works on the racked cluster.
		if _, err := cl.Migrate("j", []string{"/f"}, false); err != nil {
			t.Fatal(err)
		}
		for c.TotalPinnedBytes() < 4*dfs.DefaultBlockSize {
			v.Sleep(100 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
