// Package cluster wires the whole testbed together: namenode (with the
// Ignem master), datanodes (with Ignem slaves), the Yarn-like scheduler,
// and the MapReduce engine, all on an in-memory network under one clock.
//
// It models the paper's §IV-A setup: an 8-server cluster where every
// server runs a datanode, one also hosts the namenode and resource
// manager, HDFS block size 64 MB, and three file-system configurations
// (HDFS, Ignem, HDFS-Inputs-in-RAM).
package cluster

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/ignem"
	"repro/internal/mapreduce"
	"repro/internal/scheduler"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Mode selects the file-system configuration under test (paper §IV-A).
type Mode int

const (
	// ModeHDFS is the baseline: inputs on the cold device, no migration.
	ModeHDFS Mode = iota
	// ModeIgnem enables cold-data migration.
	ModeIgnem
	// ModeInputsInRAM is the vmtouch upper bound: every read is served
	// at RAM speed.
	ModeInputsInRAM
	// ModeHotCache is the reactive hot-data-caching baseline (the
	// PACMan/Triple-H class): blocks enter memory only after their first
	// read, so singly-read inputs never benefit.
	ModeHotCache
)

// String names the mode as the paper's tables do.
func (m Mode) String() string {
	switch m {
	case ModeHDFS:
		return "HDFS"
	case ModeIgnem:
		return "Ignem"
	case ModeInputsInRAM:
		return "HDFS-Inputs-in-RAM"
	case ModeHotCache:
		return "HDFS-HotCache"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config sizes and tunes a cluster.
type Config struct {
	// Nodes is the server count. Default 8 (the paper's testbed).
	Nodes int
	// Media is the cold-storage device spec. Default HDD.
	Media storage.Spec
	// Mode selects the file-system configuration.
	Mode Mode
	// SlotsPerNode bounds concurrent tasks per node. Default 10.
	SlotsPerNode int
	// SchedulerHeartbeat gates task assignment. Default 3s.
	SchedulerHeartbeat time.Duration
	// MaxAssignPerHeartbeat caps tasks handed to one node per heartbeat
	// (scheduler default 3 when zero).
	MaxAssignPerHeartbeat int
	// DFSHeartbeat carries datanode liveness and pin/block deltas.
	// Default 1s.
	DFSHeartbeat time.Duration
	// DFSFullReportInterval adds a periodic full-inventory
	// reconciliation report per datanode on top of the incremental
	// deltas (see datanode.Config.FullReportInterval). Zero — the
	// default — disables it: snapshots flow only at register/reconnect
	// or on a namenode resync request.
	DFSFullReportInterval time.Duration
	// ReportIntake bounds concurrent full-inventory reconciles at the
	// namenode (see namenode.Config.ReportIntake). Zero selects the
	// namenode default; negative disables the bound.
	ReportIntake int
	// Slave configures the Ignem slaves.
	Slave ignem.SlaveConfig
	// SSD, when its Name is non-empty, gives every datanode a local SSD
	// tier device (see datanode.Config.SSD) so the migration ladder has
	// a middle rung. Zero — the default — runs the historical two-tier
	// (HDD + RAM) cluster. Use storage.SSDSpec() for the fixed-latency
	// model or storage.SSDVarSpec(seed) for the seeded read-latency
	// long tail; each datanode's device derives its variability stream
	// from this spec's seed offset by the node index, so nodes draw
	// independent but reproducible tails.
	SSD storage.Spec
	// MigrationPolicy selects the Ignem master's tier-placement policy
	// ("", "paper", "ladder", "popularity" — see ignem.PolicyByName).
	// Empty keeps the paper's smallest-job-first-to-RAM plan,
	// bit-identical to the historical master.
	MigrationPolicy string
	// TierBudgets caps cluster-wide fast-tier residency in bytes. Zero
	// RAM = unlimited (historical behavior); zero SSD = SSD tier
	// absent. See ignem.TierBudgets.
	TierBudgets ignem.TierBudgets
	// Seed drives all randomness (placement, replica choice).
	Seed int64
	// Racks spreads the datanodes round-robin over this many racks and
	// enables rack-aware placement. Zero keeps flat placement.
	Racks int
	// NetLatency and NetMBps shape the fabric. Defaults: 200µs, 1250.
	NetLatency time.Duration
	NetMBps    float64
	// HotCacheBytes sizes the per-node hot cache in ModeHotCache.
	// Default 32 GB.
	HotCacheBytes int64
	// MetaShards partitions the namenode's metadata plane (files,
	// blocks, placement rng, and the Ignem master) into this many
	// shards, each independently locked. 0 (the default) runs the
	// historical unsharded plane; if the IGNEM_META_SHARDS environment
	// variable is a positive integer it overrides a zero value, so the
	// determinism and bench jobs can sweep shard counts without
	// touching experiment code. One extra namenode endpoint per shard
	// ("namenode-s0"…) is listened for shard-aware clients.
	MetaShards int
	// WALBackend, when set, gives the namenode's Ignem master a
	// migration write-ahead log (see namenode.Config.WALBackend):
	// durable planning, journal-backed batch retries, and
	// RecoverMaster-style resume. Nil — the default — keeps the
	// historical unjournaled master, so seeded figures are untouched.
	WALBackend wal.Backend
	// ScrubInterval enables the datanodes' background checksum scrubber
	// at this cadence (see datanode.Config.ScrubInterval). Zero — the
	// default — disables scrubbing.
	ScrubInterval time.Duration
	// WrapNet, when set, wraps each component's view of the fabric —
	// the chaos suite injects faults here (internal/faultnet). It is
	// called once per component with its address ("namenode", "dn0"…,
	// "engine") and the shared base network, and must return the network
	// that component will Listen and Dial on. Nil leaves the fabric
	// untouched (the default for experiments: figures never see it).
	WrapNet func(node string, base transport.Network) transport.Network
}

func (c *Config) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Media.Name == "" {
		c.Media = storage.HDDSpec()
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 10
	}
	if c.SchedulerHeartbeat <= 0 {
		c.SchedulerHeartbeat = 3 * time.Second
	}
	if c.DFSHeartbeat <= 0 {
		c.DFSHeartbeat = time.Second
	}
	if c.NetLatency <= 0 {
		c.NetLatency = 200 * time.Microsecond
	}
	if c.NetMBps <= 0 {
		c.NetMBps = 1250
	}
	if c.HotCacheBytes <= 0 {
		c.HotCacheBytes = 32 << 30
	}
	if c.MetaShards == 0 {
		if n, err := strconv.Atoi(os.Getenv("IGNEM_META_SHARDS")); err == nil && n > 0 {
			c.MetaShards = n
		}
	}
}

// Cluster is a running testbed.
type Cluster struct {
	Clock     simclock.Clock
	Net       *transport.InmemNetwork
	NameNode  *namenode.NameNode
	DataNodes []*datanode.DataNode
	Scheduler *scheduler.Scheduler
	Engine    *mapreduce.Engine

	cfg Config
}

// NameNodeAddr is the in-memory address of the namenode.
const NameNodeAddr = "namenode"

// EngineAddr is the fabric node name the MapReduce engine dials from
// (it listens on nothing; the name only matters to WrapNet fault rules).
const EngineAddr = "engine"

// ShardAddrs names the extra namenode endpoints a sharded metadata
// plane listens on ("namenode-s0"…), nil when unsharded. Every endpoint
// serves the full handler set; they exist so shard-aware clients spread
// transport load.
func ShardAddrs(metaShards int) []string {
	if metaShards <= 0 {
		return nil
	}
	out := make([]string, metaShards)
	for i := range out {
		out[i] = fmt.Sprintf("%s-s%d", NameNodeAddr, i)
	}
	return out
}

// Start brings up a cluster. It must be called from a simulation
// goroutine when clock is virtual.
func Start(clock simclock.Clock, cfg Config) (*Cluster, error) {
	cfg.setDefaults()
	net := transport.NewInmemNetwork(clock,
		transport.WithLatency(cfg.NetLatency),
		transport.WithBandwidthMBps(cfg.NetMBps))
	wrap := func(node string) transport.Network {
		if cfg.WrapNet != nil {
			return cfg.WrapNet(node, net)
		}
		return net
	}

	addrsForRacks := make([]string, cfg.Nodes)
	for i := range addrsForRacks {
		addrsForRacks[i] = fmt.Sprintf("dn%d", i)
	}
	var racks map[string]string
	if cfg.Racks > 0 {
		racks = make(map[string]string, cfg.Nodes)
		for i, addr := range addrsForRacks {
			racks[addr] = fmt.Sprintf("rack%d", i%cfg.Racks)
		}
	}
	nn := namenode.New(clock, wrap(NameNodeAddr), namenode.Config{
		Addr:         NameNodeAddr,
		Seed:         cfg.Seed,
		Racks:        racks,
		MetaShards:   cfg.MetaShards,
		ShardAddrs:   ShardAddrs(cfg.MetaShards),
		ReportIntake: cfg.ReportIntake,
		WALBackend:   cfg.WALBackend,

		MigrationPolicy: cfg.MigrationPolicy,
		TierBudgets:     cfg.TierBudgets,
	})
	if err := nn.Start(); err != nil {
		return nil, err
	}

	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("dn%d", i)
	}
	sched := scheduler.New(clock, scheduler.Config{
		Nodes:                 addrs,
		SlotsPerNode:          cfg.SlotsPerNode,
		HeartbeatInterval:     cfg.SchedulerHeartbeat,
		MaxAssignPerHeartbeat: cfg.MaxAssignPerHeartbeat,
	})

	c := &Cluster{
		Clock:     clock,
		Net:       net,
		NameNode:  nn,
		Scheduler: sched,
		cfg:       cfg,
	}
	for i, addr := range addrs {
		dncfg := datanode.Config{
			Addr:               addr,
			NameNodeAddr:       NameNodeAddr,
			Media:              cfg.Media,
			HeartbeatInterval:  cfg.DFSHeartbeat,
			FullReportInterval: cfg.DFSFullReportInterval,
			Seed:               cfg.Seed,
			Slave:              cfg.Slave,
			Liveness:           sched,
			ServeAllFromRAM:    cfg.Mode == ModeInputsInRAM,
			ScrubInterval:      cfg.ScrubInterval,
		}
		if cfg.SSD.Name != "" {
			dncfg.SSD = cfg.SSD
			if cfg.SSD.ReadVar != nil {
				// Offset the variability seed per node so slow-read
				// draws are independent across the cluster yet
				// reproducible from the cluster seed.
				rv := *cfg.SSD.ReadVar
				rv.Seed += int64(i)
				dncfg.SSD.ReadVar = &rv
			}
		}
		if cfg.Mode == ModeHotCache {
			dncfg.HotCacheBytes = cfg.HotCacheBytes
		}
		dn, err := datanode.New(clock, wrap(addr), dncfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := dn.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.DataNodes = append(c.DataNodes, dn)
	}
	sched.Start()
	c.Engine = mapreduce.NewEngine(clock, sched, wrap(EngineAddr), NameNodeAddr,
		mapreduce.WithNetworkMBps(cfg.NetMBps))
	return c, nil
}

// Mode reports the cluster's file-system configuration.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// UseIgnem reports whether jobs on this cluster should issue Migrate
// calls (only in ModeIgnem).
func (c *Cluster) UseIgnem() bool { return c.cfg.Mode == ModeIgnem }

// NodeAddrs returns the datanode/worker addresses.
func (c *Cluster) NodeAddrs() []string {
	out := make([]string, len(c.DataNodes))
	for i, dn := range c.DataNodes {
		out[i] = dn.Addr()
	}
	return out
}

// Client opens a new DFS client against the cluster. Writes default to
// the serial path so seeded virtual-clock experiments keep bit-identical
// timing; callers can still opt in with WithWriteParallelism.
func (c *Cluster) Client(opts ...client.Option) (*client.Client, error) {
	opts = append([]client.Option{client.WithWriteParallelism(1)}, opts...)
	return client.New(c.Clock, c.Net, NameNodeAddr, opts...)
}

// TotalPinnedBytes sums pinned migration memory across all slaves.
func (c *Cluster) TotalPinnedBytes() int64 {
	var total int64
	for _, dn := range c.DataNodes {
		total += dn.Slave().PinnedBytes()
	}
	return total
}

// PinnedBytesPerNode returns each slave's pinned occupancy.
func (c *Cluster) PinnedBytesPerNode() []int64 {
	out := make([]int64, len(c.DataNodes))
	for i, dn := range c.DataNodes {
		out[i] = dn.Slave().PinnedBytes()
	}
	return out
}

// SSDBytesPerNode returns each slave's flash-rung occupancy.
func (c *Cluster) SSDBytesPerNode() []int64 {
	out := make([]int64, len(c.DataNodes))
	for i, dn := range c.DataNodes {
		out[i] = dn.Slave().SSDBytes()
	}
	return out
}

// SlaveStats aggregates slave counters across the cluster.
func (c *Cluster) SlaveStats() ignem.SlaveStats {
	var agg ignem.SlaveStats
	for _, dn := range c.DataNodes {
		st := dn.Slave().Stats()
		agg.PinnedBytes += st.PinnedBytes
		agg.PinnedBlocks += st.PinnedBlocks
		agg.QueuedCmds += st.QueuedCmds
		agg.DeferredCmds += st.DeferredCmds
		agg.MigratedBlocks += st.MigratedBlocks
		agg.MigratedBytes += st.MigratedBytes
		agg.DiscardedMissed += st.DiscardedMissed
		agg.RejectedTooLarge += st.RejectedTooLarge
		agg.Evictions += st.Evictions
		agg.PurgedJobs += st.PurgedJobs
		agg.MemoryHits += st.MemoryHits
		agg.MemoryMisses += st.MemoryMisses
		agg.SSDPinnedBytes += st.SSDPinnedBytes
		agg.SSDPinnedBlocks += st.SSDPinnedBlocks
		agg.SSDHits += st.SSDHits
		agg.ClimbedBlocks += st.ClimbedBlocks
		agg.Demotions += st.Demotions
	}
	return agg
}

// MeanDiskBusy returns the mean cumulative busy time across the cold
// devices (for utilization reporting).
func (c *Cluster) MeanDiskBusy() time.Duration {
	if len(c.DataNodes) == 0 {
		return 0
	}
	var total time.Duration
	for _, dn := range c.DataNodes {
		total += dn.MediaDevice().Stats().Busy
	}
	return total / time.Duration(len(c.DataNodes))
}

// Close tears the whole cluster down: engine connections, scheduler
// loops, datanodes, then the namenode.
func (c *Cluster) Close() {
	if c.Engine != nil {
		c.Engine.Close()
	}
	if c.Scheduler != nil {
		c.Scheduler.Close()
	}
	for _, dn := range c.DataNodes {
		dn.Close()
	}
	if c.NameNode != nil {
		c.NameNode.Close()
	}
}
