package chaos

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/ignem"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// walScenario runs the full migration lifecycle — write, migrate, read,
// evict — on a journaled cluster whose WAL backend crashes after
// crashAfter records (crashAfter < 0 never crashes). At whatever point
// the master's log dies, the scenario revives the backend and drives
// RecoverMaster, then asserts the invariants the journal exists to
// protect: every block migrates EXACTLY once (resumed work never
// double-copies, thanks to slave-side idempotency plus the journal's
// copied markers), no pin is lost or leaked after resume, the file's
// bytes survive, and eviction drains everything. It returns the number
// of WAL records a crash-free run appends, so the sweep can enumerate
// every boundary.
func walScenario(t *testing.T, crashAfter int64) int64 {
	t.Helper()
	const blockSize = 1 << 20
	const nblocks = 6
	be := wal.NewMem()
	var appended int64
	runChaos(t, Config{Nodes: 4, Seed: 11, Mode: cluster.ModeIgnem, WALBackend: be},
		func(v *simclock.Virtual, h *Harness) {
			c, err := h.Client(client.WithSeed(5))
			if err != nil {
				t.Fatalf("client: %v", err)
			}
			defer c.Close()
			nn := h.Cluster.NameNode
			data := filedata(2, nblocks*blockSize)
			if err := c.WriteFile("/in", data, blockSize, 2); err != nil {
				t.Fatalf("write: %v", err)
			}
			if crashAfter >= 0 {
				be.CrashAfter(crashAfter)
			}

			// recoverIfCrashed models a master restart at the record
			// boundary where the log died: revive the backend (the new
			// process has a working disk holding the surviving prefix)
			// and rebuild planner state purely from the journal.
			recoverIfCrashed := func() bool {
				if !be.Crashed() {
					return false
				}
				be.Revive()
				if err := nn.RecoverMaster(); err != nil {
					t.Fatalf("recover at record %d: %v", crashAfter, err)
				}
				return true
			}

			_, err = c.Migrate("job1", []string{"/in"}, false)
			if recoverIfCrashed() {
				if err != nil {
					// The plan never became durable, so the request
					// failed with the dying master; the resubmitted
					// request plans afresh against the recovered one.
					if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
						t.Fatalf("re-migrate after recovery: %v", err)
					}
				}
			} else if err != nil {
				t.Fatalf("migrate: %v", err)
			}

			waitUntil(t, v, 2*time.Minute, func() bool {
				return h.Cluster.SlaveStats().PinnedBlocks == nblocks
			}, "all blocks pinned after recovery")
			// Let any duplicate queue entries from recovery re-sends
			// drain before counting: the exactly-once assertion below is
			// the heart of the sweep.
			v.Sleep(10 * time.Second)
			st := h.Cluster.SlaveStats()
			if st.MigratedBlocks != nblocks {
				t.Fatalf("crash at record %d: %d device copies for %d blocks — migration not exactly-once",
					crashAfter, st.MigratedBlocks, nblocks)
			}
			if got := h.Cluster.TotalPinnedBytes(); got != int64(nblocks*blockSize) {
				t.Fatalf("crash at record %d: pinned %d bytes, want %d", crashAfter, got, nblocks*blockSize)
			}

			got, err := c.ReadFile("/in", "job1")
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("crash at record %d: file corrupted after recovery", crashAfter)
			}

			_, err = c.Evict("job1", []string{"/in"})
			if recoverIfCrashed() {
				if err != nil {
					// The evict intent never became durable; the job is
					// still live on the recovered master, so re-evict.
					if _, err := c.Evict("job1", []string{"/in"}); err != nil {
						t.Fatalf("re-evict after recovery: %v", err)
					}
				}
			} else if err != nil {
				t.Fatalf("evict: %v", err)
			}
			waitUntil(t, v, time.Minute, func() bool {
				st := h.Cluster.SlaveStats()
				return h.Cluster.TotalPinnedBytes() == 0 && st.QueuedCmds == 0 && st.DeferredCmds == 0
			}, "eviction drains all pins")
			if st := nn.Master().Stats(); st.ActiveJobs != 0 {
				t.Fatalf("crash at record %d: %d jobs still active after eviction", crashAfter, st.ActiveJobs)
			}
			appended = be.Appends()
		})
	return appended
}

// The tentpole chaos sweep: kill the master's WAL at EVERY record
// boundary a clean run writes, and assert the recovered master
// converges to the same exactly-once outcome each time. The virtual
// clock keeps the whole sweep sub-second, so no sampling is needed.
func TestWALCrashAtEveryRecordExactlyOnce(t *testing.T) {
	records := walScenario(t, -1)
	if records < 8 {
		t.Fatalf("clean run journaled only %d records; the sweep expects the full state machine", records)
	}
	for k := int64(0); k < records; k++ {
		walScenario(t, k)
	}
}

// A corrupt replica is detected on read, never served, reported, and
// healed: the datanode's own verification catches the rot (the typed
// checksum error crosses the wire), the client fails over to the good
// replica, the namenode drops the bad location, and the replication
// sweep restores a healthy copy.
func TestWALChecksumCorruptionReadRecovery(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 13, Mode: cluster.ModeIgnem}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(6))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 1 << 20
		data := filedata(3, 2*blockSize)
		if err := c.WriteFile("/f", data, blockSize, 2); err != nil {
			t.Fatalf("write: %v", err)
		}
		lbs, err := c.Locations("/f")
		if err != nil || len(lbs) == 0 || len(lbs[0].Nodes) < 2 {
			t.Fatalf("locations: %v (%v)", err, lbs)
		}
		lb := lbs[0]
		badAddr := lb.Nodes[0]
		var badDN = -1
		for i, dn := range h.Cluster.DataNodes {
			if dn.Addr() == badAddr {
				badDN = i
			}
		}
		if badDN < 0 {
			t.Fatalf("no datanode for %s", badAddr)
		}
		if !h.Cluster.DataNodes[badDN].CorruptReplica(lb.Block.ID) {
			t.Fatalf("corrupt replica %d on %s", lb.Block.ID, badAddr)
		}

		// Aimed straight at the rotten replica, the read fails with the
		// typed checksum error — the corrupt bytes are never served.
		direct := lb
		direct.Nodes = []string{badAddr}
		if _, err := c.ReadBlock(direct, ""); !dfs.IsChecksum(err) {
			t.Fatalf("read from corrupt replica: err = %v, want checksum error", err)
		}

		// The whole-file read fails over and returns intact bytes.
		got, err := c.ReadFile("/f", "")
		if err != nil {
			t.Fatalf("read with failover: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("failover served wrong bytes")
		}

		// Detection reported the replica; the namenode dropped it and
		// the replication sweep restores a second healthy copy.
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.NameNode.Stats().CorruptReports >= 1
		}, "corrupt-replica report reaches the namenode")
		waitUntil(t, v, 2*time.Minute, func() bool {
			lbs, err := c.Locations("/f")
			if err != nil {
				return false
			}
			return len(lbs) > 0 && len(lbs[0].Nodes) >= 2
		}, "re-replication restores a healthy copy")
		got, err = c.ReadFile("/f", "")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read after heal: %v", err)
		}
	})
}

// The background scrubber finds rot nobody reads: a corrupted replica
// is scanned against its write-time CRC on the simulated clock, counted,
// dropped, reported, and re-replicated — with no client traffic at all.
func TestWALScrubberFindsSilentCorruption(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 17, Mode: cluster.ModeIgnem, ScrubInterval: 5 * time.Second},
		func(v *simclock.Virtual, h *Harness) {
			c, err := h.Client(client.WithSeed(7))
			if err != nil {
				t.Fatalf("client: %v", err)
			}
			defer c.Close()
			const blockSize = 1 << 20
			data := filedata(4, 2*blockSize)
			if err := c.WriteFile("/silent", data, blockSize, 2); err != nil {
				t.Fatalf("write: %v", err)
			}
			lbs, err := c.Locations("/silent")
			if err != nil || len(lbs) == 0 {
				t.Fatalf("locations: %v", err)
			}
			badAddr := lbs[0].Nodes[0]
			var bad = -1
			for i, dn := range h.Cluster.DataNodes {
				if dn.Addr() == badAddr {
					bad = i
				}
			}
			if !h.Cluster.DataNodes[bad].CorruptReplica(lbs[0].Block.ID) {
				t.Fatal("corrupt replica")
			}

			waitUntil(t, v, time.Minute, func() bool {
				return h.Cluster.DataNodes[bad].ScrubberStats().Corrupt >= 1
			}, "scrubber detects the corruption")
			waitUntil(t, v, time.Minute, func() bool {
				return h.Cluster.NameNode.Stats().CorruptReports >= 1
			}, "scrubber report reaches the namenode")
			waitUntil(t, v, 2*time.Minute, func() bool {
				lbs, err := c.Locations("/silent")
				if err != nil {
					return false
				}
				return len(lbs) > 0 && len(lbs[0].Nodes) >= 2
			}, "re-replication heals the scrubbed replica")
			got, err := c.ReadFile("/silent", "")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("read after scrub heal: %v", err)
			}
		})
}

// A one-way partition (master→slaves dead, slaves→master alive) parks
// every migrate batch on the journal's retry queue; after heal the
// retry pump delivers them with NO client re-submission — the silent
// drop the unjournaled master suffered becomes a bounded retry.
func TestWALRetryPumpDeliversThroughOneWayPartition(t *testing.T) {
	be := wal.NewMem()
	runChaos(t, Config{Nodes: 4, Seed: 19, Mode: cluster.ModeIgnem, WALBackend: be},
		func(v *simclock.Virtual, h *Harness) {
			c, err := h.Client(client.WithSeed(8))
			if err != nil {
				t.Fatalf("client: %v", err)
			}
			defer c.Close()
			const blockSize = 1 << 20
			data := filedata(5, 4*blockSize)
			if err := c.WriteFile("/in", data, blockSize, 1); err != nil {
				t.Fatalf("write: %v", err)
			}

			// Commands out of the namenode vanish; heartbeats into it
			// keep flowing, so the datanodes stay live the whole time.
			h.Fabric.PartitionOneWay(
				[]string{cluster.NameNodeAddr}, []string{"dn0", "dn1", "dn2", "dn3"})
			if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
				t.Fatalf("migrate during one-way partition: %v", err)
			}
			mst := h.Cluster.NameNode.Master().Stats()
			if mst.SendFailures == 0 || mst.PendingRetries == 0 {
				t.Fatalf("one-way partition parked nothing: %+v", mst)
			}
			if got := h.Cluster.SlaveStats(); got.PinnedBlocks != 0 {
				t.Fatalf("pins through a partition: %+v", got)
			}

			h.Fabric.Heal()
			// No re-migrate: the pump alone must converge the cluster.
			waitUntil(t, v, time.Minute, func() bool {
				return h.Cluster.SlaveStats().PinnedBlocks == 4
			}, "retry pump delivers parked batches after heal")
			mst = h.Cluster.NameNode.Master().Stats()
			if mst.RetriedBatches == 0 || mst.PendingRetries != 0 {
				t.Fatalf("retry stats after heal: %+v", mst)
			}
			if _, err := c.Evict("job1", []string{"/in"}); err != nil {
				t.Fatalf("evict: %v", err)
			}
			waitUntil(t, v, time.Minute, func() bool {
				return h.Cluster.TotalPinnedBytes() == 0
			}, "eviction drains pins")
		})
}

// ladderScenario runs the migration ladder's full lifecycle — write,
// migrate (plan to SSD, pin, climb SSD→RAM), read, evict — on a
// journaled cluster whose WAL backend crashes after crashAfter records
// (crashAfter < 0 never crashes). Reviving the backend and driving
// RecoverMaster at whatever boundary the log died must converge to the
// same outcome as a clean run: every block device-copied onto the
// fast path EXACTLY once and climbed EXACTLY once, all residency on
// the RAM rung, and the master's budget ledger conserved — SSD charges
// fully released by the climb confirmations, RAM charges matching the
// pinned bytes, and both rungs empty after eviction. Sweeping
// crashAfter across every boundary covers, among all the others, the
// mid-ladder interleaving the journal exists for: master killed after
// the SSD promotion became durable but before the RAM promotion did.
func ladderScenario(t *testing.T, crashAfter int64) int64 {
	t.Helper()
	const blockSize = 1 << 20
	const nblocks = 6
	be := wal.NewMem()
	var appended int64
	cfg := Config{
		Nodes: 4, Seed: 11, Mode: cluster.ModeIgnem, WALBackend: be,
		SSD:             storage.SSDSpec(),
		MigrationPolicy: "ladder",
		TierBudgets:     ignem.TierBudgets{RAM: 64 << 20, SSD: 64 << 20},
	}
	runChaos(t, cfg, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(5))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		nn := h.Cluster.NameNode
		data := filedata(4, nblocks*blockSize)
		if err := c.WriteFile("/in", data, blockSize, 2); err != nil {
			t.Fatalf("write: %v", err)
		}
		if crashAfter >= 0 {
			be.CrashAfter(crashAfter)
		}
		recoverIfCrashed := func() bool {
			if !be.Crashed() {
				return false
			}
			be.Revive()
			if err := nn.RecoverMaster(); err != nil {
				t.Fatalf("recover at record %d: %v", crashAfter, err)
			}
			return true
		}

		_, err = c.Migrate("job1", []string{"/in"}, false)
		if recoverIfCrashed() {
			if err != nil {
				if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
					t.Fatalf("re-migrate after recovery: %v", err)
				}
			}
		} else if err != nil {
			t.Fatalf("migrate: %v", err)
		}

		// The ladder may die (and be recovered) at any point after the
		// plan became durable, including between the SSD pin
		// confirmation and the RAM climb. Converged means: every block
		// on the top rung, the flash rung drained.
		waitUntil(t, v, 2*time.Minute, func() bool {
			if recoverIfCrashed() {
				return false
			}
			st := h.Cluster.SlaveStats()
			return st.PinnedBlocks == nblocks && st.SSDPinnedBlocks == 0
		}, "all blocks climbed to RAM after recovery")
		// Let duplicate queue entries from recovery re-sends drain, and
		// the pin-delta heartbeats reach the master's ledger.
		v.Sleep(10 * time.Second)

		st := h.Cluster.SlaveStats()
		if st.MigratedBlocks != nblocks {
			t.Fatalf("crash at record %d: %d fast-path copies for %d blocks — promotion not exactly-once",
				crashAfter, st.MigratedBlocks, nblocks)
		}
		if st.ClimbedBlocks != nblocks {
			t.Fatalf("crash at record %d: %d climbs for %d blocks — climb not exactly-once",
				crashAfter, st.ClimbedBlocks, nblocks)
		}
		if st.SSDPinnedBytes != 0 {
			t.Fatalf("crash at record %d: %d bytes stranded on the flash rung", crashAfter, st.SSDPinnedBytes)
		}
		if got := h.Cluster.TotalPinnedBytes(); got != int64(nblocks*blockSize) {
			t.Fatalf("crash at record %d: pinned %d bytes, want %d", crashAfter, got, nblocks*blockSize)
		}
		// Budget conservation at the master: the climb confirmations
		// released every SSD charge, and RAM charges match residency.
		tiers := nn.Master().Stats().Tiers
		if tiers.SSDUsedBytes != 0 {
			t.Fatalf("crash at record %d: ledger still charges %d SSD bytes after all climbs",
				crashAfter, tiers.SSDUsedBytes)
		}
		if tiers.RAMUsedBytes != int64(nblocks*blockSize) {
			t.Fatalf("crash at record %d: ledger charges %d RAM bytes, want %d",
				crashAfter, tiers.RAMUsedBytes, nblocks*blockSize)
		}

		got, err := c.ReadFile("/in", "job1")
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("crash at record %d: file corrupted after recovery", crashAfter)
		}

		_, err = c.Evict("job1", []string{"/in"})
		if recoverIfCrashed() {
			if err != nil {
				if _, err := c.Evict("job1", []string{"/in"}); err != nil {
					t.Fatalf("re-evict after recovery: %v", err)
				}
			}
		} else if err != nil {
			t.Fatalf("evict: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			st := h.Cluster.SlaveStats()
			return h.Cluster.TotalPinnedBytes() == 0 && st.SSDPinnedBytes == 0 &&
				st.QueuedCmds == 0 && st.DeferredCmds == 0
		}, "eviction drains both fast tiers")
		v.Sleep(10 * time.Second)
		tiers = nn.Master().Stats().Tiers
		if tiers.RAMUsedBytes != 0 || tiers.SSDUsedBytes != 0 {
			t.Fatalf("crash at record %d: ledger leaks charges after eviction (ram %d, ssd %d)",
				crashAfter, tiers.RAMUsedBytes, tiers.SSDUsedBytes)
		}
		appended = be.Appends()
	})
	return appended
}

// TestWALLadderCrashAtEveryRecordExactlyOnce is the mid-ladder chaos
// sweep: kill the master's WAL at EVERY record boundary a clean
// ladder run writes — which includes the window between a durable SSD
// promotion and its RAM climb — and assert the recovered master
// converges to exactly-once placement with the budget ledger conserved.
func TestWALLadderCrashAtEveryRecordExactlyOnce(t *testing.T) {
	records := ladderScenario(t, -1)
	if records < 10 {
		t.Fatalf("clean ladder run journaled only %d records; the sweep expects the full two-rung state machine", records)
	}
	for k := int64(0); k < records; k++ {
		ladderScenario(t, k)
	}
}
