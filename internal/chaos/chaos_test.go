package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/mapreduce"
	"repro/internal/shardmap"
	"repro/internal/simclock"
)

// wallTimeout bounds each scenario's real (not simulated) runtime.
const wallTimeout = 120 * time.Second

func runChaos(t *testing.T, cfg Config, fn func(v *simclock.Virtual, h *Harness)) {
	t.Helper()
	err := cluster.RunVirtual(wallTimeout, func(v *simclock.Virtual) {
		h, err := Start(v, cfg)
		if err != nil {
			t.Errorf("chaos start: %v", err)
			return
		}
		defer h.Close()
		fn(v, h)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func waitUntil(t *testing.T, v *simclock.Virtual, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := v.Now().Add(timeout)
	for !cond() {
		if v.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		v.Sleep(50 * time.Millisecond)
	}
}

func filedata(i, n int) []byte {
	return bytes.Repeat([]byte{byte('a' + i)}, n)
}

// A datanode that dies mid-traffic must not lose acked data: every write
// that succeeded reads back intact, the replication loop restores the
// target replica count on the survivors, and the revived node rejoins
// the cluster.
func TestDataNodeCrashMidTrafficNoAckedDataLost(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 42}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(1))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()

		const blockSize = 256 << 10
		const nfiles = 5
		// dn1 dies while the files stream in. The namenode keeps handing
		// out allocations naming it until the heartbeat expires, so the
		// writer's per-block failover carries the traffic.
		h.Fabric.CrashAfter("dn1", 300*time.Millisecond)
		for i := 0; i < nfiles; i++ {
			data := filedata(i, 4*blockSize)
			if err := c.WriteFile(fmt.Sprintf("/chaos/f%d", i), data, blockSize, 2); err != nil {
				t.Fatalf("write f%d: %v", i, err)
			}
		}
		for i := 0; i < nfiles; i++ {
			got, err := c.ReadFile(fmt.Sprintf("/chaos/f%d", i), "")
			if err != nil {
				t.Fatalf("read back f%d: %v", i, err)
			}
			if !bytes.Equal(got, filedata(i, 4*blockSize)) {
				t.Fatalf("f%d corrupted after crash: %d bytes", i, len(got))
			}
		}

		// Heartbeat expiry (10s) plus the replication sweep must restore
		// two live replicas per block without the dead node.
		waitUntil(t, v, time.Minute, func() bool {
			for i := 0; i < nfiles; i++ {
				lbs, err := c.Locations(fmt.Sprintf("/chaos/f%d", i))
				if err != nil {
					return false
				}
				for _, lb := range lbs {
					live := 0
					for _, n := range lb.Nodes {
						if n == "dn1" {
							return false
						}
						live++
					}
					if live < 2 {
						return false
					}
				}
			}
			return true
		}, "re-replication onto survivors")

		// The healed node re-registers with a full block report and counts
		// as live again.
		if err := h.ReviveDataNode(1); err != nil {
			t.Fatalf("revive dn1: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			for _, addr := range h.Cluster.NameNode.LiveDataNodes() {
				if addr == "dn1" {
					return true
				}
			}
			return false
		}, "revived node live at namenode")
	})
}

// A migrate batch lost to a partition must not wedge anything: the job
// runs from disk, its eviction clears the master's dangling assignment,
// and after heal the next job migrates end-to-end.
func TestPartitionedSlaveConvergesAfterHeal(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 7, Mode: cluster.ModeIgnem}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(2))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 1 << 20
		data := filedata(0, 4*blockSize)
		if err := c.WriteFile("/in", data, blockSize, 1); err != nil {
			t.Fatalf("write: %v", err)
		}

		// The namenode cannot reach any slave: every migrate batch for
		// job1 vanishes (the send times out and is counted, not retried).
		h.Fabric.Partition([]string{cluster.NameNodeAddr}, []string{"dn0", "dn1", "dn2", "dn3"})
		resp, err := c.Migrate("job1", []string{"/in"}, true)
		if err != nil {
			t.Fatalf("migrate during partition: %v", err)
		}
		if resp.Blocks != 4 {
			t.Fatalf("migrate enqueued %d blocks, want 4", resp.Blocks)
		}
		if st := h.Cluster.NameNode.Master().Stats(); st.SendErrors == 0 {
			t.Fatal("partition swallowed the batches but SendErrors == 0")
		}
		if got := h.Cluster.SlaveStats(); got.QueuedCmds != 0 || got.PinnedBlocks != 0 {
			t.Fatalf("slaves saw commands through a partition: %+v", got)
		}
		h.Fabric.Heal()
		// The partition also starved heartbeats, so the namenode expired
		// the datanodes; their next heartbeat through the healed fabric
		// restores them.
		waitUntil(t, v, time.Minute, func() bool {
			return len(h.Cluster.NameNode.LiveDataNodes()) == 4
		}, "datanodes live again after heal")

		// job1 runs anyway, reading from disk, and evicts on completion:
		// the master's dangling assignment is released, nothing is stuck.
		if _, err := c.ReadFile("/in", "job1"); err != nil {
			t.Fatalf("read during recovery: %v", err)
		}
		if _, err := c.Evict("job1", []string{"/in"}); err != nil {
			t.Fatalf("evict job1: %v", err)
		}
		st := h.Cluster.SlaveStats()
		if h.Cluster.TotalPinnedBytes() != 0 || st.QueuedCmds != 0 || st.DeferredCmds != 0 {
			t.Fatalf("state stuck after heal: pinned=%d queued=%d deferred=%d",
				h.Cluster.TotalPinnedBytes(), st.QueuedCmds, st.DeferredCmds)
		}

		// The healed fabric carries the next job's migration end-to-end.
		if _, err := c.Migrate("job2", []string{"/in"}, true); err != nil {
			t.Fatalf("migrate after heal: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.SlaveStats().PinnedBlocks == 4
		}, "post-heal migration pins all blocks")
		if _, err := c.ReadFile("/in", "job2"); err != nil {
			t.Fatalf("read job2: %v", err)
		}
		// Implicit eviction releases every block as job2 reads it.
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.TotalPinnedBytes() == 0
		}, "implicit eviction drains pins")
	})
}

// An Ignem master restart while migrations are in flight must not
// double-migrate or strand pins: slaves drop the stale epoch's work, the
// re-issued job pins everything exactly once, and eviction drains it.
func TestMasterRestartMidMigrationConvergesEndToEnd(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 9, Mode: cluster.ModeIgnem}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(3))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 8 << 20 // big enough that device reads take real simulated time
		data := filedata(1, 6*blockSize)
		if err := c.WriteFile("/in", data, blockSize, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.SlaveStats().MigratedBlocks >= 1
		}, "first migration lands")

		// Master dies mid-stream. The new epoch's broadcast purges every
		// slave; any in-flight old-epoch read is dropped when it completes.
		h.Cluster.NameNode.RestartMaster()
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.TotalPinnedBytes() == 0
		}, "epoch purge unpins stale state")

		// The job resubmits against the new master and everything migrates
		// exactly once under the new epoch.
		if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
			t.Fatalf("re-migrate: %v", err)
		}
		waitUntil(t, v, 2*time.Minute, func() bool {
			return h.Cluster.SlaveStats().PinnedBlocks == 6
		}, "re-issued migration pins all blocks")
		if got := h.Cluster.TotalPinnedBytes(); got != int64(6*blockSize) {
			t.Fatalf("pinned %d bytes, want %d — a stale migration double-pinned", got, 6*blockSize)
		}
		if _, err := c.Evict("job1", []string{"/in"}); err != nil {
			t.Fatalf("evict: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.TotalPinnedBytes() == 0
		}, "eviction drains the new epoch's pins")
	})
}

// SWIM-style MapReduce traffic keeps completing while a datanode dies
// and the Ignem master restarts mid-run; after the node heals and the
// master's next epoch broadcast reconciles it, no migration is stuck and
// no pinned byte survives the jobs.
func TestSwimTrafficUnderChaos(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 11, Mode: cluster.ModeIgnem}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client()
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const jobs = 6
		const inputBytes = 32 << 20
		for i := 0; i < jobs; i++ {
			if err := c.WriteSyntheticFile(fmt.Sprintf("/swim/j%d", i), inputBytes, 0, 2); err != nil {
				t.Fatalf("setup j%d: %v", i, err)
			}
		}

		// The chaos schedule, all on the virtual clock: a datanode dies at
		// 3s, the master restarts at 8s, the node heals at 20s.
		h.Fabric.CrashAfter("dn3", 3*time.Second)
		v.Go(func() {
			v.Sleep(8 * time.Second)
			h.Cluster.NameNode.RestartMaster()
		})
		v.Go(func() {
			v.Sleep(20 * time.Second)
			if err := h.ReviveDataNode(3); err != nil {
				t.Errorf("revive dn3: %v", err)
			}
		})

		wg := simclock.NewWaitGroup(v)
		for i := 0; i < jobs; i++ {
			i := i
			wg.Go(func() {
				v.Sleep(time.Duration(i) * 2 * time.Second)
				if _, err := h.Cluster.Engine.Run(mapreduce.Config{
					ID:            dfs.JobID(fmt.Sprintf("job%d", i)),
					InputPaths:    []string{fmt.Sprintf("/swim/j%d", i)},
					MapRateMBps:   800,
					UseIgnem:      true,
					ImplicitEvict: true,
				}); err != nil {
					t.Errorf("job%d: %v", i, err)
				}
			})
		}
		wg.Wait()

		// The revived node's slave may still hold pre-crash pins under the
		// old epoch (it missed the restart broadcast). The recovery
		// protocol is the master's next epoch broadcast, which now reaches
		// every live node and reconciles the stragglers.
		waitUntil(t, v, time.Minute, func() bool {
			for _, addr := range h.Cluster.NameNode.LiveDataNodes() {
				if addr == "dn3" {
					return true
				}
			}
			return false
		}, "healed node live again")
		h.Cluster.NameNode.RestartMaster()
		waitUntil(t, v, time.Minute, func() bool {
			st := h.Cluster.SlaveStats()
			return h.Cluster.TotalPinnedBytes() == 0 && st.QueuedCmds == 0 && st.DeferredCmds == 0
		}, "cluster converges: no pins, no stuck migrations")
	})
}

// chaosScenario runs a fixed fault schedule — a lossy client→namenode
// link, a scheduled datanode crash, replica-failover reads, heal — and
// returns a transcript of everything observable: the fabric's event log,
// file contents digests, replica placements, and the simulated clock at
// exit. Two runs with one seed must produce identical transcripts.
func chaosScenario(t *testing.T, seed int64) string {
	var b strings.Builder
	err := cluster.RunVirtual(wallTimeout, func(v *simclock.Virtual) {
		h, err := Start(v, Config{Nodes: 3, Seed: seed, Mode: cluster.ModeIgnem})
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		defer h.Close()
		c, err := h.Client(client.WithSeed(5),
			client.WithNNTimeout(time.Second), client.WithNNAttempts(6))
		if err != nil {
			t.Errorf("client: %v", err)
			return
		}
		defer c.Close()

		const blockSize = 512 << 10
		for i := 0; i < 3; i++ {
			if err := c.WriteFile(fmt.Sprintf("/det/f%d", i), filedata(i, 2*blockSize), blockSize, 2); err != nil {
				t.Errorf("write f%d: %v", i, err)
				return
			}
		}

		// Phase 1: requests to the namenode get dropped 30% of the time;
		// the retry path's seeded jitter wades through.
		h.Fabric.SetDrop(ClientAddr, cluster.NameNodeAddr, 0.3)
		for round := 0; round < 5; round++ {
			for i := 0; i < 3; i++ {
				info, err := c.Info(fmt.Sprintf("/det/f%d", i))
				fmt.Fprintf(&b, "info %d/%d: %v %v\n", round, i, info.Size, err)
			}
		}
		h.Fabric.SetDrop(ClientAddr, cluster.NameNodeAddr, 0)

		// Phase 2: a datanode dies on schedule; reads fail over to the
		// surviving replicas.
		h.Fabric.CrashAfter("dn2", 500*time.Millisecond)
		v.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			got, err := c.ReadFile(fmt.Sprintf("/det/f%d", i), "")
			hash := fnv.New64a()
			hash.Write(got)
			fmt.Fprintf(&b, "read f%d: len=%d fnv=%x err=%v\n", i, len(got), hash.Sum64(), err)
		}

		// Phase 3: heal and let the node rejoin.
		if err := h.ReviveDataNode(2); err != nil {
			fmt.Fprintf(&b, "revive err: %v\n", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			for _, addr := range h.Cluster.NameNode.LiveDataNodes() {
				if addr == "dn2" {
					return true
				}
			}
			return false
		}, "dn2 rejoins")

		for i := 0; i < 3; i++ {
			lbs, err := c.Locations(fmt.Sprintf("/det/f%d", i))
			if err != nil {
				fmt.Fprintf(&b, "locations f%d err: %v\n", i, err)
				continue
			}
			for _, lb := range lbs {
				nodes := append([]string(nil), lb.Nodes...)
				sort.Strings(nodes)
				fmt.Fprintf(&b, "f%d block %d @%d: %v\n", i, lb.Block.ID, lb.Offset, nodes)
			}
		}
		fmt.Fprintf(&b, "clock: %v\n", v.Now().Sub(cluster.SimStart))
		fmt.Fprintf(&b, "fabric events:\n%s\n", strings.Join(h.Fabric.Events(), "\n"))
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The whole chaos stack — fabric drops, crash scheduling, retry jitter,
// failover — replays bit-for-bit under one seed, and a different seed
// actually changes the run.
func TestSeededChaosRunsAreDeterministic(t *testing.T) {
	a := chaosScenario(t, 42)
	b := chaosScenario(t, 42)
	if a != b {
		t.Fatalf("two runs with seed 42 diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if c := chaosScenario(t, 43); c == a {
		t.Fatal("seed 43 reproduced seed 42's transcript exactly — the seed is not wired through")
	}
}

// A slave severed from the fabric across an Ignem master restart holds
// pins under the dead epoch. On revival its datanode probes the master's
// current epoch during re-registration, so the stale pins must be gone
// the moment Reconnect returns — no waiting for the next epoch
// broadcast, which may be arbitrarily far away on an idle master.
func TestRevivedSlaveAdoptsEpochImmediately(t *testing.T) {
	runChaos(t, Config{Nodes: 4, Seed: 13, Mode: cluster.ModeIgnem}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(5))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 1 << 20
		if err := c.WriteFile("/in", filedata(0, 4*blockSize), blockSize, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := c.Migrate("job1", []string{"/in"}, false); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.SlaveStats().PinnedBlocks == 4
		}, "migration pins all blocks")

		// Crash a datanode that holds pins, then restart the master: the
		// new-epoch broadcast reaches every slave except the crashed one.
		victim := -1
		for i, dn := range h.Cluster.DataNodes {
			if dn.Slave().PinnedBytes() > 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Fatal("no datanode holds pinned bytes after migration")
		}
		h.CrashDataNode(victim)
		h.Cluster.NameNode.RestartMaster()
		waitUntil(t, v, time.Minute, func() bool {
			for i, dn := range h.Cluster.DataNodes {
				if i != victim && dn.Slave().PinnedBytes() > 0 {
					return false
				}
			}
			return true
		}, "reachable slaves purge on the epoch broadcast")
		if h.Cluster.DataNodes[victim].Slave().PinnedBytes() == 0 {
			t.Fatal("crashed slave lost its pins while severed — scenario is vacuous")
		}

		// Revive: Reconnect re-registers and probes the master epoch, so
		// the stale pins must be reconciled by the time it returns.
		if err := h.ReviveDataNode(victim); err != nil {
			t.Fatalf("revive: %v", err)
		}
		if got := h.Cluster.DataNodes[victim].Slave().PinnedBytes(); got != 0 {
			t.Fatalf("revived slave still pins %d bytes under the stale epoch", got)
		}
		// And the revived slave serves the new epoch normally.
		if _, err := c.Migrate("job2", []string{"/in"}, false); err != nil {
			t.Fatalf("migrate after revive: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.SlaveStats().PinnedBlocks == 4
		}, "post-revive migration pins under the new epoch")
	})
}

// A cross-shard migration must drain while datanodes roll through
// crash/revive: four files in directories hashing to all four shards of
// a sharded metadata plane are migrated as one job (the "one sort spans
// shards" case — every shard's planner contributes fragments of the same
// job), two nodes die and heal mid-flight, the job is re-issued after
// the heal, and every block ends pinned exactly once with no stuck
// migration. Eviction then drains the pins to zero across all shards.
func TestShardedPlaneMigrationsDrainUnderRollingCrash(t *testing.T) {
	const shards = 4
	runChaos(t, Config{Nodes: 4, Seed: 17, Mode: cluster.ModeIgnem, MetaShards: shards}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(3))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()

		// One directory per shard, found by the same hash the namenode
		// routes with, so the job's inputs provably span every shard.
		dirs := make([]string, 0, shards)
		for s, next := 0, 0; s < shards; s++ {
			for {
				d := fmt.Sprintf("/in%d", next)
				next++
				if shardmap.FileShard(d+"/f", shards) == s {
					dirs = append(dirs, d)
					break
				}
			}
		}

		const blockSize = 4 << 20
		const blocksPerFile = 3
		var paths []string
		for i, d := range dirs {
			p := d + "/f"
			if err := c.WriteFile(p, filedata(i, blocksPerFile*blockSize), blockSize, 1); err != nil {
				t.Fatalf("write %s: %v", p, err)
			}
			paths = append(paths, p)
		}
		const totalBlocks = shards * blocksPerFile

		if _, err := c.Migrate("sort1", paths, false); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.SlaveStats().MigratedBlocks >= 1
		}, "first migration lands")

		// Roll a crash/revive across two datanodes while the job streams.
		for i := 0; i < 2; i++ {
			h.CrashDataNode(i)
			v.Sleep(3 * time.Second)
			if err := h.ReviveDataNode(i); err != nil {
				t.Fatalf("revive dn%d: %v", i, err)
			}
			v.Sleep(2 * time.Second)
		}

		// Commands lost to dead nodes are re-issued by resubmitting the
		// job; already-pinned blocks are filtered, so nothing double-pins.
		if _, err := c.Migrate("sort1", paths, false); err != nil {
			t.Fatalf("re-migrate: %v", err)
		}
		waitUntil(t, v, 2*time.Minute, func() bool {
			return h.Cluster.SlaveStats().PinnedBlocks == totalBlocks
		}, "all shards' migrations drain")
		if got := h.Cluster.TotalPinnedBytes(); got != int64(totalBlocks*blockSize) {
			t.Fatalf("pinned %d bytes, want %d — a shard double-pinned after the rolling crash", got, totalBlocks*blockSize)
		}

		if _, err := c.Evict("sort1", paths); err != nil {
			t.Fatalf("evict: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			return h.Cluster.TotalPinnedBytes() == 0
		}, "eviction drains every shard's pins")
	})
}

// A datanode whose reports are lost to the fabric keeps consuming
// report sequence numbers, so the first heartbeat to get through after
// the heal arrives with a gap. The namenode must notice, request a full
// resync, and the datanode's snapshot must re-anchor the stream: after
// one resync the counters go quiet again.
func TestLostReportsTriggerResyncAndConverge(t *testing.T) {
	runChaos(t, Config{Nodes: 3, Seed: 7, DFSHeartbeat: 500 * time.Millisecond}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(2))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 256 << 10
		if err := c.WriteFile("/resync/f0", filedata(0, 4*blockSize), blockSize, 2); err != nil {
			t.Fatalf("write: %v", err)
		}
		before := h.Cluster.NameNode.Stats()

		// Silently eat dn1's reports (the reply path stays open: the
		// calls time out on the datanode side, which requeues deltas and
		// burns sequence numbers). One blocked heartbeat costs a 30s call
		// timeout, so a 70s window guarantees at least two lost reports.
		h.Fabric.Block("dn1", cluster.NameNodeAddr)
		v.Sleep(70 * time.Second)
		h.Fabric.Unblock("dn1", cluster.NameNodeAddr)

		// The first post-heal heartbeat carries the gap; the namenode
		// asks for a snapshot, the datanode delivers it, and dn1 counts
		// as live again.
		waitUntil(t, v, 3*time.Minute, func() bool {
			st := h.Cluster.NameNode.Stats()
			if st.ResyncRequests == before.ResyncRequests || st.FullReports == before.FullReports {
				return false
			}
			for _, addr := range h.Cluster.NameNode.LiveDataNodes() {
				if addr == "dn1" {
					return true
				}
			}
			return false
		}, "gap-triggered resync and revival")

		// Re-anchored: several more heartbeats flow without tripping
		// another resync, and the file still resolves fully replicated.
		settled := h.Cluster.NameNode.Stats().ResyncRequests
		v.Sleep(5 * time.Second)
		if got := h.Cluster.NameNode.Stats().ResyncRequests; got != settled {
			t.Fatalf("resyncs kept firing after the snapshot: %d -> %d", settled, got)
		}
		lbs, err := c.Locations("/resync/f0")
		if err != nil {
			t.Fatalf("locations: %v", err)
		}
		for _, lb := range lbs {
			if len(lb.Nodes) < 2 {
				t.Fatalf("block %d under-replicated after resync: %v", lb.Block.ID, lb.Nodes)
			}
		}
	})
}

// A datanode that misses an epoch while severed — the namespace moved
// on without it (a file it replicates was deleted) — must converge on
// Reconnect: the register's snapshot re-anchors sequence and epoch, the
// deleted file stays deleted despite the stale replicas in the
// snapshot, and the surviving file's reference list gets its third
// replica back. No resync round-trips are needed at any point: the
// register IS the snapshot.
func TestReconnectAfterMissedEpochConverges(t *testing.T) {
	runChaos(t, Config{Nodes: 3, Seed: 9, DFSHeartbeat: 500 * time.Millisecond}, func(v *simclock.Virtual, h *Harness) {
		c, err := h.Client(client.WithSeed(4))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		const blockSize = 256 << 10
		// Every node holds every block of both files.
		for i, path := range []string{"/epoch/keep", "/epoch/doomed"} {
			if err := c.WriteFile(path, filedata(i, 3*blockSize), blockSize, 3); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
		}
		h.CrashDataNode(1)
		waitUntil(t, v, time.Minute, func() bool {
			return len(h.Cluster.NameNode.LiveDataNodes()) == 2
		}, "crashed node expires")
		// The namespace moves on while dn1 is dark.
		if err := c.Delete("/epoch/doomed"); err != nil {
			t.Fatalf("delete: %v", err)
		}

		if err := h.ReviveDataNode(1); err != nil {
			t.Fatalf("revive: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			lbs, err := c.Locations("/epoch/keep")
			if err != nil {
				return false
			}
			for _, lb := range lbs {
				if len(lb.Nodes) != 3 {
					return false
				}
			}
			return true
		}, "revived node back in the reference lists")

		// The stale replicas in dn1's snapshot must not resurrect the
		// deleted file.
		if _, err := c.Locations("/epoch/doomed"); err == nil {
			t.Fatal("deleted file resolvable again after stale snapshot")
		}
		// And the fresh epoch anchors cleanly: continued heartbeats from
		// the revived node never trip a resync.
		v.Sleep(5 * time.Second)
		if got := h.Cluster.NameNode.Stats().ResyncRequests; got != 0 {
			t.Fatalf("reconnect path needed %d resync round-trips; the register snapshot should anchor directly", got)
		}
	})
}
