// Package chaos couples the full testbed — namenode with the Ignem
// master, datanodes with Ignem slaves, scheduler, MapReduce engine — to
// a deterministic fault-injecting fabric (internal/faultnet). Every
// component Listens and Dials through its own named view of the fabric,
// so a test can crash a datanode, partition it from the namenode, or
// make a link lossy, and later heal everything, all on the virtual
// clock: the same seed replays the same chaos bit for bit.
//
// The package holds only the harness; the scenarios live in the test
// suite (run with `make chaos`).
package chaos

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs/client"
	"repro/internal/faultnet"
	"repro/internal/ignem"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ClientAddr is the fabric node chaos clients dial from, so tests can
// aim fault rules at client↔cluster links specifically.
const ClientAddr = "client"

// Config sizes a chaos cluster.
type Config struct {
	// Nodes is the datanode count. Default 4 (small keeps scenarios
	// fast; chaos is about failure interleavings, not scale).
	Nodes int
	// Seed drives cluster placement AND the fabric's fault randomness.
	Seed int64
	// Mode selects the file-system configuration. Chaos scenarios that
	// exercise migration want cluster.ModeIgnem.
	Mode cluster.Mode
	// Slave configures the Ignem slaves.
	Slave ignem.SlaveConfig
	// DFSHeartbeat overrides the datanode heartbeat interval.
	DFSHeartbeat time.Duration
	// MetaShards partitions the namenode's metadata plane (see
	// cluster.Config.MetaShards). Zero keeps the unsharded plane.
	MetaShards int
	// WALBackend gives the Ignem master a migration write-ahead log
	// (see cluster.Config.WALBackend). Chaos scenarios pass a
	// wal.MemBackend so they can crash the master at chosen record
	// boundaries and recover from the surviving prefix.
	WALBackend wal.Backend
	// ScrubInterval enables the datanodes' background checksum scrubber
	// (see cluster.Config.ScrubInterval).
	ScrubInterval time.Duration
	// SSD gives every datanode a flash rung (see cluster.Config.SSD);
	// MigrationPolicy and TierBudgets configure the master's migration
	// ladder. Zero values keep the historical two-tier pin-in-RAM
	// cluster.
	SSD             storage.Spec
	MigrationPolicy string
	TierBudgets     ignem.TierBudgets
}

// Harness is a running cluster whose fabric is under test control.
type Harness struct {
	Clock   *simclock.Virtual
	Fabric  *faultnet.Fabric
	Cluster *cluster.Cluster
}

// Start brings up a cluster over a fresh fault fabric. Must be called
// from a simulation goroutine.
func Start(v *simclock.Virtual, cfg Config) (*Harness, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	h := &Harness{Clock: v}
	c, err := cluster.Start(v, cluster.Config{
		Nodes:         cfg.Nodes,
		Mode:          cfg.Mode,
		Seed:          cfg.Seed,
		Slave:         cfg.Slave,
		DFSHeartbeat:  cfg.DFSHeartbeat,
		MetaShards:    cfg.MetaShards,
		WALBackend:    cfg.WALBackend,
		ScrubInterval: cfg.ScrubInterval,

		SSD:             cfg.SSD,
		MigrationPolicy: cfg.MigrationPolicy,
		TierBudgets:     cfg.TierBudgets,
		WrapNet: func(node string, base transport.Network) transport.Network {
			if h.Fabric == nil {
				h.Fabric = faultnet.New(v, base, cfg.Seed)
			}
			return h.Fabric.Node(node)
		},
	})
	if err != nil {
		return nil, err
	}
	h.Cluster = c
	return h, nil
}

// Client opens a DFS client dialing from the fabric's ClientAddr node,
// so crash/partition/drop rules on "client" links apply to it. Writes
// default to the serial path, as cluster.Client does.
func (h *Harness) Client(opts ...client.Option) (*client.Client, error) {
	opts = append([]client.Option{client.WithWriteParallelism(1)}, opts...)
	return client.New(h.Clock, h.Fabric.Node(ClientAddr), cluster.NameNodeAddr, opts...)
}

// CrashDataNode severs datanode i from the fabric: its listener and
// every connection touching it die. The process itself keeps running
// (blocks and pinned memory survive), modelling a network/NIC failure
// rather than a host loss.
func (h *Harness) CrashDataNode(i int) {
	h.Fabric.Crash(h.Cluster.DataNodes[i].Addr())
}

// ReviveDataNode heals datanode i's fabric node and re-registers it
// with the namenode (full block report), so the replica map reconciles.
func (h *Harness) ReviveDataNode(i int) error {
	h.Fabric.Revive(h.Cluster.DataNodes[i].Addr())
	return h.Cluster.DataNodes[i].Reconnect()
}

// Close tears the cluster down.
func (h *Harness) Close() {
	h.Cluster.Close()
}
