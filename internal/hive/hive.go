// Package hive models the paper's Hive/TPC-DS workload (§IV-B3, Fig 9):
// a catalog of queries with the input sizes and selectivities of the
// evaluated TPC-DS subset, compiled into chains of MapReduce stages, and
// the one-off framework hook that migrates a query's inputs right after
// compilation.
package hive

import (
	"fmt"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/mapreduce"
)

// Query describes one catalog entry.
type Query struct {
	// Name is the TPC-DS query number, e.g. "q3".
	Name string
	// InputBytes is the bytes of warehouse partitions the first stage
	// scans (the paper's Fig 9b).
	InputBytes int64
	// Selectivity is the map-output/input ratio of the scan stage; the
	// SELECT list and WHERE predicates discard the rest.
	Selectivity float64
	// Stages is the number of MapReduce jobs in the compiled plan.
	Stages int
	// MapRateMBps models per-row predicate evaluation cost.
	MapRateMBps float64
}

// Catalog returns the evaluated queries in Fig 9's order (sorted by
// input size). The three largest — q82, q25, q29 — are the ones whose
// inputs exceed what Ignem can migrate within the lead-time.
func Catalog() []Query {
	gb := func(f float64) int64 { return int64(f * float64(1<<30)) }
	return []Query{
		{Name: "q52", InputBytes: gb(1.2), Selectivity: 0.08, Stages: 2, MapRateMBps: 500},
		{Name: "q42", InputBytes: gb(1.4), Selectivity: 0.08, Stages: 2, MapRateMBps: 500},
		{Name: "q3", InputBytes: gb(1.8), Selectivity: 0.06, Stages: 2, MapRateMBps: 500},
		{Name: "q7", InputBytes: gb(2.8), Selectivity: 0.12, Stages: 2, MapRateMBps: 450},
		{Name: "q19", InputBytes: gb(3.2), Selectivity: 0.10, Stages: 2, MapRateMBps: 450},
		{Name: "q34", InputBytes: gb(3.9), Selectivity: 0.15, Stages: 2, MapRateMBps: 450},
		{Name: "q27", InputBytes: gb(4.6), Selectivity: 0.15, Stages: 3, MapRateMBps: 400},
		{Name: "q82", InputBytes: gb(7.5), Selectivity: 0.20, Stages: 3, MapRateMBps: 400},
		{Name: "q25", InputBytes: gb(9.8), Selectivity: 0.22, Stages: 3, MapRateMBps: 400},
		{Name: "q29", InputBytes: gb(11.6), Selectivity: 0.25, Stages: 3, MapRateMBps: 400},
	}
}

// QueryResult reports one executed query.
type QueryResult struct {
	Name       string
	InputBytes int64
	Duration   time.Duration
}

// Hive runs catalog queries on a MapReduce engine.
type Hive struct {
	engine *mapreduce.Engine
	// UseIgnem enables the post-compile migration hook.
	UseIgnem bool
	// partitionBytes sizes warehouse partition files. Default 1 GB.
	partitionBytes int64
}

// New creates a Hive frontend over engine.
func New(engine *mapreduce.Engine, useIgnem bool) *Hive {
	return &Hive{engine: engine, UseIgnem: useIgnem, partitionBytes: 1 << 30}
}

// TablePaths returns the warehouse partition paths a query scans.
func (h *Hive) TablePaths(q Query) []string {
	n := int((q.InputBytes + h.partitionBytes - 1) / h.partitionBytes)
	if n < 1 {
		n = 1
	}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/warehouse/%s/part-%05d", q.Name, i)
	}
	return paths
}

// SetupTables writes each query's warehouse partitions into the DFS.
// Call once per cluster before running queries.
func (h *Hive) SetupTables(c *client.Client, queries []Query) error {
	for _, q := range queries {
		remaining := q.InputBytes
		for _, path := range h.TablePaths(q) {
			size := h.partitionBytes
			if remaining < size {
				size = remaining
			}
			if size <= 0 {
				break
			}
			if err := c.WriteSyntheticFile(path, size, 0, dfs.DefaultReplication); err != nil {
				return fmt.Errorf("hive: setup %s: %w", q.Name, err)
			}
			remaining -= size
		}
	}
	return nil
}

// RunQuery compiles and executes one query: the compile hook issues the
// Migrate call for the scan inputs (the paper's one-off Hive change),
// then the stage chain runs, each stage reading the previous stage's
// output.
func (h *Hive) RunQuery(q Query, runID string) (QueryResult, error) {
	start, err := h.engine.SubmitClient()
	if err != nil {
		return QueryResult{}, err
	}
	began := timeNow(h.engine)
	inputs := h.TablePaths(q)
	jobBase := fmt.Sprintf("%s-%s", q.Name, runID)

	shuffle := int64(float64(q.InputBytes) * q.Selectivity)
	stageIn := inputs
	for stage := 0; stage < q.Stages; stage++ {
		jobID := dfs.JobID(fmt.Sprintf("%s-s%d", jobBase, stage))
		out := fmt.Sprintf("/tmp/hive/%s/stage-%d", jobBase, stage)
		cfg := mapreduce.Config{
			ID:           jobID,
			InputPaths:   stageIn,
			MapRateMBps:  q.MapRateMBps,
			ShuffleBytes: shuffle,
			OutputBytes:  shuffle / 2,
			OutputPath:   out,
			// Only the scan stage reads cold warehouse data; the hook
			// migrates it. Later stages read freshly written
			// intermediates.
			UseIgnem:      h.UseIgnem && stage == 0,
			ImplicitEvict: true,
		}
		if stage == 0 {
			// Hive runs in a warm Tez session: the application master is
			// already up, so the scan stage pays only a short DAG-setup
			// cost. That setup window (plus compile time) is the query's
			// migration lead-time.
			cfg.SubmitOverhead = 3 * time.Second
		} else {
			// Later DAG stages run inside the same session and pay no
			// submission overhead at all.
			cfg.SubmitOverhead = -1
		}
		res, err := h.engine.Run(cfg)
		if err != nil {
			return QueryResult{}, fmt.Errorf("hive: %s stage %d: %w", q.Name, stage, err)
		}
		_ = res
		// Next stage reads this stage's output parts.
		files, err := start.List(out + "/")
		if err != nil {
			return QueryResult{}, err
		}
		var next []string
		for _, f := range files {
			next = append(next, f.Path)
		}
		stageIn = next
		if len(stageIn) == 0 {
			break // fully aggregated; nothing left to read
		}
		shuffle /= 4
	}
	return QueryResult{
		Name:       q.Name,
		InputBytes: q.InputBytes,
		Duration:   timeNow(h.engine).Sub(began),
	}, nil
}

func timeNow(e *mapreduce.Engine) time.Time { return e.Now() }
