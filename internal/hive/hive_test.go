package hive_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hive"
	"repro/internal/simclock"
)

func runSim(t *testing.T, fn func(v *simclock.Virtual)) {
	t.Helper()
	if err := cluster.RunVirtual(180*time.Second, fn); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogShape(t *testing.T) {
	cat := hive.Catalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d queries", len(cat))
	}
	var prev int64
	for _, q := range cat {
		if q.InputBytes <= prev {
			t.Errorf("catalog not sorted by input size at %s", q.Name)
		}
		prev = q.InputBytes
		if q.Selectivity <= 0 || q.Selectivity > 1 {
			t.Errorf("%s selectivity %v", q.Name, q.Selectivity)
		}
		if q.Stages < 1 {
			t.Errorf("%s has no stages", q.Name)
		}
	}
	// The three largest are q82, q25, q29 (the paper's hard cases).
	last3 := cat[len(cat)-3:]
	want := map[string]bool{"q82": true, "q25": true, "q29": true}
	for _, q := range last3 {
		if !want[q.Name] {
			t.Errorf("largest queries are %v; expected q82/q25/q29", last3)
		}
	}
}

func TestQueryRunsOnCluster(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c, err := cluster.Start(v, cluster.Config{Nodes: 4, Mode: cluster.ModeIgnem, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		h := hive.New(c.Engine, true)
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		// A downsized query keeps the unit test quick.
		q := hive.Query{Name: "qtest", InputBytes: 512 << 20, Selectivity: 0.1, Stages: 2, MapRateMBps: 500}
		if err := h.SetupTables(cl, []hive.Query{q}); err != nil {
			t.Fatal(err)
		}
		res, err := h.RunQuery(q, "run1")
		if err != nil {
			t.Fatalf("RunQuery: %v", err)
		}
		if res.Duration <= 0 || res.InputBytes != q.InputBytes {
			t.Errorf("result = %+v", res)
		}
		// The implicit-eviction hook plus stage completion must not leak
		// pinned memory.
		if got := c.TotalPinnedBytes(); got != 0 {
			t.Errorf("pinned %d bytes after query", got)
		}
	})
}

func TestIgnemAcceleratesQuery(t *testing.T) {
	run := func(mode cluster.Mode) time.Duration {
		var dur time.Duration
		runSim(t, func(v *simclock.Virtual) {
			c, err := cluster.Start(v, cluster.Config{Nodes: 4, Mode: mode, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			h := hive.New(c.Engine, mode == cluster.ModeIgnem)
			cl, _ := c.Client()
			defer cl.Close()
			q := hive.Query{Name: "qx", InputBytes: 1 << 30, Selectivity: 0.1, Stages: 2, MapRateMBps: 500}
			if err := h.SetupTables(cl, []hive.Query{q}); err != nil {
				t.Fatal(err)
			}
			res, err := h.RunQuery(q, "r")
			if err != nil {
				t.Fatal(err)
			}
			dur = res.Duration
		})
		return dur
	}
	hdfs := run(cluster.ModeHDFS)
	ign := run(cluster.ModeIgnem)
	if ign >= hdfs {
		t.Errorf("Ignem query %v not faster than HDFS %v", ign, hdfs)
	}
}

func TestTablePathsCoverInput(t *testing.T) {
	h := hive.New(nil, false)
	q := hive.Query{Name: "q1", InputBytes: (2 << 30) + 5}
	paths := h.TablePaths(q)
	if len(paths) != 3 {
		t.Errorf("paths = %v", paths)
	}
}

func TestQueryStagesChainOutputs(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		c, err := cluster.Start(v, cluster.Config{Nodes: 4, Mode: cluster.ModeHDFS, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		h := hive.New(c.Engine, false)
		cl, _ := c.Client()
		defer cl.Close()
		q := hive.Query{Name: "chain", InputBytes: 256 << 20, Selectivity: 0.2, Stages: 3, MapRateMBps: 500}
		if err := h.SetupTables(cl, []hive.Query{q}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.RunQuery(q, "r"); err != nil {
			t.Fatal(err)
		}
		// Each stage but the last left its output parts in the DFS.
		for stage := 0; stage < q.Stages-1; stage++ {
			files, err := cl.List(fmt.Sprintf("/tmp/hive/chain-r/stage-%d/", stage))
			if err != nil || len(files) == 0 {
				t.Errorf("stage %d output missing (err %v)", stage, err)
			}
		}
	})
}
