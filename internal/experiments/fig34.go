package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gtrace"
	"repro/internal/metrics"
)

// TraceResult holds the §II motivation analysis on the synthesized
// Google-style trace (Figs 3 and 4).
type TraceResult struct {
	Trace *gtrace.Trace
	// Ratios is read-time/lead-time per job.
	Ratios *metrics.Series
	// FracSufficient is the fraction of jobs whose lead-time covers
	// their whole read-time (paper: 81%).
	FracSufficient float64
	LeadMean       time.Duration
	LeadMedian     time.Duration
	// DayMeanUtil is the mean disk utilization over the analyzed day
	// (paper: 3.1%); MonthMeanUtil over the month (paper: 1.3%).
	DayMeanUtil   float64
	MonthMeanUtil float64
	// ServerUtil is the per-server 5-minute-window utilization.
	ServerUtil [][]float64
}

// RunTraceAnalysis synthesizes the trace and reproduces Figs 3 and 4.
func RunTraceAnalysis(cfg gtrace.Config) *TraceResult {
	tr := gtrace.Generate(cfg)
	ratios, frac := tr.LeadTimeSufficiency()
	mean, median := tr.LeadTimeStats()
	day := tr.MeanUtilization(5 * time.Minute)
	_, month := gtrace.MonthProfile(cfg.Seed+1, day)
	return &TraceResult{
		Trace:          tr,
		Ratios:         ratios,
		FracSufficient: frac,
		LeadMean:       mean,
		LeadMedian:     median,
		DayMeanUtil:    day,
		MonthMeanUtil:  month,
		ServerUtil:     tr.ServerUtilization(5 * time.Minute),
	}
}

// RenderFig3 prints the lead-time sufficiency CDF (paper: 81% of jobs).
func (r *TraceResult) RenderFig3() string {
	var b strings.Builder
	b.WriteString(header("Fig 3 — is lead-time sufficient for migration?"))
	fmt.Fprintf(&b, "job lead-time: mean %.1fs (paper 8.8s), median %.1fs (paper 1.8s)\n",
		r.LeadMean.Seconds(), r.LeadMedian.Seconds())
	b.WriteString(metrics.RenderCDF("CDF of read-time / lead-time", 11,
		map[string]*metrics.Series{"ratio": r.Ratios}))
	fmt.Fprintf(&b, "lead-time >= read-time for %.0f%% of jobs (paper: 81%%)\n", r.FracSufficient*100)
	return b.String()
}

// RenderFig4 prints the disk-utilization view (paper: 40-server mean
// <=5% at all times; day mean 3.1%; month mean 1.3%).
func (r *TraceResult) RenderFig4() string {
	var b strings.Builder
	b.WriteString(header("Fig 4 — disk bandwidth utilization"))
	// Mean across servers per window (the paper's 40-server mean line).
	nWin := len(r.ServerUtil[0])
	peak := 0.0
	var meanLine []float64
	for w := 0; w < nWin; w++ {
		sum := 0.0
		for s := range r.ServerUtil {
			sum += r.ServerUtil[s][w]
		}
		m := sum / float64(len(r.ServerUtil))
		meanLine = append(meanLine, m)
		if m > peak {
			peak = m
		}
	}
	// Print a coarse timeline (every ~2 hours).
	step := nWin / 12
	if step < 1 {
		step = 1
	}
	for w := 0; w < nWin; w += step {
		bar := strings.Repeat("#", int(meanLine[w]*400))
		fmt.Fprintf(&b, "t=%5.1fh mean util %5.2f%% %s\n",
			float64(w)*5/60, meanLine[w]*100, bar)
	}
	fmt.Fprintf(&b, "peak of %d-server mean: %.1f%% (paper: <=5%% at all times)\n", len(r.ServerUtil), peak*100)
	fmt.Fprintf(&b, "day mean %.1f%% (paper 3.1%%); month mean %.1f%% (paper 1.3%%)\n",
		r.DayMeanUtil*100, r.MonthMeanUtil*100)
	return b.String()
}

// Render prints both figures.
func (r *TraceResult) Render() string {
	return r.RenderFig3() + "\n" + r.RenderFig4()
}
