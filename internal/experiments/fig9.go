package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/hive"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// HiveConfig controls the Fig 9 TPC-DS query experiment.
type HiveConfig struct {
	// Queries defaults to the full catalog; benchmarks may subset.
	Queries []hive.Query
	Nodes   int
	Seed    int64
	// Trials averages each query's duration over several runs
	// (default 3) to damp heartbeat-phase noise.
	Trials int
}

func (c *HiveConfig) setDefaults() {
	if len(c.Queries) == 0 {
		c.Queries = hive.Catalog()
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
}

// HiveResult maps configuration -> query name -> duration.
type HiveResult struct {
	Config    HiveConfig
	Durations map[cluster.Mode]map[string]time.Duration
}

// RunHive reproduces Fig 9: the TPC-DS query catalog under HDFS, Ignem
// and inputs-in-RAM. Each configuration gets a fresh cluster with all
// warehouse tables loaded.
func RunHive(cfg HiveConfig) (*HiveResult, error) {
	cfg.setDefaults()
	res := &HiveResult{Config: cfg, Durations: make(map[cluster.Mode]map[string]time.Duration)}
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		res.Durations[mode] = make(map[string]time.Duration)
		ccfg := cluster.Config{Nodes: cfg.Nodes, Mode: mode, Seed: cfg.Seed}
		mode := mode
		err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
			h := hive.New(c.Engine, c.UseIgnem())
			cl, err := c.Client()
			if err != nil {
				return err
			}
			defer cl.Close()
			if err := h.SetupTables(cl, cfg.Queries); err != nil {
				return err
			}
			for trial := 0; trial < cfg.Trials; trial++ {
				for qi, q := range cfg.Queries {
					// Decorrelate each run from the scheduler heartbeat
					// phase, as real back-to-back query runs would be.
					v.Sleep(time.Duration(300+700*trial+137*qi) * time.Millisecond)
					qr, err := h.RunQuery(q, fmt.Sprintf("%s-t%d", mode, trial))
					if err != nil {
						return fmt.Errorf("query %s: %w", q.Name, err)
					}
					res.Durations[mode][q.Name] += qr.Duration / time.Duration(cfg.Trials)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("hive %s: %w", mode, err)
		}
	}
	return res, nil
}

// Render prints Fig 9: query durations per configuration plus input
// sizes, queries sorted by input size (paper: up to 34% for q3, 20%
// mean; the big-input queries q82/q25/q29 gain less).
func (r *HiveResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Fig 9 — Hive TPC-DS query durations"))
	t := metrics.Table{
		Caption: "(a) query durations (s) and Ignem speedup vs HDFS",
		Header:  []string{"query", "HDFS", "Ignem", "RAM", "Ignem speedup"},
	}
	var sum, n float64
	for _, q := range r.Config.Queries {
		hd := r.Durations[cluster.ModeHDFS][q.Name].Seconds()
		ig := r.Durations[cluster.ModeIgnem][q.Name].Seconds()
		ram := r.Durations[cluster.ModeInputsInRAM][q.Name].Seconds()
		sp := speedup(hd, ig)
		if hd > 0 {
			sum += (1 - ig/hd) * 100
			n++
		}
		t.AddRow(q.Name, fmt.Sprintf("%.0f", hd), fmt.Sprintf("%.0f", ig), fmt.Sprintf("%.0f", ram), sp)
	}
	b.WriteString(t.String())
	if n > 0 {
		fmt.Fprintf(&b, "mean Ignem speedup: %.0f%% (paper: 20%%, max 34%%)\n", sum/n)
	}
	var entries []metrics.BarEntry
	for _, q := range r.Config.Queries {
		entries = append(entries, metrics.BarEntry{Label: q.Name, Value: float64(q.InputBytes) / float64(1<<30)})
	}
	b.WriteString(metrics.BarChart("(b) query input size", "GB", entries))
	return b.String()
}
