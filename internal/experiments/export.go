package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// DataWriter is implemented by experiment results that can export their
// raw series as CSV files for external plotting.
type DataWriter interface {
	// WriteData writes one or more tidy CSV files into dir and returns
	// the paths written.
	WriteData(dir string) ([]string, error)
}

var (
	_ DataWriter = (*MediaResult)(nil)
	_ DataWriter = (*TraceResult)(nil)
	_ DataWriter = (*SwimResult)(nil)
	_ DataWriter = (*SortResult)(nil)
	_ DataWriter = (*WordcountResult)(nil)
	_ DataWriter = (*HiveResult)(nil)
)

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// seriesRows renders a per-sample series as (label, value) rows.
func seriesRows(header string, labelled map[string]*metrics.Series) [][]string {
	rows := [][]string{{"series", header}}
	labels := make([]string, 0, len(labelled))
	for l := range labelled {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, v := range labelled[l].Values() {
			rows = append(rows, []string{l, fmt.Sprintf("%g", v)})
		}
	}
	return rows
}

// WriteData exports Fig 1 block reads and Fig 2 task runtimes.
func (r *MediaResult) WriteData(dir string) ([]string, error) {
	p1, err := writeCSV(dir, "fig1_block_reads.csv", seriesRows("read_seconds",
		map[string]*metrics.Series{
			"hdd": r.BlockReads["hdd"], "ssd": r.BlockReads["ssd"], "ram": r.BlockReads["ram"],
		}))
	if err != nil {
		return nil, err
	}
	p2, err := writeCSV(dir, "fig2_task_runtimes.csv", seriesRows("task_seconds",
		map[string]*metrics.Series{
			"hdd": r.TaskDurations["hdd"], "ssd": r.TaskDurations["ssd"], "ram": r.TaskDurations["ram"],
		}))
	if err != nil {
		return nil, err
	}
	return []string{p1, p2}, nil
}

// WriteData exports the Fig 3 ratio samples and Fig 4 utilization grid.
func (r *TraceResult) WriteData(dir string) ([]string, error) {
	p1, err := writeCSV(dir, "fig3_read_over_lead.csv",
		seriesRows("ratio", map[string]*metrics.Series{"ratio": r.Ratios}))
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"server", "window", "utilization"}}
	for s, series := range r.ServerUtil {
		for w, u := range series {
			rows = append(rows, []string{
				fmt.Sprint(s), fmt.Sprint(w), fmt.Sprintf("%g", u),
			})
		}
	}
	p2, err := writeCSV(dir, "fig4_server_utilization.csv", rows)
	if err != nil {
		return nil, err
	}
	return []string{p1, p2}, nil
}

// WriteData exports the SWIM job/task/block series and the Fig 7 memory
// samples.
func (r *SwimResult) WriteData(dir string) ([]string, error) {
	var paths []string
	jobs := map[string]*metrics.Series{}
	tasks := map[string]*metrics.Series{}
	reads := map[string]*metrics.Series{}
	for mode, mr := range r.Modes {
		jobs[mode.String()] = mr.JobDurations
		tasks[mode.String()] = mr.TaskDurations
		reads[mode.String()] = mr.BlockReads
	}
	if r.FIFOJobDurations != nil {
		jobs["Ignem-FIFO"] = r.FIFOJobDurations
	}
	for name, data := range map[string]map[string]*metrics.Series{
		"table1_job_durations.csv":  jobs,
		"table2_task_durations.csv": tasks,
		"fig6_block_reads.csv":      reads,
		"fig7_memory.csv": {
			"ignem":        r.Modes[cluster.ModeIgnem].MemoryPerServer,
			"hypothetical": r.HypotheticalMemory,
		},
	} {
		p, err := writeCSV(dir, name, seriesRows("seconds_or_bytes", data))
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// WriteData exports the sort durations.
func (r *SortResult) WriteData(dir string) ([]string, error) {
	rows := [][]string{{"config", "seconds"}}
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		rows = append(rows, []string{mode.String(), fmt.Sprintf("%g", r.Durations[mode].Seconds())})
	}
	p, err := writeCSV(dir, "table3_sort.csv", rows)
	if err != nil {
		return nil, err
	}
	return []string{p}, nil
}

// WriteData exports the Fig 8 sweep matrix.
func (r *WordcountResult) WriteData(dir string) ([]string, error) {
	rows := [][]string{{"config", "input_gb", "seconds"}}
	for _, label := range WordcountLabels {
		for _, sz := range r.Config.SizesGB {
			rows = append(rows, []string{
				label, fmt.Sprint(sz), fmt.Sprintf("%g", r.Durations[label][sz].Seconds()),
			})
		}
	}
	p, err := writeCSV(dir, "fig8_wordcount.csv", rows)
	if err != nil {
		return nil, err
	}
	return []string{p}, nil
}

// WriteData exports the Fig 9 query durations and input sizes.
func (r *HiveResult) WriteData(dir string) ([]string, error) {
	rows := [][]string{{"query", "input_gb", "config", "seconds"}}
	for _, q := range r.Config.Queries {
		for mode, durs := range r.Durations {
			rows = append(rows, []string{
				q.Name,
				fmt.Sprintf("%g", float64(q.InputBytes)/float64(1<<30)),
				mode.String(),
				fmt.Sprintf("%g", durs[q.Name].Seconds()),
			})
		}
	}
	p, err := writeCSV(dir, "fig9_hive.csv", rows)
	if err != nil {
		return nil, err
	}
	return []string{p}, nil
}
