package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// SortConfig controls the Table III standalone sort experiment.
type SortConfig struct {
	// InputBytes defaults to the paper's 40 GB of random text.
	InputBytes int64
	Nodes      int
	Seed       int64
	// Throttle enables the Aqueduct-style adaptive migration throttle
	// on the Ignem slaves (an extension ablation; the paper's Ignem is
	// work-conserving).
	Throttle bool
}

func (c *SortConfig) setDefaults() {
	if c.InputBytes <= 0 {
		c.InputBytes = 40 << 30
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
}

// SortResult holds the per-configuration sort durations.
type SortResult struct {
	Config    SortConfig
	Durations map[cluster.Mode]time.Duration
}

// RunSort reproduces Table III: a 40 GB sort under the three
// configurations. Sort shuffles its whole input and writes it all back.
func RunSort(cfg SortConfig) (*SortResult, error) {
	cfg.setDefaults()
	res := &SortResult{Config: cfg, Durations: make(map[cluster.Mode]time.Duration)}
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		ccfg := cluster.Config{
			Nodes: cfg.Nodes, Mode: mode, Seed: cfg.Seed,
			Slave: ignem.SlaveConfig{AdaptiveThrottle: cfg.Throttle},
		}
		err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
			cl, err := c.Client()
			if err != nil {
				return err
			}
			defer cl.Close()
			if err := cl.WriteSyntheticFile("/sort/input", cfg.InputBytes, 0, dfs.DefaultReplication); err != nil {
				return err
			}
			r, err := c.Engine.Run(mapreduce.Config{
				ID:             "sort",
				InputPaths:     []string{"/sort/input"},
				MapRateMBps:    400, // record parsing + partitioning
				ShuffleBytes:   cfg.InputBytes,
				OutputBytes:    cfg.InputBytes,
				Reducers:       cfg.Nodes * 2,
				ReduceRateMBps: 100, // external merge sort + replicated write-back
				UseIgnem:       c.UseIgnem(),
			})
			if err != nil {
				return err
			}
			res.Durations[mode] = r.Duration
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("sort %s: %w", mode, err)
		}
	}
	return res, nil
}

// Render prints Table III (paper: HDFS 147s; Ignem 114s, 22%; RAM 75s,
// 49%).
func (r *SortResult) Render() string {
	t := metrics.Table{
		Caption: "TABLE III: sort of " + gb(r.Config.InputBytes) + " (paper: 147s / 114s (22%) / 75s (49%))",
		Header:  []string{"config", "duration (s)", "speedup w.r.t HDFS"},
	}
	base := r.Durations[cluster.ModeHDFS].Seconds()
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		d := r.Durations[mode].Seconds()
		t.AddRow(mode.String(), fmt.Sprintf("%.0f", d), speedup(base, d))
	}
	return header("Table III — sort workload") + t.String()
}

// WordcountConfig controls the Fig 8 input-size sweep.
type WordcountConfig struct {
	// SizesGB defaults to the paper's 1-12 GB sweep.
	SizesGB []int
	Nodes   int
	Seed    int64
	// ExtraLeadTime is the inserted delay of the Ignem+10s line.
	ExtraLeadTime time.Duration
}

func (c *WordcountConfig) setDefaults() {
	if len(c.SizesGB) == 0 {
		// The paper sweeps 1-12 GB; we extend to 24 GB because our
		// migration path is ~4x faster than the authors' testbed, which
		// shifts the Ignem+10s crossover right (the paper itself notes
		// the inflection depends on disk bandwidth and lead-time).
		c.SizesGB = []int{1, 2, 4, 8, 12, 16, 24}
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.ExtraLeadTime <= 0 {
		c.ExtraLeadTime = 10 * time.Second
	}
}

// WordcountResult maps config label -> input GB -> duration.
type WordcountResult struct {
	Config    WordcountConfig
	Durations map[string]map[int]time.Duration
}

// WordcountLabels are the Fig 8 series in plot order.
var WordcountLabels = []string{"HDFS", "Ignem", "Ignem+10s", "HDFS-Inputs-in-RAM"}

// RunWordcount reproduces Fig 8: wordcount at several input sizes under
// HDFS, Ignem, Ignem with 10s of inserted lead-time, and inputs-in-RAM.
func RunWordcount(cfg WordcountConfig) (*WordcountResult, error) {
	cfg.setDefaults()
	res := &WordcountResult{Config: cfg, Durations: make(map[string]map[int]time.Duration)}
	type variant struct {
		label string
		mode  cluster.Mode
		extra time.Duration
	}
	variants := []variant{
		{"HDFS", cluster.ModeHDFS, 0},
		{"Ignem", cluster.ModeIgnem, 0},
		{"Ignem+10s", cluster.ModeIgnem, cfg.ExtraLeadTime},
		{"HDFS-Inputs-in-RAM", cluster.ModeInputsInRAM, 0},
	}
	for _, va := range variants {
		res.Durations[va.label] = make(map[int]time.Duration)
		for _, szGB := range cfg.SizesGB {
			size := int64(szGB) << 30
			ccfg := cluster.Config{Nodes: cfg.Nodes, Mode: va.mode, Seed: cfg.Seed}
			err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
				cl, err := c.Client()
				if err != nil {
					return err
				}
				defer cl.Close()
				if err := cl.WriteSyntheticFile("/wc/input", size, 0, dfs.DefaultReplication); err != nil {
					return err
				}
				r, err := c.Engine.Run(mapreduce.Config{
					ID:            "wordcount",
					InputPaths:    []string{"/wc/input"},
					MapRateMBps:   250, // tokenizing is compute-heavy
					ShuffleBytes:  size / 20,
					OutputBytes:   size / 50,
					UseIgnem:      c.UseIgnem(),
					ExtraLeadTime: va.extra,
				})
				if err != nil {
					return err
				}
				res.Durations[va.label][szGB] = r.Duration
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("wordcount %s %dGB: %w", va.label, szGB, err)
			}
		}
	}
	return res, nil
}

// Render prints Fig 8 as relative durations versus HDFS (paper: Ignem
// matches RAM up to 2 GB; Ignem+10s overtakes plain Ignem by 4 GB).
func (r *WordcountResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Fig 8 — wordcount duration vs input size (relative to HDFS)"))
	fmt.Fprintf(&b, "%-20s", "config \\ GB")
	for _, sz := range r.Config.SizesGB {
		fmt.Fprintf(&b, "%8d", sz)
	}
	b.WriteByte('\n')
	for _, label := range WordcountLabels {
		fmt.Fprintf(&b, "%-20s", label)
		for _, sz := range r.Config.SizesGB {
			base := r.Durations["HDFS"][sz]
			if base <= 0 {
				fmt.Fprintf(&b, "%8s", "-")
				continue
			}
			fmt.Fprintf(&b, "%8.2f", float64(r.Durations[label][sz])/float64(base))
		}
		b.WriteByte('\n')
	}
	b.WriteString("absolute durations (s):\n")
	for _, label := range WordcountLabels {
		fmt.Fprintf(&b, "%-20s", label)
		for _, sz := range r.Config.SizesGB {
			fmt.Fprintf(&b, "%8.1f", r.Durations[label][sz].Seconds())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
