package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gtrace"
	"repro/internal/hive"
)

// The tests here run every experiment at reduced scale and assert the
// paper's qualitative shapes — the full-scale numbers live in the
// benchmarks (bench_test.go) and EXPERIMENTS.md.

func TestMediaExperimentShape(t *testing.T) {
	r, err := RunMedia(MediaConfig{Nodes: 4, BlocksPerNode: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hdd := r.BlockReads["hdd"].Mean()
	ssd := r.BlockReads["ssd"].Mean()
	ram := r.BlockReads["ram"].Mean()
	if !(ram < ssd && ssd < hdd) {
		t.Errorf("ordering violated: hdd=%v ssd=%v ram=%v", hdd, ssd, ram)
	}
	if hdd/ram < 30 {
		t.Errorf("hdd/ram = %.0fx, want large factor", hdd/ram)
	}
	if r.TaskDurations["hdd"].Mean()/r.TaskDurations["ram"].Mean() < 5 {
		t.Error("task-level speedup too small")
	}
	out := r.Render()
	for _, want := range []string{"Fig 1", "Fig 2", "hdd", "ram"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTraceAnalysisShape(t *testing.T) {
	r := RunTraceAnalysis(gtrace.Config{Servers: 10, Duration: 2 * time.Hour, Seed: 2})
	if r.FracSufficient < 0.7 || r.FracSufficient > 0.92 {
		t.Errorf("sufficiency = %.2f, want ~0.81", r.FracSufficient)
	}
	if r.DayMeanUtil > 0.08 {
		t.Errorf("day util = %.3f, want low residual utilization", r.DayMeanUtil)
	}
	if r.MonthMeanUtil >= r.DayMeanUtil {
		t.Error("month mean should be below the analyzed (busy) day")
	}
	out := r.Render()
	for _, want := range []string{"Fig 3", "Fig 4", "lead-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSwimExperimentShape(t *testing.T) {
	r, err := RunSwim(SwimConfig{
		Jobs:       30,
		TotalBytes: 6 << 30,
		Nodes:      4,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hdfs := r.Modes[cluster.ModeHDFS]
	ignem := r.Modes[cluster.ModeIgnem]
	ram := r.Modes[cluster.ModeInputsInRAM]

	if hdfs.JobDurations.Len() != 30 || ignem.JobDurations.Len() != 30 {
		t.Fatalf("job counts: hdfs=%d ignem=%d", hdfs.JobDurations.Len(), ignem.JobDurations.Len())
	}
	// The paper's ordering: RAM <= Ignem <= HDFS on means.
	if !(ram.JobDurations.Mean() < ignem.JobDurations.Mean() &&
		ignem.JobDurations.Mean() < hdfs.JobDurations.Mean()) {
		t.Errorf("mean ordering violated: hdfs=%.1f ignem=%.1f ram=%.1f",
			hdfs.JobDurations.Mean(), ignem.JobDurations.Mean(), ram.JobDurations.Mean())
	}
	// Task-level gains exceed job-level gains (paper §IV-C3).
	jobGain := 1 - ignem.JobDurations.Mean()/hdfs.JobDurations.Mean()
	taskGain := 1 - ignem.TaskDurations.Mean()/hdfs.TaskDurations.Mean()
	if taskGain <= jobGain {
		t.Errorf("task gain %.2f not above job gain %.2f", taskGain, jobGain)
	}
	// Ignem migrated something and served reads from memory.
	if ignem.MemoryFromReads <= 0.05 {
		t.Errorf("memory-read fraction = %.2f", ignem.MemoryFromReads)
	}
	// No pinned memory survives the workload (implicit evict + job evict).
	if ignem.Slave.PinnedBytes != 0 {
		t.Errorf("leaked %d pinned bytes", ignem.Slave.PinnedBytes)
	}
	// The hypothetical scheme holds at least as much memory as Ignem.
	if r.HypotheticalMemory.Mean() < ignem.MemoryPerServer.Mean() {
		t.Errorf("hypothetical %.0f below Ignem %.0f",
			r.HypotheticalMemory.Mean(), ignem.MemoryPerServer.Mean())
	}
	for _, render := range []string{
		r.RenderTable1(), r.RenderFig5(), r.RenderTable2(),
		r.RenderFig6(), r.RenderFig7(), r.RenderAblation(),
	} {
		if render == "" {
			t.Error("empty render")
		}
	}
}

func TestSortExperimentShape(t *testing.T) {
	r, err := RunSort(SortConfig{InputBytes: 4 << 30, Nodes: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	hdfs := r.Durations[cluster.ModeHDFS]
	ignem := r.Durations[cluster.ModeIgnem]
	ram := r.Durations[cluster.ModeInputsInRAM]
	if !(ram < ignem && ignem < hdfs) {
		t.Errorf("ordering violated: hdfs=%v ignem=%v ram=%v", hdfs, ignem, ram)
	}
	if !strings.Contains(r.Render(), "TABLE III") {
		t.Error("render missing caption")
	}
}

func TestWordcountExperimentShape(t *testing.T) {
	r, err := RunWordcount(WordcountConfig{SizesGB: []int{1, 4}, Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sz := range []int{1, 4} {
		hdfs := r.Durations["HDFS"][sz]
		ignem := r.Durations["Ignem"][sz]
		ram := r.Durations["HDFS-Inputs-in-RAM"][sz]
		if ignem >= hdfs {
			t.Errorf("%dGB: Ignem %v not under HDFS %v", sz, ignem, hdfs)
		}
		if ram > ignem {
			t.Errorf("%dGB: RAM %v above Ignem %v", sz, ram, ignem)
		}
	}
	// The inserted 10s hurts at 1 GB (paper: Ignem+10s is ~20% worse
	// than HDFS there).
	if r.Durations["Ignem+10s"][1] <= r.Durations["HDFS"][1] {
		t.Error("Ignem+10s should lose at 1 GB")
	}
	if !strings.Contains(r.Render(), "Fig 8") {
		t.Error("render missing caption")
	}
}

func TestHiveExperimentShape(t *testing.T) {
	queries := hive.Catalog()[:2]
	// Shrink the catalog inputs for a quick test.
	for i := range queries {
		queries[i].InputBytes /= 2
	}
	r, err := RunHive(HiveConfig{Queries: queries, Nodes: 4, Seed: 6, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if r.Durations[cluster.ModeHDFS][q.Name] <= 0 {
			t.Errorf("query %s missing HDFS duration", q.Name)
		}
		if r.Durations[cluster.ModeIgnem][q.Name] > r.Durations[cluster.ModeHDFS][q.Name] {
			t.Errorf("query %s: Ignem slower than HDFS", q.Name)
		}
	}
	if !strings.Contains(r.Render(), "Fig 9") {
		t.Error("render missing caption")
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range All() {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Errorf("incomplete spec: %+v", s)
		}
		if ids[s.ID] {
			t.Errorf("duplicate ID %s", s.ID)
		}
		ids[s.ID] = true
	}
	// Every paper artifact is reachable through some experiment.
	for _, want := range []string{"fig1-2", "fig3-4", "swim", "table3", "fig8", "fig9"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if _, ok := Find("fig8"); !ok {
		t.Error("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find matched a bogus ID")
	}
}

func TestSwimFromTraceFile(t *testing.T) {
	trace := `# name arrival_ms input shuffle output
j0 0 134217728 0 1048576
j1 4000 67108864 33554432 8388608
j2 9000 268435456 0 2097152
`
	path := filepath.Join(t.TempDir(), "trace.tsv")
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := RunSwim(SwimConfig{
		TraceFile: path,
		Nodes:     3,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for mode, mr := range r.Modes {
		if mr.JobDurations.Len() != 3 {
			t.Errorf("%s ran %d jobs, want 3", mode, mr.JobDurations.Len())
		}
	}
}

func TestSwimTraceFileMissing(t *testing.T) {
	if _, err := RunSwim(SwimConfig{TraceFile: "/no/such/file"}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestSortThrottleAblation(t *testing.T) {
	plain, err := RunSort(SortConfig{InputBytes: 2 << 30, Nodes: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := RunSort(SortConfig{InputBytes: 2 << 30, Nodes: 4, Seed: 4, Throttle: true})
	if err != nil {
		t.Fatal(err)
	}
	// The throttle must not break correctness; both orderings hold.
	for _, r := range []*SortResult{plain, throttled} {
		if r.Durations[cluster.ModeInputsInRAM] >= r.Durations[cluster.ModeHDFS] {
			t.Error("RAM bound violated")
		}
	}
	// Throttled migration defers to foreground reads, so the Ignem run
	// migrates less and cannot be meaningfully faster than unthrottled.
	if throttled.Durations[cluster.ModeIgnem] < plain.Durations[cluster.ModeIgnem]-2*time.Second {
		t.Errorf("throttled %v unexpectedly beats work-conserving %v",
			throttled.Durations[cluster.ModeIgnem], plain.Durations[cluster.ModeIgnem])
	}
}

func TestMediaSensitivityShape(t *testing.T) {
	r, err := RunMediaSensitivity(MediaSensitivityConfig{InputBytes: 2 << 30, Nodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// On HDD the ordering is strict; on SSD the job is nearly
	// compute-bound, so Ignem must only not hurt (within 5% noise).
	hddD := r.Durations["hdd"]
	if !(hddD[cluster.ModeInputsInRAM] <= hddD[cluster.ModeIgnem] &&
		hddD[cluster.ModeIgnem] < hddD[cluster.ModeHDFS]) {
		t.Errorf("hdd ordering violated: %v", hddD)
	}
	ssdD := r.Durations["ssd"]
	if float64(ssdD[cluster.ModeIgnem]) > 1.05*float64(ssdD[cluster.ModeHDFS]) {
		t.Errorf("ssd: Ignem hurts: %v", ssdD)
	}
	// SSD is a faster baseline, so the absolute gap shrinks but the
	// ordering holds (the paper's §II-B point).
	hddGap := r.Durations["hdd"][cluster.ModeHDFS] - r.Durations["hdd"][cluster.ModeIgnem]
	ssdGap := r.Durations["ssd"][cluster.ModeHDFS] - r.Durations["ssd"][cluster.ModeIgnem]
	if ssdGap > hddGap {
		t.Errorf("SSD gap %v exceeds HDD gap %v", ssdGap, hddGap)
	}
	if !strings.Contains(r.Render(), "SSD") {
		t.Error("render missing caption")
	}
}

func TestWriteDataExportsCSV(t *testing.T) {
	dir := t.TempDir()
	r, err := RunSort(SortConfig{InputBytes: 1 << 30, Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := r.WriteData(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || lines[0] != "config,seconds" {
		t.Errorf("csv:\n%s", data)
	}

	tr := RunTraceAnalysis(gtrace.Config{Servers: 4, Duration: time.Hour, Seed: 2})
	paths, err = tr.WriteData(dir)
	if err != nil || len(paths) != 2 {
		t.Fatalf("trace export: %v %v", paths, err)
	}
	m, err := RunMedia(MediaConfig{Nodes: 2, BlocksPerNode: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if paths, err = m.WriteData(dir); err != nil || len(paths) != 2 {
		t.Fatalf("media export: %v %v", paths, err)
	}
	w, err := RunWordcount(WordcountConfig{SizesGB: []int{1}, Nodes: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if paths, err = w.WriteData(dir); err != nil || len(paths) != 1 {
		t.Fatalf("wordcount export: %v %v", paths, err)
	}
}

func TestBaselineShape(t *testing.T) {
	r, err := RunBaseline(BaselineConfig{
		Nodes:          4,
		Seed:           10,
		SinglyReadJobs: 4,
		JobInputBytes:  256 << 20,
		Iterations:     3,
		IterInputBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// (a) Hot caching is useless for singly-read inputs (within 3%);
	// Ignem is not.
	hdfs := r.SinglyRead[cluster.ModeHDFS]
	hot := r.SinglyRead[cluster.ModeHotCache]
	ign := r.SinglyRead[cluster.ModeIgnem]
	if float64(hot) < 0.97*float64(hdfs) {
		t.Errorf("hot cache helped singly-read data: %v vs %v", hot, hdfs)
	}
	if ign >= hdfs {
		t.Errorf("Ignem did not help singly-read data: %v vs %v", ign, hdfs)
	}
	// (b) Only Ignem fixes the iterative job's cold first pass; both
	// beat HDFS on later passes.
	if r.IterFirst[cluster.ModeIgnem] >= r.IterFirst[cluster.ModeHotCache] {
		t.Errorf("Ignem 1st pass %v not under hot-cache 1st pass %v",
			r.IterFirst[cluster.ModeIgnem], r.IterFirst[cluster.ModeHotCache])
	}
	if r.IterLater[cluster.ModeHotCache] >= r.IterLater[cluster.ModeHDFS] {
		t.Error("hot cache did not help later passes")
	}
	if r.IterLater[cluster.ModeIgnem] >= r.IterLater[cluster.ModeHDFS] {
		t.Error("Ignem did not help later passes")
	}
	if !strings.Contains(r.Render(), "Baseline") {
		t.Error("render missing caption")
	}
}
