package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// BaselineConfig controls the hot-cache baseline comparison (the paper's
// §I and §V argument): reactive hot-data caching (PACMan / Triple-H
// class) accelerates repeatedly read data but can never help cold,
// singly-read inputs — only proactive migration can.
type BaselineConfig struct {
	Nodes int
	Seed  int64
	// SinglyReadJobs each read their own cold input exactly once.
	SinglyReadJobs int
	// JobInputBytes sizes each singly-read input. Default 512 MB.
	JobInputBytes int64
	// Iterations is the iterative job's pass count over one shared
	// input (the paper's Spark/ML scenario). Default 5.
	Iterations int
	// IterInputBytes sizes the iterative input. Default 4 GB.
	IterInputBytes int64
}

func (c *BaselineConfig) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.SinglyReadJobs <= 0 {
		c.SinglyReadJobs = 10
	}
	if c.JobInputBytes <= 0 {
		c.JobInputBytes = 512 << 20
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.IterInputBytes <= 0 {
		c.IterInputBytes = 4 << 30
	}
}

// BaselineResult holds both workloads' durations per configuration.
type BaselineResult struct {
	Config BaselineConfig
	// SinglyRead is the mean job duration of the singly-read workload.
	SinglyRead map[cluster.Mode]time.Duration
	// IterFirst and IterLater are the first-iteration and mean
	// later-iteration durations of the iterative workload.
	IterFirst map[cluster.Mode]time.Duration
	IterLater map[cluster.Mode]time.Duration
}

var baselineModes = []cluster.Mode{cluster.ModeHDFS, cluster.ModeHotCache, cluster.ModeIgnem}

// RunBaseline runs both workloads under HDFS, the hot-cache baseline,
// and Ignem.
func RunBaseline(cfg BaselineConfig) (*BaselineResult, error) {
	cfg.setDefaults()
	res := &BaselineResult{
		Config:     cfg,
		SinglyRead: make(map[cluster.Mode]time.Duration),
		IterFirst:  make(map[cluster.Mode]time.Duration),
		IterLater:  make(map[cluster.Mode]time.Duration),
	}
	for _, mode := range baselineModes {
		mode := mode
		ccfg := cluster.Config{Nodes: cfg.Nodes, Mode: mode, Seed: cfg.Seed}
		err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
			cl, err := c.Client()
			if err != nil {
				return err
			}
			defer cl.Close()

			// Workload 1: cold, singly-read inputs (fresh logs).
			var durs metrics.Series
			for i := 0; i < cfg.SinglyReadJobs; i++ {
				path := fmt.Sprintf("/once/%d", i)
				if err := cl.WriteSyntheticFile(path, cfg.JobInputBytes, 0, dfs.DefaultReplication); err != nil {
					return err
				}
				r, err := c.Engine.Run(mapreduce.Config{
					ID:            dfs.JobID(fmt.Sprintf("once-%d", i)),
					InputPaths:    []string{path},
					MapRateMBps:   800,
					UseIgnem:      c.UseIgnem(),
					ImplicitEvict: true,
				})
				if err != nil {
					return err
				}
				durs.AddDuration(r.Duration)
			}
			res.SinglyRead[mode] = time.Duration(durs.Mean() * float64(time.Second))

			// Workload 2: the iterative (ML-style) job re-reading one
			// input each pass.
			if err := cl.WriteSyntheticFile("/iter/input", cfg.IterInputBytes, 0, dfs.DefaultReplication); err != nil {
				return err
			}
			var later metrics.Series
			for it := 0; it < cfg.Iterations; it++ {
				jcfg := mapreduce.Config{
					ID:          dfs.JobID(fmt.Sprintf("iter-%d", it)),
					InputPaths:  []string{"/iter/input"},
					MapRateMBps: 400,
					UseIgnem:    c.UseIgnem(),
					// An iterative application migrates on its first pass
					// and keeps the input pinned until its final pass (the
					// slave dedups re-migrations into reference-list adds).
					KeepPinned: true,
				}
				if it > 0 {
					// Later passes run inside the same warm application.
					jcfg.SubmitOverhead = -1
				}
				r, err := c.Engine.Run(jcfg)
				if err != nil {
					return err
				}
				if it == 0 {
					res.IterFirst[mode] = r.Duration
				} else {
					later.AddDuration(r.Duration)
				}
			}
			res.IterLater[mode] = time.Duration(later.Mean() * float64(time.Second))
			// The application's final act: release all iterations' pins.
			if c.UseIgnem() {
				for it := 0; it < cfg.Iterations; it++ {
					if _, err := cl.Evict(dfs.JobID(fmt.Sprintf("iter-%d", it)), []string{"/iter/input"}); err != nil {
						return err
					}
				}
				if got := c.TotalPinnedBytes(); got != 0 {
					return fmt.Errorf("iterative app leaked %d pinned bytes", got)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", mode, err)
		}
	}
	return res, nil
}

// Render prints the comparison the paper makes in prose: hot caching
// matches HDFS on singly-read data (0% help) while Ignem speeds it up;
// on iterative data both help the later passes but only Ignem also fixes
// the cold first pass.
func (r *BaselineResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Baseline — reactive hot caching vs proactive migration (§I, §V)"))
	t1 := metrics.Table{
		Caption: fmt.Sprintf("(a) %d singly-read jobs of %s each (mean duration)",
			r.Config.SinglyReadJobs, gb(r.Config.JobInputBytes)),
		Header: []string{"config", "mean job (s)", "speedup vs HDFS"},
	}
	base := r.SinglyRead[cluster.ModeHDFS].Seconds()
	for _, mode := range baselineModes {
		d := r.SinglyRead[mode].Seconds()
		t1.AddRow(mode.String(), fmt.Sprintf("%.1f", d), speedup(base, d))
	}
	b.WriteString(t1.String())

	t2 := metrics.Table{
		Caption: fmt.Sprintf("(b) iterative job, %s input x %d passes",
			gb(r.Config.IterInputBytes), r.Config.Iterations),
		Header: []string{"config", "1st pass (s)", "later passes (s)", "1st/later"},
	}
	for _, mode := range baselineModes {
		first := r.IterFirst[mode].Seconds()
		rest := r.IterLater[mode].Seconds()
		ratio := "-"
		if rest > 0 {
			ratio = fmt.Sprintf("%.1fx", first/rest)
		}
		t2.AddRow(mode.String(), fmt.Sprintf("%.1f", first), fmt.Sprintf("%.1f", rest), ratio)
	}
	b.WriteString(t2.String())
	b.WriteString("paper §I: caching cannot help singly-read inputs (PACMan's own authors\n" +
		"report 30% of tasks read singly-accessed blocks); iterative jobs see their\n" +
		"first pass inflated by cold reads (15x for LogReg) unless migrated.\n")
	return b.String()
}
