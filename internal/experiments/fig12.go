package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// MediaConfig controls the Fig 1/Fig 2 microbenchmarks: SWIM-style
// concurrent mapper reads with HDFS files stored on HDD, SSD, or RAM.
type MediaConfig struct {
	// Nodes and BlocksPerNode size the run. Defaults 8 and 10 (10
	// concurrent readers per device, the SWIM-like concurrency).
	Nodes         int
	BlocksPerNode int
	Seed          int64
}

func (c *MediaConfig) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.BlocksPerNode <= 0 {
		c.BlocksPerNode = 10
	}
}

// MediaResult holds per-medium block-read and mapper-task latencies.
type MediaResult struct {
	Config MediaConfig
	// BlockReads and TaskDurations are keyed by medium name
	// ("hdd", "ssd", "ram"), in seconds.
	BlockReads    map[string]*metrics.Series
	TaskDurations map[string]*metrics.Series
}

// RunMedia reproduces Figs 1 and 2: the same concurrent mapper workload
// against the three storage media.
func RunMedia(cfg MediaConfig) (*MediaResult, error) {
	cfg.setDefaults()
	res := &MediaResult{
		Config:        cfg,
		BlockReads:    make(map[string]*metrics.Series),
		TaskDurations: make(map[string]*metrics.Series),
	}
	type medium struct {
		name  string
		media storage.Spec
		mode  cluster.Mode
	}
	for _, m := range []medium{
		{name: "hdd", media: storage.HDDSpec(), mode: cluster.ModeHDFS},
		{name: "ssd", media: storage.SSDSpec(), mode: cluster.ModeHDFS},
		{name: "ram", media: storage.HDDSpec(), mode: cluster.ModeInputsInRAM},
	} {
		reads := &metrics.Series{}
		tasks := &metrics.Series{}
		// The paper measures these distributions under the SWIM workload,
		// where ~10 readers contend per device; let one heartbeat fill
		// all slots so the microbench reaches that concurrency.
		ccfg := cluster.Config{
			Nodes: cfg.Nodes, Media: m.media, Mode: m.mode, Seed: cfg.Seed,
			MaxAssignPerHeartbeat: 10,
		}
		err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
			cl, err := c.Client()
			if err != nil {
				return err
			}
			defer cl.Close()
			total := int64(cfg.Nodes*cfg.BlocksPerNode) * dfs.DefaultBlockSize
			if err := cl.WriteSyntheticFile("/bench/input", total, 0, dfs.DefaultReplication); err != nil {
				return err
			}
			r, err := c.Engine.Run(mapreduce.Config{
				ID:             "media-bench",
				InputPaths:     []string{"/bench/input"},
				SubmitOverhead: -1, // measure the read path, not job setup
			})
			if err != nil {
				return err
			}
			for _, ev := range r.BlockReads {
				reads.AddDuration(ev.Duration)
			}
			for _, tr := range r.MapResults {
				tasks.AddDuration(tr.RunTime)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("media %s: %w", m.name, err)
		}
		res.BlockReads[m.name] = reads
		res.TaskDurations[m.name] = tasks
	}
	return res, nil
}

// RenderFig1 prints the block-read histograms and the headline ratios
// (paper: RAM 160x faster than HDD, 7x faster than SSD).
func (r *MediaResult) RenderFig1() string {
	var b strings.Builder
	b.WriteString(header("Fig 1 — HDFS block read time by medium"))
	for _, m := range []string{"hdd", "ssd", "ram"} {
		b.WriteString(metrics.Histogram(fmt.Sprintf("(%s) block read time (s)", m), r.BlockReads[m], 8))
	}
	hdd, ssd, ram := r.BlockReads["hdd"].Mean(), r.BlockReads["ssd"].Mean(), r.BlockReads["ram"].Mean()
	if ram > 0 {
		fmt.Fprintf(&b, "mean: hdd %.2fs ssd %.3fs ram %.4fs — RAM %.0fx faster than HDD (paper 160x), %.1fx faster than SSD (paper 7x)\n",
			hdd, ssd, ram, hdd/ram, ssd/ram)
	}
	return b.String()
}

// RenderFig2 prints the mapper-task CDFs (paper: RAM mean 23x below HDD).
func (r *MediaResult) RenderFig2() string {
	var b strings.Builder
	b.WriteString(header("Fig 2 — mapper task runtime by medium"))
	labelled := map[string]*metrics.Series{}
	for name, s := range r.TaskDurations {
		labelled[name] = s
	}
	b.WriteString(metrics.RenderCDF("CDF of mapper task runtime (s)", 11, labelled))
	hdd, ram := r.TaskDurations["hdd"].Mean(), r.TaskDurations["ram"].Mean()
	if ram > 0 {
		fmt.Fprintf(&b, "mean task runtime: hdd %.2fs ram %.2fs — %.0fx (paper 23x)\n", hdd, ram, hdd/ram)
	}
	return b.String()
}

// Render prints both figures.
func (r *MediaResult) Render() string {
	return r.RenderFig1() + "\n" + r.RenderFig2()
}
