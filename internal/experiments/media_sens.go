package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// MediaSensitivityConfig controls the §II-B extension experiment: the
// paper argues that "regardless of whether cold job input data is stored
// on HDDs or SSDs, migrating the data into memory is key to maximizing
// performance". This runs the same job with the cold tier on HDD and on
// SSD under all three file-system configurations.
type MediaSensitivityConfig struct {
	// InputBytes sizes the job (default 8 GB).
	InputBytes int64
	Nodes      int
	Seed       int64
}

func (c *MediaSensitivityConfig) setDefaults() {
	if c.InputBytes <= 0 {
		c.InputBytes = 8 << 30
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
}

// MediaSensitivityResult maps medium -> mode -> duration.
type MediaSensitivityResult struct {
	Config    MediaSensitivityConfig
	Durations map[string]map[cluster.Mode]time.Duration
}

// RunMediaSensitivity runs the experiment.
func RunMediaSensitivity(cfg MediaSensitivityConfig) (*MediaSensitivityResult, error) {
	cfg.setDefaults()
	res := &MediaSensitivityResult{
		Config:    cfg,
		Durations: make(map[string]map[cluster.Mode]time.Duration),
	}
	media := []storage.Spec{storage.HDDSpec(), storage.SSDSpec()}
	for _, spec := range media {
		res.Durations[spec.Name] = make(map[cluster.Mode]time.Duration)
		for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
			ccfg := cluster.Config{Nodes: cfg.Nodes, Media: spec, Mode: mode, Seed: cfg.Seed}
			spec, mode := spec, mode
			err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
				cl, err := c.Client()
				if err != nil {
					return err
				}
				defer cl.Close()
				if err := cl.WriteSyntheticFile("/in", cfg.InputBytes, 0, dfs.DefaultReplication); err != nil {
					return err
				}
				r, err := c.Engine.Run(mapreduce.Config{
					ID:           "job",
					InputPaths:   []string{"/in"},
					MapRateMBps:  250,
					ShuffleBytes: cfg.InputBytes / 20,
					OutputBytes:  cfg.InputBytes / 50,
					UseIgnem:     c.UseIgnem(),
				})
				if err != nil {
					return err
				}
				res.Durations[spec.Name][mode] = r.Duration
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("media-sensitivity %s/%s: %w", spec.Name, mode, err)
			}
		}
	}
	return res, nil
}

// Render prints the comparison table.
func (r *MediaSensitivityResult) Render() string {
	t := metrics.Table{
		Caption: fmt.Sprintf("§II-B extension: %s job with the cold tier on HDD vs SSD", gb(r.Config.InputBytes)),
		Header:  []string{"medium", "HDFS (s)", "Ignem (s)", "RAM (s)", "Ignem speedup", "RAM speedup"},
	}
	for _, medium := range []string{"hdd", "ssd"} {
		d := r.Durations[medium]
		base := d[cluster.ModeHDFS].Seconds()
		t.AddRow(medium,
			fmt.Sprintf("%.1f", base),
			fmt.Sprintf("%.1f", d[cluster.ModeIgnem].Seconds()),
			fmt.Sprintf("%.1f", d[cluster.ModeInputsInRAM].Seconds()),
			speedup(base, d[cluster.ModeIgnem].Seconds()),
			speedup(base, d[cluster.ModeInputsInRAM].Seconds()),
		)
	}
	return header("Media sensitivity — migration helps on SSD too (§II-B)") + t.String()
}
