package experiments

import (
	"repro/internal/gtrace"
)

// Spec is a runnable experiment in the registry.
type Spec struct {
	// ID is the table/figure identifier, e.g. "fig8" or "table1".
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes the experiment at paper scale and returns the
	// rendered tables/figures plus (when available) a raw-data exporter
	// for plotting.
	Run func(seed int64) (string, DataWriter, error)
}

// All returns the registry of experiments, one entry per paper table or
// figure (grouped where one run produces several).
func All() []Spec {
	return []Spec{
		{
			ID:    "fig1-2",
			Title: "Figs 1-2: block-read and mapper-task latency on HDD/SSD/RAM",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunMedia(MediaConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), r, nil
			},
		},
		{
			ID:    "fig3-4",
			Title: "Figs 3-4: Google-trace lead-time sufficiency and disk utilization",
			Run: func(seed int64) (string, DataWriter, error) {
				r := RunTraceAnalysis(gtrace.Config{Seed: seed})
				return r.Render(), r, nil
			},
		},
		{
			ID:    "swim",
			Title: "Tables I-II, Figs 5-7, ablation: the SWIM trace-driven workload",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunSwim(SwimConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), r, nil
			},
		},
		{
			ID:    "table3",
			Title: "Table III: standalone 40 GB sort",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunSort(SortConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), r, nil
			},
		},
		{
			ID:    "fig8",
			Title: "Fig 8: wordcount input-size sweep with inserted lead-time",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunWordcount(WordcountConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), r, nil
			},
		},
		{
			ID:    "baseline",
			Title: "Baseline (§I, §V): hot-data caching vs proactive migration",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunBaseline(BaselineConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), nil, nil
			},
		},
		{
			ID:    "media",
			Title: "Extension (§II-B): the same job with cold data on HDD vs SSD",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunMediaSensitivity(MediaSensitivityConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), nil, nil
			},
		},
		{
			ID:    "fig9",
			Title: "Fig 9: Hive TPC-DS query catalog",
			Run: func(seed int64) (string, DataWriter, error) {
				r, err := RunHive(HiveConfig{Seed: seed})
				if err != nil {
					return "", nil, err
				}
				return r.Render(), r, nil
			},
		},
	}
}

// Find returns the experiment with the given ID, or false.
func Find(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
