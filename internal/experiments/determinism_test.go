package experiments

import "testing"

// TestSwimSeededRunsAreBitIdentical guards the figures against
// nondeterminism creeping into the simulation: two runs of the SWIM
// experiment with the same seed must render byte-for-byte identical
// output. The run exercises the whole write path — synthetic ingest
// populating the traces and task-output writes inside the measured
// phase — so a timing change there (e.g. writers defaulting to the
// pipelined path on the virtual clock) shows up here as a diff.
func TestSwimSeededRunsAreBitIdentical(t *testing.T) {
	render := func() string {
		r, err := RunSwim(SwimConfig{
			Jobs:       10,
			TotalBytes: 2 << 30,
			Nodes:      4,
			Seed:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.RenderTable1() + r.RenderFig5() + r.RenderTable2() +
			r.RenderFig6() + r.RenderFig7() + r.RenderAblation()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("two seeded runs rendered different output:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
