// Package experiments regenerates every table and figure in the paper's
// evaluation (§II and §IV). Each experiment returns a typed result with
// the measured numbers plus a Render method that prints the table/figure
// as text, and records the paper's published values alongside for
// comparison. The bench harness (bench_test.go) and cmd/ignem-bench both
// drive these functions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/simclock"
)

// WallTimeout bounds each experiment's real (wall-clock) runtime; a
// stalled virtual-time simulation fails instead of hanging.
const WallTimeout = 30 * time.Minute

// runOnCluster starts a cluster inside a fresh virtual-time simulation,
// runs fn, and tears everything down.
func runOnCluster(cfg cluster.Config, fn func(v *simclock.Virtual, c *cluster.Cluster) error) error {
	var inner error
	err := cluster.RunVirtual(WallTimeout, func(v *simclock.Virtual) {
		c, err := cluster.Start(v, cfg)
		if err != nil {
			inner = err
			return
		}
		defer c.Close()
		inner = fn(v, c)
	})
	if err != nil {
		return err
	}
	return inner
}

// speedup formats the paper's "Speedup w.r.t HDFS" column.
func speedup(base, other float64) string {
	if base <= 0 {
		return ""
	}
	return fmt.Sprintf("%.0f%%", (1-other/base)*100)
}

// gb renders a byte count in GB with one decimal.
func gb(b int64) string { return fmt.Sprintf("%.1f GB", float64(b)/float64(1<<30)) }

// header renders an underlined experiment title.
func header(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("=", len(title)))
}
