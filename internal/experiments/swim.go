package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workloads"
)

// SwimConfig controls the SWIM trace-driven experiments (Tables I & II,
// Figs 5-7, and the §IV-C5 prioritization ablation).
type SwimConfig struct {
	// Jobs and TotalBytes size the workload. Defaults: the paper's 200
	// jobs / 170 GB. Benchmarks may downscale for speed.
	Jobs       int
	TotalBytes int64
	Seed       int64
	// Nodes is the cluster size (default 8, the paper's testbed).
	Nodes int
	// MeanInterarrival spaces job submissions (default 8s; the paper
	// halves the Facebook trace's gaps for its smaller cluster).
	MeanInterarrival time.Duration
	// FIFO replaces smallest-job-first with FIFO in the Ignem slaves
	// (the ablation).
	FIFO bool
	// MemorySampleEvery sets the Fig 7 sampling period. Default 1s.
	MemorySampleEvery time.Duration
	// TraceFile, when set, loads a real SWIM-format trace (see
	// workloads.LoadSwim) instead of synthesizing one. SizeScale and
	// TimeScale rescale it for the cluster (defaults 1.0).
	TraceFile string
	SizeScale float64
	TimeScale float64
}

func (c *SwimConfig) setDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.TotalBytes <= 0 {
		c.TotalBytes = 170 << 30
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 8 * time.Second
	}
	if c.MemorySampleEvery <= 0 {
		c.MemorySampleEvery = time.Second
	}
}

// SwimModeResult holds the measurements of one file-system configuration
// over the SWIM workload.
type SwimModeResult struct {
	Mode cluster.Mode
	// JobDurations is the per-job wall time (seconds).
	JobDurations *metrics.Series
	// BinDurations splits job durations by the paper's size bins.
	BinDurations map[string]*metrics.Series
	// TaskDurations is the per-map-task runtime (seconds).
	TaskDurations *metrics.Series
	// BlockReads is the per-block read latency (seconds).
	BlockReads *metrics.Series
	// DiskReads is the latency of only the reads served from the cold
	// device — for the paper's Fig 6 observation that even non-migrated
	// blocks improve under Ignem (their contending IO moved earlier).
	DiskReads *metrics.Series
	// MemoryFromReads is the fraction of block reads served from memory.
	MemoryFromReads float64
	// MemoryPerServer samples each node's pinned bytes over the run
	// (non-zero samples only, as Fig 7 does).
	MemoryPerServer *metrics.Series
	// Slave aggregates Ignem slave counters.
	Slave ignem.SlaveStats
	// Makespan is the whole workload's span.
	Makespan time.Duration
	// jobDurations records each job's measured duration (for the Fig 7
	// hypothetical-memory replay).
	jobMu        sync.Mutex
	jobDurations map[string]time.Duration
}

// SwimResult bundles all configurations plus the Fig 7 hypothetical
// instantaneous-migration memory model.
type SwimResult struct {
	Config SwimConfig
	Modes  map[cluster.Mode]*SwimModeResult
	// FIFOJobDurations holds the ablation run's job durations (Ignem
	// with FIFO queues), nil unless the ablation ran.
	FIFOJobDurations *metrics.Series
	// HypotheticalMemory is the per-server memory occupancy of a scheme
	// that migrates instantly at submit and evicts at completion.
	HypotheticalMemory *metrics.Series
}

// RunSwim runs the SWIM workload under HDFS, Ignem and
// HDFS-Inputs-in-RAM, plus (optionally downscaled) the FIFO ablation.
func RunSwim(cfg SwimConfig) (*SwimResult, error) {
	cfg.setDefaults()
	out := &SwimResult{Config: cfg, Modes: make(map[cluster.Mode]*SwimModeResult)}
	jobs, err := swimJobs(cfg)
	if err != nil {
		return nil, err
	}
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		res, err := runSwimMode(cfg, jobs, mode, false)
		if err != nil {
			return nil, err
		}
		out.Modes[mode] = res
	}
	fifoRes, err := runSwimMode(cfg, jobs, cluster.ModeIgnem, true)
	if err != nil {
		return nil, err
	}
	out.FIFOJobDurations = fifoRes.JobDurations
	out.HypotheticalMemory = hypotheticalMemory(cfg, out.Modes[cluster.ModeIgnem], jobs)
	return out, nil
}

// runSwimMode runs the full workload on one cluster configuration.
func runSwimMode(cfg SwimConfig, jobs []workloads.Job, mode cluster.Mode, fifo bool) (*SwimModeResult, error) {
	res := &SwimModeResult{
		Mode:            mode,
		JobDurations:    &metrics.Series{},
		BinDurations:    map[string]*metrics.Series{"small": {}, "medium": {}, "large": {}},
		TaskDurations:   &metrics.Series{},
		BlockReads:      &metrics.Series{},
		DiskReads:       &metrics.Series{},
		MemoryPerServer: &metrics.Series{},
		jobDurations:    make(map[string]time.Duration),
	}
	ccfg := cluster.Config{
		Nodes: cfg.Nodes,
		Mode:  mode,
		Seed:  cfg.Seed + int64(mode)*1000 + boolToInt64(fifo)*7777,
		Slave: ignem.SlaveConfig{FIFO: fifo},
	}
	err := runOnCluster(ccfg, func(v *simclock.Virtual, c *cluster.Cluster) error {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		defer cl.Close()
		for _, j := range jobs {
			if err := cl.WriteSyntheticFile(swimPath(j), j.InputBytes, 0, dfs.DefaultReplication); err != nil {
				return fmt.Errorf("swim setup %s: %w", j.Name, err)
			}
		}

		// Fig 7 sampler: per-server pinned memory during the run.
		stopSampler := simclock.NewChan[struct{}](v)
		samplerDone := simclock.NewChan[struct{}](v)
		v.Go(func() {
			defer samplerDone.Send(struct{}{})
			for {
				_, _, timedOut := stopSampler.RecvTimeout(cfg.MemorySampleEvery)
				if !timedOut {
					return
				}
				for _, pinned := range c.PinnedBytesPerNode() {
					if pinned > 0 {
						res.MemoryPerServer.Add(float64(pinned))
					}
				}
			}
		})

		start := v.Now()
		var errMu sync.Mutex
		var firstErr error
		wg := simclock.NewWaitGroup(v)
		for _, j := range jobs {
			j := j
			wg.Go(func() {
				v.Sleep(j.Arrival)
				r, err := c.Engine.Run(mapreduce.Config{
					ID:           dfs.JobID(j.Name),
					InputPaths:   []string{swimPath(j)},
					MapRateMBps:  800, // SWIM mappers mostly read
					ShuffleBytes: j.ShuffleBytes,
					OutputBytes:  j.OutputBytes,
					UseIgnem:     c.UseIgnem(),
					// SWIM inputs are singly read: implicit eviction (the
					// paper's low-footprint optimization) releases each
					// block as soon as its task reads it.
					ImplicitEvict: true,
				})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("job %s: %w", j.Name, err)
					}
					errMu.Unlock()
					return
				}
				res.jobMu.Lock()
				res.jobDurations[j.Name] = r.Duration
				res.jobMu.Unlock()
				res.JobDurations.AddDuration(r.Duration)
				res.BinDurations[workloads.SizeBin(j.InputBytes)].AddDuration(r.Duration)
				for _, tr := range r.MapResults {
					res.TaskDurations.AddDuration(tr.RunTime)
				}
				for _, ev := range r.BlockReads {
					res.BlockReads.AddDuration(ev.Duration)
					if !ev.FromMemory {
						res.DiskReads.AddDuration(ev.Duration)
					}
				}
			})
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		res.Makespan = v.Now().Sub(start)
		stopSampler.Send(struct{}{})
		samplerDone.Recv()
		res.Slave = c.SlaveStats()
		if hits, misses := res.Slave.MemoryHits, res.Slave.MemoryMisses; hits+misses > 0 {
			res.MemoryFromReads = float64(hits) / float64(hits+misses)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// hypotheticalMemory models Fig 7's comparison scheme: inputs appear in
// memory at submission and vanish at completion. It replays each job's
// measured Ignem-run duration analytically.
func hypotheticalMemory(cfg SwimConfig, ignemRun *SwimModeResult, jobs []workloads.Job) *metrics.Series {
	type event struct {
		at    time.Duration
		delta int64
	}
	var events []event
	meanDur := time.Duration(ignemRun.JobDurations.Mean() * float64(time.Second))
	ignemRun.jobMu.Lock()
	for _, j := range jobs {
		dur, ok := ignemRun.jobDurations[j.Name]
		if !ok {
			dur = meanDur
		}
		events = append(events, event{at: j.Arrival, delta: j.InputBytes})
		events = append(events, event{at: j.Arrival + dur, delta: -j.InputBytes})
	}
	ignemRun.jobMu.Unlock()
	sort.Slice(events, func(i, k int) bool { return events[i].at < events[k].at })

	out := &metrics.Series{}
	var held int64
	idx := 0
	end := events[len(events)-1].at
	for t := time.Duration(0); t <= end; t += cfg.MemorySampleEvery {
		for idx < len(events) && events[idx].at <= t {
			held += events[idx].delta
			idx++
		}
		perServer := held / int64(cfg.Nodes)
		if perServer > 0 {
			out.Add(float64(perServer))
		}
	}
	return out
}

// swimJobs loads the configured trace file or synthesizes the paper's
// scaled workload.
func swimJobs(cfg SwimConfig) ([]workloads.Job, error) {
	if cfg.TraceFile == "" {
		return workloads.GenerateSwim(workloads.SwimConfig{
			Jobs:             cfg.Jobs,
			TotalInputBytes:  cfg.TotalBytes,
			MeanInterarrival: cfg.MeanInterarrival,
			Seed:             cfg.Seed,
		}), nil
	}
	f, err := os.Open(cfg.TraceFile)
	if err != nil {
		return nil, fmt.Errorf("swim trace: %w", err)
	}
	defer f.Close()
	jobs, err := workloads.LoadSwim(f)
	if err != nil {
		return nil, fmt.Errorf("swim trace %s: %w", cfg.TraceFile, err)
	}
	sizeScale, timeScale := cfg.SizeScale, cfg.TimeScale
	if sizeScale <= 0 {
		sizeScale = 1
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	return workloads.ScaleSwim(jobs, sizeScale, timeScale), nil
}

func swimPath(j workloads.Job) string { return "/swim/" + j.Name }

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- rendering ---

// RenderTable1 prints the paper's Table I (mean SWIM job duration).
func (r *SwimResult) RenderTable1() string {
	t := metrics.Table{
		Caption: "TABLE I: SWIM mean job duration (paper: HDFS 14.4s; Ignem -12%; RAM -21%)",
		Header:  []string{"config", "mean job duration (s)", "speedup w.r.t HDFS"},
	}
	base := r.Modes[cluster.ModeHDFS].JobDurations.Mean()
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		m := r.Modes[mode].JobDurations.Mean()
		t.AddRow(mode.String(), fmt.Sprintf("%.1f", m), speedup(base, m))
	}
	return header("Table I — SWIM job duration") + t.String()
}

// RenderFig5 prints the per-size-bin speedups (paper: small 8.8%,
// medium 7.7%, large 25%; RAM large ~60%).
func (r *SwimResult) RenderFig5() string {
	var b strings.Builder
	b.WriteString(header("Fig 5 — mean job duration reduction by input size bin"))
	for _, bin := range []string{"small", "medium", "large"} {
		base := r.Modes[cluster.ModeHDFS].BinDurations[bin].Mean()
		var entries []metrics.BarEntry
		for _, mode := range []cluster.Mode{cluster.ModeIgnem, cluster.ModeInputsInRAM} {
			m := r.Modes[mode].BinDurations[bin].Mean()
			red := 0.0
			if base > 0 {
				red = (1 - m/base) * 100
			}
			entries = append(entries, metrics.BarEntry{Label: mode.String(), Value: red})
		}
		b.WriteString(metrics.BarChart(fmt.Sprintf("%s jobs (n=%d): %% reduction vs HDFS",
			bin, r.Modes[cluster.ModeHDFS].BinDurations[bin].Len()), "%", entries))
	}
	return b.String()
}

// RenderTable2 prints the paper's Table II (mean map task duration;
// paper: 6.44s HDFS, 4.03s Ignem (38%), 0.28s RAM (96%)).
func (r *SwimResult) RenderTable2() string {
	t := metrics.Table{
		Caption: "TABLE II: SWIM mean mapper task duration (paper: 6.44s / 4.03s / 0.28s)",
		Header:  []string{"config", "mean task duration (s)", "speedup w.r.t HDFS"},
	}
	base := r.Modes[cluster.ModeHDFS].TaskDurations.Mean()
	for _, mode := range []cluster.Mode{cluster.ModeHDFS, cluster.ModeIgnem, cluster.ModeInputsInRAM} {
		m := r.Modes[mode].TaskDurations.Mean()
		t.AddRow(mode.String(), fmt.Sprintf("%.2f", m), speedup(base, m))
	}
	return header("Table II — SWIM mapper task duration") + t.String()
}

// RenderFig6 prints the block-read CDFs and the fraction of reads served
// from memory (paper: ~40% mean reduction, ~60% of blocks migrated).
func (r *SwimResult) RenderFig6() string {
	var b strings.Builder
	b.WriteString(header("Fig 6 — HDFS block read durations (s)"))
	labelled := map[string]*metrics.Series{}
	for mode, mr := range r.Modes {
		labelled[mode.String()] = mr.BlockReads
	}
	b.WriteString(metrics.RenderCDF("CDF of block read duration (s)", 11, labelled))
	hdfs := r.Modes[cluster.ModeHDFS].BlockReads.Mean()
	ign := r.Modes[cluster.ModeIgnem].BlockReads.Mean()
	fmt.Fprintf(&b, "mean block read: HDFS %.2fs, Ignem %.2fs (reduction %s; paper ~40%%)\n",
		hdfs, ign, speedup(hdfs, ign))
	fmt.Fprintf(&b, "block reads served from memory under Ignem: %.0f%% (paper ~60%%)\n",
		r.Modes[cluster.ModeIgnem].MemoryFromReads*100)
	hdfsDisk := r.Modes[cluster.ModeHDFS].DiskReads.Mean()
	ignemDisk := r.Modes[cluster.ModeIgnem].DiskReads.Mean()
	fmt.Fprintf(&b, "non-migrated (disk) reads: HDFS %.2fs vs Ignem %.2fs\n", hdfsDisk, ignemDisk)
	b.WriteString("  (the paper reports these improve; here the survivors are precisely the\n" +
		"   contended-burst reads — a selection effect; see EXPERIMENTS.md)\n")
	return b.String()
}

// RenderFig7 prints the per-server memory comparison (paper: Ignem's
// footprint 2.6x lower than the hypothetical scheme).
func (r *SwimResult) RenderFig7() string {
	var b strings.Builder
	b.WriteString(header("Fig 7 — per-server migration memory (non-idle samples)"))
	ign := r.Modes[cluster.ModeIgnem].MemoryPerServer
	b.WriteString(metrics.Histogram("(a) Ignem per-server memory (bytes)", ign, 8))
	b.WriteString(metrics.Histogram("(b) hypothetical instantaneous scheme (bytes)", r.HypotheticalMemory, 8))
	im, hm := ign.Mean(), r.HypotheticalMemory.Mean()
	if im > 0 {
		fmt.Fprintf(&b, "mean occupancy: Ignem %.0f MB vs hypothetical %.0f MB (%.1fx lower; paper 2.6x)\n",
			im/(1<<20), hm/(1<<20), hm/im)
	}
	return b.String()
}

// RenderAblation prints the §IV-C5 prioritization ablation (paper:
// disabling smallest-job-first costs ~2 points of speedup, ~15% of the
// benefit).
func (r *SwimResult) RenderAblation() string {
	var b strings.Builder
	b.WriteString(header("Ablation §IV-C5 — smallest-job-first vs FIFO migration queue"))
	base := r.Modes[cluster.ModeHDFS].JobDurations.Mean()
	prio := r.Modes[cluster.ModeIgnem].JobDurations.Mean()
	fifo := r.FIFOJobDurations.Mean()
	fmt.Fprintf(&b, "mean job duration: HDFS %.1fs; Ignem(priority) %.1fs (%s); Ignem(FIFO) %.1fs (%s)\n",
		base, prio, speedup(base, prio), fifo, speedup(base, fifo))
	return b.String()
}

// Render prints every SWIM table and figure.
func (r *SwimResult) Render() string {
	return strings.Join([]string{
		r.RenderTable1(), r.RenderFig5(), r.RenderTable2(),
		r.RenderFig6(), r.RenderFig7(), r.RenderAblation(),
	}, "\n")
}
