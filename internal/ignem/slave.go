// Package ignem implements the paper's contribution: proactive upward
// migration of cold data into memory in a big data file system.
//
// The Master runs inside the namenode. It resolves a job's input files to
// blocks, picks one replica of each block, and pushes batched migration
// commands to the slaves. A Slave runs inside each datanode. It owns the
// pinned-memory region: a smallest-job-first migration queue served one
// block at a time, per-block reference lists of job IDs, explicit and
// implicit eviction, the do-not-harm rule (a pinned, unread block is
// never evicted to admit another), and a liveness sweep that purges jobs
// that died without evicting.
package ignem

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// MediaReader performs the timed device read that brings a block from
// disk into memory. The datanode backs this with its media device, and
// verifies the stored replica against checksum (0 = unchecksummed)
// during the copy, so a rotten replica is never pinned.
type MediaReader interface {
	ReadForMigration(b dfs.Block, checksum uint32) error
}

// TierCopier is an optional MediaReader extension for the migration
// ladder: a timed copy between storage tiers (HDD→SSD lands a flash
// copy, SSD→RAM climbs the second rung reading from flash instead of
// the contended disk). Media that doesn't implement it falls back to
// ReadForMigration, i.e. every copy is charged as a disk read.
type TierCopier interface {
	CopyForMigration(b dfs.Block, checksum uint32, from, to dfs.Tier) error
}

// Liveness answers whether a job is still running; the slave queries it
// (the cluster scheduler, in practice) to clean up after dead jobs.
type Liveness interface {
	IsActive(job dfs.JobID) bool
}

// PinListener observes pin-state transitions — at the tier the block is
// (or was) resident on — so the datanode can report them to the
// namenode on its next heartbeat. Implementations must be fast and safe
// to call from any goroutine.
type PinListener func(id dfs.BlockID, tier dfs.Tier, pinned bool)

// tierPin pairs a block with the tier a pin transition happened at.
type tierPin struct {
	id   dfs.BlockID
	tier dfs.Tier
}

// SlaveConfig tunes a slave.
type SlaveConfig struct {
	// Capacity is the pinned-memory budget in bytes (the paper's
	// configurable migration buffer threshold).
	Capacity int64
	// CleanupThreshold is the occupancy fraction above which the slave
	// sweeps reference lists for dead jobs. Default 0.75.
	CleanupThreshold float64
	// CleanupMinInterval rate-limits liveness sweeps. Default 10s.
	CleanupMinInterval time.Duration
	// FIFO disables smallest-job-first prioritization (the paper's
	// §IV-C5 ablation runs the queue in FIFO order instead).
	FIFO bool
	// AdaptiveThrottle enables Aqueduct-style feedback pacing (Lu et
	// al., FAST'02 — cited by the paper as complementary): when a
	// migration read observes a contended device (throughput below
	// ContendedThresholdMBps), the worker pauses for the duration of
	// that read before serving the next command, bounding migration's
	// impact on foreground I/O. Off by default: the paper's Ignem is
	// work-conserving.
	AdaptiveThrottle bool
	// ContendedThresholdMBps is the observed-throughput level below
	// which the device is considered contended. Default 60.
	ContendedThresholdMBps float64
}

func (c *SlaveConfig) setDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 32 << 30
	}
	if c.CleanupThreshold <= 0 {
		c.CleanupThreshold = 0.75
	}
	if c.CleanupMinInterval <= 0 {
		c.CleanupMinInterval = 10 * time.Second
	}
	if c.ContendedThresholdMBps <= 0 {
		c.ContendedThresholdMBps = 60
	}
}

// SlaveStats is a snapshot of slave activity.
type SlaveStats struct {
	PinnedBytes    int64
	PinnedBlocks   int
	QueuedCmds     int
	DeferredCmds   int
	MigratedBlocks int64
	MigratedBytes  int64
	// DiscardedMissed counts commands dropped because the job read the
	// block from disk before migration got to it.
	DiscardedMissed int64
	// RejectedTooLarge counts commands whose block exceeds the whole
	// buffer capacity.
	RejectedTooLarge int64
	Evictions        int64
	// PurgedJobs counts jobs removed by liveness sweeps.
	PurgedJobs int64
	// MemoryHits counts block reads served from pinned memory.
	MemoryHits int64
	// MemoryMisses counts block reads served from the media device.
	MemoryMisses int64
	// ThrottlePauses counts AdaptiveThrottle back-offs.
	ThrottlePauses int64
	// ReadFailures counts migration reads the media rejected — device
	// errors and checksum mismatches. The block stays unpinned; readers
	// fall back to disk (or another replica).
	ReadFailures int64
	// SSDPinnedBytes / SSDPinnedBlocks are the flash rung's occupancy.
	SSDPinnedBytes  int64
	SSDPinnedBlocks int
	// SSDHits counts block reads served from the flash rung.
	SSDHits int64
	// ClimbedBlocks counts SSD→RAM second-rung promotions completed.
	ClimbedBlocks int64
	// Demotions counts fast-tier residencies released by demote commands.
	Demotions int64
}

type readKey struct {
	job   dfs.JobID
	block dfs.BlockID
}

type pinnedBlock struct {
	size int64
	// tier is where the copy is resident: TierRAM (pinned memory, the
	// paper's original target) or TierSSD (the ladder's first rung). A
	// block climbs by flipping tier — it is resident on exactly one fast
	// tier at a time.
	tier dfs.Tier
	// refs maps each referencing job to whether it opted into implicit
	// eviction (the paper's per-job reference list).
	refs map[dfs.JobID]bool
}

// Slave is the per-datanode migration engine.
type Slave struct {
	clock    simclock.Clock
	cfg      SlaveConfig
	media    MediaReader
	liveness Liveness
	onPin    PinListener

	mu   sync.Mutex
	cond *simclock.Cond

	epoch       uint64
	queue       migQueue
	deferred    []*migEntry
	pinned      map[dfs.BlockID]*pinnedBlock
	jobBlocks   map[dfs.JobID]map[dfs.BlockID]struct{}
	alreadyRead map[readKey]struct{}
	// evicted tombstones completed jobs so migrate commands that are
	// still queued (or in flight) when the eviction arrives are
	// discarded instead of pinning memory for a dead job.
	evicted     map[dfs.JobID]time.Time
	pinnedBytes int64
	// ssdBytes tracks flash-rung occupancy; Capacity bounds RAM only
	// (the master's cluster-wide SSD budget bounds the flash rung).
	ssdBytes int64
	// reserved is capacity claimed by the one in-flight migration read.
	reserved  int64
	lastSweep time.Time
	closed    bool

	stats SlaveStats
}

// NewSlave creates a slave and starts its migration worker. onPin may be
// nil. The worker serves the queue one block at a time (the paper's
// answer to disk-bandwidth degradation from concurrent reads) and is
// work-conserving.
func NewSlave(clock simclock.Clock, cfg SlaveConfig, media MediaReader, liveness Liveness, onPin PinListener) *Slave {
	cfg.setDefaults()
	s := &Slave{
		clock:       clock,
		cfg:         cfg,
		media:       media,
		liveness:    liveness,
		onPin:       onPin,
		pinned:      make(map[dfs.BlockID]*pinnedBlock),
		jobBlocks:   make(map[dfs.JobID]map[dfs.BlockID]struct{}),
		alreadyRead: make(map[readKey]struct{}),
		evicted:     make(map[dfs.JobID]time.Time),
	}
	if s.onPin == nil {
		s.onPin = func(dfs.BlockID, dfs.Tier, bool) {}
	}
	s.cond = simclock.NewCond(clock, &s.mu)
	s.queue.fifo = cfg.FIFO
	clock.Go(s.worker)
	return s
}

// ApplyMigrateBatch ingests a batch of migration commands from the
// master. A batch from a newer master epoch first purges all reference
// lists (the paper's master-failure recovery: slaves reset to match the
// new master's empty state).
func (s *Slave) ApplyMigrateBatch(b dfs.MigrateBatch) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	unpinned = s.adoptEpochLocked(b.Epoch)
	for _, cmd := range b.Cmds {
		s.queue.push(&migEntry{cmd: cmd, seq: s.queue.nextSeq()})
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// ApplyEvictBatch removes jobs from block reference lists; blocks whose
// lists empty are unpinned immediately, keeping the memory footprint low.
func (s *Slave) ApplyEvictBatch(b dfs.EvictBatch) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	unpinned = s.adoptEpochLocked(b.Epoch)
	now := s.clock.Now()
	for _, cmd := range b.Cmds {
		unpinned = append(unpinned, s.dropRefLocked(cmd.Block, cmd.Job)...)
		// The job is done: forget any missed-read markers it left and
		// tombstone it so late migrate commands are discarded.
		delete(s.alreadyRead, readKey{job: cmd.Job, block: cmd.Block})
		s.evicted[cmd.Job] = now
	}
	s.pruneTombstonesLocked(now)
	s.retryDeferredLocked()
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// ApplyDemoteBatch force-unpins the listed blocks from the named tier —
// the ladder's downward arm. Demotion ignores outstanding job references
// (the cold HDD replica still serves them) and is advisory: the master
// released the tier budget when it issued the command, so a block that
// is no longer resident, or has since climbed to a different tier, is
// simply skipped.
func (s *Slave) ApplyDemoteBatch(b dfs.DemoteBatch) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	unpinned = s.adoptEpochLocked(b.Epoch)
	for _, cmd := range b.Cmds {
		pb := s.pinned[cmd.Block]
		if pb == nil || pb.tier != cmd.Tier.EffectiveTarget() {
			continue
		}
		for job := range pb.refs {
			if jb := s.jobBlocks[job]; jb != nil {
				delete(jb, cmd.Block)
				if len(jb) == 0 {
					delete(s.jobBlocks, job)
				}
			}
		}
		delete(s.pinned, cmd.Block)
		if pb.tier == dfs.TierSSD {
			s.ssdBytes -= pb.size
		} else {
			s.pinnedBytes -= pb.size
		}
		s.stats.Demotions++
		unpinned = append(unpinned, tierPin{id: cmd.Block, tier: pb.tier})
	}
	s.retryDeferredLocked()
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// AdoptEpoch reconciles the slave with the master epoch it learned
// out-of-band (a revived datanode probes the namenode for it during
// re-registration). A changed epoch purges all reference lists and
// unpins everything, exactly as the first batch from a new master
// would; the current epoch is a no-op.
func (s *Slave) AdoptEpoch(epoch uint64) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	unpinned = s.adoptEpochLocked(epoch)
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// ApplyReadNotifyBatch ingests a batch of remote-read notifications from
// the master: the named jobs consumed these blocks somewhere this slave
// could not observe (a client block-cache hit). It mirrors OnBlockRead's
// reference-list bookkeeping — an implicit reference is dropped, an
// unmigrated (job, block) is marked already-read so its queued migration
// is discarded — but touches no hit/miss counters: the slave served
// nothing.
func (s *Slave) ApplyReadNotifyBatch(b dfs.ReadNotifyBatch) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	unpinned = s.adoptEpochLocked(b.Epoch)
	for _, cmd := range b.Cmds {
		if cmd.Job == "" {
			continue
		}
		pb := s.pinned[cmd.Block]
		if pb != nil {
			if implicit, ok := pb.refs[cmd.Job]; ok && implicit {
				unpinned = append(unpinned, s.dropRefLocked(cmd.Block, cmd.Job)...)
			}
			continue
		}
		if _, gone := s.evicted[cmd.Job]; gone {
			continue
		}
		s.alreadyRead[readKey{job: cmd.Job, block: cmd.Block}] = struct{}{}
	}
	s.retryDeferredLocked()
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// OnBlockRead hooks the datanode read path. It reports whether the block
// was served from pinned memory, and performs implicit eviction when the
// reading job opted into it.
func (s *Slave) OnBlockRead(id dfs.BlockID, job dfs.JobID) (fromMemory bool) {
	tier, resident := s.OnBlockReadTier(id, job)
	return resident && tier == dfs.TierRAM
}

// OnBlockReadTier is the tier-aware read hook: it reports which tier
// the block is resident on (and whether it is resident at all), counts
// the hit against that tier, and performs implicit eviction when the
// reading job opted into it. The reference-list bookkeeping is
// tier-agnostic — a job's read releases its reference whether the copy
// sits in RAM or on flash.
func (s *Slave) OnBlockReadTier(id dfs.BlockID, job dfs.JobID) (tier dfs.Tier, resident bool) {
	var unpinned []tierPin
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return dfs.TierHDD, false
	}
	pb := s.pinned[id]
	if pb != nil {
		resident = true
		tier = pb.tier
		if pb.tier == dfs.TierRAM {
			s.stats.MemoryHits++
		} else {
			s.stats.SSDHits++
		}
		if implicit, ok := pb.refs[job]; ok && implicit {
			unpinned = s.dropRefLocked(id, job)
		}
	} else {
		tier = dfs.TierHDD
		s.stats.MemoryMisses++
		if job != "" {
			// Migration for this (job, block) would now be wasted work:
			// mark it so a queued or in-flight command is discarded.
			s.alreadyRead[readKey{job: job, block: id}] = struct{}{}
		}
	}
	s.retryDeferredLocked()
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
	return tier, resident
}

// IsPinned reports whether a block is currently in pinned memory.
func (s *Slave) IsPinned(id dfs.BlockID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinned[id] != nil
}

// PinnedBytes returns the current pinned-memory occupancy.
func (s *Slave) PinnedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinnedBytes
}

// SSDBytes returns the current flash-tier occupancy.
func (s *Slave) SSDBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ssdBytes
}

// Stats returns a snapshot of slave activity.
func (s *Slave) Stats() SlaveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.PinnedBytes = s.pinnedBytes
	st.SSDPinnedBytes = s.ssdBytes
	for _, pb := range s.pinned {
		if pb.tier == dfs.TierSSD {
			st.SSDPinnedBlocks++
		} else {
			st.PinnedBlocks++
		}
	}
	st.QueuedCmds = s.queue.Len()
	st.DeferredCmds = len(s.deferred)
	return st
}

// Restart simulates a slave process restart: all pinned memory is
// discarded (the OS reclaims it) and the slave resumes with empty state,
// ready for new commands.
func (s *Slave) Restart() {
	var unpinned []tierPin
	s.mu.Lock()
	unpinned = s.purgeAllLocked()
	s.queue.clear()
	s.deferred = nil
	s.alreadyRead = make(map[readKey]struct{})
	s.evicted = make(map[dfs.JobID]time.Time)
	s.mu.Unlock()
	s.notifyUnpinned(unpinned)
}

// Close stops the worker. Pending commands are dropped.
func (s *Slave) Close() {
	s.mu.Lock()
	s.closed = true
	s.queue.clear()
	s.deferred = nil
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pruneTombstonesLocked drops eviction tombstones old enough that no
// command for their job can still be in flight.
func (s *Slave) pruneTombstonesLocked(now time.Time) {
	const tombstoneTTL = 10 * time.Minute
	if len(s.evicted) < 1024 {
		return
	}
	for job, at := range s.evicted {
		if now.Sub(at) > tombstoneTTL {
			delete(s.evicted, job)
		}
	}
}

// adoptEpochLocked switches to a new master epoch, purging all reference
// lists, and returns the blocks that became unpinned.
func (s *Slave) adoptEpochLocked(epoch uint64) []tierPin {
	if epoch == s.epoch {
		return nil
	}
	unpinned := s.purgeAllLocked()
	s.epoch = epoch
	s.queue.clear()
	s.deferred = nil
	s.alreadyRead = make(map[readKey]struct{})
	s.evicted = make(map[dfs.JobID]time.Time)
	return unpinned
}

func (s *Slave) purgeAllLocked() []tierPin {
	unpinned := make([]tierPin, 0, len(s.pinned))
	for id, pb := range s.pinned {
		unpinned = append(unpinned, tierPin{id: id, tier: pb.tier})
	}
	s.pinned = make(map[dfs.BlockID]*pinnedBlock)
	s.jobBlocks = make(map[dfs.JobID]map[dfs.BlockID]struct{})
	s.pinnedBytes = 0
	s.ssdBytes = 0
	return unpinned
}

// dropRefLocked removes job from the block's reference list and unpins
// the block if the list empties. It returns the unpinned blocks with the
// tier they were resident on.
func (s *Slave) dropRefLocked(id dfs.BlockID, job dfs.JobID) []tierPin {
	pb := s.pinned[id]
	if pb == nil {
		return nil
	}
	if _, ok := pb.refs[job]; !ok {
		return nil
	}
	delete(pb.refs, job)
	if jb := s.jobBlocks[job]; jb != nil {
		delete(jb, id)
		if len(jb) == 0 {
			delete(s.jobBlocks, job)
		}
	}
	if len(pb.refs) > 0 {
		return nil
	}
	delete(s.pinned, id)
	if pb.tier == dfs.TierSSD {
		s.ssdBytes -= pb.size
	} else {
		s.pinnedBytes -= pb.size
	}
	s.stats.Evictions++
	s.retryDeferredLocked()
	return []tierPin{{id: id, tier: pb.tier}}
}

func (s *Slave) addRefLocked(id dfs.BlockID, job dfs.JobID, implicit bool) {
	pb := s.pinned[id]
	if pb == nil {
		return
	}
	pb.refs[job] = implicit
	jb := s.jobBlocks[job]
	if jb == nil {
		jb = make(map[dfs.BlockID]struct{})
		s.jobBlocks[job] = jb
	}
	jb[id] = struct{}{}
}

// retryDeferredLocked moves deferred commands back into the queue so the
// worker re-evaluates them against the freed capacity.
func (s *Slave) retryDeferredLocked() {
	if len(s.deferred) == 0 {
		return
	}
	for _, e := range s.deferred {
		s.queue.push(e)
	}
	s.deferred = nil
	s.cond.Broadcast()
}

func (s *Slave) notifyUnpinned(pins []tierPin) {
	for _, p := range pins {
		s.onPin(p.id, p.tier, false)
	}
}

// worker is the single migration loop: strictly one device read at a
// time, highest-priority command first, work-conserving.
func (s *Slave) worker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		e := s.queue.pop()
		key := readKey{job: e.cmd.Job, block: e.cmd.Block.ID}
		if _, gone := s.evicted[e.cmd.Job]; gone {
			s.stats.DiscardedMissed++
			continue
		}
		if _, read := s.alreadyRead[key]; read {
			delete(s.alreadyRead, key)
			s.stats.DiscardedMissed++
			continue
		}
		target := e.cmd.Tier.EffectiveTarget()
		if pb := s.pinned[e.cmd.Block.ID]; pb != nil {
			if pb.tier >= target {
				// Already resident at (or above) the target rung
				// (migrated for another job): just extend the reference
				// list; no device read needed.
				s.addRefLocked(e.cmd.Block.ID, e.cmd.Job, e.cmd.Implicit)
				continue
			}
			// Climb: the block sits on flash and the master promoted it
			// to RAM. RAM capacity rules apply; the flash copy stays
			// until the climb lands.
			if s.climbLocked(e, pb) {
				return
			}
			continue
		}
		if target == dfs.TierRAM {
			// Memory capacity governs only the RAM rung; flash admission
			// is bounded by the master's per-tier budget.
			if e.cmd.Block.Size > s.cfg.Capacity {
				s.stats.RejectedTooLarge++
				continue
			}
			if s.pinnedBytes+s.reserved+e.cmd.Block.Size > s.cfg.Capacity {
				// Do-not-harm: never evict an unread pinned block to admit a
				// new one. Defer until eviction frees space.
				s.deferred = append(s.deferred, e)
				s.maybeSweepLocked()
				continue
			}
			s.reserved += e.cmd.Block.Size // reserve before the slow read
		}
		epoch := s.epoch
		s.mu.Unlock()
		readStart := s.clock.Now()
		err := s.copyForMigration(e.cmd.Block, e.cmd.Checksum, dfs.TierHDD, target)
		readDur := s.clock.Now().Sub(readStart)
		if err == nil && s.cfg.AdaptiveThrottle && contended(e.cmd.Block.Size, readDur, s.cfg.ContendedThresholdMBps) {
			// Feedback pacing: the device is busy with foreground work;
			// back off for as long as the read took before migrating more.
			s.mu.Lock()
			s.stats.ThrottlePauses++
			s.mu.Unlock()
			s.clock.Sleep(readDur)
		}
		s.mu.Lock()

		if target == dfs.TierRAM {
			s.reserved -= e.cmd.Block.Size
		}
		if s.closed {
			return
		}
		if err != nil {
			s.stats.ReadFailures++
			continue
		}
		if epoch != s.epoch {
			continue
		}
		_, read := s.alreadyRead[key]
		_, gone := s.evicted[e.cmd.Job]
		if read || gone {
			// The job raced us — it read the block from disk or finished
			// entirely while we migrated; pinning now would only waste
			// memory.
			delete(s.alreadyRead, key)
			s.stats.DiscardedMissed++
			continue
		}
		if target == dfs.TierSSD {
			s.ssdBytes += e.cmd.Block.Size
		} else {
			s.pinnedBytes += e.cmd.Block.Size
		}
		s.pinned[e.cmd.Block.ID] = &pinnedBlock{size: e.cmd.Block.Size, refs: make(map[dfs.JobID]bool), tier: target}
		s.addRefLocked(e.cmd.Block.ID, e.cmd.Job, e.cmd.Implicit)
		s.stats.MigratedBlocks++
		s.stats.MigratedBytes += e.cmd.Block.Size
		s.mu.Unlock()
		s.onPin(e.cmd.Block.ID, target, true)
		s.mu.Lock()
	}
}

// climbLocked copies a flash-resident block into memory and flips its
// tier. Called with the mutex held; returns true when the slave closed
// mid-copy and the worker must exit. The flash copy is only released
// (and the pin listener told) once the RAM copy lands, so a crash
// mid-climb leaves the block safely on flash.
func (s *Slave) climbLocked(e *migEntry, pb *pinnedBlock) (closed bool) {
	id := e.cmd.Block.ID
	if e.cmd.Block.Size > s.cfg.Capacity {
		s.stats.RejectedTooLarge++
		return false
	}
	if s.pinnedBytes+s.reserved+e.cmd.Block.Size > s.cfg.Capacity {
		s.deferred = append(s.deferred, e)
		s.maybeSweepLocked()
		return false
	}
	s.reserved += e.cmd.Block.Size
	epoch := s.epoch
	s.mu.Unlock()
	err := s.copyForMigration(e.cmd.Block, e.cmd.Checksum, dfs.TierSSD, dfs.TierRAM)
	s.mu.Lock()
	s.reserved -= e.cmd.Block.Size
	if s.closed {
		return true
	}
	if err != nil {
		s.stats.ReadFailures++
		return false
	}
	if epoch != s.epoch {
		return false
	}
	if cur := s.pinned[id]; cur != pb || cur.tier != dfs.TierSSD {
		// The block was unpinned, demoted, or already climbed while we
		// copied; nothing to flip.
		return false
	}
	pb.tier = dfs.TierRAM
	s.ssdBytes -= pb.size
	s.pinnedBytes += pb.size
	s.stats.ClimbedBlocks++
	s.addRefLocked(id, e.cmd.Job, e.cmd.Implicit)
	s.mu.Unlock()
	s.onPin(id, dfs.TierRAM, true)
	s.onPin(id, dfs.TierSSD, false)
	s.mu.Lock()
	return false
}

// copyForMigration moves a block's bytes between tiers. The historical
// HDD→RAM path goes through ReadForMigration unchanged (its cost model
// is part of the paper reproduction); other tier pairs use the media's
// TierCopier when it offers one, falling back to a plain device read.
func (s *Slave) copyForMigration(b dfs.Block, checksum uint32, from, to dfs.Tier) error {
	if from == dfs.TierHDD && to == dfs.TierRAM {
		return s.media.ReadForMigration(b, checksum)
	}
	if tc, ok := s.media.(TierCopier); ok {
		return tc.CopyForMigration(b, checksum, from, to)
	}
	return s.media.ReadForMigration(b, checksum)
}

// maybeSweepLocked purges reference lists of dead jobs when occupancy is
// above the cleanup threshold. It temporarily drops the lock to query the
// scheduler.
func (s *Slave) maybeSweepLocked() {
	if s.liveness == nil {
		return
	}
	if float64(s.pinnedBytes) < s.cfg.CleanupThreshold*float64(s.cfg.Capacity) {
		return
	}
	now := s.clock.Now()
	if now.Sub(s.lastSweep) < s.cfg.CleanupMinInterval {
		return
	}
	s.lastSweep = now

	jobs := make([]dfs.JobID, 0, len(s.jobBlocks))
	for job := range s.jobBlocks {
		jobs = append(jobs, job)
	}
	epoch := s.epoch
	s.mu.Unlock()
	dead := make([]dfs.JobID, 0, len(jobs))
	for _, job := range jobs {
		if !s.liveness.IsActive(job) {
			dead = append(dead, job)
		}
	}
	s.mu.Lock()
	if s.closed || epoch != s.epoch {
		return
	}
	var unpinned []tierPin
	for _, job := range dead {
		blocks := s.jobBlocks[job]
		ids := make([]dfs.BlockID, 0, len(blocks))
		for id := range blocks {
			ids = append(ids, id)
		}
		for _, id := range ids {
			unpinned = append(unpinned, s.dropRefLocked(id, job)...)
		}
		for key := range s.alreadyRead {
			if key.job == job {
				delete(s.alreadyRead, key)
			}
		}
		s.stats.PurgedJobs++
	}
	if len(unpinned) > 0 {
		s.mu.Unlock()
		s.notifyUnpinned(unpinned)
		s.mu.Lock()
	}
}

// contended reports whether a read of size bytes over dur indicates a
// device throughput below thresholdMBps.
func contended(size int64, dur time.Duration, thresholdMBps float64) bool {
	if dur <= 0 {
		return false
	}
	mbps := float64(size) / dur.Seconds() / 1e6
	return mbps < thresholdMBps
}

// migEntry is one queued migration command.
type migEntry struct {
	cmd dfs.MigrateCmd
	seq uint64
	idx int
}

// migQueue is the slave's pending-command queue: a heap ordered by
// smallest job input size (then submit time, then arrival order), or pure
// FIFO when the prioritization ablation is enabled.
type migQueue struct {
	entries []*migEntry
	fifo    bool
	seq     uint64
}

func (q *migQueue) nextSeq() uint64 {
	q.seq++
	return q.seq
}

func (q *migQueue) Len() int { return len(q.entries) }

func (q *migQueue) Less(i, j int) bool {
	a, b := q.entries[i], q.entries[j]
	if q.fifo {
		return a.seq < b.seq
	}
	if a.cmd.JobInputSize != b.cmd.JobInputSize {
		return a.cmd.JobInputSize < b.cmd.JobInputSize
	}
	if !a.cmd.SubmitTime.Equal(b.cmd.SubmitTime) {
		return a.cmd.SubmitTime.Before(b.cmd.SubmitTime)
	}
	// Within one job, migrate the most recently enqueued block first
	// (LIFO). Tasks consume a job's blocks front to back, so working
	// from the back keeps migration disjoint from the task frontier
	// instead of racing it and losing to missed reads.
	return a.seq > b.seq
}

func (q *migQueue) Swap(i, j int) {
	q.entries[i], q.entries[j] = q.entries[j], q.entries[i]
	q.entries[i].idx = i
	q.entries[j].idx = j
}

func (q *migQueue) Push(x any) {
	e := x.(*migEntry)
	e.idx = len(q.entries)
	q.entries = append(q.entries, e)
}

func (q *migQueue) Pop() any {
	old := q.entries
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	q.entries = old[:n-1]
	return e
}

func (q *migQueue) push(e *migEntry) { heap.Push(q, e) }

func (q *migQueue) pop() *migEntry { return heap.Pop(q).(*migEntry) }

func (q *migQueue) clear() { q.entries = nil }
