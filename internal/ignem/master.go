package ignem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
)

// Resolver maps file paths to located blocks; the namenode's block
// manager backs this.
type Resolver interface {
	Resolve(path string) ([]dfs.LocatedBlock, error)
}

// SlaveLink delivers command batches to a slave by datanode address; the
// namenode backs this with RPC clients (or direct calls in tests).
type SlaveLink interface {
	SendMigrate(addr string, batch dfs.MigrateBatch) error
	SendEvict(addr string, batch dfs.EvictBatch) error
	SendReadNotify(addr string, batch dfs.ReadNotifyBatch) error
}

// MasterStats is a snapshot of master activity.
type MasterStats struct {
	Epoch       uint64
	ActiveJobs  int
	MigrateReqs int64
	EvictReqs   int64
	// ReadNotifies counts cache-hit read notifications forwarded to
	// slaves (blocks, not batches).
	ReadNotifies   int64
	BlocksAssigned int64
	BytesAssigned  int64
	SendErrors     int64
}

// epochCounter is a master epoch shared by every planner of a
// partitioned master. Slaves hold ONE epoch and purge all state when it
// changes, so per-shard planners must stamp their batches from a common
// counter — independent epochs would make shards' batches purge each
// other's pins on every interleaving.
type epochCounter struct {
	mu sync.Mutex
	v  uint64
}

func newEpochCounter(v uint64) *epochCounter { return &epochCounter{v: v} }

func (e *epochCounter) get() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}

func (e *epochCounter) bump() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v++
	return e.v
}

// Master is a migration planner that runs inside the namenode. It
// decides *what* to migrate; the slaves decide *how* and *when*. A
// cluster runs one Master per metadata shard (one at shard count 1),
// all behind a Coordinator that owns the cross-shard concerns: the
// shared epoch, request fan-out, and stats merging.
type Master struct {
	resolver Resolver
	link     SlaveLink
	rng      *rand.Rand
	// epoch is shared with the sibling shard planners (and the
	// Coordinator); a standalone master owns its counter alone.
	epoch *epochCounter

	mu sync.Mutex
	// jobs records, per job, the slave address chosen for each block so
	// evictions go to the replica that was migrated.
	jobs  map[dfs.JobID]map[dfs.BlockID]string
	stats MasterStats
}

// NewMaster creates a standalone master with the given block resolver
// and slave link. The seed drives the random single-replica choice.
func NewMaster(resolver Resolver, link SlaveLink, seed int64) *Master {
	return newShardMaster(resolver, link, seed, newEpochCounter(1))
}

// newShardMaster creates one shard's planner sharing the given epoch
// counter.
func newShardMaster(resolver Resolver, link SlaveLink, seed int64, epoch *epochCounter) *Master {
	return &Master{
		resolver: resolver,
		link:     link,
		rng:      rand.New(rand.NewSource(seed)),
		epoch:    epoch,
		jobs:     make(map[dfs.JobID]map[dfs.BlockID]string),
	}
}

// Migrate handles a client migrate request: resolve files to blocks,
// choose one replica per block at random (network bandwidth is plentiful,
// so one in-memory copy suffices), and push batched commands to the
// slaves. It returns how much work was enqueued.
func (m *Master) Migrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	if req.Job == "" {
		return dfs.MigrateResp{}, fmt.Errorf("ignem: migrate with empty job ID")
	}
	var located []dfs.LocatedBlock
	for _, path := range req.Paths {
		blocks, err := m.resolver.Resolve(path)
		if err != nil {
			return dfs.MigrateResp{}, fmt.Errorf("ignem: resolve %s: %w", path, err)
		}
		located = append(located, blocks...)
	}
	var totalSize int64
	for _, lb := range located {
		totalSize += lb.Block.Size
	}

	m.mu.Lock()
	m.stats.MigrateReqs++
	m.mu.Unlock()
	blocks, bytes := m.migrateLocated(req.Job, located, totalSize, req.SubmitTime, req.Implicit)
	return dfs.MigrateResp{Blocks: blocks, Bytes: bytes}, nil
}

// migrateLocated assigns one replica per not-yet-assigned block and
// pushes the batched commands to the slaves. totalSize is the job's
// WHOLE input size — across every shard when the job's files span
// shards — because it drives the slaves' smallest-job-first priority:
// stamping a per-shard subtotal would let one sort's shard fragments
// jump the global order. The request counter is the caller's concern
// (the Coordinator counts a cross-shard request once, not once per
// planner touched).
func (m *Master) migrateLocated(job dfs.JobID, located []dfs.LocatedBlock, totalSize int64, submitTime time.Time, implicit bool) (int, int64) {
	m.mu.Lock()
	epoch := m.epoch.get()
	assigned := m.jobs[job]
	if assigned == nil {
		assigned = make(map[dfs.BlockID]string)
		m.jobs[job] = assigned
	}
	batches := make(map[string][]dfs.MigrateCmd)
	var blocks int
	var bytes int64
	for _, lb := range located {
		if len(lb.Nodes) == 0 {
			continue // no live replica; nothing to migrate
		}
		if _, dup := assigned[lb.Block.ID]; dup {
			continue // already requested for this job
		}
		addr := lb.Nodes[m.rng.Intn(len(lb.Nodes))]
		assigned[lb.Block.ID] = addr
		batches[addr] = append(batches[addr], dfs.MigrateCmd{
			Block:        lb.Block,
			Job:          job,
			JobInputSize: totalSize,
			SubmitTime:   submitTime,
			Implicit:     implicit,
		})
		blocks++
		bytes += lb.Block.Size
	}
	m.stats.BlocksAssigned += int64(blocks)
	m.stats.BytesAssigned += bytes
	m.mu.Unlock()

	m.sendMigrateBatches(epoch, batches)
	return blocks, bytes
}

func (m *Master) sendMigrateBatches(epoch uint64, batches map[string][]dfs.MigrateCmd) {
	for _, addr := range sortedKeys(batches) {
		if err := m.link.SendMigrate(addr, dfs.MigrateBatch{Epoch: epoch, Cmds: batches[addr]}); err != nil {
			m.mu.Lock()
			m.stats.SendErrors++
			m.mu.Unlock()
		}
	}
}

// Evict handles a job-completion eviction: every block recorded for the
// job is released on the slave it was assigned to, and the job's master
// state is dropped.
func (m *Master) Evict(req dfs.EvictReq) (dfs.EvictResp, error) {
	m.mu.Lock()
	m.stats.EvictReqs++
	m.mu.Unlock()
	return dfs.EvictResp{Blocks: m.evictJob(req.Job)}, nil
}

// evictJob releases every block this planner recorded for the job and
// drops the job's state, returning how many evict notifications went
// out. A planner that never saw the job is a no-op.
func (m *Master) evictJob(job dfs.JobID) int {
	m.mu.Lock()
	epoch := m.epoch.get()
	assigned := m.jobs[job]
	delete(m.jobs, job)
	batches := make(map[string][]dfs.EvictCmd)
	blocks := 0
	for id, addr := range assigned {
		batches[addr] = append(batches[addr], dfs.EvictCmd{Block: id, Job: job})
		blocks++
	}
	m.mu.Unlock()

	for _, addr := range sortedKeys(batches) {
		cmds := batches[addr]
		sort.Slice(cmds, func(i, j int) bool { return cmds[i].Block < cmds[j].Block })
		if err := m.link.SendEvict(addr, dfs.EvictBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.mu.Lock()
			m.stats.SendErrors++
			m.mu.Unlock()
		}
	}
	return blocks
}

// NotifyRead handles a client's batched cache-hit notification: the
// client served these blocks for Job from its own memory, so no datanode
// observed the reads and no slave advanced its reference lists. The
// master forwards each block to the slave it assigned the migration to,
// letting implicit eviction fire exactly as if the datanode had served
// the read. Blocks the master never assigned for the job (already
// evicted, never migrated, or assigned by a previous epoch) are dropped:
// there is no reference to release.
func (m *Master) NotifyRead(job dfs.JobID, blocks []dfs.BlockID) {
	m.mu.Lock()
	epoch := m.epoch.get()
	assigned := m.jobs[job]
	batches := make(map[string][]dfs.ReadNotifyCmd)
	for _, id := range blocks {
		addr, ok := assigned[id]
		if !ok {
			continue
		}
		batches[addr] = append(batches[addr], dfs.ReadNotifyCmd{Block: id, Job: job})
		m.stats.ReadNotifies++
	}
	m.mu.Unlock()

	for _, addr := range sortedKeys(batches) {
		cmds := batches[addr]
		sort.Slice(cmds, func(i, j int) bool { return cmds[i].Block < cmds[j].Block })
		if err := m.link.SendReadNotify(addr, dfs.ReadNotifyBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.mu.Lock()
			m.stats.SendErrors++
			m.mu.Unlock()
		}
	}
}

// AssignedReplica reports the replica address the master chose for a
// (job, block) migration, or "" if none.
func (m *Master) AssignedReplica(job dfs.JobID, block dfs.BlockID) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[job][block]
}

// Restart simulates a master failure and recovery: the new master starts
// with empty state and a new epoch. Slaves purge their reference lists
// when they first see the new epoch, staying consistent with it.
// (Partitioned masters restart through their Coordinator, which bumps
// the shared epoch exactly once across all planners.)
func (m *Master) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch.bump()
	m.jobs = make(map[dfs.JobID]map[dfs.BlockID]string)
}

// clearJobs drops all job state without touching the epoch; the
// Coordinator's Restart bumps the shared counter itself.
func (m *Master) clearJobs() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs = make(map[dfs.JobID]map[dfs.BlockID]string)
}

// Epoch returns the current master epoch.
func (m *Master) Epoch() uint64 { return m.epoch.get() }

// jobIDs lists the jobs this planner currently tracks.
func (m *Master) jobIDs() []dfs.JobID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]dfs.JobID, 0, len(m.jobs))
	for job := range m.jobs {
		out = append(out, job)
	}
	return out
}

// Stats returns a snapshot of master activity.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Epoch = m.epoch.get()
	st.ActiveJobs = len(m.jobs)
	return st
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
