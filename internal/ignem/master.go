package ignem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
)

// Resolver maps file paths to located blocks; the namenode's block
// manager backs this.
type Resolver interface {
	Resolve(path string) ([]dfs.LocatedBlock, error)
}

// SlaveLink delivers command batches to a slave by datanode address; the
// namenode backs this with RPC clients (or direct calls in tests).
type SlaveLink interface {
	SendMigrate(addr string, batch dfs.MigrateBatch) error
	SendEvict(addr string, batch dfs.EvictBatch) error
	SendReadNotify(addr string, batch dfs.ReadNotifyBatch) error
}

// DemoteSender is an optional SlaveLink extension for the tier ladder:
// delivery of demote batches (release a fast-tier residency without
// evicting the job). Links that don't implement it simply never carry
// demotions — only tier-configured masters issue them. Demotes are
// advisory at-most-once sends: the budget was already released durably,
// and a lost demote only leaves the slave's copy resident until the
// owning jobs evict.
type DemoteSender interface {
	SendDemote(addr string, batch dfs.DemoteBatch) error
}

// MasterStats is a snapshot of master activity.
type MasterStats struct {
	Epoch       uint64
	ActiveJobs  int
	MigrateReqs int64
	EvictReqs   int64
	// ReadNotifies counts cache-hit read notifications forwarded to
	// slaves (blocks, not batches).
	ReadNotifies   int64
	BlocksAssigned int64
	BytesAssigned  int64
	SendErrors     int64
	// SendFailures counts command batches that failed transport and were
	// parked on the journal-backed retry queue instead of dropped (only
	// a journaled master retries; SendErrors still counts every failure
	// for compatibility with older scenarios).
	SendFailures int64
	// RetriedBatches counts parked batches later delivered by the retry
	// pump.
	RetriedBatches int64
	// PendingRetries is the retry queue's length at snapshot time.
	PendingRetries int
	// WALRecords counts journal records appended since the journal was
	// attached or last replayed.
	WALRecords int64
	// WALReplayed counts journal records decoded by the most recent
	// recovery.
	WALReplayed int64
	// ResumedJobs counts live (un-evicted) jobs rebuilt from the journal
	// across all recoveries.
	ResumedJobs int64
	// Tiers is the tier ladder's budget accounting (occupancy,
	// promotions, demotions, rejects). All-zero without a configured
	// tier plane.
	Tiers TierCounters
}

// epochCounter is a master epoch shared by every planner of a
// partitioned master. Slaves hold ONE epoch and purge all state when it
// changes, so per-shard planners must stamp their batches from a common
// counter — independent epochs would make shards' batches purge each
// other's pins on every interleaving.
type epochCounter struct {
	mu sync.Mutex
	v  uint64
}

func newEpochCounter(v uint64) *epochCounter { return &epochCounter{v: v} }

func (e *epochCounter) get() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}

func (e *epochCounter) bump() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v++
	return e.v
}

// set restores a journaled epoch during WAL recovery. Recovery
// deliberately does NOT bump: the restarted master resumes the same
// epoch, so slaves keep their pins and re-sent batches are idempotent
// no-ops instead of purges.
func (e *epochCounter) set(v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v = v
}

// Master is a migration planner that runs inside the namenode. It
// decides *what* to migrate; the slaves decide *how* and *when*. A
// cluster runs one Master per metadata shard (one at shard count 1),
// all behind a Coordinator that owns the cross-shard concerns: the
// shared epoch, request fan-out, and stats merging.
type Master struct {
	resolver Resolver
	link     SlaveLink
	rng      *rand.Rand
	// epoch is shared with the sibling shard planners (and the
	// Coordinator); a standalone master owns its counter alone.
	epoch *epochCounter

	// Tier plane, shared across sibling shards (nil on a default
	// master — every consulting code path then short-circuits to the
	// paper's pin-in-RAM behavior). policy picks tiers, ledger enforces
	// the budgets, pop scores the read-notification stream.
	policy Policy
	ledger *tierLedger
	pop    *popTracker

	mu sync.Mutex
	// jobs records, per job, the placement chosen for each block (and
	// enough metadata to re-issue ladder rungs) so evictions go to the
	// replica that was migrated and climbs can rebuild their commands.
	jobs  map[dfs.JobID]*jobState
	stats MasterStats
	// journal, when attached, makes planning durable-before-send and
	// parks transport-failed batches on retries instead of dropping
	// them. Nil for an unjournaled master (the historical behavior).
	journal *Journal
	// retries holds batches that failed transport, re-sent by the retry
	// pump until they deliver or their epoch goes stale.
	retries []retryBatch
}

// jobState is one job's planning record: the per-block placements plus
// the metadata every MigrateCmd for the job must carry (so the ladder's
// second rung can mint commands without re-resolving the job).
type jobState struct {
	implicit   bool
	inputSize  int64
	submitTime time.Time
	blocks     map[dfs.BlockID]*assignment
}

// assignment is one block's placement: the replica address chosen for
// the migration and the tier currently targeted (the rung in flight).
type assignment struct {
	addr     string
	size     int64
	checksum uint32
	tier     dfs.Tier
}

// retryBatch is one parked command batch. Exactly one of migrate/evict
// is non-nil. Batches are job-pure (a migrate batch always carries one
// job's commands), so a delivery can be journaled against its job.
type retryBatch struct {
	epoch   uint64
	addr    string
	job     dfs.JobID
	migrate []dfs.MigrateCmd
	evict   []dfs.EvictCmd
}

func (rb retryBatch) blockIDs() []dfs.BlockID {
	var ids []dfs.BlockID
	for _, c := range rb.migrate {
		ids = append(ids, c.Block.ID)
	}
	for _, c := range rb.evict {
		ids = append(ids, c.Block)
	}
	return ids
}

// NewMaster creates a standalone master with the given block resolver
// and slave link. The seed drives the random single-replica choice.
func NewMaster(resolver Resolver, link SlaveLink, seed int64) *Master {
	return newShardMaster(resolver, link, seed, newEpochCounter(1))
}

// newShardMaster creates one shard's planner sharing the given epoch
// counter.
func newShardMaster(resolver Resolver, link SlaveLink, seed int64, epoch *epochCounter) *Master {
	return &Master{
		resolver: resolver,
		link:     link,
		rng:      rand.New(rand.NewSource(seed)),
		epoch:    epoch,
		jobs:     make(map[dfs.JobID]*jobState),
	}
}

// setTierPlane installs the shared policy, budget ledger, and
// popularity tracker (the Coordinator configures all shards from one
// set). Must be called before the master serves requests.
func (m *Master) setTierPlane(p Policy, l *tierLedger, pop *popTracker) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
	m.ledger = l
	m.pop = pop
}

// Migrate handles a client migrate request: resolve files to blocks,
// choose one replica per block at random (network bandwidth is plentiful,
// so one in-memory copy suffices), and push batched commands to the
// slaves. It returns how much work was enqueued.
func (m *Master) Migrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	if req.Job == "" {
		return dfs.MigrateResp{}, fmt.Errorf("ignem: migrate with empty job ID")
	}
	var located []dfs.LocatedBlock
	for _, path := range req.Paths {
		blocks, err := m.resolver.Resolve(path)
		if err != nil {
			return dfs.MigrateResp{}, fmt.Errorf("ignem: resolve %s: %w", path, err)
		}
		located = append(located, blocks...)
	}
	var totalSize int64
	for _, lb := range located {
		totalSize += lb.Block.Size
	}

	m.mu.Lock()
	m.stats.MigrateReqs++
	m.mu.Unlock()
	blocks, bytes, err := m.migrateLocated(req.Job, located, totalSize, req.SubmitTime, req.Implicit)
	if err != nil {
		return dfs.MigrateResp{}, err
	}
	return dfs.MigrateResp{Blocks: blocks, Bytes: bytes}, nil
}

// migrateLocated assigns one replica per not-yet-assigned block and
// pushes the batched commands to the slaves. totalSize is the job's
// WHOLE input size — across every shard when the job's files span
// shards — because it drives the slaves' smallest-job-first priority:
// stamping a per-shard subtotal would let one sort's shard fragments
// jump the global order. The request counter is the caller's concern
// (the Coordinator counts a cross-shard request once, not once per
// planner touched).
//
// With a journal attached the plan is made durable BEFORE anything is
// assigned or sent: a failed append returns an error with no state
// change at all (master-crash model — if the log can't be written, the
// master is dead and the client's Migrate fails with it).
func (m *Master) migrateLocated(job dfs.JobID, located []dfs.LocatedBlock, totalSize int64, submitTime time.Time, implicit bool) (int, int64, error) {
	m.mu.Lock()
	epoch := m.epoch.get()
	js := m.jobs[job]
	batches := make(map[string][]dfs.MigrateCmd)
	demotes := make(map[string][]dfs.DemoteCmd)
	var entries []planEntry
	var charges []charge
	pending := make(map[dfs.BlockID]struct{})
	ssdOn := m.ledger.ssdEnabled()
	var blocks int
	var bytes int64
	for _, lb := range located {
		if len(lb.Nodes) == 0 {
			continue // no live replica; nothing to migrate
		}
		if js != nil {
			if _, dup := js.blocks[lb.Block.ID]; dup {
				continue // already requested for this job
			}
		}
		if _, dup := pending[lb.Block.ID]; dup {
			continue // duplicate within this request
		}
		pending[lb.Block.ID] = struct{}{}
		addr := lb.Nodes[m.rng.Intn(len(lb.Nodes))]
		tier := dfs.TierRAM
		if m.policy != nil {
			tier = m.planTierLocked(job, lb.Block, totalSize, addr, ssdOn, demotes, &charges)
			if tier == dfs.TierHDD {
				continue // budget-rejected on every rung; the block stays on disk
			}
		}
		entries = append(entries, planEntry{ID: lb.Block.ID, Size: lb.Block.Size, Checksum: lb.Checksum, Addr: addr, Tier: tier})
		batches[addr] = append(batches[addr], dfs.MigrateCmd{
			Block:        lb.Block,
			Job:          job,
			JobInputSize: totalSize,
			SubmitTime:   submitTime,
			Implicit:     implicit,
			Checksum:     lb.Checksum,
			Tier:         tier,
		})
		blocks++
		bytes += lb.Block.Size
	}
	if m.journal != nil && len(entries) > 0 {
		// Demote releases go down first: on replay the freed budget must
		// exist before the plan that consumed it re-charges.
		journalErr := m.journalDemotesLocked(demotes)
		if journalErr == nil {
			journalErr = m.journal.AppendPlan(epoch, job, implicit, totalSize, submitTime, entries)
		}
		if journalErr != nil {
			for _, c := range charges {
				m.ledger.release(c.id, c.addr, c.tier, false)
			}
			m.mu.Unlock()
			return 0, 0, fmt.Errorf("ignem: journal plan for job %s: %w", job, journalErr)
		}
	}
	if js == nil {
		// Created even for an empty fragment: a migrate request always
		// registers the job (ActiveJobs, idempotent re-migrate).
		js = &jobState{blocks: make(map[dfs.BlockID]*assignment)}
		m.jobs[job] = js
	}
	js.implicit = implicit
	js.inputSize = totalSize
	js.submitTime = submitTime
	for _, e := range entries {
		js.blocks[e.ID] = &assignment{addr: e.Addr, size: e.Size, checksum: e.Checksum, tier: e.Tier}
	}
	m.stats.BlocksAssigned += int64(blocks)
	m.stats.BytesAssigned += bytes
	m.mu.Unlock()

	m.sendDemotes(epoch, demotes)
	m.sendMigrateBatches(epoch, job, batches)
	return blocks, bytes, nil
}

// charge records one fresh ledger reservation taken while planning, so
// a journal failure can roll back exactly what this request charged.
type charge struct {
	id   dfs.BlockID
	addr string
	tier dfs.Tier
}

// planTierLocked runs the policy for one block: pick a tier, reserve
// budget for it (demoting victims the policy offers when the budget is
// short), and fall one rung at a time when a reservation cannot be
// made. TierHDD means no rung admitted the block.
func (m *Master) planTierLocked(job dfs.JobID, b dfs.Block, totalSize int64, addr string, ssdOn bool, demotes map[string][]dfs.DemoteCmd, charges *[]charge) dfs.Tier {
	ctx := PlanContext{Job: job, Block: b, JobInputSize: totalSize, Popularity: m.pop.get(b.ID), SSDEnabled: ssdOn}
	tier := m.policy.PlanTier(ctx)
	if tier == dfs.TierSSD && !ssdOn {
		tier = dfs.TierRAM
	}
	for tier > dfs.TierHDD {
		if m.tryReserveLocked(job, b, addr, tier, demotes, charges) {
			return tier
		}
		m.ledger.noteReject(tier)
		if tier == dfs.TierRAM && ssdOn {
			tier = dfs.TierSSD
			continue
		}
		tier = dfs.TierHDD
	}
	return dfs.TierHDD
}

// tryReserveLocked attempts a budget reservation at tier, demoting
// policy-chosen victims to make room when the tier is over budget.
func (m *Master) tryReserveLocked(job dfs.JobID, b dfs.Block, addr string, tier dfs.Tier, demotes map[string][]dfs.DemoteCmd, charges *[]charge) bool {
	if need := m.ledger.shortfall(tier, b.Size); need > 0 {
		victims := m.policy.Victims(tier, need, m.ledger.residents(tier, m.pop))
		if len(victims) == 0 {
			return false
		}
		for _, v := range victims {
			m.ledger.release(v.ID, v.Addr, tier, true)
			demotes[v.Addr] = append(demotes[v.Addr], dfs.DemoteCmd{Block: v.ID, Tier: tier})
		}
	}
	ok, fresh := m.ledger.reserve(b.ID, addr, b.Size, job, tier, false)
	if fresh {
		*charges = append(*charges, charge{id: b.ID, addr: addr, tier: tier})
	}
	return ok
}

// journalDemotesLocked makes this plan's demotions durable, grouped by
// (addr, tier).
func (m *Master) journalDemotesLocked(demotes map[string][]dfs.DemoteCmd) error {
	for _, addr := range sortedKeys(demotes) {
		perTier := make(map[dfs.Tier][]dfs.BlockID)
		for _, c := range demotes[addr] {
			perTier[c.Tier] = append(perTier[c.Tier], c.Block)
		}
		for _, tier := range []dfs.Tier{dfs.TierSSD, dfs.TierRAM} {
			if ids := perTier[tier]; len(ids) > 0 {
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				if err := m.journal.AppendDemote(addr, tier, ids); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sendDemotes delivers demote batches. Failures only count: the budget
// release is already durable, and the slave's stale copy drains when
// its jobs evict.
func (m *Master) sendDemotes(epoch uint64, demotes map[string][]dfs.DemoteCmd) {
	if len(demotes) == 0 {
		return
	}
	ds, ok := m.link.(DemoteSender)
	if !ok {
		return
	}
	for _, addr := range sortedKeys(demotes) {
		cmds := demotes[addr]
		sort.Slice(cmds, func(i, j int) bool { return cmds[i].Block < cmds[j].Block })
		if err := ds.SendDemote(addr, dfs.DemoteBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.mu.Lock()
			m.stats.SendErrors++
			m.mu.Unlock()
		}
	}
}

// sendMigrateBatches delivers a job's planned batches. A transport
// failure parks the batch for retry (when journaled — a bare master
// keeps the historical drop-and-count behavior); a journal failure
// recording a delivery stops the loop, since a master that can't write
// its log is dead (undelivered batches stay planned-not-copied in the
// journal and are re-sent on recovery).
func (m *Master) sendMigrateBatches(epoch uint64, job dfs.JobID, batches map[string][]dfs.MigrateCmd) {
	for _, addr := range sortedKeys(batches) {
		cmds := batches[addr]
		if err := m.link.SendMigrate(addr, dfs.MigrateBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.parkBatch(retryBatch{epoch: epoch, addr: addr, job: job, migrate: cmds})
			continue
		}
		if !m.journalDelivery(retryBatch{addr: addr, job: job, migrate: cmds}) {
			return
		}
	}
}

// parkBatch counts a transport failure and, when a journal is attached,
// queues the batch for the retry pump.
func (m *Master) parkBatch(rb retryBatch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SendErrors++
	if m.journal == nil {
		return
	}
	m.stats.SendFailures++
	m.retries = append(m.retries, rb)
}

// journalDelivery records a delivered batch (recCopied or
// recEvictBatch). It reports false when the journal append failed —
// the caller must stop sending, because nothing past this point can be
// made durable. Migrate deliveries are journaled per target tier, so
// replay matches each delivery against the rung it belongs to.
func (m *Master) journalDelivery(rb retryBatch) bool {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return true
	}
	if rb.migrate == nil {
		return j.AppendEvictBatch(rb.job, rb.addr, rb.blockIDs()) == nil
	}
	perTier := make(map[dfs.Tier][]dfs.BlockID)
	for _, c := range rb.migrate {
		t := c.Tier.EffectiveTarget()
		perTier[t] = append(perTier[t], c.Block.ID)
	}
	for _, tier := range []dfs.Tier{dfs.TierSSD, dfs.TierRAM} {
		if ids := perTier[tier]; len(ids) > 0 {
			if err := j.AppendCopied(rb.job, rb.addr, tier, ids); err != nil {
				return false
			}
		}
	}
	return true
}

// Evict handles a job-completion eviction: every block recorded for the
// job is released on the slave it was assigned to, and the job's master
// state is dropped.
func (m *Master) Evict(req dfs.EvictReq) (dfs.EvictResp, error) {
	m.mu.Lock()
	m.stats.EvictReqs++
	m.mu.Unlock()
	blocks, err := m.evictJob(req.Job)
	if err != nil {
		return dfs.EvictResp{}, err
	}
	return dfs.EvictResp{Blocks: blocks}, nil
}

// evictJob releases every block this planner recorded for the job and
// drops the job's state, returning how many evict notifications went
// out. A planner that never saw the job is a no-op. With a journal
// attached the eviction intent is durable before anything is sent or
// dropped; a failed intent append leaves the job fully intact (the
// crash model again — the Evict call fails with the dead master).
// Parked migrate retries for the job are cancelled, so the retry pump
// can never re-pin a block the job already released.
func (m *Master) evictJob(job dfs.JobID) (int, error) {
	m.mu.Lock()
	epoch := m.epoch.get()
	js := m.jobs[job]
	assignedLen := 0
	if js != nil {
		assignedLen = len(js.blocks)
	}
	hasRetries := false
	for _, rb := range m.retries {
		if rb.job == job {
			hasRetries = true
			break
		}
	}
	if m.journal != nil && (assignedLen > 0 || hasRetries) {
		if err := m.journal.AppendEvictIntent(job); err != nil {
			m.mu.Unlock()
			return 0, fmt.Errorf("ignem: journal evict intent for job %s: %w", job, err)
		}
	}
	delete(m.jobs, job)
	if hasRetries {
		kept := m.retries[:0]
		for _, rb := range m.retries {
			if rb.job == job && rb.migrate != nil {
				continue
			}
			kept = append(kept, rb)
		}
		m.retries = kept
	}
	batches := make(map[string][]dfs.EvictCmd)
	blocks := 0
	if js != nil {
		for id, a := range js.blocks {
			batches[a.addr] = append(batches[a.addr], dfs.EvictCmd{Block: id, Job: job})
			blocks++
			// The ledger keeps the residency's charges (the slave still
			// holds the bytes until its unpin delta) but the job's
			// reference drops, making the block a colder demotion victim.
			m.ledger.dropRef(id, a.addr, job)
		}
	}
	m.mu.Unlock()

	for _, addr := range sortedKeys(batches) {
		cmds := batches[addr]
		sort.Slice(cmds, func(i, j int) bool { return cmds[i].Block < cmds[j].Block })
		if err := m.link.SendEvict(addr, dfs.EvictBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.parkBatch(retryBatch{epoch: epoch, addr: addr, job: job, evict: cmds})
			continue
		}
		if !m.journalDelivery(retryBatch{addr: addr, job: job, evict: cmds}) {
			break
		}
	}
	return blocks, nil
}

// flushRetries re-sends every parked batch whose epoch is still
// current; failures park again, stale epochs drop (a restart purged the
// slaves, so the batch's state is gone anyway). Deliveries are
// journaled like first-time sends.
func (m *Master) flushRetries() {
	m.mu.Lock()
	pending := m.retries
	m.retries = nil
	epoch := m.epoch.get()
	m.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	var requeue []retryBatch
	for _, rb := range pending {
		if rb.epoch != epoch {
			continue
		}
		if rb.migrate != nil && !m.jobLive(rb.job) {
			continue // evicted while parked; never re-pin
		}
		var err error
		if rb.migrate != nil {
			err = m.link.SendMigrate(rb.addr, dfs.MigrateBatch{Epoch: rb.epoch, Cmds: rb.migrate})
		} else {
			err = m.link.SendEvict(rb.addr, dfs.EvictBatch{Epoch: rb.epoch, Cmds: rb.evict})
		}
		if err != nil {
			requeue = append(requeue, rb)
			continue
		}
		m.mu.Lock()
		m.stats.RetriedBatches++
		m.mu.Unlock()
		m.journalDelivery(rb)
	}
	if len(requeue) > 0 {
		m.mu.Lock()
		m.retries = append(requeue, m.retries...)
		m.mu.Unlock()
	}
}

func (m *Master) jobLive(job dfs.JobID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.jobs[job]
	return ok
}

// notePinned records heartbeat-confirmed pins at tier against the
// journal: addr now holds the listed blocks pinned and
// checksum-verified, which is the state machine's swapped/checked
// stage. Blocks the planner never assigned (or assigned elsewhere, or
// at another tier) are ignored. For SSD pins it then consults the
// policy for the ladder's second rung, promoting qualifying blocks
// SSD→RAM.
func (m *Master) notePinned(addr string, tier dfs.Tier, blocks []dfs.BlockID) {
	m.mu.Lock()
	j := m.journal
	pol := m.policy
	if j == nil && pol == nil {
		m.mu.Unlock()
		return
	}
	perJob := make(map[dfs.JobID][]dfs.BlockID)
	for job, js := range m.jobs {
		for _, id := range blocks {
			if a := js.blocks[id]; a != nil && a.addr == addr && a.tier == tier {
				perJob[job] = append(perJob[job], id)
			}
		}
	}
	m.mu.Unlock()
	if j != nil {
		for _, job := range sortedJobs(perJob) {
			ids := perJob[job]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			// Append failures are ignored: pins re-confirm on the next
			// heartbeat, and a lost recPinned only costs recovery one
			// redundant (idempotent) re-send.
			_ = j.AppendPinned(job, addr, tier, ids)
		}
	}
	if pol != nil && tier == dfs.TierSSD {
		m.climb(addr, perJob)
	}
}

// climb issues the ladder's second rung: for blocks just confirmed
// pinned on addr's SSD, ask the policy whether they earn RAM, reserve
// RAM budget (no victim demotion for climbs — a full RAM simply leaves
// the block on flash), journal the re-plan, and send the RAM-rung
// migrate commands. The slave reads the block from its SSD copy and
// releases the flash residency once the RAM pin lands.
func (m *Master) climb(addr string, perJob map[dfs.JobID][]dfs.BlockID) {
	m.mu.Lock()
	epoch := m.epoch.get()
	type jobClimb struct {
		entries []planEntry
		cmds    []dfs.MigrateCmd
	}
	plans := make(map[dfs.JobID]*jobClimb)
	for _, job := range sortedJobs(perJob) {
		js := m.jobs[job]
		if js == nil {
			continue
		}
		ids := perJob[job]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			a := js.blocks[id]
			if a == nil || a.addr != addr || a.tier != dfs.TierSSD {
				continue
			}
			ctx := PlanContext{
				Job:          job,
				Block:        dfs.Block{ID: id, Size: a.size},
				JobInputSize: js.inputSize,
				Popularity:   m.pop.get(id),
				SSDEnabled:   true,
			}
			if m.policy.ClimbTier(ctx, dfs.TierSSD) != dfs.TierRAM {
				continue
			}
			if ok, _ := m.ledger.reserve(id, addr, a.size, job, dfs.TierRAM, true); !ok {
				m.ledger.noteReject(dfs.TierRAM)
				continue
			}
			a.tier = dfs.TierRAM
			jc := plans[job]
			if jc == nil {
				jc = &jobClimb{}
				plans[job] = jc
			}
			jc.entries = append(jc.entries, planEntry{ID: id, Size: a.size, Checksum: a.checksum, Addr: addr, Tier: dfs.TierRAM})
			jc.cmds = append(jc.cmds, dfs.MigrateCmd{
				Block:        dfs.Block{ID: id, Size: a.size},
				Job:          job,
				JobInputSize: js.inputSize,
				SubmitTime:   js.submitTime,
				Implicit:     js.implicit,
				Checksum:     a.checksum,
				Tier:         dfs.TierRAM,
			})
		}
	}
	type send struct {
		job  dfs.JobID
		cmds []dfs.MigrateCmd
	}
	var sends []send
	for _, job := range sortedJobs(plans) {
		jc := plans[job]
		js := m.jobs[job]
		if m.journal != nil {
			if err := m.journal.AppendPlan(epoch, job, js.implicit, js.inputSize, js.submitTime, jc.entries); err != nil {
				// Crash model: an unjournalable master is dead. The rung
				// stays assigned in memory; recovery re-derives it from
				// the journaled SSD pins.
				continue
			}
		}
		sends = append(sends, send{job: job, cmds: jc.cmds})
	}
	m.mu.Unlock()
	for _, s := range sends {
		m.sendMigrateBatches(epoch, s.job, map[string][]dfs.MigrateCmd{addr: s.cmds})
	}
}

// noteUnpinned releases tier-budget charges for blocks a slave reported
// unpinned at tier, journaling the release so a recovered ledger's
// occupancy matches. A no-op without a configured tier plane, so the
// default master's journal stream is unchanged.
func (m *Master) noteUnpinned(addr string, tier dfs.Tier, blocks []dfs.BlockID) {
	if m.ledger == nil || len(blocks) == 0 {
		return
	}
	for _, id := range blocks {
		m.ledger.release(id, addr, tier, false)
	}
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j != nil {
		_ = j.AppendUnpinned(addr, tier, blocks)
	}
}

// pendingRetries reports the retry queue length.
func (m *Master) pendingRetries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retries)
}

func sortedJobs[V any](m map[dfs.JobID]V) []dfs.JobID {
	out := make([]dfs.JobID, 0, len(m))
	for job := range m {
		out = append(out, job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NotifyRead handles a client's batched cache-hit notification: the
// client served these blocks for Job from its own memory, so no datanode
// observed the reads and no slave advanced its reference lists. The
// master forwards each block to the slave it assigned the migration to,
// letting implicit eviction fire exactly as if the datanode had served
// the read. Blocks the master never assigned for the job (already
// evicted, never migrated, or assigned by a previous epoch) are dropped:
// there is no reference to release.
func (m *Master) NotifyRead(job dfs.JobID, blocks []dfs.BlockID) {
	// Every notified read feeds the popularity score, whether or not the
	// block is still assigned: re-reads are the signal the
	// popularity-scored policy promotes on.
	m.pop.bump(blocks)
	m.mu.Lock()
	epoch := m.epoch.get()
	js := m.jobs[job]
	batches := make(map[string][]dfs.ReadNotifyCmd)
	for _, id := range blocks {
		if js == nil {
			break
		}
		a := js.blocks[id]
		if a == nil {
			continue
		}
		batches[a.addr] = append(batches[a.addr], dfs.ReadNotifyCmd{Block: id, Job: job})
		m.stats.ReadNotifies++
	}
	m.mu.Unlock()

	for _, addr := range sortedKeys(batches) {
		cmds := batches[addr]
		sort.Slice(cmds, func(i, j int) bool { return cmds[i].Block < cmds[j].Block })
		if err := m.link.SendReadNotify(addr, dfs.ReadNotifyBatch{Epoch: epoch, Cmds: cmds}); err != nil {
			m.mu.Lock()
			m.stats.SendErrors++
			m.mu.Unlock()
		}
	}
}

// AssignedReplica reports the replica address the master chose for a
// (job, block) migration, or "" if none.
func (m *Master) AssignedReplica(job dfs.JobID, block dfs.BlockID) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js := m.jobs[job]; js != nil {
		if a := js.blocks[block]; a != nil {
			return a.addr
		}
	}
	return ""
}

// AssignedTier reports the tier currently targeted for a (job, block)
// migration (the rung in flight), or TierHDD if none.
func (m *Master) AssignedTier(job dfs.JobID, block dfs.BlockID) dfs.Tier {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js := m.jobs[job]; js != nil {
		if a := js.blocks[block]; a != nil {
			return a.tier
		}
	}
	return dfs.TierHDD
}

// Restart simulates a master failure and recovery: the new master starts
// with empty state and a new epoch. Slaves purge their reference lists
// when they first see the new epoch, staying consistent with it.
// (Partitioned masters restart through their Coordinator, which bumps
// the shared epoch exactly once across all planners.)
func (m *Master) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch.bump()
	m.jobs = make(map[dfs.JobID]*jobState)
	m.retries = nil
	// The epoch bump purges every slave, so nothing stays resident.
	m.ledger.reset()
}

// clearJobs drops all job state without touching the epoch; the
// Coordinator's Restart bumps the shared counter (and resets the shared
// ledger) itself.
func (m *Master) clearJobs() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs = make(map[dfs.JobID]*jobState)
	m.retries = nil
}

// Epoch returns the current master epoch.
func (m *Master) Epoch() uint64 { return m.epoch.get() }

// jobIDs lists the jobs this planner currently tracks.
func (m *Master) jobIDs() []dfs.JobID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]dfs.JobID, 0, len(m.jobs))
	for job := range m.jobs {
		out = append(out, job)
	}
	return out
}

// Stats returns a snapshot of master activity.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Epoch = m.epoch.get()
	st.ActiveJobs = len(m.jobs)
	st.PendingRetries = len(m.retries)
	if m.journal != nil {
		st.WALRecords = m.journal.Appended()
	}
	st.Tiers = m.ledger.snapshot()
	return st
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
