package ignem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/shardmap"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Coordinator fronts the partitioned Ignem master: one planner (Master)
// per metadata shard, with the cross-shard concerns — the shared epoch,
// request fan-out by the consistent-hash block→shard map, and stats
// merging — kept here. It is deliberately thin: it holds no per-block
// state of its own, so the planners scale independently and the
// coordinator can never become the serialization point the single
// master was.
//
// The "one sort spans shards" case is the design driver: a job whose
// input files hash to several shards is planned by several planners, but
// every MigrateCmd is stamped with the job's WHOLE input size, so the
// slaves' smallest-job-first queues order the job's fragments exactly as
// the unsharded master would. At shard count 1 the coordinator degrades
// to a pass-through and its planner draws the seeded replica-choice rng
// bit-identically to the historical single master.
type Coordinator struct {
	resolver Resolver
	masters  []*Master
	ring     *shardmap.Ring
	epoch    *epochCounter

	// Tier plane (nil until ConfigureTiers): the policy, budget ledger,
	// and popularity tracker shared by every planner, owned here for the
	// same reason the epoch is — budgets are cluster-wide, not per-shard.
	policy Policy
	ledger *tierLedger
	pop    *popTracker

	// reqMu guards the request counters. Requests are counted here, not
	// in the planners: a cross-shard migrate is one request no matter how
	// many planners it touches.
	reqMu       sync.Mutex
	migrateReqs int64
	evictReqs   int64

	// journal, when attached, is shared by every planner; the
	// coordinator owns the cross-shard concerns: recovery, the retry
	// pump, and truncation when nothing is in flight.
	journal     *Journal
	pumpStopped atomic.Bool
	// walReplayed/resumedJobs are recovery counters (under reqMu).
	walReplayed int64
	resumedJobs int64
}

// NewCoordinator builds the partitioned master: shards planners over the
// given resolver and slave link, sharing one epoch. Planner i draws its
// replica choices from a stream derived from seed; shard 0's stream IS
// the seed stream, so a single-shard coordinator replays the historical
// master's draws exactly.
func NewCoordinator(resolver Resolver, link SlaveLink, seed int64, shards int) *Coordinator {
	if shards < 1 {
		shards = 1
	}
	epoch := newEpochCounter(1)
	co := &Coordinator{
		resolver: resolver,
		ring:     shardmap.NewRing(shards),
		epoch:    epoch,
	}
	for i := 0; i < shards; i++ {
		// Shard 0 keeps the undisturbed seed; later shards offset by a
		// large odd constant so the streams never collide with each other
		// or with the namenode's placement streams.
		co.masters = append(co.masters, newShardMaster(resolver, link, seed+int64(i)*0x9E3779B9, epoch))
	}
	return co
}

// Shards returns the planner count.
func (co *Coordinator) Shards() int { return len(co.masters) }

// ConfigureTiers installs the migration ladder: a named policy plus
// per-tier byte budgets, shared across every planner shard. Call before
// serving requests (and before RecoverFromJournal, so a recovered
// ledger has its limits). A coordinator never configured keeps the
// paper's pin-in-RAM behavior bit-identically.
func (co *Coordinator) ConfigureTiers(policyName string, budgets TierBudgets) error {
	p, ok := PolicyByName(policyName)
	if !ok {
		return fmt.Errorf("ignem: unknown migration policy %q", policyName)
	}
	co.policy = p
	co.ledger = newTierLedger(budgets)
	co.pop = newPopTracker()
	for _, m := range co.masters {
		m.setTierPlane(p, co.ledger, co.pop)
	}
	return nil
}

// PolicyName reports the configured policy ("" when no tier plane is
// configured).
func (co *Coordinator) PolicyName() string {
	if co.policy == nil {
		return ""
	}
	return co.policy.Name()
}

// AttachJournal gives every planner a shared migration WAL and starts
// the retry pump: a clock-driven loop that re-sends transport-failed
// batches every interval until they deliver or go stale, and truncates
// the journal whenever nothing is in flight. Call before serving
// requests; use RecoverFromJournal to resume state a previous
// incarnation journaled onto the same backend. StopJournal stops the
// pump.
func (co *Coordinator) AttachJournal(clock simclock.Clock, log *wal.Log, retryInterval time.Duration) {
	if retryInterval <= 0 {
		retryInterval = time.Second
	}
	j := NewJournal(log)
	co.journal = j
	for _, m := range co.masters {
		m.mu.Lock()
		m.journal = j
		m.mu.Unlock()
	}
	if clock != nil {
		clock.Go(func() {
			for {
				clock.Sleep(retryInterval)
				if co.pumpStopped.Load() {
					return
				}
				co.FlushRetries()
			}
		})
	}
}

// StopJournal stops the retry pump (the journal itself stays attached;
// closing the log is the owner's concern).
func (co *Coordinator) StopJournal() { co.pumpStopped.Store(true) }

// FlushRetries re-sends every planner's parked batches once and
// truncates the journal if nothing remains in flight. The retry pump
// calls it on its interval; tests call it directly to make retry
// timing explicit.
func (co *Coordinator) FlushRetries() {
	for _, m := range co.masters {
		m.flushRetries()
	}
	co.maybeTruncate()
}

// maybeTruncate drops the journal when no planner holds a live job or a
// parked batch: everything journaled has fully settled, so a recovery
// from an empty log is exact.
func (co *Coordinator) maybeTruncate() {
	if co.journal == nil {
		return
	}
	for _, m := range co.masters {
		m.mu.Lock()
		busy := len(m.jobs) > 0 || len(m.retries) > 0
		m.mu.Unlock()
		if busy {
			return
		}
	}
	_ = co.journal.Truncate()
}

// NotePinned feeds heartbeat-confirmed pin deltas at tier to the
// planners: the slave at addr now holds these blocks pinned and
// checksum-verified. The journal records the swap, and — for SSD pins
// under a ladder policy — the owning planner issues the second rung.
// A no-op without a journal or a tier plane.
func (co *Coordinator) NotePinned(addr string, tier dfs.Tier, blocks []dfs.BlockID) {
	if (co.journal == nil && co.policy == nil) || len(blocks) == 0 {
		return
	}
	if len(co.masters) == 1 {
		co.masters[0].notePinned(addr, tier, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.notePinned(addr, tier, parts[i])
		}
	}
}

// NoteUnpinned feeds heartbeat unpin deltas at tier to the planners,
// releasing the blocks' budget charges. A no-op without a tier plane.
func (co *Coordinator) NoteUnpinned(addr string, tier dfs.Tier, blocks []dfs.BlockID) {
	if co.ledger == nil || len(blocks) == 0 {
		return
	}
	if len(co.masters) == 1 {
		co.masters[0].noteUnpinned(addr, tier, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.noteUnpinned(addr, tier, parts[i])
		}
	}
}

// RecoverFromJournal rebuilds the planners' state from the journal,
// modelling a master restart that resumes in-flight migrations instead
// of purging them. The journaled epoch is restored WITHOUT bumping —
// slaves keep their pins, and every re-send below is idempotent against
// them:
//
//   - live jobs (no evict intent) re-register their block→replica
//     assignments; entries never journaled as delivered re-park their
//     migrate batches for the retry pump
//   - jobs with a journaled evict intent stay dropped, and evict
//     batches not journaled as delivered are re-parked
//
// After rebuilding, parked batches are flushed once so recovery
// converges without waiting for the pump.
func (co *Coordinator) RecoverFromJournal() error {
	return co.RecoverFromJournalReconciled(nil)
}

// ResidencyView reports a block replica's authoritative fast-tier
// residency — the namenode's heartbeat-maintained pin side tables. The
// dying master may have consumed pin/unpin deltas whose journal appends
// failed (the slaves won't re-send them), so replay alone under-counts
// confirmed pins and over-counts released charges; recovery reconciles
// against this view to close both gaps.
type ResidencyView func(id dfs.BlockID, addr string) (ram, ssd bool)

// RecoverFromJournalReconciled is RecoverFromJournal with a residency
// view to reconcile the replayed state against (nil skips
// reconciliation):
//
//   - an entry planned at a fast tier whose pin confirmation was lost
//     but whose residency the view confirms is marked pinned, so the
//     ladder's next rung still climbs instead of stalling forever
//   - an SSD budget charge whose block has left flash and reached RAM
//     (the climb completed; the unpin record was lost) is released
func (co *Coordinator) RecoverFromJournalReconciled(view ResidencyView) error {
	if co.journal == nil {
		return fmt.Errorf("ignem: recover without a journal attached")
	}
	rec, err := co.journal.Replay()
	if err != nil {
		return fmt.Errorf("ignem: journal replay: %w", err)
	}
	if view != nil {
		co.reconcileReplay(rec, view)
	}
	for _, m := range co.masters {
		m.mu.Lock()
	}
	if rec.epoch > 0 {
		co.epoch.set(rec.epoch)
	}
	epoch := co.epoch.get()
	for _, m := range co.masters {
		m.jobs = make(map[dfs.JobID]*jobState)
		m.retries = nil
	}
	// The budget ledger is rebuilt wholesale from the replayed charge/
	// release stream, so a recovered master admits exactly what the dead
	// one had admitted.
	co.ledger.load(rec.residency)
	resumed := int64(0)
	// ssdPinned collects blocks whose SSD pin was confirmed but whose
	// second rung was never planned: recovery re-runs the climb decision
	// for them once the planners are unlocked (heartbeats won't re-send
	// those deltas — the slaves already reported them).
	ssdPinned := make(map[retryKey][]dfs.BlockID)
	for _, job := range sortedJobs(rec.jobs) {
		rj := rec.jobs[job]
		if rj.evictIntent {
			co.repileEvicts(epoch, job, rj)
			continue
		}
		resumed++
		// Shard 0 anchors the job as a live migrate request would.
		co.anchorJob(0, job, rj)
		pending := make(map[retryKey][]dfs.MigrateCmd)
		for _, id := range sortedBlockIDs(rj.blocks) {
			e := rj.blocks[id]
			s := co.ring.BlockShard(uint64(id))
			co.anchorJob(s, job, rj).blocks[id] = &assignment{addr: e.addr, size: e.size, checksum: e.checksum, tier: e.tier}
			if e.pinned && e.tier == dfs.TierSSD {
				k := retryKey{s, e.addr}
				ssdPinned[k] = append(ssdPinned[k], id)
			}
			if e.copied || e.pinned {
				continue
			}
			k := retryKey{s, e.addr}
			pending[k] = append(pending[k], dfs.MigrateCmd{
				Block:        dfs.Block{ID: id, Size: e.size},
				Job:          job,
				JobInputSize: rj.jobInputSize,
				SubmitTime:   rj.submitTime,
				Implicit:     rj.implicit,
				Checksum:     e.checksum,
				Tier:         e.tier,
			})
		}
		for _, k := range sortedRetryKeys(pending) {
			m := co.masters[k.shard]
			m.retries = append(m.retries, retryBatch{epoch: epoch, addr: k.addr, job: job, migrate: pending[k]})
		}
	}
	for i := len(co.masters) - 1; i >= 0; i-- {
		co.masters[i].mu.Unlock()
	}
	co.reqMu.Lock()
	co.walReplayed += int64(rec.records)
	co.resumedJobs += resumed
	co.reqMu.Unlock()
	if co.policy != nil {
		// Re-run the climb decision for confirmed SSD pins. notePinned
		// dedupes the journal side (pinnedSeen was rebuilt by the
		// replay), so this only issues rungs the dead master never
		// planned — the crash-between-rungs case.
		for _, k := range sortedRetryKeys(ssdPinned) {
			co.masters[k.shard].notePinned(k.addr, dfs.TierSSD, ssdPinned[k])
		}
	}
	co.FlushRetries()
	return nil
}

// reconcileReplay patches the replayed journal state with residency
// facts the view holds but the log lost — pin and unpin deltas the
// dying master consumed after its last durable append. The slaves never
// re-send those deltas, so without this pass a recovered ladder can
// stall one rung short (a confirmed SSD pin it never learns about) or
// leak a flash charge forever (a climb whose SSD release died with the
// log).
func (co *Coordinator) reconcileReplay(rec *recovered, view ResidencyView) {
	for job, rj := range rec.jobs {
		if rj.evictIntent {
			continue
		}
		for id, e := range rj.blocks {
			if e.pinned || e.tier == dfs.TierHDD {
				continue
			}
			ram, ssd := view(id, e.addr)
			if (e.tier == dfs.TierRAM && ram) || (e.tier == dfs.TierSSD && ssd) {
				e.copied = true
				e.pinned = true
				co.journal.MarkPinned(job, id, e.tier)
			}
		}
	}
	for k, r := range rec.residency {
		if !r.charged[dfs.TierSSD] {
			continue
		}
		ram, ssd := view(k.id, k.addr)
		if !ssd && ram {
			// The SSD→RAM flip completed before the crash; the lost
			// unpin record would have released this charge.
			r.charged[dfs.TierSSD] = false
		}
	}
}

// anchorJob returns (creating if needed) job's state on shard s,
// stamping the journaled metadata. Callers hold every master's lock
// (recovery path).
func (co *Coordinator) anchorJob(s int, job dfs.JobID, rj *recoveredJob) *jobState {
	m := co.masters[s]
	js := m.jobs[job]
	if js == nil {
		js = &jobState{
			implicit:   rj.implicit,
			inputSize:  rj.jobInputSize,
			submitTime: rj.submitTime,
			blocks:     make(map[dfs.BlockID]*assignment),
		}
		m.jobs[job] = js
	}
	return js
}

// repileEvicts re-parks a terminating job's undelivered evict batches.
// Callers hold every master's lock.
func (co *Coordinator) repileEvicts(epoch uint64, job dfs.JobID, rj *recoveredJob) {
	pending := make(map[retryKey][]dfs.EvictCmd)
	for _, id := range sortedBlockIDs(rj.blocks) {
		e := rj.blocks[id]
		if !e.copied && !e.pinned {
			continue // never reached a slave; nothing to release
		}
		if rj.evictSent[e.addr][id] {
			continue // delivery journaled
		}
		k := retryKey{shard: co.ring.BlockShard(uint64(id)), addr: e.addr}
		pending[k] = append(pending[k], dfs.EvictCmd{Block: id, Job: job})
	}
	for _, k := range sortedRetryKeys(pending) {
		m := co.masters[k.shard]
		m.retries = append(m.retries, retryBatch{epoch: epoch, addr: k.addr, job: job, evict: pending[k]})
	}
}

// retryKey addresses one parked batch's destination: the owning planner
// shard and the slave address.
type retryKey struct {
	shard int
	addr  string
}

func sortedRetryKeys[V any](m map[retryKey]V) []retryKey {
	out := make([]retryKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shard != out[j].shard {
			return out[i].shard < out[j].shard
		}
		return out[i].addr < out[j].addr
	})
	return out
}

func sortedBlockIDs[V any](m map[dfs.BlockID]V) []dfs.BlockID {
	out := make([]dfs.BlockID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Migrate resolves the job's files once, partitions the blocks by the
// consistent-hash map, and fans the fragments out to the owning
// planners in shard order. The job's total input size — summed across
// every shard — rides on each fragment so smallest-job-first stays a
// global order.
func (co *Coordinator) Migrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	if req.Job == "" {
		return dfs.MigrateResp{}, fmt.Errorf("ignem: migrate with empty job ID")
	}
	var located []dfs.LocatedBlock
	for _, path := range req.Paths {
		blocks, err := co.resolver.Resolve(path)
		if err != nil {
			return dfs.MigrateResp{}, fmt.Errorf("ignem: resolve %s: %w", path, err)
		}
		located = append(located, blocks...)
	}
	var totalSize int64
	for _, lb := range located {
		totalSize += lb.Block.Size
	}

	parts := make([][]dfs.LocatedBlock, len(co.masters))
	for _, lb := range located {
		s := co.ring.BlockShard(uint64(lb.Block.ID))
		parts[s] = append(parts[s], lb)
	}

	co.reqMu.Lock()
	co.migrateReqs++
	co.reqMu.Unlock()

	var blocks int
	var bytes int64
	for i, m := range co.masters {
		// Shard 0 anchors the job even when it owns none of its blocks,
		// mirroring the unsharded master's "a migrate request always
		// registers the job" behavior (ActiveJobs, idempotent re-migrate).
		if len(parts[i]) == 0 && i != 0 {
			continue
		}
		b, by, err := m.migrateLocated(req.Job, parts[i], totalSize, req.SubmitTime, req.Implicit)
		if err != nil {
			// A journal failure mid-fanout fails the request; fragments
			// already planned stay journaled and recovery resumes them.
			return dfs.MigrateResp{}, err
		}
		blocks += b
		bytes += by
	}
	return dfs.MigrateResp{Blocks: blocks, Bytes: bytes}, nil
}

// Evict releases the job on every planner and reports the merged
// notification count. Planners that never planned for the job no-op.
func (co *Coordinator) Evict(req dfs.EvictReq) (dfs.EvictResp, error) {
	co.reqMu.Lock()
	co.evictReqs++
	co.reqMu.Unlock()
	blocks := 0
	for _, m := range co.masters {
		b, err := m.evictJob(req.Job)
		if err != nil {
			return dfs.EvictResp{}, err
		}
		blocks += b
	}
	co.maybeTruncate()
	return dfs.EvictResp{Blocks: blocks}, nil
}

// NotifyRead partitions a cache-hit notification batch by block shard
// and forwards each fragment to its owning planner.
func (co *Coordinator) NotifyRead(job dfs.JobID, blocks []dfs.BlockID) {
	if len(co.masters) == 1 {
		co.masters[0].NotifyRead(job, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.NotifyRead(job, parts[i])
		}
	}
}

// AssignedReplica reports the replica address the owning planner chose
// for a (job, block) migration, or "" if none.
func (co *Coordinator) AssignedReplica(job dfs.JobID, block dfs.BlockID) string {
	return co.masters[co.ring.BlockShard(uint64(block))].AssignedReplica(job, block)
}

// Epoch returns the shared master epoch.
func (co *Coordinator) Epoch() uint64 { return co.epoch.get() }

// Restart simulates a master failure and recovery: every planner locks,
// the shared epoch bumps exactly once, and all job state drops — the
// same all-or-nothing transition the single master made, so slaves see
// one epoch change, not one per shard.
func (co *Coordinator) Restart() {
	for _, m := range co.masters {
		m.mu.Lock()
	}
	co.epoch.bump()
	for _, m := range co.masters {
		m.jobs = make(map[dfs.JobID]*jobState)
		m.retries = nil
	}
	// The epoch bump purges every slave's pins, so no residency survives.
	co.ledger.reset()
	for i := len(co.masters) - 1; i >= 0; i-- {
		co.masters[i].mu.Unlock()
	}
}

// Stats merges the planners' counters into one cluster-wide snapshot.
// Sums merge the work counters; ActiveJobs is the size of the UNION of
// the planners' job sets, so a sort spanning four shards counts as one
// active job, not four; request counts come from the coordinator, which
// counted each client request once.
func (co *Coordinator) Stats() MasterStats {
	var st MasterStats
	jobs := make(map[dfs.JobID]struct{})
	for _, m := range co.masters {
		ms := m.Stats()
		st.MigrateReqs += ms.MigrateReqs
		st.EvictReqs += ms.EvictReqs
		st.ReadNotifies += ms.ReadNotifies
		st.BlocksAssigned += ms.BlocksAssigned
		st.BytesAssigned += ms.BytesAssigned
		st.SendErrors += ms.SendErrors
		st.SendFailures += ms.SendFailures
		st.RetriedBatches += ms.RetriedBatches
		st.PendingRetries += ms.PendingRetries
		for _, job := range m.jobIDs() {
			jobs[job] = struct{}{}
		}
	}
	co.reqMu.Lock()
	st.MigrateReqs += co.migrateReqs
	st.EvictReqs += co.evictReqs
	st.WALReplayed = co.walReplayed
	st.ResumedJobs = co.resumedJobs
	co.reqMu.Unlock()
	// The journal is shared across planners, so its record count is read
	// once here rather than summed from the per-planner snapshots.
	st.WALRecords = 0
	if co.journal != nil {
		st.WALRecords = co.journal.Appended()
	}
	st.Epoch = co.epoch.get()
	st.ActiveJobs = len(jobs)
	// The ledger is shared across planners; snapshot it once.
	st.Tiers = co.ledger.snapshot()
	return st
}
