package ignem

import (
	"fmt"
	"sync"

	"repro/internal/dfs"
	"repro/internal/shardmap"
)

// Coordinator fronts the partitioned Ignem master: one planner (Master)
// per metadata shard, with the cross-shard concerns — the shared epoch,
// request fan-out by the consistent-hash block→shard map, and stats
// merging — kept here. It is deliberately thin: it holds no per-block
// state of its own, so the planners scale independently and the
// coordinator can never become the serialization point the single
// master was.
//
// The "one sort spans shards" case is the design driver: a job whose
// input files hash to several shards is planned by several planners, but
// every MigrateCmd is stamped with the job's WHOLE input size, so the
// slaves' smallest-job-first queues order the job's fragments exactly as
// the unsharded master would. At shard count 1 the coordinator degrades
// to a pass-through and its planner draws the seeded replica-choice rng
// bit-identically to the historical single master.
type Coordinator struct {
	resolver Resolver
	masters  []*Master
	ring     *shardmap.Ring
	epoch    *epochCounter

	// reqMu guards the request counters. Requests are counted here, not
	// in the planners: a cross-shard migrate is one request no matter how
	// many planners it touches.
	reqMu       sync.Mutex
	migrateReqs int64
	evictReqs   int64
}

// NewCoordinator builds the partitioned master: shards planners over the
// given resolver and slave link, sharing one epoch. Planner i draws its
// replica choices from a stream derived from seed; shard 0's stream IS
// the seed stream, so a single-shard coordinator replays the historical
// master's draws exactly.
func NewCoordinator(resolver Resolver, link SlaveLink, seed int64, shards int) *Coordinator {
	if shards < 1 {
		shards = 1
	}
	epoch := newEpochCounter(1)
	co := &Coordinator{
		resolver: resolver,
		ring:     shardmap.NewRing(shards),
		epoch:    epoch,
	}
	for i := 0; i < shards; i++ {
		// Shard 0 keeps the undisturbed seed; later shards offset by a
		// large odd constant so the streams never collide with each other
		// or with the namenode's placement streams.
		co.masters = append(co.masters, newShardMaster(resolver, link, seed+int64(i)*0x9E3779B9, epoch))
	}
	return co
}

// Shards returns the planner count.
func (co *Coordinator) Shards() int { return len(co.masters) }

// Migrate resolves the job's files once, partitions the blocks by the
// consistent-hash map, and fans the fragments out to the owning
// planners in shard order. The job's total input size — summed across
// every shard — rides on each fragment so smallest-job-first stays a
// global order.
func (co *Coordinator) Migrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	if req.Job == "" {
		return dfs.MigrateResp{}, fmt.Errorf("ignem: migrate with empty job ID")
	}
	var located []dfs.LocatedBlock
	for _, path := range req.Paths {
		blocks, err := co.resolver.Resolve(path)
		if err != nil {
			return dfs.MigrateResp{}, fmt.Errorf("ignem: resolve %s: %w", path, err)
		}
		located = append(located, blocks...)
	}
	var totalSize int64
	for _, lb := range located {
		totalSize += lb.Block.Size
	}

	parts := make([][]dfs.LocatedBlock, len(co.masters))
	for _, lb := range located {
		s := co.ring.BlockShard(uint64(lb.Block.ID))
		parts[s] = append(parts[s], lb)
	}

	co.reqMu.Lock()
	co.migrateReqs++
	co.reqMu.Unlock()

	var blocks int
	var bytes int64
	for i, m := range co.masters {
		// Shard 0 anchors the job even when it owns none of its blocks,
		// mirroring the unsharded master's "a migrate request always
		// registers the job" behavior (ActiveJobs, idempotent re-migrate).
		if len(parts[i]) == 0 && i != 0 {
			continue
		}
		b, by := m.migrateLocated(req.Job, parts[i], totalSize, req.SubmitTime, req.Implicit)
		blocks += b
		bytes += by
	}
	return dfs.MigrateResp{Blocks: blocks, Bytes: bytes}, nil
}

// Evict releases the job on every planner and reports the merged
// notification count. Planners that never planned for the job no-op.
func (co *Coordinator) Evict(req dfs.EvictReq) (dfs.EvictResp, error) {
	co.reqMu.Lock()
	co.evictReqs++
	co.reqMu.Unlock()
	blocks := 0
	for _, m := range co.masters {
		blocks += m.evictJob(req.Job)
	}
	return dfs.EvictResp{Blocks: blocks}, nil
}

// NotifyRead partitions a cache-hit notification batch by block shard
// and forwards each fragment to its owning planner.
func (co *Coordinator) NotifyRead(job dfs.JobID, blocks []dfs.BlockID) {
	if len(co.masters) == 1 {
		co.masters[0].NotifyRead(job, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.NotifyRead(job, parts[i])
		}
	}
}

// AssignedReplica reports the replica address the owning planner chose
// for a (job, block) migration, or "" if none.
func (co *Coordinator) AssignedReplica(job dfs.JobID, block dfs.BlockID) string {
	return co.masters[co.ring.BlockShard(uint64(block))].AssignedReplica(job, block)
}

// Epoch returns the shared master epoch.
func (co *Coordinator) Epoch() uint64 { return co.epoch.get() }

// Restart simulates a master failure and recovery: every planner locks,
// the shared epoch bumps exactly once, and all job state drops — the
// same all-or-nothing transition the single master made, so slaves see
// one epoch change, not one per shard.
func (co *Coordinator) Restart() {
	for _, m := range co.masters {
		m.mu.Lock()
	}
	co.epoch.bump()
	for _, m := range co.masters {
		m.jobs = make(map[dfs.JobID]map[dfs.BlockID]string)
	}
	for i := len(co.masters) - 1; i >= 0; i-- {
		co.masters[i].mu.Unlock()
	}
}

// Stats merges the planners' counters into one cluster-wide snapshot.
// Sums merge the work counters; ActiveJobs is the size of the UNION of
// the planners' job sets, so a sort spanning four shards counts as one
// active job, not four; request counts come from the coordinator, which
// counted each client request once.
func (co *Coordinator) Stats() MasterStats {
	var st MasterStats
	jobs := make(map[dfs.JobID]struct{})
	for _, m := range co.masters {
		ms := m.Stats()
		st.MigrateReqs += ms.MigrateReqs
		st.EvictReqs += ms.EvictReqs
		st.ReadNotifies += ms.ReadNotifies
		st.BlocksAssigned += ms.BlocksAssigned
		st.BytesAssigned += ms.BytesAssigned
		st.SendErrors += ms.SendErrors
		for _, job := range m.jobIDs() {
			jobs[job] = struct{}{}
		}
	}
	co.reqMu.Lock()
	st.MigrateReqs += co.migrateReqs
	st.EvictReqs += co.evictReqs
	co.reqMu.Unlock()
	st.Epoch = co.epoch.get()
	st.ActiveJobs = len(jobs)
	return st
}
