package ignem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/shardmap"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Coordinator fronts the partitioned Ignem master: one planner (Master)
// per metadata shard, with the cross-shard concerns — the shared epoch,
// request fan-out by the consistent-hash block→shard map, and stats
// merging — kept here. It is deliberately thin: it holds no per-block
// state of its own, so the planners scale independently and the
// coordinator can never become the serialization point the single
// master was.
//
// The "one sort spans shards" case is the design driver: a job whose
// input files hash to several shards is planned by several planners, but
// every MigrateCmd is stamped with the job's WHOLE input size, so the
// slaves' smallest-job-first queues order the job's fragments exactly as
// the unsharded master would. At shard count 1 the coordinator degrades
// to a pass-through and its planner draws the seeded replica-choice rng
// bit-identically to the historical single master.
type Coordinator struct {
	resolver Resolver
	masters  []*Master
	ring     *shardmap.Ring
	epoch    *epochCounter

	// reqMu guards the request counters. Requests are counted here, not
	// in the planners: a cross-shard migrate is one request no matter how
	// many planners it touches.
	reqMu       sync.Mutex
	migrateReqs int64
	evictReqs   int64

	// journal, when attached, is shared by every planner; the
	// coordinator owns the cross-shard concerns: recovery, the retry
	// pump, and truncation when nothing is in flight.
	journal     *Journal
	pumpStopped atomic.Bool
	// walReplayed/resumedJobs are recovery counters (under reqMu).
	walReplayed int64
	resumedJobs int64
}

// NewCoordinator builds the partitioned master: shards planners over the
// given resolver and slave link, sharing one epoch. Planner i draws its
// replica choices from a stream derived from seed; shard 0's stream IS
// the seed stream, so a single-shard coordinator replays the historical
// master's draws exactly.
func NewCoordinator(resolver Resolver, link SlaveLink, seed int64, shards int) *Coordinator {
	if shards < 1 {
		shards = 1
	}
	epoch := newEpochCounter(1)
	co := &Coordinator{
		resolver: resolver,
		ring:     shardmap.NewRing(shards),
		epoch:    epoch,
	}
	for i := 0; i < shards; i++ {
		// Shard 0 keeps the undisturbed seed; later shards offset by a
		// large odd constant so the streams never collide with each other
		// or with the namenode's placement streams.
		co.masters = append(co.masters, newShardMaster(resolver, link, seed+int64(i)*0x9E3779B9, epoch))
	}
	return co
}

// Shards returns the planner count.
func (co *Coordinator) Shards() int { return len(co.masters) }

// AttachJournal gives every planner a shared migration WAL and starts
// the retry pump: a clock-driven loop that re-sends transport-failed
// batches every interval until they deliver or go stale, and truncates
// the journal whenever nothing is in flight. Call before serving
// requests; use RecoverFromJournal to resume state a previous
// incarnation journaled onto the same backend. StopJournal stops the
// pump.
func (co *Coordinator) AttachJournal(clock simclock.Clock, log *wal.Log, retryInterval time.Duration) {
	if retryInterval <= 0 {
		retryInterval = time.Second
	}
	j := NewJournal(log)
	co.journal = j
	for _, m := range co.masters {
		m.mu.Lock()
		m.journal = j
		m.mu.Unlock()
	}
	if clock != nil {
		clock.Go(func() {
			for {
				clock.Sleep(retryInterval)
				if co.pumpStopped.Load() {
					return
				}
				co.FlushRetries()
			}
		})
	}
}

// StopJournal stops the retry pump (the journal itself stays attached;
// closing the log is the owner's concern).
func (co *Coordinator) StopJournal() { co.pumpStopped.Store(true) }

// FlushRetries re-sends every planner's parked batches once and
// truncates the journal if nothing remains in flight. The retry pump
// calls it on its interval; tests call it directly to make retry
// timing explicit.
func (co *Coordinator) FlushRetries() {
	for _, m := range co.masters {
		m.flushRetries()
	}
	co.maybeTruncate()
}

// maybeTruncate drops the journal when no planner holds a live job or a
// parked batch: everything journaled has fully settled, so a recovery
// from an empty log is exact.
func (co *Coordinator) maybeTruncate() {
	if co.journal == nil {
		return
	}
	for _, m := range co.masters {
		m.mu.Lock()
		busy := len(m.jobs) > 0 || len(m.retries) > 0
		m.mu.Unlock()
		if busy {
			return
		}
	}
	_ = co.journal.Truncate()
}

// NotePinned feeds heartbeat-confirmed pin deltas to the journal: the
// slave at addr now holds these blocks pinned and checksum-verified.
// A no-op without a journal.
func (co *Coordinator) NotePinned(addr string, blocks []dfs.BlockID) {
	if co.journal == nil || len(blocks) == 0 {
		return
	}
	if len(co.masters) == 1 {
		co.masters[0].notePinned(addr, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.notePinned(addr, parts[i])
		}
	}
}

// RecoverFromJournal rebuilds the planners' state from the journal,
// modelling a master restart that resumes in-flight migrations instead
// of purging them. The journaled epoch is restored WITHOUT bumping —
// slaves keep their pins, and every re-send below is idempotent against
// them:
//
//   - live jobs (no evict intent) re-register their block→replica
//     assignments; entries never journaled as delivered re-park their
//     migrate batches for the retry pump
//   - jobs with a journaled evict intent stay dropped, and evict
//     batches not journaled as delivered are re-parked
//
// After rebuilding, parked batches are flushed once so recovery
// converges without waiting for the pump.
func (co *Coordinator) RecoverFromJournal() error {
	if co.journal == nil {
		return fmt.Errorf("ignem: recover without a journal attached")
	}
	rec, err := co.journal.Replay()
	if err != nil {
		return fmt.Errorf("ignem: journal replay: %w", err)
	}
	for _, m := range co.masters {
		m.mu.Lock()
	}
	if rec.epoch > 0 {
		co.epoch.set(rec.epoch)
	}
	epoch := co.epoch.get()
	for _, m := range co.masters {
		m.jobs = make(map[dfs.JobID]map[dfs.BlockID]string)
		m.retries = nil
	}
	resumed := int64(0)
	for _, job := range sortedJobs(rec.jobs) {
		rj := rec.jobs[job]
		if rj.evictIntent {
			co.repileEvicts(epoch, job, rj)
			continue
		}
		resumed++
		// Shard 0 anchors the job as a live migrate request would.
		co.anchorJob(0, job)
		pending := make(map[retryKey][]dfs.MigrateCmd)
		for _, id := range sortedBlockIDs(rj.blocks) {
			e := rj.blocks[id]
			s := co.ring.BlockShard(uint64(id))
			co.anchorJob(s, job)[id] = e.addr
			if e.copied || e.pinned {
				continue
			}
			k := retryKey{s, e.addr}
			pending[k] = append(pending[k], dfs.MigrateCmd{
				Block:        dfs.Block{ID: id, Size: e.size},
				Job:          job,
				JobInputSize: rj.jobInputSize,
				SubmitTime:   rj.submitTime,
				Implicit:     rj.implicit,
				Checksum:     e.checksum,
			})
		}
		for _, k := range sortedRetryKeys(pending) {
			m := co.masters[k.shard]
			m.retries = append(m.retries, retryBatch{epoch: epoch, addr: k.addr, job: job, migrate: pending[k]})
		}
	}
	for i := len(co.masters) - 1; i >= 0; i-- {
		co.masters[i].mu.Unlock()
	}
	co.reqMu.Lock()
	co.walReplayed += int64(rec.records)
	co.resumedJobs += resumed
	co.reqMu.Unlock()
	co.FlushRetries()
	return nil
}

// anchorJob returns (creating if needed) job's assignment map on shard
// s. Callers hold every master's lock (recovery path).
func (co *Coordinator) anchorJob(s int, job dfs.JobID) map[dfs.BlockID]string {
	m := co.masters[s]
	assigned := m.jobs[job]
	if assigned == nil {
		assigned = make(map[dfs.BlockID]string)
		m.jobs[job] = assigned
	}
	return assigned
}

// repileEvicts re-parks a terminating job's undelivered evict batches.
// Callers hold every master's lock.
func (co *Coordinator) repileEvicts(epoch uint64, job dfs.JobID, rj *recoveredJob) {
	pending := make(map[retryKey][]dfs.EvictCmd)
	for _, id := range sortedBlockIDs(rj.blocks) {
		e := rj.blocks[id]
		if !e.copied && !e.pinned {
			continue // never reached a slave; nothing to release
		}
		if rj.evictSent[e.addr][id] {
			continue // delivery journaled
		}
		k := retryKey{shard: co.ring.BlockShard(uint64(id)), addr: e.addr}
		pending[k] = append(pending[k], dfs.EvictCmd{Block: id, Job: job})
	}
	for _, k := range sortedRetryKeys(pending) {
		m := co.masters[k.shard]
		m.retries = append(m.retries, retryBatch{epoch: epoch, addr: k.addr, job: job, evict: pending[k]})
	}
}

// retryKey addresses one parked batch's destination: the owning planner
// shard and the slave address.
type retryKey struct {
	shard int
	addr  string
}

func sortedRetryKeys[V any](m map[retryKey]V) []retryKey {
	out := make([]retryKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shard != out[j].shard {
			return out[i].shard < out[j].shard
		}
		return out[i].addr < out[j].addr
	})
	return out
}

func sortedBlockIDs[V any](m map[dfs.BlockID]V) []dfs.BlockID {
	out := make([]dfs.BlockID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Migrate resolves the job's files once, partitions the blocks by the
// consistent-hash map, and fans the fragments out to the owning
// planners in shard order. The job's total input size — summed across
// every shard — rides on each fragment so smallest-job-first stays a
// global order.
func (co *Coordinator) Migrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	if req.Job == "" {
		return dfs.MigrateResp{}, fmt.Errorf("ignem: migrate with empty job ID")
	}
	var located []dfs.LocatedBlock
	for _, path := range req.Paths {
		blocks, err := co.resolver.Resolve(path)
		if err != nil {
			return dfs.MigrateResp{}, fmt.Errorf("ignem: resolve %s: %w", path, err)
		}
		located = append(located, blocks...)
	}
	var totalSize int64
	for _, lb := range located {
		totalSize += lb.Block.Size
	}

	parts := make([][]dfs.LocatedBlock, len(co.masters))
	for _, lb := range located {
		s := co.ring.BlockShard(uint64(lb.Block.ID))
		parts[s] = append(parts[s], lb)
	}

	co.reqMu.Lock()
	co.migrateReqs++
	co.reqMu.Unlock()

	var blocks int
	var bytes int64
	for i, m := range co.masters {
		// Shard 0 anchors the job even when it owns none of its blocks,
		// mirroring the unsharded master's "a migrate request always
		// registers the job" behavior (ActiveJobs, idempotent re-migrate).
		if len(parts[i]) == 0 && i != 0 {
			continue
		}
		b, by, err := m.migrateLocated(req.Job, parts[i], totalSize, req.SubmitTime, req.Implicit)
		if err != nil {
			// A journal failure mid-fanout fails the request; fragments
			// already planned stay journaled and recovery resumes them.
			return dfs.MigrateResp{}, err
		}
		blocks += b
		bytes += by
	}
	return dfs.MigrateResp{Blocks: blocks, Bytes: bytes}, nil
}

// Evict releases the job on every planner and reports the merged
// notification count. Planners that never planned for the job no-op.
func (co *Coordinator) Evict(req dfs.EvictReq) (dfs.EvictResp, error) {
	co.reqMu.Lock()
	co.evictReqs++
	co.reqMu.Unlock()
	blocks := 0
	for _, m := range co.masters {
		b, err := m.evictJob(req.Job)
		if err != nil {
			return dfs.EvictResp{}, err
		}
		blocks += b
	}
	co.maybeTruncate()
	return dfs.EvictResp{Blocks: blocks}, nil
}

// NotifyRead partitions a cache-hit notification batch by block shard
// and forwards each fragment to its owning planner.
func (co *Coordinator) NotifyRead(job dfs.JobID, blocks []dfs.BlockID) {
	if len(co.masters) == 1 {
		co.masters[0].NotifyRead(job, blocks)
		return
	}
	parts := make([][]dfs.BlockID, len(co.masters))
	for _, id := range blocks {
		s := co.ring.BlockShard(uint64(id))
		parts[s] = append(parts[s], id)
	}
	for i, m := range co.masters {
		if len(parts[i]) > 0 {
			m.NotifyRead(job, parts[i])
		}
	}
}

// AssignedReplica reports the replica address the owning planner chose
// for a (job, block) migration, or "" if none.
func (co *Coordinator) AssignedReplica(job dfs.JobID, block dfs.BlockID) string {
	return co.masters[co.ring.BlockShard(uint64(block))].AssignedReplica(job, block)
}

// Epoch returns the shared master epoch.
func (co *Coordinator) Epoch() uint64 { return co.epoch.get() }

// Restart simulates a master failure and recovery: every planner locks,
// the shared epoch bumps exactly once, and all job state drops — the
// same all-or-nothing transition the single master made, so slaves see
// one epoch change, not one per shard.
func (co *Coordinator) Restart() {
	for _, m := range co.masters {
		m.mu.Lock()
	}
	co.epoch.bump()
	for _, m := range co.masters {
		m.jobs = make(map[dfs.JobID]map[dfs.BlockID]string)
		m.retries = nil
	}
	for i := len(co.masters) - 1; i >= 0; i-- {
		co.masters[i].mu.Unlock()
	}
}

// Stats merges the planners' counters into one cluster-wide snapshot.
// Sums merge the work counters; ActiveJobs is the size of the UNION of
// the planners' job sets, so a sort spanning four shards counts as one
// active job, not four; request counts come from the coordinator, which
// counted each client request once.
func (co *Coordinator) Stats() MasterStats {
	var st MasterStats
	jobs := make(map[dfs.JobID]struct{})
	for _, m := range co.masters {
		ms := m.Stats()
		st.MigrateReqs += ms.MigrateReqs
		st.EvictReqs += ms.EvictReqs
		st.ReadNotifies += ms.ReadNotifies
		st.BlocksAssigned += ms.BlocksAssigned
		st.BytesAssigned += ms.BytesAssigned
		st.SendErrors += ms.SendErrors
		st.SendFailures += ms.SendFailures
		st.RetriedBatches += ms.RetriedBatches
		st.PendingRetries += ms.PendingRetries
		for _, job := range m.jobIDs() {
			jobs[job] = struct{}{}
		}
	}
	co.reqMu.Lock()
	st.MigrateReqs += co.migrateReqs
	st.EvictReqs += co.evictReqs
	st.WALReplayed = co.walReplayed
	st.ResumedJobs = co.resumedJobs
	co.reqMu.Unlock()
	// The journal is shared across planners, so its record count is read
	// once here rather than summed from the per-planner snapshots.
	st.WALRecords = 0
	if co.journal != nil {
		st.WALRecords = co.journal.Appended()
	}
	st.Epoch = co.epoch.get()
	st.ActiveJobs = len(jobs)
	return st
}
