package ignem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// fakeResolver maps paths to located blocks.
type fakeResolver struct {
	files map[string][]dfs.LocatedBlock
	err   error
}

func (r *fakeResolver) Resolve(path string) ([]dfs.LocatedBlock, error) {
	if r.err != nil {
		return nil, r.err
	}
	blocks, ok := r.files[path]
	if !ok {
		return nil, fmt.Errorf("no such file %s", path)
	}
	return blocks, nil
}

// fakeLink records batches per address.
type fakeLink struct {
	mu       sync.Mutex
	migrates map[string][]dfs.MigrateBatch
	evicts   map[string][]dfs.EvictBatch
	notifies map[string][]dfs.ReadNotifyBatch
	err      error
}

func newFakeLink() *fakeLink {
	return &fakeLink{
		migrates: make(map[string][]dfs.MigrateBatch),
		evicts:   make(map[string][]dfs.EvictBatch),
		notifies: make(map[string][]dfs.ReadNotifyBatch),
	}
}

func (l *fakeLink) SendMigrate(addr string, b dfs.MigrateBatch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.migrates[addr] = append(l.migrates[addr], b)
	return nil
}

func (l *fakeLink) SendEvict(addr string, b dfs.EvictBatch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.evicts[addr] = append(l.evicts[addr], b)
	return nil
}

func (l *fakeLink) SendReadNotify(addr string, b dfs.ReadNotifyBatch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.notifies[addr] = append(l.notifies[addr], b)
	return nil
}

func located(id dfs.BlockID, size int64, nodes ...string) dfs.LocatedBlock {
	return dfs.LocatedBlock{Block: dfs.Block{ID: id, Size: size}, Nodes: nodes}
}

func TestMasterMigrateAssignsOneReplicaPerBlock(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1", "dn2", "dn3"), located(2, 20, "dn1", "dn2", "dn3")},
		"/b": {located(3, 30, "dn2", "dn3")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 42)
	resp, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a", "/b"}, Implicit: true, SubmitTime: time.Unix(100, 0)})
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if resp.Blocks != 3 || resp.Bytes != 60 {
		t.Errorf("resp = %+v", resp)
	}
	var total int
	seen := map[dfs.BlockID]bool{}
	for _, batches := range link.migrates {
		for _, b := range batches {
			for _, c := range b.Cmds {
				total++
				if seen[c.Block.ID] {
					t.Errorf("block %d assigned to multiple slaves", c.Block.ID)
				}
				seen[c.Block.ID] = true
				if c.JobInputSize != 60 {
					t.Errorf("JobInputSize = %d, want 60", c.JobInputSize)
				}
				if !c.Implicit {
					t.Error("Implicit flag lost")
				}
				if c.Job != "j1" {
					t.Errorf("Job = %s", c.Job)
				}
			}
		}
	}
	if total != 3 {
		t.Errorf("total commands = %d, want 3 (one replica per block)", total)
	}
}

func TestMasterMigrateDuplicateJobBlocksSkipped(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 1)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Blocks != 0 {
		t.Errorf("duplicate migrate enqueued %d blocks", resp.Blocks)
	}
}

func TestMasterMigrateErrors(t *testing.T) {
	link := newFakeLink()
	m := NewMaster(&fakeResolver{files: map[string][]dfs.LocatedBlock{}}, link, 1)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "", Paths: []string{"/a"}}); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j", Paths: []string{"/missing"}}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMasterSkipsBlocksWithNoLiveReplica(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10), located(2, 20, "dn1")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 1)
	resp, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Blocks != 1 {
		t.Errorf("Blocks = %d, want 1 (dead-replica block skipped)", resp.Blocks)
	}
}

func TestMasterEvictRoutesToAssignedSlave(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1"), located(2, 20, "dn2")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 7)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Evict(dfs.EvictReq{Job: "j1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Blocks != 2 {
		t.Errorf("EvictResp.Blocks = %d, want 2", resp.Blocks)
	}
	var evicted []dfs.BlockID
	for addr, batches := range link.evicts {
		for _, b := range batches {
			for _, c := range b.Cmds {
				evicted = append(evicted, c.Block)
				// Eviction must go where migration went.
				found := false
				for _, mb := range link.migrates[addr] {
					for _, mc := range mb.Cmds {
						if mc.Block.ID == c.Block {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("evict for block %d sent to %s, which never got its migrate", c.Block, addr)
				}
			}
		}
	}
	if len(evicted) != 2 {
		t.Errorf("evicted %d blocks, want 2", len(evicted))
	}
	if st := m.Stats(); st.ActiveJobs != 0 {
		t.Errorf("ActiveJobs = %d after evict", st.ActiveJobs)
	}
}

func TestMasterRestartBumpsEpochAndClearsState(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 7)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}}); err != nil {
		t.Fatal(err)
	}
	before := m.Epoch()
	m.Restart()
	if m.Epoch() != before+1 {
		t.Errorf("epoch = %d, want %d", m.Epoch(), before+1)
	}
	if st := m.Stats(); st.ActiveJobs != 0 {
		t.Errorf("state survived restart: %+v", st)
	}
	// Evicting the pre-restart job is a harmless no-op that reports no
	// block notifications.
	resp, err := m.Evict(dfs.EvictReq{Job: "j1"})
	if err != nil {
		t.Errorf("Evict after restart: %v", err)
	}
	if resp.Blocks != 0 {
		t.Errorf("EvictResp.Blocks = %d after restart, want 0", resp.Blocks)
	}
}

func TestMasterSendErrorCounted(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1")},
	}}
	link := newFakeLink()
	link.err = errors.New("unreachable")
	m := NewMaster(res, link, 7)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}}); err != nil {
		t.Fatalf("Migrate should tolerate slave send failure, got %v", err)
	}
	if st := m.Stats(); st.SendErrors != 1 {
		t.Errorf("SendErrors = %d", st.SendErrors)
	}
}

// directLink wires a master straight into slaves, for end-to-end
// master+slave tests under virtual time.
type directLink struct {
	slaves map[string]*Slave
}

func (l *directLink) SendMigrate(addr string, b dfs.MigrateBatch) error {
	s, ok := l.slaves[addr]
	if !ok {
		return errors.New("no slave")
	}
	s.ApplyMigrateBatch(b)
	return nil
}

func (l *directLink) SendEvict(addr string, b dfs.EvictBatch) error {
	s, ok := l.slaves[addr]
	if !ok {
		return errors.New("no slave")
	}
	s.ApplyEvictBatch(b)
	return nil
}

func (l *directLink) SendReadNotify(addr string, b dfs.ReadNotifyBatch) error {
	s, ok := l.slaves[addr]
	if !ok {
		return errors.New("no slave")
	}
	s.ApplyReadNotifyBatch(b)
	return nil
}

func TestMasterSlaveEndToEnd(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	s1 := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)
	s2 := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)
	link := &directLink{slaves: map[string]*Slave{"dn1": s1, "dn2": s2}}
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/input": {
			located(1, 8<<20, "dn1", "dn2"),
			located(2, 8<<20, "dn1", "dn2"),
			located(3, 8<<20, "dn1", "dn2"),
		},
	}}
	m := NewMaster(res, link, 3)
	v.Go(func() {
		if _, err := m.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/input"}, SubmitTime: v.Now()}); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	v.Wait()
	pinnedTotal := 0
	for _, s := range link.slaves {
		st := s.Stats()
		pinnedTotal += st.PinnedBlocks
	}
	if pinnedTotal != 3 {
		t.Fatalf("pinned %d blocks across slaves, want 3", pinnedTotal)
	}
	v.Go(func() {
		if _, err := m.Evict(dfs.EvictReq{Job: "job"}); err != nil {
			t.Errorf("Evict: %v", err)
		}
	})
	v.Wait()
	for addr, s := range link.slaves {
		if got := s.PinnedBytes(); got != 0 {
			t.Errorf("%s still pins %d bytes after evict", addr, got)
		}
	}
}

// Property (no leak): for any random sequence of migrate/read/evict where
// every job is eventually evicted, all pinned memory is released.
func TestNoLeakProperty(t *testing.T) {
	f := func(seed int64, nJobs, nBlocks uint8) bool {
		jobs := int(nJobs%6) + 1
		blocksPer := int(nBlocks%5) + 1
		rng := rand.New(rand.NewSource(seed))
		v := simclock.NewVirtual(epoch)
		media := &fakeMedia{clock: v, readTime: time.Millisecond}
		s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)

		var blockID dfs.BlockID
		type jobSpec struct {
			id     dfs.JobID
			blocks []dfs.Block
			impl   bool
		}
		var specs []jobSpec
		for j := 0; j < jobs; j++ {
			spec := jobSpec{id: dfs.JobID(fmt.Sprintf("j%d", j)), impl: rng.Intn(2) == 0}
			for b := 0; b < blocksPer; b++ {
				blockID++
				// Shared blocks across jobs with probability 1/3.
				if blockID > 1 && rng.Intn(3) == 0 {
					spec.blocks = append(spec.blocks, dfs.Block{ID: dfs.BlockID(rng.Int63n(int64(blockID)) + 1), Size: 1 << 20})
				} else {
					spec.blocks = append(spec.blocks, dfs.Block{ID: blockID, Size: 1 << 20})
				}
			}
			specs = append(specs, spec)
		}
		v.Go(func() {
			for _, spec := range specs {
				var cmds []dfs.MigrateCmd
				for _, b := range spec.blocks {
					cmds = append(cmds, dfs.MigrateCmd{Block: b, Job: spec.id, JobInputSize: int64(len(spec.blocks)) << 20, SubmitTime: v.Now(), Implicit: spec.impl})
				}
				s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: cmds})
				v.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
				// The job reads a random subset of its blocks.
				for _, b := range spec.blocks {
					if rng.Intn(2) == 0 {
						s.OnBlockRead(b.ID, spec.id)
					}
				}
			}
			// Every job eventually completes and evicts.
			for _, spec := range specs {
				var cmds []dfs.EvictCmd
				for _, b := range spec.blocks {
					cmds = append(cmds, dfs.EvictCmd{Block: b.ID, Job: spec.id})
				}
				s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: cmds})
			}
		})
		v.Wait()
		return s.PinnedBytes() == 0 && s.Stats().PinnedBlocks == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A job whose reads are served from a client block cache never touches a
// datanode, so implicit eviction would leak its references forever.
// The client-side cache-hit notification (nn.blockRead → NotifyRead →
// SendReadNotify) must release them: here job2 reads through the
// datanode path but job3's read is a cache hit reported only via
// NotifyRead, and the pinned block still drains to zero.
func TestNotifyReadDrivesImplicitEvictionForCachedReads(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)
	link := &directLink{slaves: map[string]*Slave{"dn1": s}}
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/input": {located(1, 8<<20, "dn1")},
	}}
	m := NewMaster(res, link, 3)
	v.Go(func() {
		if _, err := m.Migrate(dfs.MigrateReq{Job: "job2", Paths: []string{"/input"}, Implicit: true, SubmitTime: v.Now()}); err != nil {
			t.Errorf("migrate job2: %v", err)
		}
		if _, err := m.Migrate(dfs.MigrateReq{Job: "job3", Paths: []string{"/input"}, Implicit: true, SubmitTime: v.Now()}); err != nil {
			t.Errorf("migrate job3: %v", err)
		}
	})
	v.Wait()
	if !s.IsPinned(1) {
		t.Fatal("block 1 should be pinned after both migrations")
	}

	// job2 reads via the datanode: the slave observes it directly.
	v.Go(func() { s.OnBlockRead(1, "job2") })
	v.Wait()
	if !s.IsPinned(1) {
		t.Fatal("job3's reference should keep block 1 pinned")
	}

	// job3's read is a client cache hit the slave never sees. Without the
	// notification this reference leaks until job3's explicit evict.
	v.Go(func() { m.NotifyRead("job3", []dfs.BlockID{1}) })
	v.Wait()
	if s.IsPinned(1) || s.PinnedBytes() != 0 {
		t.Fatalf("cached read notification did not release job3's reference: pinned=%v bytes=%d",
			s.IsPinned(1), s.PinnedBytes())
	}
	if st := m.Stats(); st.ReadNotifies != 1 {
		t.Errorf("ReadNotifies = %d, want 1", st.ReadNotifies)
	}
}

// NotifyRead routes each block to the replica the master assigned it to,
// stamps the current epoch, and silently drops blocks it never assigned
// (unknown job, unknown block, or a pre-restart assignment).
func TestNotifyReadRoutesToAssignedReplicaOnly(t *testing.T) {
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1"), located(2, 20, "dn2")},
	}}
	link := newFakeLink()
	m := NewMaster(res, link, 42)
	if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}, Implicit: true}); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	m.NotifyRead("j1", []dfs.BlockID{1, 2, 99}) // 99 never migrated
	m.NotifyRead("ghost", []dfs.BlockID{1})     // job unknown to the master

	link.mu.Lock()
	defer link.mu.Unlock()
	total := 0
	for addr, batches := range link.notifies {
		for _, b := range batches {
			if b.Epoch != 1 {
				t.Errorf("notify batch to %s has epoch %d, want 1", addr, b.Epoch)
			}
			for _, cmd := range b.Cmds {
				if got := m.AssignedReplica(cmd.Job, cmd.Block); got != addr {
					t.Errorf("block %d notified at %s but assigned to %q", cmd.Block, addr, got)
				}
				total++
			}
		}
	}
	if total != 2 {
		t.Errorf("delivered %d notify cmds, want 2 (unknown job/block must be dropped)", total)
	}
}

// A notification that lands before the block is migrated marks the
// (job, block) already-read, so the queued migration is discarded
// instead of pinning memory for data the job has already consumed.
func TestNotifyReadBeforeMigrationDiscardsQueuedCommand(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Second}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)
	link := &directLink{slaves: map[string]*Slave{"dn1": s}}
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 8<<20, "dn1"), located(2, 8<<20, "dn1")},
	}}
	m := NewMaster(res, link, 3)
	v.Go(func() {
		if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}, Implicit: true, SubmitTime: v.Now()}); err != nil {
			t.Errorf("migrate: %v", err)
		}
		// Both commands are queued (reads take 1s); the client already hit
		// both blocks in its cache before either migration starts... except
		// the one in flight, which the marker also catches on completion.
		m.NotifyRead("j1", []dfs.BlockID{1, 2})
	})
	v.Wait()
	st := s.Stats()
	if st.PinnedBlocks != 0 || s.PinnedBytes() != 0 {
		t.Fatalf("pinned %d blocks / %d bytes, want none", st.PinnedBlocks, s.PinnedBytes())
	}
	if st.DiscardedMissed != 2 {
		t.Errorf("DiscardedMissed = %d, want 2", st.DiscardedMissed)
	}
}

// A master restart while a slave holds an in-flight migration from the
// old epoch must not corrupt state: the stale read's result is dropped
// when it lands (its epoch lost), the re-issued migration under the new
// epoch pins each block exactly once, and nothing is double-migrated or
// double-counted.
func TestMasterRestartMidMigrationDropsStaleAndReissues(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Second}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, nil)
	link := &directLink{slaves: map[string]*Slave{"dn1": s}}
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/a": {located(1, 8<<20, "dn1"), located(2, 8<<20, "dn1")},
	}}
	m := NewMaster(res, link, 3)
	v.Go(func() {
		if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}, SubmitTime: v.Now()}); err != nil {
			t.Errorf("migrate: %v", err)
		}
		// Halfway through the first device read, the master dies and
		// comes back with empty state and a new epoch.
		v.Sleep(500 * time.Millisecond)
		m.Restart()
		// The job resubmits against the new master, which re-issues the
		// full migration under the new epoch. The batch reaches the slave
		// while the old-epoch read is still in flight.
		if _, err := m.Migrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/a"}, SubmitTime: v.Now()}); err != nil {
			t.Errorf("re-migrate: %v", err)
		}
	})
	v.Wait()

	st := s.Stats()
	if st.PinnedBlocks != 2 || s.PinnedBytes() != 16<<20 {
		t.Fatalf("pinned %d blocks / %d bytes, want 2 / %d", st.PinnedBlocks, s.PinnedBytes(), int64(16<<20))
	}
	if st.MigratedBlocks != 2 {
		t.Errorf("MigratedBlocks = %d, want 2 — the stale completion must not count", st.MigratedBlocks)
	}
	// Three device reads happened (one wasted on the stale epoch), but
	// each block is pinned exactly once.
	if got := len(media.readOrder()); got != 3 {
		t.Errorf("device reads = %d, want 3 (1 stale + 2 re-issued)", got)
	}
	if m.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", m.Epoch())
	}
	// Both blocks are attributed to the new epoch's assignment, so the
	// job's eventual evict drains everything.
	v.Go(func() {
		if _, err := m.Evict(dfs.EvictReq{Job: "j1"}); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	v.Wait()
	if s.PinnedBytes() != 0 {
		t.Fatalf("pinned bytes = %d after evict, want 0", s.PinnedBytes())
	}
}
