package ignem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// tierRecorder is a tier-aware pin listener (pinRecorder in
// slave_test.go only records pin/unpin state).
type tierRecorder struct {
	mu     sync.Mutex
	events []string
}

func (r *tierRecorder) listener() PinListener {
	return func(id dfs.BlockID, tier dfs.Tier, pinned bool) {
		r.mu.Lock()
		defer r.mu.Unlock()
		state := "unpin"
		if pinned {
			state = "pin"
		}
		r.events = append(r.events, fmt.Sprintf("%s:%d:%v", state, id, tier))
	}
}

func (r *tierRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func tierCmd(b dfs.Block, job dfs.JobID, jobSize int64, tier dfs.Tier) dfs.MigrateCmd {
	c := cmd(b, job, jobSize, false)
	c.Tier = tier
	return c
}

func TestSlaveMigratesToSSDTier(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	rec := &tierRecorder{}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 20}, media, nil, rec.listener())

	// The block is far larger than RAM capacity: the flash rung is not
	// bounded by Capacity (the master's SSD budget governs it).
	b := block(1, 64<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{tierCmd(b, "j1", 64<<20, dfs.TierSSD)}})
	})
	v.Wait()

	if !s.IsPinned(1) {
		t.Fatal("block not resident after SSD migration")
	}
	if got := s.SSDBytes(); got != 64<<20 {
		t.Errorf("SSDBytes = %d, want %d", got, 64<<20)
	}
	if got := s.PinnedBytes(); got != 0 {
		t.Errorf("PinnedBytes = %d, want 0 (flash copy must not charge RAM)", got)
	}
	st := s.Stats()
	if st.SSDPinnedBlocks != 1 || st.SSDPinnedBytes != 64<<20 {
		t.Errorf("stats = %+v", st)
	}

	// A read is served from flash, not memory.
	tier, resident := s.OnBlockReadTier(1, "other")
	if !resident || tier != dfs.TierSSD {
		t.Errorf("OnBlockReadTier = (%v, %v), want (SSD, true)", tier, resident)
	}
	if st = s.Stats(); st.SSDHits != 1 || st.MemoryHits != 0 {
		t.Errorf("hit counters = ssd %d mem %d", st.SSDHits, st.MemoryHits)
	}

	if got := rec.snapshot(); len(got) != 1 || got[0] != fmt.Sprintf("pin:1:%v", dfs.TierSSD) {
		t.Errorf("pin events = %v", got)
	}
}

func TestSlaveClimbsSSDToRAM(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	rec := &tierRecorder{}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, rec.listener())

	b := block(1, 8<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{tierCmd(b, "j1", 8<<20, dfs.TierSSD)}})
	})
	v.Wait()
	// Second rung: the master promotes the now-flash-resident block.
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{tierCmd(b, "j1", 8<<20, dfs.TierRAM)}})
	})
	v.Wait()

	if got := s.PinnedBytes(); got != 8<<20 {
		t.Errorf("PinnedBytes = %d, want %d after climb", got, 8<<20)
	}
	if got := s.SSDBytes(); got != 0 {
		t.Errorf("SSDBytes = %d, want 0 after climb (flash copy released)", got)
	}
	st := s.Stats()
	if st.ClimbedBlocks != 1 {
		t.Errorf("ClimbedBlocks = %d, want 1", st.ClimbedBlocks)
	}
	if st.MigratedBlocks != 1 {
		t.Errorf("MigratedBlocks = %d, want 1 (a climb is not a fresh migration)", st.MigratedBlocks)
	}
	// RAM pin lands before the flash unpin so a crash mid-climb never
	// leaves the block resident nowhere.
	want := []string{
		fmt.Sprintf("pin:1:%v", dfs.TierSSD),
		fmt.Sprintf("pin:1:%v", dfs.TierRAM),
		fmt.Sprintf("unpin:1:%v", dfs.TierSSD),
	}
	got := rec.snapshot()
	if len(got) != len(want) {
		t.Fatalf("pin events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pin events = %v, want %v", got, want)
		}
	}
	// And the read hook now reports a memory hit.
	if tier, resident := s.OnBlockReadTier(1, "other"); !resident || tier != dfs.TierRAM {
		t.Errorf("OnBlockReadTier = (%v, %v), want (RAM, true)", tier, resident)
	}
}

func TestSlaveDemoteDrainsMatchingTierOnly(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	rec := &tierRecorder{}
	s := NewSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil, rec.listener())

	ssd := block(1, 4<<20)
	ram := block(2, 4<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
			tierCmd(ssd, "j1", 8<<20, dfs.TierSSD),
			tierCmd(ram, "j1", 8<<20, dfs.TierRAM),
		}})
	})
	v.Wait()

	v.Go(func() {
		s.ApplyDemoteBatch(dfs.DemoteBatch{Epoch: 1, Cmds: []dfs.DemoteCmd{
			{Block: 1, Tier: dfs.TierSSD},
			// Tier mismatch: block 2 sits in RAM, not on flash — skipped.
			{Block: 2, Tier: dfs.TierSSD},
			// Not resident at all — skipped.
			{Block: 3, Tier: dfs.TierSSD},
		}})
	})
	v.Wait()

	if s.IsPinned(1) {
		t.Error("demoted block still resident")
	}
	if !s.IsPinned(2) {
		t.Error("tier-mismatched demote dropped a RAM resident")
	}
	if got := s.SSDBytes(); got != 0 {
		t.Errorf("SSDBytes = %d, want 0", got)
	}
	st := s.Stats()
	if st.Demotions != 1 {
		t.Errorf("Demotions = %d, want 1", st.Demotions)
	}
	// Demotion sends the master an unpin delta so the budget is freed.
	want := fmt.Sprintf("unpin:1:%v", dfs.TierSSD)
	var found bool
	for _, e := range rec.snapshot() {
		if e == want {
			found = true
		}
	}
	if !found {
		t.Errorf("pin events %v missing %q", rec.snapshot(), want)
	}
}

func TestSlaveLegacyTierlessCommandPinsRAM(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)

	// cmd() leaves Tier at its zero value (TierHDD), which must replay
	// as the paper's pin-in-RAM target.
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 1<<20), "j1", 1<<20, false)}})
	})
	v.Wait()
	if got := s.PinnedBytes(); got != 1<<20 {
		t.Errorf("PinnedBytes = %d, want %d", got, 1<<20)
	}
	if got := s.SSDBytes(); got != 0 {
		t.Errorf("SSDBytes = %d, want 0", got)
	}
}
