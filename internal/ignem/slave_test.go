package ignem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeMedia simulates the datanode's disk with a fixed per-block read
// time. It records read order and asserts the slave never issues
// concurrent migration reads.
type fakeMedia struct {
	clock    simclock.Clock
	readTime time.Duration
	err      error

	mu         sync.Mutex
	order      []dfs.BlockID
	inFlight   int
	maxInFlite int
}

func (m *fakeMedia) ReadForMigration(b dfs.Block, _ uint32) error {
	m.mu.Lock()
	m.inFlight++
	if m.inFlight > m.maxInFlite {
		m.maxInFlite = m.inFlight
	}
	m.mu.Unlock()

	m.clock.Sleep(m.readTime)

	m.mu.Lock()
	m.inFlight--
	m.order = append(m.order, b.ID)
	err := m.err
	m.mu.Unlock()
	return err
}

func (m *fakeMedia) readOrder() []dfs.BlockID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]dfs.BlockID, len(m.order))
	copy(out, m.order)
	return out
}

type fakeLiveness struct {
	mu     sync.Mutex
	active map[dfs.JobID]bool
	asked  int
}

func (l *fakeLiveness) IsActive(job dfs.JobID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.asked++
	return l.active[job]
}

type pinRecorder struct {
	mu     sync.Mutex
	events []string
}

func (p *pinRecorder) listener() PinListener {
	return func(id dfs.BlockID, tier dfs.Tier, pinned bool) {
		p.mu.Lock()
		defer p.mu.Unlock()
		state := "unpin"
		if pinned {
			state = "pin"
		}
		p.events = append(p.events, state)
	}
}

func block(id dfs.BlockID, size int64) dfs.Block { return dfs.Block{ID: id, Size: size} }

func cmd(b dfs.Block, job dfs.JobID, jobSize int64, implicit bool) dfs.MigrateCmd {
	return dfs.MigrateCmd{Block: b, Job: job, JobInputSize: jobSize, SubmitTime: epoch, Implicit: implicit}
}

func newTestSlave(v *simclock.Virtual, cfg SlaveConfig, media *fakeMedia, live Liveness) (*Slave, *pinRecorder) {
	rec := &pinRecorder{}
	s := NewSlave(v, cfg, media, live, rec.listener())
	return s, rec
}

func TestSlaveMigratesAndPins(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 100 * time.Millisecond}
	s, rec := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b := block(1, 64<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b, "j1", 64<<20, false)}})
	})
	v.Wait()
	if !s.IsPinned(1) {
		t.Fatal("block not pinned after migration")
	}
	if got := s.PinnedBytes(); got != 64<<20 {
		t.Errorf("PinnedBytes = %d", got)
	}
	st := s.Stats()
	if st.MigratedBlocks != 1 || st.MigratedBytes != 64<<20 {
		t.Errorf("stats = %+v", st)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.events) != 1 || rec.events[0] != "pin" {
		t.Errorf("pin events = %v", rec.events)
	}
}

func TestSlaveOneMigrationAtATime(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 50 * time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	cmds := make([]dfs.MigrateCmd, 10)
	for i := range cmds {
		cmds[i] = cmd(block(dfs.BlockID(i+1), 1<<20), "j1", 10<<20, false)
	}
	v.Go(func() { s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: cmds}) })
	v.Wait()
	if media.maxInFlite != 1 {
		t.Errorf("max concurrent migration reads = %d, want 1", media.maxInFlite)
	}
	if len(media.readOrder()) != 10 {
		t.Errorf("migrated %d blocks, want 10", len(media.readOrder()))
	}
}

func TestSlaveSmallestJobFirst(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	batch := dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
		cmd(block(1, 8<<20), "big", 1<<30, false),
		cmd(block(2, 8<<20), "big", 1<<30, false),
		cmd(block(3, 8<<20), "small", 16<<20, false),
		cmd(block(4, 8<<20), "small", 16<<20, false),
	}}
	v.Go(func() { s.ApplyMigrateBatch(batch) })
	v.Wait()
	order := media.readOrder()
	// The first command may already be in flight before the rest enqueue,
	// but the small job's blocks must precede the big job's remaining one.
	pos := map[dfs.BlockID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[3] < pos[2] && pos[4] < pos[2]) {
		t.Errorf("small job not prioritized: order=%v", order)
	}
}

func TestSlaveFIFOAblation(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: 10 * time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30, FIFO: true}, media, nil)
	batch := dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
		cmd(block(1, 8<<20), "big", 1<<30, false),
		cmd(block(2, 8<<20), "big", 1<<30, false),
		cmd(block(3, 8<<20), "small", 16<<20, false),
	}}
	v.Go(func() { s.ApplyMigrateBatch(batch) })
	v.Wait()
	order := media.readOrder()
	want := []dfs.BlockID{1, 2, 3}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("FIFO order = %v, want %v", order, want)
		}
	}
}

func TestSlaveImplicitEvictionOnRead(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, rec := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b := block(1, 4<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b, "j1", 4<<20, true)}})
	})
	v.Wait()
	if !s.IsPinned(1) {
		t.Fatal("not pinned")
	}
	if from := s.OnBlockRead(1, "j1"); !from {
		t.Error("read not served from memory")
	}
	if s.IsPinned(1) {
		t.Error("implicit eviction did not unpin")
	}
	if s.PinnedBytes() != 0 {
		t.Errorf("PinnedBytes = %d after implicit eviction", s.PinnedBytes())
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.events) != 2 || rec.events[1] != "unpin" {
		t.Errorf("pin events = %v", rec.events)
	}
}

func TestSlaveExplicitEvictionKeepsUntilEvict(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b := block(1, 4<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b, "j1", 4<<20, false)}})
	})
	v.Wait()
	s.OnBlockRead(1, "j1")
	if !s.IsPinned(1) {
		t.Fatal("explicit-mode block evicted by read")
	}
	s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: []dfs.EvictCmd{{Block: 1, Job: "j1"}}})
	if s.IsPinned(1) {
		t.Error("explicit eviction did not unpin")
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d", got)
	}
}

func TestSlaveSharedBlockRefCounting(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b := block(1, 4<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
			cmd(b, "j1", 4<<20, false),
			cmd(b, "j2", 4<<20, false),
		}})
	})
	v.Wait()
	if got := len(media.readOrder()); got != 1 {
		t.Errorf("device reads = %d, want 1 (shared block)", got)
	}
	s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: []dfs.EvictCmd{{Block: 1, Job: "j1"}}})
	if !s.IsPinned(1) {
		t.Fatal("block unpinned while j2 still references it")
	}
	s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: []dfs.EvictCmd{{Block: 1, Job: "j2"}}})
	if s.IsPinned(1) {
		t.Error("block still pinned after last reference dropped")
	}
}

func TestSlaveMissedReadDiscardsQueuedCommand(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Second}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b1, b2 := block(1, 4<<20), block(2, 4<<20)
	v.Go(func() {
		// b1 keeps the worker busy for 1s; meanwhile the job reads b2
		// from disk, so its queued command must be discarded.
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
			cmd(b1, "j1", 8<<20, false),
			cmd(b2, "j1", 8<<20, false),
		}})
		v.Sleep(100 * time.Millisecond)
		if from := s.OnBlockRead(2, "j1"); from {
			t.Error("b2 unexpectedly in memory already")
		}
	})
	v.Wait()
	if s.IsPinned(2) {
		t.Error("missed block was still migrated")
	}
	if got := s.Stats().DiscardedMissed; got != 1 {
		t.Errorf("DiscardedMissed = %d", got)
	}
}

func TestSlaveMissedReadDuringInflightMigration(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Second}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	b := block(1, 4<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b, "j1", 4<<20, true)}})
		v.Sleep(500 * time.Millisecond) // migration in flight
		s.OnBlockRead(1, "j1")          // job reads from disk first
	})
	v.Wait()
	if s.IsPinned(1) {
		t.Error("block pinned although its only reader already read it")
	}
	if s.PinnedBytes() != 0 {
		t.Errorf("leaked reservation: %d bytes", s.PinnedBytes())
	}
}

func TestSlaveDoNotHarmDefersWhenFull(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 10 << 20}, media, nil)
	b1, b2 := block(1, 8<<20), block(2, 8<<20)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b1, "j1", 8<<20, false)}})
	})
	v.Wait()
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(b2, "j2", 8<<20, false)}})
	})
	v.Wait()
	// Do-not-harm: b1 (unread) must not be evicted for b2.
	if !s.IsPinned(1) {
		t.Fatal("unread pinned block was evicted (do-not-harm violated)")
	}
	if s.IsPinned(2) {
		t.Fatal("b2 migrated despite full buffer")
	}
	if got := s.Stats().DeferredCmds; got != 1 {
		t.Errorf("DeferredCmds = %d", got)
	}
	// Once j1 evicts, the deferred command proceeds.
	v.Go(func() {
		s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: []dfs.EvictCmd{{Block: 1, Job: "j1"}}})
	})
	v.Wait()
	if !s.IsPinned(2) {
		t.Error("deferred migration did not run after space freed")
	}
}

func TestSlaveRejectsOversizedBlock(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 20}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 2<<20), "j1", 2<<20, false)}})
	})
	v.Wait()
	if got := s.Stats().RejectedTooLarge; got != 1 {
		t.Errorf("RejectedTooLarge = %d", got)
	}
}

func TestSlaveEpochChangePurges(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 4<<20), "j1", 4<<20, false)}})
	})
	v.Wait()
	if !s.IsPinned(1) {
		t.Fatal("setup: block not pinned")
	}
	// A batch from a restarted master (epoch 2) purges everything first.
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 2, Cmds: []dfs.MigrateCmd{cmd(block(2, 4<<20), "j2", 4<<20, false)}})
	})
	v.Wait()
	if s.IsPinned(1) {
		t.Error("old-epoch block survived master restart")
	}
	if !s.IsPinned(2) {
		t.Error("new-epoch migration did not run")
	}
}

func TestSlaveInflightMigrationDroppedOnEpochChange(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Second}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 4<<20), "j1", 4<<20, false)}})
		v.Sleep(200 * time.Millisecond)
		s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 2}) // master restarted mid-flight
	})
	v.Wait()
	if s.IsPinned(1) {
		t.Error("stale-epoch migration was pinned")
	}
	if s.PinnedBytes() != 0 {
		t.Errorf("leaked reservation: %d", s.PinnedBytes())
	}
}

func TestSlaveLivenessSweepPurgesDeadJobs(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	live := &fakeLiveness{active: map[dfs.JobID]bool{"alive": true}}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 10 << 20, CleanupThreshold: 0.5, CleanupMinInterval: time.Second}, media, live)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
			cmd(block(1, 4<<20), "dead", 8<<20, false),
			cmd(block(2, 4<<20), "alive", 8<<20, false),
		}})
	})
	v.Wait()
	if !s.IsPinned(1) || !s.IsPinned(2) {
		t.Fatal("setup: blocks not pinned")
	}
	// Occupancy is 80% > 50% threshold; a deferred command triggers the
	// sweep, which purges the dead job and then admits the new block.
	v.Go(func() {
		v.Sleep(2 * time.Second)
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(3, 4<<20), "alive", 8<<20, false)}})
	})
	v.Wait()
	if s.IsPinned(1) {
		t.Error("dead job's block not purged by sweep")
	}
	if !s.IsPinned(2) {
		t.Error("live job's block wrongly purged")
	}
	if !s.IsPinned(3) {
		t.Error("deferred block not admitted after sweep")
	}
	if got := s.Stats().PurgedJobs; got != 1 {
		t.Errorf("PurgedJobs = %d", got)
	}
}

func TestSlaveRestartDiscardsMemory(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 4<<20), "j1", 4<<20, false)}})
	})
	v.Wait()
	s.Restart()
	if s.IsPinned(1) || s.PinnedBytes() != 0 {
		t.Error("restart did not discard pinned memory")
	}
	// The slave still handles new commands after restart.
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(2, 4<<20), "j2", 4<<20, false)}})
	})
	v.Wait()
	if !s.IsPinned(2) {
		t.Error("slave dead after restart")
	}
}

func TestSlaveMediaErrorRollsBackReservation(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond, err: errors.New("disk died")}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 4<<20), "j1", 4<<20, false)}})
	})
	v.Wait()
	if s.IsPinned(1) {
		t.Error("failed migration pinned block")
	}
	if s.PinnedBytes() != 0 {
		t.Errorf("leaked reservation: %d", s.PinnedBytes())
	}
}

func TestSlaveCloseStopsWorker(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Hour}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 4<<20), "j1", 4<<20, false)}})
		v.Sleep(time.Second)
		s.Close()
	})
	v.Wait()
	if s.PinnedBytes() != 0 {
		t.Errorf("pinned bytes after close: %d", s.PinnedBytes())
	}
	// Post-close applies are no-ops.
	s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(2, 1<<20), "j2", 1<<20, false)}})
	if s.OnBlockRead(2, "j2") {
		t.Error("closed slave claims memory hit")
	}
}

func TestSlaveMemoryHitMissCounters(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	media := &fakeMedia{clock: v, readTime: time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{cmd(block(1, 1<<20), "j1", 1<<20, false)}})
	})
	v.Wait()
	s.OnBlockRead(1, "j1") // hit
	s.OnBlockRead(9, "j9") // miss
	st := s.Stats()
	if st.MemoryHits != 1 || st.MemoryMisses != 1 {
		t.Errorf("hits=%d misses=%d", st.MemoryHits, st.MemoryMisses)
	}
}

func TestSlaveAdaptiveThrottleBacksOff(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	// 64 MB in 8 s is 8 MB/s: clearly contended.
	media := &fakeMedia{clock: v, readTime: 8 * time.Second}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30, AdaptiveThrottle: true}, media, nil)
	cmds := []dfs.MigrateCmd{
		cmd(block(1, 64<<20), "j", 128<<20, false),
		cmd(block(2, 64<<20), "j", 128<<20, false),
	}
	start := epoch
	v.Go(func() { s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: cmds}) })
	v.Wait()
	if got := s.Stats().ThrottlePauses; got < 1 {
		t.Fatalf("ThrottlePauses = %d, want >= 1", got)
	}
	// Two 8s reads plus at least one 8s pause.
	if elapsed := v.Now().Sub(start); elapsed < 24*time.Second {
		t.Errorf("elapsed %v, want >= 24s with back-off", elapsed)
	}
	if !s.IsPinned(1) || !s.IsPinned(2) {
		t.Error("throttled migrations did not complete")
	}
}

func TestSlaveNoThrottleOnFastReads(t *testing.T) {
	v := simclock.NewVirtual(epoch)
	// 64 MB in 500 ms is 134 MB/s: uncontended.
	media := &fakeMedia{clock: v, readTime: 500 * time.Millisecond}
	s, _ := newTestSlave(v, SlaveConfig{Capacity: 1 << 30, AdaptiveThrottle: true}, media, nil)
	v.Go(func() {
		s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
			cmd(block(1, 64<<20), "j", 64<<20, false),
		}})
	})
	v.Wait()
	if got := s.Stats().ThrottlePauses; got != 0 {
		t.Errorf("ThrottlePauses = %d on an idle disk", got)
	}
}

// checkAccounting asserts the slave's internal byte accounting matches
// the pinned-block map exactly.
func checkAccounting(t *testing.T, s *Slave) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for _, pb := range s.pinned {
		sum += pb.size
		if len(pb.refs) == 0 {
			t.Error("pinned block with empty reference list")
		}
	}
	if sum != s.pinnedBytes {
		t.Errorf("pinnedBytes %d != sum of pinned blocks %d", s.pinnedBytes, sum)
	}
	if s.reserved < 0 {
		t.Errorf("negative reservation %d", s.reserved)
	}
	// jobBlocks is the inverse index of refs.
	for job, blocks := range s.jobBlocks {
		for id := range blocks {
			pb := s.pinned[id]
			if pb == nil {
				t.Errorf("jobBlocks[%s] references unpinned block %d", job, id)
				continue
			}
			if _, ok := pb.refs[job]; !ok {
				t.Errorf("jobBlocks[%s] out of sync for block %d", job, id)
			}
		}
	}
}

// Property: internal accounting stays consistent under random command
// interleavings, checked at quiesce points.
func TestSlaveAccountingInvariant(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		v := simclock.NewVirtual(epoch)
		media := &fakeMedia{clock: v, readTime: 3 * time.Millisecond}
		s, _ := newTestSlave(v, SlaveConfig{Capacity: 20 << 20}, media, nil)
		rng := rand.New(rand.NewSource(seed))
		v.Go(func() {
			for i := 0; i < 60; i++ {
				id := dfs.BlockID(rng.Intn(12) + 1)
				job := dfs.JobID(fmt.Sprintf("j%d", rng.Intn(4)))
				switch rng.Intn(4) {
				case 0, 1:
					s.ApplyMigrateBatch(dfs.MigrateBatch{Epoch: 1, Cmds: []dfs.MigrateCmd{
						cmd(block(id, int64(rng.Intn(4)+1)<<20), job, 8<<20, rng.Intn(2) == 0),
					}})
				case 2:
					s.OnBlockRead(id, job)
				case 3:
					s.ApplyEvictBatch(dfs.EvictBatch{Epoch: 1, Cmds: []dfs.EvictCmd{{Block: id, Job: job}}})
				}
				if rng.Intn(3) == 0 {
					v.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
				}
			}
		})
		v.Wait()
		checkAccounting(t, s)
	}
}
