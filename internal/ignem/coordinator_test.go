package ignem

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/shardmap"
)

// manyBlocks builds a file whose blocks are guaranteed to span at least
// two shards of the given ring (it keeps adding blocks until two shard
// owners appear).
func manyBlocks(t *testing.T, ring *shardmap.Ring, size int64, nodes ...string) []dfs.LocatedBlock {
	t.Helper()
	var out []dfs.LocatedBlock
	owners := map[int]bool{}
	for id := dfs.BlockID(1); id <= 64; id++ {
		out = append(out, located(id, size, nodes...))
		owners[ring.BlockShard(uint64(id))] = true
		if len(out) >= 8 && len(owners) >= 2 {
			return out
		}
	}
	t.Fatalf("could not span two shards in 64 blocks (owners %v)", owners)
	return nil
}

// A job whose input spans shards is planned by several planners, but
// every command carries the job's WHOLE input size — the invariant that
// keeps smallest-job-first a global order when one sort spans shards.
func TestCoordinatorCrossShardJobCarriesGlobalInputSize(t *testing.T) {
	ring := shardmap.NewRing(4)
	blocks := manyBlocks(t, ring, 10, "dn1", "dn2")
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{"/sort": blocks}}
	link := newFakeLink()
	co := NewCoordinator(res, link, 7, 4)

	resp, err := co.Migrate(dfs.MigrateReq{Job: "sort", Paths: []string{"/sort"}, SubmitTime: time.Unix(9, 0)})
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	wantBytes := int64(len(blocks)) * 10
	if resp.Blocks != len(blocks) || resp.Bytes != wantBytes {
		t.Fatalf("resp = %+v, want %d blocks / %d bytes", resp, len(blocks), wantBytes)
	}
	var cmds int
	seen := map[dfs.BlockID]bool{}
	for _, batches := range link.migrates {
		for _, b := range batches {
			for _, c := range b.Cmds {
				cmds++
				if seen[c.Block.ID] {
					t.Errorf("block %d assigned twice", c.Block.ID)
				}
				seen[c.Block.ID] = true
				if c.JobInputSize != wantBytes {
					t.Errorf("block %d JobInputSize = %d, want global %d", c.Block.ID, c.JobInputSize, wantBytes)
				}
				if b.Epoch != 1 {
					t.Errorf("batch epoch = %d, want shared epoch 1", b.Epoch)
				}
			}
		}
	}
	if cmds != len(blocks) {
		t.Errorf("commands = %d, want %d", cmds, len(blocks))
	}

	st := co.Stats()
	if st.ActiveJobs != 1 {
		t.Errorf("ActiveJobs = %d: a job spanning shards must count once", st.ActiveJobs)
	}
	if st.MigrateReqs != 1 {
		t.Errorf("MigrateReqs = %d, want 1 per client request", st.MigrateReqs)
	}
	if st.BlocksAssigned != int64(len(blocks)) {
		t.Errorf("BlocksAssigned = %d", st.BlocksAssigned)
	}

	// Eviction reaches every fragment and merges the count.
	evResp, err := co.Evict(dfs.EvictReq{Job: "sort"})
	if err != nil {
		t.Fatal(err)
	}
	if evResp.Blocks != len(blocks) {
		t.Errorf("Evict released %d blocks, want %d", evResp.Blocks, len(blocks))
	}
	if st := co.Stats(); st.ActiveJobs != 0 || st.EvictReqs != 1 {
		t.Errorf("post-evict stats = %+v", st)
	}
}

// A single-shard coordinator is the historical master: same seed, same
// request sequence, identical batches (replica draws included).
func TestCoordinatorSingleShardMatchesStandaloneMaster(t *testing.T) {
	files := map[string][]dfs.LocatedBlock{
		"/a": {located(1, 10, "dn1", "dn2", "dn3"), located(2, 20, "dn2", "dn3")},
		"/b": {located(3, 30, "dn1", "dn3"), located(4, 5, "dn1", "dn2", "dn3")},
	}
	const seed = 42
	linkA, linkB := newFakeLink(), newFakeLink()
	std := NewMaster(&fakeResolver{files: files}, linkA, seed)
	co := NewCoordinator(&fakeResolver{files: files}, linkB, seed, 1)

	reqs := []dfs.MigrateReq{
		{Job: "j1", Paths: []string{"/a"}, SubmitTime: time.Unix(1, 0), Implicit: true},
		{Job: "j2", Paths: []string{"/b", "/a"}, SubmitTime: time.Unix(2, 0)},
		{Job: "j1", Paths: []string{"/b"}, SubmitTime: time.Unix(3, 0)},
	}
	for _, req := range reqs {
		ra, errA := std.Migrate(req)
		rb, errB := co.Migrate(req)
		if (errA == nil) != (errB == nil) || ra != rb {
			t.Fatalf("divergence on %+v: standalone (%+v, %v) vs coordinator (%+v, %v)", req, ra, errA, rb, errB)
		}
	}
	if !reflect.DeepEqual(linkA.migrates, linkB.migrates) {
		t.Fatalf("migrate batches diverged:\nstandalone: %+v\ncoordinator: %+v", linkA.migrates, linkB.migrates)
	}
	for _, job := range []dfs.JobID{"j1", "j2"} {
		for id := dfs.BlockID(1); id <= 4; id++ {
			if a, b := std.AssignedReplica(job, id), co.AssignedReplica(job, id); a != b {
				t.Errorf("AssignedReplica(%s, %d): %q vs %q", job, id, a, b)
			}
		}
	}
	ea, _ := std.Evict(dfs.EvictReq{Job: "j1"})
	eb, _ := co.Evict(dfs.EvictReq{Job: "j1"})
	if ea != eb {
		t.Errorf("Evict: %+v vs %+v", ea, eb)
	}
	if !reflect.DeepEqual(linkA.evicts, linkB.evicts) {
		t.Errorf("evict batches diverged:\nstandalone: %+v\ncoordinator: %+v", linkA.evicts, linkB.evicts)
	}
}

// Restart bumps the shared epoch exactly once: every planner's next
// batch — whichever shard it comes from — carries the same new epoch,
// and all job state is gone.
func TestCoordinatorRestartSharesOneEpoch(t *testing.T) {
	ring := shardmap.NewRing(4)
	blocks := manyBlocks(t, ring, 8, "dn1")
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{"/f": blocks}}
	link := newFakeLink()
	co := NewCoordinator(res, link, 3, 4)

	if _, err := co.Migrate(dfs.MigrateReq{Job: "j", Paths: []string{"/f"}}); err != nil {
		t.Fatal(err)
	}
	co.Restart()
	if co.Epoch() != 2 {
		t.Fatalf("Epoch after one Restart = %d, want 2", co.Epoch())
	}
	if got := co.AssignedReplica("j", blocks[0].Block.ID); got != "" {
		t.Fatalf("assignment survived restart: %q", got)
	}
	if st := co.Stats(); st.ActiveJobs != 0 || st.Epoch != 2 {
		t.Fatalf("post-restart stats = %+v", st)
	}
	if _, err := co.Migrate(dfs.MigrateReq{Job: "j2", Paths: []string{"/f"}}); err != nil {
		t.Fatal(err)
	}
	var epochs []uint64
	for _, batches := range link.migrates {
		for _, b := range batches {
			epochs = append(epochs, b.Epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		if e != 1 && e != 2 {
			t.Fatalf("unexpected epoch %d in %v (want only the shared 1 then 2)", e, epochs)
		}
	}
}

// Cache-hit notifications route to the planner that owns each block: a
// notification for a cross-shard job reaches every fragment's planner
// and the merged ReadNotifies counter sees every block.
func TestCoordinatorNotifyReadRoutesByBlockShard(t *testing.T) {
	ring := shardmap.NewRing(4)
	blocks := manyBlocks(t, ring, 8, "dn1")
	res := &fakeResolver{files: map[string][]dfs.LocatedBlock{"/f": blocks}}
	link := newFakeLink()
	co := NewCoordinator(res, link, 3, 4)
	if _, err := co.Migrate(dfs.MigrateReq{Job: "j", Paths: []string{"/f"}, Implicit: true}); err != nil {
		t.Fatal(err)
	}
	var ids []dfs.BlockID
	for _, lb := range blocks {
		ids = append(ids, lb.Block.ID)
	}
	co.NotifyRead("j", ids)
	if st := co.Stats(); st.ReadNotifies != int64(len(ids)) {
		t.Errorf("ReadNotifies = %d, want %d", st.ReadNotifies, len(ids))
	}
	var forwarded int
	for _, batches := range link.notifies {
		for _, b := range batches {
			forwarded += len(b.Cmds)
		}
	}
	if forwarded != len(ids) {
		t.Errorf("forwarded %d notify cmds, want %d", forwarded, len(ids))
	}
}
