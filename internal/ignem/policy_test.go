package ignem

import (
	"testing"

	"repro/internal/dfs"
)

func TestPolicyByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "paper", true},
		{"paper", "paper", true},
		{"ladder", "ladder", true},
		{"popularity", "popularity", true},
		{"lru", "", false},
	}
	for _, c := range cases {
		p, ok := PolicyByName(c.in)
		if ok != c.ok {
			t.Errorf("PolicyByName(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && p.Name() != c.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", c.in, p.Name(), c.want)
		}
	}
}

func TestPaperPolicyIsPinInRAM(t *testing.T) {
	p := PaperPolicy{}
	ctx := PlanContext{JobInputSize: 1 << 40, Popularity: 100, SSDEnabled: true}
	if got := p.PlanTier(ctx); got != dfs.TierRAM {
		t.Errorf("PlanTier = %v, want RAM", got)
	}
	for _, cur := range []dfs.Tier{dfs.TierHDD, dfs.TierSSD, dfs.TierRAM} {
		if got := p.ClimbTier(ctx, cur); got != cur {
			t.Errorf("ClimbTier(%v) = %v, want no climb", cur, got)
		}
	}
	residents := []Resident{{ID: 1, Size: 1 << 30}}
	if v := p.Victims(dfs.TierRAM, 1, residents); v != nil {
		t.Errorf("Victims = %v, want nil (paper never demotes)", v)
	}
}

func TestLadderPolicyPlanAndClimb(t *testing.T) {
	p := LadderPolicy{}
	if got := p.PlanTier(PlanContext{SSDEnabled: true}); got != dfs.TierSSD {
		t.Errorf("PlanTier(ssd enabled) = %v, want SSD", got)
	}
	if got := p.PlanTier(PlanContext{SSDEnabled: false}); got != dfs.TierRAM {
		t.Errorf("PlanTier(no ssd) = %v, want RAM", got)
	}

	small := PlanContext{JobInputSize: 512 << 20, SSDEnabled: true}
	if got := p.ClimbTier(small, dfs.TierSSD); got != dfs.TierRAM {
		t.Errorf("small job ClimbTier = %v, want RAM", got)
	}
	largeCold := PlanContext{JobInputSize: 2 << 30, SSDEnabled: true}
	if got := p.ClimbTier(largeCold, dfs.TierSSD); got != dfs.TierSSD {
		t.Errorf("large cold job ClimbTier = %v, want stay on SSD", got)
	}
	largeHot := PlanContext{JobInputSize: 2 << 30, Popularity: 1, SSDEnabled: true}
	if got := p.ClimbTier(largeHot, dfs.TierSSD); got != dfs.TierRAM {
		t.Errorf("large popular job ClimbTier = %v, want RAM", got)
	}
	// Only an SSD resident climbs; RAM stays, HDD never jumps a rung.
	if got := p.ClimbTier(small, dfs.TierRAM); got != dfs.TierRAM {
		t.Errorf("ClimbTier from RAM = %v, want RAM", got)
	}
	if got := p.ClimbTier(small, dfs.TierHDD); got != dfs.TierHDD {
		t.Errorf("ClimbTier from HDD = %v, want HDD", got)
	}

	// Custom climb threshold.
	tight := LadderPolicy{ClimbMaxJobSize: 100}
	if got := tight.ClimbTier(PlanContext{JobInputSize: 101}, dfs.TierSSD); got != dfs.TierSSD {
		t.Errorf("over custom threshold = %v, want stay on SSD", got)
	}
	if got := tight.ClimbTier(PlanContext{JobInputSize: 100}, dfs.TierSSD); got != dfs.TierRAM {
		t.Errorf("at custom threshold = %v, want RAM", got)
	}
}

func TestPopularityPolicy(t *testing.T) {
	p := PopularityPolicy{}
	hot := PlanContext{Popularity: 2, SSDEnabled: true}
	warm := PlanContext{Popularity: 1, SSDEnabled: true}
	cold := PlanContext{SSDEnabled: true}
	if got := p.PlanTier(hot); got != dfs.TierRAM {
		t.Errorf("hot PlanTier = %v, want RAM", got)
	}
	if got := p.PlanTier(warm); got != dfs.TierSSD {
		t.Errorf("warm PlanTier = %v, want SSD", got)
	}
	if got := p.PlanTier(cold); got != dfs.TierSSD {
		t.Errorf("cold PlanTier = %v, want SSD", got)
	}
	if got := p.PlanTier(PlanContext{SSDEnabled: false}); got != dfs.TierRAM {
		t.Errorf("no-ssd PlanTier = %v, want RAM", got)
	}
	if got := p.ClimbTier(warm, dfs.TierSSD); got != dfs.TierRAM {
		t.Errorf("warm ClimbTier = %v, want RAM", got)
	}
	if got := p.ClimbTier(cold, dfs.TierSSD); got != dfs.TierSSD {
		t.Errorf("cold ClimbTier = %v, want stay on SSD", got)
	}
	strict := PopularityPolicy{HotThreshold: 5}
	if got := strict.PlanTier(PlanContext{Popularity: 4, SSDEnabled: true}); got != dfs.TierSSD {
		t.Errorf("below custom threshold = %v, want SSD", got)
	}
	if got := strict.PlanTier(PlanContext{Popularity: 5, SSDEnabled: true}); got != dfs.TierRAM {
		t.Errorf("at custom threshold = %v, want RAM", got)
	}
}

func TestColdestVictimsOrderingAndCoverage(t *testing.T) {
	residents := []Resident{
		{ID: 1, Size: 10, Refs: 0, Seq: 3, Pop: 5}, // hot: picked last
		{ID: 2, Size: 10, Refs: 2, Seq: 1, Pop: 0}, // cold but referenced
		{ID: 3, Size: 10, Refs: 0, Seq: 2, Pop: 0}, // coldest, newer
		{ID: 4, Size: 10, Refs: 0, Seq: 1, Pop: 0}, // coldest, oldest: first
	}
	v := coldestVictims(20, residents)
	if len(v) != 2 || v[0].ID != 4 || v[1].ID != 3 {
		t.Fatalf("victims = %v, want [4 3] (pop asc, refs asc, seq asc)", v)
	}
	// Need spills into the referenced then the popular resident.
	v = coldestVictims(35, residents)
	if len(v) != 4 || v[2].ID != 2 || v[3].ID != 1 {
		t.Fatalf("victims = %v, want [4 3 2 1]", v)
	}
	// The whole set cannot cover the need: reject with nil.
	if v = coldestVictims(41, residents); v != nil {
		t.Fatalf("victims = %v, want nil when need uncoverable", v)
	}
	if v = coldestVictims(0, residents); v != nil {
		t.Fatalf("victims = %v, want nil for zero need", v)
	}
	if v = coldestVictims(1, nil); v != nil {
		t.Fatalf("victims = %v, want nil for no residents", v)
	}
	// Input order is preserved (selection sorts a copy).
	if residents[0].ID != 1 {
		t.Fatal("coldestVictims mutated its input")
	}
}

func TestTierLedgerReserveReleaseBudgets(t *testing.T) {
	l := newTierLedger(TierBudgets{RAM: 100, SSD: 50})
	if !l.ssdEnabled() {
		t.Fatal("ssdEnabled = false with SSD budget")
	}

	ok, fresh := l.reserve(1, "dn1", 40, "j1", dfs.TierSSD, false)
	if !ok || !fresh {
		t.Fatalf("first reserve = (%v, %v), want (true, true)", ok, fresh)
	}
	// Same residency, second job: ref only, no new charge.
	ok, fresh = l.reserve(1, "dn1", 40, "j2", dfs.TierSSD, false)
	if !ok || fresh {
		t.Fatalf("duplicate reserve = (%v, %v), want (true, false)", ok, fresh)
	}
	// Same block on another datanode is a separate residency and busts
	// the 50-byte SSD budget.
	ok, _ = l.reserve(1, "dn2", 40, "j1", dfs.TierSSD, false)
	if ok {
		t.Fatal("over-budget SSD reserve succeeded")
	}
	if got := l.shortfall(dfs.TierSSD, 40); got != 30 {
		t.Errorf("shortfall = %d, want 30", got)
	}
	// HDD is never charged.
	ok, fresh = l.reserve(2, "dn1", 1<<40, "j1", dfs.TierHDD, false)
	if !ok || fresh {
		t.Fatalf("HDD reserve = (%v, %v), want (true, false)", ok, fresh)
	}

	// Climb: the same residency charges RAM on top of SSD.
	ok, fresh = l.reserve(1, "dn1", 40, "j1", dfs.TierRAM, true)
	if !ok || !fresh {
		t.Fatalf("climb reserve = (%v, %v), want (true, true)", ok, fresh)
	}
	c := l.snapshot()
	if c.SSDUsedBytes != 40 || c.RAMUsedBytes != 40 {
		t.Errorf("occupancy = ssd %d ram %d, want 40/40 during climb", c.SSDUsedBytes, c.RAMUsedBytes)
	}
	if c.PromotionsToSSD != 1 || c.PromotionsToRAM != 1 || c.ClimbsSSDToRAM != 1 {
		t.Errorf("counters = %+v", c)
	}

	// The slave's unpin delta releases the flash charge; releasing again
	// is a no-op.
	l.release(1, "dn1", dfs.TierSSD, false)
	l.release(1, "dn1", dfs.TierSSD, false)
	c = l.snapshot()
	if c.SSDUsedBytes != 0 || c.RAMUsedBytes != 40 {
		t.Errorf("after SSD release: ssd %d ram %d, want 0/40", c.SSDUsedBytes, c.RAMUsedBytes)
	}
	if c.Demotions != 0 {
		t.Errorf("Demotions = %d, want 0 for a non-demotion release", c.Demotions)
	}
	l.release(1, "dn1", dfs.TierRAM, true)
	if c = l.snapshot(); c.RAMUsedBytes != 0 || c.Demotions != 1 {
		t.Errorf("after demotion release: ram %d demotions %d, want 0/1", c.RAMUsedBytes, c.Demotions)
	}
}

func TestTierLedgerRejectCountersAndUnlimitedRAM(t *testing.T) {
	// RAM budget 0 = unlimited; SSD budget 0 = tier absent.
	l := newTierLedger(TierBudgets{})
	if l.ssdEnabled() {
		t.Fatal("ssdEnabled = true with zero SSD budget")
	}
	if ok, _ := l.reserve(1, "dn1", 1<<40, "j1", dfs.TierRAM, false); !ok {
		t.Fatal("unlimited RAM reserve failed")
	}
	if got := l.shortfall(dfs.TierRAM, 1<<40); got != 0 {
		t.Errorf("unlimited RAM shortfall = %d, want 0", got)
	}
	l.noteReject(dfs.TierSSD)
	l.noteReject(dfs.TierRAM)
	l.noteReject(dfs.TierRAM)
	l.noteReject(dfs.TierHDD) // ignored
	c := l.snapshot()
	if c.BudgetRejectsSSD != 1 || c.BudgetRejectsRAM != 2 {
		t.Errorf("rejects = ssd %d ram %d, want 1/2", c.BudgetRejectsSSD, c.BudgetRejectsRAM)
	}

	// A nil ledger (no ConfigureTiers) accepts everything silently.
	var nilLedger *tierLedger
	if ok, fresh := nilLedger.reserve(1, "dn1", 1, "j1", dfs.TierRAM, false); !ok || fresh {
		t.Errorf("nil ledger reserve = (%v, %v)", ok, fresh)
	}
	if nilLedger.ssdEnabled() || nilLedger.shortfall(dfs.TierRAM, 1) != 0 {
		t.Error("nil ledger not inert")
	}
	nilLedger.release(1, "dn1", dfs.TierRAM, false)
	nilLedger.noteReject(dfs.TierRAM)
}

func TestTierLedgerResidentsAndDropRef(t *testing.T) {
	l := newTierLedger(TierBudgets{RAM: 1 << 30, SSD: 1 << 30})
	pop := newPopTracker()
	l.reserve(1, "dn1", 10, "j1", dfs.TierSSD, false)
	l.reserve(2, "dn1", 20, "j1", dfs.TierSSD, false)
	l.reserve(2, "dn1", 20, "j2", dfs.TierSSD, false)
	l.reserve(3, "dn1", 30, "j1", dfs.TierRAM, false)
	pop.bump([]dfs.BlockID{2, 2})

	res := l.residents(dfs.TierSSD, pop)
	if len(res) != 2 {
		t.Fatalf("SSD residents = %v, want 2 entries", res)
	}
	// Sorted by plan sequence, popularity filled from the tracker.
	if res[0].ID != 1 || res[0].Refs != 1 || res[0].Pop != 0 {
		t.Errorf("resident[0] = %+v", res[0])
	}
	if res[1].ID != 2 || res[1].Refs != 2 || res[1].Pop != 2 {
		t.Errorf("resident[1] = %+v", res[1])
	}
	if ram := l.residents(dfs.TierRAM, nil); len(ram) != 1 || ram[0].ID != 3 {
		t.Errorf("RAM residents = %v", ram)
	}

	// Dropping the last job reference keeps the charge (bytes are still
	// resident on the slave) but zeroes Refs, making it a colder victim.
	l.dropRef(1, "dn1", "j1")
	res = l.residents(dfs.TierSSD, nil)
	if len(res) != 2 || res[0].Refs != 0 {
		t.Fatalf("after dropRef: residents = %v", res)
	}
	if c := l.snapshot(); c.SSDUsedBytes != 30 {
		t.Errorf("SSDUsedBytes = %d, want 30 (charge survives dropRef)", c.SSDUsedBytes)
	}
	// Release + no refs garbage-collects the entry.
	l.release(1, "dn1", dfs.TierSSD, true)
	if res = l.residents(dfs.TierSSD, nil); len(res) != 1 || res[0].ID != 2 {
		t.Errorf("after release: residents = %v", res)
	}

	// reset clears occupancy but keeps cumulative counters.
	before := l.snapshot()
	l.reset()
	after := l.snapshot()
	if after.SSDUsedBytes != 0 || after.RAMUsedBytes != 0 {
		t.Errorf("reset left occupancy %d/%d", after.SSDUsedBytes, after.RAMUsedBytes)
	}
	if after.PromotionsToSSD != before.PromotionsToSSD || after.Demotions != before.Demotions {
		t.Errorf("reset lost counters: %+v vs %+v", after, before)
	}
}

func TestPopTrackerNilSafe(t *testing.T) {
	var p *popTracker
	p.bump([]dfs.BlockID{1})
	if got := p.get(1); got != 0 {
		t.Errorf("nil tracker get = %d", got)
	}
	p = newPopTracker()
	p.bump([]dfs.BlockID{1, 1, 2})
	if p.get(1) != 2 || p.get(2) != 1 || p.get(3) != 0 {
		t.Errorf("counts = %d/%d/%d", p.get(1), p.get(2), p.get(3))
	}
}
