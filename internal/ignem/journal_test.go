package ignem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/wal"
)

// failLink wraps a fakeLink, failing sends to chosen addresses so tests
// can park specific batches on the retry queue.
type failLink struct {
	*fakeLink
	down map[string]bool
}

func (l *failLink) SendMigrate(addr string, b dfs.MigrateBatch) error {
	if l.down[addr] {
		return errTransport
	}
	return l.fakeLink.SendMigrate(addr, b)
}

func (l *failLink) SendEvict(addr string, b dfs.EvictBatch) error {
	if l.down[addr] {
		return errTransport
	}
	return l.fakeLink.SendEvict(addr, b)
}

var errTransport = &transportErr{}

type transportErr struct{}

func (*transportErr) Error() string { return "link down" }

func TestJournalRoundTrip(t *testing.T) {
	log := wal.New(wal.NewMem())
	j := NewJournal(log)
	submit := time.Unix(0, 123456789)
	entries := []planEntry{
		{ID: 1, Size: 64 << 20, Checksum: 0xDEADBEEF, Addr: "dn0", Tier: dfs.TierRAM},
		{ID: 2, Size: 32 << 20, Checksum: 0, Addr: "dn1", Tier: dfs.TierRAM},
	}
	if err := j.AppendPlan(7, "job-a", true, 96<<20, submit, entries); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCopied("job-a", "dn0", dfs.TierRAM, []dfs.BlockID{1}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPinned("job-a", "dn0", dfs.TierRAM, []dfs.BlockID{1}); err != nil {
		t.Fatal(err)
	}
	// Duplicate pins are deduped, not re-appended.
	if err := j.AppendPinned("job-a", "dn0", dfs.TierRAM, []dfs.BlockID{1}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendEvictIntent("job-b"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendEvictBatch("job-b", "dn2", []dfs.BlockID{9}); err != nil {
		t.Fatal(err)
	}
	if got := j.Appended(); got != 5 {
		t.Fatalf("appended %d records, want 5 (pinned dedup)", got)
	}

	rec, err := NewJournal(log).Replay()
	if err != nil {
		t.Fatal(err)
	}
	if rec.epoch != 7 {
		t.Fatalf("epoch %d, want 7", rec.epoch)
	}
	if rec.records != 5 {
		t.Fatalf("replayed %d records, want 5", rec.records)
	}
	a := rec.jobs["job-a"]
	if a == nil || a.evictIntent {
		t.Fatalf("job-a recovered wrong: %+v", a)
	}
	if !a.implicit || a.jobInputSize != 96<<20 || !a.submitTime.Equal(submit) {
		t.Fatalf("job-a metadata wrong: %+v", a)
	}
	e1 := a.blocks[1]
	if e1 == nil || !e1.copied || !e1.pinned || e1.addr != "dn0" || e1.checksum != 0xDEADBEEF || e1.size != 64<<20 {
		t.Fatalf("block 1 recovered wrong: %+v", e1)
	}
	e2 := a.blocks[2]
	if e2 == nil || e2.copied || e2.pinned || e2.addr != "dn1" {
		t.Fatalf("block 2 recovered wrong: %+v", e2)
	}
	b := rec.jobs["job-b"]
	if b == nil || !b.evictIntent || !b.evictSent["dn2"][9] {
		t.Fatalf("job-b recovered wrong: %+v", b)
	}
}

func TestJournalZeroSubmitTimeRoundTrips(t *testing.T) {
	log := wal.New(wal.NewMem())
	j := NewJournal(log)
	if err := j.AppendPlan(1, "job", false, 0, time.Time{}, []planEntry{{ID: 1, Addr: "dn0", Tier: dfs.TierRAM}}); err != nil {
		t.Fatal(err)
	}
	rec, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.jobs["job"].submitTime.IsZero() {
		t.Fatalf("zero submit time came back %v", rec.jobs["job"].submitTime)
	}
}

// journaledCoordinator builds a single-shard coordinator over the given
// link with a journal on be.
func journaledCoordinator(resolver Resolver, link SlaveLink, be wal.Backend) *Coordinator {
	co := NewCoordinator(resolver, link, 42, 1)
	co.AttachJournal(nil, wal.New(be), 0)
	return co
}

func TestTransportFailedBatchParkedAndRetried(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0"), located(2, 64<<20, "dn1")},
	}}
	link := &failLink{fakeLink: newFakeLink(), down: map[string]bool{"dn1": true}}
	co := journaledCoordinator(resolver, link, wal.NewMem())

	if _, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}}); err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.SendErrors != 1 || st.SendFailures != 1 || st.PendingRetries != 1 {
		t.Fatalf("stats after failed send: %+v", st)
	}
	if len(link.migrates["dn1"]) != 0 {
		t.Fatal("batch delivered despite link down")
	}

	// Heal and pump: the parked batch delivers exactly once.
	link.down["dn1"] = false
	co.FlushRetries()
	st = co.Stats()
	if st.PendingRetries != 0 || st.RetriedBatches != 1 {
		t.Fatalf("stats after retry: %+v", st)
	}
	if got := len(link.migrates["dn1"]); got != 1 {
		t.Fatalf("dn1 got %d batches, want 1", got)
	}
	co.FlushRetries()
	if got := len(link.migrates["dn1"]); got != 1 {
		t.Fatalf("retry re-delivered: dn1 got %d batches", got)
	}
}

func TestEvictCancelsParkedMigrates(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0")},
	}}
	link := &failLink{fakeLink: newFakeLink(), down: map[string]bool{"dn0": true}}
	co := journaledCoordinator(resolver, link, wal.NewMem())

	if _, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Evict(dfs.EvictReq{Job: "job"}); err != nil {
		t.Fatal(err)
	}
	link.down["dn0"] = false
	co.FlushRetries()
	if got := len(link.migrates["dn0"]); got != 0 {
		t.Fatalf("evicted job's migrate batch re-sent (%d batches): a pin would leak", got)
	}
}

func TestRecoverResumesUndeliveredBatches(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0"), located(2, 32<<20, "dn1")},
	}}
	be := wal.NewMem()
	link := newFakeLink()
	co := journaledCoordinator(resolver, link, be)

	// Let the plan record through, then crash before any delivery is
	// journaled: the sends after the crash never happen (a dead master
	// sends nothing).
	be.CrashAfter(1)
	if _, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}, SubmitTime: time.Unix(0, 99)}); err != nil {
		t.Fatal(err)
	}
	if got := len(link.migrates["dn0"]) + len(link.migrates["dn1"]); got != 1 {
		t.Fatalf("%d batches delivered, want 1 (crash stops the fanout after the first unjournalable delivery)", got)
	}

	// Restart: fresh coordinator over the surviving log.
	be.Revive()
	link2 := newFakeLink()
	co2 := journaledCoordinator(resolver, link2, be)
	if err := co2.RecoverFromJournal(); err != nil {
		t.Fatal(err)
	}
	st := co2.Stats()
	if st.ResumedJobs != 1 || st.WALReplayed != 1 || st.ActiveJobs != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if st.Epoch != co.Epoch() {
		t.Fatalf("recovered epoch %d, want %d (no bump: pins must survive)", st.Epoch, co.Epoch())
	}
	// Both blocks re-sent (no delivery was journaled), with the plan's
	// metadata intact.
	var cmds []dfs.MigrateCmd
	for _, addr := range []string{"dn0", "dn1"} {
		for _, b := range link2.migrates[addr] {
			cmds = append(cmds, b.Cmds...)
		}
	}
	if len(cmds) != 2 {
		t.Fatalf("recovery re-sent %d cmds, want 2", len(cmds))
	}
	for _, c := range cmds {
		if c.Job != "job" || c.JobInputSize != 96<<20 || c.SubmitTime != time.Unix(0, 99) {
			t.Fatalf("reconstructed cmd wrong: %+v", c)
		}
	}
	if co2.AssignedReplica("job", 1) == "" || co2.AssignedReplica("job", 2) == "" {
		t.Fatal("recovered job lost its assignments")
	}
}

func TestRecoverSkipsDeliveredBatchesAndFinishesEvicts(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0")},
	}}
	be := wal.NewMem()
	link := newFakeLink()
	co := journaledCoordinator(resolver, link, be)
	if _, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}}); err != nil {
		t.Fatal(err)
	}
	// Evict: the intent is journaled, then the master dies before the
	// evict batch delivery can be journaled.
	be.CrashAfter(1)
	if _, err := co.Evict(dfs.EvictReq{Job: "job"}); err != nil {
		t.Fatal(err)
	}

	be.Revive()
	link2 := newFakeLink()
	co2 := journaledCoordinator(resolver, link2, be)
	if err := co2.RecoverFromJournal(); err != nil {
		t.Fatal(err)
	}
	if got := len(link2.migrates["dn0"]); got != 0 {
		t.Fatalf("recovery re-sent %d migrate batches for an evict-intent job", got)
	}
	if got := len(link2.evicts["dn0"]); got != 1 {
		t.Fatalf("recovery sent %d evict batches, want 1", got)
	}
	st := co2.Stats()
	if st.ResumedJobs != 0 || st.ActiveJobs != 0 {
		t.Fatalf("evict-intent job resumed as live: %+v", st)
	}
}

func TestPlanAppendFailureFailsMigrateWithoutSideEffects(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0")},
	}}
	be := wal.NewMem()
	link := newFakeLink()
	co := journaledCoordinator(resolver, link, be)
	be.CrashAfter(0)
	_, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}})
	if err == nil || !strings.Contains(err.Error(), "journal plan") {
		t.Fatalf("migrate err = %v, want journal plan failure", err)
	}
	if len(link.migrates) != 0 {
		t.Fatal("batches sent despite unjournaled plan")
	}
	if st := co.Stats(); st.BlocksAssigned != 0 || st.ActiveJobs != 0 {
		t.Fatalf("state mutated despite unjournaled plan: %+v", st)
	}
}

func TestJournalTruncatesWhenNothingInFlight(t *testing.T) {
	resolver := &fakeResolver{files: map[string][]dfs.LocatedBlock{
		"/in": {located(1, 64<<20, "dn0")},
	}}
	be := wal.NewMem()
	co := journaledCoordinator(resolver, newFakeLink(), be)
	if _, err := co.Migrate(dfs.MigrateReq{Job: "job", Paths: []string{"/in"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Evict(dfs.EvictReq{Job: "job"}); err != nil {
		t.Fatal(err)
	}
	data, err := be.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("journal holds %d bytes after the last job settled, want 0", len(data))
	}
	// Recovery from the truncated log is a clean no-op.
	if err := co.RecoverFromJournal(); err != nil {
		t.Fatal(err)
	}
	if st := co.Stats(); st.ActiveJobs != 0 {
		t.Fatalf("recovered phantom jobs: %+v", st)
	}
}
