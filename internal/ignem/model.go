package ignem

import (
	"time"
)

// SpeedupModel is the analytic benefit estimator the paper sketches in
// §IV-E: "A migration scheme that can infer the Ignem speed-up curve for
// different jobs can potentially use this information to prioritize jobs
// which will benefit more."
//
// It predicts, for a job of a given input size, what fraction of the
// input Ignem migrates within the lead-time and the resulting relative
// job duration versus the unmigrated baseline. The curve it produces has
// Fig 8's shape: flat near the all-in-RAM bound while the whole input
// fits in the lead-time window, then a declining relative benefit beyond
// the inflection point, which "depends on the disk bandwidth and how
// much lead-time there is".
type SpeedupModel struct {
	// MigrationMBps is the aggregate cluster migration bandwidth during
	// lead-time (per-disk sequential rate times the number of slaves).
	MigrationMBps float64
	// ContendedMBps is the aggregate disk bandwidth the job's own
	// concurrent task reads achieve (seek-degraded).
	ContendedMBps float64
	// RAMReadMBps is the aggregate rate of reads served from memory.
	RAMReadMBps float64
	// FixedOverhead is the input-independent part of the job: container
	// launches, scheduling waits, shuffle and reduce work.
	FixedOverhead time.Duration
}

// MigratedFraction predicts the fraction of inputBytes pinned before the
// tasks read it, given the available lead-time.
func (m SpeedupModel) MigratedFraction(inputBytes int64, lead time.Duration) float64 {
	if inputBytes <= 0 {
		return 1
	}
	migratable := m.MigrationMBps * 1e6 * lead.Seconds()
	frac := migratable / float64(inputBytes)
	if frac > 1 {
		return 1
	}
	if frac < 0 {
		return 0
	}
	return frac
}

// RelativeDuration predicts job duration relative to the unmigrated
// baseline (1.0 = no benefit, lower is better).
func (m SpeedupModel) RelativeDuration(inputBytes int64, lead time.Duration) float64 {
	base := m.baseline(inputBytes)
	if base <= 0 {
		return 1
	}
	frac := m.MigratedFraction(inputBytes, lead)
	in := float64(inputBytes)
	readTime := (in*(1-frac))/(m.ContendedMBps*1e6) + (in*frac)/(m.RAMReadMBps*1e6)
	return (m.FixedOverhead.Seconds() + readTime) / base
}

// Benefit predicts the absolute job-duration saving, the quantity a
// benefit-aware migration scheduler would rank jobs by.
func (m SpeedupModel) Benefit(inputBytes int64, lead time.Duration) time.Duration {
	base := m.baseline(inputBytes)
	rel := m.RelativeDuration(inputBytes, lead)
	return time.Duration(base * (1 - rel) * float64(time.Second))
}

// baseline is the predicted unmigrated job duration in seconds.
func (m SpeedupModel) baseline(inputBytes int64) float64 {
	return m.FixedOverhead.Seconds() + float64(inputBytes)/(m.ContendedMBps*1e6)
}

// InflectionBytes returns the input size beyond which the relative
// benefit starts to decline: the largest input fully migratable within
// the lead-time (the paper's Fig 8 inflection, 2 GB on their testbed).
func (m SpeedupModel) InflectionBytes(lead time.Duration) int64 {
	return int64(m.MigrationMBps * 1e6 * lead.Seconds())
}

// DefaultSpeedupModel returns a model calibrated to this repository's
// 8-node HDD cluster defaults.
func DefaultSpeedupModel(nodes int) SpeedupModel {
	return SpeedupModel{
		MigrationMBps: 117 * float64(nodes), // one-at-a-time sequential reads
		ContendedMBps: 81 * float64(nodes),  // ~10 concurrent readers per disk
		RAMReadMBps:   1500 * float64(nodes),
		FixedOverhead: 11 * time.Second, // submit overhead + scheduling + reduce
	}
}
