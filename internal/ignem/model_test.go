package ignem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSpeedupModelShape(t *testing.T) {
	m := DefaultSpeedupModel(8)
	lead := 10 * time.Second

	// Fully migratable inputs track the RAM bound: strong benefit.
	small := m.RelativeDuration(1<<30, lead)
	if small >= 1 || m.MigratedFraction(1<<30, lead) != 1 {
		t.Errorf("1GB: rel=%.2f frac=%.2f", small, m.MigratedFraction(1<<30, lead))
	}

	// The curve declines to a minimum around the inflection, then the
	// relative benefit erodes (Fig 8's shape).
	inflection := m.InflectionBytes(lead)
	atInflection := m.RelativeDuration(inflection, lead)
	beyond := m.RelativeDuration(4*inflection, lead)
	if !(atInflection < small) {
		t.Errorf("benefit should improve towards the inflection: %.3f vs %.3f", atInflection, small)
	}
	if !(beyond > atInflection) {
		t.Errorf("relative benefit should erode beyond the inflection: %.3f vs %.3f", beyond, atInflection)
	}

	// Inflection scales linearly with lead-time.
	if m.InflectionBytes(2*lead) != 2*inflection {
		t.Error("inflection not linear in lead-time")
	}
}

func TestSpeedupModelMatchesMeasuredFig8(t *testing.T) {
	// The measured Fig 8 run (EXPERIMENTS.md): Ignem relative durations
	// ~0.88 at 1 GB and ~0.74 at 24 GB with ~11s of natural lead-time.
	m := DefaultSpeedupModel(8)
	lead := 11 * time.Second
	if got := m.RelativeDuration(1<<30, lead); got < 0.75 || got > 0.98 {
		t.Errorf("1GB predicted rel = %.2f, measured ~0.88", got)
	}
	if got := m.RelativeDuration(24<<30, lead); got < 0.55 || got > 0.92 {
		t.Errorf("24GB predicted rel = %.2f, measured ~0.75", got)
	}
}

func TestBenefitOrdering(t *testing.T) {
	// Benefit-aware prioritization (§IV-E): with a fixed lead-time, a
	// job near the inflection benefits more in absolute terms than a
	// tiny job.
	m := DefaultSpeedupModel(8)
	lead := 10 * time.Second
	tiny := m.Benefit(64<<20, lead)
	mid := m.Benefit(m.InflectionBytes(lead), lead)
	if mid <= tiny {
		t.Errorf("benefit(inflection)=%v not above benefit(64MB)=%v", mid, tiny)
	}
}

func TestSpeedupModelProperties(t *testing.T) {
	m := DefaultSpeedupModel(8)
	f := func(sizeMB uint16, leadSec uint8) bool {
		size := int64(sizeMB)<<20 + 1
		lead := time.Duration(leadSec) * time.Second
		frac := m.MigratedFraction(size, lead)
		rel := m.RelativeDuration(size, lead)
		// Fraction in [0,1]; relative duration in (0,1]: migration never
		// hurts in the model (it ignores the +10s insertion case).
		return frac >= 0 && frac <= 1 && rel > 0 && rel <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupModelEdgeCases(t *testing.T) {
	m := DefaultSpeedupModel(8)
	if m.MigratedFraction(0, time.Second) != 1 {
		t.Error("zero input should be fully migratable")
	}
	if m.MigratedFraction(1<<30, -time.Second) != 0 {
		t.Error("negative lead should migrate nothing")
	}
	if b := m.Benefit(0, time.Second); b < 0 {
		t.Errorf("negative benefit %v", b)
	}
}
