package ignem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/wal"
)

// Journal is the master's migration write-ahead log: a thin typed layer
// over wal.Log that records each job's progress through the migration
// state machine —
//
//	planned → copied → swapped/checked
//
// plus eviction intents and deliveries — so a restarted master resumes
// in-flight work from the log instead of re-deriving it from epochs
// (which would purge every slave's pins). Record kinds:
//
//	recPlan        the planner chose replicas for a job's blocks (durable
//	               BEFORE anything is sent — an append failure here fails
//	               the Migrate request, so nothing undurable ever reaches
//	               a slave)
//	recCopied      a migrate batch was delivered to a slave
//	recPinned      a slave's heartbeat confirmed the blocks are pinned
//	               and checksum-verified (the swap happened and the copy
//	               checked out — the slave never pins a replica that
//	               fails verification)
//	recEvictIntent an Evict request was accepted for the job
//	recEvictBatch  an evict batch was delivered to a slave
//
// Records are framed by wal.Log; payloads here are a one-byte kind tag
// followed by uvarint-encoded fields (strings as length + bytes).
// Everything is idempotent on replay: duplicate records only re-mark
// state already marked.
//
// Lock order: Master.mu → Journal.mu. The journal never calls back into
// a master.
type Journal struct {
	mu  sync.Mutex
	log *wal.Log
	buf []byte
	// pinnedSeen dedupes recPinned appends: heartbeats re-confirm pins
	// (re-registration, recovery re-sends), and each (job, block) needs
	// at most one swap-confirmed record. Rebuilt on replay, cleared on
	// truncate.
	pinnedSeen map[pinKey]struct{}
	appended   int64
}

type pinKey struct {
	job  dfs.JobID
	id   dfs.BlockID
	tier dfs.Tier
}

// Record kind tags. Values are part of the on-disk format.
const (
	recPlan        = 1
	recCopied      = 2
	recPinned      = 3
	recEvictIntent = 4
	recEvictBatch  = 5
	// recDemote releases a fast-tier residency: the planner demoted the
	// block to free budget. recUnpinned mirrors a slave's heartbeat
	// unpin delta, releasing the block's budget charge at that tier.
	// Both are ledger-only records — they carry no job state.
	recDemote   = 6
	recUnpinned = 7
)

// planEntry is one block's slot in a recPlan record: everything needed
// to reconstruct its MigrateCmd on recovery. A re-plan of an existing
// (job, block) at a different Tier is the ladder's second rung: replay
// adopts the new tier and resets the entry's copied/pinned progress.
type planEntry struct {
	ID       dfs.BlockID
	Size     int64
	Checksum uint32
	Addr     string
	Tier     dfs.Tier
}

// NewJournal wraps a record log in the master's typed journal.
func NewJournal(log *wal.Log) *Journal {
	return &Journal{log: log, pinnedSeen: make(map[pinKey]struct{})}
}

// Appended reports how many records this journal has written since it
// was opened (replayed records don't count).
func (j *Journal) Appended() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// AppendPlan journals a planning decision. It must succeed BEFORE the
// batches are sent: a failed append means the plan was never durable,
// so the caller must drop it and fail the request (the crash model —
// if the log is gone, the master is dead).
func (j *Journal) AppendPlan(epoch uint64, job dfs.JobID, implicit bool, jobInputSize int64, submitTime time.Time, entries []planEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, recPlan)
	b = binary.AppendUvarint(b, epoch)
	b = appendString(b, string(job))
	if implicit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(jobInputSize))
	// The zero time round-trips via a flag: UnixNano is undefined for it.
	if submitTime.IsZero() {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(submitTime.UnixNano()))
	}
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.AppendUvarint(b, uint64(e.ID))
		b = binary.AppendUvarint(b, uint64(e.Size))
		b = binary.AppendUvarint(b, uint64(e.Checksum))
		b = appendString(b, e.Addr)
		b = binary.AppendUvarint(b, uint64(e.Tier))
	}
	j.buf = b
	return j.append(b)
}

// AppendCopied journals that a migrate batch targeting tier reached
// addr.
func (j *Journal) AppendCopied(job dfs.JobID, addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	return j.appendDelivery(recCopied, job, addr, tier, ids)
}

// AppendEvictBatch journals that an evict batch reached addr.
func (j *Journal) AppendEvictBatch(job dfs.JobID, addr string, ids []dfs.BlockID) error {
	return j.appendDelivery(recEvictBatch, job, addr, dfs.TierHDD, ids)
}

// AppendPinned journals heartbeat-confirmed pins at tier (the
// swapped/checked stage), deduplicating (job, block, tier) triples
// already journaled. Errors are the caller's to ignore: pins are
// re-observable from heartbeats, so a lost recPinned only costs a
// redundant re-send after recovery.
func (j *Journal) AppendPinned(job dfs.JobID, addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	j.mu.Lock()
	fresh := ids[:0:0]
	for _, id := range ids {
		if _, dup := j.pinnedSeen[pinKey{job, id, tier}]; !dup {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		j.mu.Unlock()
		return nil
	}
	for _, id := range fresh {
		j.pinnedSeen[pinKey{job, id, tier}] = struct{}{}
	}
	j.mu.Unlock()
	return j.appendDelivery(recPinned, job, addr, tier, fresh)
}

// AppendDemote journals a budget-pressure demotion: the listed blocks'
// residency at tier on addr is released. Durable before the demote
// command is sent, so a recovered ledger never re-charges freed budget.
func (j *Journal) AppendDemote(addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	return j.appendTierEvent(recDemote, addr, tier, ids)
}

// AppendUnpinned journals a slave's heartbeat unpin delta at tier, the
// budget-release half of the ledger's accounting. Only tiered masters
// write these; errors are ignorable for the same reason as AppendPinned.
func (j *Journal) AppendUnpinned(addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	return j.appendTierEvent(recUnpinned, addr, tier, ids)
}

func (j *Journal) appendTierEvent(kind byte, addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, kind)
	b = appendString(b, addr)
	b = binary.AppendUvarint(b, uint64(tier))
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	j.buf = b
	return j.append(b)
}

// AppendEvictIntent journals that an Evict was accepted for job. Like
// AppendPlan it must succeed before any evict batch is sent.
func (j *Journal) AppendEvictIntent(job dfs.JobID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, recEvictIntent)
	b = appendString(b, string(job))
	j.buf = b
	return j.append(b)
}

func (j *Journal) appendDelivery(kind byte, job dfs.JobID, addr string, tier dfs.Tier, ids []dfs.BlockID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, kind)
	b = appendString(b, string(job))
	b = appendString(b, addr)
	b = binary.AppendUvarint(b, uint64(tier))
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	j.buf = b
	return j.append(b)
}

// append must be called with j.mu held.
func (j *Journal) append(payload []byte) error {
	if err := j.log.Append(payload); err != nil {
		return err
	}
	j.appended++
	return nil
}

// MarkPinned records a pin confirmation learned outside the log
// (recovery reconciliation against the namenode's residency view), so
// a later heartbeat re-confirm doesn't append a duplicate recPinned.
func (j *Journal) MarkPinned(job dfs.JobID, id dfs.BlockID, tier dfs.Tier) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pinnedSeen[pinKey{job, id, tier}] = struct{}{}
}

// Truncate discards the journal once nothing is in flight (no live
// jobs, no pending retries). Failures are harmless — replaying a
// fully-settled log reconstructs only settled state.
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log.Truncate(); err != nil {
		return err
	}
	j.pinnedSeen = make(map[pinKey]struct{})
	return nil
}

// ---- replay ----

// recoveredEntry is one block's reconstructed migration state. tier is
// the entry's CURRENT target: a second-rung re-plan overwrites it and
// resets copied/pinned, so recovery resumes the rung in flight, not the
// one already climbed.
type recoveredEntry struct {
	size     int64
	checksum uint32
	addr     string
	tier     dfs.Tier
	copied   bool // migrate batch delivery journaled (current tier)
	pinned   bool // slave heartbeat confirmed the pin (current tier)
}

// recResidency is the replayed tier-ledger state for one (block, addr)
// residency: which tier budgets it still charges and which jobs still
// reference it. Mirrors ledgerEntry, rebuilt purely from the record
// stream so a recovered master's budgets match what it reserved.
type recResidency struct {
	size    int64
	charged [3]bool
	refs    map[dfs.JobID]struct{}
	seq     uint64
}

// recoveredJob is one job's reconstructed state machine.
type recoveredJob struct {
	implicit     bool
	jobInputSize int64
	submitTime   time.Time
	blocks       map[dfs.BlockID]*recoveredEntry
	evictIntent  bool
	// evictSent records evict-batch deliveries per slave address.
	evictSent map[string]map[dfs.BlockID]bool
}

// recovered is the journal's replayed view of the world.
type recovered struct {
	epoch     uint64 // highest plan epoch seen; 0 when the log is empty
	records   int
	jobs      map[dfs.JobID]*recoveredJob
	residency map[residentKey]*recResidency
	seq       uint64
}

func (rec *recovered) resident(id dfs.BlockID, addr string, size int64) *recResidency {
	k := residentKey{id, addr}
	r := rec.residency[k]
	if r == nil {
		rec.seq++
		r = &recResidency{size: size, refs: make(map[dfs.JobID]struct{}), seq: rec.seq}
		rec.residency[k] = r
	}
	return r
}

// Replay parses the journal back into per-job state machines and
// rebuilds the pinned-dedup set. A torn or corrupt tail ends the replay
// silently (wal.Log's contract); a structurally bad record inside the
// intact prefix is an error, since it means the writer and reader
// disagree about the format.
func (j *Journal) Replay() (*recovered, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := &recovered{
		jobs:      make(map[dfs.JobID]*recoveredJob),
		residency: make(map[residentKey]*recResidency),
	}
	pinned := make(map[pinKey]struct{})
	n, err := j.log.Replay(func(payload []byte) error {
		return decodeRecord(payload, rec, pinned)
	})
	if err != nil {
		return nil, err
	}
	rec.records = n
	j.pinnedSeen = pinned
	return rec, nil
}

func (rec *recovered) job(id dfs.JobID) *recoveredJob {
	rj := rec.jobs[id]
	if rj == nil {
		rj = &recoveredJob{
			blocks:    make(map[dfs.BlockID]*recoveredEntry),
			evictSent: make(map[string]map[dfs.BlockID]bool),
		}
		rec.jobs[id] = rj
	}
	return rj
}

func decodeRecord(payload []byte, rec *recovered, pinned map[pinKey]struct{}) error {
	c := cursor{b: payload}
	kind := c.byte()
	switch kind {
	case recPlan:
		epoch := c.uvarint()
		job := dfs.JobID(c.str())
		implicit := c.byte() == 1
		jobInputSize := int64(c.uvarint())
		var submitTime time.Time
		if c.byte() == 1 {
			submitTime = time.Unix(0, int64(c.uvarint()))
		}
		n := int(c.uvarint())
		rj := rec.job(job)
		rj.implicit = implicit
		rj.jobInputSize = jobInputSize
		rj.submitTime = submitTime
		for i := 0; i < n && c.err == nil; i++ {
			id := dfs.BlockID(c.uvarint())
			size := int64(c.uvarint())
			sum := uint32(c.uvarint())
			addr := c.str()
			tier := dfs.Tier(c.uvarint())
			if c.err != nil {
				break
			}
			e := rj.blocks[id]
			if e == nil {
				rj.blocks[id] = &recoveredEntry{size: size, checksum: sum, addr: addr, tier: tier}
			} else if e.tier != tier {
				// Second rung: the climb re-planned the block at a new
				// tier, restarting its copied/pinned progress there.
				e.tier = tier
				e.copied = false
				e.pinned = false
			}
			if tier != dfs.TierHDD {
				r := rec.resident(id, addr, size)
				r.refs[job] = struct{}{}
				r.charged[tier] = true
			}
		}
		if epoch > rec.epoch {
			rec.epoch = epoch
		}
	case recCopied, recPinned, recEvictBatch:
		job := dfs.JobID(c.str())
		addr := c.str()
		tier := dfs.Tier(c.uvarint())
		n := int(c.uvarint())
		rj := rec.job(job)
		for i := 0; i < n && c.err == nil; i++ {
			id := dfs.BlockID(c.uvarint())
			switch kind {
			case recCopied, recPinned:
				e := rj.blocks[id]
				if e == nil {
					// Delivery for a block whose plan record is gone
					// (pre-truncate job): nothing to resume.
					continue
				}
				if kind == recPinned {
					pinned[pinKey{job, id, tier}] = struct{}{}
				}
				if e.tier != tier {
					// A delivery for a rung the entry already climbed
					// past (or a late pin confirm after a re-plan): the
					// current rung's progress is unaffected.
					continue
				}
				e.copied = true
				if kind == recPinned {
					e.pinned = true
				}
			case recEvictBatch:
				sent := rj.evictSent[addr]
				if sent == nil {
					sent = make(map[dfs.BlockID]bool)
					rj.evictSent[addr] = sent
				}
				sent[id] = true
			}
		}
	case recEvictIntent:
		job := dfs.JobID(c.str())
		rj := rec.job(job)
		rj.evictIntent = true
		// Mirror the runtime ledger: eviction drops the job's residency
		// references (charges release later, on the slaves' unpin deltas).
		for id, e := range rj.blocks {
			if r := rec.residency[residentKey{id, e.addr}]; r != nil {
				delete(r.refs, job)
			}
		}
	case recDemote, recUnpinned:
		addr := c.str()
		tier := dfs.Tier(c.uvarint())
		n := int(c.uvarint())
		for i := 0; i < n && c.err == nil; i++ {
			id := dfs.BlockID(c.uvarint())
			if r := rec.residency[residentKey{id, addr}]; r != nil && tier != dfs.TierHDD {
				r.charged[tier] = false
			}
		}
	default:
		return fmt.Errorf("ignem: journal record kind %d unknown", kind)
	}
	if c.err != nil {
		return fmt.Errorf("ignem: journal record kind %d: %w", kind, c.err)
	}
	return nil
}

// ---- encoding primitives ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// cursor decodes a record payload with sticky error handling, so record
// parsers read fields linearly and check err once.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.err = fmt.Errorf("truncated record")
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.err = fmt.Errorf("truncated record")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if uint64(len(c.b)) < n {
		c.err = fmt.Errorf("truncated record")
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}
