package ignem

import (
	"sort"
	"sync"

	"repro/internal/dfs"
)

// This file is the migration plane's tier-ladder brain: the Policy
// interface (which tier a block should be migrated to, when to climb a
// rung, and which residents to demote under budget pressure), its three
// implementations, the shared popularity tracker fed by the
// read-notification stream, and the tierLedger — the master-side
// per-tier byte-budget accountant.
//
// None of this exists for a default-configured master: a coordinator
// without ConfigureTiers runs with a nil policy and a nil ledger, and
// every planner code path that consults them short-circuits to the
// paper's pin-in-RAM behavior, bit for bit.

// PlanContext carries what a policy may consider when placing a block.
type PlanContext struct {
	Job   dfs.JobID
	Block dfs.Block
	// JobInputSize is the job's whole input size (the smallest-job-first
	// key), so policies can favor the jobs the paper says benefit most.
	JobInputSize int64
	// Popularity is the block's cumulative read-notification count.
	Popularity int64
	// SSDEnabled reports whether the cluster has an SSD rung at all (a
	// configured SSD budget). Policies must not target TierSSD when
	// false.
	SSDEnabled bool
}

// Resident describes one fast-tier resident for victim selection.
type Resident struct {
	ID   dfs.BlockID
	Addr string
	Size int64
	// Refs is how many live jobs still reference the planned residency.
	Refs int
	// Seq orders residents by plan time (smaller = older).
	Seq uint64
	// Pop is the block's read-notification count.
	Pop int64
}

// Policy decides tier placement for the migration ladder. Implementations
// must be safe for concurrent use; they are consulted under the planner
// lock and must not call back into the master.
type Policy interface {
	// Name labels the policy in stats and benchmark output.
	Name() string
	// PlanTier picks the tier a freshly-planned block migrates to.
	PlanTier(ctx PlanContext) dfs.Tier
	// ClimbTier is consulted when a pin at tier cur is confirmed by a
	// slave heartbeat: returning a higher tier issues the next rung of
	// the ladder; returning cur (or lower) stays put.
	ClimbTier(ctx PlanContext, cur dfs.Tier) dfs.Tier
	// Victims picks residents to demote from tier to free at least need
	// bytes. Returning fewer bytes than need (or nil) makes the planner
	// reject the reservation instead.
	Victims(tier dfs.Tier, need int64, residents []Resident) []Resident
}

// PolicyByName maps a config string to a policy. Empty and "paper"
// select the default smallest-job-first-to-RAM policy.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "", "paper":
		return PaperPolicy{}, true
	case "ladder":
		return LadderPolicy{}, true
	case "popularity":
		return PopularityPolicy{}, true
	}
	return nil, false
}

// PaperPolicy is the paper's behavior: every planned block heads
// straight for RAM, no climbing, no demotion. With no tier budgets
// configured this is bit-identical to the pre-ladder master.
type PaperPolicy struct{}

// Name implements Policy.
func (PaperPolicy) Name() string { return "paper" }

// PlanTier implements Policy: always RAM.
func (PaperPolicy) PlanTier(PlanContext) dfs.Tier { return dfs.TierRAM }

// ClimbTier implements Policy: never climbs.
func (PaperPolicy) ClimbTier(_ PlanContext, cur dfs.Tier) dfs.Tier { return cur }

// Victims implements Policy: never demotes.
func (PaperPolicy) Victims(dfs.Tier, int64, []Resident) []Resident { return nil }

// LadderPolicy is the cost-benefit ladder: promote HDD→SSD broadly
// (flash is large and an order of magnitude faster than a contended
// disk), then SSD→RAM selectively — only the blocks whose jobs are
// small enough to finish inside the RAM budget's turnover, or that have
// proven re-read popularity. Cold SSD residents demote back to HDD when
// the flash budget is needed for fresher work.
type LadderPolicy struct {
	// ClimbMaxJobSize bounds the job input size that still earns the
	// SSD→RAM climb (the paper's smallest-job-first intuition: small
	// jobs gain the most per pinned byte). Default 1 GiB.
	ClimbMaxJobSize int64
}

// Name implements Policy.
func (LadderPolicy) Name() string { return "ladder" }

// PlanTier implements Policy: SSD first when the rung exists.
func (p LadderPolicy) PlanTier(ctx PlanContext) dfs.Tier {
	if ctx.SSDEnabled {
		return dfs.TierSSD
	}
	return dfs.TierRAM
}

// ClimbTier implements Policy: SSD→RAM for small or popular inputs.
func (p LadderPolicy) ClimbTier(ctx PlanContext, cur dfs.Tier) dfs.Tier {
	if cur != dfs.TierSSD {
		return cur
	}
	limit := p.ClimbMaxJobSize
	if limit <= 0 {
		limit = 1 << 30
	}
	if ctx.JobInputSize <= limit || ctx.Popularity > 0 {
		return dfs.TierRAM
	}
	return cur
}

// Victims implements Policy: demote the coldest residents first —
// lowest popularity, then fewest referencing jobs, then oldest plan.
func (LadderPolicy) Victims(_ dfs.Tier, need int64, residents []Resident) []Resident {
	return coldestVictims(need, residents)
}

// PopularityPolicy scores blocks by the read-notification stream:
// blocks observed hot (re-read across cache hits) go straight to RAM,
// warm blocks take the SSD rung, unknown blocks take SSD when it exists
// (cheap to be wrong there) and RAM otherwise.
type PopularityPolicy struct {
	// HotThreshold is the popularity at which a block plans straight to
	// RAM. Default 2.
	HotThreshold int64
}

// Name implements Policy.
func (PopularityPolicy) Name() string { return "popularity" }

func (p PopularityPolicy) hot() int64 {
	if p.HotThreshold > 0 {
		return p.HotThreshold
	}
	return 2
}

// PlanTier implements Policy.
func (p PopularityPolicy) PlanTier(ctx PlanContext) dfs.Tier {
	if ctx.Popularity >= p.hot() || !ctx.SSDEnabled {
		return dfs.TierRAM
	}
	return dfs.TierSSD
}

// ClimbTier implements Policy: any observed popularity earns the climb.
func (p PopularityPolicy) ClimbTier(ctx PlanContext, cur dfs.Tier) dfs.Tier {
	if cur == dfs.TierSSD && ctx.Popularity > 0 {
		return dfs.TierRAM
	}
	return cur
}

// Victims implements Policy: demote the least popular residents.
func (PopularityPolicy) Victims(_ dfs.Tier, need int64, residents []Resident) []Resident {
	return coldestVictims(need, residents)
}

// coldestVictims sorts residents coldest-first (popularity, then live
// references, then age) and takes the prefix covering need bytes. It
// returns nil when even the whole set cannot cover need.
func coldestVictims(need int64, residents []Resident) []Resident {
	if need <= 0 || len(residents) == 0 {
		return nil
	}
	sorted := append([]Resident(nil), residents...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Pop != b.Pop {
			return a.Pop < b.Pop
		}
		if a.Refs != b.Refs {
			return a.Refs < b.Refs
		}
		return a.Seq < b.Seq
	})
	var out []Resident
	var freed int64
	for _, r := range sorted {
		if freed >= need {
			break
		}
		out = append(out, r)
		freed += r.Size
	}
	if freed < need {
		return nil
	}
	return out
}

// ---- popularity tracker ----

// popTracker accumulates per-block read-notification counts, the signal
// PopularityPolicy (and the ladder's climb) score against. Shared by
// every planner shard.
type popTracker struct {
	mu sync.Mutex
	m  map[dfs.BlockID]int64
}

func newPopTracker() *popTracker { return &popTracker{m: make(map[dfs.BlockID]int64)} }

func (p *popTracker) bump(ids []dfs.BlockID) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, id := range ids {
		p.m[id]++
	}
	p.mu.Unlock()
}

func (p *popTracker) get(id dfs.BlockID) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m[id]
}

// ---- tier budget ledger ----

// TierBudgets caps cluster-wide fast-tier residency in bytes. Zero
// means unlimited for RAM and ABSENT for SSD: a cluster without an SSD
// budget has no SSD rung, so policies fall back to RAM-only planning.
type TierBudgets struct {
	// RAM bounds bytes planned into pinned memory across the cluster.
	// 0 = unlimited (the historical master never budgeted RAM; the
	// slaves' per-node Capacity was the only bound).
	RAM int64
	// SSD bounds bytes planned onto the flash rung. 0 = no SSD tier.
	SSD int64
}

// TierCounters is a snapshot of the ledger's accounting, surfaced in
// MasterStats and as namenode metrics.
type TierCounters struct {
	// SSDUsedBytes / RAMUsedBytes are currently-reserved residency.
	SSDUsedBytes int64
	RAMUsedBytes int64
	// PromotionsToSSD / PromotionsToRAM count upward placements by
	// destination tier (HDD→SSD, and HDD→RAM or SSD→RAM respectively).
	PromotionsToSSD int64
	PromotionsToRAM int64
	// ClimbsSSDToRAM counts second-rung promotions specifically.
	ClimbsSSDToRAM int64
	// Demotions counts downward migrations (fast-tier residents
	// released to free budget).
	Demotions int64
	// BudgetRejectsSSD / BudgetRejectsRAM count reservations refused
	// for lack of budget (after any victim demotion the policy offered).
	BudgetRejectsSSD int64
	BudgetRejectsRAM int64
}

// residentKey identifies one planned residency: pins are per-slave, so
// the same block pinned on two datanodes is two ledger entries.
type residentKey struct {
	id   dfs.BlockID
	addr string
}

// ledgerEntry is one block-on-a-slave's outstanding reservations. A
// climbing block transiently holds both its SSD and RAM charge: RAM is
// reserved when the second rung is planned, and the SSD charge drops
// when the slave's heartbeat confirms the flash copy was released.
type ledgerEntry struct {
	size    int64
	charged [3]bool // indexed by dfs.Tier; TierHDD never charges
	refs    map[dfs.JobID]struct{}
	seq     uint64
}

func (e *ledgerEntry) tier() dfs.Tier {
	if e.charged[dfs.TierRAM] {
		return dfs.TierRAM
	}
	if e.charged[dfs.TierSSD] {
		return dfs.TierSSD
	}
	return dfs.TierHDD
}

// tierLedger enforces the cluster-wide tier budgets. It is shared by
// every planner shard (like the epoch counter) and holds its own lock;
// lock order is Master.mu → tierLedger.mu, and the ledger never calls
// out.
type tierLedger struct {
	mu       sync.Mutex
	limit    [3]int64 // 0 = unlimited (RAM) / absent (SSD)
	used     [3]int64
	counters TierCounters
	entries  map[residentKey]*ledgerEntry
	seq      uint64
}

func newTierLedger(b TierBudgets) *tierLedger {
	l := &tierLedger{entries: make(map[residentKey]*ledgerEntry)}
	l.limit[dfs.TierSSD] = b.SSD
	l.limit[dfs.TierRAM] = b.RAM
	return l
}

// ssdEnabled reports whether the cluster has an SSD rung.
func (l *tierLedger) ssdEnabled() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit[dfs.TierSSD] > 0
}

// reserve charges tier for a (block, addr) residency on behalf of job.
// An existing charge at the tier only adds the job reference. ok
// reports whether the reservation holds; fresh reports whether a new
// charge was taken (so a failed caller can roll it back precisely).
func (l *tierLedger) reserve(id dfs.BlockID, addr string, size int64, job dfs.JobID, tier dfs.Tier, climb bool) (ok, fresh bool) {
	if l == nil || tier == dfs.TierHDD {
		return true, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := residentKey{id, addr}
	e := l.entries[k]
	if e == nil {
		l.seq++
		e = &ledgerEntry{size: size, refs: make(map[dfs.JobID]struct{}), seq: l.seq}
		l.entries[k] = e
	}
	e.refs[job] = struct{}{}
	if e.charged[tier] {
		return true, false
	}
	if l.limit[tier] > 0 && l.used[tier]+size > l.limit[tier] {
		l.gcLocked(k, e)
		return false, false
	}
	e.charged[tier] = true
	l.used[tier] += size
	switch tier {
	case dfs.TierSSD:
		l.counters.PromotionsToSSD++
	case dfs.TierRAM:
		l.counters.PromotionsToRAM++
		if climb {
			l.counters.ClimbsSSDToRAM++
		}
	}
	return true, true
}

// shortfall reports how many bytes over budget a size-byte reservation
// at tier would land (0 = it fits).
func (l *tierLedger) shortfall(tier dfs.Tier, size int64) int64 {
	if l == nil || tier == dfs.TierHDD {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit[tier] <= 0 {
		return 0
	}
	over := l.used[tier] + size - l.limit[tier]
	if over < 0 {
		return 0
	}
	return over
}

// noteReject counts a final budget rejection (after victim demotion, if
// any, still couldn't make room).
func (l *tierLedger) noteReject(tier dfs.Tier) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if tier == dfs.TierSSD {
		l.counters.BudgetRejectsSSD++
	} else if tier == dfs.TierRAM {
		l.counters.BudgetRejectsRAM++
	}
}

// release drops the charge a (block, addr) residency holds at tier —
// the slave reported the copy gone (unpin delta) or a demotion was
// issued. Idempotent: releasing an uncharged tier is a no-op.
func (l *tierLedger) release(id dfs.BlockID, addr string, tier dfs.Tier, demotion bool) {
	if l == nil || tier == dfs.TierHDD {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := residentKey{id, addr}
	e := l.entries[k]
	if e == nil || !e.charged[tier] {
		return
	}
	e.charged[tier] = false
	l.used[tier] -= e.size
	if demotion {
		l.counters.Demotions++
	}
	l.gcLocked(k, e)
}

// dropRef removes job's reference from a residency; the entry keeps its
// charges (the bytes stay resident on the slave until its unpin delta
// arrives) but becomes a colder demotion victim.
func (l *tierLedger) dropRef(id dfs.BlockID, addr string, job dfs.JobID) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := residentKey{id, addr}
	if e := l.entries[k]; e != nil {
		delete(e.refs, job)
		l.gcLocked(k, e)
	}
}

// gcLocked removes an entry with no outstanding charges and no refs.
func (l *tierLedger) gcLocked(k residentKey, e *ledgerEntry) {
	if !e.charged[dfs.TierSSD] && !e.charged[dfs.TierRAM] && len(e.refs) == 0 {
		delete(l.entries, k)
	}
}

// residents snapshots the entries charged at tier, for victim selection.
func (l *tierLedger) residents(tier dfs.Tier, pop *popTracker) []Resident {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Resident, 0, len(l.entries))
	for k, e := range l.entries {
		if !e.charged[tier] {
			continue
		}
		out = append(out, Resident{ID: k.id, Addr: k.addr, Size: e.size, Refs: len(e.refs), Seq: e.seq})
	}
	l.mu.Unlock()
	if pop != nil {
		for i := range out {
			out[i].Pop = pop.get(out[i].ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// reset clears all accounting (an epoch-bump restart purged every
// slave, so nothing is resident anymore). Cumulative counters survive.
func (l *tierLedger) reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.used = [3]int64{}
	l.entries = make(map[residentKey]*ledgerEntry)
}

// load replaces the ledger's residency state with the journal's
// replayed view (WAL recovery). Limits and cumulative counters are kept;
// occupancy is recomputed from the replayed charges.
func (l *tierLedger) load(res map[residentKey]*recResidency) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.used = [3]int64{}
	l.entries = make(map[residentKey]*ledgerEntry)
	for k, r := range res {
		if !r.charged[dfs.TierSSD] && !r.charged[dfs.TierRAM] && len(r.refs) == 0 {
			continue
		}
		e := &ledgerEntry{size: r.size, charged: r.charged, refs: make(map[dfs.JobID]struct{}, len(r.refs)), seq: r.seq}
		for job := range r.refs {
			e.refs[job] = struct{}{}
		}
		l.entries[k] = e
		for _, t := range []dfs.Tier{dfs.TierSSD, dfs.TierRAM} {
			if e.charged[t] {
				l.used[t] += e.size
			}
		}
		if r.seq > l.seq {
			l.seq = r.seq
		}
	}
}

// snapshot returns the counters with current occupancy filled in.
func (l *tierLedger) snapshot() TierCounters {
	if l == nil {
		return TierCounters{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.counters
	c.SSDUsedBytes = l.used[dfs.TierSSD]
	c.RAMUsedBytes = l.used[dfs.TierRAM]
	return c
}
