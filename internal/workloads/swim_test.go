package workloads

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateSwimMarginals(t *testing.T) {
	jobs := GenerateSwim(SwimConfig{Seed: 1})
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d, want 200", len(jobs))
	}
	var total int64
	var small, medium, large int
	var largest int64
	for _, j := range jobs {
		total += j.InputBytes
		switch SizeBin(j.InputBytes) {
		case "small":
			small++
		case "medium":
			medium++
		default:
			large++
		}
		if j.InputBytes > largest {
			largest = j.InputBytes
		}
	}
	// 85% of jobs read <= 64 MB.
	if frac := float64(small) / 200; math.Abs(frac-0.85) > 0.03 {
		t.Errorf("small fraction = %.2f, want ~0.85", frac)
	}
	// Total ~170 GB (the big-bin rescale may cap the extreme tail).
	if total < 120<<30 || total > 200<<30 {
		t.Errorf("total input = %.1f GB, want ~170 GB", float64(total)/(1<<30))
	}
	// Heavy tail up to ~24 GB.
	if largest < 4<<30 || largest > 24<<30 {
		t.Errorf("largest job = %.1f GB, want a multi-GB tail capped at 24 GB", float64(largest)/(1<<30))
	}
	if medium == 0 || large == 0 {
		t.Errorf("bins: small=%d medium=%d large=%d", small, medium, large)
	}
}

func TestGenerateSwimDeterministic(t *testing.T) {
	a := GenerateSwim(SwimConfig{Seed: 42})
	b := GenerateSwim(SwimConfig{Seed: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across runs with the same seed", i)
		}
	}
	c := GenerateSwim(SwimConfig{Seed: 43})
	same := true
	for i := range a {
		if a[i].InputBytes != c[i].InputBytes {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateSwimArrivalsMonotone(t *testing.T) {
	jobs := GenerateSwim(SwimConfig{Seed: 2})
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestSizeBin(t *testing.T) {
	cases := []struct {
		bytes int64
		want  string
	}{
		{1 << 20, "small"}, {64 << 20, "small"}, {65 << 20, "medium"},
		{512 << 20, "medium"}, {513 << 20, "large"}, {24 << 30, "large"},
	}
	for _, c := range cases {
		if got := SizeBin(c.bytes); got != c.want {
			t.Errorf("SizeBin(%d) = %s, want %s", c.bytes, got, c.want)
		}
	}
}

func TestLoadSwimRoundTrip(t *testing.T) {
	src := `# name arrival_ms input shuffle output
jobB 2000 1048576 0 1024
jobA 1000 2097152 524288 65536
`
	jobs, err := LoadSwim(strings.NewReader(src))
	if err != nil {
		t.Fatalf("LoadSwim: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// Sorted by arrival.
	if jobs[0].Name != "jobA" || jobs[0].Arrival != time.Second {
		t.Errorf("jobs[0] = %+v", jobs[0])
	}
	if jobs[1].InputBytes != 1048576 || jobs[1].OutputBytes != 1024 {
		t.Errorf("jobs[1] = %+v", jobs[1])
	}
}

func TestLoadSwimErrors(t *testing.T) {
	for _, src := range []string{
		"job 1 2",     // too few fields
		"job x 1 2 3", // bad arrival
		"job 1 x 2 3", // bad input
		"job 1 2 x 3", // bad shuffle
		"job 1 2 3 x", // bad output
	} {
		if _, err := LoadSwim(strings.NewReader(src)); err == nil {
			t.Errorf("LoadSwim(%q) succeeded, want error", src)
		}
	}
}

func TestScaleSwim(t *testing.T) {
	jobs := []Job{{Arrival: 10 * time.Second, InputBytes: 100, ShuffleBytes: 50, OutputBytes: 20}}
	scaled := ScaleSwim(jobs, 0.5, 0.1)
	if scaled[0].InputBytes != 50 || scaled[0].Arrival != time.Second {
		t.Errorf("scaled = %+v", scaled[0])
	}
}

// Property: generated totals and bins hold across seeds.
func TestGenerateSwimProperty(t *testing.T) {
	f := func(seed int64) bool {
		jobs := GenerateSwim(SwimConfig{Jobs: 100, TotalInputBytes: 20 << 30, Seed: seed})
		if len(jobs) != 100 {
			return false
		}
		for _, j := range jobs {
			if j.InputBytes <= 0 || j.ShuffleBytes < 0 || j.OutputBytes < 0 {
				return false
			}
		}
		return sort.SliceIsSorted(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGenerateText(t *testing.T) {
	text := GenerateText(7, 10000)
	if len(text) != 10000 {
		t.Fatalf("len = %d", len(text))
	}
	words := strings.Fields(string(text))
	if len(words) < 1000 {
		t.Errorf("only %d words", len(words))
	}
	// Deterministic.
	if !bytes.Equal(text, GenerateText(7, 10000)) {
		t.Error("not deterministic")
	}
	// Zipf skew: "the" should be among the most common.
	counts := map[string]int{}
	for _, w := range words {
		counts[w]++
	}
	if counts["the"] < counts["escrow"] {
		t.Error("vocabulary skew missing")
	}
}

func TestGenerateRandomLines(t *testing.T) {
	data := GenerateRandomLines(3, 5000)
	if len(data) != 5000 {
		t.Fatalf("len = %d", len(data))
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 100 {
		t.Errorf("only %d lines", len(lines))
	}
	if bytes.Equal(GenerateRandomLines(3, 5000), GenerateRandomLines(4, 5000)) {
		t.Error("seeds do not differentiate output")
	}
}
