// Package workloads generates the paper's evaluation workloads: the
// SWIM Facebook-derived trace (scaled as in §IV-B1), input corpora for
// the standalone wordcount and sort jobs, and a loader for real
// SWIM-format trace files.
package workloads

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Job is one trace entry: arrival offset plus the input/shuffle/output
// sizes that SWIM traces report.
type Job struct {
	Name         string
	Arrival      time.Duration
	InputBytes   int64
	ShuffleBytes int64
	OutputBytes  int64
}

// SwimConfig controls the synthetic SWIM workload. The defaults match
// the paper's scaled setup: 200 jobs totalling 170 GB of input, 85% of
// jobs reading at most 64 MB, and a heavy tail up to 24 GB.
type SwimConfig struct {
	Jobs            int
	TotalInputBytes int64
	SmallFraction   float64 // jobs reading <= SmallMax
	SmallMax        int64   // 64 MB
	MediumMax       int64   // 512 MB
	LargeMax        int64   // 24 GB
	// MeanInterarrival is the mean gap between job submissions (the
	// paper halves the trace's inter-arrival times).
	MeanInterarrival time.Duration
	Seed             int64
}

func (c *SwimConfig) setDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.TotalInputBytes <= 0 {
		c.TotalInputBytes = 170 << 30
	}
	if c.SmallFraction <= 0 {
		c.SmallFraction = 0.85
	}
	if c.SmallMax <= 0 {
		c.SmallMax = 64 << 20
	}
	if c.MediumMax <= 0 {
		c.MediumMax = 512 << 20
	}
	if c.LargeMax <= 0 {
		c.LargeMax = 24 << 30
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 4 * time.Second
	}
}

// GenerateSwim synthesizes a SWIM-like workload matching the published
// marginals: the size-bin fractions, the heavy tail, and the total input
// volume (the large bin is scaled so the total comes out exactly).
func GenerateSwim(cfg SwimConfig) []Job {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nSmall := int(float64(cfg.Jobs) * cfg.SmallFraction)
	nMedium := (cfg.Jobs - nSmall) * 2 / 3
	nLarge := cfg.Jobs - nSmall - nMedium
	if nLarge < 1 {
		nLarge = 1
		nSmall--
	}

	jobs := make([]Job, 0, cfg.Jobs)
	var smallMedSum int64
	for i := 0; i < nSmall; i++ {
		size := logUniform(rng, 1<<20, cfg.SmallMax)
		smallMedSum += size
		jobs = append(jobs, Job{InputBytes: size})
	}
	for i := 0; i < nMedium; i++ {
		size := logUniform(rng, cfg.SmallMax+1, cfg.MediumMax)
		smallMedSum += size
		jobs = append(jobs, Job{InputBytes: size})
	}
	// Draw the large bin, then scale it so the workload totals exactly
	// TotalInputBytes while the biggest job stays near LargeMax.
	largeSizes := make([]int64, nLarge)
	var largeSum int64
	var largest int64
	for i := range largeSizes {
		largeSizes[i] = logUniform(rng, cfg.MediumMax+1, cfg.LargeMax)
		largeSum += largeSizes[i]
		if largeSizes[i] > largest {
			largest = largeSizes[i]
		}
	}
	want := cfg.TotalInputBytes - smallMedSum
	if want > 0 && largeSum > 0 {
		// Rescale toward the target total, redistributing around the
		// LargeMax cap over a few passes (capped jobs stay capped; the
		// shortfall flows to the uncapped ones).
		for pass := 0; pass < 8; pass++ {
			var cur, uncapped int64
			for _, s := range largeSizes {
				cur += s
				if s < cfg.LargeMax {
					uncapped += s
				}
			}
			missing := want - cur
			if missing <= 0 || uncapped == 0 {
				break
			}
			scale := 1 + float64(missing)/float64(uncapped)
			for i, s := range largeSizes {
				if s >= cfg.LargeMax {
					continue
				}
				ns := int64(float64(s) * scale)
				if ns > cfg.LargeMax {
					ns = cfg.LargeMax
				}
				if ns <= cfg.MediumMax {
					ns = cfg.MediumMax + 1
				}
				largeSizes[i] = ns
			}
		}
	}
	for _, s := range largeSizes {
		jobs = append(jobs, Job{InputBytes: s})
	}

	// Shuffle/output shapes: roughly half the jobs are map-only with a
	// small aggregate output; the rest shuffle a substantial fraction
	// (sort-like and join-like jobs).
	for i := range jobs {
		in := jobs[i].InputBytes
		if rng.Float64() < 0.5 {
			jobs[i].ShuffleBytes = 0
			jobs[i].OutputBytes = int64(float64(in) * (0.01 + 0.09*rng.Float64()))
		} else {
			jobs[i].ShuffleBytes = int64(float64(in) * (0.2 + 0.8*rng.Float64()))
			jobs[i].OutputBytes = int64(float64(jobs[i].ShuffleBytes) * (0.1 + 0.4*rng.Float64()))
		}
	}

	// Random submission order, Poisson arrivals.
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	var at time.Duration
	for i := range jobs {
		jobs[i].Name = fmt.Sprintf("swim-%03d", i)
		jobs[i].Arrival = at
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		at += gap
	}
	return jobs
}

// logUniform samples log-uniformly in [lo, hi].
func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return int64(math.Exp(l + rng.Float64()*(h-l)))
}

// SizeBin classifies a job by input size the way the paper's Fig 5 bins
// do: "small" (<= 64 MB), "medium" (64-512 MB), "large" (> 512 MB).
func SizeBin(inputBytes int64) string {
	switch {
	case inputBytes <= 64<<20:
		return "small"
	case inputBytes <= 512<<20:
		return "medium"
	default:
		return "large"
	}
}

// LoadSwim parses a SWIM-format trace: whitespace-separated lines of
//
//	name  arrival_ms  input_bytes  shuffle_bytes  output_bytes
//
// Lines starting with '#' are comments.
func LoadSwim(r io.Reader) ([]Job, error) {
	var jobs []Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 5 {
			return nil, fmt.Errorf("workloads: line %d: want 5 fields, got %d", lineNo, len(f))
		}
		arrival, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: line %d arrival: %w", lineNo, err)
		}
		in, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: line %d input: %w", lineNo, err)
		}
		sh, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: line %d shuffle: %w", lineNo, err)
		}
		out, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: line %d output: %w", lineNo, err)
		}
		jobs = append(jobs, Job{
			Name:         f[0],
			Arrival:      time.Duration(arrival) * time.Millisecond,
			InputBytes:   in,
			ShuffleBytes: sh,
			OutputBytes:  out,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	return jobs, nil
}

// ScaleSwim scales a workload's data sizes and arrival gaps, as the
// paper scales the Facebook trace down to an 8-node cluster.
func ScaleSwim(jobs []Job, sizeFactor, timeFactor float64) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = Job{
			Name:         j.Name,
			Arrival:      time.Duration(float64(j.Arrival) * timeFactor),
			InputBytes:   int64(float64(j.InputBytes) * sizeFactor),
			ShuffleBytes: int64(float64(j.ShuffleBytes) * sizeFactor),
			OutputBytes:  int64(float64(j.OutputBytes) * sizeFactor),
		}
	}
	return out
}
