package workloads

import (
	"math/rand"
	"strings"
)

// vocabulary approximates the word-frequency skew of the consumer
// complaint corpus the paper concatenates for its wordcount inputs.
var vocabulary = []string{
	"the", "and", "credit", "report", "account", "company", "loan", "bank",
	"payment", "consumer", "debt", "card", "information", "complaint",
	"mortgage", "collection", "service", "charge", "dispute", "balance",
	"interest", "fraud", "identity", "transaction", "statement", "letter",
	"agency", "refinance", "escrow", "foreclosure", "billing", "error",
}

// GenerateText produces approximately n bytes of zipf-skewed English-like
// text, deterministic in the seed — the stand-in for the paper's 400 MB
// online text corpus concatenated onto itself.
func GenerateText(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(vocabulary)-1))
	var b strings.Builder
	b.Grow(n + 16)
	col := 0
	for b.Len() < n {
		w := vocabulary[zipf.Uint64()]
		b.WriteString(w)
		col += len(w) + 1
		if col > 70 {
			b.WriteByte('\n')
			col = 0
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}

// GenerateRandomLines produces approximately n bytes of random
// fixed-width record lines, the stand-in for the paper's 40 GB random
// text sort dataset.
func GenerateRandomLines(seed int64, n int) []byte {
	const width = 32
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	out := make([]byte, 0, n+width+1)
	for len(out) < n {
		for i := 0; i < width; i++ {
			out = append(out, letters[rng.Intn(len(letters))])
		}
		out = append(out, '\n')
	}
	return out[:n]
}
