//go:build !race

package writebench

// raceEnabled reports whether the race detector is compiled in. Timing
// assertions relax under -race: its instrumentation slows the concurrent
// side of a comparison far more than the serial side.
const raceEnabled = false
