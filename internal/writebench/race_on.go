//go:build race

package writebench

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
