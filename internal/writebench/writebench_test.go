package writebench

import (
	"testing"
	"time"

	"repro/internal/dfs/client"
)

func withCluster(b *testing.B, fn func(b *testing.B, c *Cluster)) {
	for _, kind := range []Transport{Inmem, TCP} {
		b.Run(string(kind), func(b *testing.B) {
			c, err := Start(kind)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fn(b, c)
		})
	}
}

func BenchmarkWriteFileSerial(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchWriteFile(b, c, 1) })
}

func BenchmarkWriteFileParallel(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchWriteFile(b, c, client.DefaultWriteParallelism) })
}

func BenchmarkWriteSyntheticSerial(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchWriteSynthetic(b, c, 1) })
}

func BenchmarkWriteSyntheticParallel(b *testing.B) {
	withCluster(b, func(b *testing.B, c *Cluster) { BenchWriteSynthetic(b, c, client.DefaultWriteParallelism) })
}

func BenchmarkLargeWritePipelinedFast(b *testing.B) {
	c, err := StartLargeTCP(true)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	BenchLargeWritePipelined(b, c)
}

func BenchmarkLargeWritePipelinedGob(b *testing.B) {
	c, err := StartLargeTCP(false)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	BenchLargeWritePipelined(b, c)
}

// measureLargeWrite runs the large-block pipelined-write body against a
// fresh cluster with the fast path on or off.
func measureLargeWrite(t *testing.T, fast bool) testing.BenchmarkResult {
	t.Helper()
	c, err := StartLargeTCP(fast)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return testing.Benchmark(func(b *testing.B) { BenchLargeWritePipelined(b, c) })
}

// TestLargeWriteFastPathSpeedup pins the codec acceptance bar on the
// write side: at the 4MiB block size, a pipelined replication-2 ingest
// through the binary fast path is meaningfully faster than through the
// gob baseline (WithTCPFastPath(false)) on the same HEAD. Every replica
// hop (client→dn and dn→dn forward) pays the codec, so the ratio
// compounds across the pipeline.
//
// The floor is deliberately below the typical speedup: single
// measurements on a loaded CI machine land anywhere in a 1.33–1.61x
// band (1.41–1.49x when quiet), because one descheduled gob run or one
// lucky fast run moves the single-shot ratio by ±0.15x. Each side is
// therefore measured three times and the best (minimum ns/op) run
// kept — best-of-N discards scheduler noise, which only ever slows a
// run down — and the bar asserts 1.25x, low enough that a real
// regression (the fast path silently falling back to gob would read
// ~1.0x) still trips it while honest jitter does not.
func TestLargeWriteFastPathSpeedup(t *testing.T) {
	const runs = 3
	best := func(fast bool) int64 {
		b := int64(0)
		for i := 0; i < runs; i++ {
			if r := measureLargeWrite(t, fast).NsPerOp(); b == 0 || r < b {
				b = r
			}
		}
		return b
	}
	gob := best(false)
	fast := best(true)
	// The race detector taxes gob's instrumented reflection walk far more
	// densely than the fast path's memmove, so only the direction is
	// asserted there; 1.25x is enforced on the normal build.
	bar := 1.25
	if raceEnabled {
		bar = 1.0
	}
	if float64(fast)*bar > float64(gob) {
		t.Errorf("fast path %d ns/op is not ≥%.2fx faster than gob %d ns/op",
			fast, bar, gob)
	}
	t.Logf("gob %d ns/op, fast %d ns/op, speedup %.2fx",
		gob, fast, float64(gob)/float64(fast))
}

// TestParallelWriteSpeedupRealClock pins the acceptance bar without
// needing -bench: on the in-memory transport under the real clock,
// pipelined ingest with parallelism 4 is at least 2x faster than serial
// ingest of the same 8-block file. The modeled RAM/network charges
// dominate both sides, so the ratio is stable even on a loaded machine.
func TestParallelWriteSpeedupRealClock(t *testing.T) {
	c, err := Start(Inmem)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	elapsed := func(par int) time.Duration {
		cl, err := c.Client(client.WithWriteParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// One warmup write so connection dials don't skew either side.
		warm := c.nextPath()
		if err := cl.WriteFile(warm, c.in, BlockSize, Replication); err != nil {
			t.Fatal(err)
		}
		if err := cl.Delete(warm); err != nil {
			t.Fatal(err)
		}
		const iters = 3
		var total time.Duration
		for i := 0; i < iters; i++ {
			path := c.nextPath()
			start := time.Now()
			if err := cl.WriteFile(path, c.in, BlockSize, Replication); err != nil {
				t.Fatal(err)
			}
			total += time.Since(start)
			// Deletion is untimed housekeeping so replicas don't pile up.
			if err := cl.Delete(path); err != nil {
				t.Fatal(err)
			}
		}
		return total / iters
	}

	serial := elapsed(1)
	parallel := elapsed(client.DefaultWriteParallelism)
	// Under -race the detector's instrumentation taxes the pipelined side
	// much harder than the serial side, so only the direction is asserted
	// there; the 2x bar is enforced on the normal build.
	bar := 2.0
	if raceEnabled {
		bar = 1.2
	}
	if float64(parallel)*bar > float64(serial) {
		t.Errorf("pipelined write %v is not ≥%.1fx faster than serial %v", parallel, bar, serial)
	}
	t.Logf("serial %v, pipelined(par=4) %v, speedup %.2fx", serial, parallel, float64(serial)/float64(parallel))
}
