// Package writebench hosts the write-path throughput benchmarks: the
// pipelined Writer with a bounded in-flight window versus the serial
// per-block flush, for both real-byte and synthetic ingest, on both the
// in-memory and the TCP transport. The benchmark bodies are exported so
// the same code runs under `go test -bench` and from cmd/ignem-bench,
// which emits machine-readable BENCH_write.json.
//
// The clusters run on the real clock (scaled 4x): wall-clock speedups
// here are the product claim, not simulated figures.
package writebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Benchmark geometry: an 8-block file over 12 HDD datanodes with
// replication 2 — the acceptance scenario for the parallel write path.
// Blocks are 512 KiB rather than readbench's 1 MiB: on the TCP transport
// every replica hop pays a real gob encode/decode of the payload, and on
// a small host that codec CPU — which no client-side window can overlap —
// would otherwise drown the per-block round trips the pipeline hides.
const (
	Blocks      = 8
	BlockSize   = 512 << 10
	Nodes       = 12
	Replication = 2
	timeScale   = 4
)

// Large-block scenario geometry: a 2-block file of 4MiB blocks written
// with the pipelined Writer at replication 2 over TCP. At this payload
// size the wire codec dominates the op (datanode writes land in the
// modeled buffer cache, so no device sleep hides it); the same cluster
// runs once with the binary fast path and once with the gob baseline
// (WithTCPFastPath(false)) so the pair brackets the codec overhaul in
// BENCH_write.json.
const (
	LargeBlocks    = 2
	LargeBlockSize = 4 << 20
	LargeNodes     = 4
)

// Transport selects the wire under benchmark.
type Transport string

const (
	Inmem Transport = "inmem"
	TCP   Transport = "tcp"
)

// Result is one benchmark record of BENCH_write.json. AllocsPerOp and
// BytesPerOp are recorded only by the allocation-aware configs (the
// large-block codec scenarios); zero means not measured.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`
}

// Cluster is a running benchmark cluster.
type Cluster struct {
	Clock  simclock.Clock
	Net    transport.Network
	NNAddr string

	nn        *namenode.NameNode
	dns       []*datanode.DataNode
	in        []byte
	seq       int
	blocks    int
	blockSize int64
}

// clusterSpec parameterizes a benchmark cluster build.
type clusterSpec struct {
	kind      Transport
	blocks    int
	blockSize int64
	nodes     int
	fastPath  bool // TCP binary fast path (false = gob baseline)
}

// Start brings up a namenode and Nodes HDD datanodes on the chosen
// transport, all on the scaled real clock.
func Start(kind Transport) (*Cluster, error) {
	return start(clusterSpec{
		kind: kind, blocks: Blocks, blockSize: BlockSize, nodes: Nodes,
		fastPath: true,
	})
}

// StartLargeTCP brings up the large-block codec cluster: LargeNodes
// datanodes over TCP ingesting LargeBlockSize blocks, with the binary
// fast path on or off (off is the gob baseline).
func StartLargeTCP(fast bool) (*Cluster, error) {
	return start(clusterSpec{
		kind: TCP, blocks: LargeBlocks, blockSize: LargeBlockSize,
		nodes: LargeNodes, fastPath: fast,
	})
}

func start(spec clusterSpec) (*Cluster, error) {
	clock := simclock.NewScaledReal(timeScale)
	c := &Cluster{Clock: clock, blocks: spec.blocks, blockSize: spec.blockSize}
	addr := func(i int) string { return fmt.Sprintf("dn%d", i) }
	switch spec.kind {
	case Inmem:
		c.Net = transport.NewInmemNetwork(clock)
		c.NNAddr = "nn"
	case TCP:
		dfs.RegisterWire()
		net := transport.NewTCPNetwork(transport.WithTCPFastPath(spec.fastPath))
		c.Net = net
		ephemeral := func() (string, error) {
			l, err := net.Listen("127.0.0.1:0")
			if err != nil {
				return "", err
			}
			defer l.Close()
			return l.Addr(), nil
		}
		a, err := ephemeral()
		if err != nil {
			return nil, err
		}
		c.NNAddr = a
		addr = func(int) string {
			a, err := ephemeral()
			if err != nil {
				a = ""
			}
			return a
		}
	default:
		return nil, fmt.Errorf("writebench: unknown transport %q", spec.kind)
	}

	nn := namenode.New(c.Clock, c.Net, namenode.Config{Addr: c.NNAddr, Seed: 7})
	if err := nn.Start(); err != nil {
		return nil, err
	}
	c.nn = nn
	for i := 0; i < spec.nodes; i++ {
		a := addr(i)
		if a == "" {
			c.Close()
			return nil, fmt.Errorf("writebench: no ephemeral port for datanode %d", i)
		}
		dn, err := datanode.New(c.Clock, c.Net, datanode.Config{
			Addr: a, NameNodeAddr: c.NNAddr, Media: storage.HDDSpec(),
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := dn.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.dns = append(c.dns, dn)
	}
	c.in = bytes.Repeat([]byte("ignem-writebench"), spec.blocks*int(spec.blockSize)/16)
	return c, nil
}

// Client dials a fresh client into the cluster.
func (c *Cluster) Client(opts ...client.Option) (*client.Client, error) {
	return client.New(c.Clock, c.Net, c.NNAddr, opts...)
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	for _, dn := range c.dns {
		dn.Close()
	}
	if c.nn != nil {
		c.nn.Close()
	}
}

// nextPath hands out a fresh file path so every iteration ingests a new
// file (created files cannot be overwritten).
func (c *Cluster) nextPath() string {
	c.seq++
	return fmt.Sprintf("/bench/out-%d", c.seq)
}

// BenchWriteFile is the real-byte ingest benchmark body: whole-file
// writes of the 8-block input with the given write parallelism. par 1 is
// the serial baseline. Each file is deleted after the write so the
// cluster doesn't accumulate replicas across iterations.
func BenchWriteFile(b *testing.B, c *Cluster, par int) {
	cl, err := c.Client(client.WithWriteParallelism(par))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := c.nextPath()
		if err := cl.WriteFile(path, c.in, c.blockSize, Replication); err != nil {
			b.Fatal(err)
		}
		// Deletion is untimed housekeeping so replicas don't pile up.
		b.StopTimer()
		if err := cl.Delete(path); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.SetBytes(int64(len(c.in)))
}

// BenchLargeWritePipelined is the large-block codec benchmark body: one
// pipelined whole-file write of LargeBlocks 4MiB blocks per op against a
// StartLargeTCP cluster, with allocation reporting so the fast-vs-gob
// pair also brackets the codec's per-op allocation cost.
func BenchLargeWritePipelined(b *testing.B, c *Cluster) {
	cl, err := c.Client(client.WithWriteParallelism(client.DefaultWriteParallelism))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := c.nextPath()
		if err := cl.WriteFile(path, c.in, c.blockSize, Replication); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := cl.Delete(path); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.SetBytes(int64(len(c.in)))
}

// BenchWriteSynthetic is the synthetic ingest benchmark body: the
// experiment-populating WriteSyntheticFile path at the given write
// parallelism.
func BenchWriteSynthetic(b *testing.B, c *Cluster, par int) {
	cl, err := c.Client(client.WithWriteParallelism(par))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	size := int64(c.blocks) * c.blockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := c.nextPath()
		if err := cl.WriteSyntheticFile(path, size, c.blockSize, Replication); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := cl.Delete(path); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.SetBytes(size)
}

// RunAll executes every benchmark config via testing.Benchmark and
// returns the records for BENCH_write.json. Each transport shares one
// cluster across its configs so TCP port churn stays bounded.
func RunAll() ([]Result, error) {
	var out []Result
	for _, kind := range []Transport{Inmem, TCP} {
		c, err := Start(kind)
		if err != nil {
			return nil, fmt.Errorf("writebench: start %s: %w", kind, err)
		}
		configs := []struct {
			name string
			body func(*testing.B)
		}{
			{"BenchmarkWriteFileSerial", func(b *testing.B) { BenchWriteFile(b, c, 1) }},
			{"BenchmarkWriteFileParallel", func(b *testing.B) { BenchWriteFile(b, c, client.DefaultWriteParallelism) }},
			{"BenchmarkWriteSyntheticSerial", func(b *testing.B) { BenchWriteSynthetic(b, c, 1) }},
			{"BenchmarkWriteSyntheticParallel", func(b *testing.B) { BenchWriteSynthetic(b, c, client.DefaultWriteParallelism) }},
		}
		for _, cfg := range configs {
			r := testing.Benchmark(cfg.body)
			ns := r.NsPerOp()
			res := Result{Name: cfg.name + "/" + string(kind), NsPerOp: ns}
			if ns > 0 {
				res.BlocksPerSec = Blocks * 1e9 / float64(ns)
			}
			out = append(out, res)
		}
		c.Close()
	}

	// Large-block codec scenarios: same TCP cluster geometry, fast path
	// on vs off, so the pair brackets the binary codec's effect at the
	// block size where the wire cost dominates.
	for _, lc := range []struct {
		name string
		fast bool
	}{
		{"BenchmarkLargeWritePipelinedFast", true},
		{"BenchmarkLargeWritePipelinedGob", false},
	} {
		c, err := StartLargeTCP(lc.fast)
		if err != nil {
			return nil, fmt.Errorf("writebench: start large (fast=%v): %w", lc.fast, err)
		}
		r := testing.Benchmark(func(b *testing.B) { BenchLargeWritePipelined(b, c) })
		ns := r.NsPerOp()
		res := Result{
			Name: lc.name + "/" + string(TCP), NsPerOp: ns,
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
		if ns > 0 {
			res.BlocksPerSec = LargeBlocks * 1e9 / float64(ns)
		}
		out = append(out, res)
		c.Close()
	}
	return out, nil
}

// WriteJSON writes the records to path, one indented JSON array.
func WriteJSON(path string, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
