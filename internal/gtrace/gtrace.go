// Package gtrace synthesizes a Google-cluster-style trace and reproduces
// the paper's §II motivation analysis on it: lead-time sufficiency
// (Fig 3) and residual disk bandwidth (Fig 4).
//
// The published statistics the synthesizer is calibrated against:
//
//   - job scheduling delay (lead-time): mean 8.8 s, median 1.8 s;
//   - ~10 tasks running per server at a time, heavy-tailed job IO;
//   - mean server disk utilization ~3.1% over the analyzed day and
//     ~1.3% over the month.
package gtrace

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// Config controls trace synthesis.
type Config struct {
	// Servers in the simulated cluster slice. Default 40 (the group the
	// paper plots mean utilization for).
	Servers int
	// Duration of the analyzed window. Default 24h.
	Duration time.Duration
	// TargetUtilization is the mean disk utilization the workload is
	// sized for. Default 0.031 (the paper's analyzed day).
	TargetUtilization float64
	// TasksPerJobMean is the mean task count per job. Default 8.
	TasksPerJobMean float64
	Seed            int64

	// Lead-time (queue delay) lognormal parameters, calibrated to the
	// published mean 8.8s / median 1.8s.
	LeadMedian time.Duration // default 1.8s
	LeadSigma  float64       // default 1.78

	// Per-job total disk IO lognormal parameters (heavy-tailed).
	ReadMedian time.Duration // default 150ms
	ReadSigma  float64       // default 2.0
}

func (c *Config) setDefaults() {
	if c.Servers <= 0 {
		c.Servers = 40
	}
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.TargetUtilization <= 0 {
		c.TargetUtilization = 0.031
	}
	if c.TasksPerJobMean <= 0 {
		c.TasksPerJobMean = 8
	}
	if c.LeadMedian <= 0 {
		c.LeadMedian = 1800 * time.Millisecond
	}
	if c.LeadSigma <= 0 {
		c.LeadSigma = 1.78
	}
	if c.ReadMedian <= 0 {
		c.ReadMedian = 150 * time.Millisecond
	}
	if c.ReadSigma <= 0 {
		c.ReadSigma = 2.0
	}
}

// JobRecord is one synthesized job.
type JobRecord struct {
	Submit time.Duration // offset into the window
	// Lead is the queue delay between submission and the first task
	// start (the migration window).
	Lead time.Duration
	// ReadTime is the job's total disk IO time summed over its tasks.
	ReadTime time.Duration
	Tasks    []TaskRecord
}

// TaskRecord is one task's placement and IO footprint.
type TaskRecord struct {
	Server   int
	Start    time.Duration
	Duration time.Duration
	IOTime   time.Duration
}

// Trace is a synthesized cluster trace.
type Trace struct {
	Config Config
	Jobs   []JobRecord
}

// Generate synthesizes a trace sized so the cluster's mean disk
// utilization matches Config.TargetUtilization.
func Generate(cfg Config) *Trace {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Mean per-job IO of the lognormal = median * exp(sigma^2/2).
	meanJobIO := cfg.ReadMedian.Seconds() * math.Exp(cfg.ReadSigma*cfg.ReadSigma/2)
	totalIONeeded := cfg.TargetUtilization * float64(cfg.Servers) * cfg.Duration.Seconds()
	nJobs := int(totalIONeeded / meanJobIO)
	if nJobs < 1 {
		nJobs = 1
	}

	t := &Trace{Config: cfg}
	t.Jobs = make([]JobRecord, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		submit := time.Duration(rng.Float64() * float64(cfg.Duration))
		lead := lognormal(rng, cfg.LeadMedian, cfg.LeadSigma)
		readTime := lognormal(rng, cfg.ReadMedian, cfg.ReadSigma)

		nTasks := 1 + rng.Intn(int(2*cfg.TasksPerJobMean-1)) // uniform, mean ≈ TasksPerJobMean
		job := JobRecord{Submit: submit, Lead: lead, ReadTime: readTime}
		// Split the job's IO across its tasks with random weights.
		weights := make([]float64, nTasks)
		var wsum float64
		for j := range weights {
			weights[j] = rng.ExpFloat64()
			wsum += weights[j]
		}
		for j := 0; j < nTasks; j++ {
			dur := lognormal(rng, 30*time.Second, 1.5)
			io := time.Duration(float64(readTime) * weights[j] / wsum)
			if io > dur {
				io = dur
			}
			job.Tasks = append(job.Tasks, TaskRecord{
				Server:   rng.Intn(cfg.Servers),
				Start:    submit + lead,
				Duration: dur,
				IOTime:   io,
			})
		}
		t.Jobs = append(t.Jobs, job)
	}
	return t
}

func lognormal(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(rng.NormFloat64()*sigma))
}

// LeadTimeSufficiency reproduces Fig 3: the CDF of read-time/lead-time
// per job, and the fraction of jobs whose lead-time covers their entire
// read-time (the paper reports 81%).
func (t *Trace) LeadTimeSufficiency() (ratios *metrics.Series, fracSufficient float64) {
	ratios = &metrics.Series{}
	sufficient := 0
	for _, j := range t.Jobs {
		if j.Lead <= 0 {
			continue
		}
		ratio := float64(j.ReadTime) / float64(j.Lead)
		ratios.Add(ratio)
		if ratio <= 1 {
			sufficient++
		}
	}
	if len(t.Jobs) == 0 {
		return ratios, 0
	}
	return ratios, float64(sufficient) / float64(len(t.Jobs))
}

// ServerUtilization reproduces Fig 4: per-server disk utilization
// averaged over fixed windows (the paper uses 5 minutes), with each
// task's IO time spread uniformly over its runtime.
func (t *Trace) ServerUtilization(window time.Duration) [][]float64 {
	cfg := t.Config
	nWin := int(cfg.Duration/window) + 1
	util := make([][]float64, cfg.Servers)
	for s := range util {
		util[s] = make([]float64, nWin)
	}
	for _, j := range t.Jobs {
		for _, task := range j.Tasks {
			if task.Duration <= 0 || task.IOTime <= 0 {
				continue
			}
			// IO density per second of runtime.
			density := task.IOTime.Seconds() / task.Duration.Seconds()
			start := task.Start
			end := task.Start + task.Duration
			if end > cfg.Duration {
				end = cfg.Duration
			}
			for w := int(start / window); w <= int(end/window) && w < nWin; w++ {
				wStart := time.Duration(w) * window
				wEnd := wStart + window
				overlap := minDur(end, wEnd) - maxDur(start, wStart)
				if overlap <= 0 {
					continue
				}
				util[task.Server][w] += density * overlap.Seconds() / window.Seconds()
			}
		}
	}
	for s := range util {
		for w := range util[s] {
			if util[s][w] > 1 {
				util[s][w] = 1
			}
		}
	}
	return util
}

// MeanUtilization returns the across-servers, across-windows mean.
func (t *Trace) MeanUtilization(window time.Duration) float64 {
	util := t.ServerUtilization(window)
	var sum float64
	var n int
	for _, series := range util {
		for _, u := range series {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MonthProfile models the paper's month-long view: the analyzed day is a
// busy one; daily intensity factors below 1 bring the month mean down to
// roughly 1.3% when the day is 3.1%.
func MonthProfile(seed int64, dayUtil float64) (days []float64, monthMean float64) {
	rng := rand.New(rand.NewSource(seed))
	days = make([]float64, 30)
	var sum float64
	for i := range days {
		// Intensity between 0.2 and 1.0 of the analyzed (busy) day.
		f := 0.2 + 0.8*rng.Float64()*rng.Float64()
		days[i] = dayUtil * f
		sum += days[i]
	}
	// Make one day the analyzed day itself.
	days[14] = dayUtil
	sum += dayUtil - days[14]
	sum = 0
	for _, d := range days {
		sum += d
	}
	return days, sum / float64(len(days))
}

// LeadTimeStats returns the mean and median job lead-time, for checking
// calibration against the published 8.8s / 1.8s.
func (t *Trace) LeadTimeStats() (mean, median time.Duration) {
	var s metrics.Series
	for _, j := range t.Jobs {
		s.AddDuration(j.Lead)
	}
	return time.Duration(s.Mean() * float64(time.Second)),
		time.Duration(s.Median() * float64(time.Second))
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
