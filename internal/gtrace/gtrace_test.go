package gtrace

import (
	"math"
	"testing"
	"time"
)

// smallCfg keeps unit tests fast; the full-size defaults run in the
// benchmark harness.
func smallCfg(seed int64) Config {
	return Config{
		Servers:  10,
		Duration: 2 * time.Hour,
		Seed:     seed,
	}
}

func TestLeadTimeCalibration(t *testing.T) {
	tr := Generate(smallCfg(1))
	mean, median := tr.LeadTimeStats()
	// Published: mean 8.8s, median 1.8s. Allow sampling slack.
	if median < 1200*time.Millisecond || median > 2700*time.Millisecond {
		t.Errorf("lead median = %v, want ~1.8s", median)
	}
	if mean < 5*time.Second || mean > 15*time.Second {
		t.Errorf("lead mean = %v, want ~8.8s", mean)
	}
}

func TestLeadTimeSufficiencyNear81Percent(t *testing.T) {
	tr := Generate(smallCfg(2))
	_, frac := tr.LeadTimeSufficiency()
	if frac < 0.74 || frac > 0.9 {
		t.Errorf("lead-time sufficient for %.0f%% of jobs, want ~81%%", frac*100)
	}
}

func TestUtilizationNearTarget(t *testing.T) {
	tr := Generate(smallCfg(3))
	got := tr.MeanUtilization(5 * time.Minute)
	if got < 0.015 || got > 0.06 {
		t.Errorf("mean utilization = %.3f, want ~0.031", got)
	}
}

func TestUtilizationSeriesShape(t *testing.T) {
	tr := Generate(smallCfg(4))
	util := tr.ServerUtilization(5 * time.Minute)
	if len(util) != 10 {
		t.Fatalf("servers = %d", len(util))
	}
	nonZero := 0
	for _, series := range util {
		for _, u := range series {
			if u < 0 || u > 1 {
				t.Fatalf("utilization out of range: %v", u)
			}
			if u > 0 {
				nonZero++
			}
		}
	}
	if nonZero == 0 {
		t.Error("utilization all zero")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg(9))
	b := Generate(smallCfg(9))
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Lead != b.Jobs[i].Lead || a.Jobs[i].ReadTime != b.Jobs[i].ReadTime {
			t.Fatal("same seed produced different jobs")
		}
	}
}

func TestMonthProfile(t *testing.T) {
	days, monthMean := MonthProfile(1, 0.031)
	if len(days) != 30 {
		t.Fatalf("days = %d", len(days))
	}
	if math.Abs(days[14]-0.031) > 1e-9 {
		t.Errorf("analyzed day = %v, want 0.031", days[14])
	}
	// The month mean is well below the busy day, around the published
	// 1.3%.
	if monthMean >= 0.031 || monthMean < 0.005 {
		t.Errorf("month mean = %.4f, want between 0.005 and 0.031", monthMean)
	}
}

func TestRatiosSeriesMatchesFraction(t *testing.T) {
	tr := Generate(smallCfg(5))
	ratios, frac := tr.LeadTimeSufficiency()
	if got := ratios.FractionBelow(1.0); math.Abs(got-frac) > 0.02 {
		t.Errorf("CDF fraction below 1 = %.3f vs reported %.3f", got, frac)
	}
}

func TestTaskIOWithinDuration(t *testing.T) {
	tr := Generate(smallCfg(6))
	for _, j := range tr.Jobs {
		for _, task := range j.Tasks {
			if task.IOTime > task.Duration {
				t.Fatal("task IO exceeds its runtime")
			}
			if task.Server < 0 || task.Server >= tr.Config.Servers {
				t.Fatal("bad server index")
			}
		}
	}
}
