package scheduler

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func runSim(t *testing.T, fn func(v *simclock.Virtual)) {
	t.Helper()
	v := simclock.NewVirtual(epoch)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		fn(v)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("simulation stalled: %v", v)
	}
}

func newRunning(v *simclock.Virtual, nodes []string, slots int, hb time.Duration) *Scheduler {
	s := New(v, Config{Nodes: nodes, SlotsPerNode: slots, HeartbeatInterval: hb})
	s.Start()
	return s
}

func TestRunTasksCompletesAll(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1", "n2"}, 2, time.Second)
		defer s.Close()
		j, err := s.SubmitJob("job1")
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		ran := 0
		tasks := make([]TaskSpec, 8)
		for i := range tasks {
			tasks[i] = TaskSpec{Name: "t", Run: func(string) {
				v.Sleep(500 * time.Millisecond)
				mu.Lock()
				ran++
				mu.Unlock()
			}}
		}
		results := j.RunTasks(tasks)
		if ran != 8 || len(results) != 8 {
			t.Errorf("ran=%d results=%d", ran, len(results))
		}
		for _, r := range results {
			if r.RunTime < 500*time.Millisecond {
				t.Errorf("RunTime = %v", r.RunTime)
			}
		}
	})
}

func TestQueueingCreatesLeadTime(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		// One node, one slot: tasks serialize and queue time accumulates.
		s := newRunning(v, []string{"n1"}, 1, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("job1")
		tasks := make([]TaskSpec, 3)
		for i := range tasks {
			tasks[i] = TaskSpec{Run: func(string) { v.Sleep(10 * time.Second) }}
		}
		results := j.RunTasks(tasks)
		var maxQueue time.Duration
		for _, r := range results {
			if r.QueueTime > maxQueue {
				maxQueue = r.QueueTime
			}
		}
		// The third task waits for two 10s executions plus heartbeats.
		if maxQueue < 20*time.Second {
			t.Errorf("max queue time %v, want >= 20s", maxQueue)
		}
	})
}

func TestHeartbeatGatesAssignment(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		hb := 3 * time.Second
		s := newRunning(v, []string{"n1"}, 4, hb)
		defer s.Close()
		j, _ := s.SubmitJob("job1")
		start := v.Now()
		var assignedAt time.Time
		j.RunTasks([]TaskSpec{{Run: func(string) { assignedAt = v.Now() }}})
		// Assignment happens only on a heartbeat: strictly after submit,
		// within one interval.
		d := assignedAt.Sub(start)
		if d <= 0 || d > hb {
			t.Errorf("assignment delay %v, want (0, %v]", d, hb)
		}
	})
}

func TestLocalityPreferred(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1", "n2", "n3"}, 2, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("job1")
		tasks := make([]TaskSpec, 6)
		for i := range tasks {
			pref := []string{"n2"}
			tasks[i] = TaskSpec{PreferredNodes: pref, Run: func(string) { v.Sleep(100 * time.Millisecond) }}
		}
		results := j.RunTasks(tasks)
		local := 0
		for _, r := range results {
			if r.NodeLocal {
				local++
			}
		}
		// n2 has 2 slots; with 1s heartbeats and 100ms tasks, most tasks
		// should land on their preferred node.
		if local < 3 {
			t.Errorf("only %d/6 tasks node-local", local)
		}
	})
}

func TestSpilloverWhenPreferredBusy(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1", "n2"}, 1, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("job1")
		// Two long tasks prefer n1; one must spill to n2 rather than wait
		// forever (FIFO fallback).
		tasks := []TaskSpec{
			{PreferredNodes: []string{"n1"}, Run: func(string) { v.Sleep(30 * time.Second) }},
			{PreferredNodes: []string{"n1"}, Run: func(string) { v.Sleep(30 * time.Second) }},
		}
		results := j.RunTasks(tasks)
		nodes := map[string]int{}
		for _, r := range results {
			nodes[r.Node]++
		}
		if nodes["n2"] != 1 {
			t.Errorf("no spillover: %v", nodes)
		}
	})
}

func TestIsActiveLifecycle(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1"}, 1, time.Second)
		defer s.Close()
		if s.IsActive("nope") {
			t.Error("unknown job active")
		}
		j, _ := s.SubmitJob("job1")
		if !s.IsActive("job1") {
			t.Error("submitted job not active")
		}
		j.Complete()
		if s.IsActive("job1") {
			t.Error("completed job still active")
		}
	})
}

func TestDuplicateSubmitRejected(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1"}, 1, time.Second)
		defer s.Close()
		if _, err := s.SubmitJob("j"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitJob("j"); err == nil {
			t.Error("duplicate submit accepted")
		}
	})
}

func TestMultiStageJob(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1", "n2"}, 4, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("mr")
		var order []string
		var mu sync.Mutex
		mk := func(stage string, n int) []TaskSpec {
			tasks := make([]TaskSpec, n)
			for i := range tasks {
				tasks[i] = TaskSpec{Run: func(string) {
					v.Sleep(time.Second)
					mu.Lock()
					order = append(order, stage)
					mu.Unlock()
				}}
			}
			return tasks
		}
		j.RunTasks(mk("map", 4))
		j.RunTasks(mk("reduce", 2))
		j.Complete()
		if len(order) != 6 {
			t.Fatalf("ran %d tasks", len(order))
		}
		for _, stage := range order[:4] {
			if stage != "map" {
				t.Errorf("stage barrier violated: %v", order)
			}
		}
		for _, stage := range order[4:] {
			if stage != "reduce" {
				t.Errorf("stage barrier violated: %v", order)
			}
		}
	})
}

func TestManyConcurrentJobsShareCluster(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1", "n2", "n3", "n4"}, 4, time.Second)
		defer s.Close()
		wg := simclock.NewWaitGroup(v)
		var mu sync.Mutex
		completed := 0
		for i := 0; i < 12; i++ {
			i := i
			wg.Go(func() {
				j, err := s.SubmitJob(dfs.JobID(fmt.Sprintf("job-%d", i)))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				tasks := make([]TaskSpec, 3)
				for k := range tasks {
					tasks[k] = TaskSpec{Run: func(string) { v.Sleep(2 * time.Second) }}
				}
				j.RunTasks(tasks)
				j.Complete()
				mu.Lock()
				completed++
				mu.Unlock()
			})
		}
		wg.Wait()
		if completed != 12 {
			t.Errorf("completed %d/12 jobs", completed)
		}
	})
}

func TestFairSharingAcrossJobs(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1"}, 2, time.Second)
		defer s.Close()
		big, _ := s.SubmitJob("big")
		small, _ := s.SubmitJob("small")

		var mu sync.Mutex
		var order []string
		mk := func(job string, n int) []TaskSpec {
			tasks := make([]TaskSpec, n)
			for i := range tasks {
				tasks[i] = TaskSpec{Run: func(string) {
					mu.Lock()
					order = append(order, job)
					mu.Unlock()
					v.Sleep(5 * time.Second)
				}}
			}
			return tasks
		}
		wg := simclock.NewWaitGroup(v)
		wg.Go(func() { big.RunTasks(mk("big", 8)) })
		wg.Go(func() {
			v.Sleep(500 * time.Millisecond) // small job arrives just after
			small.RunTasks(mk("small", 1))
		})
		wg.Wait()
		// Fair sharing must start the small job's task well before the
		// big job's burst drains: it appears within the first 4 starts.
		mu.Lock()
		defer mu.Unlock()
		pos := -1
		for i, j := range order {
			if j == "small" {
				pos = i
				break
			}
		}
		if pos < 0 || pos > 3 {
			t.Errorf("small job started at position %d of %v", pos, order)
		}
	})
}

func TestContainerReuseAvoidsHeartbeatStalls(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		// 1 node, 1 slot, 10ms tasks: with container reuse, 20 tasks take
		// ~one heartbeat plus ~200ms, nowhere near 20 heartbeats.
		s := newRunning(v, []string{"n1"}, 1, 3*time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("j")
		tasks := make([]TaskSpec, 20)
		for i := range tasks {
			tasks[i] = TaskSpec{Run: func(string) { v.Sleep(10 * time.Millisecond) }}
		}
		start := v.Now()
		j.RunTasks(tasks)
		if d := v.Now().Sub(start); d > 5*time.Second {
			t.Errorf("20 reused tasks took %v; container reuse broken", d)
		}
	})
}

func TestSecondaryTierUsedAfterHalfDelay(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := New(v, Config{
			Nodes: []string{"n1", "n2"}, SlotsPerNode: 1,
			HeartbeatInterval: time.Second, LocalityDelay: 4 * time.Second,
		})
		s.Start()
		defer s.Close()
		j, _ := s.SubmitJob("j")
		// n1 is tied up by a long task; the second task prefers n1 with
		// n2 secondary, so it should land on n2 after ~2s, not wait 4s+.
		var secondNode string
		results := j.RunTasks([]TaskSpec{
			{PreferredNodes: []string{"n1"}, Run: func(string) { v.Sleep(30 * time.Second) }},
			{PreferredNodes: []string{"n1"}, SecondaryNodes: []string{"n2"},
				Run: func(node string) { secondNode = node }},
		})
		_ = results
		if secondNode != "n2" {
			t.Errorf("secondary task ran on %q", secondNode)
		}
	})
}

func TestMaxAssignPerHeartbeatSpreadsBurst(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := New(v, Config{
			Nodes: []string{"n1", "n2"}, SlotsPerNode: 10,
			HeartbeatInterval: time.Second, MaxAssignPerHeartbeat: 2,
		})
		s.Start()
		defer s.Close()
		j, _ := s.SubmitJob("burst")
		// 8 long tasks with no preference: the first heartbeat may hand a
		// node at most 2, so the burst spreads across both nodes.
		tasks := make([]TaskSpec, 8)
		for i := range tasks {
			tasks[i] = TaskSpec{Run: func(string) { v.Sleep(30 * time.Second) }}
		}
		results := j.RunTasks(tasks)
		byNode := map[string]int{}
		for _, r := range results {
			byNode[r.Node]++
		}
		if byNode["n1"] != 4 || byNode["n2"] != 4 {
			t.Errorf("burst not spread: %v", byNode)
		}
	})
}

func TestRunTasksEmpty(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1"}, 1, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("j")
		if got := j.RunTasks(nil); got != nil {
			t.Errorf("RunTasks(nil) = %v", got)
		}
	})
}

func TestResultsAccessor(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		s := newRunning(v, []string{"n1"}, 2, time.Second)
		defer s.Close()
		j, _ := s.SubmitJob("j")
		j.RunTasks([]TaskSpec{{Run: func(string) {}}, {Run: func(string) {}}})
		if got := len(j.Results()); got != 2 {
			t.Errorf("Results = %d", got)
		}
		if j.ID() != "j" || j.SubmitTime().IsZero() {
			t.Error("job accessors broken")
		}
	})
}
