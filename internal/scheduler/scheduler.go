// Package scheduler implements a Yarn-like cluster resource manager: a
// FIFO job/task queue, per-node execution slots, and heartbeat-driven
// assignment.
//
// The scheduler is where a job's lead-time comes from (paper §II-C):
// tasks wait in the queue for slots, and assignment only happens on node
// heartbeats (Hadoop's default interval is 3 s). Ignem exploits exactly
// this window to migrate inputs before the tasks start reading.
//
// It also answers the Ignem slaves' liveness queries (IsActive), which is
// how reference lists of dead jobs get cleaned.
package scheduler

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// TaskSpec describes one schedulable task.
type TaskSpec struct {
	// Name labels the task in metrics.
	Name string
	// PreferredNodes requests locality (input replica or migrated-copy
	// locations). Empty means any node.
	PreferredNodes []string
	// SecondaryNodes is a weaker preference tier: nodes acceptable when
	// no PreferredNodes slot frees up (e.g. the other replica holders
	// when Ignem assigned a specific one).
	SecondaryNodes []string
	// Run executes the task body on the node it was assigned to. It runs
	// on a simulation goroutine and may block on clock-aware waits.
	Run func(node string)
}

// TaskResult reports completion of one task.
type TaskResult struct {
	Name      string
	Node      string
	QueueTime time.Duration // submit → slot assignment (lead-time spent queued)
	RunTime   time.Duration
	// NodeLocal reports whether the task ran on one of its preferred
	// nodes.
	NodeLocal bool
}

// Config tunes the scheduler.
type Config struct {
	// Nodes lists the worker node addresses (the datanode addresses, so
	// locality preferences line up).
	Nodes []string
	// SlotsPerNode is the number of concurrent tasks per node.
	// Default 10 (the paper's Google-trace average).
	SlotsPerNode int
	// HeartbeatInterval is the node heartbeat period that gates task
	// assignment. Default 3s (Hadoop's default).
	HeartbeatInterval time.Duration
	// LocalityDelay is how long a task with locality preferences waits
	// in the queue before a non-preferred node may take it (delay
	// scheduling). Default: two heartbeat intervals, so every preferred
	// node gets at least one full heartbeat's chance first.
	LocalityDelay time.Duration
	// MaxAssignPerHeartbeat caps how many tasks one node may be handed
	// per heartbeat, spreading a burst of tasks across nodes instead of
	// flooding the first node that reports in. Default 3.
	MaxAssignPerHeartbeat int
}

func (c *Config) setDefaults() {
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 10
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.LocalityDelay <= 0 {
		c.LocalityDelay = 2 * c.HeartbeatInterval
	}
	if c.MaxAssignPerHeartbeat <= 0 {
		c.MaxAssignPerHeartbeat = 3
	}
}

type task struct {
	spec      TaskSpec
	job       *Job
	submitted time.Time
	seq       uint64
}

type node struct {
	addr      string
	freeSlots int
}

// Scheduler is the cluster resource manager.
type Scheduler struct {
	clock simclock.Clock
	cfg   Config

	mu      sync.Mutex
	queue   []*task
	nodes   []*node
	jobs    map[dfs.JobID]*Job
	nextSeq uint64
	closed  bool
}

// New creates a scheduler (not yet running).
func New(clock simclock.Clock, cfg Config) *Scheduler {
	cfg.setDefaults()
	s := &Scheduler{
		clock: clock,
		cfg:   cfg,
		jobs:  make(map[dfs.JobID]*Job),
	}
	for _, addr := range cfg.Nodes {
		s.nodes = append(s.nodes, &node{addr: addr, freeSlots: cfg.SlotsPerNode})
	}
	return s
}

// Start launches the per-node heartbeat loops, staggered across the
// heartbeat interval like real node managers.
func (s *Scheduler) Start() {
	for i, n := range s.nodes {
		n := n
		offset := time.Duration(i) * s.cfg.HeartbeatInterval / time.Duration(len(s.nodes))
		s.clock.Go(func() {
			s.clock.Sleep(offset)
			s.heartbeatLoop(n)
		})
	}
}

// Close stops the heartbeat loops. Queued tasks are dropped; running
// tasks finish; stages blocked in RunTasks are released.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.queue = nil
	for _, j := range s.jobs {
		if j.pending > 0 {
			j.pending = 0
			j.done.Broadcast()
		}
	}
}

// SubmitJob registers a job and returns its handle. The job is "active"
// for liveness purposes until Complete or Kill.
func (s *Scheduler) SubmitJob(id dfs.JobID) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[id]; dup {
		return nil, fmt.Errorf("scheduler: job %s already submitted", id)
	}
	j := &Job{id: id, sched: s, submitted: s.clock.Now()}
	j.done = simclock.NewCond(s.clock, &s.mu)
	s.jobs[id] = j
	return j, nil
}

// IsActive implements the Ignem slaves' liveness query.
func (s *Scheduler) IsActive(job dfs.JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	return ok && !j.finished
}

// QueueLen reports the number of queued (unassigned) tasks.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// heartbeatLoop assigns queued tasks to n's free slots once per interval.
func (s *Scheduler) heartbeatLoop(n *node) {
	for {
		s.clock.Sleep(s.cfg.HeartbeatInterval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := s.clock.Now()
		var launch []*task
		for n.freeSlots > 0 && len(launch) < s.cfg.MaxAssignPerHeartbeat {
			t := s.takeTaskLocked(n.addr, now)
			if t == nil {
				break
			}
			n.freeSlots--
			launch = append(launch, t)
		}
		s.mu.Unlock()
		for _, t := range launch {
			t := t
			s.clock.Go(func() { s.runTask(n, t, now) })
		}
	}
}

// takeTaskLocked pops the best task for node addr. Candidates are
// filtered in three locality tiers (preferred node, secondary node after
// half the locality delay, then anyone after the full delay); within a
// tier, fair sharing picks the candidate whose job has the fewest
// running tasks (FIFO as tie-break), so a one-task job is not starved
// behind a 400-task job's burst.
func (s *Scheduler) takeTaskLocked(addr string, now time.Time) *task {
	pick := s.pickFairLocked(func(t *task) bool {
		return contains(t.spec.PreferredNodes, addr)
	})
	if pick < 0 {
		pick = s.pickFairLocked(func(t *task) bool {
			return contains(t.spec.SecondaryNodes, addr) && now.Sub(t.submitted) >= s.cfg.LocalityDelay/2
		})
	}
	if pick < 0 {
		pick = s.pickFairLocked(func(t *task) bool {
			return (len(t.spec.PreferredNodes) == 0 && len(t.spec.SecondaryNodes) == 0) ||
				now.Sub(t.submitted) >= s.cfg.LocalityDelay
		})
	}
	if pick < 0 {
		return nil
	}
	t := s.queue[pick]
	s.queue = append(s.queue[:pick], s.queue[pick+1:]...)
	t.job.running++
	return t
}

// pickFairLocked returns the index of the eligible task whose job has
// the fewest running tasks, preferring earlier submission on ties.
func (s *Scheduler) pickFairLocked(eligible func(*task) bool) int {
	pick := -1
	best := 0
	for i, t := range s.queue {
		if !eligible(t) {
			continue
		}
		if pick < 0 || t.job.running < best {
			pick = i
			best = t.job.running
		}
	}
	return pick
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func (s *Scheduler) runTask(n *node, t *task, assigned time.Time) {
	t.spec.Run(n.addr)
	finished := s.clock.Now()

	local := contains(t.spec.PreferredNodes, n.addr) || contains(t.spec.SecondaryNodes, n.addr)
	res := TaskResult{
		Name:      t.spec.Name,
		Node:      n.addr,
		QueueTime: assigned.Sub(t.submitted),
		RunTime:   finished.Sub(assigned),
		NodeLocal: local,
	}
	s.mu.Lock()
	n.freeSlots++
	j := t.job
	j.running--
	j.results = append(j.results, res)
	j.pending--
	if j.pending == 0 {
		j.done.Broadcast()
	}
	// Container reuse (Tez-style): the freed slot immediately pulls the
	// next eligible task instead of idling until the node's heartbeat.
	var next *task
	if !s.closed {
		if next = s.takeTaskLocked(n.addr, finished); next != nil {
			n.freeSlots--
		}
	}
	s.mu.Unlock()
	if next != nil {
		s.clock.Go(func() { s.runTask(n, next, finished) })
	}
}

// Job is a handle for a submitted job.
type Job struct {
	id        dfs.JobID
	sched     *Scheduler
	submitted time.Time

	// guarded by sched.mu
	pending  int
	running  int
	results  []TaskResult
	finished bool
	done     *simclock.Cond
}

// ID returns the job's ID.
func (j *Job) ID() dfs.JobID { return j.id }

// SubmitTime returns when the job was submitted.
func (j *Job) SubmitTime() time.Time { return j.submitted }

// RunTasks enqueues tasks and blocks until all of them complete. It may
// be called multiple times (once per stage).
func (j *Job) RunTasks(tasks []TaskSpec) []TaskResult {
	if len(tasks) == 0 {
		return nil
	}
	s := j.sched
	s.mu.Lock()
	if s.closed || j.finished {
		s.mu.Unlock()
		return nil
	}
	now := s.clock.Now()
	first := len(j.results)
	j.pending += len(tasks)
	for i := range tasks {
		s.nextSeq++
		s.queue = append(s.queue, &task{spec: tasks[i], job: j, submitted: now, seq: s.nextSeq})
	}
	for j.pending > 0 {
		j.done.Wait()
	}
	out := make([]TaskResult, len(j.results)-first)
	copy(out, j.results[first:])
	s.mu.Unlock()
	return out
}

// Complete marks the job finished; liveness queries then report it dead.
func (j *Job) Complete() {
	s := j.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = true
}

// Kill simulates a job dying without completing its lifecycle (no evict
// call): it is removed from the active set, which the Ignem cleanup
// sweep will eventually observe.
func (j *Job) Kill() { j.Complete() }

// Results returns all task results so far.
func (j *Job) Results() []TaskResult {
	s := j.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TaskResult, len(j.results))
	copy(out, j.results)
	return out
}
