package namenode

import (
	"sort"
	"sync"

	"repro/internal/dfs"
)

// Compact block-map building blocks. The block map is the NameNode's
// dominant heap consumer: one entry per block, two replica-location sets
// per entry. The historical representation — map[string]struct{} per
// set — costs two map headers, their buckets, and a copy of every
// datanode address string per block. At a million blocks that is
// hundreds of megabytes of pure bookkeeping.
//
// Instead, datanode addresses are interned once into a process-wide
// table (a datanode population is small and append-only), and each
// block's replica and pin sets hold sorted 4-byte node IDs, inline up
// to the default replication factor of 3 ("sorted replica triples"),
// spilling to a slice only for over-replicated blocks. A blockMeta is
// one flat allocation.

// nodeID is the dense index of a datanode address in a nodeTable.
type nodeID uint32

// nodeTable interns datanode addresses. IDs are dense indices into
// addrs, assigned in first-seen order and never reused — a dead
// datanode's entry stays (the population is bounded), which keeps every
// nodeID held by a nodeSet valid forever.
type nodeTable struct {
	mu    sync.RWMutex
	ids   map[string]nodeID
	addrs []string
}

func newNodeTable() *nodeTable {
	return &nodeTable{ids: make(map[string]nodeID)}
}

// intern returns addr's ID, assigning one on first sight.
func (t *nodeTable) intern(addr string) nodeID {
	t.mu.RLock()
	id, ok := t.ids[addr]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[addr]; ok {
		return id
	}
	id = nodeID(len(t.addrs))
	t.addrs = append(t.addrs, addr)
	t.ids[addr] = id
	return id
}

// lookup returns addr's ID without assigning one.
func (t *nodeTable) lookup(addr string) (nodeID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[addr]
	return id, ok
}

// addrsView snapshots the ID→address mapping. The returned slice is
// immutable for every index that existed at capture time (entries are
// append-only), so callers may index it freely without further locking;
// any nodeID read from a nodeSet was interned before the capture.
func (t *nodeTable) addrsView() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.addrs
}

// nodeSetInline is how many members a nodeSet holds without a separate
// allocation — the default replication factor, so the common case (a
// fully replicated, not over-replicated block) stays flat.
const nodeSetInline = 3

// nodeSet is a small sorted set of node IDs. Up to nodeSetInline
// members live in the inline array; beyond that all members move to the
// spill slice (exactly one of the two representations is active). The
// spill slice is held behind a pointer: over-replication is transient
// and rare, and the indirection keeps the embedded set at 24 bytes,
// which is what holds blockMeta in the 48-byte allocation class.
// Guarded by the owning block table's lock, like the rest of blockMeta.
type nodeSet struct {
	n      uint16
	inline [nodeSetInline]nodeID
	spill  *[]nodeID
}

func (s *nodeSet) len() int { return int(s.n) }

// view returns the sorted members, borrowed: valid only until the next
// mutation, never to be modified by the caller.
func (s *nodeSet) view() []nodeID {
	if s.spill != nil {
		return *s.spill
	}
	return s.inline[:s.n]
}

func (s *nodeSet) contains(id nodeID) bool {
	v := s.view()
	// Inline sets are ≤3 long; a linear scan beats binary search there,
	// and spilled sets stay small enough that it hardly matters.
	if len(v) <= nodeSetInline {
		for _, m := range v {
			if m == id {
				return true
			}
		}
		return false
	}
	i := sort.Search(len(v), func(i int) bool { return v[i] >= id })
	return i < len(v) && v[i] == id
}

// add inserts id keeping the set sorted; it reports whether the set
// changed.
func (s *nodeSet) add(id nodeID) bool {
	if s.contains(id) {
		return false
	}
	if s.spill == nil && int(s.n) < nodeSetInline {
		i := int(s.n)
		for i > 0 && s.inline[i-1] > id {
			s.inline[i] = s.inline[i-1]
			i--
		}
		s.inline[i] = id
		s.n++
		return true
	}
	if s.spill == nil {
		sp := append(make([]nodeID, 0, nodeSetInline+1), s.inline[:s.n]...)
		s.spill = &sp
	}
	sp := *s.spill
	i := sort.Search(len(sp), func(i int) bool { return sp[i] >= id })
	sp = append(sp, 0)
	copy(sp[i+1:], sp[i:])
	sp[i] = id
	*s.spill = sp
	s.n++
	return true
}

// remove deletes id; it reports whether the set changed. A spilled set
// shrinking back to the inline capacity returns to the inline
// representation, releasing the spill allocation.
func (s *nodeSet) remove(id nodeID) bool {
	if s.spill != nil {
		sp := *s.spill
		i := sort.Search(len(sp), func(i int) bool { return sp[i] >= id })
		if i >= len(sp) || sp[i] != id {
			return false
		}
		sp = append(sp[:i], sp[i+1:]...)
		s.n--
		if int(s.n) <= nodeSetInline {
			copy(s.inline[:], sp)
			s.spill = nil
		} else {
			*s.spill = sp
		}
		return true
	}
	for i := 0; i < int(s.n); i++ {
		if s.inline[i] == id {
			copy(s.inline[i:], s.inline[i+1:int(s.n)])
			s.n--
			return true
		}
	}
	return false
}

// reset replaces the members with ids (copied, deduplicated, sorted).
func (s *nodeSet) reset(ids []nodeID) {
	*s = nodeSet{}
	for _, id := range ids {
		s.add(id)
	}
}

// pinMap tracks which datanodes hold which blocks pinned in memory. It
// is a sparse side table keyed by block rather than a field on every
// blockMeta: pinned memory is a small fraction of storage (the paper's
// whole premise), so most blocks have no pin state at all and should
// not pay 24 bytes reserving room for it. An entry exists only while
// its set is non-empty. Guarded by the owning block table's lock.
type pinMap map[dfs.BlockID]*nodeSet

// add records that node holds b pinned.
func (p pinMap) add(b dfs.BlockID, node nodeID) {
	s := p[b]
	if s == nil {
		s = new(nodeSet)
		p[b] = s
	}
	s.add(node)
}

// remove drops node's pin on b, releasing the entry when it empties.
func (p pinMap) remove(b dfs.BlockID, node nodeID) {
	if s := p[b]; s != nil {
		if s.remove(node) && s.len() == 0 {
			delete(p, b)
		}
	}
}

// dropNodes drops every pin held by the given (dead) nodes.
func (p pinMap) dropNodes(ids []nodeID) {
	for b, s := range p {
		for _, id := range ids {
			s.remove(id)
		}
		if s.len() == 0 {
			delete(p, b)
		}
	}
}

// view returns b's sorted pin holders, borrowed (nil when unpinned).
func (p pinMap) view(b dfs.BlockID) []nodeID {
	if s := p[b]; s != nil {
		return s.view()
	}
	return nil
}
