package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// equivPlacer is a deterministic placeFunc for driving a Namespace
// without a NameNode: it shuffles a fixed node list with the namespace's
// own rng stream and takes the first rep non-excluded addresses — the
// same shape as the real placeTargets, so every call draws the rng.
func equivPlacer() placeFunc {
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	return func(rng *rand.Rand, rep int, exclude []string) []string {
		cand := append([]string(nil), nodes...)
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		skip := make(map[string]bool, len(exclude))
		for _, e := range exclude {
			skip[e] = true
		}
		var out []string
		for _, n := range cand {
			if len(out) == rep {
				break
			}
			if !skip[n] {
				out = append(out, n)
			}
		}
		return out
	}
}

// transcript records every Namespace result in a normalized textual
// form, so two implementations can be compared step by step.
type transcript struct {
	lines []string
}

func (tr *transcript) addf(format string, args ...any) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, args...))
}

func (tr *transcript) err(op string, err error) {
	tr.addf("%s err=%v", op, err)
}

func (tr *transcript) located(op string, lbs []dfs.LocatedBlock, err error) {
	tr.err(op, err)
	for _, lb := range lbs {
		tr.addf("  block=%d size=%d off=%d nodes=%v", lb.Block.ID, lb.Block.Size, lb.Offset, lb.Nodes)
	}
}

func (tr *transcript) resolved(op string, rbs []resolvedBlock, err error) {
	tr.err(op, err)
	for _, rb := range rbs {
		nodes := append([]string(nil), rb.nodes...)
		pinned := append([]string(nil), rb.pinned...)
		sort.Strings(nodes)
		sort.Strings(pinned)
		tr.addf("  block=%d size=%d off=%d nodes=%v pinned=%v", rb.block.ID, rb.block.Size, rb.offset, nodes, pinned)
	}
}

// driveNamespace runs a fixed metadata workload — creates, single and
// batched allocations, idempotent replays, retarget, seal, lookups,
// reconcile, pin deltas, repair, delete — and returns the normalized
// transcript of every result.
func driveNamespace(ns Namespace) []string {
	tr := &transcript{}
	tr.addf("shards=%d", ns.Shards())

	tr.err("create /a/x", ns.Create("/a/x", 1<<20, 2))
	tr.err("create /a/y", ns.Create("/a/y", 1<<20, 2))
	tr.err("create /b/z", ns.Create("/b/z", 1<<20, 3))
	tr.err("create dup /a/x", ns.Create("/a/x", 1<<20, 2))

	lbs, err := ns.Allocate("/a/x", []int64{1 << 20}, nil, nil, 1, false)
	tr.located("alloc /a/x 1", lbs, err)
	lbs, err = ns.Allocate("/a/x", []int64{1 << 20, 1 << 19}, nil, nil, 2, true)
	tr.located("alloc /a/x batch", lbs, err)
	// A replay of the latest request ID with the same shape must return
	// the cached result without drawing the rng again.
	lbs, err = ns.Allocate("/a/x", []int64{1 << 20, 1 << 19}, nil, nil, 2, true)
	tr.located("alloc /a/x batch replay", lbs, err)
	lbs, err = ns.Allocate("/b/z", []int64{1 << 20}, nil, []string{"a"}, 3, false)
	tr.located("alloc /b/z exclude=a", lbs, err)
	_, err = ns.Allocate("/missing", []int64{1}, nil, nil, 0, false)
	tr.err("alloc /missing", err)

	first, err := ns.Resolve("/a/x")
	tr.resolved("resolve /a/x", first, err)
	lb, err := ns.Retarget("/a/x", first[0].block.ID, []string{"b"})
	tr.located("retarget /a/x", []dfs.LocatedBlock{lb}, err)

	tr.err("complete /a/x", ns.Complete("/a/x"))
	_, err = ns.Allocate("/a/x", []int64{1}, nil, nil, 4, false)
	tr.err("alloc sealed /a/x", err)

	info, err := ns.Info("/a/x")
	tr.addf("info /a/x = %+v err=%v", info, err)
	_, err = ns.Info("/missing")
	tr.err("info /missing", err)
	for _, f := range ns.List("/") {
		tr.addf("list: %+v", f)
	}
	for _, f := range ns.List("/a/") {
		tr.addf("list /a/: %+v", f)
	}

	// Pin deltas and reconcile against the first file's blocks.
	rbs, err := ns.Resolve("/a/x")
	tr.resolved("resolve /a/x post-retarget", rbs, err)
	var ids []dfs.BlockID
	for _, rb := range rbs {
		ids = append(ids, rb.block.ID)
	}
	ns.PinDeltas("c", ids[:1], nil)
	ns.PinDeltas("c", nil, ids[1:])
	ns.Reconcile("d", ids)
	rbs, err = ns.Resolve("/a/x")
	tr.resolved("resolve /a/x post-pin", rbs, err)
	ns.DropPinned([]string{"c"})
	rbs, err = ns.Resolve("/a/x")
	tr.resolved("resolve /a/x post-drop", rbs, err)

	// Exactly one block under-replicated: strip every holder of block
	// ids[0] except "d" (the reconcile above made "d" a holder of all of
	// /a/x's blocks). Reconcile replaces a node's whole holding set, so
	// rebuild each node's holdings across the live files minus ids[0].
	// Keeping it to a single block matters: a scan over several
	// under-replicated blocks draws the rng in map-iteration order —
	// harmless for the real repair loop, fatal for a line-for-line
	// transcript comparison.
	holdings := map[string][]dfs.BlockID{}
	for _, path := range []string{"/a/x", "/a/y", "/b/z"} {
		rbs, err := ns.Resolve(path)
		if err != nil {
			continue
		}
		for _, rb := range rbs {
			if rb.block.ID == ids[0] {
				continue
			}
			for _, n := range rb.nodes {
				if n != "d" {
					holdings[n] = append(holdings[n], rb.block.ID)
				}
			}
		}
	}
	for _, addr := range []string{"a", "b", "c", "e", "f"} {
		ns.Reconcile(addr, holdings[addr])
	}
	live := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true, "f": true}
	jobs := ns.RepairScan(live)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].block.ID < jobs[j].block.ID })
	for _, j := range jobs {
		tr.addf("repair block=%d source=%s target=%s", j.block.ID, j.source, j.target)
	}
	// While healing, a second scan must not re-issue the same pulls.
	if again := ns.RepairScan(live); len(again) != 0 {
		tr.addf("repair rescan issued %d jobs while healing", len(again))
	}
	for _, j := range jobs {
		ns.RepairDone(j.block.ID, j.target, true)
	}
	rbs, err = ns.Resolve("/a/x")
	tr.resolved("resolve /a/x post-repair", rbs, err)

	work, err := ns.Delete("/a/x")
	tr.err("delete /a/x", err)
	addrs := make([]string, 0, len(work))
	for addr := range work {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		blocks := append([]dfs.BlockID(nil), work[addr]...)
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		tr.addf("  delete work %s: %v", addr, blocks)
	}
	_, err = ns.Delete("/missing")
	tr.err("delete /missing", err)
	for _, f := range ns.List("/") {
		tr.addf("list post-delete: %+v", f)
	}
	return tr.lines
}

// TestShardedSingleShardMatchesUnsharded drives the historical
// single-lock namespace and the sharded namespace at shard count 1
// through an identical workload with the same seed and placer, and
// requires every result — placements, cached replays, repair choices,
// error strings — to match line for line. This is the structural half of
// the bit-identity guarantee; `make determinism` checks it end to end on
// the experiment figures.
func TestShardedSingleShardMatchesUnsharded(t *testing.T) {
	const seed = 42
	mem := driveNamespace(newMemNamespace(seed, equivPlacer()))
	sharded := driveNamespace(newShardedNamespace(1, seed, equivPlacer()))
	if len(mem) != len(sharded) {
		t.Fatalf("transcript length: mem=%d sharded=%d\nmem:\n%s\nsharded:\n%s",
			len(mem), len(sharded), strings.Join(mem, "\n"), strings.Join(sharded, "\n"))
	}
	for i := range mem {
		if mem[i] != sharded[i] {
			t.Errorf("step %d:\n  mem:     %s\n  sharded: %s", i, mem[i], sharded[i])
		}
	}
}

// TestShardedNamespaceWorkloadInvariants drives the sharded namespace at
// several shard counts through the same workload and checks the
// seed-independent invariants hold at every count: same op success/error
// pattern, same block sizes and offsets, same file listing. (Placements
// differ across counts — each shard draws its own rng stream.)
func TestShardedNamespaceWorkloadInvariants(t *testing.T) {
	strip := func(lines []string) []string {
		out := make([]string, 0, len(lines))
		for _, l := range lines {
			if strings.HasPrefix(l, "shards=") {
				continue
			}
			// Normalize away placement- and shard-dependent detail:
			// node sets, repair endpoints, delete work fan-out.
			if i := strings.Index(l, " nodes="); i >= 0 {
				l = l[:i]
			}
			if strings.HasPrefix(l, "repair block=") {
				l = l[:strings.Index(l, " source=")]
			}
			if strings.HasPrefix(l, "  delete work ") {
				continue
			}
			out = append(out, l)
		}
		return out
	}
	base := strip(driveNamespace(newShardedNamespace(1, 42, equivPlacer())))
	for _, shards := range []int{2, 4, 8} {
		got := strip(driveNamespace(newShardedNamespace(shards, 42, equivPlacer())))
		if len(got) != len(base) {
			t.Fatalf("shards=%d: transcript length %d, want %d", shards, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("shards=%d step %d:\n  shards=1: %s\n  shards=%d: %s", shards, i, base[i], shards, got[i])
			}
		}
	}
}

// newShardedHarness is newHarness with a partitioned metadata plane.
func newShardedHarness(t *testing.T, v *simclock.Virtual, datanodes, shards int) *harness {
	t.Helper()
	net := transport.NewInmemNetwork(v)
	nn := New(v, net, Config{Addr: "nn", Seed: 1, HeartbeatExpiry: 5 * time.Second, MetaShards: shards})
	if err := nn.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	h := &harness{v: v, nn: nn}
	for i := 0; i < datanodes; i++ {
		addr := string(rune('a' + i))
		if _, err := nn.handleRegister(dfs.RegisterReq{Addr: addr}); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	return h
}

// TestShardedConcurrentCreateDeleteOpen hammers a 4-shard namespace with
// workers creating, allocating, opening, and deleting files in per-worker
// directories (which hash across shards) while readers list the whole
// namespace. Run under -race this pins the per-shard lock split; the
// final listing checks no create or delete was lost across shards.
func TestShardedConcurrentCreateDeleteOpen(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newShardedHarness(t, v, 4, 4)
		defer h.nn.Close()

		const workers = 8
		const files = 40
		wg := simclock.NewWaitGroup(v)
		for w := 0; w < workers; w++ {
			w := w
			wg.Go(func() {
				for i := 0; i < files; i++ {
					path := fmt.Sprintf("/w%d/f%03d", w, i)
					if _, err := h.nn.handleCreate(dfs.CreateReq{Path: path, Replication: 2}); err != nil {
						t.Errorf("create %s: %v", path, err)
						return
					}
					if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: path, Size: 1 << 20}); err != nil {
						t.Errorf("addBlock %s: %v", path, err)
						return
					}
					if _, err := h.nn.handleGetInfo(dfs.GetInfoReq{Path: path}); err != nil {
						t.Errorf("getInfo %s: %v", path, err)
						return
					}
					if _, err := h.nn.handleGetLocations(dfs.GetLocationsReq{Path: path}); err != nil {
						t.Errorf("getLocations %s: %v", path, err)
						return
					}
					// Every third file is deleted again immediately — the
					// create/delete pair crosses the file shard and every
					// block shard its block landed on.
					if i%3 == 0 {
						if _, err := h.nn.handleDelete(dfs.DeleteReq{Path: path}); err != nil {
							t.Errorf("delete %s: %v", path, err)
							return
						}
					}
					if i%8 == 0 {
						v.Sleep(time.Millisecond)
					}
				}
			})
		}
		// Readers sweep the whole namespace while the writers churn.
		for r := 0; r < 4; r++ {
			wg.Go(func() {
				for i := 0; i < 100; i++ {
					if _, err := h.nn.handleList(dfs.ListReq{Prefix: "/"}); err != nil {
						t.Errorf("list: %v", err)
						return
					}
					v.Sleep(time.Millisecond)
				}
			})
		}
		wg.Wait()

		resp, err := h.nn.handleList(dfs.ListReq{Prefix: "/"})
		if err != nil {
			t.Fatal(err)
		}
		perWorker := files - (files+2)/3
		if len(resp.Files) != workers*perWorker {
			t.Errorf("final namespace holds %d files, want %d", len(resp.Files), workers*perWorker)
		}
	})
}

// TestShardedReadersRaceRegistryTraffic runs the registry/reader storm
// against the 4-shard metadata plane: the registry lock split and the
// storm's consistency invariants must survive sharding unchanged.
func TestShardedReadersRaceRegistryTraffic(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newShardedHarness(t, v, 4, 4)
		defer h.nn.Close()
		registryStorm(t, v, h)
	})
}
