package namenode

import (
	"fmt"
	"testing"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// TestAddBlocksMatchesSerialPlacement pins the determinism contract of
// the batched allocation RPC: with the same seed, one addBlocks call
// produces exactly the block IDs, offsets, and replica targets that the
// equivalent sequence of addBlock calls does.
func TestAddBlocksMatchesSerialPlacement(t *testing.T) {
	sizes := []int64{1 << 20, 1 << 20, 512 << 10, 1 << 20, 1}
	type alloc struct {
		id     dfs.BlockID
		size   int64
		offset int64
		nodes  string
	}
	collect := func(batched bool) []alloc {
		var out []alloc
		run(t, func(v *simclock.Virtual) {
			h := newHarness(t, v, 6)
			defer h.nn.Close()
			if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
				t.Fatal(err)
			}
			var lbs []dfs.LocatedBlock
			if batched {
				resp, err := h.nn.handleAddBlocks(dfs.AddBlocksReq{Path: "/f", Sizes: sizes})
				if err != nil {
					t.Fatal(err)
				}
				lbs = resp.Located
			} else {
				for _, size := range sizes {
					resp, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: size})
					if err != nil {
						t.Fatal(err)
					}
					lbs = append(lbs, resp.Located)
				}
			}
			for _, lb := range lbs {
				out = append(out, alloc{lb.Block.ID, lb.Block.Size, lb.Offset, fmt.Sprint(lb.Nodes)})
			}
		})
		return out
	}
	serial := collect(false)
	batched := collect(true)
	if len(serial) != len(batched) {
		t.Fatalf("allocation counts differ: serial %d, batched %d", len(serial), len(batched))
	}
	for i := range serial {
		if serial[i] != batched[i] {
			t.Errorf("block %d: serial %+v, batched %+v", i, serial[i], batched[i])
		}
	}
}

// TestAddBlocksValidation covers the batched RPC's error cases: the
// whole request is validated before any block is allocated, so a bad
// batch leaves the file untouched.
func TestAddBlocksValidation(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 1}); err != nil {
			t.Fatal(err)
		}
		bad := []struct {
			name string
			req  dfs.AddBlocksReq
		}{
			{"no_sizes", dfs.AddBlocksReq{Path: "/f"}},
			{"unknown_path", dfs.AddBlocksReq{Path: "/nope", Sizes: []int64{1}}},
			{"zero_size", dfs.AddBlocksReq{Path: "/f", Sizes: []int64{1024, 0}}},
			{"negative_size", dfs.AddBlocksReq{Path: "/f", Sizes: []int64{-1}}},
			{"oversized", dfs.AddBlocksReq{Path: "/f", Sizes: []int64{1024, dfs.DefaultBlockSize + 1}}},
		}
		for _, tc := range bad {
			if _, err := h.nn.handleAddBlocks(tc.req); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		}
		// No partial allocation leaked out of the rejected batches.
		lbs, err := h.nn.Resolve("/f")
		if err != nil {
			t.Fatal(err)
		}
		if len(lbs) != 0 {
			t.Fatalf("rejected batches allocated %d blocks", len(lbs))
		}

		// A sealed file refuses batched allocation like it refuses addBlock.
		if _, err := h.nn.handleComplete(dfs.CompleteReq{Path: "/f"}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.nn.handleAddBlocks(dfs.AddBlocksReq{Path: "/f", Sizes: []int64{1024}}); err == nil {
			t.Error("addBlocks on sealed file accepted")
		}
	})
}
