package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dfs"
)

// memNamespace is the historical unsharded namespace: one lock over the
// file table and block map, one seeded placement rng. It is the
// reference implementation the sharded plane is measured against —
// shardedNamespace at shard count 1 must be operation-for-operation
// equivalent, including the placement rng draws.
type memNamespace struct {
	place placeFunc
	// table interns datanode addresses for the compact block map.
	table *nodeTable

	// mu guards the namespace: files, blocks (and each blockMeta's
	// contents), and nextBlock. Metadata lookups (Info, Resolve, List)
	// take it in read mode so they never contend with each other.
	mu     sync.RWMutex
	files  map[string]*fileEntry
	blocks map[dfs.BlockID]*blockMeta
	pins   pinMap
	// ssd mirrors pins for the flash tier: which datanodes hold which
	// blocks SSD-resident. Same sparse side-table reasoning.
	ssd pinMap
	// sums is the sparse write-time checksum map. A side map, not a
	// blockMeta field: most experiment blocks are synthetic and
	// unchecksummed, and blockMeta's flat size class is budget-gated.
	sums      map[dfs.BlockID]uint32
	nextBlock dfs.BlockID

	// rngMu guards the placement rng. It is a leaf lock: nothing else is
	// acquired while holding it except what placeFunc takes (the
	// registry lock, briefly, in read mode).
	rngMu sync.Mutex
	rng   *rand.Rand
}

func newMemNamespace(seed int64, place placeFunc) *memNamespace {
	return &memNamespace{
		place:  place,
		table:  newNodeTable(),
		files:  make(map[string]*fileEntry),
		blocks: make(map[dfs.BlockID]*blockMeta),
		pins:   make(pinMap),
		ssd:    make(pinMap),
		sums:   make(map[dfs.BlockID]uint32),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (ns *memNamespace) Shards() int { return 1 }

func (ns *memNamespace) Create(path string, blockSize int64, replication int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[path]; ok {
		return fmt.Errorf("namenode: %s already exists", path)
	}
	ns.files[path] = &fileEntry{info: dfs.FileInfo{
		Path: path, BlockSize: blockSize, Replication: replication,
	}}
	return nil
}

func (ns *memNamespace) Allocate(path string, sizes []int64, sums []uint32, exclude []string, reqID uint64, batch bool) ([]dfs.LocatedBlock, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, err := openFile(ns.files, path, sizes)
	if err != nil {
		return nil, err
	}
	if cached, ok := cachedAlloc(f, reqID, batch); ok {
		return cached, nil
	}
	out := make([]dfs.LocatedBlock, 0, len(sizes))
	for i, size := range sizes {
		lb, err := ns.allocateBlockLocked(f, size, sumAt(sums, i), exclude)
		if err != nil {
			return nil, err
		}
		out = append(out, lb)
	}
	rememberAlloc(f, reqID, batch, out)
	return out, nil
}

// allocateBlockLocked appends one block to f with freshly chosen replica
// targets. Called with mu held.
func (ns *memNamespace) allocateBlockLocked(f *fileEntry, size int64, sum uint32, exclude []string) (dfs.LocatedBlock, error) {
	targets := ns.chooseTargets(f.info.Replication, exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	ns.nextBlock++
	b := dfs.Block{ID: ns.nextBlock, Size: size}
	meta := newBlockMeta(ns.table, size, f.info.Replication, targets)
	ns.blocks[b.ID] = meta
	if sum != 0 {
		ns.sums[b.ID] = sum
	}
	offset := f.info.Size
	f.blocks = append(f.blocks, b)
	f.info.Size += size
	return dfs.LocatedBlock{Block: b, Offset: offset, Checksum: sum, Nodes: targets}, nil
}

func (ns *memNamespace) chooseTargets(rep int, exclude []string) []string {
	ns.rngMu.Lock()
	defer ns.rngMu.Unlock()
	return ns.place(ns.rng, rep, exclude)
}

func (ns *memNamespace) Retarget(path string, block dfs.BlockID, exclude []string) (dfs.LocatedBlock, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no such file %s", path)
	}
	blk, offset, found := findBlock(f, block)
	if !found {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d not in %s", block, path)
	}
	meta := ns.blocks[block]
	if meta == nil {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d has no metadata", block)
	}
	targets := ns.chooseTargets(int(meta.want), exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	meta.nodes.reset(internAll(ns.table, targets))
	return dfs.LocatedBlock{Block: blk, Offset: offset, Checksum: ns.sums[block], Nodes: targets}, nil
}

func (ns *memNamespace) Complete(path string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return fmt.Errorf("namenode: no such file %s", path)
	}
	f.info.Complete = true
	return nil
}

func (ns *memNamespace) Info(path string) (dfs.FileInfo, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	f, ok := ns.files[path]
	if !ok {
		return dfs.FileInfo{}, fmt.Errorf("namenode: no such file %s", path)
	}
	return f.info, nil
}

func (ns *memNamespace) Delete(path string) (map[string][]dfs.BlockID, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	delete(ns.files, path)
	toDelete := make(map[string][]dfs.BlockID)
	addrs := ns.table.addrsView()
	for _, b := range f.blocks {
		if meta := ns.blocks[b.ID]; meta != nil {
			for _, id := range meta.nodes.view() {
				toDelete[addrs[id]] = append(toDelete[addrs[id]], b.ID)
			}
		}
		delete(ns.blocks, b.ID)
		delete(ns.pins, b.ID)
		delete(ns.ssd, b.ID)
		delete(ns.sums, b.ID)
	}
	return toDelete, nil
}

func (ns *memNamespace) List(prefix string) []dfs.FileInfo {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	var out []dfs.FileInfo
	for path, f := range ns.files {
		if len(path) >= len(prefix) && path[:len(prefix)] == prefix {
			out = append(out, f.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (ns *memNamespace) Resolve(path string) ([]resolvedBlock, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	f, ok := ns.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	out := make([]resolvedBlock, 0, len(f.blocks))
	var offset int64
	addrs := ns.table.addrsView()
	for _, b := range f.blocks {
		rb := resolvedBlock{block: b, offset: offset, checksum: ns.sums[b.ID]}
		if meta := ns.blocks[b.ID]; meta != nil {
			rb.nodes = addrSlice(addrs, &meta.nodes)
			rb.pinned = idAddrs(addrs, ns.pins.view(b.ID))
			rb.onSSD = idAddrs(addrs, ns.ssd.view(b.ID))
		}
		offset += b.Size
		out = append(out, rb)
	}
	return out, nil
}

func (ns *memNamespace) Reconcile(addr string, held []dfs.BlockID) {
	id := ns.table.intern(addr)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	reconcileBlocks(ns.blocks, ns.pins, ns.ssd, id, held)
}

func (ns *memNamespace) ApplyReplicaDeltas(addr string, added, removed []dfs.BlockID) {
	id := ns.table.intern(addr)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	applyReplicaDeltas(ns.blocks, ns.pins, ns.ssd, id, added, removed)
}

func (ns *memNamespace) PinDeltas(addr string, pinned, unpinned []dfs.BlockID) {
	id := ns.table.intern(addr)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, b := range pinned {
		if _, ok := ns.blocks[b]; ok {
			ns.pins.add(b, id)
		}
	}
	for _, b := range unpinned {
		ns.pins.remove(b, id)
	}
}

func (ns *memNamespace) SSDDeltas(addr string, pinned, unpinned []dfs.BlockID) {
	id := ns.table.intern(addr)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, b := range pinned {
		if _, ok := ns.blocks[b]; ok {
			ns.ssd.add(b, id)
		}
	}
	for _, b := range unpinned {
		ns.ssd.remove(b, id)
	}
}

func (ns *memNamespace) FastTierHolders(block dfs.BlockID) (ram, ssd []string) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	addrs := ns.table.addrsView()
	return idAddrs(addrs, ns.pins.view(block)), idAddrs(addrs, ns.ssd.view(block))
}

func (ns *memNamespace) DropPinned(addrs []string) {
	ids := lookupAll(ns.table, addrs)
	if len(ids) == 0 {
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.pins.dropNodes(ids)
	ns.ssd.dropNodes(ids)
}

func (ns *memNamespace) RepairScan(live map[string]bool) []repairJob {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return scanShardForRepair(ns.blocks, ns.table, live, &ns.rngMu, ns.rng)
}

func (ns *memNamespace) RepairDone(block dfs.BlockID, target string, ok bool) {
	id := ns.table.intern(target)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	repairDone(ns.blocks, block, id, ok)
}

// ---- logic shared by both namespace implementations ----

// openFile looks up an open (unsealed) file and validates the proposed
// block sizes against its block size. Called with the owning lock held.
func openFile(files map[string]*fileEntry, path string, sizes []int64) (*fileEntry, error) {
	f, ok := files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	if f.info.Complete {
		return nil, fmt.Errorf("namenode: %s is sealed", path)
	}
	for _, size := range sizes {
		if size <= 0 || size > f.info.BlockSize {
			return nil, fmt.Errorf("namenode: bad block size %d (file block size %d)", size, f.info.BlockSize)
		}
	}
	return f, nil
}

// cachedAlloc checks the file's one-deep idempotent allocation cache.
func cachedAlloc(f *fileEntry, reqID uint64, batch bool) ([]dfs.LocatedBlock, bool) {
	if reqID != 0 && reqID == f.lastAllocID && batch == f.lastAllocBatch {
		return f.lastAlloc, true
	}
	return nil, false
}

func rememberAlloc(f *fileEntry, reqID uint64, batch bool, out []dfs.LocatedBlock) {
	if reqID != 0 {
		f.lastAllocID, f.lastAllocBatch, f.lastAlloc = reqID, batch, out
	}
}

// sumAt indexes an optional checksum slice: nil (or short) means
// unchecksummed.
func sumAt(sums []uint32, i int) uint32 {
	if i < len(sums) {
		return sums[i]
	}
	return 0
}

// findBlock locates a block in a file's block list, returning its copy
// and byte offset.
func findBlock(f *fileEntry, id dfs.BlockID) (dfs.Block, int64, bool) {
	var offset int64
	for _, b := range f.blocks {
		if b.ID == id {
			return b, offset, true
		}
		offset += b.Size
	}
	return dfs.Block{}, 0, false
}

// newBlockMeta builds a block-map entry with the given replica targets
// interned through t.
func newBlockMeta(t *nodeTable, size int64, want int, targets []string) *blockMeta {
	meta := &blockMeta{size: size, want: uint16(want)}
	meta.nodes.reset(internAll(t, targets))
	return meta
}

// internAll interns a target list, preserving order.
func internAll(t *nodeTable, addrs []string) []nodeID {
	out := make([]nodeID, len(addrs))
	for i, a := range addrs {
		out[i] = t.intern(a)
	}
	return out
}

// lookupAll resolves already-interned addresses, skipping unknown ones
// (an address the table never saw cannot appear in any nodeSet).
func lookupAll(t *nodeTable, addrs []string) []nodeID {
	out := make([]nodeID, 0, len(addrs))
	for _, a := range addrs {
		if id, ok := t.lookup(a); ok {
			out = append(out, id)
		}
	}
	return out
}

// addrSlice maps a nodeSet back to address strings through an
// addrsView snapshot.
func addrSlice(addrs []string, set *nodeSet) []string {
	return idAddrs(addrs, set.view())
}

// idAddrs maps node IDs back to address strings through an addrsView
// snapshot.
func idAddrs(addrs []string, ids []nodeID) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, addrs[id])
	}
	return out
}

// reconcileBlocks makes one block table agree with a datanode's actual
// replica inventory: entries it no longer holds are dropped; entries it
// holds (for blocks the namespace still knows) are added back. Called
// with the table's lock held.
func reconcileBlocks(blocks map[dfs.BlockID]*blockMeta, pins, ssd pinMap, node nodeID, held []dfs.BlockID) {
	holds := make(map[dfs.BlockID]struct{}, len(held))
	for _, id := range held {
		holds[id] = struct{}{}
	}
	for id, meta := range blocks {
		if _, ok := holds[id]; ok {
			meta.nodes.add(node)
		} else {
			meta.nodes.remove(node)
			pins.remove(id, node)
			ssd.remove(id, node)
		}
	}
}

// applyReplicaDeltas applies an incremental report to one block table:
// O(delta), never a full-table scan. A removed replica also drops the
// node's pin — storage gone means the pinned copy is gone too. Called
// with the table's lock held.
func applyReplicaDeltas(blocks map[dfs.BlockID]*blockMeta, pins, ssd pinMap, node nodeID, added, removed []dfs.BlockID) {
	for _, b := range added {
		if meta := blocks[b]; meta != nil {
			meta.nodes.add(node)
		}
	}
	for _, b := range removed {
		if meta := blocks[b]; meta != nil {
			meta.nodes.remove(node)
			pins.remove(b, node)
			ssd.remove(b, node)
		}
	}
}

// scanShardForRepair finds under-replicated blocks in one block table:
// for each block with fewer live replicas than its file requested, a
// live non-holder is chosen to pull a copy from a surviving holder, and
// the block is marked healing. Called with the table's lock held; takes
// the rng lock per chosen block. Holder and candidate lists are built
// and sorted as address strings, exactly as the historical map-of-maps
// scan did, so the seeded draws are unchanged.
func scanShardForRepair(blocks map[dfs.BlockID]*blockMeta, table *nodeTable, live map[string]bool, rngMu *sync.Mutex, rng *rand.Rand) []repairJob {
	var jobs []repairJob
	addrs := table.addrsView()
	for id, meta := range blocks {
		if meta.healing {
			continue
		}
		var holders []string
		holdsLive := func(addr string) bool {
			nid, ok := table.lookup(addr)
			return ok && meta.nodes.contains(nid)
		}
		for _, nid := range meta.nodes.view() {
			if live[addrs[nid]] {
				holders = append(holders, addrs[nid])
			}
		}
		if len(holders) == 0 || len(holders) >= int(meta.want) {
			continue
		}
		sort.Strings(holders)
		var candidates []string
		for addr, ok := range live {
			if !ok {
				continue
			}
			if !holdsLive(addr) {
				candidates = append(candidates, addr)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rngMu.Lock()
		target := candidates[rng.Intn(len(candidates))]
		source := holders[rng.Intn(len(holders))]
		rngMu.Unlock()
		meta.healing = true
		jobs = append(jobs, repairJob{
			block:  dfs.Block{ID: id, Size: meta.size},
			source: source,
			target: target,
		})
	}
	return jobs
}

// repairDone clears a block's healing mark and records the new holder on
// success. Called with the table's lock held.
func repairDone(blocks map[dfs.BlockID]*blockMeta, block dfs.BlockID, target nodeID, ok bool) {
	meta := blocks[block]
	if meta == nil {
		return
	}
	meta.healing = false
	if ok {
		meta.nodes.add(target)
	}
}
