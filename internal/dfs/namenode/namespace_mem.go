package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dfs"
)

// memNamespace is the historical unsharded namespace: one lock over the
// file table and block map, one seeded placement rng. It is the
// reference implementation the sharded plane is measured against —
// shardedNamespace at shard count 1 must be operation-for-operation
// equivalent, including the placement rng draws.
type memNamespace struct {
	place placeFunc

	// mu guards the namespace: files, blocks (and each blockMeta's
	// contents), and nextBlock. Metadata lookups (Info, Resolve, List)
	// take it in read mode so they never contend with each other.
	mu        sync.RWMutex
	files     map[string]*fileEntry
	blocks    map[dfs.BlockID]*blockMeta
	nextBlock dfs.BlockID

	// rngMu guards the placement rng. It is a leaf lock: nothing else is
	// acquired while holding it except what placeFunc takes (the
	// registry lock, briefly, in read mode).
	rngMu sync.Mutex
	rng   *rand.Rand
}

func newMemNamespace(seed int64, place placeFunc) *memNamespace {
	return &memNamespace{
		place:  place,
		files:  make(map[string]*fileEntry),
		blocks: make(map[dfs.BlockID]*blockMeta),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (ns *memNamespace) Shards() int { return 1 }

func (ns *memNamespace) Create(path string, blockSize int64, replication int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[path]; ok {
		return fmt.Errorf("namenode: %s already exists", path)
	}
	ns.files[path] = &fileEntry{info: dfs.FileInfo{
		Path: path, BlockSize: blockSize, Replication: replication,
	}}
	return nil
}

func (ns *memNamespace) Allocate(path string, sizes []int64, exclude []string, reqID uint64, batch bool) ([]dfs.LocatedBlock, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, err := openFile(ns.files, path, sizes)
	if err != nil {
		return nil, err
	}
	if cached, ok := cachedAlloc(f, reqID, batch); ok {
		return cached, nil
	}
	out := make([]dfs.LocatedBlock, 0, len(sizes))
	for _, size := range sizes {
		lb, err := ns.allocateBlockLocked(f, size, exclude)
		if err != nil {
			return nil, err
		}
		out = append(out, lb)
	}
	rememberAlloc(f, reqID, batch, out)
	return out, nil
}

// allocateBlockLocked appends one block to f with freshly chosen replica
// targets. Called with mu held.
func (ns *memNamespace) allocateBlockLocked(f *fileEntry, size int64, exclude []string) (dfs.LocatedBlock, error) {
	targets := ns.chooseTargets(f.info.Replication, exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	ns.nextBlock++
	b := dfs.Block{ID: ns.nextBlock, Size: size}
	meta := &blockMeta{size: size, want: f.info.Replication, nodes: make(map[string]struct{}), pinned: make(map[string]struct{})}
	for _, t := range targets {
		meta.nodes[t] = struct{}{}
	}
	ns.blocks[b.ID] = meta
	offset := f.info.Size
	f.blocks = append(f.blocks, b)
	f.info.Size += size
	return dfs.LocatedBlock{Block: b, Offset: offset, Nodes: targets}, nil
}

func (ns *memNamespace) chooseTargets(rep int, exclude []string) []string {
	ns.rngMu.Lock()
	defer ns.rngMu.Unlock()
	return ns.place(ns.rng, rep, exclude)
}

func (ns *memNamespace) Retarget(path string, block dfs.BlockID, exclude []string) (dfs.LocatedBlock, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no such file %s", path)
	}
	blk, offset, found := findBlock(f, block)
	if !found {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d not in %s", block, path)
	}
	meta := ns.blocks[block]
	if meta == nil {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d has no metadata", block)
	}
	targets := ns.chooseTargets(meta.want, exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	meta.nodes = make(map[string]struct{}, len(targets))
	for _, t := range targets {
		meta.nodes[t] = struct{}{}
	}
	return dfs.LocatedBlock{Block: blk, Offset: offset, Nodes: targets}, nil
}

func (ns *memNamespace) Complete(path string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return fmt.Errorf("namenode: no such file %s", path)
	}
	f.info.Complete = true
	return nil
}

func (ns *memNamespace) Info(path string) (dfs.FileInfo, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	f, ok := ns.files[path]
	if !ok {
		return dfs.FileInfo{}, fmt.Errorf("namenode: no such file %s", path)
	}
	return f.info, nil
}

func (ns *memNamespace) Delete(path string) (map[string][]dfs.BlockID, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	f, ok := ns.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	delete(ns.files, path)
	toDelete := make(map[string][]dfs.BlockID)
	for _, b := range f.blocks {
		if meta := ns.blocks[b.ID]; meta != nil {
			for addr := range meta.nodes {
				toDelete[addr] = append(toDelete[addr], b.ID)
			}
		}
		delete(ns.blocks, b.ID)
	}
	return toDelete, nil
}

func (ns *memNamespace) List(prefix string) []dfs.FileInfo {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	var out []dfs.FileInfo
	for path, f := range ns.files {
		if len(path) >= len(prefix) && path[:len(prefix)] == prefix {
			out = append(out, f.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (ns *memNamespace) Resolve(path string) ([]resolvedBlock, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	f, ok := ns.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	out := make([]resolvedBlock, 0, len(f.blocks))
	var offset int64
	for _, b := range f.blocks {
		rb := resolvedBlock{block: b, offset: offset}
		if meta := ns.blocks[b.ID]; meta != nil {
			rb.nodes = addrSlice(meta.nodes)
			rb.pinned = addrSlice(meta.pinned)
		}
		offset += b.Size
		out = append(out, rb)
	}
	return out, nil
}

func (ns *memNamespace) Reconcile(addr string, held []dfs.BlockID) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	reconcileBlocks(ns.blocks, addr, held)
}

func (ns *memNamespace) PinDeltas(addr string, pinned, unpinned []dfs.BlockID) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, id := range pinned {
		if meta := ns.blocks[id]; meta != nil {
			meta.pinned[addr] = struct{}{}
		}
	}
	for _, id := range unpinned {
		if meta := ns.blocks[id]; meta != nil {
			delete(meta.pinned, addr)
		}
	}
}

func (ns *memNamespace) DropPinned(addrs []string) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, meta := range ns.blocks {
		for _, addr := range addrs {
			delete(meta.pinned, addr)
		}
	}
}

func (ns *memNamespace) RepairScan(live map[string]bool) []repairJob {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return scanShardForRepair(ns.blocks, live, &ns.rngMu, ns.rng)
}

func (ns *memNamespace) RepairDone(block dfs.BlockID, target string, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	repairDone(ns.blocks, block, target, ok)
}

// ---- logic shared by both namespace implementations ----

// openFile looks up an open (unsealed) file and validates the proposed
// block sizes against its block size. Called with the owning lock held.
func openFile(files map[string]*fileEntry, path string, sizes []int64) (*fileEntry, error) {
	f, ok := files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	if f.info.Complete {
		return nil, fmt.Errorf("namenode: %s is sealed", path)
	}
	for _, size := range sizes {
		if size <= 0 || size > f.info.BlockSize {
			return nil, fmt.Errorf("namenode: bad block size %d (file block size %d)", size, f.info.BlockSize)
		}
	}
	return f, nil
}

// cachedAlloc checks the file's one-deep idempotent allocation cache.
func cachedAlloc(f *fileEntry, reqID uint64, batch bool) ([]dfs.LocatedBlock, bool) {
	if reqID != 0 && reqID == f.lastAllocID && batch == f.lastAllocBatch {
		return f.lastAlloc, true
	}
	return nil, false
}

func rememberAlloc(f *fileEntry, reqID uint64, batch bool, out []dfs.LocatedBlock) {
	if reqID != 0 {
		f.lastAllocID, f.lastAllocBatch, f.lastAlloc = reqID, batch, out
	}
}

// findBlock locates a block in a file's block list, returning its copy
// and byte offset.
func findBlock(f *fileEntry, id dfs.BlockID) (dfs.Block, int64, bool) {
	var offset int64
	for _, b := range f.blocks {
		if b.ID == id {
			return b, offset, true
		}
		offset += b.Size
	}
	return dfs.Block{}, 0, false
}

func addrSlice(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	return out
}

// reconcileBlocks makes one block table agree with a datanode's actual
// replica inventory: entries it no longer holds are dropped; entries it
// holds (for blocks the namespace still knows) are added back. Called
// with the table's lock held.
func reconcileBlocks(blocks map[dfs.BlockID]*blockMeta, addr string, held []dfs.BlockID) {
	holds := make(map[dfs.BlockID]struct{}, len(held))
	for _, id := range held {
		holds[id] = struct{}{}
	}
	for id, meta := range blocks {
		if _, ok := holds[id]; ok {
			meta.nodes[addr] = struct{}{}
		} else {
			delete(meta.nodes, addr)
			delete(meta.pinned, addr)
		}
	}
}

// scanShardForRepair finds under-replicated blocks in one block table:
// for each block with fewer live replicas than its file requested, a
// live non-holder is chosen to pull a copy from a surviving holder, and
// the block is marked healing. Called with the table's lock held; takes
// the rng lock per chosen block.
func scanShardForRepair(blocks map[dfs.BlockID]*blockMeta, live map[string]bool, rngMu *sync.Mutex, rng *rand.Rand) []repairJob {
	var jobs []repairJob
	for id, meta := range blocks {
		if meta.healing {
			continue
		}
		var holders []string
		for addr := range meta.nodes {
			if live[addr] {
				holders = append(holders, addr)
			}
		}
		if len(holders) == 0 || len(holders) >= meta.want {
			continue
		}
		sort.Strings(holders)
		var candidates []string
		for addr, ok := range live {
			if !ok {
				continue
			}
			if _, holds := meta.nodes[addr]; !holds {
				candidates = append(candidates, addr)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rngMu.Lock()
		target := candidates[rng.Intn(len(candidates))]
		source := holders[rng.Intn(len(holders))]
		rngMu.Unlock()
		meta.healing = true
		jobs = append(jobs, repairJob{
			block:  dfs.Block{ID: id, Size: meta.size},
			source: source,
			target: target,
		})
	}
	return jobs
}

// repairDone clears a block's healing mark and records the new holder on
// success. Called with the table's lock held.
func repairDone(blocks map[dfs.BlockID]*blockMeta, block dfs.BlockID, target string, ok bool) {
	meta := blocks[block]
	if meta == nil {
		return
	}
	meta.healing = false
	if ok {
		meta.nodes[target] = struct{}{}
	}
}
