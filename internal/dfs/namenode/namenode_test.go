package namenode

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
	"repro/internal/transport"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// harness drives a namenode directly through its handlers (no datanode
// processes; registration and heartbeats are injected).
type harness struct {
	v  *simclock.Virtual
	nn *NameNode
}

func newHarness(t *testing.T, v *simclock.Virtual, datanodes int) *harness {
	t.Helper()
	net := transport.NewInmemNetwork(v)
	nn := New(v, net, Config{Addr: "nn", Seed: 1, HeartbeatExpiry: 5 * time.Second})
	if err := nn.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	h := &harness{v: v, nn: nn}
	for i := 0; i < datanodes; i++ {
		addr := string(rune('a' + i))
		if _, err := nn.handleRegister(dfs.RegisterReq{Addr: addr}); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	return h
}

func run(t *testing.T, fn func(v *simclock.Virtual)) {
	t.Helper()
	v := simclock.NewVirtual(epoch)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		fn(v)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stalled: %v", v)
	}
}

func (h *harness) mkFile(t *testing.T, path string, blocks int, rep int) []dfs.LocatedBlock {
	t.Helper()
	if _, err := h.nn.handleCreate(dfs.CreateReq{Path: path, Replication: rep}); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < blocks; i++ {
		if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: path, Size: 1 << 20}); err != nil {
			t.Fatalf("addBlock: %v", err)
		}
	}
	if _, err := h.nn.handleComplete(dfs.CompleteReq{Path: path}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	lbs, err := h.nn.Resolve(path)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return lbs
}

func TestNamespaceLifecycle(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3)
		defer h.nn.Close()
		lbs := h.mkFile(t, "/f", 3, 2)
		if len(lbs) != 3 {
			t.Fatalf("blocks = %d", len(lbs))
		}
		for _, lb := range lbs {
			if len(lb.Nodes) != 2 {
				t.Errorf("block %d replicas = %v", lb.Block.ID, lb.Nodes)
			}
		}
		info, err := h.nn.handleGetInfo(dfs.GetInfoReq{Path: "/f"})
		if err != nil || info.Info.Size != 3<<20 || !info.Info.Complete {
			t.Errorf("info = %+v err=%v", info, err)
		}
		// Offsets are cumulative.
		if lbs[1].Offset != 1<<20 || lbs[2].Offset != 2<<20 {
			t.Errorf("offsets wrong: %+v", lbs)
		}
	})
}

func TestCreateValidation(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 1)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: ""}); err == nil {
			t.Error("empty path accepted")
		}
		h.mkFile(t, "/f", 1, 1)
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f"}); err == nil {
			t.Error("duplicate accepted")
		}
		// Sealed file rejects more blocks.
		if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1}); err == nil {
			t.Error("addBlock on sealed file accepted")
		}
		// Oversized block rejected.
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/g", BlockSize: 10}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/g", Size: 11}); err == nil {
			t.Error("oversized block accepted")
		}
		if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/g", Size: 0}); err == nil {
			t.Error("zero block accepted")
		}
	})
}

func TestAddBlockNoDatanodes(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 0)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f"}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1}); err == nil ||
			!strings.Contains(err.Error(), "no live datanodes") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestHeartbeatExpiryRemovesLocations(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 2)
		defer h.nn.Close()
		lbs := h.mkFile(t, "/f", 1, 2)
		if len(lbs[0].Nodes) != 2 {
			t.Fatalf("setup: %v", lbs[0].Nodes)
		}
		// Node "a" keeps heartbeating; node "b" goes silent.
		stop := simclock.NewChan[struct{}](v)
		v.Go(func() {
			for {
				if _, _, timedOut := stop.RecvTimeout(time.Second); !timedOut {
					return
				}
				if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: "a"}); err != nil {
					return
				}
			}
		})
		v.Sleep(8 * time.Second)
		lbs, _ = h.nn.Resolve("/f")
		if len(lbs[0].Nodes) != 1 || lbs[0].Nodes[0] != "a" {
			t.Errorf("locations after expiry = %v", lbs[0].Nodes)
		}
		stop.Send(struct{}{})
	})
}

func TestHeartbeatFromUnregisteredRejected(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 1)
		defer h.nn.Close()
		if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: "ghost"}); err == nil {
			t.Error("unregistered heartbeat accepted")
		}
	})
}

func TestPinStateTracking(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 2)
		defer h.nn.Close()
		lbs := h.mkFile(t, "/f", 1, 2)
		id := lbs[0].Block.ID
		node := lbs[0].Nodes[0]
		if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: node, Pinned: []dfs.BlockID{id}}); err != nil {
			t.Fatal(err)
		}
		lbs, _ = h.nn.Resolve("/f")
		if len(lbs[0].Migrated) != 1 || lbs[0].Migrated[0] != node {
			t.Errorf("Migrated = %v", lbs[0].Migrated)
		}
		if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: node, Unpinned: []dfs.BlockID{id}}); err != nil {
			t.Fatal(err)
		}
		lbs, _ = h.nn.Resolve("/f")
		if len(lbs[0].Migrated) != 0 {
			t.Errorf("Migrated after unpin = %v", lbs[0].Migrated)
		}
	})
}

func TestJobScopedLocationsCarryAssignment(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3)
		defer h.nn.Close()
		h.mkFile(t, "/f", 2, 3)
		// Migration happens through the master, which records assignments.
		// The send fails (no datanode servers running) but assignment
		// state is recorded first.
		_, err := h.nn.handleMigrate(dfs.MigrateReq{Job: "j1", Paths: []string{"/f"}, SubmitTime: v.Now()})
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
		resp, err := h.nn.handleGetLocations(dfs.GetLocationsReq{Path: "/f", Job: "j1"})
		if err != nil {
			t.Fatal(err)
		}
		for _, lb := range resp.Blocks {
			if lb.Assigned == "" {
				t.Errorf("block %d missing assignment", lb.Block.ID)
			}
			found := false
			for _, n := range lb.Nodes {
				if n == lb.Assigned {
					found = true
				}
			}
			if !found {
				t.Errorf("assigned %q not a replica holder %v", lb.Assigned, lb.Nodes)
			}
		}
		// Un-scoped queries carry no assignment.
		resp, _ = h.nn.handleGetLocations(dfs.GetLocationsReq{Path: "/f"})
		for _, lb := range resp.Blocks {
			if lb.Assigned != "" {
				t.Error("assignment leaked into job-less query")
			}
		}
	})
}

func TestListPrefix(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 1)
		defer h.nn.Close()
		h.mkFile(t, "/a/1", 1, 1)
		h.mkFile(t, "/a/2", 1, 1)
		h.mkFile(t, "/b/1", 1, 1)
		resp, err := h.nn.handleList(dfs.ListReq{Prefix: "/a/"})
		if err != nil || len(resp.Files) != 2 {
			t.Errorf("list /a/ = %d files, err %v", len(resp.Files), err)
		}
		// Sorted by path.
		if resp.Files[0].Path != "/a/1" {
			t.Errorf("order: %+v", resp.Files)
		}
		all, _ := h.nn.handleList(dfs.ListReq{})
		if len(all.Files) != 3 {
			t.Errorf("list all = %d", len(all.Files))
		}
	})
}

func TestResolveMissing(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 1)
		defer h.nn.Close()
		if _, err := h.nn.Resolve("/missing"); err == nil {
			t.Error("resolve of missing file succeeded")
		}
		if _, err := h.nn.handleDelete(dfs.DeleteReq{Path: "/missing"}); err == nil {
			t.Error("delete of missing file succeeded")
		}
	})
}

// Property: replica targets are always distinct and never exceed the
// live-node count.
func TestPlacementProperty(t *testing.T) {
	f := func(rep uint8, nodes uint8) bool {
		nNodes := int(nodes%6) + 1
		r := int(rep%5) + 1
		ok := true
		run(t, func(v *simclock.Virtual) {
			h := newHarness(t, v, nNodes)
			defer h.nn.Close()
			lbs := h.mkFile(t, "/f", 4, r)
			want := r
			if want > nNodes {
				want = nNodes
			}
			for _, lb := range lbs {
				if len(lb.Nodes) != want {
					ok = false
				}
				seen := map[string]bool{}
				for _, n := range lb.Nodes {
					if seen[n] {
						ok = false
					}
					seen[n] = true
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRackAwarePlacement(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		net := transport.NewInmemNetwork(v)
		racks := map[string]string{
			"a": "r1", "b": "r1", "c": "r1",
			"d": "r2", "e": "r2", "f": "r2",
		}
		nn := New(v, net, Config{Addr: "nn", Seed: 3, Racks: racks})
		if err := nn.Start(); err != nil {
			t.Fatal(err)
		}
		defer nn.Close()
		for addr := range racks {
			if _, err := nn.handleRegister(dfs.RegisterReq{Addr: addr}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			resp, err := nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			nodes := resp.Located.Nodes
			if len(nodes) != 3 {
				t.Fatalf("replicas = %v", nodes)
			}
			// HDFS policy: replica 2 off replica 1's rack; replica 3 on
			// replica 2's rack.
			if racks[nodes[0]] == racks[nodes[1]] {
				t.Errorf("block %d: first two replicas share rack: %v", i, nodes)
			}
			if racks[nodes[1]] != racks[nodes[2]] {
				t.Errorf("block %d: third replica not with second: %v", i, nodes)
			}
			if nodes[1] == nodes[2] {
				t.Errorf("block %d: duplicate node: %v", i, nodes)
			}
		}
	})
}

func TestRackAwareDegradesGracefully(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		net := transport.NewInmemNetwork(v)
		// Only one rack: the policy falls back to distinct nodes.
		racks := map[string]string{"a": "r1", "b": "r1", "c": "r1"}
		nn := New(v, net, Config{Addr: "nn2", Seed: 3, Racks: racks})
		if err := nn.Start(); err != nil {
			t.Fatal(err)
		}
		defer nn.Close()
		for addr := range racks {
			if _, err := nn.handleRegister(dfs.RegisterReq{Addr: addr}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 3}); err != nil {
			t.Fatal(err)
		}
		resp, err := nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Located.Nodes) != 3 {
			t.Errorf("replicas = %v", resp.Located.Nodes)
		}
		seen := map[string]bool{}
		for _, n := range resp.Located.Nodes {
			if seen[n] {
				t.Errorf("duplicate node: %v", resp.Located.Nodes)
			}
			seen[n] = true
		}
	})
}

// TestConcurrentClientsStress drives the namenode through its real RPC
// surface from many concurrent clients: unique files, unique block IDs,
// consistent metadata.
func TestConcurrentClientsStress(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 4)
		defer h.nn.Close()
		const clients, filesPer = 8, 6
		wg := simclock.NewWaitGroup(v)
		for cidx := 0; cidx < clients; cidx++ {
			cidx := cidx
			wg.Go(func() {
				for f := 0; f < filesPer; f++ {
					path := fmt.Sprintf("/c%d/f%d", cidx, f)
					if _, err := h.nn.handleCreate(dfs.CreateReq{Path: path, Replication: 2}); err != nil {
						t.Errorf("create %s: %v", path, err)
						return
					}
					for b := 0; b < 3; b++ {
						if _, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: path, Size: 1 << 20}); err != nil {
							t.Errorf("addBlock %s: %v", path, err)
							return
						}
						v.Sleep(time.Duration(cidx+1) * time.Millisecond)
					}
					if _, err := h.nn.handleComplete(dfs.CompleteReq{Path: path}); err != nil {
						t.Errorf("complete %s: %v", path, err)
					}
				}
			})
		}
		wg.Wait()

		resp, err := h.nn.handleList(dfs.ListReq{})
		if err != nil || len(resp.Files) != clients*filesPer {
			t.Fatalf("files = %d err %v", len(resp.Files), err)
		}
		// Block IDs are unique across all files.
		seen := map[dfs.BlockID]string{}
		for _, fi := range resp.Files {
			lbs, err := h.nn.Resolve(fi.Path)
			if err != nil {
				t.Fatal(err)
			}
			if len(lbs) != 3 {
				t.Errorf("%s has %d blocks", fi.Path, len(lbs))
			}
			for _, lb := range lbs {
				if prev, dup := seen[lb.Block.ID]; dup {
					t.Errorf("block %d in both %s and %s", lb.Block.ID, prev, fi.Path)
				}
				seen[lb.Block.ID] = fi.Path
			}
		}
	})
}

// TestReadersRaceRegistryTraffic hammers the read hot path (getInfo,
// getLocations, list) from many goroutines while heartbeats with pin
// deltas, block reports, and re-registrations mutate the registry and
// block state underneath. Run under -race this pins the RWMutex split:
// metadata lookups take read locks, registry traffic its own lock.
func TestReadersRaceRegistryTraffic(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 4)
		defer h.nn.Close()
		registryStorm(t, v, h)
	})
}

// registryStorm is the body of TestReadersRaceRegistryTraffic, shared
// with the sharded-namespace variant: the registry split and the storm's
// invariants must hold identically on both metadata planes.
func registryStorm(t *testing.T, v *simclock.Virtual, h *harness) {
	t.Helper()
	initial := h.mkFile(t, "/hot", 4, 2)
	var ids []dfs.BlockID
	for _, lb := range initial {
		ids = append(ids, lb.Block.ID)
	}

	wg := simclock.NewWaitGroup(v)
	// Readers: lookups only.
	for r := 0; r < 8; r++ {
		wg.Go(func() {
			for i := 0; i < 200; i++ {
				if _, err := h.nn.handleGetInfo(dfs.GetInfoReq{Path: "/hot"}); err != nil {
					t.Errorf("getInfo: %v", err)
					return
				}
				if _, err := h.nn.handleGetLocations(dfs.GetLocationsReq{Path: "/hot"}); err != nil {
					t.Errorf("getLocations: %v", err)
					return
				}
				if _, err := h.nn.handleList(dfs.ListReq{Prefix: "/"}); err != nil {
					t.Errorf("list: %v", err)
					return
				}
			}
		})
	}
	// Registry writers: heartbeats flipping pin state, block reports,
	// re-registrations.
	for w := 0; w < 4; w++ {
		addr := string(rune('a' + w))
		wg.Go(func() {
			for i := 0; i < 100; i++ {
				req := dfs.HeartbeatReq{Addr: addr}
				if i%2 == 0 {
					req.Pinned = ids
				} else {
					req.Unpinned = ids
				}
				if _, err := h.nn.handleHeartbeat(req); err != nil {
					t.Errorf("heartbeat: %v", err)
					return
				}
				if i%10 == 0 {
					if _, err := h.nn.handleBlockReport(dfs.BlockReportReq{Addr: addr, Blocks: ids}); err != nil {
						t.Errorf("blockReport: %v", err)
						return
					}
				}
				if i%25 == 0 {
					if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: addr, Blocks: ids}); err != nil {
						t.Errorf("register: %v", err)
						return
					}
				}
				v.Sleep(time.Millisecond)
			}
		})
	}
	// Namespace writers: new files appearing during the storm.
	wg.Go(func() {
		for i := 0; i < 50; i++ {
			h.mkFile(t, fmt.Sprintf("/new%d", i), 1, 2)
			v.Sleep(2 * time.Millisecond)
		}
	})
	wg.Wait()

	// The storm settles into a consistent view: every node's last
	// block report claimed all of /hot's blocks, so each block ends
	// with all four locations.
	lbs, err := h.nn.Resolve("/hot")
	if err != nil {
		t.Fatal(err)
	}
	for _, lb := range lbs {
		if len(lb.Nodes) != 4 {
			t.Errorf("block %d ended with %d locations, want 4", lb.Block.ID, len(lb.Nodes))
		}
	}
	files, err := h.nn.handleList(dfs.ListReq{Prefix: "/new"})
	if err != nil || len(files.Files) != 50 {
		t.Errorf("list after storm: %d files, err %v", len(files.Files), err)
	}
}
