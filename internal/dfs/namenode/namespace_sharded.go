package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/shardmap"
)

// shardSeedStep separates the per-shard placement rng streams. Shard 0
// keeps the undisturbed configured seed, so a single-shard plane draws
// bit-identically to memNamespace; later shards offset by a large odd
// constant distinct from the Ignem coordinator's planner-seed step.
const shardSeedStep = 0xC2B2AE3D

// shardedNamespace partitions the metadata plane: files are routed to
// shards by a directory-prefix hash (a directory's entries colocate, so
// listings and per-directory job scans stay single-shard), blocks by the
// consistent-hash ring the Ignem coordinator and shard-routing clients
// share. Each partition has its own locks and its own seeded placement
// rng stream, so metadata operations on unrelated paths — and their rng
// draws — never serialize on a process-global lock.
//
// File shards and block shards are distinct arrays with distinct locks:
// an allocation holds its file shard's lock while inserting into a block
// shard, so sharing one lock array would self-deadlock at shard count 1.
// Lock order: fileShard.mu before blockShard.mu before rngMu (the
// registry read inside placeFunc nests under rngMu).
type shardedNamespace struct {
	place  placeFunc
	ring   *shardmap.Ring
	shards int
	// table interns datanode addresses for the compact block map; it is
	// shared by every shard (addresses are cluster-global).
	table *nodeTable

	fileShards  []*fileShard
	blockShards []*blockShard

	// nextBlock is the cluster-wide block ID counter. Atomic rather than
	// per-shard ranges: IDs stay dense and sequential, which the ring's
	// avalanche mix then spreads uniformly over the block shards.
	nextBlock atomic.Uint64
}

type fileShard struct {
	mu    sync.RWMutex
	files map[string]*fileEntry

	// Each file shard owns one placement rng stream; block shard i's
	// repair draws share stream i, so at shard count 1 every draw comes
	// from the single seed stream in the same order memNamespace uses.
	rngMu sync.Mutex
	rng   *rand.Rand
}

type blockShard struct {
	mu     sync.RWMutex
	blocks map[dfs.BlockID]*blockMeta
	pins   pinMap
	// ssd mirrors pins for the flash tier (see memNamespace.ssd).
	ssd pinMap
	// sums is the shard's sparse write-time checksum map (see
	// memNamespace.sums).
	sums map[dfs.BlockID]uint32
}

func newShardedNamespace(shards int, seed int64, place placeFunc) *shardedNamespace {
	if shards < 1 {
		shards = 1
	}
	ns := &shardedNamespace{
		place:  place,
		ring:   shardmap.NewRing(shards),
		shards: shards,
		table:  newNodeTable(),
	}
	for i := 0; i < shards; i++ {
		ns.fileShards = append(ns.fileShards, &fileShard{
			files: make(map[string]*fileEntry),
			rng:   rand.New(rand.NewSource(seed + int64(i)*shardSeedStep)),
		})
		ns.blockShards = append(ns.blockShards, &blockShard{
			blocks: make(map[dfs.BlockID]*blockMeta),
			pins:   make(pinMap),
			ssd:    make(pinMap),
			sums:   make(map[dfs.BlockID]uint32),
		})
	}
	return ns
}

func (ns *shardedNamespace) Shards() int { return ns.shards }

func (ns *shardedNamespace) fileShardOf(path string) *fileShard {
	return ns.fileShards[shardmap.FileShard(path, ns.shards)]
}

func (ns *shardedNamespace) blockShardOf(id dfs.BlockID) *blockShard {
	return ns.blockShards[ns.ring.BlockShard(uint64(id))]
}

func (ns *shardedNamespace) Create(path string, blockSize int64, replication int) error {
	fs := ns.fileShardOf(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("namenode: %s already exists", path)
	}
	fs.files[path] = &fileEntry{info: dfs.FileInfo{
		Path: path, BlockSize: blockSize, Replication: replication,
	}}
	return nil
}

func (ns *shardedNamespace) Allocate(path string, sizes []int64, sums []uint32, exclude []string, reqID uint64, batch bool) ([]dfs.LocatedBlock, error) {
	fs := ns.fileShardOf(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := openFile(fs.files, path, sizes)
	if err != nil {
		return nil, err
	}
	if cached, ok := cachedAlloc(f, reqID, batch); ok {
		return cached, nil
	}
	out := make([]dfs.LocatedBlock, 0, len(sizes))
	for i, size := range sizes {
		lb, err := ns.allocateBlock(fs, f, size, sumAt(sums, i), exclude)
		if err != nil {
			return nil, err
		}
		out = append(out, lb)
	}
	rememberAlloc(f, reqID, batch, out)
	return out, nil
}

// allocateBlock appends one block to f with freshly chosen replica
// targets, drawing placement from the file shard's rng stream and
// registering the block meta with its owning block shard. Called with
// fs.mu held.
func (ns *shardedNamespace) allocateBlock(fs *fileShard, f *fileEntry, size int64, sum uint32, exclude []string) (dfs.LocatedBlock, error) {
	targets := fs.chooseTargets(ns.place, f.info.Replication, exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	b := dfs.Block{ID: dfs.BlockID(ns.nextBlock.Add(1)), Size: size}
	meta := newBlockMeta(ns.table, size, f.info.Replication, targets)
	bs := ns.blockShardOf(b.ID)
	bs.mu.Lock()
	bs.blocks[b.ID] = meta
	if sum != 0 {
		bs.sums[b.ID] = sum
	}
	bs.mu.Unlock()
	offset := f.info.Size
	f.blocks = append(f.blocks, b)
	f.info.Size += size
	return dfs.LocatedBlock{Block: b, Offset: offset, Checksum: sum, Nodes: targets}, nil
}

func (fs *fileShard) chooseTargets(place placeFunc, rep int, exclude []string) []string {
	fs.rngMu.Lock()
	defer fs.rngMu.Unlock()
	return place(fs.rng, rep, exclude)
}

func (ns *shardedNamespace) Retarget(path string, block dfs.BlockID, exclude []string) (dfs.LocatedBlock, error) {
	fs := ns.fileShardOf(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no such file %s", path)
	}
	blk, offset, found := findBlock(f, block)
	if !found {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d not in %s", block, path)
	}
	bs := ns.blockShardOf(block)
	bs.mu.Lock()
	meta := bs.blocks[block]
	sum := bs.sums[block]
	bs.mu.Unlock()
	if meta == nil {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: block %d has no metadata", block)
	}
	targets := fs.chooseTargets(ns.place, int(meta.want), exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	ids := internAll(ns.table, targets)
	// Re-lock to swap the node set: meta contents are guarded by the
	// owning block shard's lock.
	bs.mu.Lock()
	meta.nodes.reset(ids)
	bs.mu.Unlock()
	return dfs.LocatedBlock{Block: blk, Offset: offset, Checksum: sum, Nodes: targets}, nil
}

func (ns *shardedNamespace) Complete(path string) error {
	fs := ns.fileShardOf(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("namenode: no such file %s", path)
	}
	f.info.Complete = true
	return nil
}

func (ns *shardedNamespace) Info(path string) (dfs.FileInfo, error) {
	fs := ns.fileShardOf(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return dfs.FileInfo{}, fmt.Errorf("namenode: no such file %s", path)
	}
	return f.info, nil
}

func (ns *shardedNamespace) Delete(path string) (map[string][]dfs.BlockID, error) {
	fs := ns.fileShardOf(path)
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	delete(fs.files, path)
	blocks := append([]dfs.Block(nil), f.blocks...)
	fs.mu.Unlock()

	// Drop the block metas shard by shard, collecting the replica
	// deletion work. Shards lock one at a time, in index order.
	parts := make([][]dfs.BlockID, len(ns.blockShards))
	for _, b := range blocks {
		s := ns.ring.BlockShard(uint64(b.ID))
		parts[s] = append(parts[s], b.ID)
	}
	toDelete := make(map[string][]dfs.BlockID)
	addrs := ns.table.addrsView()
	for s, ids := range parts {
		if len(ids) == 0 {
			continue
		}
		bs := ns.blockShards[s]
		bs.mu.Lock()
		for _, id := range ids {
			if meta := bs.blocks[id]; meta != nil {
				for _, nid := range meta.nodes.view() {
					toDelete[addrs[nid]] = append(toDelete[addrs[nid]], id)
				}
			}
			delete(bs.blocks, id)
			delete(bs.pins, id)
			delete(bs.ssd, id)
			delete(bs.sums, id)
		}
		bs.mu.Unlock()
	}
	return toDelete, nil
}

func (ns *shardedNamespace) List(prefix string) []dfs.FileInfo {
	var out []dfs.FileInfo
	for _, fs := range ns.fileShards {
		fs.mu.RLock()
		for path, f := range fs.files {
			if len(path) >= len(prefix) && path[:len(prefix)] == prefix {
				out = append(out, f.info)
			}
		}
		fs.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (ns *shardedNamespace) Resolve(path string) ([]resolvedBlock, error) {
	fs := ns.fileShardOf(path)
	fs.mu.RLock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	blocks := append([]dfs.Block(nil), f.blocks...)
	fs.mu.RUnlock()

	out := make([]resolvedBlock, len(blocks))
	var offset int64
	parts := make([][]int, len(ns.blockShards))
	for i, b := range blocks {
		out[i] = resolvedBlock{block: b, offset: offset}
		offset += b.Size
		s := ns.ring.BlockShard(uint64(b.ID))
		parts[s] = append(parts[s], i)
	}
	addrs := ns.table.addrsView()
	for s, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		bs := ns.blockShards[s]
		bs.mu.RLock()
		for _, i := range idxs {
			out[i].checksum = bs.sums[out[i].block.ID]
			if meta := bs.blocks[out[i].block.ID]; meta != nil {
				out[i].nodes = addrSlice(addrs, &meta.nodes)
				out[i].pinned = idAddrs(addrs, bs.pins.view(out[i].block.ID))
				out[i].onSSD = idAddrs(addrs, bs.ssd.view(out[i].block.ID))
			}
		}
		bs.mu.RUnlock()
	}
	return out, nil
}

func (ns *shardedNamespace) Reconcile(addr string, held []dfs.BlockID) {
	id := ns.table.intern(addr)
	for _, bs := range ns.blockShards {
		bs.mu.Lock()
		reconcileBlocks(bs.blocks, bs.pins, bs.ssd, id, held)
		bs.mu.Unlock()
	}
}

func (ns *shardedNamespace) ApplyReplicaDeltas(addr string, added, removed []dfs.BlockID) {
	id := ns.table.intern(addr)
	type delta struct{ added, removed []dfs.BlockID }
	parts := make([]delta, len(ns.blockShards))
	for _, b := range added {
		s := ns.ring.BlockShard(uint64(b))
		parts[s].added = append(parts[s].added, b)
	}
	for _, b := range removed {
		s := ns.ring.BlockShard(uint64(b))
		parts[s].removed = append(parts[s].removed, b)
	}
	for s, d := range parts {
		if len(d.added) == 0 && len(d.removed) == 0 {
			continue
		}
		bs := ns.blockShards[s]
		bs.mu.Lock()
		applyReplicaDeltas(bs.blocks, bs.pins, bs.ssd, id, d.added, d.removed)
		bs.mu.Unlock()
	}
}

func (ns *shardedNamespace) PinDeltas(addr string, pinned, unpinned []dfs.BlockID) {
	ns.tierDeltas(addr, pinned, unpinned, func(bs *blockShard) pinMap { return bs.pins })
}

func (ns *shardedNamespace) SSDDeltas(addr string, pinned, unpinned []dfs.BlockID) {
	ns.tierDeltas(addr, pinned, unpinned, func(bs *blockShard) pinMap { return bs.ssd })
}

func (ns *shardedNamespace) FastTierHolders(block dfs.BlockID) (ram, ssd []string) {
	bs := ns.blockShards[ns.ring.BlockShard(uint64(block))]
	bs.mu.Lock()
	defer bs.mu.Unlock()
	addrs := ns.table.addrsView()
	return idAddrs(addrs, bs.pins.view(block)), idAddrs(addrs, bs.ssd.view(block))
}

// tierDeltas applies one tier's residency deltas, routing each block to
// its owning shard; sel picks which of the shard's tier maps to touch.
func (ns *shardedNamespace) tierDeltas(addr string, pinned, unpinned []dfs.BlockID, sel func(*blockShard) pinMap) {
	nid := ns.table.intern(addr)
	type delta struct{ pinned, unpinned []dfs.BlockID }
	parts := make([]delta, len(ns.blockShards))
	for _, id := range pinned {
		s := ns.ring.BlockShard(uint64(id))
		parts[s].pinned = append(parts[s].pinned, id)
	}
	for _, id := range unpinned {
		s := ns.ring.BlockShard(uint64(id))
		parts[s].unpinned = append(parts[s].unpinned, id)
	}
	for s, d := range parts {
		if len(d.pinned) == 0 && len(d.unpinned) == 0 {
			continue
		}
		bs := ns.blockShards[s]
		bs.mu.Lock()
		m := sel(bs)
		for _, id := range d.pinned {
			if _, ok := bs.blocks[id]; ok {
				m.add(id, nid)
			}
		}
		for _, id := range d.unpinned {
			m.remove(id, nid)
		}
		bs.mu.Unlock()
	}
}

func (ns *shardedNamespace) DropPinned(addrs []string) {
	ids := lookupAll(ns.table, addrs)
	if len(ids) == 0 {
		return
	}
	for _, bs := range ns.blockShards {
		bs.mu.Lock()
		bs.pins.dropNodes(ids)
		bs.ssd.dropNodes(ids)
		bs.mu.Unlock()
	}
}

func (ns *shardedNamespace) RepairScan(live map[string]bool) []repairJob {
	var jobs []repairJob
	for i, bs := range ns.blockShards {
		// Block shard i's repair draws come from file shard i's stream,
		// so at shard count 1 repair and placement share the single seed
		// stream exactly as memNamespace interleaves them.
		fs := ns.fileShards[i]
		bs.mu.Lock()
		jobs = append(jobs, scanShardForRepair(bs.blocks, ns.table, live, &fs.rngMu, fs.rng)...)
		bs.mu.Unlock()
	}
	return jobs
}

func (ns *shardedNamespace) RepairDone(block dfs.BlockID, target string, ok bool) {
	id := ns.table.intern(target)
	bs := ns.blockShardOf(block)
	bs.mu.Lock()
	defer bs.mu.Unlock()
	repairDone(bs.blocks, block, id, ok)
}
