package namenode

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

func TestAddBlockExcludeAvoidsNodes(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 4) // a b c d
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
			t.Fatalf("create: %v", err)
		}
		for i := 0; i < 10; i++ {
			resp, err := h.nn.handleAddBlock(dfs.AddBlockReq{
				Path: "/f", Size: 1 << 20, Exclude: []string{"a", "b"},
			})
			if err != nil {
				t.Fatalf("addBlock: %v", err)
			}
			for _, n := range resp.Located.Nodes {
				if n == "a" || n == "b" {
					t.Fatalf("excluded node %s chosen: %v", n, resp.Located.Nodes)
				}
			}
			if len(resp.Located.Nodes) != 2 {
				t.Fatalf("targets = %v, want 2 of {c,d}", resp.Located.Nodes)
			}
		}
	})
}

func TestExcludeIgnoredWhenNoCandidatesRemain(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 2)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
			t.Fatalf("create: %v", err)
		}
		resp, err := h.nn.handleAddBlock(dfs.AddBlockReq{
			Path: "/f", Size: 1 << 20, Exclude: []string{"a", "b"},
		})
		if err != nil {
			t.Fatalf("addBlock with total exclusion should fall back, got %v", err)
		}
		if len(resp.Located.Nodes) != 2 {
			t.Fatalf("targets = %v, want both nodes despite exclusion", resp.Located.Nodes)
		}
	})
}

func TestAddBlockReqIDRetryReturnsSameAllocation(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
			t.Fatalf("create: %v", err)
		}
		first, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1 << 20, ReqID: 7})
		if err != nil {
			t.Fatalf("addBlock: %v", err)
		}
		retry, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1 << 20, ReqID: 7})
		if err != nil {
			t.Fatalf("retry: %v", err)
		}
		if !reflect.DeepEqual(first, retry) {
			t.Fatalf("retry allocated differently:\nfirst: %+v\nretry: %+v", first, retry)
		}
		info, err := h.nn.handleGetInfo(dfs.GetInfoReq{Path: "/f"})
		if err != nil || info.Info.Size != 1<<20 {
			t.Fatalf("size = %d, %v — retry double-allocated", info.Info.Size, err)
		}
		// A genuinely new request ID allocates the next block.
		next, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1 << 20, ReqID: 8})
		if err != nil || next.Located.Block.ID == first.Located.Block.ID {
			t.Fatalf("next alloc = %+v, %v", next, err)
		}
	})
}

func TestAddBlocksReqIDRetryReturnsSameBatch(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
			t.Fatalf("create: %v", err)
		}
		sizes := []int64{1 << 20, 1 << 19}
		first, err := h.nn.handleAddBlocks(dfs.AddBlocksReq{Path: "/f", Sizes: sizes, ReqID: 11})
		if err != nil {
			t.Fatalf("addBlocks: %v", err)
		}
		retry, err := h.nn.handleAddBlocks(dfs.AddBlocksReq{Path: "/f", Sizes: sizes, ReqID: 11})
		if err != nil {
			t.Fatalf("retry: %v", err)
		}
		if !reflect.DeepEqual(first, retry) {
			t.Fatalf("batch retry allocated differently:\nfirst: %+v\nretry: %+v", first, retry)
		}
		info, _ := h.nn.handleGetInfo(dfs.GetInfoReq{Path: "/f"})
		if want := int64(1<<20 + 1<<19); info.Info.Size != want {
			t.Fatalf("size = %d, want %d — batch retry double-allocated", info.Info.Size, want)
		}
	})
}

func TestRetargetBlockKeepsIDAndOffset(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 4)
		defer h.nn.Close()
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/f", Replication: 2}); err != nil {
			t.Fatalf("create: %v", err)
		}
		var lbs []dfs.LocatedBlock
		for i := 0; i < 3; i++ {
			resp, err := h.nn.handleAddBlock(dfs.AddBlockReq{Path: "/f", Size: 1 << 20})
			if err != nil {
				t.Fatalf("addBlock: %v", err)
			}
			lbs = append(lbs, resp.Located)
		}
		victim := lbs[1]
		resp, err := h.nn.handleRetargetBlock(dfs.RetargetBlockReq{
			Path: "/f", Block: victim.Block.ID, Exclude: victim.Nodes,
		})
		if err != nil {
			t.Fatalf("retargetBlock: %v", err)
		}
		got := resp.Located
		if got.Block.ID != victim.Block.ID || got.Offset != victim.Offset || got.Block.Size != victim.Block.Size {
			t.Fatalf("retarget changed identity: %+v vs %+v", got, victim)
		}
		old := map[string]bool{}
		for _, n := range victim.Nodes {
			old[n] = true
		}
		for _, n := range got.Nodes {
			if old[n] {
				t.Fatalf("retarget reused excluded node %s: %v", n, got.Nodes)
			}
		}
		if len(got.Nodes) != 2 {
			t.Fatalf("retarget targets = %v, want 2", got.Nodes)
		}
		// The namespace now reports the new targets for that block only.
		all, err := h.nn.Resolve("/f")
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		wantNodes := append([]string(nil), got.Nodes...)
		sort.Strings(wantNodes)
		if !reflect.DeepEqual(all[1].Nodes, wantNodes) {
			t.Fatalf("resolved nodes = %v, want %v", all[1].Nodes, wantNodes)
		}
		untouched := append([]string(nil), lbs[0].Nodes...)
		sort.Strings(untouched)
		if !reflect.DeepEqual(all[0].Nodes, untouched) {
			t.Fatalf("untouched block 0 moved: %v vs %v", all[0].Nodes, lbs[0].Nodes)
		}

		if _, err := h.nn.handleRetargetBlock(dfs.RetargetBlockReq{Path: "/f", Block: 999}); err == nil {
			t.Fatalf("retarget of unknown block succeeded")
		}
		if _, err := h.nn.handleRetargetBlock(dfs.RetargetBlockReq{Path: "/nope", Block: victim.Block.ID}); err == nil {
			t.Fatalf("retarget on unknown file succeeded")
		}
	})
}

// Satellite: a datanode that was declared dead and re-registers with its
// block report must return to placement rotation with its replicas
// counted exactly once, even if it registers repeatedly.
func TestReRegistrationRestoresNodeWithoutDuplicateReplicas(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 3) // expiry 5s, sweep 1s
		defer h.nn.Close()
		lbs := h.mkFile(t, "/f", 4, 3) // every node holds every block
		heldByA := []dfs.BlockID{}
		for _, lb := range lbs {
			heldByA = append(heldByA, lb.Block.ID)
		}

		// Keep b and c alive while a goes silent past the expiry.
		for i := 0; i < 7; i++ {
			v.Sleep(time.Second)
			for _, addr := range []string{"b", "c"} {
				if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: addr}); err != nil {
					t.Fatalf("heartbeat %s: %v", addr, err)
				}
			}
		}
		if live := h.nn.LiveDataNodes(); !reflect.DeepEqual(live, []string{"b", "c"}) {
			t.Fatalf("live = %v, want [b c] after a's heartbeats stop", live)
		}
		for _, lb := range mustResolve(t, h, "/f") {
			if !reflect.DeepEqual(lb.Nodes, []string{"b", "c"}) {
				t.Fatalf("dead node still reported: %v", lb.Nodes)
			}
		}

		// a comes back (twice — re-registration must be idempotent).
		for i := 0; i < 2; i++ {
			if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: "a", Blocks: heldByA}); err != nil {
				t.Fatalf("re-register: %v", err)
			}
		}
		if live := h.nn.LiveDataNodes(); !reflect.DeepEqual(live, []string{"a", "b", "c"}) {
			t.Fatalf("live = %v, want [a b c] after re-registration", live)
		}
		for _, lb := range mustResolve(t, h, "/f") {
			if !reflect.DeepEqual(lb.Nodes, []string{"a", "b", "c"}) {
				t.Fatalf("replica accounting after re-registration: %v", lb.Nodes)
			}
		}

		// Back in placement rotation: an allocation excluding b and c can
		// only land on a.
		if _, err := h.nn.handleCreate(dfs.CreateReq{Path: "/g", Replication: 1}); err != nil {
			t.Fatalf("create: %v", err)
		}
		resp, err := h.nn.handleAddBlock(dfs.AddBlockReq{
			Path: "/g", Size: 1 << 20, Exclude: []string{"b", "c"},
		})
		if err != nil || !reflect.DeepEqual(resp.Located.Nodes, []string{"a"}) {
			t.Fatalf("placement after re-registration = %v, %v (want [a])", resp.Located.Nodes, err)
		}
	})
}

func mustResolve(t *testing.T, h *harness, path string) []dfs.LocatedBlock {
	t.Helper()
	lbs, err := h.nn.Resolve(path)
	if err != nil {
		t.Fatalf("resolve %s: %v", path, err)
	}
	return lbs
}
