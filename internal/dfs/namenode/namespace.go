package namenode

import (
	"math/rand"

	"repro/internal/dfs"
)

// Namespace is the metadata plane behind the NameNode's RPC handlers:
// the file table, the block map, and replica placement. The NameNode
// keeps everything that talks to the outside world — the datanode
// registry, RPC plumbing, the Ignem master — and delegates every
// metadata mutation and lookup here.
//
// Two implementations exist. memNamespace is the historical single-lock
// namespace; shardedNamespace partitions the same state across
// independently locked shards (files by directory hash, blocks by a
// consistent-hash ring) so metadata operations on unrelated paths never
// contend. Config.MetaShards selects between them.
type Namespace interface {
	// Create registers a new file with resolved (non-zero) block size and
	// replication.
	Create(path string, blockSize int64, replication int) error
	// Allocate appends len(sizes) blocks to an open file, choosing
	// replica targets for each, and returns the located blocks in order.
	// sums carries the client-computed CRC32C per block (nil, or a slice
	// parallel to sizes; zero entries mean unchecksummed) — the namespace
	// records them so every later Resolve can hand readers the write-time
	// checksum to verify against. reqID (when non-zero) keys a one-deep
	// idempotency cache so a retried allocation after a lost reply
	// returns the cached result instead of allocating twice; batch
	// distinguishes the single-block and batched call shapes, which must
	// not share cache entries.
	Allocate(path string, sizes []int64, sums []uint32, exclude []string, reqID uint64, batch bool) ([]dfs.LocatedBlock, error)
	// Retarget replaces an allocated block's target set with a fresh
	// placement avoiding the excluded nodes, preserving ID and offset.
	Retarget(path string, block dfs.BlockID, exclude []string) (dfs.LocatedBlock, error)
	// Complete seals a file.
	Complete(path string) error
	// Info returns a file's metadata.
	Info(path string) (dfs.FileInfo, error)
	// Delete removes a file and its blocks, returning the replica
	// deletion work per datanode address.
	Delete(path string) (map[string][]dfs.BlockID, error)
	// List returns the files under a path prefix, sorted by path.
	List(prefix string) []dfs.FileInfo
	// Resolve maps a file to its blocks with the raw (liveness-unaware)
	// replica and pin locations. The caller filters against the registry.
	Resolve(path string) ([]resolvedBlock, error)
	// Reconcile makes the location map agree with a datanode's actual
	// replica inventory.
	Reconcile(addr string, held []dfs.BlockID)
	// ApplyReplicaDeltas applies an incremental block report: addr now
	// also holds added and no longer holds removed. Unknown block IDs
	// are ignored (the namespace may have deleted the file since the
	// datanode queued the delta).
	ApplyReplicaDeltas(addr string, added, removed []dfs.BlockID)
	// PinDeltas applies a heartbeat's pinned/unpinned block deltas.
	PinDeltas(addr string, pinned, unpinned []dfs.BlockID)
	// SSDDeltas applies a heartbeat's SSD-tier residency deltas, exactly
	// as PinDeltas does for the RAM tier.
	SSDDeltas(addr string, pinned, unpinned []dfs.BlockID)
	// FastTierHolders reports which datanodes currently hold the block
	// pinned in RAM and which on SSD, per the heartbeat-maintained side
	// tables. Master recovery reconciles the replayed journal against
	// this authoritative view: pin and unpin deltas the dead master
	// consumed without journaling are still reflected here.
	FastTierHolders(block dfs.BlockID) (ram, ssd []string)
	// DropPinned drops all pinned state (both fast tiers) for the given
	// (dead) datanodes.
	DropPinned(addrs []string)
	// RepairScan finds under-replicated blocks given the current
	// liveness map, chooses a pull source and target for each, and marks
	// them healing. The caller runs the pulls and reports back.
	RepairScan(live map[string]bool) []repairJob
	// RepairDone clears a block's healing mark; on ok the target is
	// recorded as a replica holder.
	RepairDone(block dfs.BlockID, target string, ok bool)
	// Shards reports the partition count (1 for the unsharded plane).
	Shards() int
}

// placeFunc chooses up to rep replica targets avoiding the excluded
// addresses, drawing any randomness from rng. The NameNode provides it
// (placement needs the live-datanode view and the rack map); the
// namespace owns which rng stream it draws from — per shard, so one
// stream never serializes unrelated allocations.
type placeFunc func(rng *rand.Rand, rep int, exclude []string) []string

// repairJob is one re-replication pull chosen by RepairScan.
type repairJob struct {
	block  dfs.Block
	source string
	target string
}

// resolvedBlock is one block of a resolved file with raw locations;
// liveness filtering happens in the NameNode against the registry.
type resolvedBlock struct {
	block    dfs.Block
	offset   int64
	checksum uint32 // write-time CRC32C; 0 = unchecksummed
	nodes    []string
	pinned   []string
	onSSD    []string
}

type fileEntry struct {
	info   dfs.FileInfo
	blocks []dfs.Block
	// lastAllocID/lastAllocBatch/lastAlloc cache the file's most recent
	// allocation keyed by the caller's request ID, making allocation
	// retries after a lost reply idempotent. One-deep is enough: a file
	// has one writer and the writer allocates serially, so a retry can
	// only ever be of the latest allocation.
	lastAllocID    uint64
	lastAllocBatch bool
	lastAlloc      []dfs.LocatedBlock
}

// blockMeta is one block-map entry. It is a single flat allocation in
// the 48-byte size class: replica locations are a sorted interned-node-
// ID set (see blockmap.go), not a per-block string map, and pin state
// lives in the sparse side pinMap, which together is what lets the
// NameNode track a million blocks in tens of megabytes.
type blockMeta struct {
	size    int64
	nodes   nodeSet // datanodes with a replica
	want    uint16  // the file's replication factor
	healing bool    // a re-replication pull is in flight
}
