package namenode

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/dfs"
)

func TestNodeTableIntern(t *testing.T) {
	tab := newNodeTable()
	a := tab.intern("dn-0")
	b := tab.intern("dn-1")
	if a == b {
		t.Fatalf("distinct addrs share id %d", a)
	}
	if got := tab.intern("dn-0"); got != a {
		t.Fatalf("re-intern dn-0 = %d, want %d", got, a)
	}
	if id, ok := tab.lookup("dn-1"); !ok || id != b {
		t.Fatalf("lookup dn-1 = %d,%v, want %d,true", id, ok, b)
	}
	if _, ok := tab.lookup("dn-9"); ok {
		t.Fatal("lookup of never-interned addr succeeded")
	}
	view := tab.addrsView()
	// The view stays valid for its indices even as the table grows.
	tab.intern("dn-2")
	if view[a] != "dn-0" || view[b] != "dn-1" {
		t.Fatalf("addrsView = %v, want dn-0/dn-1 at %d/%d", view, a, b)
	}
}

func TestNodeSetInlineAndSpill(t *testing.T) {
	var s nodeSet
	// Out-of-order inserts stay sorted inline.
	for _, id := range []nodeID{30, 10, 20} {
		if !s.add(id) {
			t.Fatalf("add(%d) reported no change", id)
		}
	}
	if s.add(20) {
		t.Fatal("duplicate add reported a change")
	}
	if s.spill != nil {
		t.Fatal("3 members should stay inline")
	}
	if got := s.view(); got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("inline view = %v, want [10 20 30]", got)
	}
	// A fourth member spills, still sorted.
	s.add(15)
	if s.spill == nil || s.len() != 4 {
		t.Fatalf("expected spill with 4 members, got spill=%v n=%d", s.spill, s.n)
	}
	if got := s.view(); !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("spill view not sorted: %v", got)
	}
	for _, id := range []nodeID{10, 15, 20, 30} {
		if !s.contains(id) {
			t.Fatalf("contains(%d) = false after insert", id)
		}
	}
	// Shrinking back to inline capacity releases the spill.
	if !s.remove(15) {
		t.Fatal("remove(15) reported no change")
	}
	if s.spill != nil {
		t.Fatalf("expected return to inline after shrink, spill=%v", s.spill)
	}
	if s.remove(15) {
		t.Fatal("second remove(15) reported a change")
	}
	if got := s.view(); len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("view after shrink = %v, want [10 20 30]", got)
	}
	s.reset([]nodeID{7, 7, 3})
	if got := s.view(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("reset view = %v, want [3 7]", got)
	}
}

// TestNodeSetRandomized cross-checks nodeSet against a reference map
// through a few thousand seeded add/remove operations, crossing the
// inline/spill boundary many times.
func TestNodeSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s nodeSet
	ref := make(map[nodeID]bool)
	for i := 0; i < 5000; i++ {
		id := nodeID(rng.Intn(12))
		if rng.Intn(2) == 0 {
			if s.add(id) == ref[id] {
				t.Fatalf("op %d: add(%d) change mismatch (ref has=%v)", i, id, ref[id])
			}
			ref[id] = true
		} else {
			if s.remove(id) != ref[id] {
				t.Fatalf("op %d: remove(%d) change mismatch (ref has=%v)", i, id, ref[id])
			}
			delete(ref, id)
		}
		if s.len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", i, s.len(), len(ref))
		}
		v := s.view()
		for j, m := range v {
			if !ref[m] {
				t.Fatalf("op %d: set holds %d not in ref", i, m)
			}
			if j > 0 && v[j-1] >= m {
				t.Fatalf("op %d: view unsorted: %v", i, v)
			}
		}
	}
}

// legacyBlockMeta reproduces the pre-compaction block-map entry shape —
// two eagerly allocated address-keyed maps per block — for the heap
// comparison below.
type legacyBlockMeta struct {
	size    int64
	want    int
	nodes   map[string]struct{}
	pinned  map[string]struct{}
	healing bool
}

func measureHeap(build func() any) (int64, any) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc), v
}

// TestBlockMapHeapPerBlock is the heap-regression gate for the compact
// block map: an N-block map of interned sorted replica triples must use
// at least 4x less heap per block than the historical representation
// (two map[string]struct{} per block). Run via `make bench-alloc`.
func TestBlockMapHeapPerBlock(t *testing.T) {
	const n = 100_000
	addrs := make([]string, 32)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.%d.%d:9866", i/256, i%256)
	}

	legacyBytes, legacyRef := measureHeap(func() any {
		m := make(map[dfs.BlockID]*legacyBlockMeta, n)
		for i := 0; i < n; i++ {
			meta := &legacyBlockMeta{
				size:   128 << 20,
				want:   3,
				nodes:  make(map[string]struct{}),
				pinned: make(map[string]struct{}),
			}
			for r := 0; r < 3; r++ {
				meta.nodes[addrs[(i+r)%len(addrs)]] = struct{}{}
			}
			m[dfs.BlockID(i)] = meta
		}
		return m
	})

	compactBytes, compactRef := measureHeap(func() any {
		table := newNodeTable()
		pins := make(pinMap) // empty: freshly allocated blocks are unpinned
		m := make(map[dfs.BlockID]*blockMeta, n)
		for i := 0; i < n; i++ {
			targets := []string{
				addrs[i%len(addrs)],
				addrs[(i+1)%len(addrs)],
				addrs[(i+2)%len(addrs)],
			}
			m[dfs.BlockID(i)] = newBlockMeta(table, 128<<20, 3, targets)
		}
		return []any{m, pins}
	})
	runtime.KeepAlive(legacyRef)
	runtime.KeepAlive(compactRef)

	legacyPer := float64(legacyBytes) / n
	compactPer := float64(compactBytes) / n
	t.Logf("heap per block: legacy %.0f B, compact %.0f B (%.1fx)",
		legacyPer, compactPer, legacyPer/compactPer)
	if compactPer <= 0 {
		t.Fatalf("implausible compact heap measurement: %.0f B/block", compactPer)
	}
	if legacyPer/compactPer < 4 {
		t.Errorf("compact block map is only %.1fx smaller than legacy per block (legacy %.0f B, compact %.0f B), want >= 4x",
			legacyPer/compactPer, legacyPer, compactPer)
	}
}
