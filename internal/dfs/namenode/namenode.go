// Package namenode implements the file-system master: the namespace,
// block manager, datanode registry, and the embedded Ignem master.
package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Config configures a NameNode.
type Config struct {
	// Addr is the address the namenode listens on.
	Addr string
	// DefaultBlockSize applies to files created without one.
	DefaultBlockSize int64
	// DefaultReplication applies to files created without one.
	DefaultReplication int
	// HeartbeatExpiry is how long after the last heartbeat a datanode is
	// declared dead. Default 10s.
	HeartbeatExpiry time.Duration
	// ExpirySweepInterval is how often dead datanodes are detected.
	// Default 1s.
	ExpirySweepInterval time.Duration
	// Seed drives replica placement and the Ignem master's replica
	// choice.
	Seed int64
	// ReplicationSweepInterval is how often under-replicated blocks are
	// repaired after node failures. Zero disables re-replication.
	// Default 5s.
	ReplicationSweepInterval time.Duration
	// Racks maps datanode address to rack name. When non-empty,
	// placement follows HDFS's default rack-aware policy: the second
	// replica goes to a different rack than the first, and the third to
	// the second replica's rack. An empty map means flat placement.
	Racks map[string]string
	// MetaShards selects the metadata plane. 0 (the default) runs the
	// historical unsharded namespace. N >= 1 partitions the namespace
	// into N shards — files by directory hash, blocks by consistent
	// hash — each with its own locks and placement rng stream, and runs
	// one Ignem migration planner per shard behind a coordinator. At
	// MetaShards=1 the sharded plane draws the seeded rngs
	// bit-identically to the unsharded one.
	MetaShards int
	// ShardAddrs optionally adds one extra listen address per shard.
	// Every address serves the full handler set (routing is an
	// optimization, never a correctness requirement); shard-aware
	// clients spread their namespace RPCs across them. Length need not
	// match MetaShards — extra addresses are ignored, missing ones fall
	// back to Addr.
	ShardAddrs []string
}

func (c *Config) setDefaults() {
	if c.DefaultBlockSize <= 0 {
		c.DefaultBlockSize = dfs.DefaultBlockSize
	}
	if c.DefaultReplication <= 0 {
		c.DefaultReplication = dfs.DefaultReplication
	}
	if c.HeartbeatExpiry <= 0 {
		c.HeartbeatExpiry = 10 * time.Second
	}
	if c.ExpirySweepInterval <= 0 {
		c.ExpirySweepInterval = time.Second
	}
	if c.ReplicationSweepInterval == 0 {
		c.ReplicationSweepInterval = 5 * time.Second
	}
}

type dnInfo struct {
	addr     string
	lastSeen time.Time
	alive    bool
	client   *transport.Client
}

// NameNode is the file-system master process. Start it with Start, stop
// it with Close. All namespace and block state lives behind ns; the
// NameNode itself owns only the datanode registry, the RPC surface, and
// the embedded Ignem master.
type NameNode struct {
	clock          simclock.Clock
	net            transport.Network
	cfg            Config
	server         *transport.Server
	listener       transport.Listener
	shardListeners []transport.Listener
	master         *ignem.Coordinator
	ns             Namespace

	// stateMu guards closed.
	stateMu sync.Mutex
	closed  bool

	// dnmu guards the datanode registry: the datanodes map and every
	// dnInfo's fields. Splitting it from the namespace locks keeps
	// heartbeats and registrations off the metadata path. dnmu nests
	// innermost: it is only ever acquired under namespace locks (via
	// placeTargets and Resolve), never the reverse.
	dnmu      sync.RWMutex
	datanodes map[string]*dnInfo
}

// New creates a NameNode (not yet serving).
func New(clock simclock.Clock, net transport.Network, cfg Config) *NameNode {
	cfg.setDefaults()
	nn := &NameNode{
		clock:     clock,
		net:       net,
		cfg:       cfg,
		datanodes: make(map[string]*dnInfo),
	}
	if cfg.MetaShards > 0 {
		nn.ns = newShardedNamespace(cfg.MetaShards, cfg.Seed, nn.placeTargets)
	} else {
		nn.ns = newMemNamespace(cfg.Seed, nn.placeTargets)
	}
	nn.master = ignem.NewCoordinator(nn, nn, cfg.Seed+1, nn.ns.Shards())
	return nn
}

// Start binds the RPC server and begins serving. It also starts the
// datanode-expiry sweeper.
func (nn *NameNode) Start() error {
	l, err := nn.net.Listen(nn.cfg.Addr)
	if err != nil {
		return fmt.Errorf("namenode: %w", err)
	}
	s := transport.NewServer(nn.clock)
	s.Handle("nn.create", wrap(nn.handleCreate))
	s.Handle("nn.addBlock", wrap(nn.handleAddBlock))
	s.Handle("nn.addBlocks", wrap(nn.handleAddBlocks))
	s.Handle("nn.retargetBlock", wrap(nn.handleRetargetBlock))
	s.Handle("nn.complete", wrap(nn.handleComplete))
	s.Handle("nn.getInfo", wrap(nn.handleGetInfo))
	s.Handle("nn.getLocations", wrap(nn.handleGetLocations))
	s.Handle("nn.delete", wrap(nn.handleDelete))
	s.Handle("nn.list", wrap(nn.handleList))
	s.Handle("nn.migrate", wrap(nn.handleMigrate))
	s.Handle("nn.evict", wrap(nn.handleEvict))
	s.Handle("nn.blockRead", wrap(nn.handleBlockRead))
	s.Handle("nn.register", wrap(nn.handleRegister))
	s.Handle("nn.blockReport", wrap(nn.handleBlockReport))
	s.Handle("nn.heartbeat", wrap(nn.handleHeartbeat))
	s.Handle("nn.epoch", wrap(nn.handleEpoch))
	s.Handle("nn.shardInfo", wrap(nn.handleShardInfo))
	s.ServeBackground(l)
	nn.server = s
	nn.listener = l
	// Extra per-shard endpoints serve the same handler set on the same
	// server: a shard address is a load-spreading hint for shard-aware
	// clients, not a partition boundary, so any request is valid on any
	// endpoint.
	for _, addr := range nn.cfg.ShardAddrs {
		sl, err := nn.net.Listen(addr)
		if err != nil {
			nn.Close()
			return fmt.Errorf("namenode: shard endpoint %s: %w", addr, err)
		}
		s.ServeBackground(sl)
		nn.shardListeners = append(nn.shardListeners, sl)
	}
	nn.clock.Go(nn.expiryLoop)
	if nn.cfg.ReplicationSweepInterval > 0 {
		nn.clock.Go(nn.replicationLoop)
	}
	return nil
}

// wrap adapts a typed handler to the transport's HandlerFunc.
func wrap[Req, Resp any](fn func(Req) (Resp, error)) transport.HandlerFunc {
	return func(arg any) (any, error) {
		req, ok := arg.(Req)
		if !ok {
			var want Req
			return nil, fmt.Errorf("namenode: bad request type %T, want %T", arg, want)
		}
		return fn(req)
	}
}

// Close stops serving and disconnects from all datanodes.
func (nn *NameNode) Close() {
	nn.stateMu.Lock()
	nn.closed = true
	nn.stateMu.Unlock()
	nn.dnmu.Lock()
	clients := make([]*transport.Client, 0, len(nn.datanodes))
	for _, dn := range nn.datanodes {
		if dn.client != nil {
			clients = append(clients, dn.client)
		}
	}
	nn.dnmu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	if nn.listener != nil {
		nn.listener.Close()
	}
	for _, l := range nn.shardListeners {
		l.Close()
	}
	if nn.server != nil {
		nn.server.Close()
	}
}

func (nn *NameNode) isClosed() bool {
	nn.stateMu.Lock()
	defer nn.stateMu.Unlock()
	return nn.closed
}

// Master exposes the embedded Ignem master coordinator (for
// failure-injection tests and the cluster harness).
func (nn *NameNode) Master() *ignem.Coordinator { return nn.master }

// Shards reports the metadata plane's partition count (1 when
// unsharded).
func (nn *NameNode) Shards() int { return nn.ns.Shards() }

// RestartMaster simulates an Ignem master failure and recovery: the new
// master starts with an empty state and a new epoch, and the epoch bump
// is broadcast to every live slave so they purge stale reference lists
// immediately (the paper broadcasts the new master's address to all
// servers; slaves reset to match the new master's empty state).
func (nn *NameNode) RestartMaster() {
	nn.master.Restart()
	epoch := nn.master.Epoch()
	for _, addr := range nn.LiveDataNodes() {
		// Best effort: an unreachable slave purges lazily when it sees
		// the next new-epoch command batch.
		_ = nn.SendEvict(addr, dfs.EvictBatch{Epoch: epoch})
	}
}

// handleEpoch reports the Ignem master's current epoch. Revived slaves
// probe it during re-registration so stale old-epoch pins reconcile
// immediately instead of waiting for the next epoch broadcast.
func (nn *NameNode) handleEpoch(dfs.EpochReq) (dfs.EpochResp, error) {
	return dfs.EpochResp{Epoch: nn.master.Epoch()}, nil
}

// handleShardInfo reports the metadata plane's shard layout so clients
// can route namespace RPCs shard-locally. Addrs may be shorter than the
// shard count (or empty): unlisted shards are served at the primary
// address.
func (nn *NameNode) handleShardInfo(dfs.ShardInfoReq) (dfs.ShardInfoResp, error) {
	return dfs.ShardInfoResp{
		Shards: nn.ns.Shards(),
		Addrs:  append([]string(nil), nn.cfg.ShardAddrs...),
	}, nil
}

// ---- namespace handlers ----

func (nn *NameNode) handleCreate(req dfs.CreateReq) (dfs.CreateResp, error) {
	if req.Path == "" {
		return dfs.CreateResp{}, fmt.Errorf("namenode: empty path")
	}
	bs := req.BlockSize
	if bs <= 0 {
		bs = nn.cfg.DefaultBlockSize
	}
	rep := req.Replication
	if rep <= 0 {
		rep = nn.cfg.DefaultReplication
	}
	if err := nn.ns.Create(req.Path, bs, rep); err != nil {
		return dfs.CreateResp{}, err
	}
	return dfs.CreateResp{}, nil
}

func (nn *NameNode) handleAddBlock(req dfs.AddBlockReq) (dfs.AddBlockResp, error) {
	located, err := nn.ns.Allocate(req.Path, []int64{req.Size}, req.Exclude, req.ReqID, false)
	if err != nil {
		return dfs.AddBlockResp{}, err
	}
	return dfs.AddBlockResp{Located: located[0]}, nil
}

// handleAddBlocks allocates a window of blocks under one namespace-lock
// acquisition. Placement is drawn per block in request order, so a batch
// yields the same targets the equivalent addBlock sequence would.
// Validation is all-or-nothing: a bad size anywhere rejects the batch
// before any block is allocated.
func (nn *NameNode) handleAddBlocks(req dfs.AddBlocksReq) (dfs.AddBlocksResp, error) {
	if len(req.Sizes) == 0 {
		return dfs.AddBlocksResp{}, fmt.Errorf("namenode: addBlocks with no sizes")
	}
	located, err := nn.ns.Allocate(req.Path, req.Sizes, req.Exclude, req.ReqID, true)
	if err != nil {
		return dfs.AddBlocksResp{}, err
	}
	return dfs.AddBlocksResp{Located: located}, nil
}

// handleRetargetBlock replaces an allocated block's target set with a
// fresh placement that avoids the excluded nodes, preserving the block's
// ID and file offset. The writer retries the same block on the new
// targets, so the file's block order is unaffected even when later
// blocks are already in flight. Replicas that did land on old targets
// are reconciled away (or kept as benign over-replication) by block
// reports. Safe to retry: re-picking targets twice costs extra rng
// draws but allocates nothing.
func (nn *NameNode) handleRetargetBlock(req dfs.RetargetBlockReq) (dfs.RetargetBlockResp, error) {
	located, err := nn.ns.Retarget(req.Path, req.Block, req.Exclude)
	if err != nil {
		return dfs.RetargetBlockResp{}, err
	}
	return dfs.RetargetBlockResp{Located: located}, nil
}

func (nn *NameNode) handleComplete(req dfs.CompleteReq) (dfs.CompleteResp, error) {
	if err := nn.ns.Complete(req.Path); err != nil {
		return dfs.CompleteResp{}, err
	}
	return dfs.CompleteResp{}, nil
}

func (nn *NameNode) handleGetInfo(req dfs.GetInfoReq) (dfs.GetInfoResp, error) {
	info, err := nn.ns.Info(req.Path)
	if err != nil {
		return dfs.GetInfoResp{}, err
	}
	return dfs.GetInfoResp{Info: info}, nil
}

func (nn *NameNode) handleGetLocations(req dfs.GetLocationsReq) (dfs.GetLocationsResp, error) {
	blocks, err := nn.Resolve(req.Path)
	if err != nil {
		return dfs.GetLocationsResp{}, err
	}
	if req.Job != "" {
		for i := range blocks {
			addr := nn.master.AssignedReplica(req.Job, blocks[i].Block.ID)
			if addr == "" {
				continue
			}
			// Only report the assignment while the replica is live.
			for _, n := range blocks[i].Nodes {
				if n == addr {
					blocks[i].Assigned = addr
					break
				}
			}
		}
	}
	return dfs.GetLocationsResp{Blocks: blocks}, nil
}

func (nn *NameNode) handleDelete(req dfs.DeleteReq) (dfs.DeleteResp, error) {
	toDelete, err := nn.ns.Delete(req.Path)
	if err != nil {
		return dfs.DeleteResp{}, err
	}
	// Best effort: a dead datanode's replicas die with it anyway.
	for addr, ids := range toDelete {
		c, err := nn.slaveClient(addr)
		if err != nil {
			continue
		}
		_, _ = transport.Call[dfs.DeleteBlocksResp](c, "dn.deleteBlocks", dfs.DeleteBlocksReq{Blocks: ids})
	}
	return dfs.DeleteResp{}, nil
}

func (nn *NameNode) handleList(req dfs.ListReq) (dfs.ListResp, error) {
	return dfs.ListResp{Files: nn.ns.List(req.Prefix)}, nil
}

func (nn *NameNode) handleMigrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	return nn.master.Migrate(req)
}

func (nn *NameNode) handleEvict(req dfs.EvictReq) (dfs.EvictResp, error) {
	return nn.master.Evict(req)
}

// handleBlockRead ingests a client's batched cache-hit notification and
// relays it to the Ignem master, which forwards each block to the slave
// holding its migrated replica. Always succeeds: a notification for an
// unknown job or block simply has no references to release.
func (nn *NameNode) handleBlockRead(req dfs.BlockReadReq) (dfs.BlockReadResp, error) {
	nn.master.NotifyRead(req.Job, req.Blocks)
	return dfs.BlockReadResp{}, nil
}

// ---- replica placement ----

// placeTargets picks up to rep distinct live datanodes avoiding the
// excluded addresses, drawing randomness from the caller's rng stream
// (the namespace passes the owning shard's). With rack information it
// applies HDFS's default policy; otherwise placement is a seeded random
// choice. The exclusion filter runs after the seeded shuffle, so calls
// with no exclusions draw the rng exactly as they always have (seeded
// figures stay bit-identical); an exclusion list that would leave no
// candidates is ignored rather than failing the allocation — better a
// replica on a suspect node than none at all. Takes dnmu (read) itself;
// the caller holds its shard and rng locks.
func (nn *NameNode) placeTargets(rng *rand.Rand, rep int, exclude []string) []string {
	nn.dnmu.RLock()
	live := make([]string, 0, len(nn.datanodes))
	for addr, dn := range nn.datanodes {
		if dn.alive {
			live = append(live, addr)
		}
	}
	nn.dnmu.RUnlock()
	sort.Strings(live) // deterministic base order for the seeded shuffle
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(exclude) > 0 {
		ex := make(map[string]bool, len(exclude))
		for _, a := range exclude {
			ex[a] = true
		}
		kept := make([]string, 0, len(live))
		for _, a := range live {
			if !ex[a] {
				kept = append(kept, a)
			}
		}
		if len(kept) > 0 {
			live = kept
		}
	}
	if rep > len(live) {
		rep = len(live)
	}
	if len(nn.cfg.Racks) == 0 || rep < 2 {
		return live[:rep]
	}
	return nn.rackAwareTargets(live, rep)
}

// rackAwareTargets applies the HDFS default placement: first replica
// anywhere, second on a different rack, third on the second's rack,
// the rest wherever distinct nodes remain.
func (nn *NameNode) rackAwareTargets(shuffled []string, rep int) []string {
	rackOf := func(addr string) string { return nn.cfg.Racks[addr] }
	targets := []string{shuffled[0]}
	used := map[string]bool{shuffled[0]: true}

	pick := func(want func(addr string) bool) bool {
		for _, a := range shuffled {
			if !used[a] && want(a) {
				targets = append(targets, a)
				used[a] = true
				return true
			}
		}
		return false
	}

	// Second replica: off the first rack if possible.
	firstRack := rackOf(targets[0])
	if len(targets) < rep {
		if !pick(func(a string) bool { return rackOf(a) != firstRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Third replica: on the second replica's rack if possible.
	if len(targets) < rep && len(targets) >= 2 {
		secondRack := rackOf(targets[1])
		if !pick(func(a string) bool { return rackOf(a) == secondRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Remaining replicas: any distinct node.
	for len(targets) < rep {
		if !pick(func(string) bool { return true }) {
			break
		}
	}
	return targets
}

// ---- datanode registry ----

func (nn *NameNode) handleRegister(req dfs.RegisterReq) (dfs.RegisterResp, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		dn = &dnInfo{addr: req.Addr}
		nn.datanodes[req.Addr] = dn
	}
	stale := dn.client
	dn.client = nil
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	nn.dnmu.Unlock()
	nn.ns.Reconcile(req.Addr, req.Blocks)
	if stale != nil {
		stale.Close()
	}
	return dfs.RegisterResp{}, nil
}

func (nn *NameNode) handleBlockReport(req dfs.BlockReportReq) (dfs.BlockReportResp, error) {
	nn.dnmu.RLock()
	registered := nn.datanodes[req.Addr] != nil
	nn.dnmu.RUnlock()
	if !registered {
		return dfs.BlockReportResp{}, fmt.Errorf("namenode: block report from unregistered %s", req.Addr)
	}
	nn.ns.Reconcile(req.Addr, req.Blocks)
	return dfs.BlockReportResp{}, nil
}

func (nn *NameNode) handleHeartbeat(req dfs.HeartbeatReq) (dfs.HeartbeatResp, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		nn.dnmu.Unlock()
		return dfs.HeartbeatResp{}, fmt.Errorf("namenode: heartbeat from unregistered %s", req.Addr)
	}
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	nn.dnmu.Unlock()
	// The steady-state heartbeat carries no pin deltas; only touch the
	// namespace locks when there is pinned state to record.
	if len(req.Pinned) == 0 && len(req.Unpinned) == 0 {
		return dfs.HeartbeatResp{}, nil
	}
	nn.ns.PinDeltas(req.Addr, req.Pinned, req.Unpinned)
	return dfs.HeartbeatResp{}, nil
}

// expiryLoop marks datanodes dead when their heartbeats stop; the block
// manager then reports only live replica locations, which is how the
// Ignem master sees "an updated view with only live locations".
func (nn *NameNode) expiryLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ExpirySweepInterval)
		if nn.isClosed() {
			return
		}
		now := nn.clock.Now()
		var died []string
		nn.dnmu.Lock()
		for _, dn := range nn.datanodes {
			if dn.alive && now.Sub(dn.lastSeen) > nn.cfg.HeartbeatExpiry {
				dn.alive = false
				died = append(died, dn.addr)
			}
		}
		nn.dnmu.Unlock()
		if len(died) == 0 {
			continue
		}
		// Drop the dead nodes' pinned state: their memory is gone.
		nn.ns.DropPinned(died)
	}
}

// replicationLoop repairs under-replicated blocks: for each block with
// fewer live replicas than its file requested, a live non-holder is told
// to pull a copy from a surviving holder.
func (nn *NameNode) replicationLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ReplicationSweepInterval)
		if nn.isClosed() {
			return
		}
		live := map[string]bool{}
		nn.dnmu.RLock()
		for addr, dn := range nn.datanodes {
			live[addr] = dn.alive
		}
		nn.dnmu.RUnlock()
		for _, j := range nn.ns.RepairScan(live) {
			j := j
			nn.clock.Go(func() {
				err := nn.pullReplica(j.target, j.source, j.block)
				nn.ns.RepairDone(j.block.ID, j.target, err == nil)
			})
		}
	}
}

// pullReplica asks target to copy block from source.
func (nn *NameNode) pullReplica(target, source string, b dfs.Block) error {
	c, err := nn.slaveClient(target)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.PullBlockResp](c, "dn.pullBlock", dfs.PullBlockReq{Block: b, From: source})
	return err
}

// LiveDataNodes returns the addresses of datanodes considered alive.
func (nn *NameNode) LiveDataNodes() []string {
	nn.dnmu.RLock()
	defer nn.dnmu.RUnlock()
	var out []string
	for addr, dn := range nn.datanodes {
		if dn.alive {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// ---- ignem.Resolver ----

// Resolve maps a file to its blocks with live replica locations and
// current migration state. It is the read hot path: the namespace
// returns raw locations under its shard read locks, and liveness is
// filtered here under the registry read lock, so concurrent lookups
// never serialize.
func (nn *NameNode) Resolve(path string) ([]dfs.LocatedBlock, error) {
	raw, err := nn.ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	out := make([]dfs.LocatedBlock, 0, len(raw))
	nn.dnmu.RLock()
	defer nn.dnmu.RUnlock()
	for _, rb := range raw {
		lb := dfs.LocatedBlock{Block: rb.block, Offset: rb.offset}
		for _, addr := range rb.nodes {
			if dn := nn.datanodes[addr]; dn != nil && dn.alive {
				lb.Nodes = append(lb.Nodes, addr)
			}
		}
		sort.Strings(lb.Nodes)
		for _, addr := range rb.pinned {
			if dn := nn.datanodes[addr]; dn != nil && dn.alive {
				lb.Migrated = append(lb.Migrated, addr)
			}
		}
		sort.Strings(lb.Migrated)
		out = append(out, lb)
	}
	return out, nil
}

// ---- ignem.SlaveLink ----

// SendMigrate pushes a migrate batch to the slave embedded in the
// datanode at addr.
func (nn *NameNode) SendMigrate(addr string, batch dfs.MigrateBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.MigrateBatchResp](c, "ignem.migrateBatch", batch)
	return err
}

// SendEvict pushes an evict batch to the slave at addr.
func (nn *NameNode) SendEvict(addr string, batch dfs.EvictBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.EvictBatchResp](c, "ignem.evictBatch", batch)
	return err
}

// SendReadNotify pushes a remote-read notification batch to the slave at
// addr.
func (nn *NameNode) SendReadNotify(addr string, batch dfs.ReadNotifyBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.ReadNotifyBatchResp](c, "ignem.readNotify", batch)
	return err
}

// slaveClient returns (dialing on demand) the command client for addr.
func (nn *NameNode) slaveClient(addr string) (*transport.Client, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[addr]
	if dn == nil || !dn.alive {
		nn.dnmu.Unlock()
		return nil, fmt.Errorf("namenode: datanode %s not available", addr)
	}
	if dn.client != nil {
		c := dn.client
		nn.dnmu.Unlock()
		return c, nil
	}
	nn.dnmu.Unlock()

	c, err := transport.Dial(nn.clock, nn.net, addr)
	if err != nil {
		return nil, fmt.Errorf("namenode: dial %s: %w", addr, err)
	}
	nn.dnmu.Lock()
	defer nn.dnmu.Unlock()
	if dn.client != nil { // lost the dial race; keep the winner
		defer c.Close()
		return dn.client, nil
	}
	dn.client = c
	return c, nil
}
