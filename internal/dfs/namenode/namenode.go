// Package namenode implements the file-system master: the namespace,
// block manager, datanode registry, and the embedded Ignem master.
package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Config configures a NameNode.
type Config struct {
	// Addr is the address the namenode listens on.
	Addr string
	// DefaultBlockSize applies to files created without one.
	DefaultBlockSize int64
	// DefaultReplication applies to files created without one.
	DefaultReplication int
	// HeartbeatExpiry is how long after the last heartbeat a datanode is
	// declared dead. Default 10s.
	HeartbeatExpiry time.Duration
	// ExpirySweepInterval is how often dead datanodes are detected.
	// Default 1s.
	ExpirySweepInterval time.Duration
	// Seed drives replica placement and the Ignem master's replica
	// choice.
	Seed int64
	// ReplicationSweepInterval is how often under-replicated blocks are
	// repaired after node failures. Zero disables re-replication.
	// Default 5s.
	ReplicationSweepInterval time.Duration
	// Racks maps datanode address to rack name. When non-empty,
	// placement follows HDFS's default rack-aware policy: the second
	// replica goes to a different rack than the first, and the third to
	// the second replica's rack. An empty map means flat placement.
	Racks map[string]string
	// MetaShards selects the metadata plane. 0 (the default) runs the
	// historical unsharded namespace. N >= 1 partitions the namespace
	// into N shards — files by directory hash, blocks by consistent
	// hash — each with its own locks and placement rng stream, and runs
	// one Ignem migration planner per shard behind a coordinator. At
	// MetaShards=1 the sharded plane draws the seeded rngs
	// bit-identically to the unsharded one.
	MetaShards int
	// ShardAddrs optionally adds one extra listen address per shard.
	// Every address serves the full handler set (routing is an
	// optimization, never a correctness requirement); shard-aware
	// clients spread their namespace RPCs across them. Length need not
	// match MetaShards — extra addresses are ignored, missing ones fall
	// back to Addr.
	ShardAddrs []string
	// WALBackend, when set, gives the Ignem master a migration
	// write-ahead log: planning becomes durable-before-send, transport-
	// failed command batches are retried from the journal instead of
	// dropped, and RecoverMaster resumes in-flight migrations after a
	// master restart without bumping the epoch (so slave pins survive).
	// Takes precedence over WALDir. Nil (with an empty WALDir) disables
	// journaling — the historical behavior.
	WALBackend wal.Backend
	// WALDir, when non-empty and WALBackend is nil, persists the
	// migration WAL to a file ("ignem-master.wal") under this directory.
	WALDir string
	// WALRetryInterval paces the journal's retry pump (re-sending
	// transport-failed batches). Default 1s.
	WALRetryInterval time.Duration
	// MigrationPolicy selects the Ignem master's tier-placement policy:
	// "paper" (or empty — the default smallest-job-first-to-RAM),
	// "ladder", or "popularity". See ignem.PolicyByName. With the empty
	// default and zero TierBudgets the migration plane is bit-identical
	// to the pre-ladder master.
	MigrationPolicy string
	// TierBudgets caps cluster-wide fast-tier residency. A zero SSD
	// budget means the cluster has no flash rung.
	TierBudgets ignem.TierBudgets
	// ReportIntake bounds how many full-inventory reconciles (register
	// and block-report handling) may run concurrently; reports beyond
	// the bound are rejected with dfs.ErrBusy and the datanode retries
	// with jittered backoff. This is the admission control that keeps a
	// reconnect storm of full reports from stalling namespace RPCs
	// behind a convoy of full-table scans. 0 selects the default
	// (2 x max(1, MetaShards)); negative disables the bound. Delta
	// heartbeats are never gated — they are O(delta) cheap.
	ReportIntake int
}

func (c *Config) setDefaults() {
	if c.DefaultBlockSize <= 0 {
		c.DefaultBlockSize = dfs.DefaultBlockSize
	}
	if c.DefaultReplication <= 0 {
		c.DefaultReplication = dfs.DefaultReplication
	}
	if c.HeartbeatExpiry <= 0 {
		c.HeartbeatExpiry = 10 * time.Second
	}
	if c.ExpirySweepInterval <= 0 {
		c.ExpirySweepInterval = time.Second
	}
	if c.ReplicationSweepInterval == 0 {
		c.ReplicationSweepInterval = 5 * time.Second
	}
}

type dnInfo struct {
	addr     string
	lastSeen time.Time
	alive    bool
	client   *transport.Client
	// nextSeq is the report sequence number the namenode expects next
	// from this datanode; a heartbeat arriving with any other non-zero
	// Seq means a delta was lost (or reordered) and the incremental view
	// may be stale. Zero until the datanode opts into sequencing.
	nextSeq uint64
	// epoch identifies the full-inventory snapshot the datanode's deltas
	// extend; bumped by every register/full report.
	epoch uint64
	// ssdBytes is the flash occupancy this datanode last reported; kept
	// so the cluster-wide occupancy gauge can be maintained by delta.
	ssdBytes int64
}

// NameNode is the file-system master process. Start it with Start, stop
// it with Close. All namespace and block state lives behind ns; the
// NameNode itself owns only the datanode registry, the RPC surface, and
// the embedded Ignem master.
type NameNode struct {
	clock          simclock.Clock
	net            transport.Network
	cfg            Config
	server         *transport.Server
	listener       transport.Listener
	shardListeners []transport.Listener
	master         *ignem.Coordinator
	ns             Namespace
	// walLog is the migration WAL handed to the Ignem master, nil when
	// journaling is off; the namenode owns its lifecycle.
	walLog *wal.Log

	// tierErr records a bad tier configuration (unknown policy name)
	// from New; Start surfaces it.
	tierErr error

	// stateMu guards closed.
	stateMu sync.Mutex
	closed  bool

	// dnmu guards the datanode registry: the datanodes map, every
	// dnInfo's fields, and liveCache. Splitting it from the namespace
	// locks keeps heartbeats and registrations off the metadata path.
	// dnmu nests innermost: it is only ever acquired under namespace
	// locks (via placeTargets and Resolve), never the reverse.
	dnmu      sync.RWMutex
	datanodes map[string]*dnInfo
	// liveCache is the sorted live-address list placement shuffles; nil
	// means stale (rebuilt on next use). Maintaining it on membership
	// and liveness changes takes the per-allocation O(n log n) sort off
	// the placement path — at 1000 nodes that sort dominated placeTargets.
	liveCache []string

	// intake is the bounded report-admission gate (see
	// Config.ReportIntake); nil means unbounded.
	intake chan struct{}

	metrics nnMetrics
}

// nnMetrics are the NameNode's control-plane counters. They are written
// on hot paths, so everything is an atomic counter/gauge from
// internal/metrics; Stats snapshots them.
type nnMetrics struct {
	heartbeats     metrics.Counter // heartbeat RPCs processed
	fullReports    metrics.Counter // full-inventory reconciles (register + blockReport)
	deltaAdded     metrics.Counter // block IDs added via incremental reports
	deltaRemoved   metrics.Counter // block IDs removed via incremental reports
	reportBytes    metrics.Counter // estimated wire bytes of report intake
	resyncRequests metrics.Counter // NeedFullReport responses issued
	busyRejects    metrics.Counter // reports rejected with dfs.ErrBusy
	sweeps         metrics.Counter // expiry sweeps run
	sweepLastNs    metrics.Gauge   // duration of the latest expiry sweep
	corruptReports metrics.Counter // corrupt-replica reports from datanodes
	ssdOccupancy   metrics.Gauge   // cluster flash occupancy per slave heartbeats
}

// Stats is a point-in-time snapshot of the NameNode's control-plane
// counters.
type Stats struct {
	Heartbeats         int64
	FullReports        int64
	DeltaBlocksAdded   int64
	DeltaBlocksRemoved int64
	ReportBytes        int64
	ResyncRequests     int64
	BusyRejects        int64
	ExpirySweeps       int64
	LastSweepNanos     int64
	// CorruptReports counts corrupt-replica reports received from
	// datanode read paths and scrubbers; each drops the bad replica from
	// the location map so the replication sweep restores a healthy copy.
	CorruptReports int64
	// SSDOccupancyBytes is the cluster-wide flash occupancy as last
	// reported by slave heartbeats (0 when the tier is disabled).
	SSDOccupancyBytes int64
	// Tiers is the Ignem master's tier-ladder accounting: per-tier
	// reserved bytes, promotions by destination, climbs, demotions, and
	// budget rejections. Zero-valued for a default (pin-in-RAM) master.
	Tiers ignem.TierCounters
}

// Stats snapshots the control-plane counters.
func (nn *NameNode) Stats() Stats {
	return Stats{
		Heartbeats:         nn.metrics.heartbeats.Load(),
		FullReports:        nn.metrics.fullReports.Load(),
		DeltaBlocksAdded:   nn.metrics.deltaAdded.Load(),
		DeltaBlocksRemoved: nn.metrics.deltaRemoved.Load(),
		ReportBytes:        nn.metrics.reportBytes.Load(),
		ResyncRequests:     nn.metrics.resyncRequests.Load(),
		BusyRejects:        nn.metrics.busyRejects.Load(),
		ExpirySweeps:       nn.metrics.sweeps.Load(),
		LastSweepNanos:     nn.metrics.sweepLastNs.Load(),
		CorruptReports:     nn.metrics.corruptReports.Load(),
		SSDOccupancyBytes:  nn.metrics.ssdOccupancy.Load(),
		Tiers:              nn.master.Stats().Tiers,
	}
}

// reportWireBytes estimates the control-plane wire cost of a report
// carrying n block IDs: a fixed per-message overhead plus the nominal 8
// bytes per ID. An estimator (rather than encoding every message) keeps
// the accounting off the wire path; the full-vs-incremental comparison
// only needs the per-ID cost to be charged consistently on both sides.
func reportWireBytes(n int) int64 { return 64 + 8*int64(n) }

// New creates a NameNode (not yet serving).
func New(clock simclock.Clock, net transport.Network, cfg Config) *NameNode {
	cfg.setDefaults()
	nn := &NameNode{
		clock:     clock,
		net:       net,
		cfg:       cfg,
		datanodes: make(map[string]*dnInfo),
	}
	if cfg.ReportIntake >= 0 {
		depth := cfg.ReportIntake
		if depth == 0 {
			depth = 2
			if cfg.MetaShards > 1 {
				depth = 2 * cfg.MetaShards
			}
		}
		nn.intake = make(chan struct{}, depth)
	}
	if cfg.MetaShards > 0 {
		nn.ns = newShardedNamespace(cfg.MetaShards, cfg.Seed, nn.placeTargets)
	} else {
		nn.ns = newMemNamespace(cfg.Seed, nn.placeTargets)
	}
	nn.master = ignem.NewCoordinator(nn, nn, cfg.Seed+1, nn.ns.Shards())
	if cfg.MigrationPolicy != "" || cfg.TierBudgets != (ignem.TierBudgets{}) {
		// New can't return an error without breaking every caller; an
		// unknown policy name surfaces when Start reports it.
		nn.tierErr = nn.master.ConfigureTiers(cfg.MigrationPolicy, cfg.TierBudgets)
	}
	return nn
}

// attachWAL opens the configured migration WAL (if any) and hands it to
// the Ignem master. Called from Start so the retry pump's goroutine
// spawns alongside the other serving loops.
func (nn *NameNode) attachWAL() error {
	be := nn.cfg.WALBackend
	if be == nil {
		if nn.cfg.WALDir == "" {
			return nil
		}
		fb, err := wal.OpenFile(nn.cfg.WALDir, "ignem-master.wal")
		if err != nil {
			return fmt.Errorf("namenode: open migration WAL: %w", err)
		}
		be = fb
	}
	nn.walLog = wal.New(be)
	nn.master.AttachJournal(nn.clock, nn.walLog, nn.cfg.WALRetryInterval)
	return nil
}

// RecoverMaster rebuilds the Ignem master's state from the migration
// WAL, resuming in-flight migrations after a master crash. Unlike
// RestartMaster it does NOT bump the epoch or broadcast purges: slaves
// keep their pins, and undelivered command batches are re-sent
// idempotently from the journal. The replay is reconciled against the
// namespace's pin side tables, which survive the master crash and
// reflect pin/unpin deltas whose journal appends died with the old
// master.
func (nn *NameNode) RecoverMaster() error {
	return nn.master.RecoverFromJournalReconciled(func(id dfs.BlockID, addr string) (ram, ssd bool) {
		ramHolders, ssdHolders := nn.ns.FastTierHolders(id)
		return containsAddr(ramHolders, addr), containsAddr(ssdHolders, addr)
	})
}

func containsAddr(list []string, addr string) bool {
	for _, a := range list {
		if a == addr {
			return true
		}
	}
	return false
}

// Start binds the RPC server and begins serving. It also starts the
// datanode-expiry sweeper.
func (nn *NameNode) Start() error {
	if nn.tierErr != nil {
		return fmt.Errorf("namenode: %w", nn.tierErr)
	}
	l, err := nn.net.Listen(nn.cfg.Addr)
	if err != nil {
		return fmt.Errorf("namenode: %w", err)
	}
	s := transport.NewServer(nn.clock)
	s.Handle("nn.create", wrap(nn.handleCreate))
	s.Handle("nn.addBlock", wrap(nn.handleAddBlock))
	s.Handle("nn.addBlocks", wrap(nn.handleAddBlocks))
	s.Handle("nn.retargetBlock", wrap(nn.handleRetargetBlock))
	s.Handle("nn.complete", wrap(nn.handleComplete))
	s.Handle("nn.getInfo", wrap(nn.handleGetInfo))
	s.Handle("nn.getLocations", wrap(nn.handleGetLocations))
	s.Handle("nn.delete", wrap(nn.handleDelete))
	s.Handle("nn.list", wrap(nn.handleList))
	s.Handle("nn.migrate", wrap(nn.handleMigrate))
	s.Handle("nn.evict", wrap(nn.handleEvict))
	s.Handle("nn.blockRead", wrap(nn.handleBlockRead))
	s.Handle("nn.register", wrap(nn.handleRegister))
	s.Handle("nn.blockReport", wrap(nn.handleBlockReport))
	s.Handle("nn.heartbeat", wrap(nn.handleHeartbeat))
	s.Handle("nn.epoch", wrap(nn.handleEpoch))
	s.Handle("nn.shardInfo", wrap(nn.handleShardInfo))
	s.Handle("nn.corruptReplica", wrap(nn.handleCorruptReplica))
	s.ServeBackground(l)
	nn.server = s
	nn.listener = l
	// Extra per-shard endpoints serve the same handler set on the same
	// server: a shard address is a load-spreading hint for shard-aware
	// clients, not a partition boundary, so any request is valid on any
	// endpoint.
	for _, addr := range nn.cfg.ShardAddrs {
		sl, err := nn.net.Listen(addr)
		if err != nil {
			nn.Close()
			return fmt.Errorf("namenode: shard endpoint %s: %w", addr, err)
		}
		s.ServeBackground(sl)
		nn.shardListeners = append(nn.shardListeners, sl)
	}
	if err := nn.attachWAL(); err != nil {
		nn.Close()
		return err
	}
	nn.clock.Go(nn.expiryLoop)
	if nn.cfg.ReplicationSweepInterval > 0 {
		nn.clock.Go(nn.replicationLoop)
	}
	return nil
}

// wrap adapts a typed handler to the transport's HandlerFunc.
func wrap[Req, Resp any](fn func(Req) (Resp, error)) transport.HandlerFunc {
	return func(arg any) (any, error) {
		req, ok := arg.(Req)
		if !ok {
			var want Req
			return nil, fmt.Errorf("namenode: bad request type %T, want %T", arg, want)
		}
		return fn(req)
	}
}

// Close stops serving and disconnects from all datanodes.
func (nn *NameNode) Close() {
	nn.stateMu.Lock()
	nn.closed = true
	nn.stateMu.Unlock()
	nn.dnmu.Lock()
	clients := make([]*transport.Client, 0, len(nn.datanodes))
	for _, dn := range nn.datanodes {
		if dn.client != nil {
			clients = append(clients, dn.client)
		}
	}
	nn.dnmu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	if nn.listener != nil {
		nn.listener.Close()
	}
	for _, l := range nn.shardListeners {
		l.Close()
	}
	if nn.server != nil {
		nn.server.Close()
	}
	nn.master.StopJournal()
	if nn.walLog != nil {
		nn.walLog.Close()
	}
}

func (nn *NameNode) isClosed() bool {
	nn.stateMu.Lock()
	defer nn.stateMu.Unlock()
	return nn.closed
}

// Master exposes the embedded Ignem master coordinator (for
// failure-injection tests and the cluster harness).
func (nn *NameNode) Master() *ignem.Coordinator { return nn.master }

// Shards reports the metadata plane's partition count (1 when
// unsharded).
func (nn *NameNode) Shards() int { return nn.ns.Shards() }

// RestartMaster simulates an Ignem master failure and recovery: the new
// master starts with an empty state and a new epoch, and the epoch bump
// is broadcast to every live slave so they purge stale reference lists
// immediately (the paper broadcasts the new master's address to all
// servers; slaves reset to match the new master's empty state).
func (nn *NameNode) RestartMaster() {
	nn.master.Restart()
	epoch := nn.master.Epoch()
	for _, addr := range nn.LiveDataNodes() {
		// Best effort: an unreachable slave purges lazily when it sees
		// the next new-epoch command batch.
		_ = nn.SendEvict(addr, dfs.EvictBatch{Epoch: epoch})
	}
}

// handleEpoch reports the Ignem master's current epoch. Revived slaves
// probe it during re-registration so stale old-epoch pins reconcile
// immediately instead of waiting for the next epoch broadcast.
func (nn *NameNode) handleEpoch(dfs.EpochReq) (dfs.EpochResp, error) {
	return dfs.EpochResp{Epoch: nn.master.Epoch()}, nil
}

// handleShardInfo reports the metadata plane's shard layout so clients
// can route namespace RPCs shard-locally. Addrs may be shorter than the
// shard count (or empty): unlisted shards are served at the primary
// address.
func (nn *NameNode) handleShardInfo(dfs.ShardInfoReq) (dfs.ShardInfoResp, error) {
	return dfs.ShardInfoResp{
		Shards: nn.ns.Shards(),
		Addrs:  append([]string(nil), nn.cfg.ShardAddrs...),
	}, nil
}

// ---- namespace handlers ----

func (nn *NameNode) handleCreate(req dfs.CreateReq) (dfs.CreateResp, error) {
	if req.Path == "" {
		return dfs.CreateResp{}, fmt.Errorf("namenode: empty path")
	}
	bs := req.BlockSize
	if bs <= 0 {
		bs = nn.cfg.DefaultBlockSize
	}
	rep := req.Replication
	if rep <= 0 {
		rep = nn.cfg.DefaultReplication
	}
	if err := nn.ns.Create(req.Path, bs, rep); err != nil {
		return dfs.CreateResp{}, err
	}
	return dfs.CreateResp{}, nil
}

func (nn *NameNode) handleAddBlock(req dfs.AddBlockReq) (dfs.AddBlockResp, error) {
	var sums []uint32
	if req.Checksum != 0 {
		sums = []uint32{req.Checksum}
	}
	located, err := nn.ns.Allocate(req.Path, []int64{req.Size}, sums, req.Exclude, req.ReqID, false)
	if err != nil {
		return dfs.AddBlockResp{}, err
	}
	return dfs.AddBlockResp{Located: located[0]}, nil
}

// handleAddBlocks allocates a window of blocks under one namespace-lock
// acquisition. Placement is drawn per block in request order, so a batch
// yields the same targets the equivalent addBlock sequence would.
// Validation is all-or-nothing: a bad size anywhere rejects the batch
// before any block is allocated.
func (nn *NameNode) handleAddBlocks(req dfs.AddBlocksReq) (dfs.AddBlocksResp, error) {
	if len(req.Sizes) == 0 {
		return dfs.AddBlocksResp{}, fmt.Errorf("namenode: addBlocks with no sizes")
	}
	if len(req.Checksums) != 0 && len(req.Checksums) != len(req.Sizes) {
		return dfs.AddBlocksResp{}, fmt.Errorf("namenode: addBlocks with %d checksums for %d sizes", len(req.Checksums), len(req.Sizes))
	}
	located, err := nn.ns.Allocate(req.Path, req.Sizes, req.Checksums, req.Exclude, req.ReqID, true)
	if err != nil {
		return dfs.AddBlocksResp{}, err
	}
	return dfs.AddBlocksResp{Located: located}, nil
}

// handleRetargetBlock replaces an allocated block's target set with a
// fresh placement that avoids the excluded nodes, preserving the block's
// ID and file offset. The writer retries the same block on the new
// targets, so the file's block order is unaffected even when later
// blocks are already in flight. Replicas that did land on old targets
// are reconciled away (or kept as benign over-replication) by block
// reports. Safe to retry: re-picking targets twice costs extra rng
// draws but allocates nothing.
func (nn *NameNode) handleRetargetBlock(req dfs.RetargetBlockReq) (dfs.RetargetBlockResp, error) {
	located, err := nn.ns.Retarget(req.Path, req.Block, req.Exclude)
	if err != nil {
		return dfs.RetargetBlockResp{}, err
	}
	return dfs.RetargetBlockResp{Located: located}, nil
}

// handleCorruptReplica processes a datanode's report that one of its
// replicas failed checksum verification (on read, migrate-copy, or a
// scrub sweep). The replica is dropped from the location map — the
// datanode already deleted its copy — which makes the block
// under-replicated, so the next replication sweep pulls a fresh copy
// from a healthy holder.
func (nn *NameNode) handleCorruptReplica(req dfs.CorruptReplicaReq) (dfs.CorruptReplicaResp, error) {
	nn.metrics.corruptReports.Add(1)
	nn.ns.ApplyReplicaDeltas(req.Addr, nil, []dfs.BlockID{req.Block})
	return dfs.CorruptReplicaResp{}, nil
}

func (nn *NameNode) handleComplete(req dfs.CompleteReq) (dfs.CompleteResp, error) {
	if err := nn.ns.Complete(req.Path); err != nil {
		return dfs.CompleteResp{}, err
	}
	return dfs.CompleteResp{}, nil
}

func (nn *NameNode) handleGetInfo(req dfs.GetInfoReq) (dfs.GetInfoResp, error) {
	info, err := nn.ns.Info(req.Path)
	if err != nil {
		return dfs.GetInfoResp{}, err
	}
	return dfs.GetInfoResp{Info: info}, nil
}

func (nn *NameNode) handleGetLocations(req dfs.GetLocationsReq) (dfs.GetLocationsResp, error) {
	blocks, err := nn.Resolve(req.Path)
	if err != nil {
		return dfs.GetLocationsResp{}, err
	}
	if req.Job != "" {
		for i := range blocks {
			addr := nn.master.AssignedReplica(req.Job, blocks[i].Block.ID)
			if addr == "" {
				continue
			}
			// Only report the assignment while the replica is live.
			for _, n := range blocks[i].Nodes {
				if n == addr {
					blocks[i].Assigned = addr
					break
				}
			}
		}
	}
	return dfs.GetLocationsResp{Blocks: blocks}, nil
}

func (nn *NameNode) handleDelete(req dfs.DeleteReq) (dfs.DeleteResp, error) {
	toDelete, err := nn.ns.Delete(req.Path)
	if err != nil {
		return dfs.DeleteResp{}, err
	}
	// Best effort: a dead datanode's replicas die with it anyway.
	for addr, ids := range toDelete {
		c, err := nn.slaveClient(addr)
		if err != nil {
			continue
		}
		_, _ = transport.Call[dfs.DeleteBlocksResp](c, "dn.deleteBlocks", dfs.DeleteBlocksReq{Blocks: ids})
	}
	return dfs.DeleteResp{}, nil
}

func (nn *NameNode) handleList(req dfs.ListReq) (dfs.ListResp, error) {
	return dfs.ListResp{Files: nn.ns.List(req.Prefix)}, nil
}

func (nn *NameNode) handleMigrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	return nn.master.Migrate(req)
}

func (nn *NameNode) handleEvict(req dfs.EvictReq) (dfs.EvictResp, error) {
	return nn.master.Evict(req)
}

// handleBlockRead ingests a client's batched cache-hit notification and
// relays it to the Ignem master, which forwards each block to the slave
// holding its migrated replica. Always succeeds: a notification for an
// unknown job or block simply has no references to release.
func (nn *NameNode) handleBlockRead(req dfs.BlockReadReq) (dfs.BlockReadResp, error) {
	nn.master.NotifyRead(req.Job, req.Blocks)
	return dfs.BlockReadResp{}, nil
}

// ---- replica placement ----

// placeTargets picks up to rep distinct live datanodes avoiding the
// excluded addresses, drawing randomness from the caller's rng stream
// (the namespace passes the owning shard's). With rack information it
// applies HDFS's default policy; otherwise placement is a seeded random
// choice. The exclusion filter runs after the seeded shuffle, so calls
// with no exclusions draw the rng exactly as they always have (seeded
// figures stay bit-identical); an exclusion list that would leave no
// candidates is ignored rather than failing the allocation — better a
// replica on a suspect node than none at all. Takes dnmu (read) itself;
// the caller holds its shard and rng locks.
func (nn *NameNode) placeTargets(rng *rand.Rand, rep int, exclude []string) []string {
	cached := nn.liveSorted()
	// Copy before shuffling: the cache is shared. The base order is the
	// same sorted list the historical per-call build produced, so the
	// seeded shuffle draws identically.
	live := make([]string, len(cached))
	copy(live, cached)
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(exclude) > 0 {
		ex := make(map[string]bool, len(exclude))
		for _, a := range exclude {
			ex[a] = true
		}
		kept := make([]string, 0, len(live))
		for _, a := range live {
			if !ex[a] {
				kept = append(kept, a)
			}
		}
		if len(kept) > 0 {
			live = kept
		}
	}
	if rep > len(live) {
		rep = len(live)
	}
	if len(nn.cfg.Racks) == 0 || rep < 2 {
		return live[:rep]
	}
	return nn.rackAwareTargets(live, rep)
}

// rackAwareTargets applies the HDFS default placement: first replica
// anywhere, second on a different rack, third on the second's rack,
// the rest wherever distinct nodes remain.
func (nn *NameNode) rackAwareTargets(shuffled []string, rep int) []string {
	rackOf := func(addr string) string { return nn.cfg.Racks[addr] }
	targets := []string{shuffled[0]}
	used := map[string]bool{shuffled[0]: true}

	pick := func(want func(addr string) bool) bool {
		for _, a := range shuffled {
			if !used[a] && want(a) {
				targets = append(targets, a)
				used[a] = true
				return true
			}
		}
		return false
	}

	// Second replica: off the first rack if possible.
	firstRack := rackOf(targets[0])
	if len(targets) < rep {
		if !pick(func(a string) bool { return rackOf(a) != firstRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Third replica: on the second replica's rack if possible.
	if len(targets) < rep && len(targets) >= 2 {
		secondRack := rackOf(targets[1])
		if !pick(func(a string) bool { return rackOf(a) == secondRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Remaining replicas: any distinct node.
	for len(targets) < rep {
		if !pick(func(string) bool { return true }) {
			break
		}
	}
	return targets
}

// ---- datanode registry ----

// acquireIntake claims a slot on the bounded report-admission gate; a
// false return means the caller must answer dfs.ErrBusy. Non-blocking
// by design: pushing back immediately (and letting the datanode retry
// with jittered backoff) is what prevents a reconnect storm from
// queueing an unbounded convoy of full-table reconciles.
func (nn *NameNode) acquireIntake() bool {
	if nn.intake == nil {
		return true
	}
	select {
	case nn.intake <- struct{}{}:
		return true
	default:
		nn.metrics.busyRejects.Inc()
		return false
	}
}

func (nn *NameNode) releaseIntake() {
	if nn.intake != nil {
		<-nn.intake
	}
}

func (nn *NameNode) handleRegister(req dfs.RegisterReq) (dfs.RegisterResp, error) {
	if !nn.acquireIntake() {
		return dfs.RegisterResp{}, dfs.ErrBusy
	}
	defer nn.releaseIntake()
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		dn = &dnInfo{addr: req.Addr}
		nn.datanodes[req.Addr] = dn
	}
	stale := dn.client
	dn.client = nil
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	if req.Seq > 0 {
		// A register is a full snapshot: it re-anchors the delta
		// sequence and starts the epoch its deltas will extend.
		dn.nextSeq = req.Seq + 1
		dn.epoch = req.Epoch
	}
	nn.liveCache = nil
	nn.dnmu.Unlock()
	nn.metrics.fullReports.Inc()
	nn.metrics.reportBytes.Add(reportWireBytes(len(req.Blocks)))
	nn.ns.Reconcile(req.Addr, req.Blocks)
	if stale != nil {
		stale.Close()
	}
	return dfs.RegisterResp{}, nil
}

func (nn *NameNode) handleBlockReport(req dfs.BlockReportReq) (dfs.BlockReportResp, error) {
	nn.dnmu.RLock()
	dn := nn.datanodes[req.Addr]
	nn.dnmu.RUnlock()
	if dn == nil {
		return dfs.BlockReportResp{}, fmt.Errorf("namenode: block report from unregistered %s", req.Addr)
	}
	if !nn.acquireIntake() {
		return dfs.BlockReportResp{}, dfs.ErrBusy
	}
	defer nn.releaseIntake()
	nn.dnmu.Lock()
	// A full report proves the node is alive just as well as a heartbeat.
	if !dn.alive {
		nn.liveCache = nil
	}
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	if req.Seq > 0 {
		dn.nextSeq = req.Seq + 1
		dn.epoch = req.Epoch
	}
	nn.dnmu.Unlock()
	nn.metrics.fullReports.Inc()
	nn.metrics.reportBytes.Add(reportWireBytes(len(req.Blocks)))
	nn.ns.Reconcile(req.Addr, req.Blocks)
	return dfs.BlockReportResp{}, nil
}

func (nn *NameNode) handleHeartbeat(req dfs.HeartbeatReq) (dfs.HeartbeatResp, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		nn.dnmu.Unlock()
		return dfs.HeartbeatResp{}, fmt.Errorf("namenode: heartbeat from unregistered %s", req.Addr)
	}
	if !dn.alive {
		nn.liveCache = nil
	}
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	var needFull, staleEpoch bool
	if req.SSDBytes != dn.ssdBytes {
		nn.metrics.ssdOccupancy.Add(req.SSDBytes - dn.ssdBytes)
		dn.ssdBytes = req.SSDBytes
	}
	if req.Seq > 0 {
		if dn.nextSeq != 0 && req.Seq != dn.nextSeq {
			// A delta went missing (lost heartbeat, reordered retry):
			// the incremental view may have diverged, so ask for a full
			// snapshot. The deltas that DID arrive still apply — they
			// only ever make the view fresher.
			needFull = true
		}
		if req.Epoch != dn.epoch {
			needFull = true
			// Deltas from an older snapshot than the one already
			// reconciled could resurrect state the resync removed; skip
			// them entirely.
			staleEpoch = req.Epoch < dn.epoch
		}
		dn.nextSeq = req.Seq + 1
	}
	nn.dnmu.Unlock()
	nn.metrics.heartbeats.Inc()
	nn.metrics.reportBytes.Add(reportWireBytes(
		len(req.Pinned) + len(req.Unpinned) + len(req.SSDPinned) + len(req.SSDUnpinned) +
			len(req.Added) + len(req.Removed)))
	if needFull {
		nn.metrics.resyncRequests.Inc()
	}
	if staleEpoch {
		return dfs.HeartbeatResp{NeedFullReport: true}, nil
	}
	// The steady-state heartbeat carries no deltas; only touch the
	// namespace locks when there is state to record.
	if len(req.Pinned)+len(req.Unpinned) > 0 {
		nn.ns.PinDeltas(req.Addr, req.Pinned, req.Unpinned)
		// Confirmed pins advance the migration WAL's state machine to
		// swapped/checked (no-op without a journal): the slave verified
		// and pinned these blocks, so recovery won't re-send them.
		nn.master.NotePinned(req.Addr, dfs.TierRAM, req.Pinned)
		// Confirmed unpins release the master's RAM-budget charge (no-op
		// without tier budgets).
		nn.master.NoteUnpinned(req.Addr, dfs.TierRAM, req.Unpinned)
	}
	if len(req.SSDPinned)+len(req.SSDUnpinned) > 0 {
		nn.ns.SSDDeltas(req.Addr, req.SSDPinned, req.SSDUnpinned)
		// A confirmed flash pin is what triggers the ladder's second
		// rung (the policy's climb decision); a confirmed flash unpin
		// releases the SSD-budget charge.
		nn.master.NotePinned(req.Addr, dfs.TierSSD, req.SSDPinned)
		nn.master.NoteUnpinned(req.Addr, dfs.TierSSD, req.SSDUnpinned)
	}
	if len(req.Added)+len(req.Removed) > 0 {
		nn.ns.ApplyReplicaDeltas(req.Addr, req.Added, req.Removed)
		nn.metrics.deltaAdded.Add(int64(len(req.Added)))
		nn.metrics.deltaRemoved.Add(int64(len(req.Removed)))
	}
	return dfs.HeartbeatResp{NeedFullReport: needFull}, nil
}

// expiryLoop marks datanodes dead when their heartbeats stop; the block
// manager then reports only live replica locations, which is how the
// Ignem master sees "an updated view with only live locations".
//
// The scan runs under the registry READ lock — at 1000 datanodes a
// write-locked scan would stall every heartbeat once a second — and
// only the (rare, usually empty) suspect list is re-checked and marked
// under the write lock.
func (nn *NameNode) expiryLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ExpirySweepInterval)
		if nn.isClosed() {
			return
		}
		// Sweep duration is measured in wall time: it meters real scan
		// cost, and on the virtual clock the whole sweep is instantaneous.
		start := time.Now()
		now := nn.clock.Now()
		var suspects []*dnInfo
		nn.dnmu.RLock()
		for _, dn := range nn.datanodes {
			if dn.alive && now.Sub(dn.lastSeen) > nn.cfg.HeartbeatExpiry {
				suspects = append(suspects, dn)
			}
		}
		nn.dnmu.RUnlock()
		var died []string
		if len(suspects) > 0 {
			nn.dnmu.Lock()
			for _, dn := range suspects {
				// Re-check under the write lock: a heartbeat may have
				// revived the node between the two lock acquisitions.
				if dn.alive && now.Sub(dn.lastSeen) > nn.cfg.HeartbeatExpiry {
					dn.alive = false
					died = append(died, dn.addr)
					// The dead node's flash residency is gone with it.
					if dn.ssdBytes != 0 {
						nn.metrics.ssdOccupancy.Add(-dn.ssdBytes)
						dn.ssdBytes = 0
					}
				}
			}
			if len(died) > 0 {
				nn.liveCache = nil
			}
			nn.dnmu.Unlock()
		}
		nn.metrics.sweeps.Inc()
		nn.metrics.sweepLastNs.Set(time.Since(start).Nanoseconds())
		if len(died) == 0 {
			continue
		}
		// Drop the dead nodes' pinned state: their memory is gone.
		nn.ns.DropPinned(died)
	}
}

// replicationLoop repairs under-replicated blocks: for each block with
// fewer live replicas than its file requested, a live non-holder is told
// to pull a copy from a surviving holder.
func (nn *NameNode) replicationLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ReplicationSweepInterval)
		if nn.isClosed() {
			return
		}
		live := map[string]bool{}
		nn.dnmu.RLock()
		for addr, dn := range nn.datanodes {
			live[addr] = dn.alive
		}
		nn.dnmu.RUnlock()
		for _, j := range nn.ns.RepairScan(live) {
			j := j
			nn.clock.Go(func() {
				err := nn.pullReplica(j.target, j.source, j.block)
				nn.ns.RepairDone(j.block.ID, j.target, err == nil)
			})
		}
	}
}

// pullReplica asks target to copy block from source.
func (nn *NameNode) pullReplica(target, source string, b dfs.Block) error {
	c, err := nn.slaveClient(target)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.PullBlockResp](c, "dn.pullBlock", dfs.PullBlockReq{Block: b, From: source})
	return err
}

// liveSorted returns the cached sorted live-address list, rebuilding it
// if a membership or liveness change invalidated it. The returned slice
// is shared and must not be mutated.
func (nn *NameNode) liveSorted() []string {
	nn.dnmu.RLock()
	cached := nn.liveCache
	nn.dnmu.RUnlock()
	if cached != nil {
		return cached
	}
	nn.dnmu.Lock()
	defer nn.dnmu.Unlock()
	if nn.liveCache == nil {
		live := make([]string, 0, len(nn.datanodes))
		for addr, dn := range nn.datanodes {
			if dn.alive {
				live = append(live, addr)
			}
		}
		sort.Strings(live)
		nn.liveCache = live
	}
	return nn.liveCache
}

// LiveDataNodes returns the addresses of datanodes considered alive.
func (nn *NameNode) LiveDataNodes() []string {
	live := nn.liveSorted()
	out := make([]string, len(live))
	copy(out, live)
	return out
}

// ---- ignem.Resolver ----

// Resolve maps a file to its blocks with live replica locations and
// current migration state. It is the read hot path: the namespace
// returns raw locations under its shard read locks, and liveness is
// filtered here under the registry read lock, so concurrent lookups
// never serialize.
func (nn *NameNode) Resolve(path string) ([]dfs.LocatedBlock, error) {
	raw, err := nn.ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	out := make([]dfs.LocatedBlock, 0, len(raw))
	nn.dnmu.RLock()
	defer nn.dnmu.RUnlock()
	for _, rb := range raw {
		lb := dfs.LocatedBlock{Block: rb.block, Offset: rb.offset, Checksum: rb.checksum}
		for _, addr := range rb.nodes {
			if dn := nn.datanodes[addr]; dn != nil && dn.alive {
				lb.Nodes = append(lb.Nodes, addr)
			}
		}
		sort.Strings(lb.Nodes)
		for _, addr := range rb.pinned {
			if dn := nn.datanodes[addr]; dn != nil && dn.alive {
				lb.Migrated = append(lb.Migrated, addr)
			}
		}
		sort.Strings(lb.Migrated)
		for _, addr := range rb.onSSD {
			if dn := nn.datanodes[addr]; dn != nil && dn.alive {
				lb.OnSSD = append(lb.OnSSD, addr)
			}
		}
		sort.Strings(lb.OnSSD)
		out = append(out, lb)
	}
	return out, nil
}

// ---- ignem.SlaveLink ----

// SendMigrate pushes a migrate batch to the slave embedded in the
// datanode at addr.
func (nn *NameNode) SendMigrate(addr string, batch dfs.MigrateBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.MigrateBatchResp](c, "ignem.migrateBatch", batch)
	return err
}

// SendEvict pushes an evict batch to the slave at addr.
func (nn *NameNode) SendEvict(addr string, batch dfs.EvictBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.EvictBatchResp](c, "ignem.evictBatch", batch)
	return err
}

// SendDemote pushes a demote batch to the slave at addr — the ladder's
// downward arm (ignem.DemoteSender).
func (nn *NameNode) SendDemote(addr string, batch dfs.DemoteBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.DemoteBatchResp](c, "ignem.demoteBatch", batch)
	return err
}

// SendReadNotify pushes a remote-read notification batch to the slave at
// addr.
func (nn *NameNode) SendReadNotify(addr string, batch dfs.ReadNotifyBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.ReadNotifyBatchResp](c, "ignem.readNotify", batch)
	return err
}

// slaveClient returns (dialing on demand) the command client for addr.
func (nn *NameNode) slaveClient(addr string) (*transport.Client, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[addr]
	if dn == nil || !dn.alive {
		nn.dnmu.Unlock()
		return nil, fmt.Errorf("namenode: datanode %s not available", addr)
	}
	if dn.client != nil {
		c := dn.client
		nn.dnmu.Unlock()
		return c, nil
	}
	nn.dnmu.Unlock()

	c, err := transport.Dial(nn.clock, nn.net, addr)
	if err != nil {
		return nil, fmt.Errorf("namenode: dial %s: %w", addr, err)
	}
	nn.dnmu.Lock()
	defer nn.dnmu.Unlock()
	if dn.client != nil { // lost the dial race; keep the winner
		defer c.Close()
		return dn.client, nil
	}
	dn.client = c
	return c, nil
}
