// Package namenode implements the file-system master: the namespace,
// block manager, datanode registry, and the embedded Ignem master.
package namenode

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/ignem"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Config configures a NameNode.
type Config struct {
	// Addr is the address the namenode listens on.
	Addr string
	// DefaultBlockSize applies to files created without one.
	DefaultBlockSize int64
	// DefaultReplication applies to files created without one.
	DefaultReplication int
	// HeartbeatExpiry is how long after the last heartbeat a datanode is
	// declared dead. Default 10s.
	HeartbeatExpiry time.Duration
	// ExpirySweepInterval is how often dead datanodes are detected.
	// Default 1s.
	ExpirySweepInterval time.Duration
	// Seed drives replica placement and the Ignem master's replica
	// choice.
	Seed int64
	// ReplicationSweepInterval is how often under-replicated blocks are
	// repaired after node failures. Zero disables re-replication.
	// Default 5s.
	ReplicationSweepInterval time.Duration
	// Racks maps datanode address to rack name. When non-empty,
	// placement follows HDFS's default rack-aware policy: the second
	// replica goes to a different rack than the first, and the third to
	// the second replica's rack. An empty map means flat placement.
	Racks map[string]string
}

func (c *Config) setDefaults() {
	if c.DefaultBlockSize <= 0 {
		c.DefaultBlockSize = dfs.DefaultBlockSize
	}
	if c.DefaultReplication <= 0 {
		c.DefaultReplication = dfs.DefaultReplication
	}
	if c.HeartbeatExpiry <= 0 {
		c.HeartbeatExpiry = 10 * time.Second
	}
	if c.ExpirySweepInterval <= 0 {
		c.ExpirySweepInterval = time.Second
	}
	if c.ReplicationSweepInterval == 0 {
		c.ReplicationSweepInterval = 5 * time.Second
	}
}

type fileEntry struct {
	info   dfs.FileInfo
	blocks []dfs.Block
	// lastAllocID/lastAllocResp cache the file's most recent allocation
	// keyed by the caller's request ID, making allocation retries after a
	// lost reply idempotent. One-deep is enough: a file has one writer
	// and the writer allocates serially, so a retry can only ever be of
	// the latest allocation.
	lastAllocID   uint64
	lastAllocResp any
}

type blockMeta struct {
	size    int64
	want    int                 // the file's replication factor
	nodes   map[string]struct{} // datanode addresses with a replica
	pinned  map[string]struct{} // addresses where Ignem has it in memory
	healing bool                // a re-replication pull is in flight
}

type dnInfo struct {
	addr     string
	lastSeen time.Time
	alive    bool
	client   *transport.Client
}

// NameNode is the file-system master process. Start it with Start, stop
// it with Close.
type NameNode struct {
	clock    simclock.Clock
	net      transport.Network
	cfg      Config
	server   *transport.Server
	listener transport.Listener
	master   *ignem.Master

	// mu guards the namespace: files, blocks (and each blockMeta's
	// contents), nextBlock, and closed. Metadata lookups (getInfo,
	// getLocations, list, Resolve) take it in read mode so they never
	// contend with each other.
	mu        sync.RWMutex
	files     map[string]*fileEntry
	blocks    map[dfs.BlockID]*blockMeta
	nextBlock dfs.BlockID
	closed    bool

	// dnmu guards the datanode registry: the datanodes map and every
	// dnInfo's fields. Splitting it from mu keeps heartbeats and
	// registrations off the namespace lock. When both locks are held,
	// mu is acquired before dnmu; never the reverse.
	dnmu      sync.RWMutex
	datanodes map[string]*dnInfo

	// rngMu guards the placement rng. It is a leaf lock: nothing else is
	// acquired while holding it.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New creates a NameNode (not yet serving).
func New(clock simclock.Clock, net transport.Network, cfg Config) *NameNode {
	cfg.setDefaults()
	nn := &NameNode{
		clock:     clock,
		net:       net,
		cfg:       cfg,
		files:     make(map[string]*fileEntry),
		blocks:    make(map[dfs.BlockID]*blockMeta),
		datanodes: make(map[string]*dnInfo),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	nn.master = ignem.NewMaster(nn, nn, cfg.Seed+1)
	return nn
}

// Start binds the RPC server and begins serving. It also starts the
// datanode-expiry sweeper.
func (nn *NameNode) Start() error {
	l, err := nn.net.Listen(nn.cfg.Addr)
	if err != nil {
		return fmt.Errorf("namenode: %w", err)
	}
	s := transport.NewServer(nn.clock)
	s.Handle("nn.create", wrap(nn.handleCreate))
	s.Handle("nn.addBlock", wrap(nn.handleAddBlock))
	s.Handle("nn.addBlocks", wrap(nn.handleAddBlocks))
	s.Handle("nn.retargetBlock", wrap(nn.handleRetargetBlock))
	s.Handle("nn.complete", wrap(nn.handleComplete))
	s.Handle("nn.getInfo", wrap(nn.handleGetInfo))
	s.Handle("nn.getLocations", wrap(nn.handleGetLocations))
	s.Handle("nn.delete", wrap(nn.handleDelete))
	s.Handle("nn.list", wrap(nn.handleList))
	s.Handle("nn.migrate", wrap(nn.handleMigrate))
	s.Handle("nn.evict", wrap(nn.handleEvict))
	s.Handle("nn.blockRead", wrap(nn.handleBlockRead))
	s.Handle("nn.register", wrap(nn.handleRegister))
	s.Handle("nn.blockReport", wrap(nn.handleBlockReport))
	s.Handle("nn.heartbeat", wrap(nn.handleHeartbeat))
	s.Handle("nn.epoch", wrap(nn.handleEpoch))
	s.ServeBackground(l)
	nn.server = s
	nn.listener = l
	nn.clock.Go(nn.expiryLoop)
	if nn.cfg.ReplicationSweepInterval > 0 {
		nn.clock.Go(nn.replicationLoop)
	}
	return nil
}

// wrap adapts a typed handler to the transport's HandlerFunc.
func wrap[Req, Resp any](fn func(Req) (Resp, error)) transport.HandlerFunc {
	return func(arg any) (any, error) {
		req, ok := arg.(Req)
		if !ok {
			var want Req
			return nil, fmt.Errorf("namenode: bad request type %T, want %T", arg, want)
		}
		return fn(req)
	}
}

// Close stops serving and disconnects from all datanodes.
func (nn *NameNode) Close() {
	nn.mu.Lock()
	nn.closed = true
	nn.mu.Unlock()
	nn.dnmu.Lock()
	clients := make([]*transport.Client, 0, len(nn.datanodes))
	for _, dn := range nn.datanodes {
		if dn.client != nil {
			clients = append(clients, dn.client)
		}
	}
	nn.dnmu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	if nn.listener != nil {
		nn.listener.Close()
	}
	if nn.server != nil {
		nn.server.Close()
	}
}

// Master exposes the embedded Ignem master (for failure-injection tests
// and the cluster harness).
func (nn *NameNode) Master() *ignem.Master { return nn.master }

// RestartMaster simulates an Ignem master failure and recovery: the new
// master starts with an empty state and a new epoch, and the epoch bump
// is broadcast to every live slave so they purge stale reference lists
// immediately (the paper broadcasts the new master's address to all
// servers; slaves reset to match the new master's empty state).
func (nn *NameNode) RestartMaster() {
	nn.master.Restart()
	epoch := nn.master.Epoch()
	for _, addr := range nn.LiveDataNodes() {
		// Best effort: an unreachable slave purges lazily when it sees
		// the next new-epoch command batch.
		_ = nn.SendEvict(addr, dfs.EvictBatch{Epoch: epoch})
	}
}

// handleEpoch reports the Ignem master's current epoch. Revived slaves
// probe it during re-registration so stale old-epoch pins reconcile
// immediately instead of waiting for the next epoch broadcast.
func (nn *NameNode) handleEpoch(dfs.EpochReq) (dfs.EpochResp, error) {
	return dfs.EpochResp{Epoch: nn.master.Epoch()}, nil
}

// ---- namespace handlers ----

func (nn *NameNode) handleCreate(req dfs.CreateReq) (dfs.CreateResp, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if req.Path == "" {
		return dfs.CreateResp{}, fmt.Errorf("namenode: empty path")
	}
	if _, ok := nn.files[req.Path]; ok {
		return dfs.CreateResp{}, fmt.Errorf("namenode: %s already exists", req.Path)
	}
	bs := req.BlockSize
	if bs <= 0 {
		bs = nn.cfg.DefaultBlockSize
	}
	rep := req.Replication
	if rep <= 0 {
		rep = nn.cfg.DefaultReplication
	}
	nn.files[req.Path] = &fileEntry{info: dfs.FileInfo{
		Path: req.Path, BlockSize: bs, Replication: rep,
	}}
	return dfs.CreateResp{}, nil
}

func (nn *NameNode) handleAddBlock(req dfs.AddBlockReq) (dfs.AddBlockResp, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, err := nn.openFileLocked(req.Path, []int64{req.Size})
	if err != nil {
		return dfs.AddBlockResp{}, err
	}
	if req.ReqID != 0 && req.ReqID == f.lastAllocID {
		if resp, ok := f.lastAllocResp.(dfs.AddBlockResp); ok {
			return resp, nil
		}
	}
	lb, err := nn.allocateBlockLocked(f, req.Size, req.Exclude)
	if err != nil {
		return dfs.AddBlockResp{}, err
	}
	resp := dfs.AddBlockResp{Located: lb}
	if req.ReqID != 0 {
		f.lastAllocID, f.lastAllocResp = req.ReqID, resp
	}
	return resp, nil
}

// handleAddBlocks allocates a window of blocks under one namespace-lock
// acquisition. Placement is drawn per block in request order, so a batch
// yields the same targets the equivalent addBlock sequence would.
// Validation is all-or-nothing: a bad size anywhere rejects the batch
// before any block is allocated.
func (nn *NameNode) handleAddBlocks(req dfs.AddBlocksReq) (dfs.AddBlocksResp, error) {
	if len(req.Sizes) == 0 {
		return dfs.AddBlocksResp{}, fmt.Errorf("namenode: addBlocks with no sizes")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, err := nn.openFileLocked(req.Path, req.Sizes)
	if err != nil {
		return dfs.AddBlocksResp{}, err
	}
	if req.ReqID != 0 && req.ReqID == f.lastAllocID {
		if resp, ok := f.lastAllocResp.(dfs.AddBlocksResp); ok {
			return resp, nil
		}
	}
	out := make([]dfs.LocatedBlock, 0, len(req.Sizes))
	for _, size := range req.Sizes {
		lb, err := nn.allocateBlockLocked(f, size, req.Exclude)
		if err != nil {
			return dfs.AddBlocksResp{}, err
		}
		out = append(out, lb)
	}
	resp := dfs.AddBlocksResp{Located: out}
	if req.ReqID != 0 {
		f.lastAllocID, f.lastAllocResp = req.ReqID, resp
	}
	return resp, nil
}

// openFileLocked looks up an open (unsealed) file and validates the
// proposed block sizes against its block size. Called with mu held.
func (nn *NameNode) openFileLocked(path string, sizes []int64) (*fileEntry, error) {
	f, ok := nn.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	if f.info.Complete {
		return nil, fmt.Errorf("namenode: %s is sealed", path)
	}
	for _, size := range sizes {
		if size <= 0 || size > f.info.BlockSize {
			return nil, fmt.Errorf("namenode: bad block size %d (file block size %d)", size, f.info.BlockSize)
		}
	}
	return f, nil
}

// allocateBlockLocked appends one block to f with freshly chosen replica
// targets. Called with mu held.
func (nn *NameNode) allocateBlockLocked(f *fileEntry, size int64, exclude []string) (dfs.LocatedBlock, error) {
	targets := nn.chooseTargetsLocked(f.info.Replication, exclude)
	if len(targets) == 0 {
		return dfs.LocatedBlock{}, fmt.Errorf("namenode: no live datanodes")
	}
	nn.nextBlock++
	b := dfs.Block{ID: nn.nextBlock, Size: size}
	meta := &blockMeta{size: size, want: f.info.Replication, nodes: make(map[string]struct{}), pinned: make(map[string]struct{})}
	for _, t := range targets {
		meta.nodes[t] = struct{}{}
	}
	nn.blocks[b.ID] = meta
	offset := f.info.Size
	f.blocks = append(f.blocks, b)
	f.info.Size += size
	return dfs.LocatedBlock{Block: b, Offset: offset, Nodes: targets}, nil
}

// chooseTargetsLocked picks up to rep distinct live datanodes avoiding
// the excluded addresses. With rack information it applies HDFS's
// default policy; otherwise placement is a seeded random choice. The
// exclusion filter runs after the seeded shuffle, so calls with no
// exclusions draw the rng exactly as they always have (seeded figures
// stay bit-identical); an exclusion list that would leave no candidates
// is ignored rather than failing the allocation — better a replica on a
// suspect node than none at all. Called with mu held; takes dnmu (read)
// and rngMu itself.
func (nn *NameNode) chooseTargetsLocked(rep int, exclude []string) []string {
	nn.dnmu.RLock()
	live := make([]string, 0, len(nn.datanodes))
	for addr, dn := range nn.datanodes {
		if dn.alive {
			live = append(live, addr)
		}
	}
	nn.dnmu.RUnlock()
	sort.Strings(live) // deterministic base order for the seeded shuffle
	nn.rngMu.Lock()
	nn.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	nn.rngMu.Unlock()
	if len(exclude) > 0 {
		ex := make(map[string]bool, len(exclude))
		for _, a := range exclude {
			ex[a] = true
		}
		kept := make([]string, 0, len(live))
		for _, a := range live {
			if !ex[a] {
				kept = append(kept, a)
			}
		}
		if len(kept) > 0 {
			live = kept
		}
	}
	if rep > len(live) {
		rep = len(live)
	}
	if len(nn.cfg.Racks) == 0 || rep < 2 {
		return live[:rep]
	}
	return nn.rackAwareTargets(live, rep)
}

// rackAwareTargets applies the HDFS default placement: first replica
// anywhere, second on a different rack, third on the second's rack,
// the rest wherever distinct nodes remain.
func (nn *NameNode) rackAwareTargets(shuffled []string, rep int) []string {
	rackOf := func(addr string) string { return nn.cfg.Racks[addr] }
	targets := []string{shuffled[0]}
	used := map[string]bool{shuffled[0]: true}

	pick := func(want func(addr string) bool) bool {
		for _, a := range shuffled {
			if !used[a] && want(a) {
				targets = append(targets, a)
				used[a] = true
				return true
			}
		}
		return false
	}

	// Second replica: off the first rack if possible.
	firstRack := rackOf(targets[0])
	if len(targets) < rep {
		if !pick(func(a string) bool { return rackOf(a) != firstRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Third replica: on the second replica's rack if possible.
	if len(targets) < rep && len(targets) >= 2 {
		secondRack := rackOf(targets[1])
		if !pick(func(a string) bool { return rackOf(a) == secondRack }) {
			pick(func(string) bool { return true })
		}
	}
	// Remaining replicas: any distinct node.
	for len(targets) < rep {
		if !pick(func(string) bool { return true }) {
			break
		}
	}
	return targets
}

// handleRetargetBlock replaces an allocated block's target set with a
// fresh placement that avoids the excluded nodes, preserving the block's
// ID and file offset. The writer retries the same block on the new
// targets, so the file's block order is unaffected even when later
// blocks are already in flight. Replicas that did land on old targets
// are reconciled away (or kept as benign over-replication) by block
// reports. Safe to retry: re-picking targets twice costs extra rng
// draws but allocates nothing.
func (nn *NameNode) handleRetargetBlock(req dfs.RetargetBlockReq) (dfs.RetargetBlockResp, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[req.Path]
	if !ok {
		return dfs.RetargetBlockResp{}, fmt.Errorf("namenode: no such file %s", req.Path)
	}
	var (
		blk    dfs.Block
		offset int64
		found  bool
	)
	for _, b := range f.blocks {
		if b.ID == req.Block {
			blk, found = b, true
			break
		}
		offset += b.Size
	}
	if !found {
		return dfs.RetargetBlockResp{}, fmt.Errorf("namenode: block %d not in %s", req.Block, req.Path)
	}
	meta := nn.blocks[req.Block]
	if meta == nil {
		return dfs.RetargetBlockResp{}, fmt.Errorf("namenode: block %d has no metadata", req.Block)
	}
	targets := nn.chooseTargetsLocked(meta.want, req.Exclude)
	if len(targets) == 0 {
		return dfs.RetargetBlockResp{}, fmt.Errorf("namenode: no live datanodes")
	}
	meta.nodes = make(map[string]struct{}, len(targets))
	for _, t := range targets {
		meta.nodes[t] = struct{}{}
	}
	return dfs.RetargetBlockResp{Located: dfs.LocatedBlock{Block: blk, Offset: offset, Nodes: targets}}, nil
}

func (nn *NameNode) handleComplete(req dfs.CompleteReq) (dfs.CompleteResp, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[req.Path]
	if !ok {
		return dfs.CompleteResp{}, fmt.Errorf("namenode: no such file %s", req.Path)
	}
	f.info.Complete = true
	return dfs.CompleteResp{}, nil
}

func (nn *NameNode) handleGetInfo(req dfs.GetInfoReq) (dfs.GetInfoResp, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	f, ok := nn.files[req.Path]
	if !ok {
		return dfs.GetInfoResp{}, fmt.Errorf("namenode: no such file %s", req.Path)
	}
	return dfs.GetInfoResp{Info: f.info}, nil
}

func (nn *NameNode) handleGetLocations(req dfs.GetLocationsReq) (dfs.GetLocationsResp, error) {
	blocks, err := nn.Resolve(req.Path)
	if err != nil {
		return dfs.GetLocationsResp{}, err
	}
	if req.Job != "" {
		for i := range blocks {
			addr := nn.master.AssignedReplica(req.Job, blocks[i].Block.ID)
			if addr == "" {
				continue
			}
			// Only report the assignment while the replica is live.
			for _, n := range blocks[i].Nodes {
				if n == addr {
					blocks[i].Assigned = addr
					break
				}
			}
		}
	}
	return dfs.GetLocationsResp{Blocks: blocks}, nil
}

func (nn *NameNode) handleDelete(req dfs.DeleteReq) (dfs.DeleteResp, error) {
	nn.mu.Lock()
	f, ok := nn.files[req.Path]
	if !ok {
		nn.mu.Unlock()
		return dfs.DeleteResp{}, fmt.Errorf("namenode: no such file %s", req.Path)
	}
	delete(nn.files, req.Path)
	// Collect the replica-deletion work per datanode.
	toDelete := make(map[string][]dfs.BlockID)
	for _, b := range f.blocks {
		if meta := nn.blocks[b.ID]; meta != nil {
			for addr := range meta.nodes {
				toDelete[addr] = append(toDelete[addr], b.ID)
			}
		}
		delete(nn.blocks, b.ID)
	}
	nn.mu.Unlock()

	// Best effort: a dead datanode's replicas die with it anyway.
	for addr, ids := range toDelete {
		c, err := nn.slaveClient(addr)
		if err != nil {
			continue
		}
		_, _ = transport.Call[dfs.DeleteBlocksResp](c, "dn.deleteBlocks", dfs.DeleteBlocksReq{Blocks: ids})
	}
	return dfs.DeleteResp{}, nil
}

func (nn *NameNode) handleList(req dfs.ListReq) (dfs.ListResp, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	var out []dfs.FileInfo
	for path, f := range nn.files {
		if len(path) >= len(req.Prefix) && path[:len(req.Prefix)] == req.Prefix {
			out = append(out, f.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return dfs.ListResp{Files: out}, nil
}

func (nn *NameNode) handleMigrate(req dfs.MigrateReq) (dfs.MigrateResp, error) {
	return nn.master.Migrate(req)
}

func (nn *NameNode) handleEvict(req dfs.EvictReq) (dfs.EvictResp, error) {
	return nn.master.Evict(req)
}

// handleBlockRead ingests a client's batched cache-hit notification and
// relays it to the Ignem master, which forwards each block to the slave
// holding its migrated replica. Always succeeds: a notification for an
// unknown job or block simply has no references to release.
func (nn *NameNode) handleBlockRead(req dfs.BlockReadReq) (dfs.BlockReadResp, error) {
	nn.master.NotifyRead(req.Job, req.Blocks)
	return dfs.BlockReadResp{}, nil
}

// ---- datanode registry ----

func (nn *NameNode) handleRegister(req dfs.RegisterReq) (dfs.RegisterResp, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		dn = &dnInfo{addr: req.Addr}
		nn.datanodes[req.Addr] = dn
	}
	stale := dn.client
	dn.client = nil
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	nn.dnmu.Unlock()
	nn.mu.Lock()
	nn.reconcileLocked(req.Addr, req.Blocks)
	nn.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	return dfs.RegisterResp{}, nil
}

func (nn *NameNode) handleBlockReport(req dfs.BlockReportReq) (dfs.BlockReportResp, error) {
	nn.dnmu.RLock()
	registered := nn.datanodes[req.Addr] != nil
	nn.dnmu.RUnlock()
	if !registered {
		return dfs.BlockReportResp{}, fmt.Errorf("namenode: block report from unregistered %s", req.Addr)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.reconcileLocked(req.Addr, req.Blocks)
	return dfs.BlockReportResp{}, nil
}

// reconcileLocked makes the location map agree with a datanode's actual
// replica inventory: entries it no longer holds are dropped; entries it
// holds (for blocks the namespace still knows) are added back.
func (nn *NameNode) reconcileLocked(addr string, held []dfs.BlockID) {
	holds := make(map[dfs.BlockID]struct{}, len(held))
	for _, id := range held {
		holds[id] = struct{}{}
	}
	for id, meta := range nn.blocks {
		if _, ok := holds[id]; ok {
			meta.nodes[addr] = struct{}{}
		} else {
			delete(meta.nodes, addr)
			delete(meta.pinned, addr)
		}
	}
}

func (nn *NameNode) handleHeartbeat(req dfs.HeartbeatReq) (dfs.HeartbeatResp, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[req.Addr]
	if dn == nil {
		nn.dnmu.Unlock()
		return dfs.HeartbeatResp{}, fmt.Errorf("namenode: heartbeat from unregistered %s", req.Addr)
	}
	dn.alive = true
	dn.lastSeen = nn.clock.Now()
	nn.dnmu.Unlock()
	// The steady-state heartbeat carries no pin deltas; only touch the
	// namespace lock when there is pinned state to record.
	if len(req.Pinned) == 0 && len(req.Unpinned) == 0 {
		return dfs.HeartbeatResp{}, nil
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	for _, id := range req.Pinned {
		if meta := nn.blocks[id]; meta != nil {
			meta.pinned[req.Addr] = struct{}{}
		}
	}
	for _, id := range req.Unpinned {
		if meta := nn.blocks[id]; meta != nil {
			delete(meta.pinned, req.Addr)
		}
	}
	return dfs.HeartbeatResp{}, nil
}

// expiryLoop marks datanodes dead when their heartbeats stop; the block
// manager then reports only live replica locations, which is how the
// Ignem master sees "an updated view with only live locations".
func (nn *NameNode) expiryLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ExpirySweepInterval)
		nn.mu.RLock()
		closed := nn.closed
		nn.mu.RUnlock()
		if closed {
			return
		}
		now := nn.clock.Now()
		var died []string
		nn.dnmu.Lock()
		for _, dn := range nn.datanodes {
			if dn.alive && now.Sub(dn.lastSeen) > nn.cfg.HeartbeatExpiry {
				dn.alive = false
				died = append(died, dn.addr)
			}
		}
		nn.dnmu.Unlock()
		if len(died) == 0 {
			continue
		}
		// Drop the dead nodes' pinned state: their memory is gone.
		nn.mu.Lock()
		for _, meta := range nn.blocks {
			for _, addr := range died {
				delete(meta.pinned, addr)
			}
		}
		nn.mu.Unlock()
	}
}

// replicationLoop repairs under-replicated blocks: for each block with
// fewer live replicas than its file requested, a live non-holder is told
// to pull a copy from a surviving holder.
func (nn *NameNode) replicationLoop() {
	for {
		nn.clock.Sleep(nn.cfg.ReplicationSweepInterval)
		nn.mu.Lock()
		if nn.closed {
			nn.mu.Unlock()
			return
		}
		type job struct {
			block  dfs.Block
			source string
			target string
			meta   *blockMeta
		}
		var jobs []job
		live := map[string]bool{}
		nn.dnmu.RLock()
		for addr, dn := range nn.datanodes {
			live[addr] = dn.alive
		}
		nn.dnmu.RUnlock()
		for id, meta := range nn.blocks {
			if meta.healing {
				continue
			}
			var holders []string
			for addr := range meta.nodes {
				if live[addr] {
					holders = append(holders, addr)
				}
			}
			if len(holders) == 0 || len(holders) >= meta.want {
				continue
			}
			sort.Strings(holders)
			var candidates []string
			for addr, ok := range live {
				if !ok {
					continue
				}
				if _, holds := meta.nodes[addr]; !holds {
					candidates = append(candidates, addr)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			sort.Strings(candidates)
			nn.rngMu.Lock()
			target := candidates[nn.rng.Intn(len(candidates))]
			source := holders[nn.rng.Intn(len(holders))]
			nn.rngMu.Unlock()
			meta.healing = true
			jobs = append(jobs, job{
				block:  dfs.Block{ID: id, Size: meta.size},
				source: source,
				target: target,
				meta:   meta,
			})
		}
		nn.mu.Unlock()

		for _, j := range jobs {
			j := j
			nn.clock.Go(func() {
				err := nn.pullReplica(j.target, j.source, j.block)
				nn.mu.Lock()
				j.meta.healing = false
				if err == nil {
					j.meta.nodes[j.target] = struct{}{}
				}
				nn.mu.Unlock()
			})
		}
	}
}

// pullReplica asks target to copy block from source.
func (nn *NameNode) pullReplica(target, source string, b dfs.Block) error {
	c, err := nn.slaveClient(target)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.PullBlockResp](c, "dn.pullBlock", dfs.PullBlockReq{Block: b, From: source})
	return err
}

// LiveDataNodes returns the addresses of datanodes considered alive.
func (nn *NameNode) LiveDataNodes() []string {
	nn.dnmu.RLock()
	defer nn.dnmu.RUnlock()
	var out []string
	for addr, dn := range nn.datanodes {
		if dn.alive {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// ---- ignem.Resolver ----

// Resolve maps a file to its blocks with live replica locations and
// current migration state. It is the read hot path: both locks are taken
// in read mode (mu before dnmu), so concurrent lookups never serialize.
func (nn *NameNode) Resolve(path string) ([]dfs.LocatedBlock, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	nn.dnmu.RLock()
	defer nn.dnmu.RUnlock()
	f, ok := nn.files[path]
	if !ok {
		return nil, fmt.Errorf("namenode: no such file %s", path)
	}
	out := make([]dfs.LocatedBlock, 0, len(f.blocks))
	var offset int64
	for _, b := range f.blocks {
		lb := dfs.LocatedBlock{Block: b, Offset: offset}
		if meta := nn.blocks[b.ID]; meta != nil {
			for addr := range meta.nodes {
				if dn := nn.datanodes[addr]; dn != nil && dn.alive {
					lb.Nodes = append(lb.Nodes, addr)
				}
			}
			sort.Strings(lb.Nodes)
			for addr := range meta.pinned {
				if dn := nn.datanodes[addr]; dn != nil && dn.alive {
					lb.Migrated = append(lb.Migrated, addr)
				}
			}
			sort.Strings(lb.Migrated)
		}
		offset += b.Size
		out = append(out, lb)
	}
	return out, nil
}

// ---- ignem.SlaveLink ----

// SendMigrate pushes a migrate batch to the slave embedded in the
// datanode at addr.
func (nn *NameNode) SendMigrate(addr string, batch dfs.MigrateBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.MigrateBatchResp](c, "ignem.migrateBatch", batch)
	return err
}

// SendEvict pushes an evict batch to the slave at addr.
func (nn *NameNode) SendEvict(addr string, batch dfs.EvictBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.EvictBatchResp](c, "ignem.evictBatch", batch)
	return err
}

// SendReadNotify pushes a remote-read notification batch to the slave at
// addr.
func (nn *NameNode) SendReadNotify(addr string, batch dfs.ReadNotifyBatch) error {
	c, err := nn.slaveClient(addr)
	if err != nil {
		return err
	}
	_, err = transport.Call[dfs.ReadNotifyBatchResp](c, "ignem.readNotify", batch)
	return err
}

// slaveClient returns (dialing on demand) the command client for addr.
func (nn *NameNode) slaveClient(addr string) (*transport.Client, error) {
	nn.dnmu.Lock()
	dn := nn.datanodes[addr]
	if dn == nil || !dn.alive {
		nn.dnmu.Unlock()
		return nil, fmt.Errorf("namenode: datanode %s not available", addr)
	}
	if dn.client != nil {
		c := dn.client
		nn.dnmu.Unlock()
		return c, nil
	}
	nn.dnmu.Unlock()

	c, err := transport.Dial(nn.clock, nn.net, addr)
	if err != nil {
		return nil, fmt.Errorf("namenode: dial %s: %w", addr, err)
	}
	nn.dnmu.Lock()
	defer nn.dnmu.Unlock()
	if dn.client != nil { // lost the dial race; keep the winner
		defer c.Close()
		return dn.client, nil
	}
	dn.client = c
	return c, nil
}
