package namenode

import (
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/simclock"
)

// nodesOf resolves a path and returns block 0's live replica addresses.
func nodesOf(t *testing.T, nn *NameNode, path string) []string {
	t.Helper()
	lbs, err := nn.Resolve(path)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if len(lbs) == 0 {
		t.Fatalf("resolve %s: no blocks", path)
	}
	return lbs[0].Nodes
}

func hasAddr(nodes []string, addr string) bool {
	for _, n := range nodes {
		if n == addr {
			return true
		}
	}
	return false
}

// TestIncrementalReportAppliesDeltas covers the steady state: block
// add/remove deltas riding heartbeats update the replica map without a
// full report, and in-sequence heartbeats never trigger a resync.
func TestIncrementalReportAppliesDeltas(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 0)
		defer h.nn.Close()
		for _, addr := range []string{"a", "b", "c"} {
			if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: addr, Seq: 1, Epoch: 1}); err != nil {
				t.Fatalf("register %s: %v", addr, err)
			}
		}
		lbs := h.mkFile(t, "/f", 1, 2)
		id := lbs[0].Block.ID
		// Find a node that did NOT get the block at allocation.
		outsider := ""
		for _, addr := range []string{"a", "b", "c"} {
			if !hasAddr(lbs[0].Nodes, addr) {
				outsider = addr
			}
		}
		if outsider == "" {
			t.Fatal("all nodes hold the block; want an outsider")
		}
		resp, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{
			Addr: outsider, Seq: 2, Epoch: 1, Added: []dfs.BlockID{id},
		})
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if resp.NeedFullReport {
			t.Fatal("in-sequence delta heartbeat asked for a full report")
		}
		if !hasAddr(nodesOf(t, h.nn, "/f"), outsider) {
			t.Fatalf("added delta not applied: %s missing from %v", outsider, nodesOf(t, h.nn, "/f"))
		}
		// Remove it again via a delta.
		if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{
			Addr: outsider, Seq: 3, Epoch: 1, Removed: []dfs.BlockID{id},
		}); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if hasAddr(nodesOf(t, h.nn, "/f"), outsider) {
			t.Fatalf("removed delta not applied: %s still in %v", outsider, nodesOf(t, h.nn, "/f"))
		}
		st := h.nn.Stats()
		if st.ResyncRequests != 0 {
			t.Fatalf("steady-state deltas triggered %d resyncs", st.ResyncRequests)
		}
		if st.DeltaBlocksAdded != 1 || st.DeltaBlocksRemoved != 1 {
			t.Fatalf("delta counters = %d/%d, want 1/1", st.DeltaBlocksAdded, st.DeltaBlocksRemoved)
		}
	})
}

// TestSequenceGapRequestsResync: a skipped sequence number means a
// report was lost; the namenode must ask for a full snapshot while
// still applying the deltas that did arrive.
func TestSequenceGapRequestsResync(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 0)
		defer h.nn.Close()
		for _, addr := range []string{"a", "b"} {
			if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: addr, Seq: 1, Epoch: 1}); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		lbs := h.mkFile(t, "/f", 1, 1)
		id := lbs[0].Block.ID
		outsider := "a"
		if hasAddr(lbs[0].Nodes, "a") {
			outsider = "b"
		}
		// Seq 2 is expected next; jump to 4 as if seq-2 and seq-3
		// heartbeats were lost.
		resp, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{
			Addr: outsider, Seq: 4, Epoch: 1, Added: []dfs.BlockID{id},
		})
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if !resp.NeedFullReport {
			t.Fatal("sequence gap did not request a full report")
		}
		if got := h.nn.Stats().ResyncRequests; got != 1 {
			t.Fatalf("ResyncRequests = %d, want 1", got)
		}
		// The delta that did arrive still applies.
		if !hasAddr(nodesOf(t, h.nn, "/f"), outsider) {
			t.Fatal("gap heartbeat's delta was discarded")
		}
		// The gap re-anchors: the next in-sequence heartbeat is clean.
		resp, err = h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: outsider, Seq: 5, Epoch: 1})
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if resp.NeedFullReport {
			t.Fatal("in-sequence heartbeat after re-anchor still asks for full report")
		}
	})
}

// TestStaleEpochDeltasSkipped: deltas tagged with an epoch older than
// the last reconciled snapshot could resurrect state the snapshot
// removed, so they must be dropped wholesale.
func TestStaleEpochDeltasSkipped(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 0)
		defer h.nn.Close()
		for _, addr := range []string{"a", "b"} {
			if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: addr, Seq: 1, Epoch: 1}); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		lbs := h.mkFile(t, "/f", 1, 1)
		id := lbs[0].Block.ID
		outsider := "a"
		if hasAddr(lbs[0].Nodes, "a") {
			outsider = "b"
		}
		// The outsider's full report at epoch 2 says it holds nothing.
		if _, err := h.nn.handleBlockReport(dfs.BlockReportReq{Addr: outsider, Seq: 2, Epoch: 2}); err != nil {
			t.Fatalf("blockReport: %v", err)
		}
		// A straggler delta from epoch 1 claims it holds the block. It
		// must be skipped: the epoch-2 snapshot supersedes it.
		resp, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{
			Addr: outsider, Seq: 3, Epoch: 1, Added: []dfs.BlockID{id},
		})
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if !resp.NeedFullReport {
			t.Fatal("stale-epoch heartbeat did not request a full report")
		}
		if hasAddr(nodesOf(t, h.nn, "/f"), outsider) {
			t.Fatal("stale-epoch delta was applied; snapshot state resurrected")
		}
	})
}

// TestDuplicateFullReportIdempotent: a retried full report (same seq,
// same epoch, same inventory) leaves the replica map unchanged.
func TestDuplicateFullReportIdempotent(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 0)
		defer h.nn.Close()
		for _, addr := range []string{"a", "b", "c"} {
			if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: addr, Seq: 1, Epoch: 1}); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		lbs := h.mkFile(t, "/f", 2, 2)
		holder := lbs[0].Nodes[0]
		inventory := []dfs.BlockID{lbs[0].Block.ID, lbs[1].Block.ID}
		before := nodesOf(t, h.nn, "/f")
		for i := 0; i < 2; i++ {
			if _, err := h.nn.handleBlockReport(dfs.BlockReportReq{
				Addr: holder, Blocks: inventory, Seq: 7, Epoch: 2,
			}); err != nil {
				t.Fatalf("blockReport %d: %v", i, err)
			}
			after := nodesOf(t, h.nn, "/f")
			if !hasAddr(after, holder) {
				t.Fatalf("report %d: holder %s lost from %v (before %v)", i, holder, after, before)
			}
		}
		// A heartbeat continuing the duplicate's sequence is in order.
		resp, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: holder, Seq: 8, Epoch: 2})
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		if resp.NeedFullReport {
			t.Fatal("duplicate full report broke the sequence anchor")
		}
	})
}

// TestReportIntakeBusy: with the intake gate saturated, registers and
// full reports bounce with dfs.ErrBusy — heartbeats (deltas) never do.
func TestReportIntakeBusy(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 1)
		defer h.nn.Close()
		// Saturate the gate from the outside (as concurrent reconciles
		// would).
		for i := 0; i < cap(h.nn.intake); i++ {
			h.nn.intake <- struct{}{}
		}
		if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: "z", Seq: 1, Epoch: 1}); !dfs.IsBusy(err) {
			t.Fatalf("register under saturated intake: err = %v, want busy", err)
		}
		if _, err := h.nn.handleBlockReport(dfs.BlockReportReq{Addr: "a", Seq: 1, Epoch: 1}); !dfs.IsBusy(err) {
			t.Fatalf("blockReport under saturated intake: err = %v, want busy", err)
		}
		// Delta heartbeats are never gated: freshness must survive a
		// reconnect storm.
		if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: "a"}); err != nil {
			t.Fatalf("heartbeat under saturated intake: %v", err)
		}
		if got := h.nn.Stats().BusyRejects; got != 2 {
			t.Fatalf("BusyRejects = %d, want 2", got)
		}
		// Drain the gate; reports flow again.
		for i := 0; i < cap(h.nn.intake); i++ {
			<-h.nn.intake
		}
		if _, err := h.nn.handleRegister(dfs.RegisterReq{Addr: "z", Seq: 1, Epoch: 1}); err != nil {
			t.Fatalf("register after drain: %v", err)
		}
	})
}

// TestFullReportRefreshesLiveness: a full block report proves the node
// is alive just as a heartbeat does — an expired node sending its
// resync snapshot comes back live without a separate re-register.
func TestFullReportRefreshesLiveness(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		h := newHarness(t, v, 2)
		defer h.nn.Close()
		// Keep "b" alive while "a" expires (harness expiry is 5s).
		for i := 0; i < 8; i++ {
			v.Sleep(time.Second)
			if _, err := h.nn.handleHeartbeat(dfs.HeartbeatReq{Addr: "b"}); err != nil {
				t.Fatalf("heartbeat: %v", err)
			}
		}
		if live := h.nn.LiveDataNodes(); len(live) != 1 || live[0] != "b" {
			t.Fatalf("live = %v, want [b]", live)
		}
		if _, err := h.nn.handleBlockReport(dfs.BlockReportReq{Addr: "a", Seq: 9, Epoch: 2}); err != nil {
			t.Fatalf("blockReport: %v", err)
		}
		if live := h.nn.LiveDataNodes(); len(live) != 2 {
			t.Fatalf("live after full report = %v, want both", live)
		}
	})
}
