package client_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/simclock"
)

// A job whose reads are served from the client block cache must still
// drive implicit eviction: the cache hit bypasses the datanode, so the
// client reports it to the namenode (nn.blockRead), the master routes it
// to the assigned slave (ignem.readNotify), and the slave drops the
// job's reference — end to end over real RPC.
func TestCachedReadStillDrivesImplicitEviction(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 3})
		defer mc.close()
		c := mc.client(t, client.WithBlockCache(64<<20))
		defer c.Close()

		const blockSize = 1 << 20
		data := bytes.Repeat([]byte{42}, 2*blockSize)
		// Single replica: both jobs' migrations land on the same slave, so
		// each pinned block carries exactly two references.
		if err := c.WriteFile("/input", data, blockSize, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		for _, job := range []dfs.JobID{"job2", "job3"} {
			if _, err := c.Migrate(job, []string{"/input"}, true); err != nil {
				t.Fatalf("migrate %s: %v", job, err)
			}
		}
		waitUntil(t, v, time.Minute, func() bool {
			pinned := 0
			for _, dn := range mc.dns {
				pinned += dn.Slave().Stats().PinnedBlocks
			}
			return pinned == 2
		}, "both blocks pinned")
		// Pin state must reach the namenode so reads prefer the migrated
		// replica (where the reference lists live).
		waitUntil(t, v, time.Minute, func() bool {
			lbs, err := c.Locations("/input")
			if err != nil {
				return false
			}
			for _, lb := range lbs {
				if len(lb.Migrated) == 0 {
					return false
				}
			}
			return true
		}, "migration state at namenode")

		// job2 reads through the datanode: the slave observes the reads
		// directly and drops job2's references. The payloads land in the
		// client cache.
		if _, err := c.ReadFile("/input", "job2"); err != nil {
			t.Fatalf("read job2: %v", err)
		}
		// job3's reads are cache hits: no datanode sees them. Without the
		// notification its references would pin the blocks until an
		// explicit evict that never comes.
		got, err := c.ReadFile("/input", "job3")
		if err != nil {
			t.Fatalf("read job3: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("cached read returned %d bytes, mismatch", len(got))
		}
		pinned := int64(0)
		for _, dn := range mc.dns {
			pinned += dn.Slave().PinnedBytes()
		}
		if pinned == 0 {
			t.Fatal("blocks unpinned before notifications flushed — the leak scenario never existed")
		}

		c.FlushReadNotifications()
		waitUntil(t, v, time.Minute, func() bool {
			var pinned int64
			for _, dn := range mc.dns {
				pinned += dn.Slave().PinnedBytes()
			}
			return pinned == 0
		}, "cached job's references released")
		if st := mc.nn.Master().Stats(); st.ReadNotifies != 2 {
			t.Errorf("master ReadNotifies = %d, want 2", st.ReadNotifies)
		}
	})
}
