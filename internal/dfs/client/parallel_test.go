package client_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/simclock"
)

// writeBlocky writes nBlocks distinct-content blocks of blockSize bytes.
func writeBlocky(t *testing.T, c *client.Client, path string, nBlocks, blockSize, replication int) []byte {
	t.Helper()
	data := make([]byte, 0, nBlocks*blockSize)
	for b := 0; b < nBlocks; b++ {
		data = append(data, bytes.Repeat([]byte{byte('A' + b)}, blockSize)...)
	}
	if err := c.WriteFile(path, data, int64(blockSize), replication); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return data
}

// TestReadFileStripedRoundTrip checks byte-order assembly: with 4 workers
// racing over 8 blocks, the result is still the file's bytes in order.
func TestReadFileStripedRoundTrip(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 6})
		defer mc.close()
		c := mc.client(t, client.WithReadParallelism(4))
		defer c.Close()
		data := writeBlocky(t, c, "/f", 8, 4096, 2)
		got, err := c.ReadFile("/f", "j")
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("striped read corrupted: got %d bytes, want %d", len(got), len(data))
		}
	})
}

// TestReadFileStripedMatchesSerialReplicaChoice pins the determinism
// contract: a striped read draws the seeded replica-choice rng in block
// order, so with the same seed it reads every block from the same
// replica a serial read would have picked.
func TestReadFileStripedMatchesSerialReplicaChoice(t *testing.T) {
	readAddrs := func(v *simclock.Virtual, mc *miniCluster, par int) map[dfs.BlockID]string {
		var mu sync.Mutex
		addrs := map[dfs.BlockID]string{}
		c := mc.client(t,
			client.WithSeed(42),
			client.WithReadParallelism(par),
			client.WithReadObserver(func(ev client.BlockReadEvent) {
				mu.Lock()
				addrs[ev.Block] = ev.Addr
				mu.Unlock()
			}))
		defer c.Close()
		if _, err := c.ReadFile("/f", "j"); err != nil {
			t.Fatalf("ReadFile(par=%d): %v", par, err)
		}
		return addrs
	}
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 6})
		defer mc.close()
		setup := mc.client(t)
		defer setup.Close()
		writeBlocky(t, setup, "/f", 8, 4096, 3)
		serial := readAddrs(v, mc, 1)
		striped := readAddrs(v, mc, 4)
		if len(serial) != 8 || len(striped) != 8 {
			t.Fatalf("serial read %d blocks, striped %d, want 8", len(serial), len(striped))
		}
		for id, addr := range serial {
			if striped[id] != addr {
				t.Errorf("block %d: striped read from %s, serial from %s", id, striped[id], addr)
			}
		}
	})
}

// TestReadFileStripedFailsOver kills one replica holder (without waiting
// for namenode expiry) and expects the striped read to fail over.
func TestReadFileStripedFailsOver(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 4})
		defer mc.close()
		c := mc.client(t, client.WithReadParallelism(4))
		defer c.Close()
		data := writeBlocky(t, c, "/f", 8, 4096, 2)
		mc.dns[0].Close()
		got, err := c.ReadFile("/f", "j")
		if err != nil {
			t.Fatalf("striped read did not fail over: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("failover read corrupted: got %d bytes", len(got))
		}
	})
}

// TestReadFileStripedAllReplicasDead surfaces the per-block error when no
// replica of some block survives.
func TestReadFileStripedAllReplicasDead(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 3})
		defer mc.close()
		c := mc.client(t, client.WithReadParallelism(4))
		defer c.Close()
		writeBlocky(t, c, "/f", 8, 4096, 2)
		for _, dn := range mc.dns {
			dn.Close()
		}
		if _, err := c.ReadFile("/f", "j"); err == nil {
			t.Error("striped read succeeded with every replica dead")
		}
	})
}

// TestReadFileStripedFasterThanSerial compares simulated wall-clock time:
// 4 workers over 8 one-MiB blocks spread across 8 datanodes must beat the
// serial read by a wide margin.
func TestReadFileStripedFasterThanSerial(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 8})
		defer mc.close()
		setup := mc.client(t)
		defer setup.Close()
		writeBlocky(t, setup, "/f", 8, 1<<20, 2)

		elapsed := func(par int) time.Duration {
			c := mc.client(t, client.WithReadParallelism(par))
			defer c.Close()
			start := v.Now()
			if _, err := c.ReadFile("/f", "j"); err != nil {
				t.Fatalf("ReadFile(par=%d): %v", par, err)
			}
			return v.Now().Sub(start)
		}
		serial := elapsed(1)
		striped := elapsed(4)
		if striped*2 > serial {
			t.Errorf("striped read %v not ≥2x faster than serial %v", striped, serial)
		}
	})
}

// TestCachedReadersRaceRewrites races cached readers against a writer
// that repeatedly deletes and rewrites the file they scan. Every
// successful scan must observe one complete version of the file — never
// a stale cached mix — and the run is a -race exercise of the cache's
// invalidation and singleflight paths.
func TestCachedReadersRaceRewrites(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 6})
		defer mc.close()
		c := mc.client(t, client.WithBlockCache(64<<20))
		defer c.Close()
		// The writer runs as its own client (as a second job would): the
		// reading client never sees an invalidation call, and stays
		// correct anyway because block IDs are never reused — a rewritten
		// file's blocks can't alias cached entries of the old version.
		wc := mc.client(t)
		defer wc.Close()

		const nBlocks, blockSize = 4, 4096
		version := func(ver byte) []byte {
			return bytes.Repeat([]byte{ver}, nBlocks*blockSize)
		}
		write := func(ver byte) {
			if err := wc.WriteFile("/race", version(ver), blockSize, 2); err != nil {
				t.Errorf("write version %c: %v", ver, err)
			}
		}
		// A scan may legitimately observe a file mid-write (a prefix of
		// the new version, or an empty just-created file); what it must
		// never observe is a mix of two versions' bytes.
		isOneVersion := func(got []byte) bool {
			for _, b := range got {
				if b != got[0] {
					return false
				}
			}
			return true
		}
		write('a')

		wg := simclock.NewWaitGroup(v)
		for r := 0; r < 4; r++ {
			wg.Go(func() {
				for i := 0; i < 6; i++ {
					got, err := c.ReadFile("/race", "j")
					if err != nil {
						continue // mid-rewrite reads may fail; that's fine
					}
					if !isOneVersion(got) {
						t.Errorf("scan observed a torn file: %d bytes mixing versions", len(got))
					}
				}
			})
		}
		wg.Go(func() {
			for _, ver := range []byte{'b', 'c', 'd'} {
				if err := wc.Delete("/race"); err != nil {
					t.Errorf("delete before %c: %v", ver, err)
				}
				write(ver)
			}
		})
		wg.Wait()

		got, err := c.ReadFile("/race", "j")
		if err != nil || !bytes.Equal(got, version('d')) {
			t.Errorf("final scan: err=%v, stale bytes=%v", err, err == nil && !bytes.Equal(got, version('d')))
		}
	})
}

// TestCachedReadersRaceMigrateEvict races cached readers against a
// Migrate/Evict loop on the file being scanned: content never changes,
// so every scan must return identical bytes while the cache is being
// invalidated underneath.
func TestCachedReadersRaceMigrateEvict(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 6})
		defer mc.close()
		c := mc.client(t, client.WithBlockCache(64<<20))
		defer c.Close()
		data := writeBlocky(t, c, "/hot", 4, 4096, 2)

		wg := simclock.NewWaitGroup(v)
		for r := 0; r < 4; r++ {
			wg.Go(func() {
				for i := 0; i < 6; i++ {
					got, err := c.ReadFile("/hot", "j")
					if err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if !bytes.Equal(got, data) {
						t.Error("scan returned wrong bytes during migrate/evict churn")
						return
					}
				}
			})
		}
		wg.Go(func() {
			for i := 0; i < 4; i++ {
				if _, err := c.Migrate("churn", []string{"/hot"}, false); err != nil {
					t.Errorf("Migrate: %v", err)
				}
				v.Sleep(10 * time.Millisecond)
				if _, err := c.Evict("churn", []string{"/hot"}); err != nil {
					t.Errorf("Evict: %v", err)
				}
			}
		})
		wg.Wait()
	})
}

// TestWithReadParallelismClampsToOne makes sure par<=1 (and tiny files)
// use the historical serial path and still round-trip.
func TestWithReadParallelismClampsToOne(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t, client.WithReadParallelism(-3))
		defer c.Close()
		data := writeBlocky(t, c, "/f", 3, 4096, 2)
		got, err := c.ReadFile("/f", "j")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("serial-clamped read: %d bytes, err %v", len(got), err)
		}
	})
}
