package client_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/faultnet"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

// A datanode that dies before a multi-block write must not fail the
// write: every block whose pipeline touches the dead node is retargeted
// (same ID, same offset, fresh nodes) and retried, and the finished
// file reads back intact.
func TestWriterSurvivesDeadPipelineNode(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 4})
		defer mc.close()
		c := mc.client(t, client.WithWriteParallelism(2))
		defer c.Close()

		const blockSize = 256 << 10
		data := bytes.Repeat([]byte("fail over, not fall over. "), 8*blockSize/26+1)[:8*blockSize]

		w, err := c.Create("/chaos/f", blockSize, 2)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		// dn2 dies before any block ships. The namenode has not yet
		// expired its heartbeat, so allocations keep targeting it and the
		// writer must fail over block by block.
		mc.dns[2].Close()
		if _, err := w.Write(data); err != nil {
			t.Fatalf("write with dead pipeline node: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		lbs, err := c.Locations("/chaos/f")
		if err != nil {
			t.Fatalf("locations: %v", err)
		}
		if len(lbs) != 8 {
			t.Fatalf("blocks = %d, want 8", len(lbs))
		}
		var off int64
		for i, lb := range lbs {
			if lb.Offset != off {
				t.Fatalf("block %d offset = %d, want %d (retarget must not reorder)", i, lb.Offset, off)
			}
			off += lb.Block.Size
			for _, n := range lb.Nodes {
				if n == "dn2" {
					t.Fatalf("block %d still targets the dead node: %v", i, lb.Nodes)
				}
			}
			if len(lb.Nodes) == 0 {
				t.Fatalf("block %d has no replicas", i)
			}
		}

		got, err := c.ReadFile("/chaos/f", "")
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read back %d bytes, mismatch with written %d", len(got), len(data))
		}
	})
}

// faultyCluster is a miniCluster rebuilt over a faultnet fabric so tests
// can drop and block the client↔namenode links deterministically.
type faultyCluster struct {
	fab *faultnet.Fabric
	nn  *namenode.NameNode
	dns []*datanode.DataNode
}

func startFaulty(t *testing.T, v *simclock.Virtual, nodes int) *faultyCluster {
	t.Helper()
	fab := faultnet.New(v, transport.NewInmemNetwork(v), 11)
	nn := namenode.New(v, fab.Node("nn"), namenode.Config{Addr: "nn", Seed: 7})
	if err := nn.Start(); err != nil {
		t.Fatalf("namenode start: %v", err)
	}
	fc := &faultyCluster{fab: fab, nn: nn}
	for i := 0; i < nodes; i++ {
		addr := "dn" + string(rune('0'+i))
		dn, err := datanode.New(v, fab.Node(addr), datanode.Config{
			Addr: addr, NameNodeAddr: "nn", Media: storage.HDDSpec(),
		})
		if err != nil {
			t.Fatalf("datanode new: %v", err)
		}
		if err := dn.Start(); err != nil {
			t.Fatalf("datanode start: %v", err)
		}
		fc.dns = append(fc.dns, dn)
	}
	return fc
}

func (fc *faultyCluster) close() {
	for _, dn := range fc.dns {
		dn.Close()
	}
	fc.nn.Close()
}

// An idempotent namenode call whose first attempt times out must be
// retried and succeed once the link recovers.
func TestIdempotentNNCallRetriesThroughOutage(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		fc := startFaulty(t, v, 3)
		defer fc.close()
		c, err := client.New(v, fc.fab.Node("client"), "nn",
			client.WithNNTimeout(time.Second), client.WithSeed(5))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()
		if err := c.WriteFile("/f", []byte("hello"), 1<<20, 2); err != nil {
			t.Fatalf("seed file: %v", err)
		}

		// Requests vanish for the next 1.5 simulated seconds.
		fc.fab.Block("client", "nn")
		v.Go(func() {
			v.Sleep(1500 * time.Millisecond)
			fc.fab.Unblock("client", "nn")
		})
		start := v.Now()
		info, err := c.Info("/f")
		if err != nil {
			t.Fatalf("Info through outage: %v", err)
		}
		if info.Size != 5 {
			t.Fatalf("info = %+v", info)
		}
		if d := v.Now().Sub(start); d < time.Second {
			t.Fatalf("Info returned after %v — it cannot have timed out and retried", d)
		}
	})
}

// Non-idempotent calls (migrate here) must NOT be retried: one timeout,
// one error, no hidden second submission.
func TestNonIdempotentNNCallDoesNotRetry(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		fc := startFaulty(t, v, 3)
		defer fc.close()
		c, err := client.New(v, fc.fab.Node("client"), "nn", client.WithNNTimeout(time.Second))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()

		fc.fab.Block("client", "nn")
		start := v.Now()
		_, err = c.Migrate("job1", []string{"/f"}, true)
		if !errors.Is(err, transport.ErrTimeout) {
			t.Fatalf("migrate err = %v, want timeout", err)
		}
		if d := v.Now().Sub(start); d > 1500*time.Millisecond {
			t.Fatalf("migrate took %v — a non-idempotent call must fail after one timeout", d)
		}
	})
}

// A lost allocation *reply* must not double-allocate: the retried
// request carries the same request ID and the namenode hands back the
// original allocation.
func TestAllocationRetryAfterLostReplyDoesNotDoubleAllocate(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		fc := startFaulty(t, v, 3)
		defer fc.close()
		c, err := client.New(v, fc.fab.Node("client"), "nn",
			client.WithNNTimeout(time.Second), client.WithWriteParallelism(1), client.WithSeed(3))
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		defer c.Close()

		w, err := c.Create("/g", 1<<20, 2)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		// Replies from the namenode vanish for 2.5s: the first addBlock
		// attempt allocates but its reply is lost; at least one retry hits
		// the dedup path before the link heals.
		fc.fab.Block("nn", "client")
		v.Go(func() {
			v.Sleep(2500 * time.Millisecond)
			fc.fab.Unblock("nn", "client")
		})
		if _, err := w.Write(bytes.Repeat([]byte{7}, 1<<20)); err != nil {
			t.Fatalf("write through lost replies: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		info, err := c.Info("/g")
		if err != nil {
			t.Fatalf("info: %v", err)
		}
		if info.Size != 1<<20 {
			t.Fatalf("file size = %d, want %d — a retried allocation double-allocated", info.Size, int64(1<<20))
		}
		lbs, err := c.Locations("/g")
		if err != nil || len(lbs) != 1 {
			t.Fatalf("blocks = %d (%v), want exactly 1", len(lbs), err)
		}
		got, err := c.ReadFile("/g", "")
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{7}, 1<<20)) {
			t.Fatalf("read back failed: %d bytes, %v", len(got), err)
		}
	})
}
