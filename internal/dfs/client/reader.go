package client

import (
	"container/list"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/dfs"
	"repro/internal/simclock"
)

// Reader streams a DFS file as an io.ReadSeeker. Blocks are fetched on
// demand (with the usual migration-aware replica choice) and, when the
// client's read-ahead is non-zero, the next blocks are prefetched
// asynchronously while the consumer drains the current one, so
// sequential streaming overlaps compute with I/O. Fetched blocks live in
// a small LRU window so a prefetched block is fetched exactly once.
//
// All prefetch concurrency goes through the client's Clock (clock.Go,
// simclock.Cond), so it is deterministic under the virtual clock and
// truly concurrent under the real one. A Reader may not be shared
// between goroutines without external locking, like most io.Readers.
type Reader struct {
	c      *Client
	path   string
	job    dfs.JobID
	blocks []dfs.LocatedBlock
	size   int64
	pos    int64
	ahead  int

	// The prefetch window. mu also serializes the fetch goroutines'
	// result delivery; cond wakes consumers waiting on an in-flight
	// block. cache holds at most ahead+2 blocks (current, the read-ahead
	// window, and one just-left block for short backward seeks), tracked
	// by an LRU list so eviction is O(1) instead of a map scan.
	mu       sync.Mutex
	cond     *simclock.Cond
	cache    map[int][]byte // block index -> materialized bytes
	pooled   map[int]bool   // window entries owning a bufpool buffer
	lru      *list.List     // cached block indices, most recent at front
	lruPos   map[int]*list.Element
	inflight map[int]bool
	errs     map[int]error // failed fetches, consumed (and retried) by Read
	curr     int           // block index the consumer last read; LRU-protected

	buf      []byte // bytes of the current block
	bufStart int64  // file offset of buf[0]
}

var _ io.ReadSeeker = (*Reader)(nil)

// Open returns a Reader over path on behalf of job. The file's block
// layout is resolved once; reads fail over across replicas like
// ReadBlock does. The reader inherits the client's read-ahead window
// (WithReadAhead, default 2 blocks).
func (c *Client) Open(path string, job dfs.JobID) (*Reader, error) {
	blocks, err := c.LocationsForJob(path, job)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, lb := range blocks {
		size += lb.Block.Size
	}
	r := &Reader{
		c:        c,
		path:     path,
		job:      job,
		blocks:   blocks,
		size:     size,
		ahead:    c.readAhead,
		cache:    make(map[int][]byte),
		pooled:   make(map[int]bool),
		lru:      list.New(),
		lruPos:   make(map[int]*list.Element),
		inflight: make(map[int]bool),
		errs:     make(map[int]error),
		curr:     -1,
	}
	r.cond = simclock.NewCond(c.clock, &r.mu)
	return r, nil
}

// Size returns the file's length in bytes.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader. A read that crosses a block boundary
// returns the bytes up to the boundary (a short read, as io.Reader
// permits). Reading a synthetic (sized-only) file is an error: it has no
// materialized bytes.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= r.size {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := r.ensure(r.pos); err != nil {
		return 0, err
	}
	off := int(r.pos - r.bufStart)
	n := copy(p, r.buf[off:])
	r.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker. Seeking past EOF is allowed; the next Read
// returns io.EOF.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("dfs client: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs client: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// blockIndex returns the index of the block containing file offset pos,
// or -1 when pos is outside the file.
func (r *Reader) blockIndex(pos int64) int {
	i := sort.Search(len(r.blocks), func(i int) bool {
		return r.blocks[i].Offset+r.blocks[i].Block.Size > pos
	})
	if i == len(r.blocks) || pos < r.blocks[i].Offset {
		return -1
	}
	return i
}

// ensure makes the block containing pos the current buffer, fetching it
// (and kicking off read-ahead for its successors) as needed.
func (r *Reader) ensure(pos int64) error {
	if r.buf != nil && pos >= r.bufStart && pos < r.bufStart+int64(len(r.buf)) {
		return nil
	}
	bi := r.blockIndex(pos)
	if bi < 0 {
		return fmt.Errorf("dfs client: offset %d outside %s (size %d)", pos, r.path, r.size)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.curr = bi
	r.startFetchLocked(bi)
	for i := bi + 1; i <= bi+r.ahead && i < len(r.blocks); i++ {
		r.startFetchLocked(i)
	}
	for r.cache[bi] == nil && r.errs[bi] == nil {
		r.cond.Wait()
	}
	if err := r.errs[bi]; err != nil {
		delete(r.errs, bi) // the next Read retries the fetch
		return err
	}
	r.touchLocked(bi)
	r.buf = r.cache[bi]
	r.bufStart = r.blocks[bi].Offset
	return nil
}

// startFetchLocked spawns an asynchronous fetch of block i unless it is
// already cached, in flight, or recently failed (the failure is held for
// the consumer to observe). The first replica is chosen here, on the
// consumer's goroutine, so rng draws stay in deterministic order.
func (r *Reader) startFetchLocked(i int) {
	if r.cache[i] != nil || r.inflight[i] || r.errs[i] != nil {
		return
	}
	r.inflight[i] = true
	lb := r.blocks[i]
	first := r.c.chooseReplica(lb)
	r.c.clock.Go(func() {
		resp, err := r.c.readBlockVia(r.path, lb, r.job, first)
		if err == nil && resp.Data == nil {
			err = fmt.Errorf("dfs client: %s is synthetic (sized only); it has no bytes to stream", r.path)
		}
		r.mu.Lock()
		delete(r.inflight, i)
		if err != nil {
			r.errs[i] = err
		} else {
			r.cache[i] = resp.Data
			// The window takes ownership of a pooled TCP buffer; it is
			// recycled on eviction. Client-block-cache hits hand out
			// cache-owned (never pooled) slices, which eviction must
			// only drop.
			r.pooled[i] = resp.Pooled()
			r.touchLocked(i)
			r.evictLocked()
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	})
}

// touchLocked marks block i most recently used.
func (r *Reader) touchLocked(i int) {
	if el, ok := r.lruPos[i]; ok {
		r.lru.MoveToFront(el)
		return
	}
	r.lruPos[i] = r.lru.PushFront(i)
}

// evictLocked bounds the window to ahead+2 cached blocks, dropping the
// least recently used block that is not the consumer's current one.
// Victims come straight off the LRU list's tail (skipping at most the
// current block), so eviction is O(1) rather than a scan of the window.
func (r *Reader) evictLocked() {
	max := r.ahead + 2
	for len(r.cache) > max {
		el := r.lru.Back()
		for el != nil && el.Value.(int) == r.curr {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		victim := el.Value.(int)
		r.lru.Remove(el)
		delete(r.lruPos, victim)
		// Eviction never touches r.curr, so r.buf (which aliases the
		// current entry) can never point into a recycled buffer.
		if r.pooled[victim] {
			bufpool.Put(r.cache[victim])
		}
		delete(r.pooled, victim)
		delete(r.cache, victim)
	}
}
