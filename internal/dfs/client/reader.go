package client

import (
	"fmt"
	"io"

	"repro/internal/dfs"
)

// Reader streams a DFS file as an io.ReadSeeker. Blocks are fetched on
// demand (with the usual migration-aware replica choice) and one block is
// buffered at a time, so sequential reads fetch each block exactly once.
type Reader struct {
	c      *Client
	path   string
	job    dfs.JobID
	blocks []dfs.LocatedBlock
	size   int64
	pos    int64

	buf      []byte // bytes of the currently cached block
	bufStart int64  // file offset of buf[0]
}

var _ io.ReadSeeker = (*Reader)(nil)

// Open returns a Reader over path on behalf of job. The file's block
// layout is resolved once; reads fail over across replicas like
// ReadBlock does.
func (c *Client) Open(path string, job dfs.JobID) (*Reader, error) {
	blocks, err := c.LocationsForJob(path, job)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, lb := range blocks {
		size += lb.Block.Size
	}
	return &Reader{c: c, path: path, job: job, blocks: blocks, size: size}, nil
}

// Size returns the file's length in bytes.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader. Reading a synthetic (sized-only) file is an
// error: it has no materialized bytes.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= r.size {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := r.ensure(r.pos); err != nil {
		return 0, err
	}
	off := int(r.pos - r.bufStart)
	n := copy(p, r.buf[off:])
	r.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("dfs client: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs client: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// ensure fetches the block containing file offset pos into the buffer.
func (r *Reader) ensure(pos int64) error {
	if r.buf != nil && pos >= r.bufStart && pos < r.bufStart+int64(len(r.buf)) {
		return nil
	}
	for _, lb := range r.blocks {
		if pos < lb.Offset || pos >= lb.Offset+lb.Block.Size {
			continue
		}
		resp, err := r.c.ReadBlock(lb, r.job)
		if err != nil {
			return err
		}
		if resp.Data == nil {
			return fmt.Errorf("dfs client: %s is synthetic (sized only); it has no bytes to stream", r.path)
		}
		r.buf = resp.Data
		r.bufStart = lb.Offset
		return nil
	}
	return fmt.Errorf("dfs client: offset %d outside %s (size %d)", pos, r.path, r.size)
}
