package client_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/dfs/datanode"
	"repro/internal/dfs/namenode"
	"repro/internal/ignem"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/transport"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// miniCluster is a namenode plus datanodes on an in-memory network.
type miniCluster struct {
	clock *simclock.Virtual
	net   *transport.InmemNetwork
	nn    *namenode.NameNode
	dns   []*datanode.DataNode
}

type miniConfig struct {
	nodes       int
	media       storage.Spec
	allRAM      bool
	liveness    ignem.Liveness
	slaveConfig ignem.SlaveConfig
}

// startMini must run on a simulation goroutine.
func startMini(t *testing.T, v *simclock.Virtual, cfg miniConfig) *miniCluster {
	t.Helper()
	if cfg.nodes == 0 {
		cfg.nodes = 4
	}
	if cfg.media.Name == "" {
		cfg.media = storage.HDDSpec()
	}
	net := transport.NewInmemNetwork(v)
	nn := namenode.New(v, net, namenode.Config{Addr: "nn", Seed: 7})
	if err := nn.Start(); err != nil {
		t.Fatalf("namenode start: %v", err)
	}
	mc := &miniCluster{clock: v, net: net, nn: nn}
	for i := 0; i < cfg.nodes; i++ {
		dn, err := datanode.New(v, net, datanode.Config{
			Addr:            fmt.Sprintf("dn%d", i),
			NameNodeAddr:    "nn",
			Media:           cfg.media,
			Slave:           cfg.slaveConfig,
			Liveness:        cfg.liveness,
			ServeAllFromRAM: cfg.allRAM,
		})
		if err != nil {
			t.Fatalf("datanode new: %v", err)
		}
		if err := dn.Start(); err != nil {
			t.Fatalf("datanode start: %v", err)
		}
		mc.dns = append(mc.dns, dn)
	}
	return mc
}

func (mc *miniCluster) close() {
	for _, dn := range mc.dns {
		dn.Close()
	}
	mc.nn.Close()
}

func (mc *miniCluster) client(t *testing.T, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.New(mc.clock, mc.net, "nn", opts...)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	return c
}

// runSim runs fn as the root simulation goroutine and fails the test if
// the virtual-time simulation stalls in real time.
func runSim(t *testing.T, fn func(v *simclock.Virtual)) {
	t.Helper()
	v := simclock.NewVirtual(epoch)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		fn(v)
	})
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("simulation stalled: %v", v)
	}
}

// waitUntil polls cond under virtual time.
func waitUntil(t *testing.T, v *simclock.Virtual, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := v.Now().Add(timeout)
	for !cond() {
		if v.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		v.Sleep(50 * time.Millisecond)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		data := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16 KB
		if err := c.WriteFile("/data/f1", data, 4096, 2); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		info, err := c.Info("/data/f1")
		if err != nil {
			t.Fatalf("Info: %v", err)
		}
		if info.Size != int64(len(data)) || !info.Complete {
			t.Errorf("info = %+v", info)
		}
		got, err := c.ReadFile("/data/f1", "job1")
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip corrupted: got %d bytes, want %d", len(got), len(data))
		}
	})
}

func TestReplicasOnDistinctNodes(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 5})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", 10*dfs.DefaultBlockSize, 0, 3); err != nil {
			t.Fatalf("WriteSyntheticFile: %v", err)
		}
		blocks, err := c.Locations("/f")
		if err != nil {
			t.Fatalf("Locations: %v", err)
		}
		if len(blocks) != 10 {
			t.Fatalf("got %d blocks, want 10", len(blocks))
		}
		for _, lb := range blocks {
			if len(lb.Nodes) != 3 {
				t.Errorf("block %d has %d replicas, want 3", lb.Block.ID, len(lb.Nodes))
			}
			seen := map[string]bool{}
			for _, n := range lb.Nodes {
				if seen[n] {
					t.Errorf("block %d has duplicate replica on %s", lb.Block.ID, n)
				}
				seen[n] = true
			}
		}
	})
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 2})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteSyntheticFile("/f", 1<<20, 0, 3); err != nil {
			t.Fatalf("WriteSyntheticFile: %v", err)
		}
		blocks, _ := c.Locations("/f")
		if len(blocks[0].Nodes) != 2 {
			t.Errorf("replicas = %d, want 2 (cluster size)", len(blocks[0].Nodes))
		}
	})
}

func TestMigrateThenReadFromMemory(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/input", 4*dfs.DefaultBlockSize, 0, 2); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := c.Migrate("job1", []string{"/input"}, false)
		if err != nil {
			t.Fatalf("Migrate: %v", err)
		}
		if resp.Blocks != 4 {
			t.Errorf("migrate enqueued %d blocks, want 4", resp.Blocks)
		}
		waitUntil(t, v, time.Minute, func() bool {
			var pinned int
			for _, dn := range mc.dns {
				pinned += dn.Slave().Stats().PinnedBlocks
			}
			return pinned == 4
		}, "all blocks pinned")

		// Wait for pin state to reach the namenode via heartbeats.
		waitUntil(t, v, time.Minute, func() bool {
			blocks, err := c.Locations("/input")
			if err != nil {
				return false
			}
			for _, lb := range blocks {
				if len(lb.Migrated) == 0 {
					return false
				}
			}
			return true
		}, "migration state at namenode")

		var evmu sync.Mutex
		var events []client.BlockReadEvent
		c2 := mc.client(t, client.WithReadObserver(func(ev client.BlockReadEvent) {
			evmu.Lock()
			events = append(events, ev)
			evmu.Unlock()
		}))
		defer c2.Close()
		if _, err := c2.ReadFile("/input", "job1"); err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for _, ev := range events {
			if !ev.FromMemory {
				t.Errorf("block %d read from disk after migration", ev.Block)
			}
		}
		if _, err := c.Evict("job1", []string{"/input"}); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			var pinned int64
			for _, dn := range mc.dns {
				pinned += dn.Slave().PinnedBytes()
			}
			return pinned == 0
		}, "eviction")
	})
}

func TestMigratedReadsFasterThanCold(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/cold", dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteSyntheticFile("/hot", dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate("j", []string{"/hot"}, false); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			var n int
			for _, dn := range mc.dns {
				n += dn.Slave().Stats().PinnedBlocks
			}
			return n == 1
		}, "pin")

		start := v.Now()
		if _, err := c.ReadFile("/cold", "j"); err != nil {
			t.Fatal(err)
		}
		cold := v.Now().Sub(start)
		start = v.Now()
		if _, err := c.ReadFile("/hot", "j"); err != nil {
			t.Fatal(err)
		}
		hot := v.Now().Sub(start)
		// A single uncontended HDD stream is only ~6x slower than RAM for
		// a remote reader (network transfer bounds the hot read); under
		// the concurrency of real workloads the gap is far larger.
		if hot*4 > cold {
			t.Errorf("migrated read %v not clearly faster than cold %v", hot, cold)
		}
	})
}

func TestImplicitEvictionViaReadPath(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/in", dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate("j", []string{"/in"}, true); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			for _, dn := range mc.dns {
				if dn.Slave().Stats().PinnedBlocks == 1 {
					return true
				}
			}
			return false
		}, "pin")
		if _, err := c.ReadFile("/in", "j"); err != nil {
			t.Fatal(err)
		}
		var pinned int64
		for _, dn := range mc.dns {
			pinned += dn.Slave().PinnedBytes()
		}
		if pinned != 0 {
			t.Errorf("implicit eviction left %d bytes pinned", pinned)
		}
	})
}

func TestLocalityPreference(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 4})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", dfs.DefaultBlockSize, 0, 3); err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Locations("/f")
		local := blocks[0].Nodes[0]
		var events []client.BlockReadEvent
		lc := mc.client(t,
			client.WithLocalAddr(local),
			client.WithReadObserver(func(ev client.BlockReadEvent) { events = append(events, ev) }))
		defer lc.Close()
		if _, err := lc.ReadFile("/f", "j"); err != nil {
			t.Fatal(err)
		}
		if len(events) != 1 || events[0].Addr != local || !events[0].Local {
			t.Errorf("read not local: %+v", events)
		}
	})
}

func TestInputsInRAMMode(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{allRAM: true})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteSyntheticFile("/f", dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		start := v.Now()
		if _, err := c.ReadFile("/f", "j"); err != nil {
			t.Fatal(err)
		}
		if d := v.Now().Sub(start); d > 300*time.Millisecond {
			t.Errorf("vmtouch-mode read took %v, want RAM speed", d)
		}
	})
}

func TestDeleteAndList(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		for i := 0; i < 3; i++ {
			if err := c.WriteSyntheticFile(fmt.Sprintf("/a/f%d", i), 1<<20, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WriteSyntheticFile("/b/g", 1<<20, 0, 1); err != nil {
			t.Fatal(err)
		}
		files, err := c.List("/a/")
		if err != nil || len(files) != 3 {
			t.Fatalf("List = %d files, err %v", len(files), err)
		}
		if err := c.Delete("/a/f0"); err != nil {
			t.Fatal(err)
		}
		files, _ = c.List("/a/")
		if len(files) != 2 {
			t.Errorf("after delete: %d files", len(files))
		}
		if _, err := c.Info("/a/f0"); err == nil {
			t.Error("Info succeeded on deleted file")
		}
	})
}

func TestCreateErrors(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteSyntheticFile("/dup", 1<<20, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Create("/dup", 0, 0); err == nil {
			t.Error("duplicate create succeeded")
		}
		if _, err := c.ReadFile("/missing", "j"); err == nil {
			t.Error("read of missing file succeeded")
		}
		if _, err := c.Create("", 0, 0); err == nil {
			t.Error("empty path accepted")
		}
	})
}

func TestDataNodeDeathFailover(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 3})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", dfs.DefaultBlockSize, 0, 2); err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Locations("/f")
		victim := blocks[0].Nodes[0]
		for _, dn := range mc.dns {
			if dn.Addr() == victim {
				dn.Close()
			}
		}
		// Wait for the namenode to expire the dead node.
		waitUntil(t, v, time.Minute, func() bool {
			bs, err := c.Locations("/f")
			return err == nil && len(bs[0].Nodes) == 1
		}, "expiry")
		c.ForgetDataNode(victim)
		if _, err := c.ReadFile("/f", "j"); err != nil {
			t.Errorf("read after node death: %v", err)
		}
	})
}

func TestMasterRestartPurgesSlaves(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", 2*dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate("j1", []string{"/f"}, false); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			var n int
			for _, dn := range mc.dns {
				n += dn.Slave().Stats().PinnedBlocks
			}
			return n == 2
		}, "pin")

		mc.nn.RestartMaster()
		// Next command batch (for a new job) carries the new epoch and
		// purges stale reference lists on the slaves it reaches.
		if err := c.WriteSyntheticFile("/g", dfs.DefaultBlockSize, 0, len(mc.dns)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate("j2", []string{"/g"}, false); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			var total int64
			for _, dn := range mc.dns {
				total += dn.Slave().PinnedBytes()
			}
			return total == dfs.DefaultBlockSize
		}, "purge+remigrate")
	})
}

func TestSlaveProcessRestartKeepsServing(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", dfs.DefaultBlockSize, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate("j1", []string{"/f"}, false); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, v, time.Minute, func() bool {
			for _, dn := range mc.dns {
				if dn.Slave().Stats().PinnedBlocks > 0 {
					return true
				}
			}
			return false
		}, "pin")
		for _, dn := range mc.dns {
			dn.RestartSlaveProcess()
		}
		for _, dn := range mc.dns {
			if dn.Slave().PinnedBytes() != 0 {
				t.Error("slave restart kept pinned memory")
			}
		}
		// Data is still readable from disk after the slave restarts.
		if _, err := c.ReadFile("/f", "j1"); err != nil {
			t.Errorf("read after slave restart: %v", err)
		}
	})
}

func TestReadFailsOverWithoutExpiry(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 3})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		if err := c.WriteSyntheticFile("/f", dfs.DefaultBlockSize, 0, 2); err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Locations("/f")
		// Kill one replica holder; do NOT wait for namenode expiry. The
		// client must fail over to the surviving replica on its own.
		victim := blocks[0].Nodes[0]
		for _, dn := range mc.dns {
			if dn.Addr() == victim {
				dn.Close()
			}
		}
		if _, err := c.ReadFile("/f", "j"); err != nil {
			t.Errorf("read did not fail over: %v", err)
		}
	})
}

func TestReadAllReplicasDead(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 2})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteSyntheticFile("/f", 1<<20, 0, 2); err != nil {
			t.Fatal(err)
		}
		for _, dn := range mc.dns {
			dn.Close()
		}
		if _, err := c.ReadFile("/f", "j"); err == nil {
			t.Error("read succeeded with every replica dead")
		}
	})
}

func TestReReplicationAfterNodeDeath(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 4})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		data := bytes.Repeat([]byte("r"), 8192)
		if err := c.WriteFile("/f", data, 4096, 3); err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Locations("/f")
		victim := blocks[0].Nodes[0]
		for _, dn := range mc.dns {
			if dn.Addr() == victim {
				dn.Close()
			}
		}
		// Namenode expires the node (~10s), then the replication sweep
		// directs a surviving holder's copy to a fresh node.
		waitUntil(t, v, 2*time.Minute, func() bool {
			lbs, err := c.Locations("/f")
			if err != nil {
				return false
			}
			for _, lb := range lbs {
				if len(lb.Nodes) != 3 {
					return false
				}
				for _, n := range lb.Nodes {
					if n == victim {
						return false
					}
				}
			}
			return true
		}, "re-replication to 3 live replicas")

		// The repaired replicas carry the real bytes.
		got, err := c.ReadFile("/f", "j")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read after re-replication: %d bytes, err %v", len(got), err)
		}
	})
}

func TestReaderStreamsAcrossBlocks(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		data := bytes.Repeat([]byte("abcdefgh"), 2048) // 16 KB over 4 KB blocks
		if err := c.WriteFile("/f", data, 4096, 2); err != nil {
			t.Fatal(err)
		}
		r, err := c.Open("/f", "job")
		if err != nil {
			t.Fatal(err)
		}
		if r.Size() != int64(len(data)) {
			t.Errorf("Size = %d", r.Size())
		}
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("streamed %d bytes, err %v", len(got), err)
		}
		// EOF on further reads.
		if _, err := r.Read(make([]byte, 1)); err != io.EOF {
			t.Errorf("want EOF, got %v", err)
		}
	})
}

func TestReaderSeek(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		data := []byte("0123456789abcdefghij")
		if err := c.WriteFile("/f", data, 8, 1); err != nil {
			t.Fatal(err)
		}
		r, err := c.Open("/f", "job")
		if err != nil {
			t.Fatal(err)
		}
		// Seek into the middle of the second block.
		if _, err := r.Seek(10, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(r, buf); err != nil || string(buf) != "abcd" {
			t.Errorf("read %q err %v", buf, err)
		}
		// Relative and end-based seeks.
		if pos, _ := r.Seek(-2, io.SeekCurrent); pos != 12 {
			t.Errorf("SeekCurrent pos = %d", pos)
		}
		if pos, _ := r.Seek(-5, io.SeekEnd); pos != 15 {
			t.Errorf("SeekEnd pos = %d", pos)
		}
		rest, _ := io.ReadAll(r)
		if string(rest) != "fghij" {
			t.Errorf("tail = %q", rest)
		}
		// Error cases.
		if _, err := r.Seek(-1, io.SeekStart); err == nil {
			t.Error("negative seek accepted")
		}
		if _, err := r.Seek(0, 42); err == nil {
			t.Error("bad whence accepted")
		}
	})
}

func TestReaderSyntheticFileRejected(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteSyntheticFile("/s", 1<<20, 0, 1); err != nil {
			t.Fatal(err)
		}
		r, err := c.Open("/s", "job")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 16)); err == nil {
			t.Error("streaming a synthetic file succeeded")
		}
	})
}

func TestDataNodeRestartReconcilesLocations(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{nodes: 3})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()

		data := bytes.Repeat([]byte("z"), 4096)
		if err := c.WriteFile("/f", data, 2048, 2); err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Locations("/f")
		victimAddr := blocks[0].Nodes[0]
		for i, dn := range mc.dns {
			if dn.Addr() == victimAddr {
				// The whole process dies and comes back EMPTY (fresh
				// block store), re-registering under the same address.
				dn.Close()
				fresh, err := datanode.New(v, mc.net, datanode.Config{
					Addr:         victimAddr,
					NameNodeAddr: "nn",
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Start(); err != nil {
					t.Fatal(err)
				}
				mc.dns[i] = fresh
			}
		}
		c.ForgetDataNode(victimAddr)

		// Registration carried an empty block report, so the namenode
		// must have dropped the stale locations immediately.
		lbs, err := c.Locations("/f")
		if err != nil {
			t.Fatal(err)
		}
		for _, lb := range lbs {
			for _, n := range lb.Nodes {
				if n == victimAddr {
					t.Fatalf("stale location survived restart: %v", lb.Nodes)
				}
			}
		}
		// Re-replication repairs back to 2 replicas using the fresh node.
		waitUntil(t, v, 2*time.Minute, func() bool {
			lbs, err := c.Locations("/f")
			if err != nil {
				return false
			}
			for _, lb := range lbs {
				if len(lb.Nodes) != 2 {
					return false
				}
			}
			return true
		}, "re-replication after empty restart")
		got, err := c.ReadFile("/f", "j")
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read after restart: %d bytes err %v", len(got), err)
		}
	})
}

func TestWriterErrors(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		w, err := c.Create("/w", 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("real bytes")); err != nil {
			t.Fatal(err)
		}
		// Mixing real and synthetic writes is rejected.
		if err := w.WriteSynthetic(4096); err == nil {
			t.Error("mixed real+synthetic write accepted")
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Writes after close fail; double close is a no-op.
		if _, err := w.Write([]byte("x")); err == nil {
			t.Error("write after close accepted")
		}
		if err := w.WriteSynthetic(1); err == nil {
			t.Error("synthetic write after close accepted")
		}
		if err := w.Close(); err != nil {
			t.Errorf("double close: %v", err)
		}
		// The partial final block was flushed.
		data, err := c.ReadFile("/w", "j")
		if err != nil || string(data) != "real bytes" {
			t.Errorf("read back %q err %v", data, err)
		}
	})
}

func TestMigrateUnknownPathFails(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if _, err := c.Migrate("j", []string{"/nope"}, false); err == nil {
			t.Error("migrate of unknown path accepted")
		}
		// Evicting a job that never migrated is harmless.
		if _, err := c.Evict("ghost", []string{"/nope"}); err != nil {
			t.Errorf("evict of unknown job: %v", err)
		}
	})
}
