package client

import (
	"repro/internal/dfs"
	"repro/internal/shardmap"
	"repro/internal/transport"
)

// Shard routing is strictly opt-in. A default client sends every
// namenode RPC down the single primary connection — zero extra RPCs,
// zero behavior change — so seeded experiments keep their bit-identical
// figures. A shard-aware client routes path-keyed namespace calls
// (create, allocate, retarget, complete, getInfo, getLocations, delete)
// to the endpoint serving the shard that owns the path, spreading
// transport load across the sharded metadata plane's listeners. Routing
// is a load-spreading optimization, never a correctness requirement:
// every endpoint serves the full handler set, and any routed call falls
// back to the primary connection when its endpoint is unreachable.

// WithShardEndpoints statically configures shard routing: addrs[i] is
// the endpoint for shard i, with the shard count taken from len(addrs).
// An empty slice disables routing. The file→shard map is the same
// directory-prefix hash the namenode uses, so no discovery round trip
// is needed.
func WithShardEndpoints(addrs []string) Option {
	return func(c *Client) {
		c.shardAddrs = append([]string(nil), addrs...)
	}
}

// WithShardRouting discovers the shard layout from the namenode with
// one nn.shardInfo call at dial time and routes accordingly. Prefer
// WithShardEndpoints when the layout is known (as the cluster harness
// knows it): discovery costs an RPC, which perturbs virtual-clock
// experiment timing.
func WithShardRouting() Option {
	return func(c *Client) { c.discoverShards = true }
}

// initShardRouting runs at dial time, after options, while the client
// is still single-goroutine.
func (c *Client) initShardRouting() error {
	if !c.discoverShards {
		return nil
	}
	resp, err := callNNOnce[dfs.ShardInfoResp](c, "nn.shardInfo", dfs.ShardInfoReq{})
	if err != nil {
		return err
	}
	if resp.Shards > 1 && len(resp.Addrs) > 0 {
		c.shardAddrs = resp.Addrs
	}
	return nil
}

// nnConnForPath returns the connection to use for a namespace call on
// path: the owning shard's endpoint when routing is configured (dialed
// lazily), the primary connection otherwise — or whenever the shard
// endpoint cannot be dialed. Returns nil once the client is closed.
func (c *Client) nnConnForPath(path string) *transport.Client {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	if len(c.shardAddrs) <= 1 {
		nn := c.nn
		c.mu.Unlock()
		return nn
	}
	shard := shardmap.FileShard(path, len(c.shardAddrs))
	addr := c.shardAddrs[shard]
	if addr == "" {
		nn := c.nn
		c.mu.Unlock()
		return nn
	}
	if conn, ok := c.shardConns[addr]; ok {
		c.mu.Unlock()
		return conn
	}
	c.mu.Unlock()

	conn, err := transport.Dial(c.clock, c.net, addr, transport.WithCallTimeout(c.nnTimeout))
	if err != nil {
		return c.nnConn() // endpoint unreachable; the primary serves everything
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil
	}
	if existing, ok := c.shardConns[addr]; ok {
		defer conn.Close()
		return existing
	}
	if c.shardConns == nil {
		c.shardConns = make(map[string]*transport.Client)
	}
	c.shardConns[addr] = conn
	return conn
}

// forgetShardConn drops a failed shard-endpoint connection so the next
// routed call re-dials (or falls back to the primary). A no-op for the
// primary connection, which redialNN owns.
func (c *Client) forgetShardConn(conn *transport.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, sc := range c.shardConns {
		if sc == conn {
			delete(c.shardConns, addr)
			sc.Close()
			return
		}
	}
}
