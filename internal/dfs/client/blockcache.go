package client

import (
	"repro/internal/blockcache"
	"repro/internal/dfs"
)

// WithBlockCache gives the client a shared block cache of at most bytes
// payload bytes, serving repeated reads of hot inputs from client memory
// instead of re-fetching from datanodes. The cache is shared across
// every Reader, ReadBlock, and ReadFile call made through this client,
// and concurrent reads of one cold block coalesce into a single
// datanode fetch.
//
// The cache defaults off (bytes <= 0 keeps it off): experiment clients
// must leave it off so seeded virtual-clock figures stay bit-identical,
// mirroring their WithWriteParallelism(1) pinning. Cached hits bypass
// the datanode entirely, so they fire no WithReadObserver event and do
// not advance Ignem's implicit-eviction reference lists; only the
// initial fetch of each block does.
func WithBlockCache(bytes int64) Option {
	return func(c *Client) {
		if bytes > 0 {
			c.cacheBytes = bytes
		}
	}
}

// CacheStats snapshots the block cache's hit/miss/eviction/bytes
// counters. It returns zeros when the cache is off.
func (c *Client) CacheStats() blockcache.Stats {
	if c.cache == nil {
		return blockcache.Stats{}
	}
	return c.cache.Stats()
}

// readBlockVia is the cache-aware read of one block: a cache hit is
// served from client memory; a miss fetches with the usual replica
// choice and failover and installs the payload for later readers.
// path may be "" when the caller does not know the owning file (bare
// ReadBlock/ReadBlocks); such entries still serve hits and honour the
// byte budget but cannot be invalidated per-file.
func (c *Client) readBlockVia(path string, lb dfs.LocatedBlock, job dfs.JobID, first string) (dfs.ReadBlockResp, error) {
	if c.cache == nil {
		resp, _, err := c.readBlockFrom1st(lb, job, first)
		return resp, err
	}
	var fetched dfs.ReadBlockResp
	data, hit, err := c.cache.GetOrFetch(path, uint64(lb.Block.ID), func() ([]byte, string, error) {
		resp, addr, err := c.readBlockFrom1st(lb, job, first)
		if err != nil {
			return nil, "", err
		}
		fetched = resp
		// Synthetic (size-only) blocks return Data == nil, which the
		// cache passes through without installing.
		return resp.Data, addr, nil
	})
	if err != nil {
		return dfs.ReadBlockResp{}, err
	}
	if hit {
		// The datanode never saw this read, so Ignem's reference lists
		// would stall without help: queue a read notification for the
		// namenode (job-tagged reads only — anonymous reads carry no
		// reference-list state).
		if job != "" {
			c.noteCacheHit(job, lb.Block.ID)
		}
		// FromMemory is honest here: the bytes came from this client's
		// memory without touching a datanode.
		return dfs.ReadBlockResp{Data: data, Size: int64(len(data)), FromMemory: true}, nil
	}
	return fetched, nil
}

// notifyBatchSize is how many queued cache-hit notifications trigger a
// flush to the namenode. Pending notifications also flush on Evict and
// Close, so a short job's reads are reported no later than its eviction.
const notifyBatchSize = 16

// noteCacheHit queues one cache-hit read for batched delivery to the
// namenode's nn.blockRead endpoint.
func (c *Client) noteCacheHit(job dfs.JobID, block dfs.BlockID) {
	c.notifyMu.Lock()
	c.pendingNotify[job] = append(c.pendingNotify[job], block)
	c.pendingCount++
	full := c.pendingCount >= notifyBatchSize
	c.notifyMu.Unlock()
	if full {
		c.FlushReadNotifications()
	}
}

// FlushReadNotifications sends every queued cache-hit read notification
// to the namenode, fire-and-forget: the sends happen on background
// goroutines and failures are dropped (a lost notification only delays
// implicit eviction until the job's explicit Evict). Tests call it
// directly to make notification delivery deterministic.
func (c *Client) FlushReadNotifications() {
	c.notifyMu.Lock()
	pending := c.pendingNotify
	c.pendingNotify = make(map[dfs.JobID][]dfs.BlockID)
	c.pendingCount = 0
	c.notifyMu.Unlock()
	for job, blocks := range pending {
		job, blocks := job, blocks
		c.clock.Go(func() {
			_, _ = callNNOnce[dfs.BlockReadResp](c, "nn.blockRead", dfs.BlockReadReq{Job: job, Blocks: blocks})
		})
	}
}

// invalidateFile drops path's cached blocks after a mutation
// (create/append/delete) or a migration-state change (Migrate/Evict), so
// the next read re-fetches and observes the new bytes and placement.
func (c *Client) invalidateFile(path string) {
	if c.cache != nil {
		c.cache.InvalidateFile(path)
	}
}

// invalidatePaths is invalidateFile over a migration request's path list.
func (c *Client) invalidatePaths(paths []string) {
	if c.cache == nil {
		return
	}
	for _, p := range paths {
		c.cache.InvalidateFile(p)
	}
}
