// Package client implements the DFSClient used by jobs: namespace
// operations, the block write and read paths, and the paper's Migrate and
// Evict extension — the single call a job submitter adds to use Ignem.
package client

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockcache"
	"repro/internal/dfs"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// BlockReadEvent describes one completed block read, for the experiment
// harness's Fig 6 instrumentation.
type BlockReadEvent struct {
	Block      dfs.BlockID
	Size       int64
	Duration   time.Duration
	FromMemory bool
	Addr       string
	Local      bool
	Job        dfs.JobID
}

// Option configures a Client.
type Option func(*Client)

// WithLocalAddr declares which datanode address this client is co-located
// with, enabling short-circuit local reads and locality preferences.
func WithLocalAddr(addr string) Option {
	return func(c *Client) { c.localAddr = addr }
}

// WithReadObserver installs a callback invoked after every block read.
// Striped reads and Reader prefetching invoke it from multiple
// goroutines; the callback must do its own locking.
func WithReadObserver(fn func(BlockReadEvent)) Option {
	return func(c *Client) { c.observer = fn }
}

// WithSeed seeds the client's replica-choice randomness (and, from an
// independent stream, its retry-backoff jitter).
func WithSeed(seed int64) Option {
	return func(c *Client) {
		c.rng = rand.New(rand.NewSource(seed))
		c.retryRNG = rand.New(rand.NewSource(seed ^ 0x7265747279)) // "retry"
	}
}

// WithReadParallelism bounds how many blocks ReadFile keeps in flight at
// once (default 4). n <= 1 restores the historical one-block-at-a-time
// read path.
func WithReadParallelism(n int) Option {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.readPar = n
	}
}

// WithReadAhead sets how many blocks beyond the current one a Reader
// opened by this client prefetches (default 2). n = 0 disables
// read-ahead: each block is fetched on demand, exactly once.
func WithReadAhead(n int) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.readAhead = n
	}
}

// WithWriteParallelism bounds how many blocks a Writer keeps in flight at
// once (default 4): each full block is shipped to its datanode pipeline
// by a worker while the caller keeps buffering. n <= 1 restores the
// historical one-block-at-a-time write path.
func WithWriteParallelism(n int) Option {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.writePar = n
	}
}

// WithChecksums toggles end-to-end block checksums (default on). When
// enabled, the writer computes a CRC32C per real-data block, records it
// at the namenode during allocation, and ships it with the block; every
// read verifies the returned bytes against the located block's
// checksum, and a mismatch fails over to another replica. Synthetic
// (size-only) blocks are never checksummed, so experiment-scale
// workloads are unaffected either way.
func WithChecksums(on bool) Option {
	return func(c *Client) { c.checksums = on }
}

// WithDataNodeTimeout overrides the per-call timeout on datanode
// connections (default dfs.DefaultDataNodeTimeout). Bulk block
// transfers ride these connections, so the default is generous; lower
// it for latency-sensitive deployments that would rather fail over to
// another replica than wait.
func WithDataNodeTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.dnTimeout = d
		}
	}
}

// Client is a DFS client handle. It is safe for concurrent use.
type Client struct {
	clock      simclock.Clock
	net        transport.Network
	nnAddr     string
	nnTimeout  time.Duration
	dnTimeout  time.Duration
	nnAttempts int
	localAddr  string
	observer   func(BlockReadEvent)
	readPar    int
	readAhead  int
	writePar   int
	cacheBytes int64
	cache      *blockcache.Cache
	checksums  bool

	// checksumFailures counts reads whose bytes failed verification
	// against the write-time checksum (each triggers replica failover).
	checksumFailures atomic.Int64

	// allocSeq numbers block-allocation requests so the namenode can
	// recognise (and not repeat) a retried allocation.
	allocSeq atomic.Uint64

	// retryMu guards the retry-jitter rng, a stream separate from the
	// replica-choice rng so retries never perturb replica choices.
	retryMu  sync.Mutex
	retryRNG *rand.Rand

	// Shard routing (see shards.go). shardAddrs is fixed after New;
	// shardConns is guarded by mu.
	shardAddrs     []string
	discoverShards bool

	mu         sync.Mutex
	nn         *transport.Client // current namenode conn; swapped by redialNN
	closed     bool
	dns        map[string]*transport.Client
	shardConns map[string]*transport.Client
	rng        *rand.Rand

	// notifyMu guards the batch of cache-hit read notifications not yet
	// sent to the namenode.
	notifyMu      sync.Mutex
	pendingNotify map[dfs.JobID][]dfs.BlockID
	pendingCount  int
}

// New dials the namenode and returns a ready client.
func New(clock simclock.Clock, net transport.Network, nnAddr string, opts ...Option) (*Client, error) {
	c := &Client{
		clock:         clock,
		net:           net,
		nnAddr:        nnAddr,
		nnTimeout:     5 * time.Minute,
		dnTimeout:     dfs.DefaultDataNodeTimeout,
		nnAttempts:    DefaultNNAttempts,
		dns:           make(map[string]*transport.Client),
		rng:           rand.New(rand.NewSource(1)),
		retryRNG:      rand.New(rand.NewSource(1 ^ 0x7265747279)),
		readPar:       DefaultReadParallelism,
		readAhead:     DefaultReadAhead,
		writePar:      DefaultWriteParallelism,
		checksums:     true,
		pendingNotify: make(map[dfs.JobID][]dfs.BlockID),
	}
	for _, o := range opts {
		o(c)
	}
	nn, err := transport.Dial(clock, net, nnAddr, transport.WithCallTimeout(c.nnTimeout))
	if err != nil {
		return nil, fmt.Errorf("dfs client: %w", err)
	}
	c.nn = nn
	if err := c.initShardRouting(); err != nil {
		nn.Close()
		return nil, fmt.Errorf("dfs client: shard discovery: %w", err)
	}
	if c.cacheBytes > 0 {
		c.cache = blockcache.New(clock, c.cacheBytes)
	}
	return c, nil
}

// Close flushes pending read notifications and releases the namenode
// and datanode connections.
func (c *Client) Close() {
	c.FlushReadNotifications()
	c.mu.Lock()
	c.closed = true
	nn := c.nn
	dns := c.dns
	c.dns = make(map[string]*transport.Client)
	shardConns := c.shardConns
	c.shardConns = nil
	c.mu.Unlock()
	nn.Close()
	for _, dc := range dns {
		dc.Close()
	}
	for _, sc := range shardConns {
		sc.Close()
	}
}

// ---- namespace operations ----

// Create starts a new file and returns a Writer for its content.
func (c *Client) Create(path string, blockSize int64, replication int) (*Writer, error) {
	_, err := callNNOncePath[dfs.CreateResp](c, "nn.create", path, dfs.CreateReq{
		Path: path, BlockSize: blockSize, Replication: replication,
	})
	if err != nil {
		return nil, err
	}
	c.invalidateFile(path)
	info, err := c.Info(path)
	if err != nil {
		return nil, err
	}
	return newWriter(c, path, info.BlockSize), nil
}

// Info fetches file metadata.
func (c *Client) Info(path string) (dfs.FileInfo, error) {
	resp, err := callNNPath[dfs.GetInfoResp](c, "nn.getInfo", path, dfs.GetInfoReq{Path: path})
	if err != nil {
		return dfs.FileInfo{}, err
	}
	return resp.Info, nil
}

// Locations fetches the block layout of a file.
func (c *Client) Locations(path string) ([]dfs.LocatedBlock, error) {
	return c.LocationsForJob(path, "")
}

// LocationsForJob fetches the block layout with each block annotated
// with the replica Ignem assigned to job's migration (if any).
func (c *Client) LocationsForJob(path string, job dfs.JobID) ([]dfs.LocatedBlock, error) {
	resp, err := callNNPath[dfs.GetLocationsResp](c, "nn.getLocations", path, dfs.GetLocationsReq{Path: path, Job: job})
	if err != nil {
		return nil, err
	}
	return resp.Blocks, nil
}

// Delete removes a file from the namespace. Any blocks of path held in
// the client's block cache are dropped.
func (c *Client) Delete(path string) error {
	_, err := callNNOncePath[dfs.DeleteResp](c, "nn.delete", path, dfs.DeleteReq{Path: path})
	c.invalidateFile(path)
	return err
}

// List returns metadata for files whose path starts with prefix.
func (c *Client) List(prefix string) ([]dfs.FileInfo, error) {
	resp, err := callNN[dfs.ListResp](c, "nn.list", dfs.ListReq{Prefix: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Files, nil
}

// ---- the Ignem extension ----

// Migrate asks Ignem to move the inputs of job into memory ahead of its
// reads. This is the one call a job submitter adds. implicit opts into
// implicit eviction (drop on first read).
// Migration changes where a block should be read from (pinned memory vs
// disk), so cached copies of the affected paths are dropped: the next
// read re-fetches and observes the new placement.
func (c *Client) Migrate(job dfs.JobID, paths []string, implicit bool) (dfs.MigrateResp, error) {
	resp, err := callNNOnce[dfs.MigrateResp](c, "nn.migrate", dfs.MigrateReq{
		Job: job, Paths: paths, Implicit: implicit, SubmitTime: c.clock.Now(),
	})
	c.invalidatePaths(paths)
	return resp, err
}

// Evict tells Ignem the job is done with its inputs. The returned count
// is how many block evict notifications the master issued to its slaves.
// Cached copies of the paths are dropped alongside, so later reads
// observe the post-eviction placement.
func (c *Client) Evict(job dfs.JobID, paths []string) (int, error) {
	// The job is finishing with these inputs: push any pending cache-hit
	// read notifications first so the master's reference lists see every
	// read before the explicit eviction.
	c.FlushReadNotifications()
	resp, err := callNNOnce[dfs.EvictResp](c, "nn.evict", dfs.EvictReq{Job: job, Paths: paths})
	c.invalidatePaths(paths)
	return resp.Blocks, err
}

// ---- read path ----

// ReadBlock reads one located block on behalf of job. Replica choice
// honours the paper's locality preferences: the Ignem-assigned copy when
// pinned, then a migrated copy, then a local copy, then a random
// replica. A failed replica is forgotten and the read transparently
// fails over to the remaining holders.
func (c *Client) ReadBlock(lb dfs.LocatedBlock, job dfs.JobID) (dfs.ReadBlockResp, error) {
	return c.readBlockVia("", lb, job, c.chooseReplica(lb))
}

// readBlockFrom1st is the uncached block read with the first replica
// already chosen. The striped read path and the Reader's prefetcher
// pre-choose replicas on the issuing goroutine so the seeded
// replica-choice rng is drawn in block order, keeping simulations
// deterministic regardless of how the worker goroutines are scheduled.
// It also reports which datanode served the block, so the block cache
// can invalidate by address when a node fails.
func (c *Client) readBlockFrom1st(lb dfs.LocatedBlock, job dfs.JobID, first string) (dfs.ReadBlockResp, string, error) {
	if first == "" {
		return dfs.ReadBlockResp{}, "", fmt.Errorf("dfs client: block %d has no live replica", lb.Block.ID)
	}
	// Happy path first, without building a candidate list: block reads
	// almost always succeed on the chosen replica, and the list showed up
	// as a per-read allocation in read-path profiles.
	resp, err := c.readBlockFrom(first, lb, job)
	if err == nil {
		return resp, first, nil
	}
	lastErr := err
	// The replica is unreachable or lost the block; drop the cached
	// connection so a later retry re-dials, and try the other holders.
	c.ForgetDataNode(first)
	for _, addr := range lb.Nodes {
		if addr == first {
			continue
		}
		resp, err := c.readBlockFrom(addr, lb, job)
		if err == nil {
			return resp, addr, nil
		}
		lastErr = err
		c.ForgetDataNode(addr)
	}
	return dfs.ReadBlockResp{}, "", fmt.Errorf("dfs client: block %d unreadable from all replicas: %w", lb.Block.ID, lastErr)
}

func (c *Client) readBlockFrom(addr string, lb dfs.LocatedBlock, job dfs.JobID) (dfs.ReadBlockResp, error) {
	dc, err := c.datanode(addr)
	if err != nil {
		return dfs.ReadBlockResp{}, err
	}
	local := addr == c.localAddr
	start := c.clock.Now()
	resp, err := transport.Call[dfs.ReadBlockResp](dc, "dn.readBlock", dfs.ReadBlockReq{
		Block: lb.Block.ID, Job: job, Local: local,
	})
	if err != nil {
		return dfs.ReadBlockResp{}, fmt.Errorf("dfs client: read block %d from %s: %w", lb.Block.ID, addr, err)
	}
	// End-to-end verification: the returned bytes must match the CRC the
	// writer recorded at allocation time. This catches corruption the
	// datanode's own check cannot — anything that happened after its
	// stored checksum was (wrongly) recomputed, or on the wire. A
	// mismatch counts as a failed replica, so the caller fails over.
	if c.checksums && lb.Checksum != 0 && len(resp.Data) > 0 && dfs.Checksum(resp.Data) != lb.Checksum {
		resp.Release()
		c.checksumFailures.Add(1)
		return dfs.ReadBlockResp{}, fmt.Errorf("dfs client: read block %d from %s: %w", lb.Block.ID, addr, dfs.ErrChecksum)
	}
	if c.observer != nil {
		c.observer(BlockReadEvent{
			Block:      lb.Block.ID,
			Size:       resp.Size,
			Duration:   c.clock.Now().Sub(start),
			FromMemory: resp.FromMemory,
			Addr:       addr,
			Local:      local,
			Job:        job,
		})
	}
	return resp, nil
}

// chooseReplica applies migration-aware locality preferences: the
// Ignem-assigned replica when its copy is already pinned (or when it is
// this very node), then any pinned copy, then an SSD-resident copy,
// then a local replica, then any. A not-yet-pinned assigned copy on
// another node is NOT preferred over a local disk replica: a local disk
// read is cheaper than a remote one. The SSD slot draws from the rng
// only when OnSSD is non-empty, so clusters without an SSD tier see
// exactly the legacy draw sequence.
func (c *Client) chooseReplica(lb dfs.LocatedBlock) string {
	if lb.Assigned != "" {
		if lb.Assigned == c.localAddr || contains(lb.Migrated, lb.Assigned) {
			return lb.Assigned
		}
	}
	if c.localAddr != "" {
		for _, a := range lb.Migrated {
			if a == c.localAddr {
				return a
			}
		}
	}
	if len(lb.Migrated) > 0 {
		return c.pick(lb.Migrated)
	}
	if c.localAddr != "" {
		for _, a := range lb.OnSSD {
			if a == c.localAddr {
				return a
			}
		}
	}
	if len(lb.OnSSD) > 0 {
		return c.pick(lb.OnSSD)
	}
	if c.localAddr != "" {
		for _, a := range lb.Nodes {
			if a == c.localAddr {
				return a
			}
		}
	}
	if len(lb.Nodes) > 0 {
		return c.pick(lb.Nodes)
	}
	return ""
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func (c *Client) pick(addrs []string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return addrs[c.rng.Intn(len(addrs))]
}

// DefaultReadParallelism is how many blocks ReadFile keeps in flight
// unless WithReadParallelism overrides it.
const DefaultReadParallelism = 4

// DefaultReadAhead is how many blocks beyond the current one a Reader
// prefetches unless WithReadAhead overrides it.
const DefaultReadAhead = 2

// ReadFile reads a whole file on behalf of job and returns its real
// bytes (nil for synthetic files). Blocks are fetched by a bounded
// worker pool (WithReadParallelism, default 4) striped across the file,
// so independent replicas stream concurrently; bytes are assembled in
// block order. Each block keeps the usual migration-aware replica choice
// and per-block failover.
func (c *Client) ReadFile(path string, job dfs.JobID) ([]byte, error) {
	blocks, err := c.Locations(path)
	if err != nil {
		return nil, err
	}
	return c.readBlocksPath(path, blocks, job)
}

// ReadBlocks fetches the given blocks with the client's read parallelism
// and returns their bytes concatenated in slice order.
func (c *Client) ReadBlocks(blocks []dfs.LocatedBlock, job dfs.JobID) ([]byte, error) {
	return c.readBlocksPath("", blocks, job)
}

// readBlocksPath is ReadBlocks with the owning file known, so cache
// entries installed here can be invalidated when that file mutates.
func (c *Client) readBlocksPath(path string, blocks []dfs.LocatedBlock, job dfs.JobID) ([]byte, error) {
	par := c.readPar
	if par > len(blocks) {
		par = len(blocks)
	}
	if par <= 1 {
		var out []byte
		for _, lb := range blocks {
			resp, err := c.readBlockVia(path, lb, job, c.chooseReplica(lb))
			if err != nil {
				return nil, err
			}
			out = append(out, resp.Data...)
			// A TCP fast-path response owns a pooled buffer; the bytes
			// are copied out above, so recycle it.
			resp.Release()
		}
		return out, nil
	}

	// Pre-choose every block's first replica on this goroutine so the
	// seeded rng is consumed in block order (determinism), then let the
	// pool race over the block list via a shared cursor.
	firsts := make([]string, len(blocks))
	for i, lb := range blocks {
		firsts[i] = c.chooseReplica(lb)
	}
	resps := make([]dfs.ReadBlockResp, len(blocks))
	errs := make([]error, len(blocks))
	var cursor atomic.Int64
	var failed atomic.Bool
	wg := simclock.NewWaitGroup(c.clock)
	for w := 0; w < par; w++ {
		wg.Go(func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(blocks) || failed.Load() {
					return
				}
				resp, err := c.readBlockVia(path, blocks[i], job, firsts[i])
				resps[i], errs[i] = resp, err
				if err != nil {
					failed.Store(true) // stop issuing new fetches
				}
			}
		})
	}
	wg.Wait()

	var out []byte
	for i := range blocks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, resps[i].Data...)
		resps[i].Release() // pooled TCP buffers recycle after copy-out
	}
	return out, nil
}

// ChecksumFailures reports how many block reads failed end-to-end
// checksum verification (each triggered a replica failover).
func (c *Client) ChecksumFailures() int64 { return c.checksumFailures.Load() }

// datanode returns a cached (or fresh) connection to addr.
func (c *Client) datanode(addr string) (*transport.Client, error) {
	c.mu.Lock()
	if dc, ok := c.dns[addr]; ok {
		c.mu.Unlock()
		return dc, nil
	}
	c.mu.Unlock()

	dc, err := transport.Dial(c.clock, c.net, addr, transport.WithCallTimeout(c.dnTimeout))
	if err != nil {
		return nil, fmt.Errorf("dfs client: dial %s: %w", addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.dns[addr]; ok {
		defer dc.Close()
		return existing, nil
	}
	c.dns[addr] = dc
	return dc, nil
}

// ForgetDataNode drops the cached connection to addr (used after a node
// failure so later reads re-dial a live replica) and evicts every block
// the shared cache holds from that node.
func (c *Client) ForgetDataNode(addr string) {
	c.mu.Lock()
	if dc, ok := c.dns[addr]; ok {
		dc.Close()
		delete(c.dns, addr)
	}
	c.mu.Unlock()
	if c.cache != nil {
		c.cache.InvalidateAddr(addr)
	}
}
