package client

import (
	"errors"
	"time"

	"repro/internal/transport"
)

// DefaultNNAttempts is how many times an idempotent namenode call is
// attempted before its transport failure is surfaced (first try plus
// retries), unless WithNNAttempts overrides it.
const DefaultNNAttempts = 4

const (
	nnRetryBase = 50 * time.Millisecond
	nnRetryMax  = time.Second
)

// WithNNAttempts caps attempts for idempotent namenode calls. n = 1
// disables retries entirely.
func WithNNAttempts(n int) Option {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.nnAttempts = n
	}
}

// WithNNTimeout sets the per-call timeout on the namenode connection
// (default 5 minutes of simulated time). Chaos tests shorten it so a
// dropped RPC fails fast enough to exercise the retry path.
func WithNNTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.nnTimeout = d
		}
	}
}

// callNNOnce invokes a namenode method exactly once. Non-idempotent
// methods (create, delete, migrate, evict) go through here: after a lost
// reply the caller cannot know whether the side effect happened, so the
// error must surface instead of a blind retry.
func callNNOnce[Resp any](c *Client, method string, arg any) (Resp, error) {
	conn := c.nnConn()
	if conn == nil {
		var zero Resp
		return zero, errors.New("dfs client: closed")
	}
	return transport.Call[Resp](conn, method, arg)
}

// callNNOncePath is callNNOnce routed to the shard endpoint owning path
// (the primary connection when routing is off — the default).
func callNNOncePath[Resp any](c *Client, method, path string, arg any) (Resp, error) {
	conn := c.nnConnForPath(path)
	if conn == nil {
		var zero Resp
		return zero, errors.New("dfs client: closed")
	}
	return transport.Call[Resp](conn, method, arg)
}

// callNN invokes an idempotent namenode method, retrying transport-level
// failures (timeouts, dropped connections — anything wrapped in a
// *transport.CallError) with capped exponential backoff and seeded
// jitter. Application errors from the namenode are returned immediately.
// Allocation calls stay safe to retry because they carry a request ID
// the namenode deduplicates on. The jitter rng is separate from the
// replica-choice rng and is only drawn between attempts, so a run
// without faults draws nothing and stays bit-identical.
func callNN[Resp any](c *Client, method string, arg any) (Resp, error) {
	return callNNRouted[Resp](c, method, arg, c.nnConn)
}

// callNNPath is callNN routed to the shard endpoint owning path (the
// primary connection when routing is off — the default). A routed
// connection that dies is forgotten so the next attempt re-dials it, or
// falls back to the primary, which serves every method regardless of
// shard.
func callNNPath[Resp any](c *Client, method, path string, arg any) (Resp, error) {
	return callNNRouted[Resp](c, method, arg, func() *transport.Client {
		return c.nnConnForPath(path)
	})
}

func callNNRouted[Resp any](c *Client, method string, arg any, pick func() *transport.Client) (Resp, error) {
	var zero Resp
	backoff := nnRetryBase
	var lastErr error
	for attempt := 0; attempt < c.nnAttempts; attempt++ {
		if attempt > 0 {
			c.clock.Sleep(c.retryJitter(backoff))
			backoff *= 2
			if backoff > nnRetryMax {
				backoff = nnRetryMax
			}
		}
		conn := pick()
		if conn == nil {
			return zero, errors.New("dfs client: closed")
		}
		resp, err := transport.Call[Resp](conn, method, arg)
		if err == nil {
			return resp, nil
		}
		var ce *transport.CallError
		if !errors.As(err, &ce) {
			return zero, err
		}
		lastErr = err
		if errors.Is(err, transport.ErrClosed) {
			c.forgetShardConn(conn)
			c.redialNN(conn)
		}
	}
	return zero, lastErr
}

// retryJitter scales a backoff step by a seeded factor in [0.5, 1.5).
func (c *Client) retryJitter(d time.Duration) time.Duration {
	c.retryMu.Lock()
	f := 0.5 + c.retryRNG.Float64()
	c.retryMu.Unlock()
	return time.Duration(float64(d) * f)
}

// nnConn returns the current namenode connection (nil once the client
// is closed).
func (c *Client) nnConn() *transport.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	return c.nn
}

// redialNN replaces a dead namenode connection. old is the connection
// the caller saw fail; if another goroutine already swapped it, the
// existing replacement is kept.
func (c *Client) redialNN(old *transport.Client) {
	c.mu.Lock()
	if c.closed || c.nn != old {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	nn, err := transport.Dial(c.clock, c.net, c.nnAddr, transport.WithCallTimeout(c.nnTimeout))
	if err != nil {
		return // next attempt will fail fast on the old conn and retry
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.nn != old {
		nn.Close()
		return
	}
	c.nn.Close()
	c.nn = nn
}
