package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/dfs"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// DefaultWriteParallelism is how many blocks a Writer keeps in flight
// unless WithWriteParallelism overrides it.
const DefaultWriteParallelism = 4

// writeMode distinguishes real-byte files from synthetic (size-only)
// files; the two cannot be mixed in one file.
type writeMode int

const (
	modeUnset writeMode = iota
	modeReal
	modeSynthetic
)

// Writer streams a file into the DFS block by block. With write
// parallelism > 1 (the default) it keeps a bounded window of blocks in
// flight: each full block is shipped to its datanode pipeline by a
// worker goroutine while the caller keeps buffering, and block
// allocation is batched (one nn.addBlocks round trip per window) on the
// caller's goroutine so blocks are appended — and placement is drawn —
// in file order regardless of worker scheduling. Errors from in-flight
// blocks surface on the next Write, WriteSynthetic, or Close.
//
// A Writer is not safe for concurrent use.
type Writer struct {
	c         *Client
	path      string
	blockSize int64
	par       int
	buf       []byte
	closed    bool
	mode      writeMode

	// mu guards the in-flight window; cond is signalled when a worker
	// completes. werr is sticky: the first in-flight failure fails every
	// subsequent call.
	mu       sync.Mutex
	cond     *simclock.Cond
	inflight int
	werr     error
}

func newWriter(c *Client, path string, blockSize int64) *Writer {
	w := &Writer{c: c, path: path, blockSize: blockSize, par: c.writePar}
	w.cond = simclock.NewCond(c.clock, &w.mu)
	return w
}

// Write buffers p, flushing full blocks to the cluster. The returned
// count is the number of bytes of p the writer consumed — on error after
// some bytes were buffered or handed to a flush it reports those bytes
// as consumed, so a caller that retries from the count does not
// duplicate data.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs client: write to closed writer")
	}
	if w.mode == modeSynthetic {
		return 0, fmt.Errorf("dfs client: cannot mix real and synthetic writes")
	}
	if err := w.asyncErr(); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	w.mode = modeReal
	w.buf = append(w.buf, p...)
	if err := w.flushFullBlocks(); err != nil {
		// Everything in p is already in the writer's buffer or window.
		return len(p), err
	}
	return len(p), nil
}

// flushFullBlocks drains every full block in the buffer. Serial writers
// allocate and ship one block per round trip; parallel writers allocate
// a window of blocks in one nn.addBlocks call and hand each to the
// bounded in-flight window.
func (w *Writer) flushFullBlocks() error {
	for int64(len(w.buf)) >= w.blockSize {
		if w.par <= 1 {
			if err := w.flushBlock(w.buf[:w.blockSize], nil); err != nil {
				return err
			}
			w.buf = w.buf[w.blockSize:]
			continue
		}
		n := int(int64(len(w.buf)) / w.blockSize)
		if n > w.par {
			n = w.par
		}
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = w.blockSize
		}
		var sums []uint32
		if w.c.checksums {
			sums = make([]uint32, n)
			for i := range sums {
				sums[i] = dfs.Checksum(w.buf[int64(i)*w.blockSize : int64(i+1)*w.blockSize])
			}
		}
		lbs, err := w.c.addBlocks(w.path, sizes, sums)
		if err != nil {
			return err
		}
		for _, lb := range lbs {
			data := w.buf[:w.blockSize]
			w.buf = w.buf[w.blockSize:]
			if err := w.dispatch(lb, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSynthetic appends size bytes of synthetic (unmaterialized) data,
// used by experiment-scale workloads so terabyte files don't allocate
// terabytes. Mixing Write and WriteSynthetic on one file is not allowed.
func (w *Writer) WriteSynthetic(size int64) error {
	if w.closed {
		return fmt.Errorf("dfs client: write to closed writer")
	}
	if w.mode == modeReal || len(w.buf) > 0 {
		return fmt.Errorf("dfs client: cannot mix real and synthetic writes")
	}
	if size < 0 {
		return fmt.Errorf("dfs client: negative synthetic size %d", size)
	}
	if err := w.asyncErr(); err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	w.mode = modeSynthetic
	if w.par <= 1 {
		for size > 0 {
			n := size
			if n > w.blockSize {
				n = w.blockSize
			}
			if err := w.flushBlock(nil, &n); err != nil {
				return err
			}
			size -= n
		}
		return nil
	}
	for size > 0 {
		var sizes []int64
		for len(sizes) < w.par && size > 0 {
			n := size
			if n > w.blockSize {
				n = w.blockSize
			}
			sizes = append(sizes, n)
			size -= n
		}
		lbs, err := w.c.addBlocks(w.path, sizes, nil)
		if err != nil {
			return err
		}
		for _, lb := range lbs {
			if err := w.dispatch(lb, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushBlock allocates a block at the namenode and writes it to every
// replica target — the serial write path.
func (w *Writer) flushBlock(data []byte, synthSize *int64) error {
	size := int64(len(data))
	if synthSize != nil {
		size = *synthSize
	}
	lbs, err := w.c.addBlocks(w.path, []int64{size}, w.c.blockSums(data))
	if err != nil {
		return err
	}
	return w.c.writeBlockWithFailover(w.path, lbs[0], data, false)
}

// dispatch hands one allocated block to the in-flight window, blocking
// (on the clock) while the window is full. A sticky in-flight error
// aborts the dispatch and is returned instead.
func (w *Writer) dispatch(lb dfs.LocatedBlock, data []byte) error {
	w.mu.Lock()
	for w.inflight >= w.par && w.werr == nil {
		w.cond.Wait()
	}
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return err
	}
	w.inflight++
	w.mu.Unlock()
	w.c.clock.Go(func() {
		err := w.c.writeBlockWithFailover(w.path, lb, data, true)
		w.mu.Lock()
		if err != nil && w.werr == nil {
			w.werr = err
		}
		w.inflight--
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	return nil
}

// drain waits for the in-flight window to empty and returns the sticky
// error, if any.
func (w *Writer) drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.inflight > 0 {
		w.cond.Wait()
	}
	return w.werr
}

// asyncErr reports the sticky in-flight error without waiting.
func (w *Writer) asyncErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

// Close flushes the remaining partial block, drains the in-flight
// window, and seals the file. The writer is marked closed and its buffer
// released even when a flush fails, so a retried Close is a no-op rather
// than a second flush or nn.complete.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var flushErr error
	if len(w.buf) > 0 {
		if w.par <= 1 {
			flushErr = w.flushBlock(w.buf, nil)
		} else if flushErr = w.asyncErr(); flushErr == nil {
			var lbs []dfs.LocatedBlock
			lbs, flushErr = w.c.addBlocks(w.path, []int64{int64(len(w.buf))}, w.c.blockSums(w.buf))
			if flushErr == nil {
				flushErr = w.dispatch(lbs[0], w.buf)
			}
		}
	}
	if err := w.drain(); flushErr == nil {
		flushErr = err
	}
	w.buf = nil
	// The file's content just changed (created or appended); drop any
	// blocks of it the shared cache still holds, error or not.
	w.c.invalidateFile(w.path)
	if flushErr != nil {
		return flushErr
	}
	// Sealing is idempotent, so a lost reply is safely retried.
	_, err := callNNPath[dfs.CompleteResp](w.c, "nn.complete", w.path, dfs.CompleteReq{Path: w.path})
	return err
}

// maxBlockWriteAttempts bounds how many target sets a block write tries
// before surfacing the failure.
const maxBlockWriteAttempts = 4

// writeBlockWithFailover ships one allocated block to its pipeline,
// surviving datanode deaths mid-write: when the pipeline fails, the
// node that failed is identified (the unreachable entry node from the
// *transport.CallError, or the downstream victim named in the
// datanode's pipeline error), the namenode re-targets the same block
// excluding every node seen to fail so far, and the block is re-sent to
// the fresh pipeline. The block's ID and file offset never change, so
// concurrent in-flight writes of later blocks are unaffected.
func (c *Client) writeBlockWithFailover(path string, lb dfs.LocatedBlock, data []byte, eager bool) error {
	var exclude []string
	for attempt := 1; ; attempt++ {
		err := c.sendBlock(lb, data, eager)
		if err == nil {
			return nil
		}
		if attempt >= maxBlockWriteAttempts {
			return err
		}
		for _, victim := range failedPipelineNodes(err, lb) {
			// Drop the cached conn so a later use re-dials, and never
			// place this block there again.
			c.ForgetDataNode(victim)
			exclude = append(exclude, victim)
		}
		resp, rerr := callNNPath[dfs.RetargetBlockResp](c, "nn.retargetBlock", path, dfs.RetargetBlockReq{
			Path: path, Block: lb.Block.ID, Exclude: exclude,
		})
		if rerr != nil {
			return fmt.Errorf("dfs client: retarget block %d after %w: %v", lb.Block.ID, err, rerr)
		}
		lb = resp.Located
	}
}

// failedPipelineNodes names the datanodes implicated in a failed block
// write. A transport-level failure talking to the entry node implicates
// it directly; a pipeline error reported by a datanode names the
// downstream victim in its message ("datanode: pipeline to X: ..." —
// the innermost, i.e. last, occurrence is the edge that actually
// failed). When neither identifies a node, the entry node is blamed:
// retrying through it is what just failed.
func failedPipelineNodes(err error, lb dfs.LocatedBlock) []string {
	var ce *transport.CallError
	if errors.As(err, &ce) && ce.Addr != "" {
		return []string{ce.Addr}
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		if i := strings.LastIndex(re.Msg, "pipeline to "); i >= 0 {
			rest := re.Msg[i+len("pipeline to "):]
			if j := strings.IndexByte(rest, ':'); j > 0 {
				return []string{rest[:j]}
			}
		}
	}
	if len(lb.Nodes) > 0 {
		return []string{lb.Nodes[0]}
	}
	return nil
}

// sendBlock writes one allocated block to its replica pipeline:
// HDFS-style, the client sends once to the first target, which stores
// its replica and forwards down the chain. eager asks the datanodes to
// overlap their local store with the downstream forward.
func (c *Client) sendBlock(lb dfs.LocatedBlock, data []byte, eager bool) error {
	if len(lb.Nodes) == 0 {
		return fmt.Errorf("dfs client: block %d allocated with no targets", lb.Block.ID)
	}
	req := dfs.WriteBlockReq{Block: lb.Block, Data: data, Checksum: lb.Checksum, Pipeline: lb.Nodes[1:], EagerPipeline: eager}
	dc, err := c.datanode(lb.Nodes[0])
	if err != nil {
		return err
	}
	if _, err := transport.Call[dfs.WriteBlockResp](dc, "dn.writeBlock", req); err != nil {
		return fmt.Errorf("dfs client: write block %d via %s: %w", lb.Block.ID, lb.Nodes[0], err)
	}
	return nil
}

// blockSums wraps one real-data block's CRC32C for an allocation
// request; nil when checksums are disabled or the block is synthetic.
func (c *Client) blockSums(data []byte) []uint32 {
	if !c.checksums || len(data) == 0 {
		return nil
	}
	return []uint32{dfs.Checksum(data)}
}

// addBlocks allocates len(sizes) blocks for path in one namenode round
// trip (a plain nn.addBlock when the window holds a single block),
// registering each block's write-time checksum (sums may be nil). The
// request carries a fresh request ID, so the transport-level retry in
// callNN cannot double-allocate: a retry of a request whose reply was
// lost gets the blocks the first attempt allocated.
func (c *Client) addBlocks(path string, sizes []int64, sums []uint32) ([]dfs.LocatedBlock, error) {
	reqID := c.allocSeq.Add(1)
	if len(sizes) == 1 {
		req := dfs.AddBlockReq{Path: path, Size: sizes[0], ReqID: reqID}
		if len(sums) > 0 {
			req.Checksum = sums[0]
		}
		resp, err := callNNPath[dfs.AddBlockResp](c, "nn.addBlock", path, req)
		if err != nil {
			return nil, fmt.Errorf("dfs client: addBlock: %w", err)
		}
		return []dfs.LocatedBlock{resp.Located}, nil
	}
	resp, err := callNNPath[dfs.AddBlocksResp](c, "nn.addBlocks", path, dfs.AddBlocksReq{Path: path, Sizes: sizes, Checksums: sums, ReqID: reqID})
	if err != nil {
		return nil, fmt.Errorf("dfs client: addBlocks: %w", err)
	}
	if len(resp.Located) != len(sizes) {
		return nil, fmt.Errorf("dfs client: addBlocks returned %d blocks, want %d", len(resp.Located), len(sizes))
	}
	return resp.Located, nil
}

// WriteFile creates path and writes data in one call.
func (c *Client) WriteFile(path string, data []byte, blockSize int64, replication int) error {
	w, err := c.Create(path, blockSize, replication)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		_ = w.Close() // drain in-flight blocks; the write already failed
		return err
	}
	return w.Close()
}

// WriteSyntheticFile creates path with size bytes of synthetic data.
func (c *Client) WriteSyntheticFile(path string, size int64, blockSize int64, replication int) error {
	w, err := c.Create(path, blockSize, replication)
	if err != nil {
		return err
	}
	if err := w.WriteSynthetic(size); err != nil {
		_ = w.Close()
		return err
	}
	return w.Close()
}
