package client_test

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfs/client"
	"repro/internal/simclock"
)

// TestReaderBoundaryAndSeekCases pins down the io.ReadSeeker contract at
// block edges: a Read crossing a block boundary returns a short read, a
// backward seek re-reads earlier bytes, and a seek past EOF makes the
// next Read return io.EOF.
func TestReaderBoundaryAndSeekCases(t *testing.T) {
	// 20 bytes over 8-byte blocks: blocks [0,8) [8,16) [16,20).
	data := []byte("0123456789abcdefghij")
	cases := []struct {
		name    string
		seekOff int64
		whence  int
		bufLen  int
		wantN   int
		want    string
		wantErr error
	}{
		{name: "within block", seekOff: 1, whence: io.SeekStart, bufLen: 4, wantN: 4, want: "1234"},
		{name: "to boundary is short", seekOff: 4, whence: io.SeekStart, bufLen: 16, wantN: 4, want: "4567"},
		{name: "from boundary", seekOff: 8, whence: io.SeekStart, bufLen: 4, wantN: 4, want: "89ab"},
		{name: "backward seek", seekOff: 2, whence: io.SeekStart, bufLen: 3, wantN: 3, want: "234"},
		{name: "into last short block", seekOff: 17, whence: io.SeekStart, bufLen: 8, wantN: 3, want: "hij"},
		{name: "seek to EOF", seekOff: 0, whence: io.SeekEnd, bufLen: 4, wantN: 0, wantErr: io.EOF},
		{name: "seek past EOF", seekOff: 7, whence: io.SeekEnd, bufLen: 4, wantN: 0, wantErr: io.EOF},
		{name: "seek far past EOF", seekOff: 1 << 20, whence: io.SeekStart, bufLen: 1, wantN: 0, wantErr: io.EOF},
	}
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t)
		defer c.Close()
		if err := c.WriteFile("/f", data, 8, 2); err != nil {
			t.Fatal(err)
		}
		r, err := c.Open("/f", "job")
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			if _, err := r.Seek(tc.seekOff, tc.whence); err != nil {
				t.Errorf("%s: seek: %v", tc.name, err)
				continue
			}
			buf := make([]byte, tc.bufLen)
			n, err := r.Read(buf)
			if err != tc.wantErr {
				t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
			}
			if n != tc.wantN {
				t.Errorf("%s: n = %d, want %d", tc.name, n, tc.wantN)
			}
			if got := string(buf[:n]); got != tc.want {
				t.Errorf("%s: read %q, want %q", tc.name, got, tc.want)
			}
		}
		// After EOF a backward seek makes the reader usable again.
		if _, err := r.Seek(-2, io.SeekEnd); err != nil {
			t.Fatal(err)
		}
		tail, err := io.ReadAll(r)
		if err != nil || string(tail) != "ij" {
			t.Errorf("tail after EOF recovery = %q, %v", tail, err)
		}
	})
}

// TestReaderReadAheadFetchesEachBlockOnce streams a file sequentially
// and checks the prefetcher does not fetch any block twice.
func TestReaderReadAheadFetchesEachBlockOnce(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		data := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KB over 4 KB blocks
		setup := mc.client(t)
		defer setup.Close()
		if err := setup.WriteFile("/f", data, 4096, 2); err != nil {
			t.Fatal(err)
		}
		var cmu sync.Mutex
		counts := map[dfs.BlockID]int{}
		c := mc.client(t, client.WithReadAhead(3), client.WithReadObserver(func(ev client.BlockReadEvent) {
			cmu.Lock()
			counts[ev.Block]++
			cmu.Unlock()
		}))
		defer c.Close()
		r, err := c.Open("/f", "job")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("streamed %d bytes, err %v", len(got), err)
		}
		if len(counts) != 8 {
			t.Errorf("observed %d distinct blocks, want 8", len(counts))
		}
		for id, n := range counts {
			if n != 1 {
				t.Errorf("block %d fetched %d times", id, n)
			}
		}
	})
}

// TestReaderReadAheadOverlapsCompute shows the point of read-ahead: a
// consumer that alternates reading a block with processing it finishes
// sooner (in simulated time) when the next blocks are prefetched during
// the processing phase.
func TestReaderReadAheadOverlapsCompute(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		const blockSize, nBlocks = 1 << 20, 8
		data := bytes.Repeat([]byte("x"), blockSize*nBlocks)
		setup := mc.client(t)
		defer setup.Close()
		if err := setup.WriteFile("/f", data, blockSize, 2); err != nil {
			t.Fatal(err)
		}
		stream := func(ahead int) time.Duration {
			c := mc.client(t, client.WithReadAhead(ahead))
			defer c.Close()
			r, err := c.Open("/f", "job")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, blockSize)
			start := v.Now()
			for {
				_, err := io.ReadFull(r, buf)
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				v.Sleep(20 * time.Millisecond) // per-block compute
			}
			return v.Now().Sub(start)
		}
		serial := stream(0)
		overlapped := stream(3)
		if overlapped >= serial {
			t.Errorf("read-ahead did not overlap: ahead=3 took %v, ahead=0 took %v", overlapped, serial)
		}
	})
}

// TestReaderSyntheticRejectedWithReadAhead keeps the synthetic-file
// error on the prefetching path.
func TestReaderSyntheticRejectedWithReadAhead(t *testing.T) {
	runSim(t, func(v *simclock.Virtual) {
		mc := startMini(t, v, miniConfig{})
		defer mc.close()
		c := mc.client(t, client.WithReadAhead(4))
		defer c.Close()
		if err := c.WriteSyntheticFile("/s", 4<<20, 1<<20, 1); err != nil {
			t.Fatal(err)
		}
		r, err := c.Open("/s", "job")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 16)); err == nil {
			t.Error("streaming a synthetic file succeeded")
		}
	})
}
