package client

import (
	"container/list"
	"testing"
)

// newWindowReader builds a bare Reader window for exercising the LRU
// bookkeeping without a cluster.
func newWindowReader(ahead int) *Reader {
	return &Reader{
		ahead:  ahead,
		cache:  make(map[int][]byte),
		lru:    list.New(),
		lruPos: make(map[int]*list.Element),
		curr:   -1,
	}
}

func (r *Reader) insertForTest(i int) {
	r.cache[i] = []byte{byte(i)}
	r.touchLocked(i)
	r.evictLocked()
}

// TestReaderWindowBound verifies the prefetch window never exceeds
// ahead+2 cached blocks no matter how many blocks stream through.
func TestReaderWindowBound(t *testing.T) {
	for _, ahead := range []int{0, 1, 2, 5} {
		r := newWindowReader(ahead)
		max := ahead + 2
		for i := 0; i < 50; i++ {
			r.curr = i
			r.insertForTest(i)
			if len(r.cache) > max {
				t.Fatalf("ahead=%d: window holds %d blocks after inserting %d, bound is %d", ahead, len(r.cache), i+1, max)
			}
			if r.lru.Len() != len(r.cache) || len(r.lruPos) != len(r.cache) {
				t.Fatalf("ahead=%d: LRU bookkeeping out of sync: list=%d pos=%d cache=%d", ahead, r.lru.Len(), len(r.lruPos), len(r.cache))
			}
		}
	}
}

// TestReaderEvictsLeastRecentlyUsed checks the victim is the LRU block,
// not an arbitrary one.
func TestReaderEvictsLeastRecentlyUsed(t *testing.T) {
	r := newWindowReader(1) // window of 3
	r.curr = 2
	for i := 0; i < 3; i++ {
		r.insertForTest(i)
	}
	r.touchLocked(0) // 0 is now more recent than 1
	r.insertForTest(3)
	if _, ok := r.cache[1]; ok {
		t.Error("block 1 (LRU) survived eviction")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := r.cache[want]; !ok {
			t.Errorf("block %d was evicted, want it resident", want)
		}
	}
}

// TestReaderEvictNeverDropsCurrent pins the current block: even at the
// LRU tail it must not be the victim.
func TestReaderEvictNeverDropsCurrent(t *testing.T) {
	r := newWindowReader(0) // window of 2
	r.insertForTest(7)
	r.curr = 7 // 7 becomes current but is the oldest entry
	r.insertForTest(8)
	r.insertForTest(9)
	if _, ok := r.cache[7]; !ok {
		t.Error("current block was evicted")
	}
	if len(r.cache) > 2 {
		t.Errorf("window holds %d blocks, bound is 2", len(r.cache))
	}
}
